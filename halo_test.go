package halo

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"halo/internal/measure"
	"halo/internal/workloads"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// library-usage section does.
func TestFacadeEndToEnd(t *testing.T) {
	w := workloads.MustGet("art")
	prog := w.Build(w.TestScale)

	opt, err := Optimize(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Groups) == 0 || len(opt.BitSelectors) == 0 {
		t.Fatalf("pipeline produced no policy: %d groups, %d selectors",
			len(opt.Groups), len(opt.BitSelectors))
	}

	machine := XeonW2195()
	base, err := Run(prog, Policy{Kind: measure.Jemalloc}, 1, machine)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(prog, Policy{
		Kind:      measure.HALO,
		Rewritten: opt.Rewrite.Prog,
		Selectors: opt.BitSelectors,
		NumBits:   opt.Rewrite.NumBits,
	}, 1, machine)
	if err != nil {
		t.Fatal(err)
	}
	if base.Result != fast.Result {
		t.Fatalf("results diverge: %d vs %d", base.Result, fast.Result)
	}
	if fast.GroupedAllocs == 0 {
		t.Fatal("no allocations grouped")
	}
	// art is the clearest winner in the suite: the optimisation must
	// reduce L1D misses here.
	if fast.Cache.L1D.Misses >= base.Cache.L1D.Misses {
		t.Fatalf("no miss reduction: %d -> %d", base.Cache.L1D.Misses, fast.Cache.L1D.Misses)
	}
}

// TestFacadeProfileAndHDS exercises the two-stage API: profile once, then
// derive both HALO and hot-data-streams policies from it.
func TestFacadeProfileAndHDS(t *testing.T) {
	w := workloads.MustGet("povray")
	prog := w.Build(w.TestScale)
	cfg := Config{}
	cfg.Profile.RecordTrace = true

	prof, err := ProfileProgram(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimizeFromProfile(prog, prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := AnalyzeHDS(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// povray's defining property: HALO distinguishes contexts through the
	// pov_malloc wrapper (several sites), the immediate-call-site scheme
	// sees a single location.
	if len(opt.Selectors.Sites) < 2 {
		t.Fatalf("HALO found %d sites, want several", len(opt.Selectors.Sites))
	}
	distinctHDS := map[int]bool{}
	for _, g := range hr.SiteGroups {
		distinctHDS[g] = true
	}
	if len(hr.SiteGroups) > 1 {
		t.Fatalf("HDS identified %d sites through the wrapper; povray should collapse to at most 1",
			len(hr.SiteGroups))
	}
	_ = distinctHDS
}

// TestFacadeProfileStore exercises the profile persistence surface: two
// training runs at different seeds, saved, reloaded, merged, and driven
// through OptimizeFromProfile.
func TestFacadeProfileStore(t *testing.T) {
	w := workloads.MustGet("art")
	prog := w.Build(w.TestScale)

	dir := t.TempDir()
	paths := make([]string, 0, 2)
	for i, seed := range []uint64{3, 5} {
		prof, err := ProfileProgram(prog, Config{ProfileSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("art.%d.hprof", i))
		if err := SaveProfile(path, prof); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	loaded := make([]*Profile, 0, 2)
	for _, path := range paths {
		prof, err := LoadProfile(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded = append(loaded, prof)
	}
	merged, err := MergeProfiles(loaded...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ProgName != "art" {
		t.Fatalf("merged program = %q", merged.ProgName)
	}
	opt, err := OptimizeFromProfile(prog, merged, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Groups) == 0 || len(opt.BitSelectors) == 0 {
		t.Fatalf("merged profile produced no policy: %d groups, %d selectors",
			len(opt.Groups), len(opt.BitSelectors))
	}

	// Encode/Decode round-trips the merged profile byte-identically.
	img, err := EncodeProfile(merged)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProfile(img)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := EncodeProfile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatal("profile image not stable under decode/encode")
	}
}

// TestFacadeTrials exercises the trial aggregation path.
func TestFacadeTrials(t *testing.T) {
	w := workloads.MustGet("analyzer")
	prog := w.Build(w.TestScale)
	s, err := MeasureTrials(prog, Policy{Kind: measure.Jemalloc}, 2, 50, XeonW2195())
	if err != nil {
		t.Fatal(err)
	}
	if s.Seconds.Median <= 0 {
		t.Fatalf("median = %v", s.Seconds.Median)
	}
}
