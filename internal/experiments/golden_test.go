package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/measure"
	"halo/internal/profstore"
	"halo/internal/workloads"
)

// Golden values recorded from the seed (pre-batching) engine: the per-event
// Hooks-dispatch VM at commit 7935e99, running each workload's test-scale
// build. The batched event engine must reproduce them bit for bit — that is
// the determinism contract of the event stream (vm/event.go): batching
// changes delivery granularity, never content or order.
type goldenWorkload struct {
	name string

	// sha256 of profstore.Encode for core.Profile with RecordTrace=true
	// and the default training seed.
	profileSHA string

	// measure.Run under the jemalloc-like baseline, seed 1000, XeonW2195.
	result        int64
	steps         uint64
	loads, stores uint64
	l1dMisses     uint64
	l1dAccesses   uint64
	cycles        uint64

	// measure.MeasureTrials(trials=4, baseSeed=1000) quartile medians.
	trialCyclesMedian float64
}

var goldens = []goldenWorkload{
	{
		name:              "povray",
		profileSHA:        "1aa6e750d713c99e51c46a33502b639c26ba093d1405669987aeee510ec462a6",
		result:            56986,
		steps:             291272,
		loads:             83333,
		stores:            25031,
		l1dMisses:         22809,
		l1dAccesses:       108364,
		cycles:            475284,
		trialCyclesMedian: 464698,
	},
	{
		name:              "omnetpp",
		profileSHA:        "9ff41b3104a8cedf2aca84bb0cc2f34618dc38ef8e564515a470bc554ba4e2c0",
		result:            4511129,
		steps:             4431092,
		loads:             1513817,
		stores:            545375,
		l1dMisses:         586887,
		l1dAccesses:       2059192,
		cycles:            9287376,
		trialCyclesMedian: 9272469.5,
	},
}

// TestGoldenProfileImages asserts the batched engine reproduces the seed
// engine's profile images byte for byte.
func TestGoldenProfileImages(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			w := workloads.MustGet(g.name)
			p := w.Build(w.TestScale)
			cfg := core.Config{}
			cfg.Profile.RecordTrace = true
			prof, err := core.Profile(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			img, err := profstore.Encode(prof)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(img)
			if got := hex.EncodeToString(sum[:]); got != g.profileSHA {
				t.Errorf("profile image sha256 = %s, want seed engine's %s (len %d)",
					got, g.profileSHA, len(img))
			}
		})
	}
}

// TestGoldenRunResults asserts measurement runs match the seed engine's
// RunResults exactly.
func TestGoldenRunResults(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			w := workloads.MustGet(g.name)
			p := w.Build(w.TestScale)
			r, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 1000, cache.XeonW2195())
			if err != nil {
				t.Fatal(err)
			}
			if r.Result != g.result || r.Steps != g.steps || r.Loads != g.loads || r.Stores != g.stores {
				t.Errorf("run = result %d steps %d loads %d stores %d, want %d/%d/%d/%d",
					r.Result, r.Steps, r.Loads, r.Stores, g.result, g.steps, g.loads, g.stores)
			}
			if r.Cache.L1D.Misses != g.l1dMisses || r.Cache.L1D.Accesses != g.l1dAccesses {
				t.Errorf("L1D = %d misses / %d accesses, want %d/%d",
					r.Cache.L1D.Misses, r.Cache.L1D.Accesses, g.l1dMisses, g.l1dAccesses)
			}
			if r.Cycles != g.cycles {
				t.Errorf("cycles = %d, want %d", r.Cycles, g.cycles)
			}
		})
	}
}

// TestGoldenTrialsWorkerInvariance asserts the parallel measurement
// harness reproduces the seed engine's serial trial summary at every
// worker-pool width.
func TestGoldenTrialsWorkerInvariance(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			w := workloads.MustGet(g.name)
			p := w.Build(w.TestScale)
			for _, workers := range []int{1, 2, 4, 8} {
				s, err := measure.MeasureTrialsParallel(p, measure.Policy{Kind: measure.Jemalloc},
					4, 1000, cache.XeonW2195(), workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if s.Cycles.Median != g.trialCyclesMedian {
					t.Errorf("workers=%d: cycles median = %v, want seed engine's %v",
						workers, s.Cycles.Median, g.trialCyclesMedian)
				}
			}
		})
	}
}

// TestGoldenBatchSizeInvariance asserts the determinism contract directly:
// profile images are identical whether events are delivered one at a time
// (BatchSize 1, the per-event seed behaviour) or in full batches.
func TestGoldenBatchSizeInvariance(t *testing.T) {
	w := workloads.MustGet("povray")
	p := w.Build(w.TestScale)
	encodeAt := func(batch int) []byte {
		cfg := core.Config{ProfileBatchSize: batch}
		cfg.Profile.RecordTrace = true
		prof, err := core.Profile(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		img, err := profstore.Encode(prof)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	want := encodeAt(1)
	for _, batch := range []int{2, 7, 4096} {
		got := encodeAt(batch)
		if string(got) != string(want) {
			t.Errorf("batch=%d: profile image differs from per-event delivery", batch)
		}
	}
}

// TestGoldenBatchSizeFingerprints pins the absolute profile fingerprints at
// batch sizes 1, 64 and 4096 for every golden workload: each must hash to
// the seed engine's recorded image. This is stronger than pairwise
// invariance — the predecoded threaded dispatcher with superinstruction
// fusion must reproduce the pre-batching per-event engine's bytes exactly
// at every delivery granularity.
func TestGoldenBatchSizeFingerprints(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			w := workloads.MustGet(g.name)
			p := w.Build(w.TestScale)
			for _, batch := range []int{1, 64, 4096} {
				cfg := core.Config{ProfileBatchSize: batch}
				cfg.Profile.RecordTrace = true
				prof, err := core.Profile(p, cfg)
				if err != nil {
					t.Fatalf("batch=%d: %v", batch, err)
				}
				img, err := profstore.Encode(prof)
				if err != nil {
					t.Fatalf("batch=%d: %v", batch, err)
				}
				sum := sha256.Sum256(img)
				if got := hex.EncodeToString(sum[:]); got != g.profileSHA {
					t.Errorf("batch=%d: profile image sha256 = %s, want %s", batch, got, g.profileSHA)
				}
			}
		})
	}
}
