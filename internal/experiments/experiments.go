// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) over the simulated substrate:
//
//	fig9     — allocation groups for the povray test workload
//	fig12    — omnetpp execution time across affinity distances 2^3..2^17
//	fig13    — L1D miss reduction, HALO vs hot-data-streams, 11 benchmarks
//	fig14    — speedup, HALO vs hot-data-streams, 11 benchmarks
//	fig15    — random 4-pool allocator speedup (placement sensitivity)
//	tab1     — fragmentation of grouped data at peak usage
//	baseline — jemalloc-like vs ptmalloc-like L1D misses (§5.1)
//	roms     — affinity-graph nodes vs hot-data-stream counts (§5.2)
//
// Absolute numbers come from the cycle model and the cache simulator, not
// the paper's Xeon, so the reproduction target is the *shape* of each
// result: who wins, roughly by how much, and where each technique fails.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/halloc"
	"halo/internal/hds"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/rewrite"
	"halo/internal/workloads"
)

// Options configures a harness run.
type Options struct {
	// Trials per configuration (one extra warm-up run is discarded, per
	// §5.1). The paper records 10; the default here is 5 to keep a full
	// suite run fast.
	Trials int
	// Quick reduces trials to 2 and measures at test scale.
	Quick bool
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// Workloads restricts the benchmark set (nil = all).
	Workloads []string
	// Seed bases the measurement seeds. Profiling always uses its own
	// fixed training seed, distinct from measurement.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Quick && o.Trials > 2 {
		o.Trials = 2
	}
	if o.Seed == 0 {
		o.Seed = 1000
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// artefacts holds everything derived for one benchmark: the test-input
// profile and pipelines, the ref binary, and the measurement policies.
type artefacts struct {
	w   workloads.Workload
	opt *core.Optimized
	hds *hds.Result

	refProg *isa.Program
	polBase measure.Policy
	polPt   measure.Policy
	polHALO measure.Policy
	polHDS  measure.Policy
	polRand measure.Policy
}

// Engine caches per-workload artefacts and measurement summaries so the
// experiments share one profiling run and one trial set per benchmark.
type Engine struct {
	opts    Options
	machine cache.Config
	arts    map[string]*artefacts
	sums    map[string]measure.Summary
}

// NewEngine builds an experiment engine.
func NewEngine(opts Options) *Engine {
	return &Engine{
		opts:    opts.withDefaults(),
		machine: cache.XeonW2195(),
		arts:    map[string]*artefacts{},
		sums:    map[string]measure.Summary{},
	}
}

func (e *Engine) workloadList() []workloads.Workload {
	if len(e.opts.Workloads) == 0 {
		return workloads.All()
	}
	var out []workloads.Workload
	for _, name := range e.opts.Workloads {
		out = append(out, workloads.MustGet(name))
	}
	return out
}

func (e *Engine) refScale(w workloads.Workload) int {
	if e.opts.Quick {
		return w.TestScale
	}
	return w.RefScale
}

// pipelineConfig applies the artifact appendix's per-benchmark flags.
func pipelineConfig(w workloads.Workload) core.Config {
	cfg := core.Config{}
	cfg.Profile.RecordTrace = true
	if w.MaxGroups > 0 {
		cfg.Group.MaxGroups = w.MaxGroups
		cfg.HDS.MaxGroups = w.MaxGroups
	}
	return cfg
}

func hallocConfig(w workloads.Workload) halloc.Config {
	return halloc.Config{
		ChunkSize:         w.ChunkSize,
		NoSpare:           w.NoSpare,
		AlwaysReuseChunks: w.AlwaysReuse,
	}
}

// artefactsFor profiles a workload on its test input and derives every
// measurement policy for the ref input (§5.1's methodology: profile on
// test, measure on ref; the builds share call-site addresses).
func (e *Engine) artefactsFor(w workloads.Workload) (*artefacts, error) {
	if a, ok := e.arts[w.Name]; ok {
		return a, nil
	}
	e.opts.logf("[%s] profiling test input (scale %d)", w.Name, w.TestScale)
	cfg := pipelineConfig(w)
	testProg := w.Build(w.TestScale)
	opt, err := core.Optimize(testProg, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	hr, err := core.AnalyzeHDS(opt.Profile, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s hds: %w", w.Name, err)
	}
	e.opts.logf("[%s] %d graph nodes, %d groups, %d sites; hds: %d rules, %d hot streams, %d sets",
		w.Name, opt.Profile.Graph.NumNodes(), len(opt.Groups), len(opt.Selectors.Sites),
		hr.Rules, hr.Streams, len(hr.Sets))

	refProg := w.Build(e.refScale(w))
	polHALO, err := refHALOPolicy(w, refProg, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}

	hc := hallocConfig(w)
	a := &artefacts{
		w:       w,
		opt:     opt,
		hds:     hr,
		refProg: refProg,
		polBase: measure.Policy{Kind: measure.Jemalloc},
		polPt:   measure.Policy{Kind: measure.Ptmalloc},
		polHALO: polHALO,
		polHDS: measure.Policy{
			Kind:       measure.HDS,
			SiteGroups: hr.SiteGroups,
			Halloc:     hc,
		},
		polRand: measure.Policy{Kind: measure.RandomPools, Pools: 4, Halloc: hc},
	}
	e.arts[w.Name] = a
	return a, nil
}

// refHALOPolicy rewrites the ref-scale binary with the sites chosen on the
// test profile and lowers the selectors against the ref binary's bit
// assignment. Test and ref builds share call-site addresses, so the
// profile transfers — the §5.1 methodology.
func refHALOPolicy(w workloads.Workload, refProg *isa.Program, opt *core.Optimized) (measure.Policy, error) {
	refRW, err := rewrite.Instrument(refProg, opt.Selectors.Sites)
	if err != nil {
		return measure.Policy{}, fmt.Errorf("ref rewrite: %w", err)
	}
	var bitSels []halloc.BitSelector
	for _, s := range opt.Selectors.Selectors {
		lowered, _ := rewrite.LowerSelectors(s.Conj, refRW.SiteBits)
		if len(lowered) > 0 {
			bitSels = append(bitSels, halloc.BitSelector{Group: s.Group, Conj: lowered})
		}
	}
	return measure.Policy{
		Kind:      measure.HALO,
		Rewritten: refRW.Prog,
		Selectors: bitSels,
		NumBits:   refRW.NumBits,
		Halloc:    hallocConfig(w),
	}, nil
}

// summaryFor measures (with caching) one workload under one policy.
func (e *Engine) summaryFor(a *artefacts, label string, pol measure.Policy) (measure.Summary, error) {
	key := a.w.Name + "/" + label
	if s, ok := e.sums[key]; ok {
		return s, nil
	}
	e.opts.logf("[%s] measuring %s (%d trials)", a.w.Name, label, e.opts.Trials)
	s, err := measure.MeasureTrials(a.refProg, pol, e.opts.Trials, e.opts.Seed, e.machine)
	if err != nil {
		return measure.Summary{}, fmt.Errorf("%s/%s: %w", a.w.Name, label, err)
	}
	e.sums[key] = s
	return s, nil
}

// Run executes the named experiments ("all" for everything) in order.
func (e *Engine) Run(ids []string) ([]*Table, error) {
	known := []string{"fig9", "fig12", "fig13", "fig14", "fig15", "tab1", "baseline", "roms"}
	if len(ids) == 1 && ids[0] == "all" {
		ids = known
	}
	var out []*Table
	for _, id := range ids {
		var (
			t   *Table
			err error
		)
		switch id {
		case "fig9":
			t, err = e.Fig9()
		case "fig12":
			t, err = e.Fig12()
		case "fig13":
			t, err = e.Fig13()
		case "fig14":
			t, err = e.Fig14()
		case "fig15":
			t, err = e.Fig15()
		case "tab1":
			t, err = e.Table1()
		case "baseline":
			t, err = e.Baseline()
		case "roms":
			t, err = e.RomsStreams()
		default:
			err = fmt.Errorf("unknown experiment %q (known: %s, all)", id, strings.Join(known, ", "))
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
