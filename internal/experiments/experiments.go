// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) over the simulated substrate:
//
//	fig9     — allocation groups for the povray test workload
//	fig12    — omnetpp execution time across affinity distances 2^3..2^17
//	fig13    — L1D miss reduction, HALO vs hot-data-streams, 11 benchmarks
//	fig14    — speedup, HALO vs hot-data-streams, 11 benchmarks
//	fig15    — random 4-pool allocator speedup (placement sensitivity)
//	tab1     — fragmentation of grouped data at peak usage
//	baseline — jemalloc-like vs ptmalloc-like L1D misses (§5.1)
//	roms     — affinity-graph nodes vs hot-data-stream counts (§5.2)
//
// Beyond the paper, the "adversarial" experiment evaluates the
// hostile-heap workload family (internal/adversary): where grouping
// helps, hurts (negative miss reduction), or is defeated, with a
// shadow-heap corruption verdict per scenario.
//
// Absolute numbers come from the cycle model and the cache simulator, not
// the paper's Xeon, so the reproduction target is the *shape* of each
// result: who wins, roughly by how much, and where each technique fails.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/halloc"
	"halo/internal/hds"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/obs"
	"halo/internal/pool"
	"halo/internal/rewrite"
	"halo/internal/workloads"
)

// Options configures a harness run.
type Options struct {
	// Trials per configuration (one extra warm-up run is discarded, per
	// §5.1). The paper records 10; the default here is 5 to keep a full
	// suite run fast.
	Trials int
	// Quick reduces trials to 2 and measures at test scale.
	Quick bool
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// Workloads restricts the benchmark set (nil = all).
	Workloads []string
	// Seed bases the measurement seeds. Profiling always uses its own
	// fixed training seed, distinct from measurement.
	Seed uint64
	// Parallel bounds workload-level parallelism within each experiment
	// (0 = one worker per CPU, 1 = serial). Results are identical at any
	// setting; only wall-clock time changes.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Quick && o.Trials > 2 {
		o.Trials = 2
	}
	if o.Seed == 0 {
		o.Seed = 1000
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// artefacts holds everything derived for one benchmark: the test-input
// profile and pipelines, the ref binary, and the measurement policies.
type artefacts struct {
	w   workloads.Workload
	opt *core.Optimized
	hds *hds.Result

	profEvents uint64     // VM events the training run's profiler consumed
	profWallNs int64      // wall-clock of the training run
	synthOptNs int64      // wall-clock of OptimizeFromProfile (group+identify+rewrite)
	synthHDSNs int64      // wall-clock of the hot-data-streams analysis
	stages     []obs.Span // per-stage spans of the pipeline run

	refProg *isa.Program
	polBase measure.Policy
	polPt   measure.Policy
	polHALO measure.Policy
	polHDS  measure.Policy
	polRand measure.Policy
}

// Engine caches per-workload artefacts and measurement summaries so the
// experiments share one profiling run and one trial set per benchmark.
// Experiments fan their workloads out over a bounded worker pool; the
// caches are mutex-guarded and every table row is assembled in workload
// order after the pool drains, so output is identical at any parallelism.
type Engine struct {
	opts    Options
	machine cache.Config

	mu     sync.Mutex
	arts   map[string]*artefacts
	sums   map[string]measure.Summary
	wallNs map[string]int64 // harness wall-clock per summaryFor key
}

// NewEngine builds an experiment engine.
func NewEngine(opts Options) *Engine {
	return &Engine{
		opts:    opts.withDefaults(),
		machine: cache.XeonW2195(),
		arts:    map[string]*artefacts{},
		sums:    map[string]measure.Summary{},
		wallNs:  map[string]int64{},
	}
}

func (e *Engine) workloadList() []workloads.Workload {
	if len(e.opts.Workloads) == 0 {
		// The paper-figure experiments run the canonical benchmarks only;
		// the hostile-heap family has its own experiment ("adversarial").
		var out []workloads.Workload
		for _, w := range workloads.All() {
			if !w.Adversarial {
				out = append(out, w)
			}
		}
		return out
	}
	var out []workloads.Workload
	for _, name := range e.opts.Workloads {
		out = append(out, workloads.MustGet(name))
	}
	return out
}

// adversarialList selects the hostile-heap workloads, honouring an
// explicit -workloads restriction.
func (e *Engine) adversarialList() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range workloads.All() {
		if !w.Adversarial {
			continue
		}
		if len(e.opts.Workloads) > 0 {
			found := false
			for _, name := range e.opts.Workloads {
				if name == w.Name {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, w)
	}
	return out
}

func (e *Engine) refScale(w workloads.Workload) int {
	if e.opts.Quick {
		return w.TestScale
	}
	return w.RefScale
}

// pipelineConfig applies the artifact appendix's per-benchmark flags.
func pipelineConfig(w workloads.Workload) core.Config {
	cfg := core.Config{}
	cfg.Profile.RecordTrace = true
	if w.MaxGroups > 0 {
		cfg.Group.MaxGroups = w.MaxGroups
		cfg.HDS.MaxGroups = w.MaxGroups
	}
	return cfg
}

func hallocConfig(w workloads.Workload) halloc.Config {
	return halloc.Config{
		ChunkSize:         w.ChunkSize,
		NoSpare:           w.NoSpare,
		AlwaysReuseChunks: w.AlwaysReuse,
	}
}

// artefactsFor profiles a workload on its test input and derives every
// measurement policy for the ref input (§5.1's methodology: profile on
// test, measure on ref; the builds share call-site addresses).
func (e *Engine) artefactsFor(w workloads.Workload) (*artefacts, error) {
	e.mu.Lock()
	a, ok := e.arts[w.Name]
	e.mu.Unlock()
	if ok {
		return a, nil
	}
	e.opts.logf("[%s] profiling test input (scale %d)", w.Name, w.TestScale)
	cfg := pipelineConfig(w)
	// Same one-level-parallel discipline as the trial pools: when the
	// sweep fans workloads out, synthesis runs serially inside each.
	cfg.SynthesisWorkers = e.trialWorkers()
	tr := obs.NewTrace()
	cfg.Trace = tr
	testProg := w.Build(w.TestScale)
	profStart := time.Now()
	prof, err := core.Profile(testProg, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	profWall := time.Since(profStart)
	optStart := time.Now()
	opt, err := core.OptimizeFromProfile(testProg, prof, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	optWall := time.Since(optStart)
	hdsStart := time.Now()
	hr, err := core.AnalyzeHDS(opt.Profile, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s hds: %w", w.Name, err)
	}
	hdsWall := time.Since(hdsStart)
	e.opts.logf("[%s] %d graph nodes, %d groups, %d sites; hds: %d rules, %d hot streams, %d sets",
		w.Name, opt.Profile.Graph.NumNodes(), len(opt.Groups), len(opt.Selectors.Sites),
		hr.Rules, hr.Streams, len(hr.Sets))

	refProg := w.Build(e.refScale(w))
	polHALO, err := refHALOPolicy(w, refProg, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}

	hc := hallocConfig(w)
	a = &artefacts{
		w:          w,
		opt:        opt,
		hds:        hr,
		profEvents: prof.Events,
		profWallNs: profWall.Nanoseconds(),
		synthOptNs: optWall.Nanoseconds(),
		synthHDSNs: hdsWall.Nanoseconds(),
		stages:     tr.Spans(),
		refProg:    refProg,
		polBase:    measure.Policy{Kind: measure.Jemalloc},
		polPt:      measure.Policy{Kind: measure.Ptmalloc},
		polHALO:    polHALO,
		polHDS: measure.Policy{
			Kind:       measure.HDS,
			SiteGroups: hr.SiteGroups,
			Halloc:     hc,
		},
		polRand: measure.Policy{Kind: measure.RandomPools, Pools: 4, Halloc: hc},
	}
	e.mu.Lock()
	if prior, ok := e.arts[w.Name]; ok {
		a = prior // another worker built it first; keep one canonical copy
	} else {
		e.arts[w.Name] = a
	}
	e.mu.Unlock()
	return a, nil
}

// refHALOPolicy rewrites the ref-scale binary with the sites chosen on the
// test profile and lowers the selectors against the ref binary's bit
// assignment. Test and ref builds share call-site addresses, so the
// profile transfers — the §5.1 methodology.
func refHALOPolicy(w workloads.Workload, refProg *isa.Program, opt *core.Optimized) (measure.Policy, error) {
	refRW, err := rewrite.Instrument(refProg, opt.Selectors.Sites)
	if err != nil {
		return measure.Policy{}, fmt.Errorf("ref rewrite: %w", err)
	}
	var bitSels []halloc.BitSelector
	for _, s := range opt.Selectors.Selectors {
		lowered, _ := rewrite.LowerSelectors(s.Conj, refRW.SiteBits)
		if len(lowered) > 0 {
			bitSels = append(bitSels, halloc.BitSelector{Group: s.Group, Conj: lowered})
		}
	}
	return measure.Policy{
		Kind:      measure.HALO,
		Rewritten: refRW.Prog,
		Selectors: bitSels,
		NumBits:   refRW.NumBits,
		Halloc:    hallocConfig(w),
	}, nil
}

// trialWorkers picks the inner MeasureTrials pool width: when the sweep
// itself fans workloads out (Parallel != 1), trials run serially so the
// two pool levels never multiply into cores² concurrent simulations; a
// serial sweep gets the full per-CPU trial pool instead. Either way at
// most one level is parallel.
func (e *Engine) trialWorkers() int {
	if e.opts.Parallel == 1 {
		return 0
	}
	return 1
}

// summaryFor measures (with caching) one workload under one policy, and
// times one additional serial run so BenchResults can report a per-run
// ns/op that does not depend on either pool's width.
func (e *Engine) summaryFor(a *artefacts, label string, pol measure.Policy) (measure.Summary, error) {
	key := a.w.Name + "/" + label
	e.mu.Lock()
	s, ok := e.sums[key]
	e.mu.Unlock()
	if ok {
		return s, nil
	}
	e.opts.logf("[%s] measuring %s (%d trials)", a.w.Name, label, e.opts.Trials)
	s, err := measure.MeasureTrialsParallel(a.refProg, pol, e.opts.Trials, e.opts.Seed, e.machine, e.trialWorkers())
	if err != nil {
		return measure.Summary{}, fmt.Errorf("%s/%s: %w", a.w.Name, label, err)
	}
	// ns/op: a single dedicated run (the first measured trial's seed),
	// timed on this goroutine — per-run cost, not pool throughput.
	start := time.Now()
	if _, err := measure.Run(a.refProg, pol, e.opts.Seed+1, e.machine); err != nil {
		return measure.Summary{}, fmt.Errorf("%s/%s: %w", a.w.Name, label, err)
	}
	elapsed := time.Since(start)
	e.mu.Lock()
	if prior, ok := e.sums[key]; ok {
		s = prior
	} else {
		e.sums[key] = s
		e.wallNs[key] = elapsed.Nanoseconds()
	}
	e.mu.Unlock()
	return s, nil
}

// forEachWorkload fans fn out over the workloads on the engine's bounded
// worker pool. fn receives the workload's index so rows land in stable
// slots; callers assemble tables in index order after the pool drains.
func (e *Engine) forEachWorkload(list []workloads.Workload, fn func(i int, w workloads.Workload) error) error {
	return pool.Map(len(list), e.opts.Parallel, func(i int) error { return fn(i, list[i]) })
}

// BenchResult is one machine-readable measurement: a workload under a
// technique, compared against the jemalloc baseline measured in the same
// sweep. NsPerOp is the harness wall-clock of one dedicated serial
// measurement run (timed outside the worker pools, so it tracks the
// engine's per-run speed over time rather than pool throughput).
type BenchResult struct {
	Workload         string  `json:"workload"`
	Technique        string  `json:"technique"`
	MissReductionPct float64 `json:"miss_reduction_pct"`
	SpeedupPct       float64 `json:"speedup_pct"`
	BaselineSeconds  float64 `json:"baseline_seconds"`
	Seconds          float64 `json:"seconds"`
	NsPerOp          int64   `json:"ns_per_op"`
	// Regressed flags results where the technique *hurt*: negative miss
	// reduction. Easy to misread as noise in a wall of numbers, so it is
	// surfaced explicitly here and in halobench's rendered table.
	Regressed bool `json:"regressed"`
}

// BenchResults renders every measured workload×technique pair from the
// engine's summary cache against its jemalloc baseline, sorted by workload
// then technique. Call after Run; only combinations the executed
// experiments actually measured appear.
func (e *Engine) BenchResults() []BenchResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.sums))
	for k := range e.sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []BenchResult
	for _, k := range keys {
		slash := strings.IndexByte(k, '/')
		name, label := k[:slash], k[slash+1:]
		if label == "jemalloc" {
			continue
		}
		base, ok := e.sums[name+"/jemalloc"]
		if !ok {
			continue
		}
		s := e.sums[k]
		r := BenchResult{
			Workload:         name,
			Technique:        label,
			MissReductionPct: measure.Improvement(base.L1DMiss.Median, s.L1DMiss.Median),
			SpeedupPct:       measure.Improvement(base.Seconds.Median, s.Seconds.Median),
			BaselineSeconds:  base.Seconds.Median,
			Seconds:          s.Seconds.Median,
			NsPerOp:          e.wallNs[k],
		}
		r.Regressed = r.MissReductionPct < 0
		out = append(out, r)
	}
	return out
}

// ProfileStat is one workload's profiling throughput: how many VM events
// the training run's profiler consumed and the wall-clock it took, the
// events/sec trajectory the data-plane work is tracked by.
type ProfileStat struct {
	Workload     string  `json:"workload"`
	Events       uint64  `json:"events"`
	WallNs       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// ProfileStats reports profiling throughput for every workload the
// executed experiments profiled, sorted by workload. Call after Run.
func (e *Engine) ProfileStats() []ProfileStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ProfileStat, 0, len(e.arts))
	for _, a := range e.arts {
		s := ProfileStat{
			Workload: a.w.Name,
			Events:   a.profEvents,
			WallNs:   a.profWallNs,
		}
		if a.profWallNs > 0 {
			s.EventsPerSec = float64(a.profEvents) / (float64(a.profWallNs) / 1e9)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// SynthStat is one workload's layout-synthesis cost: the wall-clock of
// turning its training profile into groups, selectors and the HDS
// co-allocation policy. This is the per-job cost a halod worker pays on
// top of profiling (or profile decoding), and the trajectory the dense
// parallel synthesis pipeline is tracked by.
type SynthStat struct {
	Workload   string `json:"workload"`
	Groups     int    `json:"groups"`
	Selectors  int    `json:"selectors"`
	Sites      int    `json:"sites"`
	HDSSets    int    `json:"hds_sets"`
	OptimizeNs int64  `json:"optimize_ns"` // group + identify + rewrite + lower
	HDSNs      int64  `json:"hds_ns"`      // grammar + streams + set packing
	WallNs     int64  `json:"wall_ns"`     // sum: the full synthesis stage
}

// SynthesisStats reports synthesis cost for every workload the executed
// experiments derived artefacts for, sorted by workload. Call after Run.
func (e *Engine) SynthesisStats() []SynthStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SynthStat, 0, len(e.arts))
	for _, a := range e.arts {
		out = append(out, SynthStat{
			Workload:   a.w.Name,
			Groups:     len(a.opt.Groups),
			Selectors:  len(a.opt.Selectors.Selectors),
			Sites:      len(a.opt.Selectors.Sites),
			HDSSets:    len(a.hds.Sets),
			OptimizeNs: a.synthOptNs,
			HDSNs:      a.synthHDSNs,
			WallNs:     a.synthOptNs + a.synthHDSNs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// WorkloadStages is one workload's per-stage span list: the same spans a
// halod job report carries, recorded for the harness's local pipeline run.
type WorkloadStages struct {
	Workload string     `json:"workload"`
	Stages   []obs.Span `json:"stages"`
}

// StageStats reports per-stage pipeline timings for every workload the
// executed experiments derived artefacts for, sorted by workload. Call
// after Run.
func (e *Engine) StageStats() []WorkloadStages {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]WorkloadStages, 0, len(e.arts))
	for _, a := range e.arts {
		out = append(out, WorkloadStages{Workload: a.w.Name, Stages: a.stages})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// Run executes the named experiments ("all" for everything) in order.
func (e *Engine) Run(ids []string) ([]*Table, error) {
	known := []string{"fig9", "fig12", "fig13", "fig14", "fig15", "tab1", "baseline", "roms", "adversarial"}
	if len(ids) == 1 && ids[0] == "all" {
		ids = known
	}
	var out []*Table
	for _, id := range ids {
		var (
			t   *Table
			err error
		)
		switch id {
		case "fig9":
			t, err = e.Fig9()
		case "fig12":
			t, err = e.Fig12()
		case "fig13":
			t, err = e.Fig13()
		case "fig14":
			t, err = e.Fig14()
		case "fig15":
			t, err = e.Fig15()
		case "tab1":
			t, err = e.Table1()
		case "baseline":
			t, err = e.Baseline()
		case "roms":
			t, err = e.RomsStreams()
		case "adversarial":
			t, err = e.Adversarial()
		default:
			err = fmt.Errorf("unknown experiment %q (known: %s, all)", id, strings.Join(known, ", "))
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
