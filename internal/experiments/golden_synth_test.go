package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"halo/internal/core"
	"halo/internal/isa"
	"halo/internal/policy"
	"halo/internal/workloads"
)

// Golden fingerprints of the layout-synthesis stage (grouping, selector
// identification, selector lowering, and the hot-data-streams policy)
// recorded from the serial, map-based implementation at commit 0138423.
// The dense, parallel synthesis pipeline must reproduce them bit for bit
// at every worker count — synthesis results are a function of the profile
// alone, never of the machine's core count.
var synthGoldens = map[string]string{
	"povray":  "bf643192d6d7ca0df84387566607b48be70d20a0b23bb3f894115c3db0b67a91",
	"omnetpp": "591cd670760e41d2fc4fc86d7c06f6100a97a4ae7910b64517d50bc96b495ce6",
}

// synthesisFingerprint renders every synthesis artefact into one canonical
// string: group composition, selector DNFs, instrumented sites, the lowered
// policy document (exactly as halod serves it), and the HDS co-allocation
// policy. Everything the downstream allocator consumes is covered, so any
// behavioural drift in the refactored pipeline shows up here.
func synthesisFingerprint(t *testing.T, name string, workers int) string {
	t.Helper()
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	cfg := pipelineConfig(w)
	cfg.SynthesisWorkers = workers
	prof, err := core.Profile(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.OptimizeFromProfile(p, prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := core.AnalyzeHDS(opt.Profile, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", name)
	for _, g := range opt.Groups {
		fmt.Fprintf(&b, "group %d: members=%v weight=%d accesses=%d\n",
			g.ID, g.Members, g.Weight, g.Accesses)
	}
	for _, s := range opt.Selectors.Selectors {
		fmt.Fprintf(&b, "selector %s\n", s.String())
	}
	fmt.Fprintf(&b, "sites=%v residual=%d\n", opt.Selectors.Sites, opt.Selectors.Residual)
	fmt.Fprintf(&b, "numbits=%d dropped=%d\n", opt.Rewrite.NumBits, opt.DroppedConjs)

	// The policy document exactly as internal/service serves it.
	pol := policy.Doc{
		Program: p.Name,
		NumBits: opt.Rewrite.NumBits,
		Sites:   map[string]int{},
	}
	for site, bit := range opt.Rewrite.SiteBits {
		pol.Sites[site.String()] = bit
	}
	for _, sel := range opt.BitSelectors {
		pol.Selectors = append(pol.Selectors, policy.Sel{Group: sel.Group, Conj: sel.Conj})
	}
	polJSON, err := json.MarshalIndent(pol, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b.Write(polJSON)
	b.WriteByte('\n')

	fmt.Fprintf(&b, "hds %s\n", hr.String())
	for i, s := range hr.Sets {
		fmt.Fprintf(&b, "set %d: sites=%v benefit=%v streams=%d\n", i, s.Sites, s.Benefit, s.Streams)
	}
	sites := make([]isa.Addr, 0, len(hr.SiteGroups))
	for s := range hr.SiteGroups {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		fmt.Fprintf(&b, "sitegroup %v -> %d\n", s, hr.SiteGroups[s])
	}
	return b.String()
}

// TestGoldenSynthesis pins the synthesis pipeline's output against the
// pre-refactor goldens at worker counts 1, 4 and 8 (the determinism
// contract: worker count changes wall-clock only, never output).
func TestGoldenSynthesis(t *testing.T) {
	for name, want := range synthGoldens {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 4, 8} {
				fp := synthesisFingerprint(t, name, workers)
				sum := sha256.Sum256([]byte(fp))
				if got := hex.EncodeToString(sum[:]); got != want {
					t.Errorf("workers=%d: synthesis fingerprint sha256 = %s, want %s\nfingerprint:\n%s",
						workers, got, want, fp)
				}
			}
		})
	}
}
