package experiments

import (
	"fmt"

	"halo/internal/adversary"
	"halo/internal/measure"
	"halo/internal/workloads"
)

// Adversarial evaluates the hostile-heap workload family end to end: each
// generated scenario runs the full pipeline and is measured HALO vs the
// jemalloc baseline, reporting where grouping helps, hurts (negative miss
// reduction, flagged REGRESSED) or is defeated, plus a corruption verdict —
// the scenario's flattened heap-op stream replayed against the group
// allocator under the shadow-heap oracle, with the workload's own
// allocator tuning.
func (e *Engine) Adversarial() (*Table, error) {
	list := e.adversarialList()
	t := &Table{
		ID:    "adversarial",
		Title: "adversarial workloads: HALO vs jemalloc baseline (hostile-heap family)",
		Columns: []string{"workload", "grouped allocs", "miss reduction (%)",
			"speedup (%)", "frag@peak (%)", "verdict", "corruption"},
	}
	t.Notes = append(t.Notes,
		"verdict: helped = positive miss reduction; REGRESSED = grouping added misses; defeated = grouping never engaged",
		"corruption: the scenario's heap-op stream replayed under the shadow-heap oracle (clean = zero findings)")
	rows := make([][]string, len(list))
	err := e.forEachWorkload(list, func(i int, w workloads.Workload) error {
		a, err := e.artefactsFor(w)
		if err != nil {
			return err
		}
		base, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return err
		}
		halo, err := e.summaryFor(a, "halo", a.polHALO)
		if err != nil {
			return err
		}
		missRed := measure.Improvement(base.L1DMiss.Median, halo.L1DMiss.Median)
		speedup := measure.Improvement(base.Seconds.Median, halo.Seconds.Median)
		verdict := "helped"
		switch {
		case halo.Median.GroupedAllocs == 0:
			verdict = "defeated"
		case missRed < 0:
			verdict = "REGRESSED"
		}
		corruption := "clean"
		seq := workloads.AdvSequence(w.Name)
		if _, err := adversary.ReplayChecked(
			seq.HeapOps(8),
			adversary.ReplayConfig{Name: w.Name, Halloc: hallocConfig(w), Groups: 4},
		); err != nil {
			corruption = "CORRUPT: " + err.Error()
		}
		rows[i] = []string{
			w.Name,
			fmt.Sprintf("%d", halo.Median.GroupedAllocs),
			fmt.Sprintf("%+.2f", missRed),
			fmt.Sprintf("%+.2f", speedup),
			fmt.Sprintf("%.1f", halo.Median.FragPct),
			verdict,
			corruption,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
