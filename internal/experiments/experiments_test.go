package experiments

import (
	"strings"
	"testing"
)

func quickEngine(workloads ...string) *Engine {
	return NewEngine(Options{Quick: true, Trials: 2, Workloads: workloads})
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"demo", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig9Quick(t *testing.T) {
	tab, err := quickEngine().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no groups in fig9")
	}
	// Figure 9's semantic content: the create/copy contexts appear.
	joined := tab.Render()
	for _, want := range []string{"create_plane", "create_csg", "pov_malloc"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("fig9 missing %q", want)
		}
	}
}

func TestFig13And14ShareMeasurements(t *testing.T) {
	e := quickEngine("art")
	if _, err := e.Fig13(); err != nil {
		t.Fatal(err)
	}
	sums := len(e.sums)
	if _, err := e.Fig14(); err != nil {
		t.Fatal(err)
	}
	if len(e.sums) != sums {
		t.Fatal("fig14 re-measured despite the cache")
	}
}

func TestFig13QuickShape(t *testing.T) {
	tab, err := quickEngine("art").Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "art" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	// art's miss reduction must be positive under both techniques.
	for col := 1; col <= 2; col++ {
		if !strings.HasPrefix(tab.Rows[0][col], "+") {
			t.Fatalf("art column %d not positive: %v", col, tab.Rows[0])
		}
	}
}

func TestTable1Quick(t *testing.T) {
	tab, err := quickEngine("health").Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][1], "%") {
		t.Fatalf("frag cell = %q", tab.Rows[0][1])
	}
}

func TestRomsStreamsQuick(t *testing.T) {
	tab, err := quickEngine("roms").RomsStreams()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := quickEngine("art").Run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2 << 10: "2.00KiB",
		3 << 20: "3.00MiB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Fatalf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
