package experiments

import (
	"testing"

	"halo/internal/measure"
)

// TestAdversarialQuick runs the adversarial experiment end to end at test
// scale and checks the table's semantic content: every hostile workload
// appears, the shadow-heap replay is clean everywhere, and the pinned
// miss-regressor row carries the REGRESSED verdict.
func TestAdversarialQuick(t *testing.T) {
	tab, err := quickEngine().Adversarial()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	seen := map[string]string{}
	for _, row := range tab.Rows {
		if got := row[len(row)-1]; got != "clean" {
			t.Fatalf("%s: corruption column = %q", row[0], got)
		}
		seen[row[0]] = row[5]
	}
	if v := seen["adv-regress"]; v != "REGRESSED" {
		t.Fatalf("adv-regress verdict = %q, want REGRESSED", v)
	}
}

// TestAdversarialDifferential is the policy-on/policy-off differential for
// the hostile-heap family: every adversarial workload must compute the
// same program result and leave the same final heap contents (live
// objects and payload bytes) under the HALO policy as under the baseline
// allocator — grouping may move objects, never change semantics. Each
// run is pinned at worker counts 1, 4 and 8, and the trial summaries must
// be bit-identical across those widths.
func TestAdversarialDifferential(t *testing.T) {
	e := quickEngine()
	workers := []int{1, 4, 8}
	for _, w := range e.adversarialList() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a, err := e.artefactsFor(w)
			if err != nil {
				t.Fatal(err)
			}
			policies := []struct {
				name string
				pol  measure.Policy
			}{
				{"jemalloc", a.polBase},
				{"halo", a.polHALO},
			}
			// Per-seed differential: policy on vs off, same result, same
			// final heap.
			for seed := uint64(1000); seed < 1003; seed++ {
				base, err := measure.Run(a.refProg, a.polBase, seed, e.machine)
				if err != nil {
					t.Fatal(err)
				}
				halo, err := measure.Run(a.refProg, a.polHALO, seed, e.machine)
				if err != nil {
					t.Fatal(err)
				}
				if base.Result != halo.Result {
					t.Fatalf("seed %d: result diverged: jemalloc %d, halo %d",
						seed, base.Result, halo.Result)
				}
				if base.TotalLiveObjects() != halo.TotalLiveObjects() ||
					base.TotalLiveBytes() != halo.TotalLiveBytes() {
					t.Fatalf("seed %d: final heap diverged: jemalloc %d objs/%d B, halo %d objs/%d B",
						seed, base.TotalLiveObjects(), base.TotalLiveBytes(),
						halo.TotalLiveObjects(), halo.TotalLiveBytes())
				}
			}
			// Worker-count pinning: the trial summary must not depend on
			// pool width under either policy.
			for _, p := range policies {
				var ref measure.Summary
				for i, nw := range workers {
					sum, err := measure.MeasureTrialsParallel(
						a.refProg, p.pol, 2, e.opts.Seed, e.machine, nw)
					if err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						ref = sum
						continue
					}
					if sum != ref {
						t.Fatalf("%s: summary at %d workers differs from %d workers",
							p.name, nw, workers[0])
					}
				}
			}
		})
	}
}
