package experiments

import (
	"fmt"

	"halo/internal/core"
	"halo/internal/measure"
	"halo/internal/workloads"
)

// Fig9 reproduces Figure 9: the allocation groups formed for the povray
// test workload, rendered as context chains per group.
func (e *Engine) Fig9() (*Table, error) {
	a, err := e.artefactsFor(workloads.MustGet("povray"))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "Allocation groups for the povray test workload",
		Columns: []string{"group", "weight", "accesses", "member context"},
	}
	for _, g := range a.opt.Groups {
		for i, m := range g.Members {
			gid, w, acc := "", "", ""
			if i == 0 {
				gid = fmt.Sprintf("%d", g.ID)
				w = fmt.Sprintf("%d", g.Weight)
				acc = fmt.Sprintf("%d", g.Accesses)
			}
			t.Rows = append(t.Rows, []string{
				gid, w, acc, a.opt.Profile.Contexts[m].Describe(a.opt.Input),
			})
		}
	}
	ungrouped := 0
	for _, c := range a.opt.Profile.Contexts {
		if c.Group < 0 && a.opt.Profile.Graph.Accesses(c.ID) > 0 {
			ungrouped++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d hot contexts remain ungrouped (grey nodes in the paper's figure)", ungrouped))
	return t, nil
}

// Fig12 reproduces Figure 12: omnetpp execution time at power-of-two
// affinity distances from 2^3 to 2^17, against the unmodified-jemalloc
// median (the paper's dashed line).
func (e *Engine) Fig12() (*Table, error) {
	w := workloads.MustGet("omnetpp")
	t := &Table{
		ID:      "fig12",
		Title:   "omnetpp time elapsed vs affinity distance (dashed line = jemalloc baseline)",
		Columns: []string{"affinity distance (B)", "median time (s)", "p25", "p75", "vs baseline"},
	}
	refProg := w.Build(e.refScale(w))
	base, err := measure.MeasureTrials(refProg, measure.Policy{Kind: measure.Jemalloc},
		e.opts.Trials, e.opts.Seed, e.machine)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("jemalloc baseline median: %.4fs", base.Seconds.Median))

	lo, hi := 3, 17
	if e.opts.Quick {
		hi = 11
	}
	for p := lo; p <= hi; p++ {
		dist := uint64(1) << p
		cfg := pipelineConfig(w)
		cfg.Profile.AffinityDistance = dist
		testProg := w.Build(w.TestScale)
		opt, err := core.Optimize(testProg, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig12 A=%d: %w", dist, err)
		}
		pol, err := refHALOPolicy(w, refProg, opt)
		if err != nil {
			return nil, fmt.Errorf("fig12 A=%d: %w", dist, err)
		}
		s, err := measure.MeasureTrials(refProg, pol, e.opts.Trials, e.opts.Seed, e.machine)
		if err != nil {
			return nil, fmt.Errorf("fig12 A=%d: %w", dist, err)
		}
		delta := measure.Improvement(base.Seconds.Median, s.Seconds.Median)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", dist),
			fmt.Sprintf("%.4f", s.Seconds.Median),
			fmt.Sprintf("%.4f", s.Seconds.P25),
			fmt.Sprintf("%.4f", s.Seconds.P75),
			fmt.Sprintf("%+.2f%%", delta),
		})
		e.opts.logf("[fig12] A=%-6d median %.4fs (%+.2f%%)", dist, s.Seconds.Median, delta)
	}
	return t, nil
}

// mainResults measures baseline, HALO and HDS for every workload.
func (e *Engine) mainResults() (map[string][3]measure.Summary, []workloads.Workload, error) {
	list := e.workloadList()
	out := make(map[string][3]measure.Summary, len(list))
	for _, w := range list {
		a, err := e.artefactsFor(w)
		if err != nil {
			return nil, nil, err
		}
		base, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return nil, nil, err
		}
		hal, err := e.summaryFor(a, "halo", a.polHALO)
		if err != nil {
			return nil, nil, err
		}
		hd, err := e.summaryFor(a, "hds", a.polHDS)
		if err != nil {
			return nil, nil, err
		}
		out[w.Name] = [3]measure.Summary{base, hal, hd}
	}
	return out, list, nil
}

// Fig13 reproduces Figure 13: the percentage by which HALO and
// hot-data-stream co-allocation reduce L1 data-cache misses.
func (e *Engine) Fig13() (*Table, error) {
	res, list, err := e.mainResults()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig13",
		Title:   "L1D cache miss reduction vs jemalloc baseline",
		Columns: []string{"benchmark", "Chilimbi et al. (HDS)", "HALO", "baseline L1D misses"},
	}
	for _, w := range list {
		r := res[w.Name]
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].L1DMiss.Median, r[2].L1DMiss.Median)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].L1DMiss.Median, r[1].L1DMiss.Median)),
			fmt.Sprintf("%.0f", r[0].L1DMiss.Median),
		})
	}
	t.Notes = append(t.Notes,
		"positive = fewer misses than the jemalloc-like baseline (paper Figure 13)")
	return t, nil
}

// Fig14 reproduces Figure 14: execution-time speedup.
func (e *Engine) Fig14() (*Table, error) {
	res, list, err := e.mainResults()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Speedup vs jemalloc baseline (cycle model)",
		Columns: []string{"benchmark", "Chilimbi et al. (HDS)", "HALO", "baseline time (s)"},
	}
	for _, w := range list {
		r := res[w.Name]
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].Seconds.Median, r[2].Seconds.Median)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].Seconds.Median, r[1].Seconds.Median)),
			fmt.Sprintf("%.4f", r[0].Seconds.Median),
		})
	}
	t.Notes = append(t.Notes,
		"positive = faster than baseline; time from the simulator's cycle model (paper Figure 14)")
	return t, nil
}

// Fig15 reproduces Figure 15: the effect of an allocator that randomly
// assigns small objects to one of four pools, exposing each benchmark's
// sensitivity to small-object placement.
func (e *Engine) Fig15() (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Speedup under a random 4-pool allocator (placement sensitivity)",
		Columns: []string{"benchmark", "speedup", "p25", "p75"},
	}
	for _, w := range e.workloadList() {
		a, err := e.artefactsFor(w)
		if err != nil {
			return nil, err
		}
		base, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return nil, err
		}
		rnd, err := e.summaryFor(a, "random", a.polRand)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%+.2f%%", measure.Improvement(base.Seconds.Median, rnd.Seconds.Median)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(base.Seconds.Median, rnd.Seconds.P75)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(base.Seconds.Median, rnd.Seconds.P25)),
		})
	}
	t.Notes = append(t.Notes,
		"mostly-negative values mark benchmarks sensitive to small-object placement (paper Figure 15)")
	return t, nil
}

// Table1 reproduces Table 1: fragmentation of grouped data at peak usage
// under HALO's specialised allocator.
func (e *Engine) Table1() (*Table, error) {
	t := &Table{
		ID:      "tab1",
		Title:   "Fragmentation of grouped objects at peak memory usage",
		Columns: []string{"benchmark", "frag (%)", "frag (bytes)", "grouped allocs"},
	}
	for _, w := range e.workloadList() {
		a, err := e.artefactsFor(w)
		if err != nil {
			return nil, err
		}
		s, err := e.summaryFor(a, "halo", a.polHALO)
		if err != nil {
			return nil, err
		}
		m := s.Median
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%.2f%%", m.FragPct),
			formatBytes(m.FragBytes),
			fmt.Sprintf("%d", m.GroupedAllocs),
		})
	}
	t.Notes = append(t.Notes, "measured at the grouped-data resident high-water mark (paper Table 1)")
	return t, nil
}

// Baseline reproduces the §5.1 observation that the jemalloc-like
// allocator universally outperforms the ptmalloc-like one on L1D misses
// ("reducing L1 data-cache misses by as much as 32%").
func (e *Engine) Baseline() (*Table, error) {
	t := &Table{
		ID:      "baseline",
		Title:   "jemalloc-like vs ptmalloc-like: L1D miss reduction",
		Columns: []string{"benchmark", "ptmalloc L1D misses", "jemalloc L1D misses", "reduction"},
	}
	for _, w := range e.workloadList() {
		a, err := e.artefactsFor(w)
		if err != nil {
			return nil, err
		}
		je, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return nil, err
		}
		pt, err := e.summaryFor(a, "ptmalloc", a.polPt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%.0f", pt.L1DMiss.Median),
			fmt.Sprintf("%.0f", je.L1DMiss.Median),
			fmt.Sprintf("%+.2f%%", measure.Improvement(pt.L1DMiss.Median, je.L1DMiss.Median)),
		})
	}
	return t, nil
}

// RomsStreams reproduces the §5.2 roms observation: HALO's affinity graph
// needs tens of nodes where hot data streams need orders of magnitude more
// streams to represent the same regular behaviour.
func (e *Engine) RomsStreams() (*Table, error) {
	t := &Table{
		ID:      "roms",
		Title:   "Representation size: affinity graph vs hot data streams",
		Columns: []string{"benchmark", "graph nodes", "grammar rules", "candidate streams", "hot streams", "trace refs"},
	}
	for _, w := range e.workloadList() {
		a, err := e.artefactsFor(w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%d", a.opt.Profile.Graph.NumNodes()),
			fmt.Sprintf("%d", a.hds.Rules),
			fmt.Sprintf("%d", a.hds.Candidates),
			fmt.Sprintf("%d", a.hds.Streams),
			fmt.Sprintf("%d", a.hds.TraceLen),
		})
	}
	t.Notes = append(t.Notes,
		"the paper reports 31 affinity nodes vs >150,000 streams for roms; the ratio, not the absolute count, is the reproduction target")
	return t, nil
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
