package experiments

import (
	"fmt"

	"halo/internal/core"
	"halo/internal/measure"
	"halo/internal/pool"
	"halo/internal/workloads"
)

// Fig9 reproduces Figure 9: the allocation groups formed for the povray
// test workload, rendered as context chains per group.
func (e *Engine) Fig9() (*Table, error) {
	a, err := e.artefactsFor(workloads.MustGet("povray"))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "Allocation groups for the povray test workload",
		Columns: []string{"group", "weight", "accesses", "member context"},
	}
	for _, g := range a.opt.Groups {
		for i, m := range g.Members {
			gid, w, acc := "", "", ""
			if i == 0 {
				gid = fmt.Sprintf("%d", g.ID)
				w = fmt.Sprintf("%d", g.Weight)
				acc = fmt.Sprintf("%d", g.Accesses)
			}
			t.Rows = append(t.Rows, []string{
				gid, w, acc, a.opt.Profile.Contexts[m].Describe(a.opt.Input),
			})
		}
	}
	ungrouped := 0
	for _, c := range a.opt.Profile.Contexts {
		if c.Group < 0 && a.opt.Profile.Graph.Accesses(c.ID) > 0 {
			ungrouped++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d hot contexts remain ungrouped (grey nodes in the paper's figure)", ungrouped))
	return t, nil
}

// Fig12 reproduces Figure 12: omnetpp execution time at power-of-two
// affinity distances from 2^3 to 2^17, against the unmodified-jemalloc
// median (the paper's dashed line).
func (e *Engine) Fig12() (*Table, error) {
	w := workloads.MustGet("omnetpp")
	t := &Table{
		ID:      "fig12",
		Title:   "omnetpp time elapsed vs affinity distance (dashed line = jemalloc baseline)",
		Columns: []string{"affinity distance (B)", "median time (s)", "p25", "p75", "vs baseline"},
	}
	refProg := w.Build(e.refScale(w))
	base, err := measure.MeasureTrials(refProg, measure.Policy{Kind: measure.Jemalloc},
		e.opts.Trials, e.opts.Seed, e.machine)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("jemalloc baseline median: %.4fs", base.Seconds.Median))

	lo, hi := 3, 17
	if e.opts.Quick {
		hi = 11
	}
	// Each affinity distance re-profiles and re-measures independently, so
	// the sweep points fan out over the worker pool; rows are assembled in
	// distance order afterwards.
	rows := make([][]string, hi-lo+1)
	err = pool.Map(len(rows), e.opts.Parallel, func(i int) error {
		dist := uint64(1) << (lo + i)
		cfg := pipelineConfig(w)
		cfg.Profile.AffinityDistance = dist
		testProg := w.Build(w.TestScale)
		opt, err := core.Optimize(testProg, cfg)
		if err != nil {
			return fmt.Errorf("fig12 A=%d: %w", dist, err)
		}
		pol, err := refHALOPolicy(w, refProg, opt)
		if err != nil {
			return fmt.Errorf("fig12 A=%d: %w", dist, err)
		}
		s, err := measure.MeasureTrialsParallel(refProg, pol, e.opts.Trials, e.opts.Seed, e.machine, e.trialWorkers())
		if err != nil {
			return fmt.Errorf("fig12 A=%d: %w", dist, err)
		}
		delta := measure.Improvement(base.Seconds.Median, s.Seconds.Median)
		rows[i] = []string{
			fmt.Sprintf("%d", dist),
			fmt.Sprintf("%.4f", s.Seconds.Median),
			fmt.Sprintf("%.4f", s.Seconds.P25),
			fmt.Sprintf("%.4f", s.Seconds.P75),
			fmt.Sprintf("%+.2f%%", delta),
		}
		e.opts.logf("[fig12] A=%-6d median %.4fs (%+.2f%%)", dist, s.Seconds.Median, delta)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// mainResults measures baseline, HALO and HDS for every workload, fanning
// the workloads out over the engine's worker pool. The result map is
// written under the index-addressed slice discipline (one slot per
// workload) before being assembled, so contents never depend on timing.
func (e *Engine) mainResults() (map[string][3]measure.Summary, []workloads.Workload, error) {
	list := e.workloadList()
	slots := make([][3]measure.Summary, len(list))
	err := e.forEachWorkload(list, func(i int, w workloads.Workload) error {
		a, err := e.artefactsFor(w)
		if err != nil {
			return err
		}
		base, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return err
		}
		hal, err := e.summaryFor(a, "halo", a.polHALO)
		if err != nil {
			return err
		}
		hd, err := e.summaryFor(a, "hds", a.polHDS)
		if err != nil {
			return err
		}
		slots[i] = [3]measure.Summary{base, hal, hd}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string][3]measure.Summary, len(list))
	for i, w := range list {
		out[w.Name] = slots[i]
	}
	return out, list, nil
}

// Fig13 reproduces Figure 13: the percentage by which HALO and
// hot-data-stream co-allocation reduce L1 data-cache misses.
func (e *Engine) Fig13() (*Table, error) {
	res, list, err := e.mainResults()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig13",
		Title:   "L1D cache miss reduction vs jemalloc baseline",
		Columns: []string{"benchmark", "Chilimbi et al. (HDS)", "HALO", "baseline L1D misses", "regressed"},
	}
	for _, w := range list {
		r := res[w.Name]
		haloRed := measure.Improvement(r[0].L1DMiss.Median, r[1].L1DMiss.Median)
		flag := "-"
		if haloRed < 0 {
			flag = "REGRESSED"
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].L1DMiss.Median, r[2].L1DMiss.Median)),
			fmt.Sprintf("%+.2f%%", haloRed),
			fmt.Sprintf("%.0f", r[0].L1DMiss.Median),
			flag,
		})
	}
	t.Notes = append(t.Notes,
		"positive = fewer misses than the jemalloc-like baseline (paper Figure 13)",
		"regressed = HALO increased misses on this workload; not noise — see the adversarial experiment")
	return t, nil
}

// Fig14 reproduces Figure 14: execution-time speedup.
func (e *Engine) Fig14() (*Table, error) {
	res, list, err := e.mainResults()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Speedup vs jemalloc baseline (cycle model)",
		Columns: []string{"benchmark", "Chilimbi et al. (HDS)", "HALO", "baseline time (s)"},
	}
	for _, w := range list {
		r := res[w.Name]
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].Seconds.Median, r[2].Seconds.Median)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(r[0].Seconds.Median, r[1].Seconds.Median)),
			fmt.Sprintf("%.4f", r[0].Seconds.Median),
		})
	}
	t.Notes = append(t.Notes,
		"positive = faster than baseline; time from the simulator's cycle model (paper Figure 14)")
	return t, nil
}

// Fig15 reproduces Figure 15: the effect of an allocator that randomly
// assigns small objects to one of four pools, exposing each benchmark's
// sensitivity to small-object placement.
func (e *Engine) Fig15() (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Speedup under a random 4-pool allocator (placement sensitivity)",
		Columns: []string{"benchmark", "speedup", "p25", "p75"},
	}
	list := e.workloadList()
	rows := make([][]string, len(list))
	err := e.forEachWorkload(list, func(i int, w workloads.Workload) error {
		a, err := e.artefactsFor(w)
		if err != nil {
			return err
		}
		base, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return err
		}
		rnd, err := e.summaryFor(a, "random", a.polRand)
		if err != nil {
			return err
		}
		rows[i] = []string{
			w.Name,
			fmt.Sprintf("%+.2f%%", measure.Improvement(base.Seconds.Median, rnd.Seconds.Median)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(base.Seconds.Median, rnd.Seconds.P75)),
			fmt.Sprintf("%+.2f%%", measure.Improvement(base.Seconds.Median, rnd.Seconds.P25)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"mostly-negative values mark benchmarks sensitive to small-object placement (paper Figure 15)")
	return t, nil
}

// Table1 reproduces Table 1: fragmentation of grouped data at peak usage
// under HALO's specialised allocator.
func (e *Engine) Table1() (*Table, error) {
	t := &Table{
		ID:      "tab1",
		Title:   "Fragmentation of grouped objects at peak memory usage",
		Columns: []string{"benchmark", "frag (%)", "frag (bytes)", "grouped allocs"},
	}
	list := e.workloadList()
	rows := make([][]string, len(list))
	err := e.forEachWorkload(list, func(i int, w workloads.Workload) error {
		a, err := e.artefactsFor(w)
		if err != nil {
			return err
		}
		s, err := e.summaryFor(a, "halo", a.polHALO)
		if err != nil {
			return err
		}
		m := s.Median
		rows[i] = []string{
			w.Name,
			fmt.Sprintf("%.2f%%", m.FragPct),
			formatBytes(m.FragBytes),
			fmt.Sprintf("%d", m.GroupedAllocs),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "measured at the grouped-data resident high-water mark (paper Table 1)")
	return t, nil
}

// Baseline reproduces the §5.1 observation that the jemalloc-like
// allocator universally outperforms the ptmalloc-like one on L1D misses
// ("reducing L1 data-cache misses by as much as 32%").
func (e *Engine) Baseline() (*Table, error) {
	t := &Table{
		ID:      "baseline",
		Title:   "jemalloc-like vs ptmalloc-like: L1D miss reduction",
		Columns: []string{"benchmark", "ptmalloc L1D misses", "jemalloc L1D misses", "reduction"},
	}
	list := e.workloadList()
	rows := make([][]string, len(list))
	err := e.forEachWorkload(list, func(i int, w workloads.Workload) error {
		a, err := e.artefactsFor(w)
		if err != nil {
			return err
		}
		je, err := e.summaryFor(a, "jemalloc", a.polBase)
		if err != nil {
			return err
		}
		pt, err := e.summaryFor(a, "ptmalloc", a.polPt)
		if err != nil {
			return err
		}
		rows[i] = []string{
			w.Name,
			fmt.Sprintf("%.0f", pt.L1DMiss.Median),
			fmt.Sprintf("%.0f", je.L1DMiss.Median),
			fmt.Sprintf("%+.2f%%", measure.Improvement(pt.L1DMiss.Median, je.L1DMiss.Median)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// RomsStreams reproduces the §5.2 roms observation: HALO's affinity graph
// needs tens of nodes where hot data streams need orders of magnitude more
// streams to represent the same regular behaviour.
func (e *Engine) RomsStreams() (*Table, error) {
	t := &Table{
		ID:      "roms",
		Title:   "Representation size: affinity graph vs hot data streams",
		Columns: []string{"benchmark", "graph nodes", "grammar rules", "candidate streams", "hot streams", "trace refs"},
	}
	list := e.workloadList()
	rows := make([][]string, len(list))
	err := e.forEachWorkload(list, func(i int, w workloads.Workload) error {
		a, err := e.artefactsFor(w)
		if err != nil {
			return err
		}
		rows[i] = []string{
			w.Name,
			fmt.Sprintf("%d", a.opt.Profile.Graph.NumNodes()),
			fmt.Sprintf("%d", a.hds.Rules),
			fmt.Sprintf("%d", a.hds.Candidates),
			fmt.Sprintf("%d", a.hds.Streams),
			fmt.Sprintf("%d", a.hds.TraceLen),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the paper reports 31 affinity nodes vs >150,000 streams for roms; the ratio, not the absolute count, is the reproduction target")
	return t, nil
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
