package affinity

import (
	"testing"
	"testing/quick"
)

// fakeInter lets tests script co-allocatability conflicts.
type fakeInter struct {
	conflicts map[Ctx][]uint64 // context -> allocation serials
}

func (f fakeInter) AllocatedBetween(c Ctx, lo, hi uint64) bool {
	for _, s := range f.conflicts[c] {
		if s > lo && s < hi {
			return true
		}
	}
	return false
}

func acc(obj uint64, ctx Ctx, size uint32) Access {
	return Access{Obj: obj, Ctx: ctx, Size: size, Serial: obj}
}

func TestQueueBasicAffinity(t *testing.T) {
	g := NewGraph()
	q := NewQueue(32, g, nil)
	// Two 8-byte accesses to different objects, adjacent: affinitive.
	q.Push(acc(1, 0, 8))
	q.Push(acc(2, 1, 8))
	if w := g.Weight(0, 1); w != 1 {
		t.Fatalf("weight(0,1) = %d, want 1", w)
	}
	if g.TotalAccesses() != 2 {
		t.Fatalf("total accesses = %d", g.TotalAccesses())
	}
}

func TestQueueAffinityDistanceWindow(t *testing.T) {
	// With A = 16 and 8-byte entries, an access is affinitive with the
	// previous two entries (0 and 8 bytes between) but not the third
	// (16 bytes between).
	g := NewGraph()
	q := NewQueue(16, g, nil)
	q.Push(acc(1, 1, 8))
	q.Push(acc(2, 2, 8))
	q.Push(acc(3, 3, 8))
	q.Push(acc(4, 4, 8))
	if w := g.Weight(4, 3); w != 1 {
		t.Errorf("adjacent pair weight = %d, want 1", w)
	}
	if w := g.Weight(4, 2); w != 1 {
		t.Errorf("one-apart pair weight = %d, want 1", w)
	}
	if w := g.Weight(4, 1); w != 0 {
		t.Errorf("beyond-window pair weight = %d, want 0", w)
	}
}

func TestQueueMacroAccessDedup(t *testing.T) {
	// Consecutive accesses to one object are a single macro access: no
	// re-traversal, no access recount.
	g := NewGraph()
	q := NewQueue(64, g, nil)
	q.Push(acc(1, 0, 8))
	q.Push(acc(2, 1, 8))
	q.Push(acc(2, 1, 8))
	q.Push(acc(2, 1, 8))
	if g.TotalAccesses() != 2 {
		t.Fatalf("macro accesses = %d, want 2", g.TotalAccesses())
	}
	if w := g.Weight(0, 1); w != 1 {
		t.Fatalf("weight = %d, want 1 (no duplicate edges)", w)
	}
}

func TestQueueNoSelfAffinity(t *testing.T) {
	g := NewGraph()
	q := NewQueue(64, g, nil)
	q.Push(acc(1, 0, 8))
	q.Push(acc(2, 0, 8))
	q.Push(acc(1, 0, 8)) // non-consecutive revisit of object 1
	// Loop edge (0,0) may exist between objects 1 and 2, but object 1
	// must not be affinitive with itself.
	if w := g.Weight(0, 0); w != 2 {
		// 2 pairs: (2 after 1), (1 after 2); the second traversal of
		// object 1 pairs with object 2 only.
		t.Fatalf("loop weight = %d, want 2", w)
	}
}

func TestQueueDoubleCountSuppression(t *testing.T) {
	// Object 2 appears twice in the window; a new access to object 3 may
	// count it only once.
	g := NewGraph()
	q := NewQueue(128, g, nil)
	q.Push(acc(2, 1, 8))
	q.Push(acc(9, 5, 8))
	q.Push(acc(2, 1, 8)) // second occurrence (non-consecutive)
	q.Push(acc(3, 2, 8))
	if w := g.Weight(2, 1); w != 1 {
		t.Fatalf("weight(ctx2,ctx1) = %d, want 1 (double counting suppressed)", w)
	}
}

func TestQueueCoallocatability(t *testing.T) {
	// Context 1 allocated serial 5 between objects 2 and 8: accesses to
	// those objects are not affinitive if either endpoint is context 1.
	inter := fakeInter{conflicts: map[Ctx][]uint64{1: {5}}}
	g := NewGraph()
	q := NewQueue(64, g, inter)
	q.Push(acc(2, 1, 8))
	q.Push(acc(8, 2, 8))
	if w := g.Weight(1, 2); w != 0 {
		t.Fatalf("conflicting pair counted: weight = %d", w)
	}
	// A pair with no intervening allocation still counts.
	q.Push(acc(9, 3, 8))
	if w := g.Weight(2, 3); w != 1 {
		t.Fatalf("clean pair weight = %d, want 1", w)
	}
}

func TestQueueEviction(t *testing.T) {
	g := NewGraph()
	q := NewQueue(32, g, nil)
	for i := uint64(1); i <= 100; i++ {
		q.Push(acc(i, Ctx(i%7), 8))
	}
	// With A=32 and 8-byte entries the queue holds at most A/8 + 1
	// entries whose preceding bytes are under the distance.
	if q.Len() > 5 {
		t.Fatalf("queue holds %d entries; eviction broken", q.Len())
	}
	if q.Bytes() >= 32+8 {
		t.Fatalf("queue bytes = %d", q.Bytes())
	}
}

func TestQueueWindowInvariantProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		g := NewGraph()
		q := NewQueue(64, g, nil)
		for i, s := range sizes {
			size := uint32(s%16) + 1
			q.Push(acc(uint64(i+1), Ctx(i%5), size))
			// Invariant: evicted entries have >= A bytes of newer
			// entries; all but the oldest live entry fit in A.
			if q.Len() > 0 && q.Bytes() > 64+16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCompactionReleasesBurstMemory(t *testing.T) {
	g := NewGraph()
	q := NewQueue(4096, g, nil)
	// Bursty phase: thousands of 1-byte entries keep a ~4096-entry window
	// live, growing the backing array.
	for i := uint64(1); i <= 6000; i++ {
		q.Push(acc(i, Ctx(i%3), 1))
	}
	if cap(q.entries) < 4096 {
		t.Fatalf("burst did not grow the window: cap %d", cap(q.entries))
	}
	// Page-sized entries shrink the live window to a couple of entries;
	// compaction must release the burst's backing array, not just skip
	// over the dead prefix.
	for i := uint64(10000); i < 10004; i++ {
		q.Push(acc(i, Ctx(i%3), 4096))
	}
	if c := cap(q.entries); c >= 4096 {
		t.Fatalf("backing array not shrunk after burst: cap %d, live %d", c, q.Len())
	}
	if q.Len() == 0 || q.Len() > 2 {
		t.Fatalf("live window = %d entries after page-sized accesses", q.Len())
	}
}

func TestGraphNoCtxNode(t *testing.T) {
	// The NoCtx sentinel (-1) is a legal node: the dense layout must keep
	// it addressable and ordered before every real context.
	g := NewGraph()
	g.AddAccess(NoCtx)
	g.AddEdge(NoCtx, 2, 3)
	nodes := g.Nodes()
	if len(nodes) != 2 || nodes[0] != NoCtx || nodes[1] != 2 {
		t.Fatalf("nodes = %v, want [-1 2]", nodes)
	}
	if g.Weight(2, NoCtx) != 3 {
		t.Fatalf("weight = %d, want 3", g.Weight(2, NoCtx))
	}
	if g.Accesses(NoCtx) != 1 || g.TotalAccesses() != 1 {
		t.Fatalf("accesses = %d/%d, want 1/1", g.Accesses(NoCtx), g.TotalAccesses())
	}
}

func TestGraphFilterCoverage(t *testing.T) {
	g := NewGraph()
	// Context 0: 90 accesses; context 1: 9; context 2: 1.
	for i := 0; i < 90; i++ {
		g.AddAccess(0)
	}
	for i := 0; i < 9; i++ {
		g.AddAccess(1)
	}
	g.AddAccess(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	f := g.Filter(0.90)
	if f.Accesses(0) == 0 {
		t.Fatal("hottest node filtered out")
	}
	if f.Accesses(2) != 0 {
		t.Fatal("cold node survived the 90% filter")
	}
	if f.Weight(1, 2) != 0 {
		t.Fatal("edge to filtered node survived")
	}
	if f.TotalAccesses() != 100 {
		t.Fatalf("filter changed total accesses: %d", f.TotalAccesses())
	}
}

func TestGraphPrune(t *testing.T) {
	g := NewGraph()
	g.AddAccess(0)
	g.AddAccess(1)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 1)
	p := g.Prune(5)
	if p.Weight(0, 1) != 10 || p.Weight(0, 2) != 0 {
		t.Fatalf("prune kept %d/%d", p.Weight(0, 1), p.Weight(0, 2))
	}
}

func TestEdgeKeyNormalisation(t *testing.T) {
	if MakeEdge(5, 3) != MakeEdge(3, 5) {
		t.Fatal("edge keys not normalised")
	}
	if !MakeEdge(4, 4).IsLoop() {
		t.Fatal("loop not detected")
	}
	g := NewGraph()
	g.AddEdge(5, 3, 1)
	g.AddEdge(3, 5, 1)
	if g.Weight(3, 5) != 2 {
		t.Fatalf("weight = %d, want 2", g.Weight(3, 5))
	}
}

func TestGraphDeterministicOrder(t *testing.T) {
	g := NewGraph()
	for _, c := range []Ctx{7, 2, 9, 1} {
		g.AddAccess(c)
	}
	g.AddEdge(7, 2, 1)
	g.AddEdge(9, 1, 1)
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatal("nodes not sorted")
		}
	}
	edges := g.Edges()
	if len(edges) != 2 || edges[0].U > edges[1].U {
		t.Fatalf("edges not deterministic: %v", edges)
	}
}
