package affinity

// Access is one macro-level heap access as seen by the profiler.
type Access struct {
	Obj    uint64 // object identity (allocation serial)
	Ctx    Ctx    // reduced allocation context of the object
	Size   uint32 // access size in bytes (a queue entry's width, Figure 5)
	Serial uint64 // the object's allocation serial, for co-allocatability
}

// Interference answers the co-allocatability constraint: whether a context
// made any allocation chronologically strictly between two serials. The
// profiler implements it over its per-context allocation logs.
type Interference interface {
	AllocatedBetween(c Ctx, lo, hi uint64) bool
}

// maxDenseObj bounds the dense per-object dedup array. Profiler object
// identities are allocation serials, issued contiguously from 1, so real
// runs stay far below it; synthetic ids beyond the bound fall back to a
// per-traversal map rather than forcing a giant allocation.
const maxDenseObj = 1 << 26

// Queue is the affinity queue of §4.1 (Figure 5): a window over the most
// recent heap accesses, implicitly sized by the affinity distance A. Two
// entries are affinitive when the sizes of the entries strictly between
// them sum to less than A bytes.
type Queue struct {
	dist  uint64 // the affinity distance A
	graph *Graph
	inter Interference

	entries []Access // oldest first
	head    int      // index of the oldest live entry
	bytes   uint64   // total size of live entries

	// Double-counting suppression is generation-stamped: each traversal
	// bumps gen, and an object is "seen" when its stamp matches. This
	// replaces a per-access map clear with one integer increment, and the
	// dense array keeps marking to a single indexed store.
	//
	// seenGen grows with the highest serial marked — 4 bytes per
	// allocation issued, the same order as the profiler's own retained
	// per-allocation logs — and is deliberately never shrunk: serials
	// only increase, so a smaller array would be reallocated on the next
	// traversal, and a window-bounded set would push long-lived hot
	// objects (old serials, touched every traversal) onto the slow map.
	gen     uint32
	seenGen []uint32          // object serial -> generation last seen
	seenBig map[uint64]uint32 // overflow for ids >= maxDenseObj

	// Pairs counts affinitive pairs recorded, for diagnostics.
	Pairs uint64
}

// NewQueue builds a queue feeding the given graph. dist is the affinity
// distance A in bytes (the paper evaluates 2^3..2^17 and selects 128).
func NewQueue(dist uint64, graph *Graph, inter Interference) *Queue {
	return &Queue{
		dist:  dist,
		graph: graph,
		inter: inter,
	}
}

// beginTraversal starts a new seen-generation, invalidating every stamp
// from prior traversals in O(1). The uint32 generation wraps after 2^32-1
// traversals; on wrap every stale stamp is zeroed so no old stamp can
// alias the restarted counter.
func (q *Queue) beginTraversal() {
	q.gen++
	if q.gen == 0 {
		clear(q.seenGen)
		clear(q.seenBig)
		q.gen = 1
	}
}

// markSeen stamps an object as counted in the current traversal.
func (q *Queue) markSeen(obj uint64) {
	if obj < maxDenseObj {
		if int(obj) >= len(q.seenGen) {
			n := len(q.seenGen) * 2
			if n <= int(obj) {
				n = int(obj) + 1
			}
			grown := make([]uint32, n)
			copy(grown, q.seenGen)
			q.seenGen = grown
		}
		q.seenGen[obj] = q.gen
		return
	}
	if q.seenBig == nil {
		q.seenBig = make(map[uint64]uint32)
	}
	q.seenBig[obj] = q.gen
}

// seen reports whether the object was already counted in this traversal.
func (q *Queue) seen(obj uint64) bool {
	if obj < maxDenseObj {
		return int(obj) < len(q.seenGen) && q.seenGen[obj] == q.gen
	}
	return q.seenBig[obj] == q.gen
}

// Push observes one machine-level access. Consecutive accesses to a single
// object are part of the same macro-level access and do not re-trigger
// traversal (the deduplication constraint). Steady-state pushes allocate
// nothing: the entry window, the dedup stamps and the graph all reuse
// their backing arrays.
func (q *Queue) Push(a Access) {
	if n := len(q.entries); n > q.head && q.entries[n-1].Obj == a.Obj {
		return
	}
	q.graph.AddAccess(a.Ctx)

	// Traverse from newest to oldest. `between` accumulates the sizes of
	// the entries strictly between the candidate and the new access.
	q.beginTraversal()
	var between uint64
	for i := len(q.entries) - 1; i >= q.head && between < q.dist; i-- {
		cand := q.entries[i]
		if q.affinitive(a, cand) {
			q.graph.AddEdge(a.Ctx, cand.Ctx, 1)
			q.Pairs++
		}
		q.markSeen(cand.Obj)
		between += uint64(cand.Size)
	}

	// Append and evict entries that can never be affinitive again: those
	// with at least A bytes of newer entries in front of them.
	q.entries = append(q.entries, a)
	q.bytes += uint64(a.Size)
	for q.head < len(q.entries) && q.bytes-uint64(q.entries[q.head].Size) >= q.dist {
		q.bytes -= uint64(q.entries[q.head].Size)
		q.head++
	}
	q.compact()
}

// compact bounds the backing array. Two triggers: the dead prefix
// dominates the slice (the original growth bound), or a bursty phase left
// capacity far beyond the live window — the second re-allocates at the
// window size so the burst's memory is actually released.
func (q *Queue) compact() {
	live := len(q.entries) - q.head
	deadPrefix := q.head > 1024 && q.head > live
	oversized := q.head > 0 && cap(q.entries) >= 4096 && live*4 < cap(q.entries)
	if !deadPrefix && !oversized {
		return
	}
	q.entries = append(q.entries[:0:0], q.entries[q.head:]...)
	q.head = 0
}

// affinitive applies the paper's constraints to a candidate pair (u = the
// new access, v = the queue entry).
func (q *Queue) affinitive(u, v Access) bool {
	// No self-affinity: objects occupy a single memory location.
	if u.Obj == v.Obj {
		return false
	}
	// No double counting: each unique object at most once per traversal.
	if q.seen(v.Obj) {
		return false
	}
	// Co-allocatability: no allocation made chronologically between u and
	// v may originate from either context, otherwise the pair could not
	// actually be co-located by contiguous pool allocation.
	lo, hi := u.Serial, v.Serial
	if lo > hi {
		lo, hi = hi, lo
	}
	if q.inter != nil && hi > lo+1 {
		if q.inter.AllocatedBetween(u.Ctx, lo, hi) {
			return false
		}
		if v.Ctx != u.Ctx && q.inter.AllocatedBetween(v.Ctx, lo, hi) {
			return false
		}
	}
	return true
}

// Len reports the live entry count.
func (q *Queue) Len() int { return len(q.entries) - q.head }

// Bytes reports the live entry bytes (the queue's implicit size).
func (q *Queue) Bytes() uint64 { return q.bytes }
