package affinity

// Access is one macro-level heap access as seen by the profiler.
type Access struct {
	Obj    uint64 // object identity (allocation serial)
	Ctx    Ctx    // reduced allocation context of the object
	Size   uint32 // access size in bytes (a queue entry's width, Figure 5)
	Serial uint64 // the object's allocation serial, for co-allocatability
}

// Interference answers the co-allocatability constraint: whether a context
// made any allocation chronologically strictly between two serials. The
// profiler implements it over its per-context allocation logs.
type Interference interface {
	AllocatedBetween(c Ctx, lo, hi uint64) bool
}

// Queue is the affinity queue of §4.1 (Figure 5): a window over the most
// recent heap accesses, implicitly sized by the affinity distance A. Two
// entries are affinitive when the sizes of the entries strictly between
// them sum to less than A bytes.
type Queue struct {
	dist  uint64 // the affinity distance A
	graph *Graph
	inter Interference

	entries []Access // oldest first
	head    int      // index of the oldest live entry
	bytes   uint64   // total size of live entries

	seen map[uint64]bool // per-traversal double-counting suppression

	// Pairs counts affinitive pairs recorded, for diagnostics.
	Pairs uint64
}

// NewQueue builds a queue feeding the given graph. dist is the affinity
// distance A in bytes (the paper evaluates 2^3..2^17 and selects 128).
func NewQueue(dist uint64, graph *Graph, inter Interference) *Queue {
	return &Queue{
		dist:  dist,
		graph: graph,
		inter: inter,
		seen:  make(map[uint64]bool, 64),
	}
}

// Push observes one machine-level access. Consecutive accesses to a single
// object are part of the same macro-level access and do not re-trigger
// traversal (the deduplication constraint).
func (q *Queue) Push(a Access) {
	if n := len(q.entries); n > q.head && q.entries[n-1].Obj == a.Obj {
		return
	}
	q.graph.AddAccess(a.Ctx)

	// Traverse from newest to oldest. `between` accumulates the sizes of
	// the entries strictly between the candidate and the new access.
	clear(q.seen)
	var between uint64
	for i := len(q.entries) - 1; i >= q.head && between < q.dist; i-- {
		cand := q.entries[i]
		if q.affinitive(a, cand) {
			q.graph.AddEdge(a.Ctx, cand.Ctx, 1)
			q.Pairs++
		}
		q.seen[cand.Obj] = true
		between += uint64(cand.Size)
	}

	// Append and evict entries that can never be affinitive again: those
	// with at least A bytes of newer entries in front of them.
	q.entries = append(q.entries, a)
	q.bytes += uint64(a.Size)
	for q.head < len(q.entries) && q.bytes-uint64(q.entries[q.head].Size) >= q.dist {
		q.bytes -= uint64(q.entries[q.head].Size)
		q.head++
	}
	// Compact occasionally so the backing array does not grow unboundedly.
	if q.head > 1024 && q.head*2 > len(q.entries) {
		q.entries = append(q.entries[:0:0], q.entries[q.head:]...)
		q.head = 0
	}
}

// affinitive applies the paper's constraints to a candidate pair (u = the
// new access, v = the queue entry).
func (q *Queue) affinitive(u, v Access) bool {
	// No self-affinity: objects occupy a single memory location.
	if u.Obj == v.Obj {
		return false
	}
	// No double counting: each unique object at most once per traversal.
	if q.seen[v.Obj] {
		return false
	}
	// Co-allocatability: no allocation made chronologically between u and
	// v may originate from either context, otherwise the pair could not
	// actually be co-located by contiguous pool allocation.
	lo, hi := u.Serial, v.Serial
	if lo > hi {
		lo, hi = hi, lo
	}
	if q.inter != nil && hi > lo+1 {
		if q.inter.AllocatedBetween(u.Ctx, lo, hi) {
			return false
		}
		if v.Ctx != u.Ctx && q.inter.AllocatedBetween(v.Ctx, lo, hi) {
			return false
		}
	}
	return true
}

// Len reports the live entry count.
func (q *Queue) Len() int { return len(q.entries) - q.head }

// Bytes reports the live entry bytes (the queue's implicit size).
func (q *Queue) Bytes() uint64 { return q.bytes }
