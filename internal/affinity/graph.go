// Package affinity implements the paper's model of data reference locality
// (§4.1): the affinity queue, which observes the stream of heap accesses
// and detects contemporaneous accesses to objects from different allocation
// contexts, and the pairwise affinity graph those observations accumulate
// into. Nodes are reduced allocation contexts; edge weights count affinitive
// access pairs, subject to the paper's four constraints (deduplication, no
// self-affinity, no double counting, co-allocatability).
package affinity

import (
	"fmt"
	"sort"
	"strings"
)

// Ctx identifies a reduced allocation context (interned by the profiler).
type Ctx int32

// NoCtx marks an access to an object with no tracked context.
const NoCtx Ctx = -1

// EdgeKey is an unordered context pair; U <= V. Loop edges (U == V) arise
// from affinitive accesses to two different objects of the same context and
// are treated specially by the grouping score (Figure 7).
type EdgeKey struct {
	U, V Ctx
}

// MakeEdge normalises the pair.
func MakeEdge(a, b Ctx) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{a, b}
}

// IsLoop reports whether the edge is a self-loop.
func (e EdgeKey) IsLoop() bool { return e.U == e.V }

// Graph is the pairwise affinity graph.
type Graph struct {
	nodes map[Ctx]uint64     // context -> macro accesses observed
	edges map[EdgeKey]uint64 // pair -> affinitive access pairs
	total uint64             // total macro accesses (including filtered)
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[Ctx]uint64), edges: make(map[EdgeKey]uint64)}
}

// AddAccess records one macro access to an object of the given context.
func (g *Graph) AddAccess(c Ctx) {
	g.nodes[c]++
	g.total++
}

// AddEdge increments the affinity weight between two contexts, registering
// the endpoints as nodes if they have not been seen yet.
func (g *Graph) AddEdge(a, b Ctx, w uint64) {
	if _, ok := g.nodes[a]; !ok {
		g.nodes[a] = 0
	}
	if _, ok := g.nodes[b]; !ok {
		g.nodes[b] = 0
	}
	g.edges[MakeEdge(a, b)] += w
}

// AddAccesses records n macro accesses to a context at once. It is the
// bulk form of AddAccess used when merging or reconstructing graphs.
func (g *Graph) AddAccesses(c Ctx, n uint64) {
	g.nodes[c] += n
	g.total += n
}

// SetNodeAccesses sets a node's access count without touching the total.
// Decoders use it to rebuild filtered graphs, whose totals deliberately
// exceed the sum of their surviving nodes.
func (g *Graph) SetNodeAccesses(c Ctx, n uint64) { g.nodes[c] = n }

// SetTotalAccesses overrides the total macro-access count. Decoders call
// it after SetNodeAccesses/AddEdge to restore a serialised graph exactly.
func (g *Graph) SetTotalAccesses(n uint64) { g.total = n }

// Merge folds other into g, translating every context through remap. Node
// access counts, edge weights and the observed-access total all add; the
// result is independent of merge order because addition commutes.
func (g *Graph) Merge(other *Graph, remap func(Ctx) Ctx) {
	for c, a := range other.nodes {
		g.nodes[remap(c)] += a // inserts the node even when a == 0
	}
	for e, w := range other.edges {
		g.AddEdge(remap(e.U), remap(e.V), w)
	}
	g.total += other.total
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the edge count (loops included).
func (g *Graph) NumEdges() int { return len(g.edges) }

// TotalAccesses reports all macro accesses observed, which the grouping
// threshold is relative to ("graph.accesses" in Figure 6).
func (g *Graph) TotalAccesses() uint64 { return g.total }

// Accesses returns the access count of a context.
func (g *Graph) Accesses(c Ctx) uint64 { return g.nodes[c] }

// Weight returns the affinity between two contexts.
func (g *Graph) Weight(a, b Ctx) uint64 { return g.edges[MakeEdge(a, b)] }

// Nodes returns the contexts in deterministic (ascending) order.
func (g *Graph) Nodes() []Ctx {
	out := make([]Ctx, 0, len(g.nodes))
	for c := range g.nodes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() []EdgeKey {
	out := make([]EdgeKey, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// EdgeWeights returns a copy of the weight map.
func (g *Graph) EdgeWeights() map[EdgeKey]uint64 {
	out := make(map[EdgeKey]uint64, len(g.edges))
	for k, v := range g.edges {
		out[k] = v
	}
	return out
}

// Filter implements the paper's noise reduction: nodes are visited from
// most to least accessed, and once `coverage` (e.g. 0.90) of all observed
// accesses is accounted for, the remaining nodes are discarded along with
// their incident edges. The returned graph keeps the original total access
// count, as the grouping threshold is relative to all observed accesses.
func (g *Graph) Filter(coverage float64) *Graph {
	type na struct {
		c Ctx
		a uint64
	}
	nodes := make([]na, 0, len(g.nodes))
	for c, a := range g.nodes {
		nodes = append(nodes, na{c, a})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].a != nodes[j].a {
			return nodes[i].a > nodes[j].a
		}
		return nodes[i].c < nodes[j].c
	})
	keep := make(map[Ctx]bool, len(nodes))
	var acc uint64
	limit := uint64(coverage * float64(g.total))
	for _, n := range nodes {
		if acc >= limit {
			break
		}
		keep[n.c] = true
		acc += n.a
	}
	out := NewGraph()
	out.total = g.total
	for c, a := range g.nodes {
		if keep[c] {
			out.nodes[c] = a
		}
	}
	for e, w := range g.edges {
		if keep[e.U] && keep[e.V] {
			out.edges[e] = w
		}
	}
	return out
}

// Prune removes edges lighter than minWeight (Figure 6's first step).
func (g *Graph) Prune(minWeight uint64) *Graph {
	out := NewGraph()
	out.total = g.total
	for c, a := range g.nodes {
		out.nodes[c] = a
	}
	for e, w := range g.edges {
		if w >= minWeight {
			out.edges[e] = w
		}
	}
	return out
}

// Adjacency returns, for each node, its neighbours (loops excluded) in
// deterministic order.
func (g *Graph) Adjacency() map[Ctx][]Ctx {
	adj := make(map[Ctx][]Ctx, len(g.nodes))
	for e := range g.edges {
		if e.IsLoop() {
			continue
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for c := range adj {
		ns := adj[c]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		adj[c] = ns
	}
	return adj
}

// String renders a compact summary.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "affinity graph: %d nodes, %d edges, %d accesses\n", len(g.nodes), len(g.edges), g.total)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  (%d,%d) w=%d\n", e.U, e.V, g.edges[e])
	}
	return b.String()
}
