// Package affinity implements the paper's model of data reference locality
// (§4.1): the affinity queue, which observes the stream of heap accesses
// and detects contemporaneous accesses to objects from different allocation
// contexts, and the pairwise affinity graph those observations accumulate
// into. Nodes are reduced allocation contexts; edge weights count affinitive
// access pairs, subject to the paper's four constraints (deduplication, no
// self-affinity, no double counting, co-allocatability).
//
// Contexts are densely interned small integers, so the graph is laid out
// for the profiling fast path: node access counts live in a slice indexed
// by context, and edge weights in a flat open-addressing table keyed by the
// packed context pair. Steady-state AddAccess/AddEdge perform no hashing of
// composite keys, no pointer chasing and no allocation. Every exported view
// (Nodes, Edges, EdgeWeights, Adjacency, String) remains sorted and
// deterministic, and Merge remains order-independent, so serialisation and
// grouping behave exactly as they did over the map-based layout.
package affinity

import (
	"fmt"
	"sort"
	"strings"
)

// Ctx identifies a reduced allocation context (interned by the profiler).
type Ctx int32

// NoCtx marks an access to an object with no tracked context.
const NoCtx Ctx = -1

// EdgeKey is an unordered context pair; U <= V. Loop edges (U == V) arise
// from affinitive accesses to two different objects of the same context and
// are treated specially by the grouping score (Figure 7).
type EdgeKey struct {
	U, V Ctx
}

// MakeEdge normalises the pair.
func MakeEdge(a, b Ctx) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{a, b}
}

// IsLoop reports whether the edge is a self-loop.
func (e EdgeKey) IsLoop() bool { return e.U == e.V }

// pack encodes a normalised edge as one 64-bit table key.
func (e EdgeKey) pack() uint64 {
	return uint64(uint32(e.U))<<32 | uint64(uint32(e.V))
}

// unpackEdge inverts pack.
func unpackEdge(k uint64) EdgeKey {
	return EdgeKey{Ctx(int32(k >> 32)), Ctx(int32(k))}
}

// Graph is the pairwise affinity graph.
type Graph struct {
	// acc[int(c)+1] is the macro-access count of context c; the +1 keeps
	// the NoCtx sentinel representable. present distinguishes a node seen
	// with zero accesses (an edge endpoint) from an absent one.
	acc     []uint64
	present []bool
	nnodes  int

	edges edgeTable
	total uint64 // total macro accesses (including filtered)
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// slot grows the node arrays to cover c and returns its index.
func (g *Graph) slot(c Ctx) int {
	i := int(c) + 1
	if i >= len(g.acc) {
		n := len(g.acc) * 2
		if n <= i {
			n = i + 1
		}
		acc := make([]uint64, n)
		copy(acc, g.acc)
		g.acc = acc
		present := make([]bool, n)
		copy(present, g.present)
		g.present = present
	}
	if !g.present[i] {
		g.present[i] = true
		g.nnodes++
	}
	return i
}

// AddAccess records one macro access to an object of the given context.
//
//halo:hot
func (g *Graph) AddAccess(c Ctx) {
	i := g.slot(c)
	g.acc[i]++
	g.total++
}

// AddEdge increments the affinity weight between two contexts, registering
// the endpoints as nodes if they have not been seen yet.
//
//halo:hot
func (g *Graph) AddEdge(a, b Ctx, w uint64) {
	g.slot(a)
	g.slot(b)
	g.edges.add(MakeEdge(a, b).pack(), w)
}

// AddAccesses records n macro accesses to a context at once. It is the
// bulk form of AddAccess used when merging or reconstructing graphs.
func (g *Graph) AddAccesses(c Ctx, n uint64) {
	i := g.slot(c)
	g.acc[i] += n
	g.total += n
}

// SetNodeAccesses sets a node's access count without touching the total.
// Decoders use it to rebuild filtered graphs, whose totals deliberately
// exceed the sum of their surviving nodes.
func (g *Graph) SetNodeAccesses(c Ctx, n uint64) {
	i := g.slot(c)
	g.acc[i] = n
}

// SetTotalAccesses overrides the total macro-access count. Decoders call
// it after SetNodeAccesses/AddEdge to restore a serialised graph exactly.
func (g *Graph) SetTotalAccesses(n uint64) { g.total = n }

// Merge folds other into g, translating every context through remap. Node
// access counts, edge weights and the observed-access total all add; the
// result is independent of merge order because addition commutes.
func (g *Graph) Merge(other *Graph, remap func(Ctx) Ctx) {
	for i, ok := range other.present {
		if !ok {
			continue
		}
		c := remap(Ctx(i - 1))
		j := g.slot(c) // inserts the node even when acc == 0
		g.acc[j] += other.acc[i]
	}
	other.edges.forEach(func(k, w uint64) {
		e := unpackEdge(k)
		g.AddEdge(remap(e.U), remap(e.V), w)
	})
	g.total += other.total
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return g.nnodes }

// NumEdges reports the edge count (loops included).
func (g *Graph) NumEdges() int { return g.edges.n }

// TotalAccesses reports all macro accesses observed, which the grouping
// threshold is relative to ("graph.accesses" in Figure 6).
func (g *Graph) TotalAccesses() uint64 { return g.total }

// Accesses returns the access count of a context.
func (g *Graph) Accesses(c Ctx) uint64 {
	if i := int(c) + 1; i >= 0 && i < len(g.acc) {
		return g.acc[i]
	}
	return 0
}

// Weight returns the affinity between two contexts.
func (g *Graph) Weight(a, b Ctx) uint64 { return g.edges.get(MakeEdge(a, b).pack()) }

// Nodes returns the contexts in deterministic (ascending) order. The node
// array is indexed by context, so a single pass is already sorted.
func (g *Graph) Nodes() []Ctx {
	out := make([]Ctx, 0, g.nnodes)
	for i, ok := range g.present {
		if ok {
			out = append(out, Ctx(i-1))
		}
	}
	return out
}

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() []EdgeKey {
	out := make([]EdgeKey, 0, g.edges.n)
	g.edges.forEach(func(k, _ uint64) {
		out = append(out, unpackEdge(k))
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// EdgeWeights returns a copy of the edge weights keyed by pair.
func (g *Graph) EdgeWeights() map[EdgeKey]uint64 {
	out := make(map[EdgeKey]uint64, g.edges.n)
	g.edges.forEach(func(k, w uint64) {
		out[unpackEdge(k)] = w
	})
	return out
}

// Filter implements the paper's noise reduction: nodes are visited from
// most to least accessed, and once `coverage` (e.g. 0.90) of all observed
// accesses is accounted for, the remaining nodes are discarded along with
// their incident edges. The returned graph keeps the original total access
// count, as the grouping threshold is relative to all observed accesses.
func (g *Graph) Filter(coverage float64) *Graph {
	type na struct {
		c Ctx
		a uint64
	}
	nodes := make([]na, 0, g.nnodes)
	for i, ok := range g.present {
		if ok {
			nodes = append(nodes, na{Ctx(i - 1), g.acc[i]})
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].a != nodes[j].a {
			return nodes[i].a > nodes[j].a
		}
		return nodes[i].c < nodes[j].c
	})
	keep := make([]bool, len(g.present))
	var accd uint64
	limit := uint64(coverage * float64(g.total))
	for _, n := range nodes {
		if accd >= limit {
			break
		}
		keep[int(n.c)+1] = true
		accd += n.a
	}
	out := NewGraph()
	out.total = g.total
	for i, ok := range g.present {
		if ok && keep[i] {
			j := out.slot(Ctx(i - 1))
			out.acc[j] = g.acc[i]
		}
	}
	g.edges.forEach(func(k, w uint64) {
		e := unpackEdge(k)
		if keep[int(e.U)+1] && keep[int(e.V)+1] {
			out.edges.add(k, w)
		}
	})
	return out
}

// Prune removes edges lighter than minWeight (Figure 6's first step).
func (g *Graph) Prune(minWeight uint64) *Graph {
	out := NewGraph()
	out.total = g.total
	for i, ok := range g.present {
		if ok {
			j := out.slot(Ctx(i - 1))
			out.acc[j] = g.acc[i]
		}
	}
	g.edges.forEach(func(k, w uint64) {
		if w >= minWeight {
			out.edges.add(k, w)
		}
	})
	return out
}

// Adjacency returns, for each node, its neighbours (loops excluded) in
// deterministic order.
func (g *Graph) Adjacency() map[Ctx][]Ctx {
	adj := make(map[Ctx][]Ctx, g.nnodes)
	g.edges.forEach(func(k, _ uint64) {
		e := unpackEdge(k)
		if e.IsLoop() {
			return
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	})
	for c := range adj {
		ns := adj[c]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		adj[c] = ns
	}
	return adj
}

// String renders a compact summary.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "affinity graph: %d nodes, %d edges, %d accesses\n", g.nnodes, g.edges.n, g.total)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  (%d,%d) w=%d\n", e.U, e.V, g.Weight(e.U, e.V))
	}
	return b.String()
}

// edgeTable is a flat open-addressing hash table from packed edge keys to
// weights: power-of-two capacity, linear probing, no deletion (derived
// graphs are rebuilt, never edited in place). All 2^64 key values are
// legal, so occupancy is tracked explicitly rather than via a sentinel.
type edgeTable struct {
	keys []uint64
	vals []uint64
	occ  []bool
	n    int
}

const edgeTableMinCap = 16

// mix finalises a packed key into a table hash (Murmur3 finaliser).
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// add increments the weight stored under k, inserting it if absent.
//
//halo:hot
func (t *edgeTable) add(k, w uint64) {
	if t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := mix(k) & mask
	for t.occ[i] {
		if t.keys[i] == k {
			t.vals[i] += w
			return
		}
		i = (i + 1) & mask
	}
	t.occ[i] = true
	t.keys[i] = k
	t.vals[i] = w
	t.n++
}

// get returns the weight stored under k, or zero.
//
//halo:hot
func (t *edgeTable) get(k uint64) uint64 {
	if t.n == 0 {
		return 0
	}
	mask := uint64(len(t.keys) - 1)
	i := mix(k) & mask
	for t.occ[i] {
		if t.keys[i] == k {
			return t.vals[i]
		}
		i = (i + 1) & mask
	}
	return 0
}

// forEach visits every stored edge in unspecified order; callers that
// expose results sort them (Edges) or are order-insensitive (Merge,
// Filter, Prune, EdgeWeights, Adjacency).
func (t *edgeTable) forEach(fn func(k, w uint64)) {
	for i, ok := range t.occ {
		if ok {
			fn(t.keys[i], t.vals[i])
		}
	}
}

// grow doubles the table and rehashes every entry.
func (t *edgeTable) grow() {
	newCap := len(t.keys) * 2
	if newCap < edgeTableMinCap {
		newCap = edgeTableMinCap
	}
	keys := make([]uint64, newCap)
	vals := make([]uint64, newCap)
	occ := make([]bool, newCap)
	mask := uint64(newCap - 1)
	for i, ok := range t.occ {
		if !ok {
			continue
		}
		j := mix(t.keys[i]) & mask
		for occ[j] {
			j = (j + 1) & mask
		}
		occ[j] = true
		keys[j] = t.keys[i]
		vals[j] = t.vals[i]
	}
	t.keys, t.vals, t.occ = keys, vals, occ
}
