package hds

import (
	"math"
	"sort"

	"halo/internal/isa"
	"halo/internal/pool"
)

// CoallocSet is a candidate co-allocation policy derived from one or more
// hot data streams: the set of allocation call sites whose objects the
// stream interleaves, weighted by the projected cache-line savings of
// packing those objects contiguously.
type CoallocSet struct {
	Sites   []isa.Addr
	Benefit float64
	Streams int // streams contributing to this set
}

// ObjectInfo locates an object for benefit analysis.
type ObjectInfo struct {
	Site isa.Addr
	Size uint32
}

const lineSize = 64

// Objects is a dense object-information table indexed by allocation
// serial, the form the trace walk in Analyze produces. It replaces the
// map[int64]ObjectInfo lookups on BuildSets' per-object fast path.
type Objects struct {
	info    []ObjectInfo
	present []bool
}

// NewObjects returns a table sized for serials in [0, maxSerial].
func NewObjects(maxSerial int64) *Objects {
	n := maxSerial + 1
	if n < 0 {
		n = 0
	}
	return &Objects{info: make([]ObjectInfo, n), present: make([]bool, n)}
}

// Add registers an object's allocation site and size.
func (o *Objects) Add(serial int64, info ObjectInfo) {
	if serial < 0 || serial >= int64(len(o.info)) {
		return
	}
	o.info[serial] = info
	o.present[serial] = true
}

// Lookup returns an object's info, if known.
func (o *Objects) Lookup(serial int64) (ObjectInfo, bool) {
	if serial < 0 || serial >= int64(len(o.info)) || !o.present[serial] {
		return ObjectInfo{}, false
	}
	return o.info[serial], true
}

// objectsFromMap converts the map form (kept for API compatibility) into
// the dense table.
func objectsFromMap(m map[int64]ObjectInfo) *Objects {
	serials := make([]int64, 0, len(m))
	for serial := range m {
		serials = append(serials, serial)
	}
	sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
	var max int64 = -1
	if len(serials) > 0 {
		max = serials[len(serials)-1]
	}
	o := NewObjects(max)
	for _, serial := range serials {
		o.Add(serial, m[serial])
	}
	return o
}

// BuildSets converts hot data streams into co-allocation sets. Each stream
// projects the miss reduction of packing its objects into contiguous lines
// versus leaving each on separate lines, scaled by the stream's frequency
// (the benefit model of the original paper, simplified to line counts).
// Streams inducing identical site sets merge, accumulating benefit.
func BuildSets(streams []Stream, objects map[int64]ObjectInfo) []CoallocSet {
	return BuildSetsParallel(streams, objectsFromMap(objects), 1)
}

// streamSet is one stream's per-stage result: a span of sorted site ranks
// in its chunk's backing array plus the projected benefit.
type streamSet struct {
	off, n  int32
	benefit float64
}

// BuildSetsParallel is BuildSets over the dense object table, fanning the
// per-stream benefit analysis out over a bounded worker pool. Streams are
// independent (the paper's pipeline is embarrassingly parallel per
// stream), so each worker owns a contiguous chunk with chunk-local scratch
// and results are aggregated serially in stream order afterwards — output
// is bit-identical at any worker count. workers <= 0 selects one worker
// per CPU, 1 forces the serial path.
func BuildSetsParallel(streams []Stream, objects *Objects, workers int) []CoallocSet {
	if len(streams) == 0 {
		return nil
	}
	// Intern every known allocation site, ranked in ascending address
	// order so rank order and address order coincide.
	siteRank, rankAddr := rankSites(objects)

	if workers <= 0 {
		workers = pool.DefaultWorkers()
	}
	chunks := workers
	if chunks > len(streams) {
		chunks = len(streams)
	}
	per := (len(streams) + chunks - 1) / chunks
	type chunkResult struct {
		sets []streamSet // indexed by stream offset within the chunk
		ids  []int32     // backing storage for the spans
	}
	results := make([]chunkResult, chunks)
	pool.Map(chunks, workers, func(ci int) error {
		lo := ci * per
		hi := lo + per
		if hi > len(streams) {
			hi = len(streams)
		}
		res := chunkResult{sets: make([]streamSet, hi-lo)}
		stamp := make([]int32, len(rankAddr))
		scratch := make([]int32, 0, 16)
		for si := lo; si < hi; si++ {
			st := &streams[si]
			gen := int32(si + 1)
			scratch = scratch[:0]
			var packedBytes uint64
			var sepFootprint uint64 // each object's line-rounded footprint
			known := 0
			for _, obj := range st.Objects {
				info, ok := objects.Lookup(obj)
				if !ok {
					continue
				}
				known++
				r := siteRank[info.Site]
				if stamp[r] != gen {
					stamp[r] = gen
					scratch = append(scratch, r)
				}
				packedBytes += uint64(info.Size)
				sepFootprint += uint64((info.Size+lineSize-1)/lineSize) * lineSize
			}
			if known < 2 || len(scratch) == 0 {
				continue
			}
			if sepFootprint <= packedBytes {
				continue // packing saves nothing
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			// Projected lines saved per traversal: the separate layout
			// rounds every object to whole lines; the packed layout shares
			// them.
			res.sets[si-lo] = streamSet{
				off:     int32(len(res.ids)),
				n:       int32(len(scratch)),
				benefit: float64(st.Freq) * float64(sepFootprint-packedBytes) / lineSize,
			}
			res.ids = append(res.ids, scratch...)
		}
		results[ci] = res
		return nil
	})

	// Aggregate in stream order: identical site sets merge through the
	// interner, so float accumulation order matches the serial walk.
	var in setInterner
	type agg struct {
		benefit float64
		streams int
	}
	var aggs []agg
	for ci := range results {
		res := &results[ci]
		for i := range res.sets {
			ss := &res.sets[i]
			if ss.n == 0 {
				continue
			}
			ids := res.ids[ss.off : ss.off+ss.n]
			id := in.intern(ids)
			if id == len(aggs) {
				aggs = append(aggs, agg{})
			}
			aggs[id].benefit += ss.benefit
			aggs[id].streams++
		}
	}

	out := make([]CoallocSet, 0, len(aggs))
	for id, a := range aggs {
		ids := in.set(id)
		sites := make([]isa.Addr, len(ids))
		for i, r := range ids {
			sites[i] = rankAddr[r]
		}
		out = append(out, CoallocSet{Sites: sites, Benefit: a.benefit, Streams: a.streams})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benefit != out[j].Benefit {
			return out[i].Benefit > out[j].Benefit
		}
		return lessSitesLE(out[i].Sites, out[j].Sites)
	})
	return out
}

// rankSites interns every site in the object table, assigning dense ranks
// in ascending address order.
func rankSites(objects *Objects) (map[isa.Addr]int32, []isa.Addr) {
	seen := make(map[isa.Addr]int32)
	for serial, ok := range objects.present {
		if ok {
			seen[objects.info[serial].Site] = 0
		}
	}
	addrs := make([]isa.Addr, 0, len(seen))
	for s := range seen {
		addrs = append(addrs, s)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for r, s := range addrs {
		seen[s] = int32(r)
	}
	return seen, addrs
}

// lessSitesLE orders site sets by the little-endian byte encoding of their
// elements — the comparison the historical string-keyed implementation
// used, preserved so tie-broken output stays bit-identical.
func lessSitesLE(a, b []isa.Addr) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		x, y := a[i], b[i]
		for k := 0; k < 32; k += 8 {
			xb, yb := byte(x>>k), byte(y>>k)
			if xb != yb {
				return xb < yb
			}
		}
	}
	return len(a) < len(b)
}

// setInterner deduplicates sorted site-rank sequences, handing out dense
// set ids in first-seen order. Sequences are stored in one backing array
// and addressed by spans; the hash table is open-addressing over the
// sequence content, so interning allocates only when a new set appears.
type setInterner struct {
	backing []int32
	offs    []int32 // offs[id] .. offs[id+1] spans backing
	table   []int32 // set id + 1; 0 = empty
}

// intern returns the id of the sequence, registering it on first sight.
// A fresh id always equals the number of previously interned sets.
func (in *setInterner) intern(ids []int32) int {
	if len(in.table) == 0 {
		in.table = make([]int32, 64)
		in.offs = append(in.offs, 0)
	}
	n := len(in.offs) - 1 // interned sets
	if (n+1)*4 >= len(in.table)*3 {
		in.grow()
	}
	mask := uint64(len(in.table) - 1)
	i := hashIDs(ids) & mask
	for in.table[i] != 0 {
		id := int(in.table[i] - 1)
		if in.equal(id, ids) {
			return id
		}
		i = (i + 1) & mask
	}
	in.backing = append(in.backing, ids...)
	in.offs = append(in.offs, int32(len(in.backing)))
	in.table[i] = int32(n + 1)
	return n
}

// set returns the interned sequence for an id.
func (in *setInterner) set(id int) []int32 {
	return in.backing[in.offs[id]:in.offs[id+1]]
}

func (in *setInterner) equal(id int, ids []int32) bool {
	s := in.set(id)
	if len(s) != len(ids) {
		return false
	}
	for i := range s {
		if s[i] != ids[i] {
			return false
		}
	}
	return true
}

func (in *setInterner) grow() {
	table := make([]int32, len(in.table)*2)
	mask := uint64(len(table) - 1)
	for id := 0; id < len(in.offs)-1; id++ {
		i := hashIDs(in.set(id)) & mask
		for table[i] != 0 {
			i = (i + 1) & mask
		}
		table[i] = int32(id + 1)
	}
	in.table = table
}

// hashIDs is an FNV-1a style hash over the sequence.
func hashIDs(ids []int32) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range ids {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// PackSets selects a non-overlapping family of co-allocation sets using
// Halldórsson's greedy approximation for weighted set packing: candidates
// are taken in decreasing benefit/sqrt(|set|) order, skipping any whose
// sites are already claimed. At most maxGroups sets are selected
// (the artifact's --max-groups, 4 for roms).
func PackSets(sets []CoallocSet, maxGroups int) []CoallocSet {
	if maxGroups <= 0 {
		maxGroups = 32
	}
	ordered := append([]CoallocSet(nil), sets...)
	sort.SliceStable(ordered, func(i, j int) bool {
		wi := ordered[i].Benefit / math.Sqrt(float64(len(ordered[i].Sites)))
		wj := ordered[j].Benefit / math.Sqrt(float64(len(ordered[j].Sites)))
		return wi > wj
	})
	// Dense claim mask over the distinct sites, in place of a per-call
	// map[isa.Addr]bool.
	var all []isa.Addr
	for _, s := range sets {
		all = append(all, s.Sites...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	all = dedupAddrs(all)
	rank := func(site isa.Addr) int {
		return sort.Search(len(all), func(i int) bool { return all[i] >= site })
	}
	claimed := make([]bool, len(all))
	var out []CoallocSet
	for _, s := range ordered {
		if len(out) >= maxGroups {
			break
		}
		conflict := false
		for _, site := range s.Sites {
			if claimed[rank(site)] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for _, site := range s.Sites {
			claimed[rank(site)] = true
		}
		out = append(out, s)
	}
	return out
}

func dedupAddrs(sorted []isa.Addr) []isa.Addr {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
