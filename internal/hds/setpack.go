package hds

import (
	"math"
	"sort"

	"halo/internal/isa"
)

// CoallocSet is a candidate co-allocation policy derived from one or more
// hot data streams: the set of allocation call sites whose objects the
// stream interleaves, weighted by the projected cache-line savings of
// packing those objects contiguously.
type CoallocSet struct {
	Sites   []isa.Addr
	Benefit float64
	Streams int // streams contributing to this set
}

// ObjectInfo locates an object for benefit analysis.
type ObjectInfo struct {
	Site isa.Addr
	Size uint32
}

const lineSize = 64

// BuildSets converts hot data streams into co-allocation sets. Each stream
// projects the miss reduction of packing its objects into contiguous lines
// versus leaving each on separate lines, scaled by the stream's frequency
// (the benefit model of the original paper, simplified to line counts).
// Streams inducing identical site sets merge, accumulating benefit.
func BuildSets(streams []Stream, objects map[int64]ObjectInfo) []CoallocSet {
	type agg struct {
		sites   []isa.Addr
		benefit float64
		streams int
	}
	byKey := make(map[string]*agg)
	for _, st := range streams {
		siteSet := make(map[isa.Addr]bool)
		var packedBytes uint64
		var sepFootprint uint64 // each object's line-rounded footprint
		known := 0
		for _, obj := range st.Objects {
			info, ok := objects[obj]
			if !ok {
				continue
			}
			known++
			siteSet[info.Site] = true
			packedBytes += uint64(info.Size)
			sepFootprint += uint64((info.Size+lineSize-1)/lineSize) * lineSize
		}
		if known < 2 || len(siteSet) == 0 {
			continue
		}
		if sepFootprint <= packedBytes {
			continue // packing saves nothing
		}
		// Projected lines saved per traversal: the separate layout rounds
		// every object to whole lines; the packed layout shares them.
		benefit := float64(st.Freq) * float64(sepFootprint-packedBytes) / lineSize
		sites := make([]isa.Addr, 0, len(siteSet))
		for s := range siteSet {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		key := sitesKey(sites)
		if a, ok := byKey[key]; ok {
			a.benefit += benefit
			a.streams++
		} else {
			byKey[key] = &agg{sites: sites, benefit: benefit, streams: 1}
		}
	}
	out := make([]CoallocSet, 0, len(byKey))
	for _, a := range byKey {
		out = append(out, CoallocSet{Sites: a.sites, Benefit: a.benefit, Streams: a.streams})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benefit != out[j].Benefit {
			return out[i].Benefit > out[j].Benefit
		}
		return sitesKey(out[i].Sites) < sitesKey(out[j].Sites)
	})
	return out
}

func sitesKey(sites []isa.Addr) string {
	b := make([]byte, 0, len(sites)*4)
	for _, s := range sites {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

// PackSets selects a non-overlapping family of co-allocation sets using
// Halldórsson's greedy approximation for weighted set packing: candidates
// are taken in decreasing benefit/sqrt(|set|) order, skipping any whose
// sites are already claimed. At most maxGroups sets are selected
// (the artifact's --max-groups, 4 for roms).
func PackSets(sets []CoallocSet, maxGroups int) []CoallocSet {
	if maxGroups <= 0 {
		maxGroups = 32
	}
	ordered := append([]CoallocSet(nil), sets...)
	sort.SliceStable(ordered, func(i, j int) bool {
		wi := ordered[i].Benefit / math.Sqrt(float64(len(ordered[i].Sites)))
		wj := ordered[j].Benefit / math.Sqrt(float64(len(ordered[j].Sites)))
		return wi > wj
	})
	claimed := make(map[isa.Addr]bool)
	var out []CoallocSet
	for _, s := range ordered {
		if len(out) >= maxGroups {
			break
		}
		conflict := false
		for _, site := range s.Sites {
			if claimed[site] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for _, site := range s.Sites {
			claimed[site] = true
		}
		out = append(out, s)
	}
	return out
}
