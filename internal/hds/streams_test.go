package hds

import "testing"

func TestExtractStreamsFindsHotStream(t *testing.T) {
	// Objects 10,11,12 are traversed 50 times; 90..99 appear once each.
	var seq []int64
	for i := 0; i < 50; i++ {
		seq = append(seq, 10, 11, 12)
	}
	for i := int64(90); i < 100; i++ {
		seq = append(seq, i)
	}
	res := ExtractStreams(seq, StreamConfig{})
	if len(res.Streams) == 0 {
		t.Fatal("no hot streams found")
	}
	top := res.Streams[0]
	found := make(map[int64]bool)
	for _, o := range top.Objects {
		found[o] = true
	}
	if !found[10] || !found[11] || !found[12] {
		t.Fatalf("hottest stream %v does not cover the loop objects", top.Objects)
	}
	if top.Freq < 2 {
		t.Fatalf("hottest stream freq = %d", top.Freq)
	}
}

func TestExtractStreamsLengthWindow(t *testing.T) {
	var seq []int64
	for i := 0; i < 40; i++ {
		seq = append(seq, 1, 2, 3, 4)
	}
	res := ExtractStreams(seq, StreamConfig{MinLen: 2, MaxLen: 3, Coverage: 0.9})
	for _, s := range res.Streams {
		if len(s.Objects) < 2 || len(s.Objects) > 3 {
			t.Fatalf("stream length %d outside window", len(s.Objects))
		}
	}
}
