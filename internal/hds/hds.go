// Package hds replicates the comparison technique of Chilimbi & Shaham,
// "Cache-conscious Coallocation of Hot Data Streams" (PLDI '06), exactly as
// the paper's evaluation does (§5.1): the object-level data reference trace
// is compressed with SEQUITUR (internal/sequitur), minimal hot data streams
// of 2–20 elements are extracted with the stream threshold set to cover 90%
// of heap accesses, streams are converted to co-allocation sets scored by
// their projected cache-line savings, and a profitable non-overlapping
// family is chosen with Halldórsson's greedy approximation to weighted set
// packing. At runtime the resulting groups are identified by the immediate
// call site of the allocation procedure.
package hds

import (
	"fmt"

	"halo/internal/isa"
	"halo/internal/obs"
	"halo/internal/profile"
)

// Config parameterises the full hot-data-streams analysis.
type Config struct {
	Streams   StreamConfig
	MaxGroups int
	// Workers bounds the per-stream benefit-analysis fan-out (0 = one per
	// CPU, 1 = serial). Output is bit-identical at any setting.
	Workers int
	// Trace, when non-nil, receives one span per analysis stage (the
	// SEQUITUR grammar, co-allocation set construction, set packing).
	Trace *obs.Trace
}

// Result is the outcome of the analysis: the co-allocation policy and the
// statistics the evaluation reports (stream counts for the roms
// comparison against HALO's 31-node affinity graph).
type Result struct {
	Streams    int // hot streams selected
	Candidates int // candidate streams considered
	Rules      int // grammar rules inferred
	TraceLen   int
	Sets       []CoallocSet     // selected co-allocation sets
	SiteGroups map[isa.Addr]int // runtime policy: immediate site -> group
}

// Analyze runs the pipeline over a profile's data reference trace —
// recorded by the profiler's trace recorder as it drains the VM's batched
// event stream (profile.Config.RecordTrace), so the trace order is the
// exact execution order regardless of batch size: grammar inference,
// hot-stream extraction, co-allocation set construction, and
// weighted set packing. The returned SiteGroups table is the runtime
// identification policy (immediate call site of the allocation procedure).
func Analyze(p *profile.Profile, cfg Config) *Result {
	// Object identities and their allocation sites/sizes, laid out densely
	// by allocation serial.
	trace := make([]int64, len(p.Trace))
	var maxSerial int64 = -1
	for i, r := range p.Trace {
		trace[i] = int64(r.Obj)
		if trace[i] > maxSerial {
			maxSerial = trace[i]
		}
	}
	objects := NewObjects(maxSerial)
	for _, r := range p.Trace {
		objects.Add(int64(r.Obj), ObjectInfo{Site: r.Site, Size: r.ObjSize})
	}

	endSeq := cfg.Trace.Span("hds/sequitur")
	ext := ExtractStreams(trace, cfg.Streams)
	endSeq()
	endSets := cfg.Trace.Span("hds/sets")
	sets := BuildSetsParallel(ext.Streams, objects, cfg.Workers)
	endSets()
	endPack := cfg.Trace.Span("hds/setpack")
	packed := PackSets(sets, cfg.MaxGroups)
	endPack()

	siteGroups := make(map[isa.Addr]int)
	for g, s := range packed {
		for _, site := range s.Sites {
			siteGroups[site] = g
		}
	}
	return &Result{
		Streams:    len(ext.Streams),
		Candidates: ext.Candidates,
		Rules:      ext.Rules,
		TraceLen:   ext.TraceLen,
		Sets:       packed,
		SiteGroups: siteGroups,
	}
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("hds: %d rules, %d candidate / %d hot streams over %d refs, %d co-allocation sets",
		r.Rules, r.Candidates, r.Streams, r.TraceLen, len(r.Sets))
}
