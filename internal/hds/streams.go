package hds

import "sort"

// Stream is a minimal hot data stream: a sequence of object identities
// that recurs in the reference trace, with its recurrence count. Streams
// derived from grammar rules whose expansions exceed the length window are
// truncated to the window — the behaviour the paper criticises ("the hot
// data streams for other areas of the program's behaviour may be cut
// short, and their corresponding co-allocation sets rendered
// near-useless", §5.2).
type Stream struct {
	Objects   []int64 // object serials (possibly a truncated prefix)
	Freq      int     // occurrences in the trace
	Heat      int     // full expansion length * Freq
	Truncated bool
}

// StreamConfig bounds stream extraction; zero values take the settings the
// paper uses for its replication (§5.1): streams of 2..20 elements, with
// the threshold chosen to account for 90% of all heap accesses.
type StreamConfig struct {
	MinLen   int
	MaxLen   int
	Coverage float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.MinLen == 0 {
		c.MinLen = 2
	}
	if c.MaxLen == 0 {
		c.MaxLen = 20
	}
	if c.Coverage == 0 {
		c.Coverage = 0.90
	}
	return c
}

// ruleFreq computes how many times each rule's expansion occurs in the full
// input: the start rule occurs once, and every reference inside a rule
// occurring f times contributes f to the referenced rule. Rule numbers are
// assigned densely (deleted numbers are simply never revisited), so the
// counts live in slices indexed by rule number rather than maps.
func ruleFreq(g *Grammar) []int {
	// Topological order: parents before children.
	order := make([]int32, 0, g.NumRules())
	state := make([]uint8, g.numAssigned()) // 0 unvisited, 1 visiting, 2 done
	var dfs func(num int32)
	dfs = func(num int32) {
		state[num] = 1
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 && state[ruleOf(v)] == 0 {
				dfs(ruleOf(v))
			}
		}
		state[num] = 2
		order = append(order, num) // post-order: children first
	}
	dfs(0)
	freq := make([]int, g.numAssigned())
	freq[0] = 1
	// Walk parents before children: reverse post-order.
	for i := len(order) - 1; i >= 0; i-- {
		num := order[i]
		f := freq[num]
		if f == 0 {
			continue
		}
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 {
				freq[ruleOf(v)] += f
			}
		}
	}
	return freq
}

// ruleLens computes each rule's terminal expansion length, indexed by rule
// number (-1 marks numbers of deleted rules, never queried).
func ruleLens(g *Grammar) []int {
	lens := make([]int, g.numAssigned())
	for i := range lens {
		lens[i] = -1
	}
	var calc func(num int32) int
	calc = func(num int32) int {
		if l := lens[num]; l >= 0 {
			return l
		}
		lens[num] = 0 // cycle guard; grammars are acyclic
		total := 0
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 {
				total += calc(ruleOf(v))
			} else {
				total++
			}
		}
		lens[num] = total
		return total
	}
	for num := range g.rules {
		if g.rules[num].live {
			calc(int32(num))
		}
	}
	return lens
}

// expandRulePrefix materialises the first cap terminals of a rule.
func expandRulePrefix(g *Grammar, num int32, cap int) []int64 {
	out := make([]int64, 0, cap)
	var walk func(num int32) bool
	walk = func(num int32) bool {
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if len(out) >= cap {
				return false
			}
			if v := g.syms[s].value; v < 0 {
				if !walk(ruleOf(v)) {
					return false
				}
			} else {
				out = append(out, v)
			}
		}
		return true
	}
	walk(num)
	return out
}

// expandRule materialises a rule's terminal expansion up to a cap,
// returning nil if it would exceed the cap.
func expandRule(g *Grammar, num int32, cap int) []int64 {
	out := make([]int64, 0, cap)
	var walk func(num int32) bool
	walk = func(num int32) bool {
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			v := g.syms[s].value
			if v < 0 {
				if !walk(ruleOf(v)) {
					return false
				}
				continue
			}
			if len(out) >= cap {
				return false
			}
			out = append(out, v)
		}
		return true
	}
	if !walk(num) {
		return nil
	}
	return out
}

// ExtractResult reports stream extraction outcomes, including the counts
// the paper's roms discussion relies on ("the hot-data-stream-based
// approach requires over 150,000 streams").
type ExtractResult struct {
	Streams    []Stream
	Candidates int // rules with expansions in the length window
	Rules      int // live grammar rules
	Covered    int // trace elements accounted for by the selected streams
	TraceLen   int
}

// ExtractStreams builds the grammar over the trace of object identities
// and extracts minimal hot data streams: rule expansions within the length
// window, hottest first, until the selected streams' heat accounts for the
// configured fraction of the trace.
func ExtractStreams(trace []int64, cfg StreamConfig) *ExtractResult {
	cfg = cfg.withDefaults()
	g := NewGrammar()
	for _, v := range trace {
		g.Append(v)
	}
	freq := ruleFreq(g)
	lens := ruleLens(g)

	var cands []Stream
	for num := range g.rules {
		if num == 0 || !g.rules[num].live {
			continue // the start rule is the whole trace
		}
		l := lens[num]
		if l < cfg.MinLen {
			continue
		}
		f := freq[num]
		if f < 2 {
			continue // a stream must recur
		}
		if l <= cfg.MaxLen {
			objs := expandRule(g, int32(num), cfg.MaxLen)
			if objs == nil {
				continue
			}
			cands = append(cands, Stream{Objects: objs, Freq: f, Heat: l * f})
			continue
		}
		// The rule's expansion exceeds the stream window: the stream is
		// cut short at the window, keeping the full expansion's heat.
		objs := expandRulePrefix(g, int32(num), cfg.MaxLen)
		cands = append(cands, Stream{Objects: objs, Freq: f, Heat: l * f, Truncated: true})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Heat != cands[j].Heat {
			return cands[i].Heat > cands[j].Heat
		}
		return less(cands[i].Objects, cands[j].Objects)
	})

	res := &ExtractResult{Candidates: len(cands), Rules: g.NumRules(), TraceLen: len(trace)}
	want := int(cfg.Coverage * float64(len(trace)))
	for _, s := range cands {
		if res.Covered >= want {
			break
		}
		res.Streams = append(res.Streams, s)
		res.Covered += s.Heat
	}
	return res
}

func less(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
