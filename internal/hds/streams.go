package hds

import (
	"sort"

	"halo/internal/sequitur"
)

// Stream is a minimal hot data stream: a sequence of object identities
// that recurs in the reference trace, with its recurrence count. Streams
// derived from grammar rules whose expansions exceed the length window are
// truncated to the window — the behaviour the paper criticises ("the hot
// data streams for other areas of the program's behaviour may be cut
// short, and their corresponding co-allocation sets rendered
// near-useless", §5.2).
type Stream struct {
	Objects   []int64 // object serials (possibly a truncated prefix)
	Freq      int     // occurrences in the trace
	Heat      int     // full expansion length * Freq
	Truncated bool
}

// StreamConfig bounds stream extraction; zero values take the settings the
// paper uses for its replication (§5.1): streams of 2..20 elements, with
// the threshold chosen to account for 90% of all heap accesses.
type StreamConfig struct {
	MinLen   int
	MaxLen   int
	Coverage float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.MinLen == 0 {
		c.MinLen = 2
	}
	if c.MaxLen == 0 {
		c.MaxLen = 20
	}
	if c.Coverage == 0 {
		c.Coverage = 0.90
	}
	return c
}

// ExtractResult reports stream extraction outcomes, including the counts
// the paper's roms discussion relies on ("the hot-data-stream-based
// approach requires over 150,000 streams").
type ExtractResult struct {
	Streams    []Stream
	Candidates int // rules with expansions in the length window
	Rules      int // live grammar rules
	Covered    int // trace elements accounted for by the selected streams
	TraceLen   int
}

// ExtractStreams builds the grammar over the trace of object identities
// and extracts minimal hot data streams: rule expansions within the length
// window, hottest first, until the selected streams' heat accounts for the
// configured fraction of the trace.
func ExtractStreams(trace []int64, cfg StreamConfig) *ExtractResult {
	cfg = cfg.withDefaults()
	g := sequitur.NewGrammar()
	for _, v := range trace {
		g.Append(v)
	}
	freq := sequitur.RuleFreq(g)
	lens := sequitur.RuleLens(g)

	var cands []Stream
	for num := 0; num < g.NumAssigned(); num++ {
		if num == 0 || !g.Live(num) {
			continue // the start rule is the whole trace
		}
		l := lens[num]
		if l < cfg.MinLen {
			continue
		}
		f := freq[num]
		if f < 2 {
			continue // a stream must recur
		}
		if l <= cfg.MaxLen {
			objs := sequitur.ExpandRule(g, num, cfg.MaxLen)
			if objs == nil {
				continue
			}
			cands = append(cands, Stream{Objects: objs, Freq: f, Heat: l * f})
			continue
		}
		// The rule's expansion exceeds the stream window: the stream is
		// cut short at the window, keeping the full expansion's heat.
		objs := sequitur.ExpandRulePrefix(g, num, cfg.MaxLen)
		cands = append(cands, Stream{Objects: objs, Freq: f, Heat: l * f, Truncated: true})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Heat != cands[j].Heat {
			return cands[i].Heat > cands[j].Heat
		}
		return less(cands[i].Objects, cands[j].Objects)
	})

	res := &ExtractResult{Candidates: len(cands), Rules: g.NumRules(), TraceLen: len(trace)}
	want := int(cfg.Coverage * float64(len(trace)))
	for _, s := range cands {
		if res.Covered >= want {
			break
		}
		res.Streams = append(res.Streams, s)
		res.Covered += s.Heat
	}
	return res
}

func less(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
