// Package hds replicates the comparison technique of Chilimbi & Shaham,
// "Cache-conscious Coallocation of Hot Data Streams" (PLDI '06), exactly as
// the paper's evaluation does (§5.1): the object-level data reference trace
// is compressed with SEQUITUR, minimal hot data streams of 2–20 elements
// are extracted with the stream threshold set to cover 90% of heap
// accesses, streams are converted to co-allocation sets scored by their
// projected cache-line savings, and a profitable non-overlapping family is
// chosen with Halldórsson's greedy approximation to weighted set packing.
// At runtime the resulting groups are identified by the immediate call
// site of the allocation procedure.
package hds

// This file implements SEQUITUR (Nevill-Manning & Witten, 1997): linear
// time, incremental inference of a context-free grammar whose language is
// exactly the input string, maintaining the digram-uniqueness and
// rule-utility invariants.

// symbol is a node in a rule body's doubly linked list. A symbol is a
// terminal (rule == nil), a nonterminal reference (rule != nil, guard
// false), or a rule's guard sentinel (guard true, rule = owning rule).
type symbol struct {
	g          *Grammar
	next, prev *symbol
	value      int64
	rule       *Rule
	guard      bool
}

// Rule is a grammar production.
type Rule struct {
	g      *Grammar
	guard  *symbol
	count  int // references from other rules
	Number int // stable id; 0 is the start rule
}

// Grammar is a SEQUITUR grammar under construction.
type Grammar struct {
	digrams map[[2]int64]*symbol
	start   *Rule
	rules   map[int]*Rule
	nextNum int
	length  int // terminals consumed
}

// NewGrammar returns an empty grammar.
func NewGrammar() *Grammar {
	g := &Grammar{digrams: make(map[[2]int64]*symbol), rules: make(map[int]*Rule)}
	g.start = g.newRule()
	return g
}

func (g *Grammar) newRule() *Rule {
	r := &Rule{g: g, Number: g.nextNum}
	g.nextNum++
	guard := &symbol{g: g, rule: r, guard: true}
	guard.next, guard.prev = guard, guard
	r.guard = guard
	g.rules[r.Number] = r
	return r
}

func (r *Rule) first() *symbol { return r.guard.next }
func (r *Rule) last() *symbol  { return r.guard.prev }

// key returns the digram-table identity of a symbol's value: terminals use
// their value, nonterminals the (negated, offset) rule number so the two
// spaces cannot collide.
func (s *symbol) key() int64 {
	if s.rule != nil {
		return -int64(s.rule.Number) - 1
	}
	return s.value
}

func (s *symbol) isGuard() bool { return s.guard }
func (s *symbol) nt() bool      { return s.rule != nil && !s.guard }

func digramOf(s *symbol) [2]int64 { return [2]int64{s.key(), s.next.key()} }

// join links left and right, clearing any digram that started at left.
func join(left, right *symbol) {
	if left.next != nil {
		left.deleteDigram()
	}
	left.next, right.prev = right, left
}

// insertAfter inserts y after s.
func (s *symbol) insertAfter(y *symbol) {
	join(y, s.next)
	join(s, y)
}

// deleteDigram removes the digram table entry starting at s, if it is the
// registered occurrence.
func (s *symbol) deleteDigram() {
	if s.isGuard() || s.next == nil || s.next.isGuard() {
		return
	}
	d := digramOf(s)
	if s.g.digrams[d] == s {
		delete(s.g.digrams, d)
	}
}

// unlink removes s from its list, updating digrams and rule usage.
func (s *symbol) unlink() {
	join(s.prev, s.next)
	if !s.isGuard() {
		s.deleteDigram()
		if s.nt() {
			s.rule.count--
		}
	}
}

// check enforces digram uniqueness for the digram starting at s. Returns
// true if a substitution happened.
func (s *symbol) check() bool {
	if s.isGuard() || s.next.isGuard() {
		return false
	}
	d := digramOf(s)
	found, ok := s.g.digrams[d]
	if !ok {
		s.g.digrams[d] = s
		return false
	}
	if found.next != s {
		s.g.match(s, found)
	}
	return true
}

// match resolves a repeated digram: reuse the rule if the other occurrence
// is a complete rule body, otherwise create a new rule for the digram.
func (g *Grammar) match(s, found *symbol) {
	var r *Rule
	if found.prev.isGuard() && found.next.next.isGuard() {
		r = found.prev.rule
		s.substitute(r)
	} else {
		r = g.newRule()
		r.last().insertAfter(g.copySymbol(s))
		r.last().insertAfter(g.copySymbol(s.next))
		g.digrams[digramOf(r.first())] = r.first()
		found.substitute(r)
		s.substitute(r)
	}
	// Rule utility: a rule referenced once is inlined at its last use.
	if f := r.first(); f.nt() && f.rule.count == 1 {
		f.expand()
	}
}

// copySymbol clones a symbol's value into a fresh node.
func (g *Grammar) copySymbol(s *symbol) *symbol {
	if s.nt() {
		s.rule.count++
		return &symbol{g: g, rule: s.rule}
	}
	return &symbol{g: g, value: s.value}
}

// substitute replaces s and s.next with a reference to rule r.
func (s *symbol) substitute(r *Rule) {
	q := s.prev
	s.next.unlink()
	s.unlink()
	r.count++
	q.insertAfter(&symbol{g: s.g, rule: r})
	if !q.check() {
		q.next.check()
	}
}

// expand inlines the rule of a once-referenced nonterminal occurrence.
func (s *symbol) expand() {
	left, right := s.prev, s.next
	f, l := s.rule.first(), s.rule.last()
	s.deleteDigram()
	delete(s.g.rules, s.rule.Number)
	join(left, f)
	join(l, right)
	if !l.isGuard() && !right.isGuard() {
		s.g.digrams[digramOf(l)] = l
	}
}

// Append feeds the next terminal of the input sequence.
func (g *Grammar) Append(value int64) {
	if value < 0 {
		panic("hds: terminals must be non-negative")
	}
	g.length++
	g.start.last().insertAfter(&symbol{g: g, value: value})
	if p := g.start.last().prev; !p.isGuard() {
		p.check()
	}
}

// Length reports the number of terminals consumed.
func (g *Grammar) Length() int { return g.length }

// NumRules reports the live rule count (including the start rule).
func (g *Grammar) NumRules() int { return len(g.rules) }

// Body returns a rule's symbol sequence: terminal values (>= 0) and rule
// references encoded as -Number-1.
func (r *Rule) Body() []int64 {
	var out []int64
	for s := r.first(); !s.isGuard(); s = s.next {
		out = append(out, s.key())
	}
	return out
}

// Rules returns all live rules keyed by number; 0 is the start rule.
func (g *Grammar) Rules() map[int]*Rule { return g.rules }

// Start returns the start rule.
func (g *Grammar) Start() *Rule { return g.start }

// Expand reconstructs the full input sequence (for validation).
func (g *Grammar) Expand() []int64 {
	var out []int64
	var walk func(r *Rule)
	walk = func(r *Rule) {
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.nt() {
				walk(s.rule)
			} else {
				out = append(out, s.value)
			}
		}
	}
	walk(g.start)
	return out
}
