package hds

import (
	"testing"

	"halo/internal/isa"
)

func TestBuildSetsBenefitModel(t *testing.T) {
	objects := map[int64]ObjectInfo{
		1: {Site: isa.MakeAddr(1, 1), Size: 24},
		2: {Site: isa.MakeAddr(2, 2), Size: 24},
		3: {Site: isa.MakeAddr(3, 3), Size: 64}, // full line: no savings alone
	}
	streams := []Stream{
		{Objects: []int64{1, 2}, Freq: 10, Heat: 20},
	}
	sets := BuildSets(streams, objects)
	if len(sets) != 1 {
		t.Fatalf("sets = %d", len(sets))
	}
	// Two 24-byte objects: separate footprint 128, packed 48: 1.25 lines
	// saved per traversal x freq 10.
	want := 10.0 * float64(128-48) / 64
	if sets[0].Benefit != want {
		t.Fatalf("benefit = %v, want %v", sets[0].Benefit, want)
	}
	if len(sets[0].Sites) != 2 {
		t.Fatalf("sites = %v", sets[0].Sites)
	}
}

func TestBuildSetsDropsNoSavings(t *testing.T) {
	objects := map[int64]ObjectInfo{
		1: {Site: isa.MakeAddr(1, 1), Size: 64},
		2: {Site: isa.MakeAddr(2, 2), Size: 128},
	}
	streams := []Stream{{Objects: []int64{1, 2}, Freq: 5, Heat: 10}}
	if sets := BuildSets(streams, objects); len(sets) != 0 {
		t.Fatalf("line-aligned objects produced sets: %v", sets)
	}
}

func TestBuildSetsMergesIdenticalSiteSets(t *testing.T) {
	objects := map[int64]ObjectInfo{
		1: {Site: isa.MakeAddr(1, 1), Size: 16},
		2: {Site: isa.MakeAddr(2, 2), Size: 16},
		3: {Site: isa.MakeAddr(1, 1), Size: 16},
		4: {Site: isa.MakeAddr(2, 2), Size: 16},
	}
	streams := []Stream{
		{Objects: []int64{1, 2}, Freq: 3, Heat: 6},
		{Objects: []int64{3, 4}, Freq: 2, Heat: 4},
	}
	sets := BuildSets(streams, objects)
	if len(sets) != 1 {
		t.Fatalf("sets = %d, want merged 1", len(sets))
	}
	if sets[0].Streams != 2 {
		t.Fatalf("merged streams = %d", sets[0].Streams)
	}
}

func TestPackSetsNonOverlapping(t *testing.T) {
	s1 := CoallocSet{Sites: []isa.Addr{1, 2}, Benefit: 100}
	s2 := CoallocSet{Sites: []isa.Addr{2, 3}, Benefit: 90} // overlaps s1
	s3 := CoallocSet{Sites: []isa.Addr{4}, Benefit: 10}
	packed := PackSets([]CoallocSet{s1, s2, s3}, 0)
	if len(packed) != 2 {
		t.Fatalf("packed = %d, want 2", len(packed))
	}
	if packed[0].Benefit != 100 || packed[1].Benefit != 10 {
		t.Fatalf("wrong selection: %+v", packed)
	}
}

func TestPackSetsMaxGroups(t *testing.T) {
	var sets []CoallocSet
	for i := 0; i < 10; i++ {
		sets = append(sets, CoallocSet{Sites: []isa.Addr{isa.Addr(i + 1)}, Benefit: float64(10 - i)})
	}
	packed := PackSets(sets, 4)
	if len(packed) != 4 {
		t.Fatalf("packed = %d, want 4 (the roms --max-groups case)", len(packed))
	}
}

func TestPackSetsHalldorssonOrder(t *testing.T) {
	// A large set with slightly higher benefit loses to a small set when
	// weighted by 1/sqrt(|set|).
	big := CoallocSet{Sites: []isa.Addr{1, 2, 3, 4, 5, 6, 7, 8, 9}, Benefit: 12}
	small := CoallocSet{Sites: []isa.Addr{1}, Benefit: 10}
	packed := PackSets([]CoallocSet{big, small}, 0)
	if packed[0].Benefit != 10 {
		t.Fatalf("ordering wrong: %+v", packed)
	}
}

func TestTruncatedStreamPrefix(t *testing.T) {
	// A long periodic trace compresses into rules longer than the
	// window: extraction must still produce (truncated) streams.
	var seq []int64
	for rep := 0; rep < 30; rep++ {
		for i := int64(0); i < 50; i++ {
			seq = append(seq, i)
		}
	}
	res := ExtractStreams(seq, StreamConfig{})
	if len(res.Streams) == 0 {
		t.Fatal("no streams from a long periodic trace")
	}
	foundTrunc := false
	for _, s := range res.Streams {
		if len(s.Objects) > 20 {
			t.Fatalf("stream longer than the window: %d", len(s.Objects))
		}
		if s.Truncated {
			foundTrunc = true
		}
	}
	if !foundTrunc {
		t.Fatal("no truncated streams marked")
	}
}

// TestObjectsFromMapDeterministic is the regression test for the halovet
// determinism finding in objectsFromMap: conversion from the map form must
// produce the same dense table regardless of map iteration order, which
// the sorted-serials walk guarantees. Repeated conversions (each with a
// fresh, differently-seeded map layout) must agree entry for entry.
func TestObjectsFromMapDeterministic(t *testing.T) {
	serials := []int64{3, 9, 1, 14, 7, 0, 11}
	build := func() *Objects {
		m := make(map[int64]ObjectInfo, len(serials))
		for i, s := range serials {
			m[s] = ObjectInfo{Site: isa.MakeAddr(1, i+1), Size: uint32(8 * (i + 1))}
		}
		return objectsFromMap(m)
	}
	ref := build()
	for trial := 0; trial < 20; trial++ {
		got := build()
		for s := int64(0); s <= 15; s++ {
			wantInfo, wantOK := ref.Lookup(s)
			gotInfo, gotOK := got.Lookup(s)
			if wantOK != gotOK || wantInfo != gotInfo {
				t.Fatalf("trial %d: serial %d = (%v, %v), want (%v, %v)",
					trial, s, gotInfo, gotOK, wantInfo, wantOK)
			}
		}
	}
}
