// Package rewrite is the reproduction's BOLT stand-in (§4.3): a post-link
// pass that instruments a program binary around the call sites the
// identification stage selected. For every monitored site it inserts a
// group-state set instruction before the call and the matching clear after
// it, assigns each site a bit in the shared group-state vector, and fixes
// up every branch target the insertions displace — the same address
// bookkeeping a binary rewriter performs. Original instructions keep their
// linked addresses, so profiles and selectors keyed by address remain valid
// on the rewritten binary.
package rewrite

import (
	"fmt"
	"sort"

	"halo/internal/isa"
)

// Result is an instrumented binary plus the site-to-bit assignment needed
// to lower selectors for the runtime allocator.
type Result struct {
	Prog     *isa.Program
	SiteBits map[isa.Addr]int
	NumBits  int
	Inserted int // instructions inserted
}

// Instrument clones the program and instruments the given call sites.
// Sites must identify call instructions in main-binary functions.
func Instrument(p *isa.Program, sites []isa.Addr) (*Result, error) {
	ordered := append([]isa.Addr(nil), sites...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	siteBits := make(map[isa.Addr]int, len(ordered))
	for _, s := range ordered {
		if _, dup := siteBits[s]; dup {
			return nil, fmt.Errorf("rewrite: duplicate site %s", s)
		}
		siteBits[s] = len(siteBits)
	}
	if err := checkSites(p, siteBits); err != nil {
		return nil, err
	}

	out := p.Clone()
	inserted := 0
	for _, f := range out.Funcs {
		if f.Lib {
			continue
		}
		instrumented := instrumentedIndices(f, siteBits)
		if len(instrumented) == 0 {
			continue
		}
		// newIndex[i] = position of old instruction i in the new code
		// (the start of its bundle: the gset slot for monitored calls).
		newIndex := make([]int, len(f.Code)+1)
		shift := 0
		for i := range f.Code {
			newIndex[i] = i + shift
			if instrumented[i] {
				shift += 2
			}
		}
		newIndex[len(f.Code)] = len(f.Code) + shift

		newCode := make([]isa.Inst, 0, len(f.Code)+shift)
		for i, in := range f.Code {
			if in.IsBranch() {
				in.Imm = int64(newIndex[in.Imm])
			}
			if instrumented[i] {
				bit := int64(siteBits[in.Addr])
				newCode = append(newCode,
					isa.Inst{Op: isa.OpGroupSet, Imm: bit, Addr: out.NextSyntheticAddr()},
					in,
					isa.Inst{Op: isa.OpGroupClr, Imm: bit, Addr: out.NextSyntheticAddr()},
				)
				// The clear must execute after the call returns; because
				// it follows the call instruction in straight-line order
				// it does, exactly as BOLT-inserted epilogue code would.
				inserted += 2
				continue
			}
			newCode = append(newCode, in)
		}
		// Branches can only target positions bundle-starts map to, but
		// fix up the gclr position: a branch that targeted the
		// instruction *after* a monitored call must now land after the
		// gclr, which newIndex already guarantees since the following
		// instruction's bundle start accounts for the shift.
		f.Code = newCode
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rewrite: instrumented binary invalid: %w", err)
	}
	return &Result{Prog: out, SiteBits: siteBits, NumBits: len(siteBits), Inserted: inserted}, nil
}

// instrumentedIndices flags the code indices of monitored call sites.
func instrumentedIndices(f *isa.Func, siteBits map[isa.Addr]int) map[int]bool {
	out := make(map[int]bool)
	for i, in := range f.Code {
		if in.IsCall() {
			if _, ok := siteBits[in.Addr]; ok {
				out[i] = true
			}
		}
	}
	return out
}

// checkSites validates that every monitored site is a call instruction in
// a main-binary function.
func checkSites(p *isa.Program, siteBits map[isa.Addr]int) error {
	found := make(map[isa.Addr]bool, len(siteBits))
	for _, f := range p.Funcs {
		for _, in := range f.Code {
			if _, ok := siteBits[in.Addr]; !ok {
				continue
			}
			if !in.IsCall() {
				return fmt.Errorf("rewrite: site %s is not a call instruction", in.Addr)
			}
			if f.Lib {
				return fmt.Errorf("rewrite: site %s is in library function %s", in.Addr, f.Name)
			}
			found[in.Addr] = true
		}
	}
	// Collect and sort the missing sites so the error is deterministic:
	// ranging the map directly would report whichever missing site Go's
	// map iteration happened to reach first.
	var missing []isa.Addr
	for s := range siteBits {
		if !found[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		return fmt.Errorf("rewrite: site %s not found in program", missing[0])
	}
	return nil
}

// LowerSelectors converts site-based selectors into bit-index form using
// the rewriter's site assignment. Conjunctions referencing uninstrumented
// sites are dropped (they can never evaluate true at runtime).
func LowerSelectors(selectors [][]isa.Addr, siteBits map[isa.Addr]int) ([][]int, int) {
	dropped := 0
	out := make([][]int, 0, len(selectors))
	for _, conj := range selectors {
		lowered := make([]int, 0, len(conj))
		ok := true
		for _, s := range conj {
			bit, present := siteBits[s]
			if !present {
				ok = false
				break
			}
			lowered = append(lowered, bit)
		}
		if !ok {
			dropped++
			continue
		}
		out = append(out, lowered)
	}
	return out, dropped
}
