package rewrite

import (
	"strings"
	"testing"

	"halo/internal/alloc"
	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/vm"
	"halo/internal/workloads"
)

// runProg executes a program under the size-segregated allocator and
// returns (result, steps, loads, stores).
func runProg(t *testing.T, p *isa.Program, seed uint64) (int64, uint64, uint64, uint64) {
	t.Helper()
	m := mem.NewMemory()
	osm := mem.NewOS(m)
	v := vm.New(p, m, alloc.NewSizeSeg(osm), nil, vm.Config{Seed: seed, GroupBits: 4096})
	res, err := v.Run()
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res, v.Steps(), v.Loads(), v.Stores()
}

// TestInstrumentPreservesSemantics is the rewriter's key property: for
// every workload, instrumenting EVERY call site must not change the
// program's result or its memory-operation counts.
func TestInstrumentPreservesSemantics(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(w.TestScale)
			sites := p.CallSites()
			res, err := Instrument(p, sites)
			if err != nil {
				t.Fatal(err)
			}
			r0, _, l0, s0 := runProg(t, p, 11)
			r1, steps1, l1, s1 := runProg(t, res.Prog, 11)
			if r0 != r1 {
				t.Fatalf("result changed: %d != %d", r0, r1)
			}
			if l0 != l1 || s0 != s1 {
				t.Fatalf("memory ops changed: loads %d->%d stores %d->%d", l0, l1, s0, s1)
			}
			if res.Inserted == 0 {
				t.Fatal("nothing instrumented")
			}
			_ = steps1
		})
	}
}

// TestMissingSiteErrorDeterministic is the regression test for a real
// nondeterminism halovet's determinism analyzer found: checkSites used to
// report whichever missing site a `range` over the siteBits map reached
// first, so the error text varied run to run. It must always name the
// numerically smallest missing site.
func TestMissingSiteErrorDeterministic(t *testing.T) {
	w := workloads.MustGet("health")
	p := w.Build(w.TestScale)
	bogus := []isa.Addr{0xDEAD00, 0xDEAD10, 0xDEAD20, 0xDEAD30}

	var first string
	for i := 0; i < 50; i++ {
		// Shuffle the declaration order too: determinism must hold for
		// any input order, not just one.
		sites := append([]isa.Addr(nil), bogus...)
		sites[i%len(sites)], sites[0] = sites[0], sites[i%len(sites)]
		_, err := Instrument(p, sites)
		if err == nil {
			t.Fatal("expected missing-site error")
		}
		if first == "" {
			first = err.Error()
			continue
		}
		if err.Error() != first {
			t.Fatalf("error text varies across runs:\n  %s\n  %s", first, err.Error())
		}
	}
	want := isa.Addr(0xDEAD00).String()
	if !strings.Contains(first, want) {
		t.Fatalf("error %q does not name the smallest missing site %s", first, want)
	}
}
