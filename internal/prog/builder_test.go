package prog

import (
	"testing"

	"halo/internal/isa"
)

func TestBuildRequiresMain(t *testing.T) {
	b := NewBuilder("nomain")
	f := b.Func("helper", 0)
	f.RetConst(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("built a program without main")
	}
}

func TestDuplicateFunctionRejected(t *testing.T) {
	b := NewBuilder("dup")
	b.Func("main", 0).RetConst(0)
	b.Func("main", 0).RetConst(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestUndefinedCallRejected(t *testing.T) {
	b := NewBuilder("undef")
	f := b.Func("main", 0)
	f.Call("missing")
	f.RetConst(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("call to undefined function accepted")
	}
}

func TestUnboundLabelRejected(t *testing.T) {
	b := NewBuilder("label")
	f := b.Func("main", 0)
	l := f.NewLabel()
	f.Jmp(l)
	if _, err := b.Build(); err == nil {
		t.Fatal("unbound label accepted")
	}
}

func TestForwardReferenceResolved(t *testing.T) {
	b := NewBuilder("fwd")
	m := b.Func("main", 0)
	m.Ret(m.Call("later")) // defined below
	l := b.Func("later", 0)
	l.RetConst(7)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	call := p.Funcs[p.FuncByName("main")].Code[0]
	if !call.IsCall() || int(call.Fn) != p.FuncByName("later") {
		t.Fatalf("forward call not patched: %+v", call)
	}
}

func TestLabelAtFunctionEnd(t *testing.T) {
	// A label bound after the last instruction must still validate (a
	// defensive terminator is appended).
	b := NewBuilder("endlabel")
	f := b.Func("main", 0)
	c := f.ConstReg(1)
	done := f.NewLabel()
	f.Bnz(c, done)
	f.Bind(done)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNonContiguousArgsCopied(t *testing.T) {
	b := NewBuilder("args")
	callee := b.Func("sub", 2)
	r := callee.Reg()
	callee.Sub(r, callee.Param(0), callee.Param(1))
	callee.Ret(r)

	f := b.Func("main", 0)
	x := f.ConstReg(10)
	_ = f.ConstReg(99) // occupies the register between x and y
	y := f.ConstReg(3)
	f.Ret(f.Call("sub", x, y)) // non-contiguous: must be copied
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConstFuncIndirect(t *testing.T) {
	b := NewBuilder("ind")
	cb := b.Func("target", 0)
	cb.RetConst(11)
	f := b.Func("main", 0)
	r := f.Reg()
	f.ConstFunc(r, "target")
	f.Ret(f.CallInd(r))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The const must carry the target's function index.
	var found bool
	for _, in := range p.Funcs[p.FuncByName("main")].Code {
		if in.Op == isa.OpConst && in.Imm == int64(p.FuncByName("target")) {
			found = true
		}
	}
	if !found {
		t.Fatal("ConstFunc not patched")
	}
}

func TestLibFuncFlag(t *testing.T) {
	b := NewBuilder("lib")
	lf := b.LibFunc("operator_new", 1)
	lf.Ret(lf.Malloc(lf.Param(0)))
	f := b.Func("main", 0)
	sz := f.ConstReg(8)
	f.Ret(f.Call("operator_new", sz))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Funcs[p.FuncByName("operator_new")].Lib {
		t.Fatal("lib flag lost")
	}
	if p.Funcs[p.FuncByName("main")].Lib {
		t.Fatal("main marked lib")
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := NewBuilder("regs")
	f := b.Func("main", 0)
	for i := 0; i < isa.MaxRegs+5; i++ {
		f.Reg()
	}
	f.RetConst(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("register exhaustion not reported")
	}
}

func TestScaleInvariantAddresses(t *testing.T) {
	// The whole profile-on-test/measure-on-ref methodology depends on
	// builds at different scales sharing call-site addresses.
	build := func(scale int64) *isa.Program {
		b := NewBuilder("scaled")
		h := b.Func("helper", 0)
		h.RetConst(1)
		f := b.Func("main", 0)
		f.LoopN(scale, func(Reg) { f.Call("helper") })
		f.RetConst(0)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	small, big := build(10), build(10000)
	ss, bs := small.CallSites(), big.CallSites()
	if len(ss) != len(bs) {
		t.Fatalf("call-site counts differ: %d vs %d", len(ss), len(bs))
	}
	for i := range ss {
		if ss[i] != bs[i] {
			t.Fatalf("site %d differs: %v vs %v", i, ss[i], bs[i])
		}
	}
}
