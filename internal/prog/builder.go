// Package prog provides a small assembler for authoring isa programs: the
// workload binaries that the HALO pipeline profiles, rewrites and runs.
//
// The builder handles the bookkeeping an assembler would: register
// allocation within a function frame, forward references to functions by
// name, and branch labels. Workloads (internal/workloads) use it to express
// the allocation and access structure of the paper's benchmarks — wrapper
// functions like povray's pov_malloc, deep call chains like xalanc's, or
// leela's single operator-new site — as genuine call graphs with genuine
// call sites.
package prog

import (
	"fmt"

	"halo/internal/isa"
)

// Builder constructs a program.
type Builder struct {
	name    string
	funcs   []*FuncBuilder
	byName  map[string]int
	globals int
	errs    []error
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]int)}
}

// Globals declares the number of 8-byte global slots.
func (b *Builder) Globals(n int) { b.globals = n }

// Func begins a new main-binary function with the given parameter count.
// Parameters occupy registers 0..nparams-1.
func (b *Builder) Func(name string, nparams int) *FuncBuilder {
	return b.newFunc(name, nparams, false)
}

// LibFunc begins a new library function: a function outside the "main
// binary", like libstdc++'s operator new. The paper's shadow stack does not
// record frames for library code, and its identification step never
// instruments call sites inside it.
func (b *Builder) LibFunc(name string, nparams int) *FuncBuilder {
	return b.newFunc(name, nparams, true)
}

func (b *Builder) newFunc(name string, nparams int, lib bool) *FuncBuilder {
	if _, dup := b.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate function %q", name))
	}
	fb := &FuncBuilder{
		b:       b,
		name:    name,
		lib:     lib,
		nparams: nparams,
		nregs:   nparams,
	}
	b.byName[name] = len(b.funcs)
	b.funcs = append(b.funcs, fb)
	return fb
}

// Build resolves names and labels, links, and validates the program.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	entry, ok := b.byName["main"]
	if !ok {
		return nil, fmt.Errorf("prog: program %q has no main function", b.name)
	}
	p := &isa.Program{Name: b.name, Entry: entry, Globals: b.globals}
	for _, fb := range b.funcs {
		f, err := fb.finish()
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, f)
	}
	p.Link()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error. Workload construction uses it:
// a workload that fails to assemble is a programming error in this repo.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err) //halo:errfmt-ok MustBuild is the documented panicking variant for workload assembly
	}
	return p
}

// Reg is a virtual register within a function frame.
type Reg uint8

// Label marks a branch target within a function.
type Label struct {
	id    int
	pc    int
	bound bool
}

// FuncBuilder assembles one function.
type FuncBuilder struct {
	b       *Builder
	name    string
	lib     bool
	nparams int
	nregs   int
	code    []isa.Inst
	labels  []*Label
	// patches: instruction index -> pending fixup
	callPatches  map[int]string // named direct call target
	constPatches map[int]string // function index materialised into a register
	branchLabels map[int]*Label
}

// Param returns the register holding parameter i.
func (f *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= f.nparams {
		f.fail(fmt.Errorf("prog: %s: param %d of %d", f.name, i, f.nparams))
	}
	return Reg(i)
}

// Reg allocates a fresh register.
func (f *FuncBuilder) Reg() Reg {
	if f.nregs >= isa.MaxRegs {
		f.fail(fmt.Errorf("prog: %s: out of registers", f.name))
		return 0
	}
	r := Reg(f.nregs)
	f.nregs++
	return r
}

func (f *FuncBuilder) fail(err error) { f.b.errs = append(f.b.errs, err) }

func (f *FuncBuilder) emit(in isa.Inst) int {
	f.code = append(f.code, in)
	return len(f.code) - 1
}

// Const sets r to an immediate.
func (f *FuncBuilder) Const(r Reg, v int64) {
	f.emit(isa.Inst{Op: isa.OpConst, A: uint8(r), Imm: v})
}

// ConstReg allocates a register holding v.
func (f *FuncBuilder) ConstReg(v int64) Reg {
	r := f.Reg()
	f.Const(r, v)
	return r
}

// ConstFunc sets r to the index of the named function, for indirect calls.
func (f *FuncBuilder) ConstFunc(r Reg, name string) {
	pc := f.emit(isa.Inst{Op: isa.OpConst, A: uint8(r)})
	if f.constPatches == nil {
		f.constPatches = make(map[int]string)
	}
	f.constPatches[pc] = name
}

// Mov copies src into dst.
func (f *FuncBuilder) Mov(dst, src Reg) {
	f.emit(isa.Inst{Op: isa.OpMov, A: uint8(dst), B: uint8(src)})
}

func (f *FuncBuilder) bin(op isa.Opcode, dst, a, b Reg) {
	f.emit(isa.Inst{Op: op, A: uint8(dst), B: uint8(a), C: uint8(b)})
}

// Arithmetic and logic: dst = a op b.

func (f *FuncBuilder) Add(dst, a, b Reg) { f.bin(isa.OpAdd, dst, a, b) }
func (f *FuncBuilder) Sub(dst, a, b Reg) { f.bin(isa.OpSub, dst, a, b) }
func (f *FuncBuilder) Mul(dst, a, b Reg) { f.bin(isa.OpMul, dst, a, b) }
func (f *FuncBuilder) Div(dst, a, b Reg) { f.bin(isa.OpDiv, dst, a, b) }
func (f *FuncBuilder) Mod(dst, a, b Reg) { f.bin(isa.OpMod, dst, a, b) }
func (f *FuncBuilder) And(dst, a, b Reg) { f.bin(isa.OpAnd, dst, a, b) }
func (f *FuncBuilder) Or(dst, a, b Reg)  { f.bin(isa.OpOr, dst, a, b) }
func (f *FuncBuilder) Xor(dst, a, b Reg) { f.bin(isa.OpXor, dst, a, b) }
func (f *FuncBuilder) Shl(dst, a, b Reg) { f.bin(isa.OpShl, dst, a, b) }
func (f *FuncBuilder) Shr(dst, a, b Reg) { f.bin(isa.OpShr, dst, a, b) }

// AddImm sets dst = src + imm.
func (f *FuncBuilder) AddImm(dst, src Reg, imm int64) {
	f.emit(isa.Inst{Op: isa.OpAddImm, A: uint8(dst), B: uint8(src), Imm: imm})
}

// Comparisons: dst = a cmp b (0 or 1).

func (f *FuncBuilder) Eq(dst, a, b Reg) { f.bin(isa.OpEq, dst, a, b) }
func (f *FuncBuilder) Ne(dst, a, b Reg) { f.bin(isa.OpNe, dst, a, b) }
func (f *FuncBuilder) Lt(dst, a, b Reg) { f.bin(isa.OpLt, dst, a, b) }
func (f *FuncBuilder) Le(dst, a, b Reg) { f.bin(isa.OpLe, dst, a, b) }

// NewLabel creates an unbound label.
func (f *FuncBuilder) NewLabel() *Label {
	l := &Label{id: len(f.labels)}
	f.labels = append(f.labels, l)
	return l
}

// Bind attaches the label to the next emitted instruction.
func (f *FuncBuilder) Bind(l *Label) {
	if l.bound {
		f.fail(fmt.Errorf("prog: %s: label %d bound twice", f.name, l.id))
	}
	l.bound = true
	l.pc = len(f.code)
}

func (f *FuncBuilder) branch(op isa.Opcode, cond Reg, l *Label) {
	pc := f.emit(isa.Inst{Op: op, A: uint8(cond)})
	if f.branchLabels == nil {
		f.branchLabels = make(map[int]*Label)
	}
	f.branchLabels[pc] = l
}

// Jmp jumps unconditionally to l.
func (f *FuncBuilder) Jmp(l *Label) { f.branch(isa.OpJmp, 0, l) }

// Bz branches to l if cond == 0.
func (f *FuncBuilder) Bz(cond Reg, l *Label) { f.branch(isa.OpBz, cond, l) }

// Bnz branches to l if cond != 0.
func (f *FuncBuilder) Bnz(cond Reg, l *Label) { f.branch(isa.OpBnz, cond, l) }

func (f *FuncBuilder) argWindow(args []Reg) (base, n uint8) {
	if len(args) == 0 {
		return 0, 0
	}
	// Arguments must be contiguous. Copy them into a fresh window if not.
	contiguous := true
	for i := 1; i < len(args); i++ {
		if args[i] != args[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous {
		return uint8(args[0]), uint8(len(args))
	}
	first := f.Reg()
	f.Mov(first, args[0])
	for i := 1; i < len(args); i++ {
		r := f.Reg()
		f.Mov(r, args[i])
	}
	return uint8(first), uint8(len(args))
}

// Call emits a direct call to the named function and returns the register
// receiving the result.
func (f *FuncBuilder) Call(name string, args ...Reg) Reg {
	base, n := f.argWindow(args)
	dst := f.Reg()
	pc := f.emit(isa.Inst{Op: isa.OpCall, A: uint8(dst), B: base, C: n})
	if f.callPatches == nil {
		f.callPatches = make(map[int]string)
	}
	f.callPatches[pc] = name
	return dst
}

// CallExt emits a call to an external symbol.
func (f *FuncBuilder) CallExt(e isa.Extern, args ...Reg) Reg {
	base, n := f.argWindow(args)
	dst := f.Reg()
	f.emit(isa.Inst{Op: isa.OpCall, A: uint8(dst), B: base, C: n, Fn: isa.ExternRef(e)})
	return dst
}

// CallInd emits an indirect call through the function index in target.
func (f *FuncBuilder) CallInd(target Reg, args ...Reg) Reg {
	base, n := f.argWindow(args)
	dst := f.Reg()
	f.emit(isa.Inst{Op: isa.OpCallInd, A: uint8(dst), B: base, C: n, D: uint8(target)})
	return dst
}

// Convenience wrappers for the memory-management externals.

// Malloc calls malloc(size).
func (f *FuncBuilder) Malloc(size Reg) Reg { return f.CallExt(isa.ExtMalloc, size) }

// Calloc calls calloc(n, size).
func (f *FuncBuilder) Calloc(n, size Reg) Reg { return f.CallExt(isa.ExtCalloc, n, size) }

// Realloc calls realloc(ptr, size).
func (f *FuncBuilder) Realloc(ptr, size Reg) Reg { return f.CallExt(isa.ExtRealloc, ptr, size) }

// Free calls free(ptr).
func (f *FuncBuilder) Free(ptr Reg) { f.CallExt(isa.ExtFree, ptr) }

// Rand returns a register holding a uniform value in [0, bound).
func (f *FuncBuilder) Rand(bound Reg) Reg { return f.CallExt(isa.ExtRand, bound) }

// RandConst returns a register holding a uniform value in [0, bound).
func (f *FuncBuilder) RandConst(bound int64) Reg {
	return f.Rand(f.ConstReg(bound))
}

// Print emits a debug print of r.
func (f *FuncBuilder) Print(r Reg) { f.CallExt(isa.ExtPrint, r) }

// Ret returns r to the caller.
func (f *FuncBuilder) Ret(r Reg) { f.emit(isa.Inst{Op: isa.OpRet, A: uint8(r)}) }

// RetConst returns an immediate.
func (f *FuncBuilder) RetConst(v int64) { f.Ret(f.ConstReg(v)) }

// Halt stops the machine.
func (f *FuncBuilder) Halt() { f.emit(isa.Inst{Op: isa.OpHalt}) }

// Load reads Size bytes at [base+off] into dst.
func (f *FuncBuilder) Load(dst, base Reg, off int64, size uint8) {
	f.emit(isa.Inst{Op: isa.OpLoad, A: uint8(dst), B: uint8(base), Imm: off, Size: size})
}

// Store writes the low Size bytes of src to [base+off].
func (f *FuncBuilder) Store(base Reg, off int64, src Reg, size uint8) {
	f.emit(isa.Inst{Op: isa.OpStore, A: uint8(src), B: uint8(base), Imm: off, Size: size})
}

// LoadWord and StoreWord access 8-byte words, the common case for pointers.

// LoadWord reads the word at [base+off] into dst.
func (f *FuncBuilder) LoadWord(dst, base Reg, off int64) { f.Load(dst, base, off, 8) }

// StoreWord writes src to [base+off].
func (f *FuncBuilder) StoreWord(base Reg, off int64, src Reg) { f.Store(base, off, src, 8) }

// LoadGlobal reads global slot g into dst.
func (f *FuncBuilder) LoadGlobal(dst Reg, g int) {
	base := f.ConstReg(int64(isa.GlobalAddr(g)))
	f.LoadWord(dst, base, 0)
}

// StoreGlobal writes src to global slot g.
func (f *FuncBuilder) StoreGlobal(g int, src Reg) {
	base := f.ConstReg(int64(isa.GlobalAddr(g)))
	f.StoreWord(base, 0, src)
}

// Loop emits a counted loop: body is invoked with the register holding the
// descending trip counter (count..1). Count must be >= 0 at runtime.
func (f *FuncBuilder) Loop(count Reg, body func(i Reg)) {
	i := f.Reg()
	f.Mov(i, count)
	head := f.NewLabel()
	done := f.NewLabel()
	f.Bind(head)
	f.Bz(i, done)
	body(i)
	f.AddImm(i, i, -1)
	f.Jmp(head)
	f.Bind(done)
}

// LoopN emits a counted loop with a constant trip count.
func (f *FuncBuilder) LoopN(n int64, body func(i Reg)) {
	f.Loop(f.ConstReg(n), body)
}

// finish resolves patches and produces the immutable function.
func (f *FuncBuilder) finish() (*isa.Func, error) {
	for pc, name := range f.callPatches {
		idx, ok := f.b.byName[name]
		if !ok {
			return nil, fmt.Errorf("prog: %s: call to undefined function %q", f.name, name)
		}
		f.code[pc].Fn = isa.FnRef(idx)
	}
	for pc, name := range f.constPatches {
		idx, ok := f.b.byName[name]
		if !ok {
			return nil, fmt.Errorf("prog: %s: reference to undefined function %q", f.name, name)
		}
		f.code[pc].Imm = int64(idx)
	}
	for pc, l := range f.branchLabels {
		if !l.bound {
			return nil, fmt.Errorf("prog: %s: unbound label %d", f.name, l.id)
		}
		f.code[pc].Imm = int64(l.pc)
	}
	// A function must not fall off its end, and labels may be bound one
	// past the last instruction; terminate defensively in either case.
	needTerm := len(f.code) == 0
	if n := len(f.code); n > 0 {
		switch f.code[n-1].Op {
		case isa.OpRet, isa.OpJmp, isa.OpHalt:
		default:
			needTerm = true
		}
	}
	for _, l := range f.labels {
		if l.bound && l.pc == len(f.code) {
			needTerm = true
		}
	}
	if needTerm {
		zero := f.Reg()
		f.Const(zero, 0)
		f.Ret(zero)
	}
	return &isa.Func{
		Name:    f.name,
		Lib:     f.lib,
		NParams: f.nparams,
		NRegs:   f.nregs,
		Code:    f.code,
	}, nil
}
