package cache

import (
	"testing"

	"halo/internal/vm"
)

func smallConfig() Config {
	return Config{
		L1:         LevelConfig{Name: "L1D", Size: 1 << 10, Ways: 2, Latency: 0}, // 8 sets
		L2:         LevelConfig{Name: "L2", Size: 8 << 10, Ways: 4, Latency: 10},
		L3:         LevelConfig{Name: "L3", Size: 64 << 10, Ways: 8, Latency: 30},
		TLB:        TLBConfig{Entries: 4, Ways: 2, PageBits: 12, Penalty: 9},
		STLB:       TLBConfig{Entries: 16, Ways: 4, PageBits: 12, Penalty: 70},
		MemLatency: 100,
		BaseCPI:    0.5,
		ClockGHz:   1,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x1000, 8, false)
	s := h.Stats()
	if s.L1D.Misses != 1 || s.L1D.Hits != 0 {
		t.Fatalf("cold access: %+v", s.L1D)
	}
	h.Access(0x1000, 8, false)
	s = h.Stats()
	if s.L1D.Hits != 1 {
		t.Fatalf("warm access missed: %+v", s.L1D)
	}
}

func TestSameLineSharing(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x1000, 8, true)
	h.Access(0x1008, 8, false) // same 64-byte line
	s := h.Stats()
	if s.L1D.Misses != 1 || s.L1D.Hits != 1 {
		t.Fatalf("line sharing broken: %+v", s.L1D)
	}
}

func TestLineStraddle(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x103C, 8, false) // crosses the 0x1040 line boundary
	s := h.Stats()
	if s.L1D.Accesses != 2 {
		t.Fatalf("straddling access touched %d lines, want 2", s.L1D.Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := smallConfig()
	cfg.Prefetch = false
	h := New(cfg)
	// L1: 8 sets x 2 ways. Three lines in the same set evict the LRU.
	setStride := uint64(8 * 64)
	a, b, c := uint64(0), setStride, 2*setStride
	h.Access(a, 8, false)
	h.Access(b, 8, false)
	h.Access(c, 8, false) // evicts a
	h.Access(b, 8, false) // hit
	h.Access(a, 8, false) // miss again
	s := h.Stats()
	if s.L1D.Misses != 4 || s.L1D.Hits != 1 {
		t.Fatalf("LRU behaviour: %+v", s.L1D)
	}
}

func TestMissPathReachesMemory(t *testing.T) {
	cfg := smallConfig()
	cfg.Prefetch = false
	h := New(cfg)
	h.Access(0x5000, 8, false)
	s := h.Stats()
	if s.L2.Misses != 1 || s.L3.Misses != 1 || s.Mem != 1 {
		t.Fatalf("miss path: %+v", s)
	}
	// A second access hits in L1; lower levels see no traffic.
	h.Access(0x5000, 8, false)
	s2 := h.Stats()
	if s2.L2.Accesses != s.L2.Accesses {
		t.Fatal("L1 hit leaked to L2")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := smallConfig()
	cfg.Prefetch = false
	h := New(cfg)
	// Fill one L1 set with 3 lines; the first goes to L2-only residence.
	setStride := uint64(8 * 64)
	for i := uint64(0); i < 3; i++ {
		h.Access(i*setStride, 8, false)
	}
	before := h.Stats().L2.Hits
	h.Access(0, 8, false) // L1 miss, L2 hit
	if h.Stats().L2.Hits != before+1 {
		t.Fatalf("expected L2 hit: %+v", h.Stats())
	}
}

func TestPrefetchNextLine(t *testing.T) {
	cfg := smallConfig()
	cfg.Prefetch = true
	h := New(cfg)
	h.Access(0x8000, 8, false) // miss; prefetches 0x8040 into L2
	h.Access(0x8040, 8, false) // L1 miss but L2 hit thanks to prefetch
	s := h.Stats()
	if s.L2.Hits == 0 {
		t.Fatalf("prefetch ineffective: %+v", s)
	}
	if s.Mem != 1 {
		t.Fatalf("memory accesses = %d, want 1 (prefetch is free)", s.Mem)
	}
}

func TestTLBTwoLevels(t *testing.T) {
	h := New(smallConfig())
	// Touch 5 pages: DTLB (4 entries) overflows, STLB (16) holds all.
	for p := uint64(0); p < 5; p++ {
		h.Access(p*4096, 8, false)
	}
	base := h.StallCycles()
	// Revisit page 0: the DTLB misses but the STLB holds the entry, so
	// no full page walk (70 cycles) is charged.
	h.Access(0, 8, false)
	delta := h.StallCycles() - base
	if delta >= 70 {
		t.Fatalf("page walk charged (%d cycles) despite STLB residency", delta)
	}
	s := h.Stats()
	if s.TLB.Misses == 0 {
		t.Fatal("no DTLB misses recorded")
	}
	if s.STLB.Misses != 5 {
		t.Fatalf("STLB cold misses = %d, want 5", s.STLB.Misses)
	}
	if s.STLB.Hits == 0 {
		t.Fatal("revisit did not hit the STLB")
	}
}

func TestCycleModelMonotone(t *testing.T) {
	h := New(smallConfig())
	c0 := h.Cycles(1000)
	h.Access(0x9000, 8, false) // adds stall cycles
	c1 := h.Cycles(1000)
	if c1 <= c0 {
		t.Fatalf("stalls did not increase cycles: %d -> %d", c0, c1)
	}
	if h.Seconds(1000) <= 0 {
		t.Fatal("seconds not positive")
	}
}

func TestXeonW2195Geometry(t *testing.T) {
	cfg := XeonW2195()
	l1 := NewLevel(cfg.L1)
	if l1.sets != 64 {
		t.Fatalf("L1 sets = %d, want 64 (32KiB/64B/8-way)", l1.sets)
	}
	l2 := NewLevel(cfg.L2)
	if l2.sets != 1024 {
		t.Fatalf("L2 sets = %d, want 1024", l2.sets)
	}
	if cfg.L3.Size != 25344<<10 {
		t.Fatalf("L3 size = %d", cfg.L3.Size)
	}
}

func TestStatsString(t *testing.T) {
	h := New(smallConfig())
	h.Access(0, 8, false)
	if s := h.Stats().String(); len(s) == 0 {
		t.Fatal("empty stats string")
	}
}

func TestBatchedConsumeMatchesPerAccess(t *testing.T) {
	// The batched ConsumeEvents path accumulates stall/DRAM charges in
	// locals and writes them back once per batch; it must land on exactly
	// the same counters as charging every access individually.
	mkEvents := func() []vm.Event {
		rng := uint64(42)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		evs := make([]vm.Event, 0, 20000)
		for i := 0; i < 20000; i++ {
			// Mix of hot lines, straddles and page-crossing strides.
			addr := (next() % (1 << 20)) &^ 1
			size := uint8(1 << (next() % 4))
			if next()%16 == 0 {
				addr = addr&^0xfff | 0xffe // straddle a page boundary
			}
			kind := vm.EvAccess
			if next()%32 == 0 {
				kind = vm.EvCall // non-access records must be ignored
			}
			evs = append(evs, vm.Event{Kind: kind, Addr: addr, Size: size, Write: next()%3 == 0})
		}
		return evs
	}

	ref := New(smallConfig())
	for _, ev := range mkEvents() {
		if ev.Kind == vm.EvAccess {
			ref.Access(ev.Addr, ev.Size, ev.Write)
		}
	}

	for _, batchSize := range []int{1, 64, 4096} {
		h := New(smallConfig())
		evs := mkEvents()
		for len(evs) > 0 {
			n := batchSize
			if n > len(evs) {
				n = len(evs)
			}
			h.ConsumeEvents(evs[:n])
			evs = evs[n:]
		}
		if h.Stats() != ref.Stats() {
			t.Errorf("batch=%d: stats diverge:\n got %+v\nwant %+v", batchSize, h.Stats(), ref.Stats())
		}
		if h.StallCycles() != ref.StallCycles() {
			t.Errorf("batch=%d: stalls %d, want %d", batchSize, h.StallCycles(), ref.StallCycles())
		}
	}
}

func TestBatchedSharedTranslationRuns(t *testing.T) {
	// Dense same-page runs — the case the batched path serves via the
	// shared translation (MRU repeat-hit) instead of a TLB set scan —
	// interleaved with page straddles and slot-colliding strides. Totals
	// must match the per-access reference exactly.
	mkEvents := func() []vm.Event {
		evs := make([]vm.Event, 0, 12000)
		base := uint64(0x10_0000)
		for r := 0; r < 100; r++ {
			page := base + uint64(r%7)*0x1000
			for i := 0; i < 50; i++ { // long same-page run
				evs = append(evs, vm.Event{Kind: vm.EvAccess, Addr: page + uint64(i*8)%0xff8, Size: 8})
			}
			// Page straddle: translates two pages, leaves the second MRU.
			evs = append(evs, vm.Event{Kind: vm.EvAccess, Addr: page + 0xffe, Size: 4})
			// Immediately touch the straddle's second page: fast path again.
			evs = append(evs, vm.Event{Kind: vm.EvAccess, Addr: page + 0x1000, Size: 8})
			// Colliding stride: same TLB set, different page.
			evs = append(evs, vm.Event{Kind: vm.EvAccess, Addr: page + 64*0x1000, Size: 8})
		}
		return evs
	}

	ref := New(smallConfig())
	for _, ev := range mkEvents() {
		ref.Access(ev.Addr, ev.Size, ev.Write)
	}
	for _, batchSize := range []int{1, 64, 4096} {
		h := New(smallConfig())
		evs := mkEvents()
		for len(evs) > 0 {
			n := batchSize
			if n > len(evs) {
				n = len(evs)
			}
			h.ConsumeEvents(evs[:n])
			evs = evs[n:]
		}
		if h.Stats() != ref.Stats() {
			t.Errorf("batch=%d: stats diverge:\n got %+v\nwant %+v", batchSize, h.Stats(), ref.Stats())
		}
		if h.StallCycles() != ref.StallCycles() {
			t.Errorf("batch=%d: stalls %d, want %d", batchSize, h.StallCycles(), ref.StallCycles())
		}
	}
}
