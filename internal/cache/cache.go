// Package cache simulates the memory hierarchy of the paper's evaluation
// machine — an Intel Xeon W-2195 with 32 KiB 8-way L1 data caches, 1 MiB
// 16-way L2 caches, and a 25,344 KiB shared L3 — together with a data TLB
// and a next-line prefetcher. It substitutes for the hardware performance
// counters the paper reads: the harness reports L1D misses (Figure 13) and
// a cycle-based execution-time model (Figures 12, 14, 15).
//
// The model is deliberately simple but captures what the paper's
// optimisation changes: which cache lines and pages the program's heap
// accesses touch. Placement that packs related objects into fewer lines
// produces fewer misses here for exactly the reason it does on hardware.
package cache

import (
	"fmt"

	"halo/internal/vm"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name    string
	Size    uint64 // total bytes
	Ways    int
	Latency uint64 // extra cycles charged when the access is satisfied here
}

// Level is a set-associative, write-allocate cache with LRU replacement.
type Level struct {
	cfg   LevelConfig
	sets  int
	mask  uint64
	tags  [][]uint64 // per set, MRU-first line addresses
	stats LevelStats
}

// LevelStats counts per-level traffic.
type LevelStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns misses per access.
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// NewLevel builds a cache level.
func NewLevel(cfg LevelConfig) *Level {
	sets := int(cfg.Size) / LineSize / cfg.Ways
	if sets <= 0 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	l := &Level{cfg: cfg, sets: p, mask: uint64(p - 1)}
	l.tags = make([][]uint64, p)
	for i := range l.tags {
		l.tags[i] = make([]uint64, 0, cfg.Ways)
	}
	return l
}

// access looks up the line (already shifted address) and installs it on
// miss. Returns true on hit. When an eviction occurs the victim line is
// returned for lower levels.
func (l *Level) access(line uint64, count bool) (hit bool) {
	set := l.tags[line&l.mask]
	if count {
		l.stats.Accesses++
	}
	for i, t := range set {
		if t == line {
			// Move to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = line
			if count {
				l.stats.Hits++
			}
			return true
		}
	}
	if count {
		l.stats.Misses++
	}
	// Install as MRU, evicting LRU if full.
	if len(set) < l.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	l.tags[line&l.mask] = set
	return false
}

// Contains reports whether the line is resident (no state change).
func (l *Level) Contains(line uint64) bool {
	for _, t := range l.tags[line&l.mask] {
		if t == line {
			return true
		}
	}
	return false
}

// Stats returns the level's counters.
func (l *Level) Stats() LevelStats { return l.stats }

// Name returns the level's configured name.
func (l *Level) Name() string { return l.cfg.Name }

// TLBConfig describes a translation cache level.
type TLBConfig struct {
	Entries  int
	Ways     int
	PageBits uint
	Penalty  uint64 // cycles charged when the lookup is satisfied below
}

// TLB is a set-associative translation cache over page numbers.
type TLB struct {
	cfg   TLBConfig
	sets  int
	mask  uint64
	tags  [][]uint64
	stats LevelStats
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig) *TLB {
	sets := cfg.Entries / cfg.Ways
	if sets <= 0 {
		sets = 1
	}
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	t := &TLB{cfg: cfg, sets: p, mask: uint64(p - 1)}
	t.tags = make([][]uint64, p)
	return t
}

func (t *TLB) access(page uint64) bool {
	set := t.tags[page&t.mask]
	t.stats.Accesses++
	for i, tag := range set {
		if tag == page {
			copy(set[1:i+1], set[:i])
			set[0] = page
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	if len(set) < t.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = page
	t.tags[page&t.mask] = set
	return false
}

// Stats returns the TLB counters.
func (t *TLB) Stats() LevelStats { return t.stats }

// Config describes the whole hierarchy.
type Config struct {
	L1, L2, L3  LevelConfig
	TLB         TLBConfig // first-level DTLB
	STLB        TLBConfig // unified second-level TLB; Entries=0 disables
	MemLatency  uint64    // cycles for a DRAM access
	Prefetch    bool      // next-line prefetch into L2 on L2 miss
	PrefetchDeg int       // lines prefetched ahead (default 1)
	BaseCPI     float64
	ClockGHz    float64
}

// XeonW2195 returns the evaluation machine's parameters (§5.1): 32 KiB
// per-core L1D, 1,024 KiB per-core L2, 25,344 KiB shared L3. Latencies and
// the base CPI approximate Skylake-SP single-thread behaviour.
func XeonW2195() Config {
	return Config{
		L1:          LevelConfig{Name: "L1D", Size: 32 << 10, Ways: 8, Latency: 0},
		L2:          LevelConfig{Name: "L2", Size: 1024 << 10, Ways: 16, Latency: 12},
		L3:          LevelConfig{Name: "L3", Size: 25344 << 10, Ways: 11, Latency: 38},
		TLB:         TLBConfig{Entries: 64, Ways: 4, PageBits: 12, Penalty: 9},
		STLB:        TLBConfig{Entries: 1536, Ways: 12, PageBits: 12, Penalty: 70},
		MemLatency:  180,
		Prefetch:    true,
		PrefetchDeg: 1,
		BaseCPI:     0.45,
		ClockGHz:    3.7,
	}
}

// Hierarchy simulates the full data-side memory system.
type Hierarchy struct {
	cfg  Config
	l1   *Level
	l2   *Level
	l3   *Level
	tlb  *TLB
	stlb *TLB

	memAccess  uint64
	stallCycle uint64
}

// New builds a hierarchy from the config.
func New(cfg Config) *Hierarchy {
	if cfg.PrefetchDeg == 0 {
		cfg.PrefetchDeg = 1
	}
	h := &Hierarchy{
		cfg: cfg,
		l1:  NewLevel(cfg.L1),
		l2:  NewLevel(cfg.L2),
		l3:  NewLevel(cfg.L3),
		tlb: NewTLB(cfg.TLB),
	}
	if cfg.STLB.Entries > 0 {
		h.stlb = NewTLB(cfg.STLB)
	}
	return h
}

// Access runs one program load or store through the hierarchy, charging
// stall cycles for the miss path. Accesses that straddle a line boundary
// touch both lines, as on real hardware.
func (h *Hierarchy) Access(addr uint64, size uint8, write bool) {
	stall, mem := h.accessStall(addr, size)
	h.stallCycle += stall
	h.memAccess += mem
}

// accessStall simulates one access and returns the stall cycles and DRAM
// accesses it cost instead of charging them, so batch consumers can
// accumulate the charges in locals and write them back once per batch.
// Level and TLB hit/miss counters still update in place: they are updated
// exactly once per lookup either way, so their totals are bit-identical.
func (h *Hierarchy) accessStall(addr uint64, size uint8) (stall, mem uint64) {
	stall, mem = h.linesStall(addr, size)
	page := addr >> h.cfg.TLB.PageBits
	stall += h.translate(page)
	if lastPage := (addr + uint64(size) - 1) >> h.cfg.TLB.PageBits; lastPage != page {
		stall += h.translate(lastPage)
	}
	return stall, mem
}

// linesStall charges the cache-line side of one access (no translation).
func (h *Hierarchy) linesStall(addr uint64, size uint8) (stall, mem uint64) {
	first := addr >> LineShift
	last := (addr + uint64(size) - 1) >> LineShift
	for line := first; line <= last; line++ {
		s, m := h.accessLine(line)
		stall += s
		mem += m
	}
	return stall, mem
}

// ConsumeEvents implements vm.EventSink: the hierarchy drains the VM's
// batched event stream directly, simulating each load and store in batch
// order and ignoring the non-access records. This replaces the per-access
// virtual dispatch of the Hooks-era adapter in internal/measure. The
// hierarchy-wide charge counters accumulate in locals across the whole
// batch and are written back once, so the hot loop's read-modify-write
// traffic on the Hierarchy stays out of the per-event path.
//
// Page translation is shared across the batch, mirroring the VM's software
// TLB on the execution side: after an access translates page P, P sits at
// the MRU slot of its DTLB set, so a repeat lookup by the next access is a
// guaranteed hit whose MRU move is a no-op. Runs of same-page accesses —
// the common case the VM's own TLB exploits — therefore charge the hit
// counters directly and skip the set scan, with totals provably
// bit-identical to the per-access path (TestBatchedConsumeMatchesPerAccess
// pins this).
func (h *Hierarchy) ConsumeEvents(batch []vm.Event) {
	var stall, mem uint64
	last := ^uint64(0) // most recently translated page; ^0 = none yet
	pb := h.cfg.TLB.PageBits
	for i := range batch {
		ev := &batch[i]
		if ev.Kind != vm.EvAccess {
			continue
		}
		page := ev.Addr >> pb
		if end := (ev.Addr + uint64(ev.Size) - 1) >> pb; page == last && end == page {
			h.tlb.stats.Accesses++
			h.tlb.stats.Hits++
			s, m := h.linesStall(ev.Addr, ev.Size)
			stall += s
			mem += m
			continue
		}
		s, m := h.accessStall(ev.Addr, ev.Size)
		stall += s
		mem += m
		last = (ev.Addr + uint64(ev.Size) - 1) >> pb
	}
	h.stallCycle += stall
	h.memAccess += mem
}

// translate returns the DTLB penalty on a first-level miss and the full
// page-walk penalty when the second-level TLB misses too.
func (h *Hierarchy) translate(page uint64) (stall uint64) {
	if h.tlb.access(page) {
		return 0
	}
	if h.stlb != nil {
		if h.stlb.access(page) {
			return h.cfg.TLB.Penalty
		}
		return h.cfg.STLB.Penalty
	}
	return h.cfg.TLB.Penalty
}

func (h *Hierarchy) accessLine(line uint64) (stall, mem uint64) {
	if h.l1.access(line, true) {
		return h.cfg.L1.Latency, 0
	}
	if h.l2.access(line, true) {
		return h.cfg.L2.Latency, 0
	}
	if h.l3.access(line, true) {
		stall = h.cfg.L3.Latency
	} else {
		stall = h.cfg.MemLatency
		mem = 1
	}
	if h.cfg.Prefetch {
		// Next-line prefetcher at L2: on an L2 miss, pull the following
		// line(s) into L2/L3 without charging stall cycles.
		for d := 1; d <= h.cfg.PrefetchDeg; d++ {
			next := line + uint64(d)
			if !h.l2.Contains(next) {
				h.l2.access(next, false)
				h.l3.access(next, false)
			}
		}
	}
	return stall, mem
}

// Stats aggregates the hierarchy's counters.
type Stats struct {
	L1D  LevelStats
	L2   LevelStats
	L3   LevelStats
	TLB  LevelStats
	STLB LevelStats
	Mem  uint64 // DRAM accesses
}

// Stats returns a snapshot of all counters.
func (h *Hierarchy) Stats() Stats {
	st := Stats{
		L1D: h.l1.Stats(),
		L2:  h.l2.Stats(),
		L3:  h.l3.Stats(),
		TLB: h.tlb.Stats(),
		Mem: h.memAccess,
	}
	if h.stlb != nil {
		st.STLB = h.stlb.Stats()
	}
	return st
}

// StallCycles reports accumulated memory stall cycles.
func (h *Hierarchy) StallCycles() uint64 { return h.stallCycle }

// Cycles estimates total execution cycles for a run that retired the given
// instruction count: a base CPI plus the accumulated memory stalls.
func (h *Hierarchy) Cycles(instructions uint64) uint64 {
	return uint64(float64(instructions)*h.cfg.BaseCPI) + h.stallCycle
}

// Seconds converts Cycles to simulated wall-clock time at the configured
// frequency, the unit of the paper's Figure 12.
func (h *Hierarchy) Seconds(instructions uint64) float64 {
	return float64(h.Cycles(instructions)) / (h.cfg.ClockGHz * 1e9)
}

// String summarises the stats.
func (s Stats) String() string {
	return fmt.Sprintf("L1D %d/%d miss (%.2f%%), L2 %d miss, L3 %d miss, TLB %d miss, mem %d",
		s.L1D.Misses, s.L1D.Accesses, s.L1D.MissRate()*100, s.L2.Misses, s.L3.Misses, s.TLB.Misses, s.Mem)
}
