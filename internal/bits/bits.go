// Package bits provides the shared "group state" bit vector of §4.3–4.4:
// the rewritten binary sets and clears bits around monitored call sites, and
// the specialised allocator tests selector conjunctions against it to decide
// group membership at allocation time.
package bits

import (
	"fmt"
	"strings"
)

// Vec is a fixed-capacity bit vector. The zero value has zero capacity;
// create with New.
type Vec struct {
	words []uint64
	n     int
}

// New returns a vector holding n bits, all clear.
func New(n int) *Vec {
	if n < 0 {
		n = 0
	}
	return &Vec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (v *Vec) Len() int { return v.n }

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: index %d out of range [0, %d)", i, v.n))
	}
}

// Set sets bit i.
func (v *Vec) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (v *Vec) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set.
func (v *Vec) Test(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// TestAll reports whether every listed bit is set: the evaluation of one
// selector conjunction against the group state.
func (v *Vec) TestAll(idx []int) bool {
	for _, i := range idx {
		if !v.Test(i) {
			return false
		}
	}
	return true
}

// Reset clears all bits.
func (v *Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// String renders the set bits, e.g. "{1,5,9}".
func (v *Vec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < v.n; i++ {
		if v.Test(i) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%d", i)
		}
	}
	b.WriteByte('}')
	return b.String()
}
