// Package bits provides the shared "group state" bit vector of §4.3–4.4:
// the rewritten binary sets and clears bits around monitored call sites, and
// the specialised allocator tests selector conjunctions against it to decide
// group membership at allocation time.
package bits

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// Vec is a fixed-capacity bit vector. The zero value has zero capacity;
// create with New.
type Vec struct {
	words []uint64
	n     int
}

// New returns a vector holding n bits, all clear.
func New(n int) *Vec {
	if n < 0 {
		n = 0
	}
	return &Vec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (v *Vec) Len() int { return v.n }

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: index %d out of range [0, %d)", i, v.n)) //halo:errfmt-ok bounds violation is a programming error, mirroring the built-in slice check
	}
}

// Set sets bit i.
func (v *Vec) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (v *Vec) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set.
func (v *Vec) Test(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// TestAll reports whether every listed bit is set: the evaluation of one
// selector conjunction against the group state.
func (v *Vec) TestAll(idx []int) bool {
	for _, i := range idx {
		if !v.Test(i) {
			return false
		}
	}
	return true
}

// Reset clears all bits.
func (v *Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetAll sets every bit in [0, Len()). Bits beyond Len() in the final word
// stay clear so Count and AndCount never see ghosts.
func (v *Vec) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	if tail := uint(v.n) & 63; tail != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] = (1 << tail) - 1
	}
}

// CopyFrom overwrites v with o. The vectors must have equal capacity.
func (v *Vec) CopyFrom(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bits: CopyFrom length mismatch %d != %d", v.n, o.n)) //halo:errfmt-ok length-mismatch contract violation is a programming error
	}
	copy(v.words, o.words)
}

// Clone returns an independent copy of v.
func (v *Vec) Clone() *Vec {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// And intersects v with o in place. The vectors must have equal capacity.
func (v *Vec) And(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bits: And length mismatch %d != %d", v.n, o.n)) //halo:errfmt-ok length-mismatch contract violation is a programming error
	}
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Count returns the number of set bits.
func (v *Vec) Count() int {
	n := 0
	for _, w := range v.words {
		n += mathbits.OnesCount64(w)
	}
	return n
}

// AndCount returns the population count of the intersection of v and o
// without materialising it — the word-parallel conflict-counting primitive
// of the selector-identification stage. The vectors must have equal
// capacity.
func (v *Vec) AndCount(o *Vec) int {
	if v.n != o.n {
		panic(fmt.Sprintf("bits: AndCount length mismatch %d != %d", v.n, o.n)) //halo:errfmt-ok length-mismatch contract violation is a programming error
	}
	n := 0
	for i, w := range v.words {
		n += mathbits.OnesCount64(w & o.words[i])
	}
	return n
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// String renders the set bits, e.g. "{1,5,9}".
func (v *Vec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < v.n; i++ {
		if v.Test(i) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%d", i)
		}
	}
	b.WriteByte('}')
	return b.String()
}
