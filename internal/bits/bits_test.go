package bits

import "testing"

func TestSetClearTest(t *testing.T) {
	v := New(130)
	v.Set(0)
	v.Set(64)
	v.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !v.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Test(1) || v.Test(63) || v.Test(128) {
		t.Fatal("phantom bits set")
	}
	v.Clear(64)
	if v.Test(64) {
		t.Fatal("clear failed")
	}
	if !v.Any() {
		t.Fatal("Any lost bits")
	}
}

func TestTestAll(t *testing.T) {
	v := New(16)
	v.Set(1)
	v.Set(5)
	v.Set(9)
	if !v.TestAll([]int{1, 5, 9}) {
		t.Fatal("TestAll false negative")
	}
	if v.TestAll([]int{1, 5, 10}) {
		t.Fatal("TestAll false positive")
	}
	if !v.TestAll(nil) {
		t.Fatal("empty conjunction must hold")
	}
}

func TestReset(t *testing.T) {
	v := New(100)
	for i := 0; i < 100; i += 7 {
		v.Set(i)
	}
	v.Reset()
	if v.Any() {
		t.Fatal("reset incomplete")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range bit")
		}
	}()
	New(8).Set(8)
}

func TestString(t *testing.T) {
	v := New(8)
	v.Set(1)
	v.Set(5)
	if got := v.String(); got != "{1,5}" {
		t.Fatalf("String() = %q", got)
	}
}
