package group

import (
	"math"
	"testing"

	"halo/internal/affinity"
)

// buildGraph constructs a graph from edge triples and access counts.
func buildGraph(accesses map[affinity.Ctx]uint64, edges map[[2]affinity.Ctx]uint64) *affinity.Graph {
	g := affinity.NewGraph()
	for c, n := range accesses {
		for i := uint64(0); i < n; i++ {
			g.AddAccess(c)
		}
	}
	for e, w := range edges {
		g.AddEdge(e[0], e[1], w)
	}
	return g
}

func TestScoreFormula(t *testing.T) {
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 10,
		{1, 2}: 6,
	})
	// s({0,1}) = 10 / (0 loops + 1 pair) = 10.
	if s := Score(g, []affinity.Ctx{0, 1}); s != 10 {
		t.Fatalf("score = %v, want 10", s)
	}
	// s({0,1,2}) = 16 / (0 + 3) = 5.333...
	if s := Score(g, []affinity.Ctx{0, 1, 2}); math.Abs(s-16.0/3) > 1e-9 {
		t.Fatalf("score = %v, want %v", s, 16.0/3)
	}
}

func TestScoreLoopHandling(t *testing.T) {
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 0}: 8,
		{0, 1}: 4,
	})
	// Singleton with loop: 8 / (1 + 0) = 8.
	if s := Score(g, []affinity.Ctx{0}); s != 8 {
		t.Fatalf("singleton loop score = %v, want 8", s)
	}
	// Singleton without loop: 0 (denominator empty).
	if s := Score(g, []affinity.Ctx{1}); s != 0 {
		t.Fatalf("singleton score = %v, want 0", s)
	}
	// Pair with one loop: (8+4) / (1 + 1) = 6.
	if s := Score(g, []affinity.Ctx{0, 1}); s != 6 {
		t.Fatalf("pair score = %v, want 6", s)
	}
}

func TestMergeBenefitRejectsWeakCandidates(t *testing.T) {
	// 0-1 strongly connected; 2 barely attached.
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 100,
		{1, 2}: 1,
	})
	if b := MergeBenefit(g, []affinity.Ctx{0, 1}, 2, 0.05); b > 0 {
		t.Fatalf("weak candidate accepted: benefit %v", b)
	}
}

func TestMergeBenefitToleranceSlack(t *testing.T) {
	// Merging drops the score slightly; tolerance should allow it.
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 100,
		{0, 2}: 49,
		{1, 2}: 49,
	})
	// s({0,1}) = 100; s({0,1,2}) = 198/3 = 66: below even 95% of 100,
	// so this merge must be rejected.
	if b := MergeBenefit(g, []affinity.Ctx{0, 1}, 2, 0.05); b > 0 {
		t.Fatalf("drop from 100 to 66 accepted: %v", b)
	}
	// With weights making the union score 97: within 5% slack.
	g2 := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 100,
		{0, 2}: 95,
		{1, 2}: 96,
	})
	if b := MergeBenefit(g2, []affinity.Ctx{0, 1}, 2, 0.05); b <= 0 {
		t.Fatalf("within-tolerance merge rejected: %v", b)
	}
}

func TestFormGroupsTwoClusters(t *testing.T) {
	// Two tight pairs and an isolated node.
	g := buildGraph(
		map[affinity.Ctx]uint64{0: 100, 1: 90, 2: 80, 3: 70, 4: 5},
		map[[2]affinity.Ctx]uint64{
			{0, 1}: 1000,
			{2, 3}: 800,
			{1, 2}: 2, // weak cross edge
		},
	)
	groups := Form(g, Params{GroupThreshold: 0.0001})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(groups), groups)
	}
	members := map[affinity.Ctx]int{}
	for _, grp := range groups {
		for _, m := range grp.Members {
			members[m] = grp.ID
		}
	}
	if members[0] != members[1] {
		t.Fatal("0 and 1 not grouped together")
	}
	if members[2] != members[3] {
		t.Fatal("2 and 3 not grouped together")
	}
	if members[0] == members[2] {
		t.Fatal("weakly-linked clusters merged")
	}
	if _, grouped := members[4]; grouped {
		t.Fatal("isolated node grouped")
	}
}

func TestFormSeedsHottestEndpoint(t *testing.T) {
	g := buildGraph(
		map[affinity.Ctx]uint64{0: 10, 1: 500},
		map[[2]affinity.Ctx]uint64{{0, 1}: 100},
	)
	index := map[affinity.Ctx]int{0: 0, 1: 1}
	seed, ok := strongestSeed(g, g.Edges(), index, []bool{true, true})
	if !ok || seed != 1 {
		t.Fatalf("seed = %v (%v), want the hotter endpoint 1", seed, ok)
	}
	// With only the colder endpoint available, the edge no longer counts.
	if _, ok := strongestSeed(g, g.Edges(), index, []bool{true, false}); ok {
		t.Fatal("edge with unavailable endpoint used as seed")
	}
}

func TestFormRespectsMaxMembers(t *testing.T) {
	edges := map[[2]affinity.Ctx]uint64{}
	accesses := map[affinity.Ctx]uint64{}
	for i := affinity.Ctx(0); i < 8; i++ {
		accesses[i] = 100
		for j := i + 1; j < 8; j++ {
			edges[[2]affinity.Ctx{i, j}] = 50
		}
	}
	g := buildGraph(accesses, edges)
	groups := Form(g, Params{MaxGroupMembers: 3, GroupThreshold: 0.0001})
	for _, grp := range groups {
		if len(grp.Members) > 3 {
			t.Fatalf("group exceeds max members: %v", grp.Members)
		}
	}
}

func TestFormRespectsMaxGroups(t *testing.T) {
	edges := map[[2]affinity.Ctx]uint64{}
	for i := affinity.Ctx(0); i < 10; i += 2 {
		edges[[2]affinity.Ctx{i, i + 1}] = 100
	}
	g := buildGraph(nil, edges)
	groups := Form(g, Params{MaxGroups: 2, GroupThreshold: 0.0001})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want max 2", len(groups))
	}
}

func TestFormGroupThreshold(t *testing.T) {
	g := buildGraph(
		map[affinity.Ctx]uint64{0: 100000, 1: 100000, 2: 10, 3: 10},
		map[[2]affinity.Ctx]uint64{
			{0, 1}: 50000,
			{2, 3}: 2, // far below threshold
		},
	)
	groups := Form(g, Params{GroupThreshold: 0.001})
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1 (weak group thresholded)", len(groups))
	}
}

func TestFormMinWeightPruning(t *testing.T) {
	g := buildGraph(
		map[affinity.Ctx]uint64{0: 10, 1: 10},
		map[[2]affinity.Ctx]uint64{{0, 1}: 3},
	)
	groups := Form(g, Params{MinWeight: 10, GroupThreshold: 0.0001})
	if len(groups) != 0 {
		t.Fatalf("pruned edge still produced groups: %v", groups)
	}
}

func TestFormDeterminism(t *testing.T) {
	g := buildGraph(
		map[affinity.Ctx]uint64{0: 5, 1: 5, 2: 5, 3: 5},
		map[[2]affinity.Ctx]uint64{{0, 1}: 10, {2, 3}: 10, {1, 2}: 10},
	)
	a := Form(g, Params{GroupThreshold: 0.0001})
	for i := 0; i < 10; i++ {
		b := Form(g, Params{GroupThreshold: 0.0001})
		if len(a) != len(b) {
			t.Fatal("nondeterministic group count")
		}
		for j := range a {
			if len(a[j].Members) != len(b[j].Members) {
				t.Fatal("nondeterministic membership")
			}
			for k := range a[j].Members {
				if a[j].Members[k] != b[j].Members[k] {
					t.Fatal("nondeterministic member order")
				}
			}
		}
	}
}

func TestAssign(t *testing.T) {
	groups := []Group{
		{ID: 0, Members: []affinity.Ctx{1, 2}},
		{ID: 1, Members: []affinity.Ctx{5}},
	}
	m := Assign(groups)
	if m[1] != 0 || m[2] != 0 || m[5] != 1 {
		t.Fatalf("assignment = %v", m)
	}
	if _, ok := m[9]; ok {
		t.Fatal("phantom assignment")
	}
}

func TestModularityClusterSeparates(t *testing.T) {
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 50, {1, 2}: 50, {0, 2}: 50,
		{3, 4}: 50, {4, 5}: 50, {3, 5}: 50,
		{2, 3}: 1,
	})
	clusters := ModularityCluster(g)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2: %v", len(clusters), clusters)
	}
}

func TestHCSClusterSeparates(t *testing.T) {
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 50, {1, 2}: 50, {0, 2}: 50,
		{3, 4}: 50, {4, 5}: 50, {3, 5}: 50,
		{2, 3}: 1,
	})
	clusters := HCSCluster(g)
	if len(clusters) < 2 {
		t.Fatalf("clusters = %d, want >= 2: %v", len(clusters), clusters)
	}
	// 0,1,2 must not share a cluster with 3,4,5.
	for _, c := range clusters {
		hasLow, hasHigh := false, false
		for _, n := range c {
			if n <= 2 {
				hasLow = true
			} else {
				hasHigh = true
			}
		}
		if hasLow && hasHigh {
			t.Fatalf("cut failed: %v", c)
		}
	}
}

func TestStoerWagnerMinCut(t *testing.T) {
	// Two triangles joined by a single weight-1 edge: min cut = 1.
	g := buildGraph(nil, map[[2]affinity.Ctx]uint64{
		{0, 1}: 5, {1, 2}: 5, {0, 2}: 5,
		{3, 4}: 5, {4, 5}: 5, {3, 5}: 5,
		{2, 3}: 1,
	})
	cut, side := stoerWagner(g, g.Nodes())
	if cut != 1 {
		t.Fatalf("min cut = %v, want 1", cut)
	}
	if len(side) == 0 || len(side) == 6 {
		t.Fatalf("degenerate side: %v", side)
	}
}
