// Package group implements HALO's context-grouping stage (§4.2): the greedy
// clustering algorithm of Figure 6, driven by the weighted-graph-density
// score of Figure 7 and the merge-benefit function of Figure 8. It also
// provides the clustering techniques the paper compares against (weighted
// modularity and HCS) for the ablation experiments.
package group

import (
	"fmt"
	"sort"

	"halo/internal/affinity"
	"halo/internal/pool"
)

// Params configures grouping. Zero values take the paper's settings.
type Params struct {
	// MinWeight drops edges lighter than this before grouping.
	MinWeight uint64
	// MaxGroupMembers bounds group growth (Figure 6). Default 16.
	MaxGroupMembers int
	// MergeTol is T in Figure 8, the slack that permits merges whose
	// combined score is fractionally lower. Default 0.05 (§4.2).
	MergeTol float64
	// GroupThreshold is gthresh: a group is kept only if its induced
	// weight is at least TotalAccesses*GroupThreshold. Default 0.0005.
	GroupThreshold float64
	// MaxGroups bounds the number of groups formed (the artifact runs
	// roms with --max-groups 4). Default 32.
	MaxGroups int
	// Workers bounds the candidate-scan fan-out (0 = one per CPU, 1 =
	// serial). Groups formed are bit-identical at any setting: benefits
	// land in index-addressed slots and the arg-max scan runs serially in
	// node order afterwards.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.MaxGroupMembers == 0 {
		p.MaxGroupMembers = 16
	}
	if p.MergeTol == 0 {
		p.MergeTol = 0.05
	}
	if p.GroupThreshold == 0 {
		p.GroupThreshold = 0.0005
	}
	if p.MaxGroups == 0 {
		p.MaxGroups = 32
	}
	return p
}

// Group is a set of allocation contexts to be co-located at runtime.
type Group struct {
	ID       int
	Members  []affinity.Ctx
	Weight   uint64 // induced edge weight, including loops
	Accesses uint64 // sum of member access counts ("popularity")
}

func (g Group) String() string {
	return fmt.Sprintf("group %d: %d members, weight %d, accesses %d", g.ID, len(g.Members), g.Weight, g.Accesses)
}

// Score computes s(G[nodes]) per Figure 7: the induced subgraph's total
// edge weight divided by (|L| + |V|(|V|-1)/2), where L is the set of
// positive-weight loop edges present. An empty denominator scores zero.
func Score(g *affinity.Graph, nodes []affinity.Ctx) float64 {
	var sum uint64
	loops := 0
	for i, u := range nodes {
		if w := g.Weight(u, u); w > 0 {
			sum += w
			loops++
		}
		for _, v := range nodes[i+1:] {
			sum += g.Weight(u, v)
		}
	}
	n := len(nodes)
	denom := float64(loops) + float64(n*(n-1))/2
	if denom == 0 {
		return 0
	}
	return float64(sum) / denom
}

// MergeBenefit computes m(A, {stranger}) per Figure 8: positive only when
// the union scores higher than both parts, up to the tolerance slack.
func MergeBenefit(g *affinity.Graph, group []affinity.Ctx, stranger affinity.Ctx, tol float64) float64 {
	return mergeBenefit(g, group, Score(g, group), stranger, tol, nil)
}

// mergeBenefit is MergeBenefit with the group's own score precomputed
// (it is invariant across a candidate scan) and caller-owned scratch for
// the union slice, so the grouping loop allocates and rescores nothing
// per candidate.
func mergeBenefit(g *affinity.Graph, group []affinity.Ctx, groupScore float64, stranger affinity.Ctx, tol float64, scratch []affinity.Ctx) float64 {
	single := [1]affinity.Ctx{stranger}
	sb := Score(g, single[:])
	union := append(append(scratch[:0], group...), stranger)
	sc := Score(g, union)
	max := groupScore
	if sb > max {
		max = sb
	}
	return sc - (1-tol)*max
}

// Form partitions the graph's contexts into groups per Figure 6. The
// candidate set is kept as the graph's sorted node list plus a liveness
// mask, and the sorted edge list is computed once, so each round scans
// dense arrays instead of re-sorting maps; the visiting order — and thus
// the formed groups — is exactly the map-based implementation's.
func Form(g *affinity.Graph, p Params) []Group {
	p = p.withDefaults()
	g = g.Prune(p.MinWeight)

	nodes := g.Nodes() // ascending, the candidate visiting order
	edges := g.Edges() // ascending, the seed visiting order
	index := make(map[affinity.Ctx]int, len(nodes))
	for i, c := range nodes {
		index[c] = i
	}
	alive := make([]bool, len(nodes))
	for i := range alive {
		alive[i] = true
	}
	navail := len(nodes)
	scan := newCandidateScan(len(nodes), p.Workers, p.MaxGroupMembers)

	var groups []Group
	for navail > 0 && len(groups) < p.MaxGroups {
		seed, ok := strongestSeed(g, edges, index, alive)
		if !ok {
			break // no edges remain among available nodes
		}
		members := []affinity.Ctx{seed}
		alive[index[seed]] = false
		navail--

		// Grow the group around the seed.
		for len(members) < p.MaxGroupMembers {
			memberScore := Score(g, members)
			scan.run(g, nodes, alive, members, memberScore, p.MergeTol)
			// Arg-max in node order: the first strict improvement wins,
			// exactly as the serial scan visited candidates.
			best, bestScore := affinity.NoCtx, 0.0
			for i, cand := range nodes {
				if !alive[i] {
					continue
				}
				if b := scan.benefits[i]; b > bestScore {
					bestScore, best = b, cand
				}
			}
			if best == affinity.NoCtx {
				break
			}
			members = append(members, best)
			alive[index[best]] = false
			navail--
		}

		weight := inducedWeight(g, members)
		if float64(weight) >= float64(g.TotalAccesses())*p.GroupThreshold && len(members) > 0 {
			var accesses uint64
			for _, m := range members {
				accesses += g.Accesses(m)
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			groups = append(groups, Group{
				ID:       len(groups),
				Members:  members,
				Weight:   weight,
				Accesses: accesses,
			})
		}
	}
	return groups
}

// candidateScan evaluates every available candidate's merge benefit into
// an index-addressed slot, fanning contiguous node ranges out over a
// bounded worker pool when the candidate set is large enough to pay for
// it. Each worker owns its own union scratch; the caller's serial arg-max
// over the slots reproduces the serial scan's pick exactly.
type candidateScan struct {
	workers    int
	maxMembers int
	benefits   []float64
	scratch    [][]affinity.Ctx // one union buffer per worker chunk
}

// parallelScanMin is the candidate count below which the scan stays
// serial: below it, pool dispatch costs more than the benefit arithmetic.
const parallelScanMin = 192

func newCandidateScan(n, workers, maxMembers int) *candidateScan {
	if workers <= 0 {
		workers = pool.DefaultWorkers()
	}
	return &candidateScan{workers: workers, maxMembers: maxMembers, benefits: make([]float64, n)}
}

func (s *candidateScan) run(g *affinity.Graph, nodes []affinity.Ctx, alive []bool, members []affinity.Ctx, memberScore, tol float64) {
	chunks := s.workers
	if len(nodes) < parallelScanMin || chunks == 1 {
		chunks = 1
	}
	if len(s.scratch) < chunks {
		s.scratch = make([][]affinity.Ctx, chunks)
	}
	per := (len(nodes) + chunks - 1) / chunks
	pool.Map(chunks, chunks, func(ci int) error {
		if s.scratch[ci] == nil {
			s.scratch[ci] = make([]affinity.Ctx, 0, s.maxMembers+1)
		}
		lo, hi := ci*per, (ci+1)*per
		if hi > len(nodes) {
			hi = len(nodes)
		}
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			s.benefits[i] = mergeBenefit(g, members, memberScore, nodes[i], tol, s.scratch[ci])
		}
		return nil
	})
}

// strongestSeed finds the strongest edge whose endpoints are both
// available and returns its hotter endpoint (Figure 6: "form a group
// around the hottest node in the strongest available edge"). edges is the
// graph's sorted edge list; ties keep the first edge in that order, as
// the map-based implementation did.
func strongestSeed(g *affinity.Graph, edges []affinity.EdgeKey, index map[affinity.Ctx]int, alive []bool) (affinity.Ctx, bool) {
	var (
		bestW    uint64
		bestEdge affinity.EdgeKey
		found    bool
	)
	for _, e := range edges {
		if !alive[index[e.U]] || !alive[index[e.V]] {
			continue
		}
		w := g.Weight(e.U, e.V)
		if w > bestW {
			bestW, bestEdge, found = w, e, true
		}
	}
	if !found {
		return affinity.NoCtx, false
	}
	u, v := bestEdge.U, bestEdge.V
	if g.Accesses(v) > g.Accesses(u) {
		return v, true
	}
	return u, true
}

// inducedWeight sums the edge weights within the member set, including
// loop edges.
func inducedWeight(g *affinity.Graph, members []affinity.Ctx) uint64 {
	var sum uint64
	for i, u := range members {
		sum += g.Weight(u, u)
		for _, v := range members[i+1:] {
			sum += g.Weight(u, v)
		}
	}
	return sum
}

// Assign writes group memberships back into a context table (any slice
// addressable by affinity.Ctx with a settable Group field is handled by
// the caller); it returns a map from context to group id for convenience.
func Assign(groups []Group) map[affinity.Ctx]int {
	m := make(map[affinity.Ctx]int)
	for _, g := range groups {
		for _, c := range g.Members {
			m[c] = g.ID
		}
	}
	return m
}
