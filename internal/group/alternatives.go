package group

import (
	"math"
	"sort"

	"halo/internal/affinity"
)

// This file implements the clustering techniques §4.2 compares HALO's
// grouping against: greedy weighted-modularity agglomeration (Newman &
// Girvan's quality function) and HCS (Hartuv & Shamir's highly-connected-
// subgraphs algorithm, built on Stoer–Wagner minimum cuts). The ablation
// experiment contrasts the groups they produce with Figure 6's output
// using the Figure 7 score and the co-allocation weight they capture.

// ModularityCluster greedily merges communities while the weighted
// modularity gain is positive (CNM-style agglomeration).
func ModularityCluster(g *affinity.Graph) [][]affinity.Ctx {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	// Community state: each node starts alone.
	comm := make(map[affinity.Ctx]int, len(nodes))
	members := make(map[int][]affinity.Ctx, len(nodes))
	for i, c := range nodes {
		comm[c] = i
		members[i] = []affinity.Ctx{c}
	}
	// Total edge weight (loops count once), node strengths.
	var m float64
	strength := make(map[affinity.Ctx]float64, len(nodes))
	for _, e := range g.Edges() {
		w := float64(g.Weight(e.U, e.V))
		m += w
		strength[e.U] += w
		if !e.IsLoop() {
			strength[e.V] += w
		}
	}
	if m == 0 {
		return singletonClusters(nodes)
	}

	commStrength := make(map[int]float64, len(nodes))
	for c, s := range strength {
		commStrength[comm[c]] = s
	}
	// between[i][j]: inter-community weight.
	between := make(map[int]map[int]float64)
	addBetween := func(a, b int, w float64) {
		if a == b {
			return
		}
		if between[a] == nil {
			between[a] = make(map[int]float64)
		}
		if between[b] == nil {
			between[b] = make(map[int]float64)
		}
		between[a][b] += w
		between[b][a] += w
	}
	for _, e := range g.Edges() {
		if !e.IsLoop() {
			addBetween(comm[e.U], comm[e.V], float64(g.Weight(e.U, e.V)))
		}
	}

	for {
		bestGain := 0.0
		bestA, bestB := -1, -1
		// Deterministic iteration order.
		cids := make([]int, 0, len(between))
		for a := range between {
			cids = append(cids, a)
		}
		sort.Ints(cids)
		for _, a := range cids {
			nids := make([]int, 0, len(between[a]))
			for b := range between[a] {
				nids = append(nids, b)
			}
			sort.Ints(nids)
			for _, b := range nids {
				if b <= a {
					continue
				}
				// ΔQ for merging a and b under weighted modularity.
				gain := between[a][b]/m - commStrength[a]*commStrength[b]/(2*m*m)
				if gain > bestGain {
					bestGain, bestA, bestB = gain, a, b
				}
			}
		}
		if bestA < 0 {
			break
		}
		// Merge bestB into bestA.
		members[bestA] = append(members[bestA], members[bestB]...)
		delete(members, bestB)
		commStrength[bestA] += commStrength[bestB]
		delete(commStrength, bestB)
		for n, w := range between[bestB] {
			if n == bestA {
				continue
			}
			delete(between[n], bestB)
			addBetween(bestA, n, w)
		}
		delete(between[bestA], bestB)
		delete(between, bestB)
	}

	out := make([][]affinity.Ctx, 0, len(members))
	keys := make([]int, 0, len(members))
	for k := range members {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		ms := members[k]
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		out = append(out, ms)
	}
	return out
}

func singletonClusters(nodes []affinity.Ctx) [][]affinity.Ctx {
	out := make([][]affinity.Ctx, len(nodes))
	for i, c := range nodes {
		out[i] = []affinity.Ctx{c}
	}
	return out
}

// HCSCluster recursively splits the graph by minimum cut until each part
// is highly connected (min cut > |V|/2), per Hartuv & Shamir.
func HCSCluster(g *affinity.Graph) [][]affinity.Ctx {
	var out [][]affinity.Ctx
	var rec func(nodes []affinity.Ctx, depth int)
	rec = func(nodes []affinity.Ctx, depth int) {
		if len(nodes) <= 2 || depth > 32 {
			out = append(out, nodes)
			return
		}
		// Split into connected components first.
		comps := components(g, nodes)
		if len(comps) > 1 {
			for _, comp := range comps {
				rec(comp, depth+1)
			}
			return
		}
		cutW, side := stoerWagner(g, nodes)
		if cutW > float64(len(nodes))/2 {
			out = append(out, nodes)
			return
		}
		inSide := make(map[affinity.Ctx]bool, len(side))
		for _, c := range side {
			inSide[c] = true
		}
		var other []affinity.Ctx
		for _, c := range nodes {
			if !inSide[c] {
				other = append(other, c)
			}
		}
		if len(side) == 0 || len(other) == 0 {
			out = append(out, nodes)
			return
		}
		rec(side, depth+1)
		rec(other, depth+1)
	}
	all := g.Nodes()
	if len(all) > 0 {
		rec(all, 0)
	}
	for _, c := range out {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	return out
}

// components partitions nodes into connected components (loops ignored).
func components(g *affinity.Graph, nodes []affinity.Ctx) [][]affinity.Ctx {
	adj := g.Adjacency()
	in := make(map[affinity.Ctx]bool, len(nodes))
	for _, c := range nodes {
		in[c] = true
	}
	seen := make(map[affinity.Ctx]bool, len(nodes))
	var out [][]affinity.Ctx
	for _, start := range nodes {
		if seen[start] {
			continue
		}
		var comp []affinity.Ctx
		stack := []affinity.Ctx{start}
		seen[start] = true
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, c)
			for _, n := range adj[c] {
				if in[n] && !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// stoerWagner computes a global minimum cut of the induced subgraph,
// returning the cut weight and one side of the best cut. The input must be
// connected and have at least 2 nodes.
func stoerWagner(g *affinity.Graph, nodes []affinity.Ctx) (float64, []affinity.Ctx) {
	n := len(nodes)
	idx := make(map[affinity.Ctx]int, n)
	for i, c := range nodes {
		idx[c] = i
	}
	// Dense weight matrix of the induced subgraph (loops excluded).
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i, u := range nodes {
		for j := i + 1; j < n; j++ {
			if wt := g.Weight(u, nodes[j]); wt > 0 {
				w[i][j] = float64(wt)
				w[j][i] = float64(wt)
			}
		}
	}
	// merged[i] lists the original node indices contracted into i.
	merged := make([][]int, n)
	for i := range merged {
		merged[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	best := math.Inf(1)
	var bestSide []int

	for len(active) > 1 {
		// Maximum adjacency ordering.
		inA := make(map[int]bool, len(active))
		weights := make(map[int]float64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			sel, selW := -1, -1.0
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		s, t := order[len(order)-2], order[len(order)-1]
		cutOfPhase := weights[t]
		if cutOfPhase < best {
			best = cutOfPhase
			bestSide = append([]int(nil), merged[t]...)
		}
		// Contract t into s.
		merged[s] = append(merged[s], merged[t]...)
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		// Remove t from active.
		for i, v := range active {
			if v == t {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}

	side := make([]affinity.Ctx, 0, len(bestSide))
	for _, i := range bestSide {
		side = append(side, nodes[i])
	}
	return best, side
}
