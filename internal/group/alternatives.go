package group

import (
	"math"
	"sort"

	"halo/internal/affinity"
)

// This file implements the clustering techniques §4.2 compares HALO's
// grouping against: greedy weighted-modularity agglomeration (Newman &
// Girvan's quality function) and HCS (Hartuv & Shamir's highly-connected-
// subgraphs algorithm, built on Stoer–Wagner minimum cuts). The ablation
// experiment contrasts the groups they produce with Figure 6's output
// using the Figure 7 score and the co-allocation weight they capture.
//
// Community state is kept in dense index-addressed arrays (an alive mask,
// a strength vector and a flat inter-community weight matrix) — the same
// layout group.go uses for Figure 6 — so each merge round scans rows
// instead of sorting nested maps.

// ModularityCluster greedily merges communities while the weighted
// modularity gain is positive (CNM-style agglomeration).
func ModularityCluster(g *affinity.Graph) [][]affinity.Ctx {
	nodes := g.Nodes()
	n := len(nodes)
	if n == 0 {
		return nil
	}
	idx := make(map[affinity.Ctx]int, n)
	for i, c := range nodes {
		idx[c] = i
	}
	// Community state: each node starts alone. Communities are indexed by
	// their founding node's position, with an alive mask tracking merges.
	members := make([][]affinity.Ctx, n)
	alive := make([]bool, n)
	for i, c := range nodes {
		members[i] = []affinity.Ctx{c}
		alive[i] = true
	}
	// Total edge weight (loops count once), community strengths, and the
	// flat inter-community weight matrix (loops excluded).
	var m float64
	strength := make([]float64, n)
	between := make([]float64, n*n)
	for _, e := range g.Edges() {
		w := float64(g.Weight(e.U, e.V))
		m += w
		a, b := idx[e.U], idx[e.V]
		strength[a] += w
		if !e.IsLoop() {
			strength[b] += w
			between[a*n+b] += w
			between[b*n+a] += w
		}
	}
	if m == 0 {
		return singletonClusters(nodes)
	}

	for {
		bestGain := 0.0
		bestA, bestB := -1, -1
		for a := 0; a < n; a++ {
			if !alive[a] {
				continue
			}
			row := between[a*n : a*n+n]
			for b := a + 1; b < n; b++ {
				if !alive[b] || row[b] == 0 {
					continue
				}
				// ΔQ for merging a and b under weighted modularity.
				gain := row[b]/m - strength[a]*strength[b]/(2*m*m)
				if gain > bestGain {
					bestGain, bestA, bestB = gain, a, b
				}
			}
		}
		if bestA < 0 {
			break
		}
		// Merge bestB into bestA: fold its members, strength and row.
		members[bestA] = append(members[bestA], members[bestB]...)
		members[bestB] = nil
		strength[bestA] += strength[bestB]
		alive[bestB] = false
		for c := 0; c < n; c++ {
			if c == bestA || !alive[c] {
				continue
			}
			if w := between[bestB*n+c]; w != 0 {
				between[bestA*n+c] += w
				between[c*n+bestA] = between[bestA*n+c]
			}
		}
		between[bestA*n+bestB] = 0
		between[bestB*n+bestA] = 0
	}

	var out [][]affinity.Ctx
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		ms := members[i]
		sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
		out = append(out, ms)
	}
	return out
}

func singletonClusters(nodes []affinity.Ctx) [][]affinity.Ctx {
	out := make([][]affinity.Ctx, len(nodes))
	for i, c := range nodes {
		out[i] = []affinity.Ctx{c}
	}
	return out
}

// HCSCluster recursively splits the graph by minimum cut until each part
// is highly connected (min cut > |V|/2), per Hartuv & Shamir.
func HCSCluster(g *affinity.Graph) [][]affinity.Ctx {
	var out [][]affinity.Ctx
	var rec func(nodes []affinity.Ctx, depth int)
	rec = func(nodes []affinity.Ctx, depth int) {
		if len(nodes) <= 2 || depth > 32 {
			out = append(out, nodes)
			return
		}
		// Split into connected components first.
		comps := components(g, nodes)
		if len(comps) > 1 {
			for _, comp := range comps {
				rec(comp, depth+1)
			}
			return
		}
		cutW, side := stoerWagner(g, nodes)
		if cutW > float64(len(nodes))/2 {
			out = append(out, nodes)
			return
		}
		inSide := make(map[affinity.Ctx]bool, len(side))
		for _, c := range side {
			inSide[c] = true
		}
		var other []affinity.Ctx
		for _, c := range nodes {
			if !inSide[c] {
				other = append(other, c)
			}
		}
		if len(side) == 0 || len(other) == 0 {
			out = append(out, nodes)
			return
		}
		rec(side, depth+1)
		rec(other, depth+1)
	}
	all := g.Nodes()
	if len(all) > 0 {
		rec(all, 0)
	}
	for _, c := range out {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	return out
}

// components partitions nodes into connected components (loops ignored).
func components(g *affinity.Graph, nodes []affinity.Ctx) [][]affinity.Ctx {
	adj := g.Adjacency()
	in := make(map[affinity.Ctx]bool, len(nodes))
	for _, c := range nodes {
		in[c] = true
	}
	seen := make(map[affinity.Ctx]bool, len(nodes))
	var out [][]affinity.Ctx
	for _, start := range nodes {
		if seen[start] {
			continue
		}
		var comp []affinity.Ctx
		stack := []affinity.Ctx{start}
		seen[start] = true
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, c)
			for _, n := range adj[c] {
				if in[n] && !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// stoerWagner computes a global minimum cut of the induced subgraph,
// returning the cut weight and one side of the best cut. The input must be
// connected and have at least 2 nodes.
func stoerWagner(g *affinity.Graph, nodes []affinity.Ctx) (float64, []affinity.Ctx) {
	n := len(nodes)
	idx := make(map[affinity.Ctx]int, n)
	for i, c := range nodes {
		idx[c] = i
	}
	// Dense weight matrix of the induced subgraph (loops excluded).
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i, u := range nodes {
		for j := i + 1; j < n; j++ {
			if wt := g.Weight(u, nodes[j]); wt > 0 {
				w[i][j] = float64(wt)
				w[j][i] = float64(wt)
			}
		}
	}
	// merged[i] lists the original node indices contracted into i.
	merged := make([][]int, n)
	for i := range merged {
		merged[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	best := math.Inf(1)
	var bestSide []int

	// Phase scratch, reset per maximum-adjacency ordering.
	inA := make([]bool, n)
	weights := make([]float64, n)

	for len(active) > 1 {
		// Maximum adjacency ordering.
		for _, v := range active {
			inA[v] = false
			weights[v] = 0
		}
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			sel, selW := -1, -1.0
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		s, t := order[len(order)-2], order[len(order)-1]
		cutOfPhase := weights[t]
		if cutOfPhase < best {
			best = cutOfPhase
			bestSide = append([]int(nil), merged[t]...)
		}
		// Contract t into s.
		merged[s] = append(merged[s], merged[t]...)
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		// Remove t from active.
		for i, v := range active {
			if v == t {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}

	side := make([]affinity.Ctx, 0, len(bestSide))
	for _, i := range bestSide {
		side = append(side, nodes[i])
	}
	return best, side
}
