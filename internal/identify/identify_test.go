package identify

import (
	"testing"

	"halo/internal/affinity"
	"halo/internal/group"
	"halo/internal/isa"
	"halo/internal/profile"
)

// ctx builds a context with the given chain of call sites.
func ctx(id affinity.Ctx, grp int, sites ...isa.Addr) *profile.Context {
	c := &profile.Context{ID: id, Group: grp}
	for _, s := range sites {
		c.Chain = append(c.Chain, profile.ChainEntry{Fn: int32(s.FuncIndex()), Site: s})
	}
	return c
}

func site(fn, pc int) isa.Addr { return isa.MakeAddr(fn, pc) }

func TestBuildDistinguishesByUniqueSite(t *testing.T) {
	// Member passes through site A; the conflicting context does not.
	a, b, shared := site(1, 1), site(2, 2), site(3, 3)
	contexts := []*profile.Context{
		ctx(0, 0, a, shared),
		ctx(1, -1, b, shared),
	}
	groups := []group.Group{{ID: 0, Members: []affinity.Ctx{0}, Accesses: 100}}
	res := Build(groups, contexts)
	if len(res.Selectors) != 1 {
		t.Fatalf("selectors = %d", len(res.Selectors))
	}
	sel := res.Selectors[0]
	if len(sel.Conj) != 1 {
		t.Fatalf("conjunctions = %d", len(sel.Conj))
	}
	// The selector must match the member and not the conflict.
	if MatchContext(res.Selectors, contexts[0]) != 0 {
		t.Fatal("selector misses its member")
	}
	if MatchContext(res.Selectors, contexts[1]) != -1 {
		t.Fatal("selector matches the conflicting context")
	}
	if res.Residual != 0 {
		t.Fatalf("residual = %d", res.Residual)
	}
}

func TestBuildNeedsConjunction(t *testing.T) {
	// No single site separates the member from both conflicts, but the
	// pair (a AND b) does.
	a, b := site(1, 1), site(2, 2)
	contexts := []*profile.Context{
		ctx(0, 0, a, b), // member
		ctx(1, -1, a),   // conflict sharing a
		ctx(2, -1, b),   // conflict sharing b
	}
	groups := []group.Group{{ID: 0, Members: []affinity.Ctx{0}, Accesses: 10}}
	res := Build(groups, contexts)
	if got := MatchContext(res.Selectors, contexts[0]); got != 0 {
		t.Fatalf("member matched group %d", got)
	}
	if MatchContext(res.Selectors, contexts[1]) != -1 ||
		MatchContext(res.Selectors, contexts[2]) != -1 {
		t.Fatal("conflict matched")
	}
	if len(res.Selectors[0].Conj[0]) != 2 {
		t.Fatalf("conjunction = %v, want 2 sites", res.Selectors[0].Conj[0])
	}
}

func TestBuildPopularityOrder(t *testing.T) {
	a, b := site(1, 1), site(2, 2)
	contexts := []*profile.Context{
		ctx(0, 0, a),
		ctx(1, 1, b),
	}
	groups := []group.Group{
		{ID: 0, Members: []affinity.Ctx{0}, Accesses: 10},
		{ID: 1, Members: []affinity.Ctx{1}, Accesses: 1000},
	}
	res := Build(groups, contexts)
	if res.Selectors[0].Group != 1 {
		t.Fatalf("most popular group not first: %v", res.Selectors)
	}
}

func TestBuildTieBreakPrefersStackBottom(t *testing.T) {
	// Both sites eliminate all conflicts equally (there are none); the
	// site lower in the stack (earlier in the chain) must be chosen.
	lo, hi := site(1, 1), site(2, 2)
	contexts := []*profile.Context{
		ctx(0, 0, lo, hi),
	}
	groups := []group.Group{{ID: 0, Members: []affinity.Ctx{0}, Accesses: 5}}
	res := Build(groups, contexts)
	conj := res.Selectors[0].Conj[0]
	if len(conj) != 1 || conj[0] != lo {
		t.Fatalf("conjunction = %v, want the stack-bottom site %v", conj, lo)
	}
}

func TestBuildIgnoresProcessedGroups(t *testing.T) {
	// Contexts in already-processed (more popular) groups are not
	// conflicts for later groups.
	shared := site(1, 1)
	extra := site(2, 2)
	contexts := []*profile.Context{
		ctx(0, 0, shared),        // popular group
		ctx(1, 1, shared, extra), // less popular group, overlapping chain
	}
	groups := []group.Group{
		{ID: 0, Members: []affinity.Ctx{0}, Accesses: 1000},
		{ID: 1, Members: []affinity.Ctx{1}, Accesses: 10},
	}
	res := Build(groups, contexts)
	if len(res.Selectors) != 2 {
		t.Fatalf("selectors = %d", len(res.Selectors))
	}
	// Priority evaluation: context 0 hits group 0 first even though its
	// chain is a subset of context 1's.
	if MatchContext(res.Selectors, contexts[0]) != 0 {
		t.Fatal("popular context mismatched")
	}
}

func TestBuildResidualConflicts(t *testing.T) {
	// Member and conflict have identical chains: no selector can
	// separate them, and the residual count must say so.
	s1, s2 := site(1, 1), site(2, 2)
	contexts := []*profile.Context{
		ctx(0, 0, s1, s2),
		ctx(1, -1, s1, s2),
	}
	groups := []group.Group{{ID: 0, Members: []affinity.Ctx{0}, Accesses: 10}}
	res := Build(groups, contexts)
	if res.Residual == 0 {
		t.Fatal("identical-chain conflict not reported as residual")
	}
	// The (imperfect) selector still matches the member.
	if MatchContext(res.Selectors, contexts[0]) != 0 {
		t.Fatal("member unmatched")
	}
}

func TestBuildSitesUnion(t *testing.T) {
	a, b, c := site(1, 1), site(2, 2), site(3, 3)
	contexts := []*profile.Context{
		ctx(0, 0, a),
		ctx(1, 0, b),
		ctx(2, 1, c),
	}
	groups := []group.Group{
		{ID: 0, Members: []affinity.Ctx{0, 1}, Accesses: 100},
		{ID: 1, Members: []affinity.Ctx{2}, Accesses: 50},
	}
	res := Build(groups, contexts)
	if len(res.Sites) != 3 {
		t.Fatalf("sites = %v, want 3 distinct", res.Sites)
	}
	for i := 1; i < len(res.Sites); i++ {
		if res.Sites[i-1] >= res.Sites[i] {
			t.Fatal("sites not sorted")
		}
	}
}

func TestMultiMemberGroupDNF(t *testing.T) {
	// Two members with disjoint chains: the selector needs two
	// conjunctions (a DNF).
	a, b, other := site(1, 1), site(2, 2), site(3, 3)
	contexts := []*profile.Context{
		ctx(0, 0, a),
		ctx(1, 0, b),
		ctx(2, -1, other),
	}
	groups := []group.Group{{ID: 0, Members: []affinity.Ctx{0, 1}, Accesses: 100}}
	res := Build(groups, contexts)
	if len(res.Selectors[0].Conj) != 2 {
		t.Fatalf("conjunctions = %d, want 2", len(res.Selectors[0].Conj))
	}
	if MatchContext(res.Selectors, contexts[0]) != 0 ||
		MatchContext(res.Selectors, contexts[1]) != 0 {
		t.Fatal("members unmatched")
	}
	if MatchContext(res.Selectors, contexts[2]) != -1 {
		t.Fatal("outsider matched")
	}
}

func TestSelectorString(t *testing.T) {
	s := Selector{Group: 3, Conj: [][]isa.Addr{{site(1, 1)}, {site(2, 2), site(3, 3)}}}
	str := s.String()
	if str == "" || len(str) < 10 {
		t.Fatalf("selector string = %q", str)
	}
}
