// Package identify implements HALO's group-identification stage (§4.3,
// Figure 10): it constructs, for each allocation group, a selector — a
// logical expression in disjunctive normal form over call sites — that
// distinguishes the group's members from all other allocation contexts
// using as few call sites as possible. The sites referenced by the
// selectors are the program points the post-link rewriter instruments, and
// the selectors themselves are evaluated by the specialised allocator
// against the group-state bit vector at runtime.
package identify

import (
	"fmt"
	"sort"
	"strings"

	"halo/internal/group"
	"halo/internal/isa"
	"halo/internal/profile"
)

// Selector identifies members of one group: an OR of conjunctions, each
// conjunction the AND of "control flow has passed through this call site"
// conditions.
type Selector struct {
	Group int
	Conj  [][]isa.Addr
}

// String renders the selector.
func (s Selector) String() string {
	var parts []string
	for _, conj := range s.Conj {
		var sites []string
		for _, a := range conj {
			sites = append(sites, a.String())
		}
		parts = append(parts, "("+strings.Join(sites, " ∧ ")+")")
	}
	return fmt.Sprintf("group%d: %s", s.Group, strings.Join(parts, " ∨ "))
}

// Result carries the selectors and their instrumentation points.
type Result struct {
	// Selectors are ordered most-popular group first, which is also the
	// runtime evaluation priority.
	Selectors []Selector
	// Sites is the deduplicated union of call sites referenced by any
	// selector: the points of interest the rewriter instruments.
	Sites []isa.Addr
	// Residual counts group members for which no conflict-free
	// conjunction was found (the greedy algorithm accepted a selector
	// that still matches some unrelated contexts).
	Residual int
}

// maxConjSites bounds conjunction growth defensively; Figure 10's loop
// terminates when conflicts stop improving, which this backstops.
const maxConjSites = 16

// Build constructs selectors for the groups per Figure 10. Contexts must
// carry their group assignments (Context.Group; -1 for ungrouped).
func Build(groups []group.Group, contexts []*profile.Context) *Result {
	// Process groups from most to least popular.
	ordered := append([]group.Group(nil), groups...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Accesses != ordered[j].Accesses {
			return ordered[i].Accesses > ordered[j].Accesses
		}
		return ordered[i].ID < ordered[j].ID
	})

	res := &Result{}
	ignore := make(map[int]bool, len(ordered))
	siteSet := make(map[isa.Addr]bool)

	for _, g := range ordered {
		ignore[g.ID] = true
		sel := Selector{Group: g.ID}
		for _, member := range g.Members {
			mctx := contexts[member]
			conj := buildConjunction(mctx, contexts, ignore)
			if conj == nil {
				continue
			}
			if conflictsOf(conj, contexts, ignore) > 0 {
				res.Residual++
			}
			sel.Conj = append(sel.Conj, conj)
			for _, s := range conj {
				siteSet[s] = true
			}
		}
		if len(sel.Conj) > 0 {
			res.Selectors = append(res.Selectors, sel)
		}
	}

	res.Sites = make([]isa.Addr, 0, len(siteSet))
	for s := range siteSet {
		res.Sites = append(res.Sites, s)
	}
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i] < res.Sites[j] })
	return res
}

// buildConjunction builds the expression identifying one group member:
// repeatedly add the call site from the member's chain that minimises the
// number of surviving conflicting contexts, preferring sites lower in the
// stack on ties, until conflicts reach zero or stop improving.
func buildConjunction(member *profile.Context, contexts []*profile.Context, ignore map[int]bool) []isa.Addr {
	sites := member.Sites()
	if len(sites) == 0 {
		return nil
	}
	var expr []isa.Addr
	conflicts := -1 // "infinity" sentinel

	for len(expr) < maxConjSites {
		// chains: non-ignored contexts matching the current expression.
		// An empty set means zero conflicts; one anchoring site is still
		// added so the selector has something to test at runtime.
		var chains []*profile.Context
		for _, c := range contexts {
			if ignore[c.Group] {
				continue
			}
			if matchesAll(c, expr) {
				chains = append(chains, c)
			}
		}
		if len(chains) == 0 && len(expr) > 0 {
			break
		}
		// opts: for each candidate site, how many conflicting chains
		// contain it. Pick the minimum; ties go to the site lower in the
		// member's stack.
		bestSite, bestM, bestPos := isa.NoAddr, -1, -1
		for _, s := range sites {
			if contains(expr, s) {
				continue
			}
			m := 0
			for _, c := range chains {
				if c.HasSite(s) {
					m++
				}
			}
			pos := member.SitePos(s)
			if bestM < 0 || m < bestM || (m == bestM && pos < bestPos) {
				bestSite, bestM, bestPos = s, m, pos
			}
		}
		if bestSite == isa.NoAddr {
			break
		}
		// Add the new constraint only if it reduces conflicts.
		if conflicts >= 0 && bestM >= conflicts {
			break
		}
		expr = append(expr, bestSite)
		conflicts = bestM
		if conflicts == 0 {
			break
		}
	}
	if len(expr) == 0 {
		// Degenerate: take the innermost site so the member is at least
		// approximately identified.
		expr = []isa.Addr{sites[len(sites)-1]}
	}
	return expr
}

// conflictsOf counts non-ignored contexts matching the conjunction.
func conflictsOf(conj []isa.Addr, contexts []*profile.Context, ignore map[int]bool) int {
	n := 0
	for _, c := range contexts {
		if ignore[c.Group] {
			continue
		}
		if matchesAll(c, conj) {
			n++
		}
	}
	return n
}

// matchesAll reports whether the context's chain passes through every site.
func matchesAll(c *profile.Context, sites []isa.Addr) bool {
	for _, s := range sites {
		if !c.HasSite(s) {
			return false
		}
	}
	return true
}

func contains(sites []isa.Addr, s isa.Addr) bool {
	for _, x := range sites {
		if x == s {
			return true
		}
	}
	return false
}

// MatchContext evaluates the selectors against a context chain offline,
// returning the group of the first matching selector or -1. The measure
// harness uses it to validate selector quality against the profile.
func MatchContext(selectors []Selector, c *profile.Context) int {
	for _, sel := range selectors {
		for _, conj := range sel.Conj {
			if matchesAll(c, conj) {
				return sel.Group
			}
		}
	}
	return -1
}
