// Package identify implements HALO's group-identification stage (§4.3,
// Figure 10): it constructs, for each allocation group, a selector — a
// logical expression in disjunctive normal form over call sites — that
// distinguishes the group's members from all other allocation contexts
// using as few call sites as possible. The sites referenced by the
// selectors are the program points the post-link rewriter instruments, and
// the selectors themselves are evaluated by the specialised allocator
// against the group-state bit vector at runtime.
//
// The stage is laid out for synthesis throughput: "which contexts pass
// through site S" is precomputed as one bit vector per site (indexed by
// context), so Figure 10's conflict counting is a word-parallel
// AND-popcount instead of a chain walk per (context, site) pair, and
// selector construction — independent per group once the popularity order
// fixes each group's eligibility mask — fans out over a bounded worker
// pool with results gathered by group index. Output is bit-identical at
// any worker count.
package identify

import (
	"fmt"
	"sort"
	"strings"

	"halo/internal/bits"
	"halo/internal/group"
	"halo/internal/isa"
	"halo/internal/pool"
	"halo/internal/profile"
)

// Selector identifies members of one group: an OR of conjunctions, each
// conjunction the AND of "control flow has passed through this call site"
// conditions.
type Selector struct {
	Group int
	Conj  [][]isa.Addr
}

// String renders the selector.
func (s Selector) String() string {
	var parts []string
	for _, conj := range s.Conj {
		var sites []string
		for _, a := range conj {
			sites = append(sites, a.String())
		}
		parts = append(parts, "("+strings.Join(sites, " ∧ ")+")")
	}
	return fmt.Sprintf("group%d: %s", s.Group, strings.Join(parts, " ∨ "))
}

// Result carries the selectors and their instrumentation points.
type Result struct {
	// Selectors are ordered most-popular group first, which is also the
	// runtime evaluation priority.
	Selectors []Selector
	// Sites is the deduplicated union of call sites referenced by any
	// selector: the points of interest the rewriter instruments.
	Sites []isa.Addr
	// Residual counts group members for which no conflict-free
	// conjunction was found (the greedy algorithm accepted a selector
	// that still matches some unrelated contexts).
	Residual int
}

// maxConjSites bounds conjunction growth defensively; Figure 10's loop
// terminates when conflicts stop improving, which this backstops.
const maxConjSites = 16

// siteIndex is the precomputed per-site context-membership index.
type siteIndex struct {
	ids  map[isa.Addr]int
	vecs []*bits.Vec // vecs[id] bit i set: contexts[i] passes through site
}

// buildSiteIndex scans every context chain once, producing one context
// bitset per distinct call site.
func buildSiteIndex(contexts []*profile.Context) *siteIndex {
	idx := &siteIndex{ids: make(map[isa.Addr]int)}
	n := len(contexts)
	for i, c := range contexts {
		for _, e := range c.Chain {
			if e.Site == isa.NoAddr {
				continue
			}
			id, ok := idx.ids[e.Site]
			if !ok {
				id = len(idx.vecs)
				idx.ids[e.Site] = id
				idx.vecs = append(idx.vecs, bits.New(n))
			}
			idx.vecs[id].Set(i)
		}
	}
	return idx
}

// Build constructs selectors for the groups per Figure 10 using one worker
// per CPU. Contexts must carry their group assignments (Context.Group; -1
// for ungrouped).
func Build(groups []group.Group, contexts []*profile.Context) *Result {
	return BuildParallel(groups, contexts, 0)
}

// BuildParallel is Build with an explicit worker count (<= 0 selects one
// worker per CPU, 1 forces serial execution). Selector output is a
// function of the groups and contexts alone, never of the worker count.
func BuildParallel(groups []group.Group, contexts []*profile.Context, workers int) *Result {
	// Process groups from most to least popular.
	ordered := append([]group.Group(nil), groups...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Accesses != ordered[j].Accesses {
			return ordered[i].Accesses > ordered[j].Accesses
		}
		return ordered[i].ID < ordered[j].ID
	})

	n := len(contexts)
	idx := buildSiteIndex(contexts)

	// byGroup lists the contexts carrying each group id, the set the
	// serial algorithm removed from the conflict universe as it marked
	// groups ignored.
	byGroup := make(map[int][]int)
	for i, c := range contexts {
		if c.Group >= 0 {
			byGroup[c.Group] = append(byGroup[c.Group], i)
		}
	}

	// eligible[k]: the conflict universe for ordered group k — every
	// context except those of groups 0..k in popularity order. The masks
	// derive from the order alone, so each group's selector construction
	// is independent and safe to fan out.
	eligible := make([]*bits.Vec, len(ordered))
	mask := bits.New(n)
	mask.SetAll()
	for k, g := range ordered {
		for _, i := range byGroup[g.ID] {
			mask.Clear(i)
		}
		eligible[k] = mask.Clone()
	}

	type groupResult struct {
		sel      Selector
		residual int
		sites    []isa.Addr
	}
	results := make([]groupResult, len(ordered))
	pool.Map(len(ordered), workers, func(k int) error {
		g := ordered[k]
		cur := bits.New(n) // scratch: the surviving-conflict set
		res := groupResult{sel: Selector{Group: g.ID}}
		for _, member := range g.Members {
			mctx := contexts[member]
			conj, conflicts := buildConjunction(mctx, idx, eligible[k], cur)
			if conj == nil {
				continue
			}
			if conflicts > 0 {
				res.residual++
			}
			res.sel.Conj = append(res.sel.Conj, conj)
			res.sites = append(res.sites, conj...)
		}
		results[k] = res
		return nil
	})

	// Gather in popularity order: identical to the serial walk.
	res := &Result{}
	siteSet := make(map[isa.Addr]bool)
	for k := range results {
		r := &results[k]
		res.Residual += r.residual
		if len(r.sel.Conj) > 0 {
			res.Selectors = append(res.Selectors, r.sel)
		}
		for _, s := range r.sites {
			siteSet[s] = true
		}
	}
	res.Sites = make([]isa.Addr, 0, len(siteSet))
	for s := range siteSet {
		res.Sites = append(res.Sites, s)
	}
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i] < res.Sites[j] })
	return res
}

// buildConjunction builds the expression identifying one group member:
// repeatedly add the call site from the member's chain that minimises the
// number of surviving conflicting contexts, preferring sites lower in the
// stack on ties, until conflicts reach zero or stop improving. The
// surviving set is tracked as a bitset (cur), so each candidate's conflict
// count is one AND-popcount. Returns the expression and its final
// conflict count (the residual signal).
func buildConjunction(member *profile.Context, idx *siteIndex, eligible, cur *bits.Vec) ([]isa.Addr, int) {
	sites := member.Sites()
	if len(sites) == 0 {
		return nil, 0
	}
	var expr []isa.Addr
	conflicts := -1 // "infinity" sentinel
	cur.CopyFrom(eligible)
	count := cur.Count()

	for len(expr) < maxConjSites {
		// cur: non-ignored contexts matching the current expression. An
		// empty set means zero conflicts; one anchoring site is still
		// added so the selector has something to test at runtime.
		if count == 0 && len(expr) > 0 {
			break
		}
		// For each candidate site, how many conflicting contexts contain
		// it. Pick the minimum; ties go to the site lower in the member's
		// stack.
		bestSite, bestM, bestPos := isa.NoAddr, -1, -1
		for _, s := range sites {
			if contains(expr, s) {
				continue
			}
			m := cur.AndCount(idx.vecs[idx.ids[s]])
			pos := member.SitePos(s)
			if bestM < 0 || m < bestM || (m == bestM && pos < bestPos) {
				bestSite, bestM, bestPos = s, m, pos
			}
		}
		if bestSite == isa.NoAddr {
			break
		}
		// Add the new constraint only if it reduces conflicts.
		if conflicts >= 0 && bestM >= conflicts {
			break
		}
		expr = append(expr, bestSite)
		cur.And(idx.vecs[idx.ids[bestSite]])
		count = bestM
		conflicts = bestM
		if conflicts == 0 {
			break
		}
	}
	if len(expr) == 0 {
		// Degenerate: take the innermost site so the member is at least
		// approximately identified.
		s := sites[len(sites)-1]
		expr = []isa.Addr{s}
		conflicts = eligible.AndCount(idx.vecs[idx.ids[s]])
	}
	return expr, conflicts
}

// matchesAll reports whether the context's chain passes through every site.
func matchesAll(c *profile.Context, sites []isa.Addr) bool {
	for _, s := range sites {
		if !c.HasSite(s) {
			return false
		}
	}
	return true
}

func contains(sites []isa.Addr, s isa.Addr) bool {
	for _, x := range sites {
		if x == s {
			return true
		}
	}
	return false
}

// MatchContext evaluates the selectors against a context chain offline,
// returning the group of the first matching selector or -1. The measure
// harness uses it to validate selector quality against the profile.
func MatchContext(selectors []Selector, c *profile.Context) int {
	for _, sel := range selectors {
		for _, conj := range sel.Conj {
			if matchesAll(c, conj) {
				return sel.Group
			}
		}
	}
	return -1
}
