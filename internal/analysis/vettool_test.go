package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolSeededViolations is the end-to-end acceptance check for the
// halovet driver: it builds cmd/halovet, assembles a scratch module that
// seeds the two canonical violations (an unsorted map range escaping from
// halo/internal/hds, and an ungated obs counter in a //halo:hot function),
// and proves that `go vet -vettool=halovet` fails on them and passes on a
// clean package.
func TestVettoolSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds halovet and shells out to go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not found: %v", err)
	}

	dir := t.TempDir()
	tool := filepath.Join(dir, "halovet")
	build := exec.Command(goTool, "build", "-o", tool, "./cmd/halovet")
	build.Dir = "../.." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building halovet: %v\n%s", err, out)
	}

	mod := filepath.Join(dir, "mod")
	files := map[string]string{
		"go.mod": "module halo\n\ngo 1.24\n",
		"internal/obs/obs.go": `package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

var enabled bool

func Enabled() bool { return enabled }
`,
		// Seeded violation 1: map iteration order escapes unsorted from a
		// deterministic pipeline package.
		"internal/hds/hds.go": `package hds

func Keys(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`,
		// Seeded violation 2: an ungated metric mutation in a //halo:hot
		// function.
		"internal/pipe/pipe.go": `package pipe

import "halo/internal/obs"

var events obs.Counter

//halo:hot
func Step() {
	events.Inc()
}
`,
		// Clean package: sorted-after-range and a gated counter.
		"internal/clean/clean.go": `package clean

import (
	"sort"

	"halo/internal/obs"
)

var events obs.Counter

func Keys(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

//halo:hot
func Step() {
	if obs.Enabled() {
		events.Inc()
	}
}
`,
	}
	for name, content := range files {
		path := filepath.Join(mod, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	vet := func(pkgs ...string) (string, error) {
		cmd := exec.Command(goTool, append([]string{"vet", "-vettool=" + tool}, pkgs...)...)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./...")
	if err == nil {
		t.Fatalf("go vet passed on seeded violations; output:\n%s", out)
	}
	for _, wantMsg := range []string{
		"collects values from a map range and is never sorted afterwards",
		"is not gated by obs.Enabled()",
	} {
		if !strings.Contains(out, wantMsg) {
			t.Errorf("vet output missing %q:\n%s", wantMsg, out)
		}
	}

	if out, err := vet("./internal/clean/"); err != nil {
		t.Errorf("go vet failed on the clean package: %v\n%s", err, out)
	}
}
