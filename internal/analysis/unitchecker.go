package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol on the
// standard library, replacing golang.org/x/tools/go/analysis/unitchecker
// (which the module cannot vendor). The protocol, read from cmd/go's
// internal/work and internal/vet:
//
//  1. go vet probes `halovet -flags` once and expects a JSON array of
//     {Name,Bool,Usage} flag descriptions on stdout.
//  2. go vet obtains a tool build ID from `halovet -V=full`, expecting
//     `<progname> version devel ... buildID=<hex>`.
//  3. For each package, go vet writes a JSON vet.cfg (absolute GoFiles,
//     ImportMap, PackageFile export-data paths, VetxOnly/VetxOutput fact
//     plumbing) and invokes `halovet [flags] path/to/vet.cfg`. Nonzero
//     exit or stderr output fails the vet run.
//
// Facts are not implemented: the four HALO analyzers are package-local by
// design (annotations mark cross-package contracts), so dependency
// passes (VetxOnly) only write an empty facts file for cmd/go's cache.

// Config mirrors the fields of cmd/go's vetConfig that the driver needs.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/halovet.
func Main(analyzers ...*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("halovet: ")

	fs := flag.NewFlagSet("halovet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `halovet statically enforces HALO's determinism, hot-path and observability invariants.

Usage: go vet -vettool=$(command -v halovet) [-NAME] ./...

Run it through go vet; it speaks the vet.cfg driver protocol and cannot
load packages on its own. Analyzer flags select a subset (default: all):

`)
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  -%-12s %s\n", a.Name, a.Doc)
		}
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (go vet's probe)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	fs.Var(versionFlag{}, "V", "print version and exit (-V=full, go vet's build ID probe)")
	for _, a := range analyzers {
		fs.Bool(a.Name, false, a.Doc)
	}
	fs.Parse(os.Args[1:])

	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		flags := []jsonFlag{{"json", true, "emit diagnostics as JSON"}}
		for _, a := range analyzers {
			flags = append(flags, jsonFlag{a.Name, true, a.Doc})
		}
		data, err := json.Marshal(flags)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Stdout.Write([]byte("\n"))
		os.Exit(0)
	}

	// Analyzer selection: explicitly enabled names win; with none
	// enabled, run everything not explicitly disabled.
	explicitTrue := map[string]bool{}
	explicitFalse := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		for _, a := range analyzers {
			if a.Name == f.Name {
				if f.Value.String() == "true" {
					explicitTrue[a.Name] = true
				} else {
					explicitFalse[a.Name] = true
				}
			}
		}
	})
	var enabled []*Analyzer
	for _, a := range analyzers {
		switch {
		case len(explicitTrue) > 0:
			if explicitTrue[a.Name] {
				enabled = append(enabled, a)
			}
		case !explicitFalse[a.Name]:
			enabled = append(enabled, a)
		}
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}
	diags, err := runUnitchecker(args[0], enabled)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	if len(diags) > 0 {
		exit = 1
		if *jsonOut {
			printJSONDiagnostics(os.Stdout, diags)
		} else {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
			}
		}
	}
	os.Exit(exit)
}

// versionFlag implements -V=full, the subset of cmd/internal/objabi's
// version flag that cmd/go uses to fingerprint the tool for caching: the
// output must be `<progname> version devel ... buildID=<hex>`, where the
// hex digest changes whenever the binary does.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (only -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%x\n", prog, h.Sum(nil))
	os.Exit(0)
	return nil
}

func runUnitchecker(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// No facts are produced, but cmd/go caches the output file for
	// dependency (VetxOnly) passes; write it unconditionally.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("halovet: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly || !ModulePackage(cfg.ImportPath) {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	return RunPackage(fset, files, pkg, info, analyzers)
}

// vetImporter resolves imports through the vet.cfg ImportMap to compiled
// export data listed in PackageFile, read by the stdlib gc importer.
type vetImporter struct {
	cfg *Config
	gc  types.ImporterFrom
}

func newVetImporter(fset *token.FileSet, cfg *Config) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet.cfg", path)
		}
		return os.Open(file)
	}
	return &vetImporter{
		cfg: cfg,
		gc:  importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (i *vetImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *vetImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := i.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return i.gc.ImportFrom(path, dir, 0)
}

func typecheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	var typeErrs []error
	conf := types.Config{
		Importer:  newVetImporter(fset, cfg),
		Sizes:     types.SizesFor("gc", envOr("GOARCH", runtime.GOARCH)),
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewTypesInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, nil, fmt.Errorf("%s", strings.Join(msgs, "\n"))
	}
	return pkg, info, nil
}

// NewTypesInfo builds the types.Info map set the analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// printJSONDiagnostics renders the unitchecker-compatible JSON tree:
// {"pkgpath": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSONDiagnostics(w io.Writer, diags []Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(byAnalyzer)
}
