package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPackages are the pipeline packages whose outputs are pinned
// byte-for-byte by golden fingerprints: content-addressed cache keys,
// order-independent profile merges and policy/artifact encodings all flow
// through them. Inside these packages the determinism analyzer forbids
// wall clocks, process-global randomness, environment reads, and map
// iteration order escaping into output-affecting values.
var deterministicPackages = map[string]bool{
	"halo/internal/profile":   true,
	"halo/internal/affinity":  true,
	"halo/internal/hds":       true,
	"halo/internal/group":     true,
	"halo/internal/identify":  true,
	"halo/internal/policy":    true,
	"halo/internal/rewrite":   true,
	"halo/internal/sequitur":  true,
	"halo/internal/profstore": true,
	"halo/internal/vm":        true,
	// The adversarial search must rediscover the same sequence from the
	// same seed on every machine — its pinned-seed regression tests and
	// the checked-in fuzz corpus depend on it.
	"halo/internal/adversary":         true,
	"halo/internal/adversary/advpipe": true,
}

// randConstructors are the math/rand(/v2) functions that build an
// explicitly seeded generator; everything else in those packages draws
// from the process-global source and is forbidden.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism enforces the byte-determinism contract of the pipeline
// packages (see deterministicPackages).
var Determinism = &Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall clocks, global randomness, env reads and escaping map iteration order in the deterministic pipeline packages",
	Suppress: "nondeterminism-ok",
	Run:      runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRange(pass, f, n)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	pkg, name, ok := pass.CalleePkgFunc(call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "wall-clock read time.%s in deterministic package %s", name, pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			pass.Reportf(call.Pos(), "process-global math/rand call %s.%s in deterministic package %s; use an explicitly seeded rand.New", pathBase(pkg), name, pass.Pkg.Path())
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			pass.Reportf(call.Pos(), "environment read os.%s in deterministic package %s; thread configuration through core.Config instead", name, pass.Pkg.Path())
		}
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// rangeChecker classifies the body of one `range` over a map. The rules
// describe effects whose result does not depend on iteration order:
//
//   - writes through the iteration variables themselves (per-entry state)
//   - index-addressed writes whose index involves a loop-scoped variable
//   - commutative integer accumulation (+= -= *= |= &= ^=, ++ --)
//   - a single distinct constant assigned to an outer variable
//   - appends into an outer slice that is sorted later in the function
//   - delete, continue, and break (the latter only when nothing was
//     collected into an ordered sink)
//
// Everything else — last-write-wins assignments, float/string
// accumulation, calls with side effects, sends, returns of loop-derived
// values — makes iteration order observable and is flagged.
type rangeChecker struct {
	pass     *Pass
	rs       *ast.RangeStmt
	fn       *ast.FuncDecl // enclosing function, for sorted-later scans
	loopObjs map[types.Object]bool
	sinks    map[types.Object]token.Pos // outer append targets, in first-seen order
	sinkList []types.Object
	constVal map[types.Object]string
	breaks   bool

	// loop-level suppression state
	suppressed    bool
	missingReason bool
	reportedBare  bool
}

func checkMapRange(pass *Pass, f *ast.File, rs *ast.RangeStmt) {
	c := &rangeChecker{
		pass:     pass,
		rs:       rs,
		fn:       enclosingFuncDecl(f, rs.Pos()),
		loopObjs: make(map[types.Object]bool),
		sinks:    make(map[types.Object]token.Pos),
		constVal: make(map[types.Object]string),
	}
	if d, ok := pass.suppressionAt(pass.Fset.Position(rs.Pos())); ok {
		c.suppressed = true
		c.missingReason = d.reason == ""
	}

	if rs.Tok == token.ASSIGN {
		c.flag(rs.Pos(), "map range writes its iteration variables to outer variables; the values after the loop depend on map order")
	}

	// Every object defined inside the range statement (including the
	// key/value variables) is loop-scoped: writes through it are
	// per-iteration state, not escaping order.
	ast.Inspect(rs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.loopObjs[obj] = true
			}
		}
		return true
	})

	for _, s := range rs.Body.List {
		c.stmt(s)
	}

	for _, obj := range c.sinkList {
		pos := c.sinks[obj]
		switch {
		case c.breaks:
			c.flag(pos, "%s collects map-range values but the loop can break early; the collected subset depends on map order", obj.Name())
		case !c.sortedAfter(obj):
			c.flag(pos, "%s collects values from a map range and is never sorted afterwards; its element order depends on map order", obj.Name())
		}
	}
}

// flag reports one order-escape finding, honouring a suppression
// directive placed on the `for` line of the range statement as covering
// the whole loop.
func (c *rangeChecker) flag(pos token.Pos, format string, args ...any) {
	if c.suppressed {
		if c.missingReason && !c.reportedBare {
			c.reportedBare = true
			c.pass.report(c.pass.Fset.Position(c.rs.Pos()),
				"//halo:%s directive on map range is missing a reason", c.pass.Analyzer.Suppress)
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *rangeChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		// x++ / x-- commute.
	case *ast.DeclStmt, *ast.EmptyStmt:
		// local declarations are loop-scoped (collected in the prepass)
	case *ast.ExprStmt:
		c.exprStmt(s)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.block(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.block(s)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.block(s.Body)
	case *ast.RangeStmt:
		// A nested map range gets its own checker from the file walk;
		// here we only classify its body's effects on outer state.
		c.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			for _, cs := range cc.(*ast.CaseClause).Body {
				c.stmt(cs)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			for _, cs := range cc.(*ast.CaseClause).Body {
				c.stmt(cs)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if c.usesLoopObj(res) {
				c.flag(s.Pos(), "return of a value derived from map iteration; which entry is seen first depends on map order")
				break
			}
		}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			c.breaks = true
		case token.CONTINUE:
			// fine
		default:
			c.flag(s.Pos(), "%s inside a map range makes control flow depend on map order", s.Tok)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	default:
		// go, defer, send, select, ...
		c.flag(s.Pos(), "statement inside a map range has order-dependent effects")
	}
}

func (c *rangeChecker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *rangeChecker) assign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // defines loop-scoped variables
	}

	// x = append(x, ...) into an outer slice: an ordered sink, judged
	// after the loop by whether it is sorted.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && c.pass.Builtin(call, "append") {
			obj := c.rootObj(s.Lhs[0])
			if obj != nil && c.loopObjs[obj] {
				return
			}
			if obj != nil && s.Tok == token.ASSIGN {
				if _, seen := c.sinks[obj]; !seen {
					c.sinks[obj] = s.Pos()
					c.sinkList = append(c.sinkList, obj)
				}
				return
			}
		}
	}

	if s.Tok != token.ASSIGN {
		// Compound assignment: commutative integer updates are
		// order-independent; float rounding, string concatenation and
		// shifts are not.
		lhs := s.Lhs[0]
		if obj := c.rootObj(lhs); obj != nil && c.loopObjs[obj] {
			return
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			if t := c.pass.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return
				}
				c.flag(s.Pos(), "non-integer %s accumulation in map range is order-dependent (float rounding / string order)", s.Tok)
				return
			}
		}
		c.flag(s.Pos(), "order-dependent compound assignment %s in map range", s.Tok)
		return
	}

	for i, lhs := range s.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		obj := c.rootObj(lhs)
		if obj != nil && c.loopObjs[obj] {
			continue // per-entry state via the iteration variables
		}
		if ix, ok := lhs.(*ast.IndexExpr); ok && c.usesLoopObj(ix.Index) {
			continue // index-addressed write keyed by the iteration variable
		}
		if len(s.Lhs) == len(s.Rhs) && c.isMinMaxUpdate(s, i) {
			continue // strict min/max tracking is order-independent
		}
		if len(s.Lhs) == len(s.Rhs) {
			if v := c.constValue(s.Rhs[i]); v != "" && obj != nil {
				if prev, seen := c.constVal[obj]; !seen {
					c.constVal[obj] = v
					continue
				} else if prev == v {
					continue
				}
				c.flag(s.Pos(), "conflicting constant writes to %s in map range; the surviving value depends on map order", obj.Name())
				continue
			}
		}
		c.flag(s.Pos(), "assignment in map range is overwritten on every iteration; the surviving value depends on map order")
	}
}

func (c *rangeChecker) exprStmt(s *ast.ExprStmt) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return
	}
	switch {
	case c.pass.Builtin(call, "delete"), c.pass.Builtin(call, "clear"):
		return
	case c.pass.Builtin(call, "copy"):
		if len(call.Args) > 0 && c.loopRooted(call.Args[0]) {
			return
		}
	default:
		// A method call whose receiver is loop-scoped mutates only the
		// current entry.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.loopRooted(sel.X) {
			return
		}
		// Sorting per-entry state (sort.Slice(adj[c], ...)) commutes.
		if c.isSortCall(call) && len(call.Args) > 0 && c.loopRooted(call.Args[0]) {
			return
		}
	}
	c.flag(s.Pos(), "call with potential side effects inside a map range observes iteration order")
}

// rootObj walks an lvalue chain (x, x.f, x[i], *x, (x)) to its base
// identifier's object.
func (c *rangeChecker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return c.pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (c *rangeChecker) loopRooted(e ast.Expr) bool {
	obj := c.rootObj(e)
	return obj != nil && c.loopObjs[obj]
}

func (c *rangeChecker) usesLoopObj(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.loopObjs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMinMaxUpdate recognises the strict running-extremum idiom
//
//	if v > max { max = v }   (likewise <, and flipped operand order)
//
// whose result does not depend on iteration order: values are totally
// ordered and only the extremum survives. The assigned expression must be
// syntactically identical to the compared one, and the comparison must be
// strict (>=/<= would let iteration order pick among ties for expressions
// with equal keys, which matters when the loop also records a companion
// value — that form stays flagged because the companion write won't match
// this pattern).
func (c *rangeChecker) isMinMaxUpdate(s *ast.AssignStmt, i int) bool {
	// The assignment must be the sole statement of an if with a strict
	// comparison and no else.
	ifStmt, ok := c.enclosingIf(s)
	if !ok || ifStmt.Else != nil || len(ifStmt.Body.List) != 1 {
		return false
	}
	cmp, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.LSS && cmp.Op != token.GTR) {
		return false
	}
	lhs, rhs := ast.Unparen(s.Lhs[i]), ast.Unparen(s.Rhs[i])
	x, y := ast.Unparen(cmp.X), ast.Unparen(cmp.Y)
	return (c.sameExpr(rhs, x) && c.sameExpr(lhs, y)) ||
		(c.sameExpr(rhs, y) && c.sameExpr(lhs, x))
}

// enclosingIf reports the if statement whose body consists of s, by
// re-walking the range body (cheap at these sizes).
func (c *rangeChecker) enclosingIf(s ast.Stmt) (*ast.IfStmt, bool) {
	var found *ast.IfStmt
	ast.Inspect(c.rs.Body, func(n ast.Node) bool {
		if ifStmt, ok := n.(*ast.IfStmt); ok && found == nil {
			if len(ifStmt.Body.List) == 1 && ifStmt.Body.List[0] == s {
				found = ifStmt
				return false
			}
		}
		return found == nil
	})
	return found, found != nil
}

// sameExpr reports syntactic identity for the identifier/selector chains
// the min/max idiom uses.
func (c *rangeChecker) sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := c.rootObj(a)
		return ao != nil && ao == c.rootObj(b)
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && c.sameExpr(ast.Unparen(a.X), ast.Unparen(b.X))
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && c.sameExpr(ast.Unparen(a.X), ast.Unparen(b.X)) &&
			c.sameExpr(ast.Unparen(a.Index), ast.Unparen(b.Index))
	}
	return false
}

// constValue returns a canonical string for a compile-time constant
// expression, or "".
func (c *rangeChecker) constValue(e ast.Expr) string {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return tv.Value.ExactString()
	}
	// `true` and `false` are Values in go/types, handled above; nil is not.
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := c.pass.TypesInfo.Uses[id].(*types.Nil); isNil {
			return "nil"
		}
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort/slices call (or a
// *Sort* method) after the range loop within the same function.
func (c *rangeChecker) sortedAfter(obj types.Object) bool {
	if c.fn == nil || c.fn.Body == nil {
		return false
	}
	sorted := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		if !c.isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if c.usesObj(arg, obj) {
				sorted = true
				return false
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.usesObj(sel.X, obj) {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

func (c *rangeChecker) isSortCall(call *ast.CallExpr) bool {
	if pkg, _, ok := c.pass.CalleePkgFunc(call); ok && (pkg == "sort" || pkg == "slices") {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return strings.Contains(strings.ToLower(sel.Sel.Name), "sort")
	}
	return false
}

func (c *rangeChecker) usesObj(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if c.pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingFuncDecl finds the function declaration containing pos.
func enclosingFuncDecl(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}
