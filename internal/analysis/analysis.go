// Package analysis is halovet's static-analysis substrate: a small,
// dependency-free reimplementation of the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, diagnostics) plus the
// repo-specific machinery the four HALO analyzers share — `//halo:`
// directive parsing, per-analyzer suppression comments with audited
// reasons, and `//halo:hot` function detection.
//
// The module vendors nothing, so the framework is built entirely on the
// standard library: go/ast + go/types for the analyses themselves,
// unitchecker.go for the `go vet -vettool` driver protocol, and
// analysistest for fixture-based analyzer tests.
//
// The contract enforced by the suite (see DESIGN.md "Static analysis"):
//
//   - determinism: the deterministic-pipeline packages must not observe
//     wall clocks, process-global randomness, the environment, or map
//     iteration order that escapes into outputs.
//   - hotalloc: functions annotated `//halo:hot` must not contain
//     allocation-introducing constructs.
//   - obsgate: obs metric mutations reachable from `//halo:hot` functions
//     must be gated by obs.Enabled().
//   - errfmt: received errors are wrapped with %w, and panic is reserved
//     for halloc's documented corruption traps.
//
// Every analyzer supports a `//halo:<name>-ok <reason>` suppression
// directive (determinism uses the historical `nondeterminism-ok` key) on
// the flagged line or the line above. The reason is mandatory: a bare
// directive is itself a diagnostic, so intentional violations stay
// audited rather than hidden.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the module all analyzers scope themselves to. Packages
// outside it (the stdlib, when driven by go vet) are never analyzed.
const ModulePath = "halo"

// ModulePackage reports whether path names a package inside this module.
func ModulePackage(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// An Analyzer is one named static check.
type Analyzer struct {
	Name string // command-line toggle and diagnostic tag
	Doc  string // one-line description (shown by -flags consumers and usage)

	// Suppress is the //halo:<Suppress> directive key that silences one
	// diagnostic of this analyzer with a mandatory audited reason.
	Suppress string

	Run func(*Pass) error
}

// A Diagnostic is one finding, already positioned for printing.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives directiveIndex
	diags      *[]Diagnostic
}

// directive is one parsed //halo:<key> <reason> comment.
type directive struct {
	key    string
	reason string
	pos    token.Position
}

// directiveIndex maps filename -> line -> directives starting that line.
type directiveIndex map[string]map[int][]directive

const directivePrefix = "//halo:"

// parseDirectives indexes every //halo: comment in the package.
func parseDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := text[len(directivePrefix):]
				key := rest
				reason := ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					key, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				posn := fset.Position(c.Pos())
				byLine := idx[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					idx[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], directive{key: key, reason: reason, pos: posn})
			}
		}
	}
	return idx
}

// suppressionAt looks for this analyzer's suppression directive on the
// given line or the line immediately above it.
func (p *Pass) suppressionAt(posn token.Position) (directive, bool) {
	byLine := p.directives[posn.Filename]
	if byLine == nil {
		return directive{}, false
	}
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		for _, d := range byLine[line] {
			if d.key == p.Analyzer.Suppress {
				return d, true
			}
		}
	}
	return directive{}, false
}

// Reportf records a diagnostic at pos unless a suppression directive with
// a reason covers that line. A suppression without a reason is converted
// into its own diagnostic so it cannot silently hide findings.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if d, ok := p.suppressionAt(posn); ok {
		if d.reason == "" {
			p.report(posn, "//halo:%s directive is missing a reason (suppressed: %s)",
				p.Analyzer.Suppress, fmt.Sprintf(format, args...))
		}
		return
	}
	p.report(posn, format, args...)
}

// report appends a diagnostic bypassing suppression (used for the
// missing-reason finding itself).
func (p *Pass) report(posn token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      posn,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file; the determinism,
// obsgate and errfmt analyzers exempt tests.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// HotDirective is the annotation that marks a function as a proven hot
// path, opting it into the hotalloc and obsgate contracts.
const HotDirective = "//halo:hot"

// IsHot reports whether fd carries a //halo:hot annotation in its doc
// comment.
func IsHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotDirective || strings.HasPrefix(c.Text, HotDirective+" ") {
			return true
		}
	}
	return false
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// CalleeObject resolves the called function or method object of call, or
// nil for builtins, conversions and indirect calls through variables.
func (p *Pass) CalleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := p.TypesInfo.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := p.TypesInfo.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// CalleePkgFunc resolves call to (package path, function name) when it is
// a direct call of a package-level function, as in time.Now().
func (p *Pass) CalleePkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	obj := p.CalleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	if fn, isFn := obj.(*types.Func); isFn && fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// Builtin reports whether call invokes the named builtin (append, delete,
// make, new, ...).
func (p *Pass) Builtin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// All is the halovet analyzer suite in reporting order.
var All = []*Analyzer{Determinism, Hotalloc, Obsgate, Errfmt}

// RunPackage runs the given analyzers over one type-checked package and
// returns the surviving diagnostics sorted by position. It is the shared
// core of the unitchecker driver and the analysistest harness.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	directives := parseDirectives(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			directives: directives,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
