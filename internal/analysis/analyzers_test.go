package analysis_test

import (
	"testing"

	"halo/internal/analysis"
	"halo/internal/analysis/analysistest"
)

// The fixture packages live under testdata/src and use the same module
// paths as the real code so the analyzers' package scoping applies:
// halo/internal/hds is a deterministic pipeline package, halo/internal/
// service is not, and halo/internal/halloc is the sanctioned panic site.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism,
		"halo/internal/hds",
		"halo/internal/service",
	)
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysis.Hotalloc, "halo/fix/hot")
}

func TestObsgate(t *testing.T) {
	analysistest.Run(t, analysis.Obsgate, "halo/fix/obsuser")
}

func TestErrfmt(t *testing.T) {
	analysistest.Run(t, analysis.Errfmt,
		"halo/fix/errs",
		"halo/internal/halloc",
	)
}
