package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsPkgPath is the observability substrate whose metric mutations must be
// gated on hot paths.
const obsPkgPath = "halo/internal/obs"

// metricMethods are the mutation entry points of the obs metric types.
var metricMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true, "Add": true},
	"Histogram": {"Observe": true},
}

// Obsgate verifies that every obs.Counter/Gauge/Histogram mutation that is
// statically reachable from a //halo:hot function (through same-package
// calls) is dominated by an obs.Enabled() check — either an enclosing
// `if obs.Enabled() { ... }` or an `if !obs.Enabled() { return }` earlier
// in the same function. The hot loops record at batch grain, so a
// mutation that runs unconditionally on a hot path is either a perf bug
// or needs an audited //halo:obsgate-ok reason.
var Obsgate = &Analyzer{
	Name:     "obsgate",
	Doc:      "require obs.Enabled() gating for metric mutations reachable from //halo:hot functions",
	Suppress: "obsgate-ok",
	Run:      runObsgate,
}

func runObsgate(pass *Pass) error {
	if !ModulePackage(pass.Pkg.Path()) {
		return nil
	}

	// Collect function declarations and the same-package static call graph.
	decls := make(map[types.Object]*ast.FuncDecl)
	var order []types.Object
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
				order = append(order, obj)
			}
		}
	}

	callees := func(fd *ast.FuncDecl) []types.Object {
		var out []types.Object
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := pass.CalleeObject(call); obj != nil {
					if _, local := decls[obj]; local {
						out = append(out, obj)
					}
				}
			}
			return true
		})
		return out
	}

	// BFS from the //halo:hot roots, remembering which root reached each
	// function for the diagnostic message.
	hotRoot := make(map[types.Object]string)
	var queue []types.Object
	for _, obj := range order {
		if IsHot(decls[obj]) {
			hotRoot[obj] = decls[obj].Name.Name
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, callee := range callees(decls[obj]) {
			if _, seen := hotRoot[callee]; !seen {
				hotRoot[callee] = hotRoot[obj]
				queue = append(queue, callee)
			}
		}
	}

	for _, obj := range order {
		if root, hot := hotRoot[obj]; hot {
			checkGating(pass, decls[obj], root)
		}
	}
	return nil
}

// metricMutation resolves call to (metric type name, method name) when it
// mutates an obs metric.
func metricMutation(pass *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPkgPath {
		return "", "", false
	}
	methods, ok := metricMethods[named.Obj().Name()]
	if !ok || !methods[fn.Name()] {
		return "", "", false
	}
	return named.Obj().Name(), fn.Name(), true
}

// isEnabledCall reports whether e contains a positive call to
// obs.Enabled() (negations flip polarity, so `!obs.Enabled()` does not
// count as a guard for the body it protects).
func isEnabledCall(pass *Pass, e ast.Expr, positive bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if pkg, name, ok := pass.CalleePkgFunc(e); ok && pkg == obsPkgPath && name == "Enabled" {
			return positive
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return isEnabledCall(pass, e.X, !positive)
		}
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			return isEnabledCall(pass, e.X, positive) || isEnabledCall(pass, e.Y, positive)
		}
	}
	return false
}

// checkGating walks fd maintaining the ancestor stack and reports
// ungated metric mutations.
func checkGating(pass *Pass, fd *ast.FuncDecl, root string) {
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		typ, method, ok := metricMutation(pass, call)
		if !ok {
			return true
		}
		if gatedByAncestor(pass, stack) || gatedByEarlyReturn(pass, fd, stack) {
			return true
		}
		pass.Reportf(call.Pos(), "obs.%s.%s() reachable from //halo:hot %s is not gated by obs.Enabled()", typ, method, root)
		return true
	})
}

// gatedByAncestor reports whether the innermost node of stack sits inside
// the body of an `if` whose condition positively checks obs.Enabled().
func gatedByAncestor(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		within := stack[i+1] == ifStmt.Body
		if within && isEnabledCall(pass, ifStmt.Cond, true) {
			return true
		}
	}
	return false
}

// gatedByEarlyReturn reports whether a top-level `if !obs.Enabled() {
// return }` precedes the statement containing the mutation.
func gatedByEarlyReturn(pass *Pass, fd *ast.FuncDecl, stack []ast.Node) bool {
	// Find the top-level statement of fd.Body on the ancestor path.
	var top ast.Stmt
	for i, n := range stack {
		if n == fd.Body && i+1 < len(stack) {
			if s, ok := stack[i+1].(ast.Stmt); ok {
				top = s
			}
			break
		}
	}
	if top == nil {
		return false
	}
	for _, s := range fd.Body.List {
		if s == top {
			return false
		}
		ifStmt, ok := s.(*ast.IfStmt)
		if !ok || ifStmt.Else != nil {
			continue
		}
		if !isEnabledCall(pass, ifStmt.Cond, false) {
			continue
		}
		if n := len(ifStmt.Body.List); n > 0 {
			if _, isRet := ifStmt.Body.List[n-1].(*ast.ReturnStmt); isRet {
				return true
			}
		}
	}
	return false
}
