package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// hallocPkgPath hosts the allocator's documented corruption traps — the
// only place the repo panics by design (double free, invalid free,
// neighbour-chunk overwrite).
const hallocPkgPath = "halo/internal/halloc"

// Errfmt enforces the error-handling conventions: a received error passed
// to fmt.Errorf must be wrapped with %w (so errors.Is/As keep working
// across the service and pipeline layers), and panic is reserved for
// halloc's documented heap-corruption traps; any other intentional panic
// needs an audited //halo:errfmt-ok reason.
var Errfmt = &Analyzer{
	Name:     "errfmt",
	Doc:      "require %w when wrapping errors with fmt.Errorf, and confine panic to halloc's corruption traps",
	Suppress: "errfmt-ok",
	Run:      runErrfmt,
}

func runErrfmt(pass *Pass) error {
	if !ModulePackage(pass.Pkg.Path()) {
		return nil
	}
	errorType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.Builtin(call, "panic") {
				if pass.Pkg.Path() != hallocPkgPath {
					pass.Reportf(call.Pos(), "panic outside halloc's documented corruption traps; return an error instead")
				}
				return true
			}
			if pkg, name, ok := pass.CalleePkgFunc(call); ok && pkg == "fmt" && name == "Errorf" {
				checkErrorf(pass, call, errorType)
			}
			return true
		})
	}
	return nil
}

func checkErrorf(pass *Pass, call *ast.CallExpr, errorType types.Type) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := constStringValue(pass, call.Args[0])
	if !ok {
		return // dynamic format string; nothing to prove
	}
	if countVerb(format, 'w') > 0 {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypeOf(arg)
		if t == nil {
			continue
		}
		if types.AssignableTo(t, errorType) && !isNilExpr(pass, arg) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats a received error without %%w; wrap it so errors.Is/As see through the message")
			return
		}
	}
}

func constStringValue(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// countVerb counts occurrences of %<verb> in a format string, skipping
// %% escapes and flag/width characters between % and the verb.
func countVerb(format string, verb byte) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.*[]", format[j]) >= 0 {
			j++
		}
		if j < len(format) {
			if format[j] == verb {
				n++
			}
			i = j
		}
	}
	return n
}
