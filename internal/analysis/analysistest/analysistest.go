// Package analysistest runs halovet analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` expectations, the
// same convention as golang.org/x/tools/go/analysis/analysistest (which
// the module cannot vendor).
//
// Fixtures live under testdata/src/<import path> relative to the calling
// test's package directory. Imports of other fixture packages resolve
// through the same tree; everything else (the standard library) is
// type-checked from GOROOT source via go/importer's "source" compiler,
// so no compiled export data is needed.
//
// A `// want` comment expects one diagnostic per quoted regexp on the
// same line; lines without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"halo/internal/analysis"
)

// Run loads each fixture package, runs the analyzer over it, and reports
// any mismatch between diagnostics and want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join("testdata", "src"))
	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			pkg, files, info, err := l.loadTarget(path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			diags, err := analysis.RunPackage(l.fset, files, pkg, info, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			expects, err := parseExpectations(l.fset, files)
			if err != nil {
				t.Fatal(err)
			}
			check(t, diags, expects)
		})
	}
}

// check matches diagnostics against expectations one-to-one by file, line
// and regexp.
func check(t *testing.T, diags []analysis.Diagnostic, expects []*expectation) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
}

// expectation is one `// want "re"` entry, anchored to its line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseExpectations extracts want expectations from every comment in the
// fixture files. Each quoted string after `want` expects one diagnostic.
func parseExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != "want" && !strings.HasPrefix(text, "want ") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				posn := fset.Position(c.Pos())
				if rest == "" {
					return nil, fmt.Errorf("%s: want comment has no expectations", posn)
				}
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q: %w", posn, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: unquoting %s: %w", posn, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: compiling %q: %w", posn, pat, err)
					}
					out = append(out, &expectation{file: posn.Filename, line: posn.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out, nil
}

// loader type-checks fixture packages, resolving fixture-to-fixture
// imports through the testdata tree and everything else from GOROOT
// source.
type loader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
	std  types.ImporterFrom
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		root: root,
		pkgs: make(map[string]*types.Package),
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		pkg, _, _, err := l.load(path, false)
		return pkg, err
	}
	return l.std.ImportFrom(path, dir, 0)
}

// loadTarget loads the package under test, including its _test.go fixture
// files (analyzers must prove they exempt them).
func (l *loader) loadTarget(path string) (*types.Package, []*ast.File, *types.Info, error) {
	return l.load(path, true)
}

func (l *loader) load(path string, includeTests bool) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, GoVersion: "go1.24"}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[path] = pkg
	return pkg, files, info, nil
}
