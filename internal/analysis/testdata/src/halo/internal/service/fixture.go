// Package service is outside the deterministic-pipeline set; the
// determinism analyzer must ignore it entirely, so no line here carries
// a want expectation.
package service

import (
	"os"
	"time"
)

func timestamp() int64 {
	return time.Now().Unix()
}

func debugEnv() string {
	return os.Getenv("HALO_DEBUG")
}

func anyKey(m map[int]int) int {
	for k := range m {
		return k
	}
	return -1
}
