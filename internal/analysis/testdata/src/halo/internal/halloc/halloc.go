// Package halloc is a fixture stand-in for the allocator package: its
// corruption traps are the one sanctioned panic site, so nothing here is
// flagged.
package halloc

func trap(msg string) {
	panic("halloc: " + msg)
}

func checkMagic(got, want uint64) {
	if got != want {
		trap("neighbour chunk overwrite")
	}
}
