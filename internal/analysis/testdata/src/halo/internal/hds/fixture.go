// Package hds is a determinism fixture: halo/internal/hds is one of the
// deterministic pipeline packages, so the analyzer runs in full here.
package hds

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func forbiddenCalls() (int64, string) {
	t := time.Now()              // want `wall-clock read time\.Now in deterministic package halo/internal/hds`
	n := rand.Intn(4)            // want `process-global math/rand call rand\.Intn`
	v := os.Getenv("HALO_DEBUG") // want `environment read os\.Getenv`
	r := rand.New(rand.NewSource(1))
	return t.Unix() + int64(n) + int64(r.Intn(4)), v
}

func unsortedEscape(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `keys collects values from a map range and is never sorted afterwards`
	}
	return keys
}

func sortedAfter(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func lastWins(m map[int]int) int {
	var last int
	for _, v := range m {
		last = v // want `assignment in map range is overwritten on every iteration`
	}
	return last
}

func accumulate(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `non-integer \+= accumulation in map range is order-dependent`
	}
	return sum
}

func maxValue(m map[int]int) int {
	best := -1
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func earlyReturn(m map[int]int) int {
	for k, v := range m {
		if v > 0 {
			return k // want `return of a value derived from map iteration`
		}
	}
	return -1
}

func perEntryWrites(m map[int]*[4]int, out map[int]int) {
	for k, v := range m {
		v[0]++
		out[k] = v[1]
	}
}

func suppressedLoop(m map[int]int) int {
	var last int
	//halo:nondeterminism-ok fixture: any surviving entry is acceptable here
	for _, v := range m {
		last = v
	}
	return last
}

func bareSuppressedLoop(m map[int]int) int {
	var last int
	//halo:nondeterminism-ok
	for _, v := range m { // want `//halo:nondeterminism-ok directive on map range is missing a reason`
		last = v
	}
	return last
}
