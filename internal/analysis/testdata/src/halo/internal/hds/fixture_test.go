package hds

import "time"

// _test.go files are exempt from the determinism contract: no want here.
func testOnlyClock() int64 {
	return time.Now().Unix()
}
