// Package obs is a fixture double for halo/internal/obs: it declares the
// metric types and mutation methods the obsgate analyzer resolves by
// package path, plus the Enabled gate.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(n uint64) { c.v += n }

type Gauge struct{ v int64 }

func (g *Gauge) Set(n int64) { g.v = n }
func (g *Gauge) Add(n int64) { g.v += n }

type Histogram struct{ count uint64 }

func (h *Histogram) Observe(v float64) {
	_ = v
	h.count++
}

var enabled bool

func Enabled() bool { return enabled }
