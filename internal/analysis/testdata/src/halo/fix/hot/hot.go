// Package hot exercises the hotalloc analyzer: only functions annotated
// //halo:hot are held to the allocation-free contract.
package hot

import (
	"errors"
	"fmt"
)

// Table is persistent state whose scratch buffers the hot path may grow.
type Table struct {
	items []int
	buf   []int
}

var sunk any

func sink(v any) { sunk = v }

//halo:hot
func (t *Table) HotAppendField(n int) {
	t.items = append(t.items, n) // persistent struct scratch field: amortised
}

//halo:hot
func (t *Table) HotReuseBuf(n int) {
	t.buf = append(t.buf[:0], n) // reuses the backing array
}

//halo:hot
func HotLocalAppend(xs []int, n int) []int {
	xs = append(xs, n) // want `append to a local slice in //halo:hot function allocates`
	return xs
}

//halo:hot
func HotLiterals(n int) int {
	m := map[int]int{}  // want `map literal in //halo:hot function allocates`
	s := []int{n}       // want `slice literal in //halo:hot function allocates`
	p := &Table{}       // want `address of composite literal in //halo:hot function escapes`
	q := make([]int, n) // want `make in //halo:hot function allocates`
	r := new(Table)     // want `new in //halo:hot function allocates`
	return len(m) + len(s) + len(p.items) + len(q) + len(r.buf)
}

//halo:hot
func HotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf in //halo:hot function allocates`
}

//halo:hot
func HotErr() error {
	return errors.New("boom") // want `errors\.New in //halo:hot function allocates`
}

//halo:hot
func HotConcat(a, b string) string {
	return a + b // want `string concatenation in //halo:hot function allocates`
}

//halo:hot
func HotPlusEq(parts []string) string {
	var out string
	for _, p := range parts {
		out += p // want `string \+= in //halo:hot function allocates`
	}
	return out
}

//halo:hot
func HotClosure(n int) func() int {
	return func() int { return n } // want `closure in //halo:hot function allocates`
}

//halo:hot
func HotBytes(s string) int {
	b := []byte(s) // want `string/\[\]byte conversion in //halo:hot function copies and allocates`
	return len(b)
}

//halo:hot
func HotBoxArg(n int) {
	sink(n) // want `argument boxes a int into an interface parameter`
}

//halo:hot
func HotBoxAssign(n int) any {
	var v any
	v = n // want `assignment boxes a int into an interface`
	return v
}

//halo:hot
func HotPointerArg(t *Table) {
	sink(t) // pointers are stored directly in interfaces: no boxing
}

// coldPath carries no annotation, so its allocations are fine.
func coldPath(n int) []int {
	return []int{n}
}

//halo:hot
func HotSuppressed(n int) []int {
	xs := []int{n} //halo:hotalloc-ok fixture: setup-time slice, measured off the steady-state path
	return xs
}

//halo:hot
func HotBareSuppression(a, b string) string {
	//halo:hotalloc-ok
	return a + b // want `//halo:hotalloc-ok directive is missing a reason`
}
