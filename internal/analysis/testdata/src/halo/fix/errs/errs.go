// Package errs exercises the errfmt analyzer: received errors must be
// wrapped with %w, and panic is confined to halloc's corruption traps.
package errs

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wrapWithV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `fmt\.Errorf formats a received error without %w`
}

func wrapWithW(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad count %d", n)
}

func multiWrap(a, b error) error {
	return fmt.Errorf("both failed: %w and %w", a, b)
}

func escapedPercent(err error) error {
	return fmt.Errorf("100%% failure: %s", err) // want `fmt\.Errorf formats a received error without %w`
}

func nilErrArg(n int) error {
	return fmt.Errorf("count %d: %v", n, nil)
}

func sentinel() error {
	return fmt.Errorf("base case: %w", errBase)
}

func panics(n int) int {
	if n < 0 {
		panic("negative") // want `panic outside halloc's documented corruption traps`
	}
	return n
}

func suppressedPanic(n int) int {
	if n < 0 {
		panic("negative") //halo:errfmt-ok fixture: invariant documented at the call sites
	}
	return n
}
