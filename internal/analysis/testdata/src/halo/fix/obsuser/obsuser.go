// Package obsuser exercises the obsgate analyzer: metric mutations that
// are statically reachable from //halo:hot functions must be dominated by
// an obs.Enabled() check.
package obsuser

import "halo/internal/obs"

type pipeline struct {
	events  obs.Counter
	depth   obs.Gauge
	latency obs.Histogram
}

//halo:hot
func (p *pipeline) hotDirect() {
	p.events.Inc() // want `obs\.Counter\.Inc\(\) reachable from //halo:hot hotDirect is not gated by obs\.Enabled\(\)`
}

//halo:hot
func (p *pipeline) hotGated() {
	if obs.Enabled() {
		p.events.Inc()
	}
}

//halo:hot
func (p *pipeline) hotEarlyReturn() {
	if !obs.Enabled() {
		return
	}
	p.depth.Set(1)
}

//halo:hot
func (p *pipeline) hotViaHelper() {
	p.helper()
}

// helper is cold in isolation, but hotViaHelper reaches it, so its
// mutations inherit the gating requirement.
func (p *pipeline) helper() {
	p.latency.Observe(1) // want `obs\.Histogram\.Observe\(\) reachable from //halo:hot hotViaHelper is not gated`
}

// coldUngated is unreachable from any hot root: ungated mutation is fine.
func (p *pipeline) coldUngated() {
	p.events.Add(2)
}

//halo:hot
func (p *pipeline) hotSuppressed() {
	p.events.Inc() //halo:obsgate-ok fixture: startup-only counter, measured cold
}
