package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc enforces the allocation-free contract of functions annotated
// //halo:hot (the VM dispatch loop, profiler ingest, sequitur slab ops,
// the affinity edge table and the shadow-span table). Inside a hot
// function it flags every construct that introduces an allocation:
//
//   - append that can grow a local slice (appending into a reused buffer
//     slice expression like b[:0], or into a persistent struct field whose
//     backing array amortises, is allowed)
//   - map/slice literals, &composite literals, make, new
//   - fmt calls, errors.New, string concatenation, string<->[]byte/[]rune
//     conversions
//   - closures (function literals capture and escape)
//   - implicit interface conversions that box a non-pointer value
var Hotalloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid allocation-introducing constructs in //halo:hot functions",
	Suppress: "hotalloc-ok",
	Run:      runHotalloc,
}

func runHotalloc(pass *Pass) error {
	if !ModulePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHot(fd) {
				continue
			}
			h := &hotChecker{pass: pass, sig: pass.funcSignature(fd)}
			h.walk(fd.Body)
		}
	}
	return nil
}

func (p *Pass) funcSignature(fd *ast.FuncDecl) *types.Signature {
	if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	sig  *types.Signature
}

func (h *hotChecker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			h.pass.Reportf(n.Pos(), "closure in //halo:hot function allocates; hoist it or pass a method value on a persistent receiver")
			return false // the closure body has its own allocation budget
		case *ast.CallExpr:
			h.call(n)
		case *ast.CompositeLit:
			h.compositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if t := h.pass.TypeOf(cl); t != nil {
						switch t.Underlying().(type) {
						case *types.Struct, *types.Array:
							h.pass.Reportf(n.Pos(), "address of composite literal in //halo:hot function escapes to the heap; reuse a preallocated value")
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && h.isString(n) {
				h.pass.Reportf(n.Pos(), "string concatenation in //halo:hot function allocates")
			}
		case *ast.AssignStmt:
			h.assign(n)
		case *ast.ValueSpec:
			h.valueSpec(n)
		case *ast.ReturnStmt:
			h.ret(n)
		}
		return true
	})
}

func (h *hotChecker) isString(e ast.Expr) bool {
	t := h.pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (h *hotChecker) call(call *ast.CallExpr) {
	switch {
	case h.pass.Builtin(call, "panic"):
		// A panicking path is terminal, never steady-state; errfmt
		// separately polices where panic may appear at all.
		return
	case h.pass.Builtin(call, "append"):
		if len(call.Args) == 0 {
			return
		}
		switch ast.Unparen(call.Args[0]).(type) {
		case *ast.SliceExpr:
			// append(buf[:0], ...) reuses the backing array
		case *ast.SelectorExpr:
			// append(x.f, ...) grows a persistent scratch field; its
			// capacity amortises across calls
		default:
			h.pass.Reportf(call.Pos(), "append to a local slice in //halo:hot function allocates when it grows; reuse a preallocated buffer (b = append(b[:0], ...)) or a struct scratch field")
		}
		return
	case h.pass.Builtin(call, "make"):
		h.pass.Reportf(call.Pos(), "make in //halo:hot function allocates; preallocate at construction time")
		return
	case h.pass.Builtin(call, "new"):
		h.pass.Reportf(call.Pos(), "new in //halo:hot function allocates; preallocate at construction time")
		return
	}

	// Conversions: string <-> []byte/[]rune copy, and explicit interface
	// conversions box.
	if tv, ok := h.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		h.conversion(call, tv.Type)
		return
	}

	if pkg, name, ok := h.pass.CalleePkgFunc(call); ok {
		switch {
		case pkg == "fmt":
			h.pass.Reportf(call.Pos(), "fmt.%s in //halo:hot function allocates (boxing + formatting)", name)
			return
		case pkg == "errors" && name == "New":
			h.pass.Reportf(call.Pos(), "errors.New in //halo:hot function allocates; use a preallocated sentinel error")
			return
		}
	}

	// Implicit interface conversions at the call boundary.
	h.callBoxing(call)
}

func (h *hotChecker) conversion(call *ast.CallExpr, to types.Type) {
	arg := call.Args[0]
	from := h.pass.TypeOf(arg)
	if from == nil {
		return
	}
	if types.IsInterface(to.Underlying()) {
		if h.boxes(from) {
			h.pass.Reportf(call.Pos(), "conversion to interface in //halo:hot function boxes a %s", from)
		}
		return
	}
	fromStr, toStr := h.isString(arg), isBasicString(to)
	fromBytes, toBytes := isByteOrRuneSlice(from), isByteOrRuneSlice(to)
	if (fromStr && toBytes) || (fromBytes && toStr) {
		h.pass.Reportf(call.Pos(), "string/[]byte conversion in //halo:hot function copies and allocates")
	}
}

func isBasicString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (h *hotChecker) compositeLit(cl *ast.CompositeLit) {
	t := h.pass.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		h.pass.Reportf(cl.Pos(), "map literal in //halo:hot function allocates; preallocate at construction time")
	case *types.Slice:
		h.pass.Reportf(cl.Pos(), "slice literal in //halo:hot function allocates; preallocate at construction time")
	}
}

// boxes reports whether storing a value of concrete type t into an
// interface allocates: pointer-shaped values (pointers, channels, maps,
// funcs, unsafe pointers) are stored directly, everything else is copied
// to the heap.
func (h *hotChecker) boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// callBoxing flags concrete arguments passed to interface parameters.
func (h *hotChecker) callBoxing(call *ast.CallExpr) {
	tv, ok := h.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := h.pass.TypeOf(arg)
		if tvArg, ok := h.pass.TypesInfo.Types[arg]; ok && tvArg.IsNil() {
			continue
		}
		if h.boxes(at) {
			h.pass.Reportf(arg.Pos(), "argument boxes a %s into an interface parameter in //halo:hot function", at)
		}
	}
}

// assign flags concrete-to-interface stores and string += accumulation.
func (h *hotChecker) assign(s *ast.AssignStmt) {
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && h.isString(s.Lhs[0]) {
		h.pass.Reportf(s.Pos(), "string += in //halo:hot function allocates")
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i := range s.Lhs {
		lt := h.pass.TypeOf(s.Lhs[i])
		if lt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		if tv, ok := h.pass.TypesInfo.Types[s.Rhs[i]]; ok && tv.IsNil() {
			continue
		}
		if h.boxes(h.pass.TypeOf(s.Rhs[i])) {
			h.pass.Reportf(s.Rhs[i].Pos(), "assignment boxes a %s into an interface in //halo:hot function", h.pass.TypeOf(s.Rhs[i]))
		}
	}
}

func (h *hotChecker) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		obj := h.pass.TypesInfo.Defs[name]
		if obj == nil || !types.IsInterface(obj.Type().Underlying()) {
			continue
		}
		if tv, ok := h.pass.TypesInfo.Types[vs.Values[i]]; ok && tv.IsNil() {
			continue
		}
		if h.boxes(h.pass.TypeOf(vs.Values[i])) {
			h.pass.Reportf(vs.Values[i].Pos(), "declaration boxes a %s into an interface in //halo:hot function", h.pass.TypeOf(vs.Values[i]))
		}
	}
}

func (h *hotChecker) ret(s *ast.ReturnStmt) {
	if h.sig == nil {
		return
	}
	results := h.sig.Results()
	if len(s.Results) != results.Len() {
		return // naked return or comma-ok splat; nothing to check
	}
	for i, res := range s.Results {
		rt := results.At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		if tv, ok := h.pass.TypesInfo.Types[res]; ok && tv.IsNil() {
			continue
		}
		if h.boxes(h.pass.TypeOf(res)) {
			h.pass.Reportf(res.Pos(), "return boxes a %s into interface result %d in //halo:hot function", h.pass.TypeOf(res), i)
		}
	}
}
