// Package alloc provides the general-purpose memory allocators of the
// evaluation: a size-segregated slab allocator modelled on jemalloc 5.1
// (the paper's baseline and fallback allocator) and an address-ordered
// boundary-tag allocator modelled on ptmalloc2 from glibc 2.27 (which the
// paper reports jemalloc beats by up to 32% on L1D misses).
//
// Both operate on the simulated address space of internal/mem and implement
// the placement policies that drive the paper's cache behaviour:
//
//   - the jemalloc-like allocator co-locates allocations by size class and
//     allocation order, with no per-object headers (Figure 1 of the paper);
//   - the ptmalloc-like allocator lays out objects of all sizes in address
//     order with an inline 16-byte header between payloads, interleaving
//     unrelated data and diluting cache lines.
package alloc

import "fmt"

// Allocator is the interface shared by every allocator in the repo. It
// matches the POSIX.1 routines the paper's instrumentation intercepts.
// Malloc returns 0 only for unsatisfiable requests (which the simulation
// treats as a bug). A size of zero allocates the minimum region.
type Allocator interface {
	Malloc(size uint64) uint64
	Calloc(n, size uint64) uint64
	Realloc(ptr, size uint64) uint64
	Free(ptr uint64)

	// SizeOf reports the usable size of a live region, 0 if unknown.
	SizeOf(ptr uint64) uint64
	// Stats reports allocation statistics.
	Stats() Stats
	// Name identifies the allocator in reports.
	Name() string
}

// Stats summarises allocator behaviour for the evaluation harness.
type Stats struct {
	Allocs      uint64 // cumulative allocation count
	Frees       uint64 // cumulative free count
	LiveBytes   uint64 // currently allocated payload bytes
	LiveObjects uint64
	PeakLive    uint64 // high-water mark of LiveBytes
	Resident    uint64 // bytes of address space held for heap data
}

// Frag reports unused resident memory, the paper's Table 1 metric.
func (s Stats) Frag() (pct float64, bytes uint64) {
	if s.Resident == 0 {
		return 0, 0
	}
	if s.LiveBytes >= s.Resident {
		return 0, 0
	}
	b := s.Resident - s.LiveBytes
	return float64(b) / float64(s.Resident) * 100, b
}

func (s Stats) String() string {
	return fmt.Sprintf("allocs=%d frees=%d live=%dB/%d objects peak=%dB resident=%dB",
		s.Allocs, s.Frees, s.LiveBytes, s.LiveObjects, s.PeakLive, s.Resident)
}

type statsTracker struct {
	stats Stats
}

func (t *statsTracker) onAlloc(size uint64) {
	t.stats.Allocs++
	t.stats.LiveObjects++
	t.stats.LiveBytes += size
	if t.stats.LiveBytes > t.stats.PeakLive {
		t.stats.PeakLive = t.stats.LiveBytes
	}
}

func (t *statsTracker) onFree(size uint64) {
	t.stats.Frees++
	t.stats.LiveObjects--
	t.stats.LiveBytes -= size
}
