package alloc

import (
	"fmt"
	"sort"

	"halo/internal/mem"
)

// SizeClasses are the small allocation size classes, following jemalloc's
// spacing: four classes per power-of-two group. Allocations above the last
// class are "large" and take dedicated page runs.
var SizeClasses = []uint64{
	8, 16, 32, 48, 64, 80, 96, 112, 128,
	160, 192, 224, 256,
	320, 384, 448, 512,
	640, 768, 896, 1024,
	1280, 1536, 1792, 2048,
	2560, 3072, 3584,
}

// MaxSmall is the largest size served from slabs.
const MaxSmall = 3584

// classIndex maps a size to its class, or -1 for large allocations.
func classIndex(size uint64) int {
	if size > MaxSmall {
		return -1
	}
	i := sort.Search(len(SizeClasses), func(i int) bool { return SizeClasses[i] >= size })
	return i
}

// run is a slab of contiguous regions of a single size class, analogous to
// a jemalloc run/slab extent. Regions carry no headers: occupancy lives in
// the bitmap, which is why small objects pack back-to-back.
type run struct {
	base     uint64
	size     uint64
	class    int
	regions  int
	free     int
	bitmap   []uint64 // 1 bits mark allocated regions
	nextScan int      // rotor to avoid rescanning full prefixes
}

func (r *run) allocRegion() int {
	words := len(r.bitmap)
	for w := 0; w < words; w++ {
		wi := (r.nextScan + w) % words
		word := r.bitmap[wi]
		if word == ^uint64(0) {
			continue
		}
		for b := 0; b < 64; b++ {
			idx := wi*64 + b
			if idx >= r.regions {
				break
			}
			if word&(1<<uint(b)) == 0 {
				r.bitmap[wi] |= 1 << uint(b)
				r.free--
				r.nextScan = wi
				return idx
			}
		}
	}
	return -1
}

func (r *run) freeRegion(idx int) {
	w, b := idx/64, uint(idx%64)
	if r.bitmap[w]&(1<<b) == 0 {
		panic(fmt.Sprintf("alloc: double free of region %d in run %#x", idx, r.base)) //halo:errfmt-ok corruption trap: double free must halt before metadata damage spreads
	}
	r.bitmap[w] &^= 1 << b
	r.free++
}

// SizeSeg is the jemalloc-like size-segregated allocator. Small requests
// are rounded to a size class and served from per-class slabs using
// lowest-address-first placement; large requests get dedicated page runs.
type SizeSeg struct {
	os *mem.OS
	statsTracker

	classes []classState      // one per entry of SizeClasses
	pageMap map[uint64]*run   // page id -> owning run, for O(1) free
	large   map[uint64]uint64 // base -> payload size

	arena     mem.Region // current extent being carved into runs
	arenaOff  uint64
	arenaSize uint64
}

type classState struct {
	// partial runs, kept sorted by base address: jemalloc reuses the
	// lowest-addressed non-full run first.
	partial []*run
	// one spare empty run is cached per class; further empties are purged.
	spare *run
}

// ArenaExtent is the granularity at which SizeSeg maps address space.
const ArenaExtent = 256 << 10

// NewSizeSeg returns a jemalloc-like allocator drawing from os.
func NewSizeSeg(os *mem.OS) *SizeSeg {
	return &SizeSeg{
		os:        os,
		classes:   make([]classState, len(SizeClasses)),
		pageMap:   make(map[uint64]*run),
		large:     make(map[uint64]uint64),
		arenaSize: ArenaExtent,
	}
}

// Name implements Allocator.
func (a *SizeSeg) Name() string { return "jemalloc-like" }

// runSize picks the slab size for a class: enough pages for at least 16
// regions, at least one page.
func runSize(class int) uint64 {
	need := 16 * SizeClasses[class]
	pages := (need + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	return pages * mem.PageSize
}

func (a *SizeSeg) newRun(class int) *run {
	size := runSize(class)
	if a.arena.Size == 0 || a.arenaOff+size > a.arena.Size {
		ext := a.arenaSize
		if size > ext {
			ext = size
		}
		a.arena = a.os.Map(ext, mem.PageSize)
		a.arenaOff = 0
		a.stats.Resident += ext
	}
	base := a.arena.Base + a.arenaOff
	a.arenaOff += size
	cls := SizeClasses[class]
	regions := int(size / cls)
	r := &run{
		base:    base,
		size:    size,
		class:   class,
		regions: regions,
		free:    regions,
		bitmap:  make([]uint64, (regions+63)/64),
	}
	for pg := base >> mem.PageShift; pg < (base+size)>>mem.PageShift; pg++ {
		a.pageMap[pg] = r
	}
	return r
}

func (a *SizeSeg) insertPartial(class int, r *run) {
	cs := &a.classes[class]
	i := sort.Search(len(cs.partial), func(i int) bool { return cs.partial[i].base >= r.base })
	cs.partial = append(cs.partial, nil)
	copy(cs.partial[i+1:], cs.partial[i:])
	cs.partial[i] = r
}

func (a *SizeSeg) removePartial(class int, r *run) {
	cs := &a.classes[class]
	for i, x := range cs.partial {
		if x == r {
			cs.partial = append(cs.partial[:i], cs.partial[i+1:]...)
			return
		}
	}
}

// Malloc implements Allocator.
func (a *SizeSeg) Malloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	class := classIndex(size)
	if class < 0 {
		return a.mallocLarge(size)
	}
	cs := &a.classes[class]
	var r *run
	if len(cs.partial) > 0 {
		r = cs.partial[0]
	} else if cs.spare != nil {
		r = cs.spare
		cs.spare = nil
		a.insertPartial(class, r)
	} else {
		r = a.newRun(class)
		a.insertPartial(class, r)
	}
	idx := r.allocRegion()
	if idx < 0 {
		panic("alloc: partial run with no free region") //halo:errfmt-ok corruption trap: partial-run bitmap disagrees with the run lists
	}
	if r.free == 0 {
		a.removePartial(class, r)
	}
	a.onAlloc(SizeClasses[class])
	return r.base + uint64(idx)*SizeClasses[class]
}

func (a *SizeSeg) mallocLarge(size uint64) uint64 {
	rounded := (size + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
	reg := a.os.Map(rounded, mem.PageSize)
	a.large[reg.Base] = size
	a.stats.Resident += reg.Size
	a.onAlloc(size)
	return reg.Base
}

// Free implements Allocator.
func (a *SizeSeg) Free(ptr uint64) {
	if ptr == 0 {
		return
	}
	if size, ok := a.large[ptr]; ok {
		delete(a.large, ptr)
		rounded := (size + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
		if err := a.os.Unmap(mem.Region{Base: ptr, Size: rounded}); err != nil {
			panic(err) //halo:errfmt-ok corruption trap: unmap failure mid-free leaves the page map inconsistent
		}
		a.stats.Resident -= rounded
		a.onFree(size)
		return
	}
	r := a.pageMap[ptr>>mem.PageShift]
	if r == nil {
		panic(fmt.Sprintf("alloc: free of unknown pointer %#x", ptr)) //halo:errfmt-ok corruption trap: free of unknown pointer is caller heap misuse
	}
	cls := SizeClasses[r.class]
	off := ptr - r.base
	if off%cls != 0 {
		panic(fmt.Sprintf("alloc: free of interior pointer %#x (run %#x, class %d)", ptr, r.base, cls)) //halo:errfmt-ok corruption trap: interior-pointer free is caller heap misuse
	}
	wasFull := r.free == 0
	r.freeRegion(int(off / cls))
	a.onFree(cls)
	if wasFull {
		a.insertPartial(r.class, r)
	}
	if r.free == r.regions {
		// Run is empty: cache one spare per class, purge further empties.
		a.removePartial(r.class, r)
		cs := &a.classes[r.class]
		if cs.spare == nil {
			cs.spare = r
			return
		}
		for pg := r.base >> mem.PageShift; pg < (r.base+r.size)>>mem.PageShift; pg++ {
			delete(a.pageMap, pg)
		}
		a.os.Purge(r.base, r.size)
		a.stats.Resident -= r.size
	}
}

// SizeOf implements Allocator.
func (a *SizeSeg) SizeOf(ptr uint64) uint64 {
	if size, ok := a.large[ptr]; ok {
		return size
	}
	if r := a.pageMap[ptr>>mem.PageShift]; r != nil {
		return SizeClasses[r.class]
	}
	return 0
}

// Calloc implements Allocator. Zeroing is performed by the VM, which owns
// the memory image.
func (a *SizeSeg) Calloc(n, size uint64) uint64 { return a.Malloc(n * size) }

// Realloc implements Allocator.
func (a *SizeSeg) Realloc(ptr, size uint64) uint64 {
	if ptr == 0 {
		return a.Malloc(size)
	}
	old := a.SizeOf(ptr)
	if old == 0 {
		panic(fmt.Sprintf("alloc: realloc of unknown pointer %#x", ptr)) //halo:errfmt-ok corruption trap: realloc of unknown pointer is caller heap misuse
	}
	if size <= old && classIndex(size) == classIndex(old) {
		return ptr // same underlying region suffices
	}
	np := a.Malloc(size)
	n := old
	if size < n {
		n = size
	}
	a.os.Memory().Copy(np, ptr, n)
	a.Free(ptr)
	return np
}

// Stats implements Allocator.
func (a *SizeSeg) Stats() Stats { return a.stats }
