package alloc

import (
	"fmt"
	"sort"

	"halo/internal/mem"
)

// BoundaryTag is the ptmalloc2-like allocator: every chunk carries an
// inline 16-byte header, free chunks coalesce with their address
// neighbours, and requests are served smallest-fit from size-binned free
// lists with address-order preference, falling back to a bump "top" chunk.
//
// Its distinguishing behaviour for the paper's purposes is layout: payloads
// of all sizes interleave in address order with metadata gaps between them,
// so unrelated objects share cache lines far more often than under the
// size-segregated allocator. The paper reports jemalloc reducing L1D misses
// by up to 32% over ptmalloc2; the baseline experiment reproduces the shape
// of that comparison with these two implementations.
type BoundaryTag struct {
	os *mem.OS
	statsTracker

	chunks map[uint64]*btChunk // chunk base -> chunk (both free and in use)
	bins   [nBins][]uint64     // free chunk bases per bin, address-sorted

	top     uint64 // bump frontier within the current segment
	topEnd  uint64
	segSize uint64
}

type btChunk struct {
	base uint64 // header address; payload at base+headerSize
	size uint64 // total chunk size including header
	free bool
	prev uint64 // base of the address-predecessor chunk, 0 at segment start
	next uint64 // base of the address-successor chunk, 0 at segment end
	req  uint64 // requested payload size while in use
}

const (
	headerSize = 16
	btAlign    = 16
	nBins      = 64
	segDefault = 1 << 20
)

// NewBoundaryTag returns a ptmalloc2-like allocator drawing from os.
func NewBoundaryTag(os *mem.OS) *BoundaryTag {
	return &BoundaryTag{
		os:      os,
		chunks:  make(map[uint64]*btChunk),
		segSize: segDefault,
	}
}

// Name implements Allocator.
func (a *BoundaryTag) Name() string { return "ptmalloc-like" }

// binFor maps a chunk size to a bin: exact 16-byte spacing for small
// chunks, logarithmic beyond.
func binFor(size uint64) int {
	if size < 16 {
		size = 16
	}
	if b := size / 16; b < 48 {
		return int(b) // bins 1..47: sizes 16..752
	}
	// Logarithmic bins from 48 upward.
	b := 48
	for s := uint64(768); s < size && b < nBins-1; s *= 2 {
		b++
	}
	return b
}

func chunkSizeFor(payload uint64) uint64 {
	if payload == 0 {
		payload = 1
	}
	size := headerSize + payload
	return (size + btAlign - 1) &^ uint64(btAlign-1)
}

func (a *BoundaryTag) binInsert(c *btChunk) {
	b := binFor(c.size)
	lst := a.bins[b]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= c.base })
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = c.base
	a.bins[b] = lst
}

func (a *BoundaryTag) binRemove(c *btChunk) {
	b := binFor(c.size)
	lst := a.bins[b]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= c.base })
	if i < len(lst) && lst[i] == c.base {
		a.bins[b] = append(lst[:i], lst[i+1:]...)
		return
	}
	panic(fmt.Sprintf("alloc: chunk %#x missing from bin %d", c.base, b)) //halo:errfmt-ok corruption trap: free-list invariant broken means the heap metadata is already damaged
}

// findFit searches the bins for the first address-ordered chunk that fits,
// starting at the smallest adequate bin.
func (a *BoundaryTag) findFit(size uint64) *btChunk {
	for b := binFor(size); b < nBins; b++ {
		for _, base := range a.bins[b] {
			c := a.chunks[base]
			if c.size >= size {
				return c
			}
		}
	}
	return nil
}

// split carves size bytes from the front of free chunk c, returning the
// in-use chunk. The remainder, if large enough, becomes a new free chunk.
func (a *BoundaryTag) split(c *btChunk, size uint64) *btChunk {
	a.binRemove(c)
	rem := c.size - size
	if rem >= headerSize+btAlign {
		tail := &btChunk{
			base: c.base + size,
			size: rem,
			free: true,
			prev: c.base,
			next: c.next,
		}
		if c.next != 0 {
			a.chunks[c.next].prev = tail.base
		}
		c.next = tail.base
		c.size = size
		a.chunks[tail.base] = tail
		a.binInsert(tail)
	}
	c.free = false
	return c
}

// Malloc implements Allocator.
func (a *BoundaryTag) Malloc(size uint64) uint64 {
	want := chunkSizeFor(size)
	c := a.findFit(want)
	if c == nil {
		c = a.extend(want)
	}
	c = a.split(c, want)
	c.req = size
	a.onAlloc(size)
	return c.base + headerSize
}

// extend maps a new segment and returns its single free chunk.
func (a *BoundaryTag) extend(want uint64) *btChunk {
	segSize := a.segSize
	if want > segSize {
		segSize = (want + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
	}
	reg := a.os.Map(segSize, btAlign)
	a.stats.Resident += reg.Size
	c := &btChunk{base: reg.Base, size: reg.Size, free: true}
	a.chunks[c.base] = c
	a.binInsert(c)
	return c
}

// Free implements Allocator.
func (a *BoundaryTag) Free(ptr uint64) {
	if ptr == 0 {
		return
	}
	base := ptr - headerSize
	c := a.chunks[base]
	if c == nil || c.free {
		panic(fmt.Sprintf("alloc: bad free of %#x", ptr)) //halo:errfmt-ok corruption trap: bad free must halt before metadata damage spreads
	}
	a.onFree(c.req)
	c.free = true
	c.req = 0
	// Coalesce with the address successor.
	if n := a.chunks[c.next]; n != nil && n.free {
		a.binRemove(n)
		c.size += n.size
		c.next = n.next
		if n.next != 0 {
			a.chunks[n.next].prev = c.base
		}
		delete(a.chunks, n.base)
	}
	// Coalesce with the address predecessor.
	if p := a.chunks[c.prev]; p != nil && p.free {
		a.binRemove(p)
		p.size += c.size
		p.next = c.next
		if c.next != 0 {
			a.chunks[c.next].prev = p.base
		}
		delete(a.chunks, c.base)
		c = p
	}
	a.binInsert(c)
}

// SizeOf implements Allocator.
func (a *BoundaryTag) SizeOf(ptr uint64) uint64 {
	c := a.chunks[ptr-headerSize]
	if c == nil || c.free {
		return 0
	}
	return c.size - headerSize
}

// Calloc implements Allocator.
func (a *BoundaryTag) Calloc(n, size uint64) uint64 { return a.Malloc(n * size) }

// Realloc implements Allocator.
func (a *BoundaryTag) Realloc(ptr, size uint64) uint64 {
	if ptr == 0 {
		return a.Malloc(size)
	}
	c := a.chunks[ptr-headerSize]
	if c == nil || c.free {
		panic(fmt.Sprintf("alloc: realloc of unknown pointer %#x", ptr)) //halo:errfmt-ok corruption trap: realloc of unknown pointer is caller heap misuse
	}
	if chunkSizeFor(size) <= c.size {
		a.stats.LiveBytes += size - c.req
		c.req = size
		return ptr
	}
	np := a.Malloc(size)
	n := c.req
	if size < n {
		n = size
	}
	a.os.Memory().Copy(np, ptr, n)
	a.Free(ptr)
	return np
}

// Stats implements Allocator.
func (a *BoundaryTag) Stats() Stats { return a.stats }
