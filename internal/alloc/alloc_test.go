package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"halo/internal/mem"
)

func newSS() *SizeSeg     { return NewSizeSeg(mem.NewOS(mem.NewMemory())) }
func newBT() *BoundaryTag { return NewBoundaryTag(mem.NewOS(mem.NewMemory())) }

func allocators() map[string]func() Allocator {
	return map[string]func() Allocator{
		"sizeseg":     func() Allocator { return newSS() },
		"boundarytag": func() Allocator { return newBT() },
	}
}

func TestClassIndexBoundaries(t *testing.T) {
	for i, cls := range SizeClasses {
		if got := classIndex(cls); got != i {
			t.Fatalf("classIndex(%d) = %d, want %d", cls, got, i)
		}
		if got := classIndex(cls - 1); got != i {
			// size just under a class maps to that class unless it fits
			// the previous class exactly.
			if i > 0 && cls-1 <= SizeClasses[i-1] {
				continue
			}
			t.Fatalf("classIndex(%d) = %d, want %d", cls-1, got, i)
		}
	}
	if classIndex(MaxSmall+1) != -1 {
		t.Fatal("oversize not classified as large")
	}
}

func TestMallocAlignmentAndDisjointness(t *testing.T) {
	for name, mk := range allocators() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			rng := rand.New(rand.NewSource(1))
			type region struct{ base, size uint64 }
			var live []region
			for i := 0; i < 4000; i++ {
				size := uint64(rng.Intn(700) + 1)
				p := a.Malloc(size)
				if p == 0 {
					t.Fatalf("malloc(%d) = 0", size)
				}
				if p%8 != 0 {
					t.Fatalf("misaligned pointer %#x", p)
				}
				for _, r := range live {
					if p < r.base+r.size && r.base < p+size {
						t.Fatalf("overlap [%#x,%#x) with [%#x,%#x)", p, p+size, r.base, r.base+r.size)
					}
				}
				live = append(live, region{p, size})
				if rng.Intn(3) == 0 && len(live) > 0 {
					idx := rng.Intn(len(live))
					a.Free(live[idx].base)
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		})
	}
}

func TestFreeAllReturnsToZeroLive(t *testing.T) {
	for name, mk := range allocators() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			var ptrs []uint64
			for i := 0; i < 500; i++ {
				ptrs = append(ptrs, a.Malloc(uint64(8+i%256)))
			}
			for _, p := range ptrs {
				a.Free(p)
			}
			s := a.Stats()
			if s.LiveObjects != 0 || s.LiveBytes != 0 {
				t.Fatalf("leak: %s", s)
			}
			if s.Allocs != 500 || s.Frees != 500 {
				t.Fatalf("counters: %s", s)
			}
		})
	}
}

func TestSlotReuseAfterFree(t *testing.T) {
	// The size-segregated allocator must reuse freed regions (the
	// behaviour that keeps churn cache-warm, unlike bump allocation).
	a := newSS()
	p1 := a.Malloc(64)
	a.Free(p1)
	p2 := a.Malloc(64)
	if p1 != p2 {
		t.Fatalf("freed slot not reused: %#x then %#x", p1, p2)
	}
}

func TestBoundaryTagCoalescing(t *testing.T) {
	a := newBT()
	// Three adjacent chunks; freeing all three coalesces into one free
	// chunk, so a request of the combined size fits without new mapping.
	p1 := a.Malloc(100)
	p2 := a.Malloc(100)
	p3 := a.Malloc(100)
	mappedBefore := a.os.MappedBytes()
	a.Free(p1)
	a.Free(p2)
	a.Free(p3)
	big := a.Malloc(300)
	if a.os.MappedBytes() != mappedBefore {
		t.Fatal("coalescing failed: new mapping required")
	}
	a.Free(big)
}

func TestBoundaryTagAddressOrderReuse(t *testing.T) {
	a := newBT()
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	a.Free(p1)
	a.Free(p2)
	p3 := a.Malloc(64)
	if p3 != p1 {
		t.Fatalf("first fit not address-ordered: got %#x, want %#x", p3, p1)
	}
}

func TestSizeOf(t *testing.T) {
	for name, mk := range allocators() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			p := a.Malloc(100)
			if s := a.SizeOf(p); s < 100 {
				t.Fatalf("SizeOf = %d, want >= 100", s)
			}
			big := a.Malloc(100 << 10)
			if s := a.SizeOf(big); s < 100<<10 {
				t.Fatalf("SizeOf(large) = %d", s)
			}
		})
	}
}

func TestReallocGrowPreservesData(t *testing.T) {
	for name := range allocators() {
		t.Run(name, func(t *testing.T) {
			osm := mem.NewOS(mem.NewMemory())
			var a Allocator
			if name == "sizeseg" {
				a = NewSizeSeg(osm)
			} else {
				a = NewBoundaryTag(osm)
			}
			p := a.Malloc(16)
			osm.Memory().WriteWord(p, 0xABCD)
			osm.Memory().WriteWord(p+8, 0x1234)
			q := a.Realloc(p, 4096)
			if osm.Memory().ReadWord(q) != 0xABCD || osm.Memory().ReadWord(q+8) != 0x1234 {
				t.Fatal("realloc lost data")
			}
		})
	}
}

func TestReallocShrinkInPlace(t *testing.T) {
	a := newSS()
	p := a.Malloc(100) // class 112
	q := a.Realloc(p, 100)
	if q != p {
		t.Fatalf("same-size realloc moved: %#x -> %#x", p, q)
	}
}

func TestLargeAllocationLifecycle(t *testing.T) {
	a := newSS()
	p := a.Malloc(1 << 20)
	if p == 0 {
		t.Fatal("large malloc failed")
	}
	res := a.Stats().Resident
	a.Free(p)
	if a.Stats().Resident >= res {
		t.Fatal("large free did not release residency")
	}
}

func TestRunBitmapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := &run{regions: 64, free: 64, bitmap: make([]uint64, 1)}
		allocated := map[int]bool{}
		for _, op := range ops {
			if op%2 == 0 || len(allocated) == 0 {
				if r.free == 0 {
					continue
				}
				idx := r.allocRegion()
				if idx < 0 || allocated[idx] {
					return false
				}
				allocated[idx] = true
			} else {
				for idx := range allocated {
					r.freeRegion(idx)
					delete(allocated, idx)
					break
				}
			}
			if r.free != r.regions-len(allocated) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFrag(t *testing.T) {
	s := Stats{LiveBytes: 25, Resident: 100}
	pct, b := s.Frag()
	if pct != 75 || b != 75 {
		t.Fatalf("frag = %v%%, %d", pct, b)
	}
	zero := Stats{}
	if p, b := zero.Frag(); p != 0 || b != 0 {
		t.Fatal("zero stats frag not zero")
	}
}

func TestPeakLiveTracking(t *testing.T) {
	a := newSS()
	p1 := a.Malloc(1000)
	p2 := a.Malloc(1000)
	a.Free(p1)
	a.Free(p2)
	if peak := a.Stats().PeakLive; peak < 2000 {
		t.Fatalf("peak live = %d, want >= 2000", peak)
	}
}
