// Package vm interprets isa programs. It is the execution substrate that
// replaces both the real CPU and Intel Pin in the paper's pipeline: every
// call, return, load, store and memory-management request is appended to a
// batched event stream (see event.go) that consumers such as the profiler
// (internal/profile) and the cache simulator (internal/cache) drain one
// batch — not one virtual call — at a time. Per-event observers remain
// supported through the Hooks interface via the Replay shim. The
// group-state bit vector written by rewritten binaries lives here for the
// specialised allocator to read.
package vm

import (
	"errors"
	"fmt"
	"io"

	"halo/internal/bits"
	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/obs"
)

// Allocator satisfies the program's memory-management externals. It is the
// runtime-side malloc implementation: internal/alloc provides the
// general-purpose ones and internal/halloc the specialised group allocator.
type Allocator interface {
	Malloc(size uint64) uint64
	Calloc(n, size uint64) uint64
	Realloc(ptr, size uint64) uint64
	Free(ptr uint64)
}

// AllocKind distinguishes the memory-management externals in AllocEvent.
type AllocKind uint8

// Allocation event kinds.
const (
	KindMalloc AllocKind = iota
	KindCalloc
	KindRealloc
	KindFree
)

// String names the kind.
func (k AllocKind) String() string {
	switch k {
	case KindMalloc:
		return "malloc"
	case KindCalloc:
		return "calloc"
	case KindRealloc:
		return "realloc"
	case KindFree:
		return "free"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllocEvent describes one intercepted memory-management call.
type AllocEvent struct {
	Kind AllocKind
	Ptr  uint64   // resulting pointer (0 for free)
	Old  uint64   // prior pointer for realloc/free
	Size uint64   // requested size (n*size for calloc)
	Site isa.Addr // the raw, immediate call site of the external call
}

// SiteAware is implemented by allocators that want to know the immediate
// call site of each memory-management request — the analogue of reading the
// return address off the stack, which is how the paper's specialised
// allocator and the hot-data-streams replication identify allocations.
type SiteAware interface {
	SetAllocSite(site isa.Addr)
}

// Hooks observes execution one event at a time. It is the compatibility
// interface for exotic observers: wrap implementations with NewReplay to
// attach them to the batched engine. Hot-path consumers should implement
// EventSink directly instead.
type Hooks interface {
	// OnCall fires after control transfers into an internal function.
	// site is the call instruction's address, callee the target index.
	OnCall(site isa.Addr, callee int, fn *isa.Func)
	// OnReturn fires when an internal function returns to its caller.
	OnReturn(callee int, fn *isa.Func)
	// OnAccess fires for every program load and store.
	OnAccess(addr uint64, size uint8, write bool)
	// OnAlloc fires after each intercepted memory-management call.
	OnAlloc(ev AllocEvent)
}

// DispatchMode selects the execution engine.
type DispatchMode uint8

// Execution engines.
const (
	// DispatchThreaded is the default: the program is predecoded once
	// (predecode.go) and executed by the func-table threaded dispatcher with
	// superinstruction fusion (dispatch.go).
	DispatchThreaded DispatchMode = iota
	// DispatchSwitch is the reference switch interpreter, retained verbatim
	// as the differential-testing oracle for the threaded engine.
	DispatchSwitch
)

// Config parameterises a run.
type Config struct {
	// Seed drives the deterministic rand external. Zero means 1.
	Seed uint64
	// MaxSteps bounds retired instructions; 0 means DefaultMaxSteps.
	MaxSteps uint64
	// MaxDepth bounds the call stack; 0 means DefaultMaxDepth.
	MaxDepth int
	// Out receives print output; nil discards it.
	Out io.Writer
	// GroupBits sizes the group-state vector; 0 allocates DefaultGroupBits
	// so unrewritten binaries still run gset/gclr-free.
	GroupBits int
	// GroupState, when non-nil, is used as the group-state vector instead
	// of allocating one. The harness shares it between the VM and the
	// specialised allocator's selector classifier, mirroring the real
	// allocator locating the state vector in process memory (§4.4).
	GroupState *bits.Vec
	// BatchSize caps buffered events before a flush to the sink; 0 means
	// DefaultBatchSize. The observed event sequence is identical at any
	// batch size (1 degenerates to per-event delivery).
	BatchSize int
	// Dispatch selects the execution engine; the zero value is the
	// predecoded threaded dispatcher. Both engines produce bit-identical
	// results, step counts and event streams.
	Dispatch DispatchMode
}

// Defaults for Config.
const (
	DefaultMaxSteps  = 2_000_000_000
	DefaultMaxDepth  = 4096
	DefaultGroupBits = 64
)

// VM executes one program.
type VM struct {
	prog      *isa.Program
	mem       *mem.Memory
	alloc     Allocator
	siteAware SiteAware
	sink      EventSink
	events    []Event
	group     *bits.Vec

	cfg Config
	rng uint64

	regs   []int64 // register stack; frames are windows into it
	frames []frame

	steps   uint64
	loads   uint64
	stores  uint64
	fused   uint64 // superinstruction components fused away (pairs count 1, triples 2)
	inlined uint64 // lib calls executed through a predecode-inlined body
	halted  bool

	// Direct-mapped software TLB for the threaded dispatcher: tlbSize
	// recently touched pages indexed by the low page-number bits, fronted
	// by a one-entry MRU filter (tlbID/tlbPage) so the common same-page-
	// again access costs a single compare, exactly like the previous
	// one-entry design — the array only makes the filter's misses cheaper.
	// Both levels only ever hold materialised (non-nil) pages — a read of
	// an untouched page returns zeros without installing anything — so a
	// tag match is sufficient permission for both loads and stores.
	// Flushed whenever an extern runs: allocators can unmap, purge or
	// recreate pages.
	tlbID     uint64 // MRU filter tag: page number + 1 (0 = empty)
	tlbPage   *[mem.PageSize]byte
	tlb       [tlbSize]tlbEntry
	tlbGen    uint64 // current flush generation; stale entries fail the gen check
	tlbMiss   uint64 // lookups that missed both levels (PageFor taken)
	tlbBypass uint64 // accesses that skipped the TLB (page straddle)
}

type frame struct {
	fn    int
	pc    int
	base  int   // register window start in regs
	dst   uint8 // caller register receiving the return value
	ret   int   // caller pc to resume at
	site  isa.Addr
	entry bool // bottom frame has no caller
}

// New prepares a VM. The program must be linked and valid; memory and
// allocator are required, the sink optional (nil disables observation).
// Per-event Hooks observers attach via NewReplay.
func New(p *isa.Program, memory *mem.Memory, alloc Allocator, sink EventSink, cfg Config) *VM {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	if cfg.GroupBits == 0 {
		cfg.GroupBits = DefaultGroupBits
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	group := cfg.GroupState
	if group == nil {
		group = bits.New(cfg.GroupBits)
	}
	v := &VM{
		prog:  p,
		mem:   memory,
		alloc: alloc,
		sink:  sink,
		group: group,
		cfg:   cfg,
		rng:   cfg.Seed,
	}
	if sink != nil {
		v.events = make([]Event, 0, cfg.BatchSize)
	}
	if sa, ok := alloc.(SiteAware); ok {
		v.siteAware = sa
	}
	return v
}

// GroupState exposes the group-state bit vector, which the specialised
// allocator reads ("its first task is to locate the address of the group
// state vector", §4.4).
func (v *VM) GroupState() *bits.Vec { return v.group }

// Steps reports retired instructions.
func (v *VM) Steps() uint64 { return v.steps }

// Loads and Stores report executed memory operations.
func (v *VM) Loads() uint64 { return v.loads }

// Stores reports executed store instructions.
func (v *VM) Stores() uint64 { return v.stores }

// Fused reports instruction slots folded into retired superinstructions by
// the threaded dispatcher (one per pair, two per triple); always zero under
// DispatchSwitch.
func (v *VM) Fused() uint64 { return v.fused }

// Inlined reports lib calls executed through a body inlined at predecode
// time; always zero under DispatchSwitch.
func (v *VM) Inlined() uint64 { return v.inlined }

// TLBMisses reports software-TLB misses in the threaded dispatcher: loads
// or stores that had to resolve their page through the memory page map.
func (v *VM) TLBMisses() uint64 { return v.tlbMiss }

// TLBBypasses reports accesses that skipped the TLB entirely
// (page-straddling accesses served by the byte path). TLB hits are derived:
// Loads()+Stores()−TLBMisses()−TLBBypasses().
func (v *VM) TLBBypasses() uint64 { return v.tlbBypass }

// ErrMaxSteps is returned when the step budget is exhausted.
var ErrMaxSteps = errors.New("vm: step budget exhausted")

func (v *VM) trap(f frame, format string, args ...any) error {
	fn := v.prog.Funcs[f.fn]
	return fmt.Errorf("vm: trap in %s @%d: %s", fn.Name, f.pc, fmt.Sprintf(format, args...))
}

func (v *VM) rand() uint64 {
	// xorshift64*: deterministic, cheap, good enough for workload shaping.
	x := v.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	v.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Run executes the program's entry function to completion and returns its
// result value. Buffered events are flushed on every exit path, so the
// sink sees the complete stream even when the run traps.
func (v *VM) Run() (int64, error) {
	if obs.Enabled() {
		mRuns.Inc()
	}
	defer v.flushEvents()
	entry := v.prog.Funcs[v.prog.Entry]
	v.regs = make([]int64, 0, 4096)
	v.regs = append(v.regs, make([]int64, entry.NRegs)...)
	v.frames = v.frames[:0]
	v.frames = append(v.frames, frame{fn: v.prog.Entry, base: 0, entry: true})
	v.halted = false
	v.tlbFlush()

	if v.cfg.Dispatch == DispatchSwitch {
		return v.runSwitch()
	}
	startFused, startInlined := v.fused, v.inlined
	startAcc := v.loads + v.stores
	startMiss, startBypass := v.tlbMiss, v.tlbBypass
	res, err := v.runThreaded(Predecode(v.prog))
	if obs.Enabled() {
		if d := v.fused - startFused; d > 0 {
			mFusedInsts.Add(d)
		}
		if d := v.inlined - startInlined; d > 0 {
			mInlinedCalls.Add(d)
		}
		miss := v.tlbMiss - startMiss
		if miss > 0 {
			mTLBMisses.Add(miss)
		}
		if hits := (v.loads + v.stores - startAcc) - miss - (v.tlbBypass - startBypass); hits > 0 {
			mTLBHits.Add(hits)
		}
	}
	return res, err
}

// runSwitch is the reference interpreter: one switch over isa opcodes,
// kept byte-for-byte equivalent in observable behaviour to the threaded
// engine and exercised against it by the differential tests.
func (v *VM) runSwitch() (int64, error) {
	for {
		if len(v.frames) == 0 {
			return 0, errors.New("vm: frame stack underflow")
		}
		f := &v.frames[len(v.frames)-1]
		fn := v.prog.Funcs[f.fn]
		code := fn.Code
		regs := v.regs[f.base : f.base+fn.NRegs]

	inner:
		for {
			if f.pc >= len(code) {
				return 0, v.trap(*f, "fell off function end")
			}
			if v.steps >= v.cfg.MaxSteps {
				return 0, ErrMaxSteps
			}
			in := code[f.pc]
			v.steps++
			switch in.Op {
			case isa.OpNop:
				f.pc++
			case isa.OpConst:
				regs[in.A] = in.Imm
				f.pc++
			case isa.OpMov:
				regs[in.A] = regs[in.B]
				f.pc++
			case isa.OpAdd:
				regs[in.A] = regs[in.B] + regs[in.C]
				f.pc++
			case isa.OpSub:
				regs[in.A] = regs[in.B] - regs[in.C]
				f.pc++
			case isa.OpMul:
				regs[in.A] = regs[in.B] * regs[in.C]
				f.pc++
			case isa.OpDiv:
				if regs[in.C] == 0 {
					return 0, v.trap(*f, "division by zero")
				}
				regs[in.A] = regs[in.B] / regs[in.C]
				f.pc++
			case isa.OpMod:
				if regs[in.C] == 0 {
					return 0, v.trap(*f, "mod by zero")
				}
				regs[in.A] = regs[in.B] % regs[in.C]
				f.pc++
			case isa.OpAnd:
				regs[in.A] = regs[in.B] & regs[in.C]
				f.pc++
			case isa.OpOr:
				regs[in.A] = regs[in.B] | regs[in.C]
				f.pc++
			case isa.OpXor:
				regs[in.A] = regs[in.B] ^ regs[in.C]
				f.pc++
			case isa.OpShl:
				regs[in.A] = regs[in.B] << (uint64(regs[in.C]) & 63)
				f.pc++
			case isa.OpShr:
				regs[in.A] = int64(uint64(regs[in.B]) >> (uint64(regs[in.C]) & 63))
				f.pc++
			case isa.OpAddImm:
				regs[in.A] = regs[in.B] + in.Imm
				f.pc++
			case isa.OpEq:
				regs[in.A] = b2i(regs[in.B] == regs[in.C])
				f.pc++
			case isa.OpNe:
				regs[in.A] = b2i(regs[in.B] != regs[in.C])
				f.pc++
			case isa.OpLt:
				regs[in.A] = b2i(regs[in.B] < regs[in.C])
				f.pc++
			case isa.OpLe:
				regs[in.A] = b2i(regs[in.B] <= regs[in.C])
				f.pc++
			case isa.OpJmp:
				f.pc = int(in.Imm)
			case isa.OpBz:
				if regs[in.A] == 0 {
					f.pc = int(in.Imm)
				} else {
					f.pc++
				}
			case isa.OpBnz:
				if regs[in.A] != 0 {
					f.pc = int(in.Imm)
				} else {
					f.pc++
				}
			case isa.OpLoad:
				addr := uint64(regs[in.B] + in.Imm)
				if v.sink != nil {
					// Inlined emit: this is the hottest observation site.
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.Size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				v.loads++
				regs[in.A] = int64(v.mem.Read(addr, in.Size))
				f.pc++
			case isa.OpStore:
				addr := uint64(regs[in.B] + in.Imm)
				if v.sink != nil {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.Size, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				v.stores++
				v.mem.Write(addr, in.Size, uint64(regs[in.A]))
				f.pc++
			case isa.OpGroupSet:
				v.group.Set(int(in.Imm))
				f.pc++
			case isa.OpGroupClr:
				v.group.Clear(int(in.Imm))
				f.pc++
			case isa.OpHalt:
				return 0, nil
			case isa.OpRet:
				val := regs[in.A]
				if f.entry {
					return val, nil
				}
				if v.sink != nil {
					v.emit(Event{Kind: EvReturn, Fn: int32(f.fn)})
				}
				dst, ret, base := f.dst, f.ret, f.base
				v.frames = v.frames[:len(v.frames)-1]
				v.regs = v.regs[:base]
				pf := &v.frames[len(v.frames)-1]
				v.regs[pf.base+int(dst)] = val
				pf.pc = ret
				break inner
			case isa.OpCall, isa.OpCallInd:
				var target isa.FnRef
				if in.Op == isa.OpCall {
					target = in.Fn
				} else {
					t := regs[in.D]
					if t < 0 || t >= int64(len(v.prog.Funcs)) {
						return 0, v.trap(*f, "indirect call to bad function index %d", t)
					}
					target = isa.FnRef(t)
				}
				if target.IsExtern() {
					res, err := v.callExtern(f, in.Addr, in.B, in.C, regs, target.ExternOf())
					if err != nil {
						return 0, err
					}
					if v.halted {
						return res, nil
					}
					regs[in.A] = res
					f.pc++
					continue
				}
				if len(v.frames) >= v.cfg.MaxDepth {
					return 0, v.trap(*f, "call stack overflow (%d frames)", len(v.frames))
				}
				callee := v.prog.Funcs[target]
				if int(in.C) != callee.NParams {
					return 0, v.trap(*f, "call to %s with %d args, want %d", callee.Name, in.C, callee.NParams)
				}
				newBase := len(v.regs)
				v.regs = append(v.regs, make([]int64, callee.NRegs)...)
				for i := 0; i < int(in.C); i++ {
					v.regs[newBase+i] = regs[int(in.B)+i]
				}
				v.frames = append(v.frames, frame{
					fn:   int(target),
					base: newBase,
					dst:  in.A,
					ret:  f.pc + 1,
					site: in.Addr,
				})
				if v.sink != nil {
					v.emit(Event{Kind: EvCall, Site: in.Addr, Fn: int32(target)})
				}
				break inner
			default:
				return 0, v.trap(*f, "illegal opcode %s", in.Op)
			}
		}
	}
}

// callExtern services an external call. Both engines route here: the
// switch interpreter passes the operands straight off the isa.Inst, the
// threaded dispatcher off the decoded record.
func (v *VM) callExtern(f *frame, site isa.Addr, argBase, argc uint8, regs []int64, ext isa.Extern) (int64, error) {
	arg := func(i int) int64 {
		if i < int(argc) {
			return regs[int(argBase)+i]
		}
		return 0
	}
	switch ext {
	case isa.ExtMalloc, isa.ExtCalloc, isa.ExtRealloc, isa.ExtFree:
		if v.siteAware != nil {
			v.siteAware.SetAllocSite(site)
		}
	}
	switch ext {
	case isa.ExtMalloc:
		size := uint64(arg(0))
		ptr := v.alloc.Malloc(size)
		if v.sink != nil {
			v.emit(Event{Kind: EvAlloc, AKind: KindMalloc, Addr: ptr, Bytes: size, Site: site})
		}
		return int64(ptr), nil
	case isa.ExtCalloc:
		n, size := uint64(arg(0)), uint64(arg(1))
		var ptr uint64
		if size != 0 && n > ^uint64(0)/size {
			// POSIX calloc: a product that overflows must fail, not
			// allocate the wrapped size and zero past the block.
			ptr = 0
		} else {
			ptr = v.alloc.Calloc(n, size)
			if ptr != 0 {
				v.mem.Zero(ptr, n*size)
			}
		}
		if v.sink != nil {
			v.emit(Event{Kind: EvAlloc, AKind: KindCalloc, Addr: ptr, Bytes: n * size, Site: site})
		}
		return int64(ptr), nil
	case isa.ExtRealloc:
		old, size := uint64(arg(0)), uint64(arg(1))
		ptr := v.alloc.Realloc(old, size)
		if v.sink != nil {
			v.emit(Event{Kind: EvAlloc, AKind: KindRealloc, Addr: ptr, Old: old, Bytes: size, Site: site})
		}
		return int64(ptr), nil
	case isa.ExtFree:
		ptr := uint64(arg(0))
		if ptr != 0 {
			v.alloc.Free(ptr)
		}
		if v.sink != nil {
			v.emit(Event{Kind: EvAlloc, AKind: KindFree, Old: ptr, Site: site})
		}
		return 0, nil
	case isa.ExtRand:
		bound := arg(0)
		r := v.rand()
		if bound > 0 {
			return int64(r % uint64(bound)), nil
		}
		return int64(r), nil
	case isa.ExtPrint:
		if v.cfg.Out != nil {
			fmt.Fprintln(v.cfg.Out, arg(0))
		}
		return arg(0), nil
	case isa.ExtExit:
		v.halted = true
		return arg(0), nil
	}
	return 0, v.trap(*f, "unknown external %d", ext)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// MultiHooks fans events out to several observers in order. Every method
// fast-paths the single-observer case so compatibility-shim users with one
// hook pay one direct call, not a slice iteration, per event. Prefer
// CombineHooks, which unwraps that case entirely.
type MultiHooks []Hooks

// OnCall implements Hooks.
func (m MultiHooks) OnCall(site isa.Addr, callee int, fn *isa.Func) {
	if len(m) == 1 {
		m[0].OnCall(site, callee, fn)
		return
	}
	for _, h := range m {
		h.OnCall(site, callee, fn)
	}
}

// OnReturn implements Hooks.
func (m MultiHooks) OnReturn(callee int, fn *isa.Func) {
	if len(m) == 1 {
		m[0].OnReturn(callee, fn)
		return
	}
	for _, h := range m {
		h.OnReturn(callee, fn)
	}
}

// OnAccess implements Hooks.
func (m MultiHooks) OnAccess(addr uint64, size uint8, write bool) {
	if len(m) == 1 {
		m[0].OnAccess(addr, size, write)
		return
	}
	for _, h := range m {
		h.OnAccess(addr, size, write)
	}
}

// OnAlloc implements Hooks.
func (m MultiHooks) OnAlloc(ev AllocEvent) {
	if len(m) == 1 {
		m[0].OnAlloc(ev)
		return
	}
	for _, h := range m {
		h.OnAlloc(ev)
	}
}

// CombineHooks merges per-event observers, dropping nils and returning the
// sole observer unwrapped so the single-observer case costs no fan-out at
// all. Returns nil when every argument is nil.
func CombineHooks(hooks ...Hooks) Hooks {
	out := make(MultiHooks, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			out = append(out, h)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// NopHooks is an embeddable no-op Hooks implementation.
type NopHooks struct{}

// OnCall implements Hooks.
func (NopHooks) OnCall(isa.Addr, int, *isa.Func) {}

// OnReturn implements Hooks.
func (NopHooks) OnReturn(int, *isa.Func) {}

// OnAccess implements Hooks.
func (NopHooks) OnAccess(uint64, uint8, bool) {}

// OnAlloc implements Hooks.
func (NopHooks) OnAlloc(AllocEvent) {}
