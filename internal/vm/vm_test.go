package vm

import (
	"bytes"
	"testing"

	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/prog"
)

// bumpAlloc is a trivial allocator for VM tests.
type bumpAlloc struct {
	next  uint64
	sizes map[uint64]uint64
	m     *mem.Memory
	frees int
}

func newBump(m *mem.Memory) *bumpAlloc {
	return &bumpAlloc{next: mem.HeapBase, sizes: map[uint64]uint64{}, m: m}
}

func (b *bumpAlloc) Malloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	p := b.next
	b.next += (size + 7) &^ 7
	b.sizes[p] = size
	return p
}
func (b *bumpAlloc) Calloc(n, size uint64) uint64 { return b.Malloc(n * size) }
func (b *bumpAlloc) Realloc(p, size uint64) uint64 {
	np := b.Malloc(size)
	old := b.sizes[p]
	if old > size {
		old = size
	}
	b.m.Copy(np, p, old)
	return np
}
func (b *bumpAlloc) Free(p uint64) { b.frees++ }

func run(t *testing.T, build func(b *prog.Builder), cfg Config) (int64, *VM) {
	t.Helper()
	b := prog.NewBuilder("test")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	v := New(p, m, newBump(m), nil, cfg)
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, v
}

func TestArithmetic(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		a := f.ConstReg(21)
		two := f.ConstReg(2)
		r := f.Reg()
		f.Mul(r, a, two)
		f.Ret(r)
	}, Config{})
	if res != 42 {
		t.Fatalf("got %d", res)
	}
}

func TestCallsAndReturns(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		sq := b.Func("square", 1)
		r := sq.Reg()
		sq.Mul(r, sq.Param(0), sq.Param(0))
		sq.Ret(r)

		f := b.Func("main", 0)
		x := f.ConstReg(7)
		y := f.Call("square", x)
		f.Ret(y)
	}, Config{})
	if res != 49 {
		t.Fatalf("got %d", res)
	}
}

func TestRecursion(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		fib := b.Func("fib", 1)
		n := fib.Param(0)
		two := fib.ConstReg(2)
		cond := fib.Reg()
		fib.Lt(cond, n, two)
		rec := fib.NewLabel()
		fib.Bz(cond, rec)
		fib.Ret(n)
		fib.Bind(rec)
		a := fib.Reg()
		fib.AddImm(a, n, -1)
		r1 := fib.Call("fib", a)
		bb := fib.Reg()
		fib.AddImm(bb, n, -2)
		r2 := fib.Call("fib", bb)
		sum := fib.Reg()
		fib.Add(sum, r1, r2)
		fib.Ret(sum)

		f := b.Func("main", 0)
		x := f.ConstReg(10)
		f.Ret(f.Call("fib", x))
	}, Config{})
	if res != 55 {
		t.Fatalf("fib(10) = %d, want 55", res)
	}
}

func TestIndirectCall(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		inc := b.Func("inc", 1)
		r := inc.Reg()
		inc.AddImm(r, inc.Param(0), 1)
		inc.Ret(r)
		dbl := b.Func("dbl", 1)
		r2 := dbl.Reg()
		dbl.Add(r2, dbl.Param(0), dbl.Param(0))
		dbl.Ret(r2)

		f := b.Func("main", 0)
		fn := f.Reg()
		f.ConstFunc(fn, "dbl")
		x := f.ConstReg(21)
		f.Ret(f.CallInd(fn, x))
	}, Config{})
	if res != 42 {
		t.Fatalf("got %d", res)
	}
}

func TestLoadStoreAndGlobals(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		b.Globals(2)
		f := b.Func("main", 0)
		x := f.ConstReg(123)
		f.StoreGlobal(1, x)
		y := f.Reg()
		f.LoadGlobal(y, 1)
		f.Ret(y)
	}, Config{})
	if res != 123 {
		t.Fatalf("got %d", res)
	}
}

func TestMallocFreeEvents(t *testing.T) {
	var events []AllocEvent
	h := &recordHooks{onAlloc: func(ev AllocEvent) { events = append(events, ev) }}
	b := prog.NewBuilder("test")
	f := b.Func("main", 0)
	size := f.ConstReg(24)
	p := f.Malloc(size)
	v := f.ConstReg(7)
	f.StoreWord(p, 0, v)
	got := f.Reg()
	f.LoadWord(got, p, 0)
	f.Free(p)
	f.Ret(got)
	pr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	machine := New(pr, m, newBump(m), NewReplay(pr, h), Config{})
	res, err := machine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res != 7 {
		t.Fatalf("heap round trip = %d", res)
	}
	if len(events) != 2 || events[0].Kind != KindMalloc || events[1].Kind != KindFree {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Size != 24 || events[0].Ptr == 0 {
		t.Fatalf("malloc event = %+v", events[0])
	}
	if events[0].Site == isa.NoAddr {
		t.Fatal("malloc site missing")
	}
}

type recordHooks struct {
	NopHooks
	onAlloc  func(AllocEvent)
	onAccess func(addr uint64, size uint8, write bool)
	onCall   func(site isa.Addr, callee int, fn *isa.Func)
	onRet    func(callee int, fn *isa.Func)
}

func (r *recordHooks) OnAlloc(ev AllocEvent) {
	if r.onAlloc != nil {
		r.onAlloc(ev)
	}
}
func (r *recordHooks) OnAccess(addr uint64, size uint8, write bool) {
	if r.onAccess != nil {
		r.onAccess(addr, size, write)
	}
}
func (r *recordHooks) OnCall(site isa.Addr, callee int, fn *isa.Func) {
	if r.onCall != nil {
		r.onCall(site, callee, fn)
	}
}
func (r *recordHooks) OnReturn(callee int, fn *isa.Func) {
	if r.onRet != nil {
		r.onRet(callee, fn)
	}
}

func TestCallHooksBalance(t *testing.T) {
	depth, maxDepth, calls := 0, 0, 0
	h := &recordHooks{
		onCall: func(isa.Addr, int, *isa.Func) {
			depth++
			calls++
			if depth > maxDepth {
				maxDepth = depth
			}
		},
		onRet: func(int, *isa.Func) { depth-- },
	}
	b := prog.NewBuilder("test")
	leaf := b.Func("leaf", 0)
	leaf.RetConst(1)
	mid := b.Func("mid", 0)
	mid.Ret(mid.Call("leaf"))
	f := b.Func("main", 0)
	f.LoopN(3, func(prog.Reg) { f.Call("mid") })
	f.RetConst(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	if _, err := New(p, m, newBump(m), NewReplay(p, h), Config{}).Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 0 {
		t.Fatalf("unbalanced hooks: depth %d", depth)
	}
	if calls != 6 || maxDepth != 2 {
		t.Fatalf("calls=%d maxDepth=%d", calls, maxDepth)
	}
}

func TestGroupStateOps(t *testing.T) {
	b := prog.NewBuilder("test")
	f := b.Func("main", 0)
	f.RetConst(0)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-insert group ops (normally the rewriter's job).
	p.Funcs[0].Code = append([]isa.Inst{
		{Op: isa.OpGroupSet, Imm: 3},
		{Op: isa.OpGroupSet, Imm: 5},
		{Op: isa.OpGroupClr, Imm: 3},
	}, p.Funcs[0].Code...)
	p.Link()
	m := mem.NewMemory()
	v := New(p, m, newBump(m), nil, Config{})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.GroupState().Test(3) || !v.GroupState().Test(5) {
		t.Fatalf("group state = %s", v.GroupState())
	}
}

func TestRandDeterminism(t *testing.T) {
	build := func(b *prog.Builder) {
		f := b.Func("main", 0)
		sum := f.ConstReg(0)
		f.LoopN(10, func(prog.Reg) {
			r := f.RandConst(100)
			f.Add(sum, sum, r)
		})
		f.Ret(sum)
	}
	r1, _ := run(t, build, Config{Seed: 42})
	r2, _ := run(t, build, Config{Seed: 42})
	r3, _ := run(t, build, Config{Seed: 43})
	if r1 != r2 {
		t.Fatalf("same seed diverged: %d != %d", r1, r2)
	}
	if r1 == r3 {
		t.Fatalf("different seeds agreed: %d", r1)
	}
}

func TestPrintAndExit(t *testing.T) {
	var out bytes.Buffer
	b := prog.NewBuilder("test")
	f := b.Func("main", 0)
	x := f.ConstReg(99)
	f.Print(x)
	code := f.ConstReg(3)
	f.CallExt(isa.ExtExit, code)
	f.RetConst(0) // unreachable
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	v := New(p, m, newBump(m), nil, Config{Out: &out})
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res != 3 {
		t.Fatalf("exit code = %d", res)
	}
	if out.String() != "99\n" {
		t.Fatalf("print output = %q", out.String())
	}
}

func TestTraps(t *testing.T) {
	t.Run("div by zero", func(t *testing.T) {
		b := prog.NewBuilder("test")
		f := b.Func("main", 0)
		x := f.ConstReg(1)
		z := f.ConstReg(0)
		r := f.Reg()
		f.Div(r, x, z)
		f.Ret(r)
		p, _ := b.Build()
		m := mem.NewMemory()
		if _, err := New(p, m, newBump(m), nil, Config{}).Run(); err == nil {
			t.Fatal("no trap")
		}
	})
	t.Run("step budget", func(t *testing.T) {
		b := prog.NewBuilder("test")
		f := b.Func("main", 0)
		l := f.NewLabel()
		f.Bind(l)
		f.Jmp(l)
		p, _ := b.Build()
		m := mem.NewMemory()
		_, err := New(p, m, newBump(m), nil, Config{MaxSteps: 1000}).Run()
		if err != ErrMaxSteps {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("stack overflow", func(t *testing.T) {
		b := prog.NewBuilder("test")
		f := b.Func("main", 0)
		f.Ret(f.Call("main"))
		p, _ := b.Build()
		m := mem.NewMemory()
		if _, err := New(p, m, newBump(m), nil, Config{MaxDepth: 64}).Run(); err == nil {
			t.Fatal("no overflow trap")
		}
	})
	t.Run("bad indirect target", func(t *testing.T) {
		b := prog.NewBuilder("test")
		f := b.Func("main", 0)
		bad := f.ConstReg(99)
		f.Ret(f.CallInd(bad))
		p, _ := b.Build()
		m := mem.NewMemory()
		if _, err := New(p, m, newBump(m), nil, Config{}).Run(); err == nil {
			t.Fatal("no trap")
		}
	})
}

func TestAccessHookSeesSizes(t *testing.T) {
	type acc struct {
		size  uint8
		write bool
	}
	var got []acc
	h := &recordHooks{onAccess: func(addr uint64, size uint8, write bool) {
		got = append(got, acc{size, write})
	}}
	b := prog.NewBuilder("test")
	f := b.Func("main", 0)
	size := f.ConstReg(64)
	p := f.Malloc(size)
	v := f.ConstReg(1)
	f.Store(p, 0, v, 4)
	r := f.Reg()
	f.Load(r, p, 0, 2)
	f.Ret(r)
	pr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	if _, err := New(pr, m, newBump(m), NewReplay(pr, h), Config{}).Run(); err != nil {
		t.Fatal(err)
	}
	want := []acc{{4, true}, {2, false}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("accesses = %+v", got)
	}
}

func TestStepAndOpCounts(t *testing.T) {
	_, v := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		size := f.ConstReg(8)
		p := f.Malloc(size)
		x := f.ConstReg(5)
		f.StoreWord(p, 0, x)
		y := f.Reg()
		f.LoadWord(y, p, 0)
		f.Ret(y)
	}, Config{})
	if v.Loads() != 1 || v.Stores() != 1 {
		t.Fatalf("loads=%d stores=%d", v.Loads(), v.Stores())
	}
	if v.Steps() == 0 {
		t.Fatal("no steps counted")
	}
}

func TestCallocZeroesReusedMemory(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		size := f.ConstReg(16)
		p1 := f.Malloc(size)
		x := f.ConstReg(0xFF)
		f.StoreWord(p1, 0, x)
		f.Free(p1)
		n := f.ConstReg(2)
		sz := f.ConstReg(8)
		p2 := f.Calloc(n, sz)
		r := f.Reg()
		f.LoadWord(r, p2, 0)
		f.Ret(r)
	}, Config{})
	// The bump allocator never reuses, but calloc must still yield zeros.
	if res != 0 {
		t.Fatalf("calloc memory = %d, want 0", res)
	}
}

func TestReallocPreservesData(t *testing.T) {
	res, _ := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		size := f.ConstReg(8)
		p := f.Malloc(size)
		x := f.ConstReg(1234)
		f.StoreWord(p, 0, x)
		big := f.ConstReg(64)
		q := f.Realloc(p, big)
		r := f.Reg()
		f.LoadWord(r, q, 0)
		f.Ret(r)
	}, Config{})
	if res != 1234 {
		t.Fatalf("realloc lost data: %d", res)
	}
}

func TestCallocOverflowReturnsNull(t *testing.T) {
	// POSIX calloc: when n*size overflows, the call must fail with NULL.
	// Before the VM checked the product, the wrapped (tiny) size reached
	// the allocator, which happily returned a live pointer to a block far
	// smaller than the program asked for.
	for _, mode := range []DispatchMode{DispatchThreaded, DispatchSwitch} {
		res, _ := run(t, func(b *prog.Builder) {
			f := b.Func("main", 0)
			n := f.ConstReg(1 << 33)
			sz := f.ConstReg(1 << 33) // n*size = 2^66, wraps to 0
			f.Ret(f.Calloc(n, sz))
		}, Config{Dispatch: mode})
		if res != 0 {
			t.Errorf("dispatch=%d: calloc(2^33, 2^33) = %#x, want NULL", mode, res)
		}
	}
	// A wrap that lands on a non-zero product must fail too.
	for _, mode := range []DispatchMode{DispatchThreaded, DispatchSwitch} {
		res, _ := run(t, func(b *prog.Builder) {
			f := b.Func("main", 0)
			n := f.ConstReg(3)
			sz := f.Reg()
			f.Const(sz, -9) // 2^64-9; 3*(2^64-9) wraps to 2^64-27
			f.Ret(f.Calloc(n, sz))
		}, Config{Dispatch: mode})
		if res != 0 {
			t.Errorf("dispatch=%d: overflowing calloc = %#x, want NULL", mode, res)
		}
	}
}

func TestTLBLoadThenStoreFreshPage(t *testing.T) {
	// Regression: a load from an untouched (never-written) page must not
	// poison the TLB for the store that follows. The old one-entry cache
	// kept a nil page pointer with a matching tag after such a load, and
	// storeFast had to re-check for nil on every store to survive; the
	// direct-mapped TLB never installs unmaterialised pages, so a tag
	// match is proof of a writable page. The load must read 0, the store
	// must materialise the page, and the re-load must see the stored value.
	res, v := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		p := f.Malloc(f.ConstReg(64))
		first := f.Reg()
		f.LoadWord(first, p, 0) // fresh page: reads 0, must not cache nil
		f.StoreWord(p, 0, f.ConstReg(77))
		got := f.Reg()
		f.LoadWord(got, p, 0)
		r := f.Reg()
		f.Add(r, got, first)
		f.Ret(r)
	}, Config{})
	if res != 77 {
		t.Fatalf("load-store-load on fresh page = %d, want 77", res)
	}
	if v.TLBMisses() == 0 {
		t.Fatalf("no TLB misses recorded")
	}
}

func TestTLBIndexCollision(t *testing.T) {
	// Two pages tlbSize pages apart map to the same direct-mapped slot.
	// Alternating stores and loads across them must stay correct while the
	// entries evict each other.
	const stride = tlbSize * mem.PageSize
	res, v := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		p := f.Malloc(f.ConstReg(stride + 64))
		q := f.Reg()
		f.AddImm(q, p, stride) // same slot as p, different tag
		f.StoreWord(p, 0, f.ConstReg(40))
		f.StoreWord(q, 0, f.ConstReg(2))
		a := f.Reg()
		f.LoadWord(a, p, 0)
		c := f.Reg()
		f.LoadWord(c, q, 0)
		r := f.Reg()
		f.Add(r, a, c)
		f.Ret(r)
	}, Config{})
	if res != 42 {
		t.Fatalf("colliding-slot sum = %d, want 42", res)
	}
	if v.TLBMisses() < 2 {
		t.Fatalf("TLB misses = %d, want >= 2 (conflicting tags must evict)", v.TLBMisses())
	}
}

func TestTLBHitAccounting(t *testing.T) {
	// hits = loads + stores - misses - bypasses must come out positive and
	// consistent on a loop that re-touches one page.
	_, v := run(t, func(b *prog.Builder) {
		f := b.Func("main", 0)
		p := f.Malloc(f.ConstReg(256))
		f.LoopN(100, func(i prog.Reg) {
			f.StoreWord(p, 0, i)
			r := f.Reg()
			f.LoadWord(r, p, 0)
		})
		f.RetConst(0)
	}, Config{})
	acc := v.Loads() + v.Stores()
	if acc == 0 {
		t.Fatal("no accesses")
	}
	hits := acc - v.TLBMisses() - v.TLBBypasses()
	if hits < acc*9/10 {
		t.Fatalf("hits %d of %d accesses; one-page loop should hit nearly always", hits, acc)
	}
}
