package vm

import (
	"fmt"
	"strings"

	"halo/internal/isa"
)

// fusedName names a superinstruction for disassembly.
func fusedName(op dop) string {
	switch op {
	case dConstAdd:
		return "const.add"
	case dCmpBr:
		return "cmp.br"
	case dAddImmLoad:
		return "addi.load"
	case dLoadAdd:
		return "load.add"
	case dConstStore:
		return "const.store"
	case dLoadStore:
		return "load.store"
	case dConstAddLoad:
		return "const.add.load"
	case dLoadCmpBr:
		return "load.cmp.br"
	case dAddiLoadAdd:
		return "addi.load.add"
	}
	return fmt.Sprintf("fused(%d)", op)
}

// DisasmFused renders the program's predecoded stream: the isa.Program
// disassembly (isa.Program.Disasm) with fused superinstructions shown as
// single records spanning every component pc, and calls to
// predecode-inlined callees marked with the callee they replay. It drives
// the halo CLI's `disasm -fused`, making the fusion and inlining
// decisions inspectable.
func DisasmFused(p *isa.Program) string {
	dp := Predecode(p)
	var b strings.Builder
	fmt.Fprintf(&b, "; program %q  entry=%s  globals=%d  fused=%d/%d  triples=%d  inlined=%d\n",
		p.Name, p.Funcs[p.Entry].Name, p.Globals, dp.fused, dp.insts, dp.triples, dp.inlined)
	for fi, f := range p.Funcs {
		fc := &dp.funcs[fi]
		lib := ""
		if f.Lib {
			lib = " [lib]"
		}
		if dp.inlineBodies[fi] != nil {
			lib += " [inline]"
		}
		fmt.Fprintf(&b, "\nfunc %s(%d)%s  ; #%d, %d regs, %d fused, %d triples, %d inlined\n",
			f.Name, f.NParams, lib, fi, f.NRegs, fc.fused, fc.triples, fc.inlined)
		for pc := 0; pc < len(f.Code); pc++ {
			in := &fc.code[pc]
			switch {
			case in.op.isTriple():
				fmt.Fprintf(&b, "  %4d: fuse[%s] {%s ; %s ; %s}\n", pc, fusedName(in.op),
					p.DisasmInst(f.Code[pc]), p.DisasmInst(f.Code[pc+1]), p.DisasmInst(f.Code[pc+2]))
				pc += 2 // trailing components are covered by the fused record
			case in.op.isFused():
				fmt.Fprintf(&b, "  %4d: fuse[%s] {%s ; %s}\n", pc, fusedName(in.op),
					p.DisasmInst(f.Code[pc]), p.DisasmInst(f.Code[pc+1]))
				pc++ // the second component is covered by the fused record
			case in.op == dCallInline:
				fmt.Fprintf(&b, "  %4d: %s  ; inlined -> %s\n", pc,
					p.DisasmInst(f.Code[pc]), p.Funcs[in.fn].Name)
			default:
				fmt.Fprintf(&b, "  %4d: %s\n", pc, p.DisasmInst(f.Code[pc]))
			}
		}
	}
	return b.String()
}
