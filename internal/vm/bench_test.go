package vm

import (
	"testing"

	"halo/internal/mem"
	"halo/internal/workloads"
)

// benchSink counts events without retaining them — the cheapest consumer
// that still forces the emit/flush path to run.
type benchSink struct{ n int }

func (s *benchSink) ConsumeEvents(batch []Event) { s.n += len(batch) }

// BenchmarkVMDispatch compares the reference switch interpreter against the
// predecoded threaded dispatcher on the golden workloads. ReportMetric
// publishes steps/s and events/s so the CI regression guard (cmd/vmbench)
// and EXPERIMENTS.md can track dispatch throughput directly.
func BenchmarkVMDispatch(b *testing.B) {
	for _, name := range []string{"povray", "omnetpp"} {
		w := workloads.MustGet(name)
		p := w.Build(w.TestScale)
		Predecode(p) // decode outside the timed region, as real runs do
		for _, eng := range []struct {
			name string
			mode DispatchMode
		}{
			{"switch", DispatchSwitch},
			{"threaded", DispatchThreaded},
		} {
			b.Run(name+"/"+eng.name, func(b *testing.B) {
				var steps, events uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m := mem.NewMemory()
					sink := &benchSink{}
					v := New(p, m, newBump(m), sink, Config{Seed: 1000, Dispatch: eng.mode})
					if _, err := v.Run(); err != nil {
						b.Fatal(err)
					}
					steps += v.Steps()
					events += uint64(sink.n)
				}
				sec := b.Elapsed().Seconds()
				if sec > 0 {
					b.ReportMetric(float64(steps)/sec, "steps/s")
					b.ReportMetric(float64(events)/sec, "events/s")
				}
			})
		}
	}
}
