// Per-function predecoder: lowers isa.Inst once into a dense, decoded form
// the threaded dispatch loop (dispatch.go) executes directly. Decoding
// happens exactly once per program — the result is cached on the
// *isa.Program itself, so fan-out trials over internal/pool and repeated
// halod training runs share one decode.
//
// The decoded stream is also where superinstruction fusion happens: the
// SEQUITUR machinery from internal/sequitur runs over each function's
// static opcode stream, and adjacent pairs the grammar proves repeated (hot
// digrams) are fused into single decoded records when the pair has a
// specialised handler. A fused record executes both component semantics —
// same register writes, same events, same step accounting — so the observed
// event stream stays bit-identical to the unfused interpreter's; see
// dispatch.go for the mid-pair step-budget contract.
package vm

import (
	"halo/internal/isa"
	"halo/internal/obs"
	"halo/internal/sequitur"
)

// dop is a decoded opcode: the isa opcodes plus the fused
// superinstructions, indexing the threaded dispatcher's handler table.
type dop uint8

// Decoded opcodes. The base ops mirror isa's; the tail entries are the
// fused superinstructions.
const (
	dIllegal dop = iota // undefined isa opcode; traps when reached
	dNop
	dConst
	dMov
	dAdd
	dSub
	dMul
	dDiv
	dMod
	dAnd
	dOr
	dXor
	dShl
	dShr
	dAddImm
	dEq
	dNe
	dLt
	dLe
	dJmp
	dBz
	dBnz
	dCall    // direct internal call; fn holds the callee index
	dCallExt // external call, pre-classified; fn holds the isa.Extern
	dCallInd
	dRet
	dLoad
	dStore
	dGroupSet
	dGroupClr
	dHalt
	dCallInline // direct lib call with the callee body inlined at predecode

	// Superinstructions: one decoded record executing two retired
	// instructions. The second component's original decoded form stays at
	// pc+1 (branch targets may enter there, and the step budget can expire
	// mid-pair).
	dConstAdd   // const a, imm ; add a2, b2, c2
	dCmpBr      // cmp[ck>>1] a, b, c ; bz/bnz[ck&1] a2 -> imm2
	dAddImmLoad // addi a, b, imm ; load(size2) a2, [b2 + imm2]
	dLoadAdd    // load(size) a, [b + imm] ; add a2, b2, c2
	dConstStore // const a, imm ; store(size2) [b2 + imm2], a2
	dLoadStore  // load(size) a, [b + imm] ; store(size2) [b2 + imm2], a2

	// Triple superinstructions: one decoded record executing three retired
	// instructions. Components two and three keep their original decoded
	// forms at pc+1 and pc+2 (branch-ins and budget expiry land there); the
	// third component's operands are read live from code[pc+2] at execution
	// time, which is what keeps dinst at 40 bytes. The fuser never starts
	// another fusion at pc+1 or pc+2, so the live read always sees the
	// original single-instruction record.
	dConstAddLoad // const a, imm ; add a2, b2, c2 ; load @pc+2
	dLoadCmpBr    // load(size) a, [b + imm] ; cmp[ck] a2, b2, c2 ; bz/bnz @pc+2
	dAddiLoadAdd  // addi a, b, imm ; load(size2) a2, [b2 + imm2] ; add @pc+2

	dopCount
)

// dinst is one decoded instruction: operands pulled out of the packed
// isa.Inst encoding into directly indexable fields, call targets and
// externs pre-classified, plus the second component's operands for fused
// records. 40 bytes, accessed by pointer in the dispatch loop (the seed
// interpreter copied the 32-byte isa.Inst per step).
type dinst struct {
	op         dop
	size       uint8 // load/store access width
	a, b, c, d uint8
	a2, b2, c2 uint8 // fused second-component registers
	ck         uint8 // dCmpBr: compare kind<<1 | bnz bit
	size2      uint8 // fused second-component access width
	imm        int64
	imm2       int64    // fused second-component immediate / branch target
	fn         int32    // dCall callee index; dCallExt extern id
	addr       isa.Addr // call-site address (EvCall, alloc sites)
}

// dCmpBr compare kinds (ck >> 1).
const (
	ckEq = iota
	ckNe
	ckLt
	ckLe
)

// dfunc is one function's decoded body plus the frame geometry the call
// path needs, kept dense beside the code for locality.
type dfunc struct {
	code    []dinst
	nregs   int
	nparams int
	fused   int // fused pair sites in this function
	triples int // fused triple sites in this function
	inlined int // call sites inlined in this function
}

// Decoded is a program lowered for the threaded dispatcher. Instances are
// immutable after construction and shared freely between VMs.
type Decoded struct {
	funcs   []dfunc
	fused   int // fused pair sites program-wide
	triples int // fused triple sites program-wide
	inlined int // inlined call sites program-wide
	insts   int // decoded slots program-wide
	// inlineBodies[fn] is the unfused straight-line decoded body (ret
	// included) of an inline-eligible lib function, nil otherwise. Call
	// sites lowered to dCallInline replay it without a dispatch frame.
	inlineBodies [][]dinst
}

// FusedSites reports how many instruction pairs were fused program-wide.
func (d *Decoded) FusedSites() int { return d.fused }

// TripleSites reports how many instruction triples were fused program-wide.
func (d *Decoded) TripleSites() int { return d.triples }

// InlinedSites reports how many call sites were inlined program-wide.
func (d *Decoded) InlinedSites() int { return d.inlined }

// Insts reports the total decoded instruction count.
func (d *Decoded) Insts() int { return d.insts }

// fuseMinCount is the hot-digram threshold: a static opcode pair must recur
// at least this often (SEQUITUR rule weight) before its occurrences fuse.
const fuseMinCount = 2

// tripleMinCount is the hot-trigram threshold: a static opcode triple must
// recur at least this often (SEQUITUR rule weight over length-3 windows)
// before its occurrences fuse. Triples are tried before pairs — greedy
// longest match.
const tripleMinCount = 2

// Predecode returns the program's decoded form, lowering it on first use
// and caching the result on the program. Safe for concurrent use: racing
// decoders produce identical values and the last atomic store wins.
// Callers that fan a program out over a worker pool (internal/measure)
// pre-warm the cache once to avoid redundant racing decodes.
func Predecode(p *isa.Program) *Decoded {
	if c := p.DecodeCache(); c != nil {
		if d, ok := c.(*Decoded); ok {
			if obs.Enabled() {
				mPredecodeHits.Inc()
			}
			return d
		}
	}
	if obs.Enabled() {
		mPredecodeMisses.Inc()
	}
	d := decodeProgram(p)
	p.SetDecodeCache(d)
	return d
}

// opMap lowers defined isa opcodes to their decoded counterparts.
var opMap = [...]dop{
	isa.OpNop: dNop, isa.OpConst: dConst, isa.OpMov: dMov,
	isa.OpAdd: dAdd, isa.OpSub: dSub, isa.OpMul: dMul, isa.OpDiv: dDiv,
	isa.OpMod: dMod, isa.OpAnd: dAnd, isa.OpOr: dOr, isa.OpXor: dXor,
	isa.OpShl: dShl, isa.OpShr: dShr, isa.OpAddImm: dAddImm,
	isa.OpEq: dEq, isa.OpNe: dNe, isa.OpLt: dLt, isa.OpLe: dLe,
	isa.OpJmp: dJmp, isa.OpBz: dBz, isa.OpBnz: dBnz,
	isa.OpCall: dCall, isa.OpCallInd: dCallInd, isa.OpRet: dRet,
	isa.OpLoad: dLoad, isa.OpStore: dStore,
	isa.OpGroupSet: dGroupSet, isa.OpGroupClr: dGroupClr,
	isa.OpHalt: dHalt,
}

// decodeInst lowers one instruction (no fusion yet).
func decodeInst(in isa.Inst) dinst {
	d := dinst{
		size: in.Size, a: in.A, b: in.B, c: in.C, d: in.D,
		imm: in.Imm, addr: in.Addr,
	}
	if !in.Op.Valid() {
		// Preserve the reference interpreter's lazy trap: the illegal
		// opcode only faults if execution reaches it.
		d.op = dIllegal
		d.imm = int64(in.Op)
		return d
	}
	d.op = opMap[in.Op]
	if in.Op == isa.OpCall {
		if in.Fn.IsExtern() {
			d.op = dCallExt
			d.fn = int32(in.Fn.ExternOf())
		} else {
			d.fn = int32(in.Fn)
		}
	}
	return d
}

// decodeProgram lowers every function, inlines tiny leaf lib callees, then
// fuses hot trigrams and digrams (longest match first). Fully
// deterministic: the same program always decodes to the same Decoded.
func decodeProgram(p *isa.Program) *Decoded {
	d := &Decoded{funcs: make([]dfunc, len(p.Funcs))}
	counter := sequitur.NewDigramCounter()
	tri := sequitur.NewTriCounter()
	stream := make([]int64, 0, 256)
	for fi, f := range p.Funcs {
		code := make([]dinst, len(f.Code))
		stream = stream[:0]
		for pc, in := range f.Code {
			code[pc] = decodeInst(in)
			stream = append(stream, int64(in.Op))
		}
		// One grammar per function: digrams never straddle functions.
		counter.Observe(stream)
		tri.Observe(stream)
		d.funcs[fi] = dfunc{code: code, nregs: f.NRegs, nparams: f.NParams}
		d.insts += len(code)
	}
	// Inlining runs before fusion: the snapshot of each eligible callee's
	// body must be the plain unfused decode, and rewriting dCall records to
	// dCallInline must not disturb fusion windows (calls never fuse).
	d.inlineBodies = make([][]dinst, len(p.Funcs))
	for fi, f := range p.Funcs {
		if body, ok := inlineBody(d.funcs[fi].code, f); ok {
			d.inlineBodies[fi] = body
		}
	}
	for fi := range p.Funcs {
		n := inlineCalls(d.funcs[fi].code, d.inlineBodies, d.funcs)
		d.funcs[fi].inlined = n
		d.inlined += n
	}
	hot := make(map[[2]int64]bool)
	for _, dg := range counter.Hot(fuseMinCount) {
		hot[[2]int64{dg.A, dg.B}] = true
	}
	hot3 := make(map[[3]int64]bool)
	for _, tg := range tri.Hot(tripleMinCount) {
		hot3[[3]int64{tg.A, tg.B, tg.C}] = true
	}
	for fi, f := range p.Funcs {
		pairs, triples := fuseFunc(d.funcs[fi].code, f.Code, hot, hot3)
		d.funcs[fi].fused = pairs
		d.funcs[fi].triples = triples
		d.fused += pairs
		d.triples += triples
	}
	return d
}

// fuseFunc rewrites fusable hot triples and pairs in place, longest match
// first. A fusion starting at i consumes slots i..i+k-1; the trailing
// components keep their original decoded forms (branch targets may enter
// there, and the step budget can expire mid-fusion), so a fusion is blocked
// when any interior slot is a branch target, and the greedy skip guarantees
// no later fusion starts inside a consumed window — which triples rely on
// to read their third component live from code[pc+2].
func fuseFunc(code []dinst, src []isa.Inst, hot map[[2]int64]bool, hot3 map[[3]int64]bool) (pairs, triples int) {
	if len(src) < 2 {
		return 0, 0
	}
	target := make([]bool, len(src))
	for _, in := range src {
		if in.IsBranch() {
			if t := int(in.Imm); t >= 0 && t < len(src) {
				target[t] = true
			}
		}
	}
	for i := 0; i+1 < len(src); i++ {
		// Inlined call sites must keep their dCallInline record (the slot
		// no longer mirrors src), and calls never fuse anyway.
		if code[i].op == dCallInline {
			continue
		}
		if target[i+1] {
			continue
		}
		if i+2 < len(src) && !target[i+2] && code[i+2].op != dCallInline &&
			hot3[[3]int64{int64(src[i].Op), int64(src[i+1].Op), int64(src[i+2].Op)}] {
			if f, ok := fuseTriple(src[i], src[i+1], src[i+2]); ok {
				code[i] = f
				triples++
				i += 2 // slots i+1, i+2 keep their original forms
				continue
			}
		}
		if !hot[[2]int64{int64(src[i].Op), int64(src[i+1].Op)}] {
			continue
		}
		if code[i+1].op == dCallInline {
			continue
		}
		if f, ok := fusePair(src[i], src[i+1]); ok {
			code[i] = f
			pairs++
			i++ // the pair is consumed; slot i+1 keeps its original form
		}
	}
	return pairs, triples
}

// isCmpOp reports whether the opcode is a fusable comparison.
func isCmpOp(op isa.Opcode) bool {
	return op == isa.OpEq || op == isa.OpNe || op == isa.OpLt || op == isa.OpLe
}

func cmpKindOf(op isa.Opcode) uint8 {
	switch op {
	case isa.OpEq:
		return ckEq
	case isa.OpNe:
		return ckNe
	case isa.OpLt:
		return ckLt
	default:
		return ckLe
	}
}

// fusePair builds the superinstruction for a supported opcode pair. The
// fused record carries both components' operands verbatim; the handler
// executes them strictly in order, so operand aliasing between the halves
// (e.g. addi writing the load's base register) needs no special casing.
func fusePair(a, b isa.Inst) (dinst, bool) {
	switch {
	case a.Op == isa.OpConst && b.Op == isa.OpAdd:
		return dinst{op: dConstAdd, a: a.A, imm: a.Imm,
			a2: b.A, b2: b.B, c2: b.C, addr: a.Addr}, true
	case isCmpOp(a.Op) && (b.Op == isa.OpBz || b.Op == isa.OpBnz):
		ck := cmpKindOf(a.Op) << 1
		if b.Op == isa.OpBnz {
			ck |= 1
		}
		return dinst{op: dCmpBr, a: a.A, b: a.B, c: a.C, ck: ck,
			a2: b.A, imm2: b.Imm, addr: a.Addr}, true
	case a.Op == isa.OpAddImm && b.Op == isa.OpLoad:
		return dinst{op: dAddImmLoad, a: a.A, b: a.B, imm: a.Imm,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	case a.Op == isa.OpLoad && b.Op == isa.OpAdd:
		return dinst{op: dLoadAdd, a: a.A, b: a.B, imm: a.Imm, size: a.Size,
			a2: b.A, b2: b.B, c2: b.C, addr: a.Addr}, true
	case a.Op == isa.OpConst && b.Op == isa.OpStore:
		return dinst{op: dConstStore, a: a.A, imm: a.Imm,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	case a.Op == isa.OpLoad && b.Op == isa.OpStore:
		return dinst{op: dLoadStore, a: a.A, b: a.B, imm: a.Imm, size: a.Size,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	}
	return dinst{}, false
}

// inlineMaxInsts caps the decoded body length of an inline-eligible
// callee: big enough for the accessor/combinator shapes lib functions take
// in the workloads, small enough that the per-site replay loop stays in
// the dispatch loop's instruction cache footprint.
const inlineMaxInsts = 8

// inlineBody reports whether f is an inline-eligible leaf and returns a
// snapshot of its unfused decoded body (ret included). Eligible means: a
// lib function, straight-line (no branches, no calls, no externs), at most
// inlineMaxInsts decoded records, free of trapping ops (div/mod would
// report the callee's frame, which an inlined execution no longer has),
// and ending in its only ret.
func inlineBody(code []dinst, f *isa.Func) ([]dinst, bool) {
	if !f.Lib || len(code) == 0 || len(code) > inlineMaxInsts {
		return nil, false
	}
	for i, in := range code {
		last := i == len(code)-1
		switch in.op {
		case dNop, dConst, dMov, dAdd, dSub, dMul, dAnd, dOr, dXor,
			dShl, dShr, dAddImm, dEq, dNe, dLt, dLe, dLoad, dStore,
			dGroupSet, dGroupClr:
			if last {
				return nil, false // must end in ret
			}
		case dRet:
			if !last {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	body := make([]dinst, len(code))
	copy(body, code)
	return body, true
}

// inlineCalls rewrites direct calls to inline-eligible callees as
// dCallInline records (same operand layout as dCall). Only well-formed
// sites are rewritten — an argc mismatch keeps the dCall path so the
// oracle's trap still fires at runtime.
func inlineCalls(code []dinst, bodies [][]dinst, funcs []dfunc) int {
	n := 0
	for i := range code {
		in := &code[i]
		if in.op != dCall || bodies[in.fn] == nil {
			continue
		}
		if int(in.c) != funcs[in.fn].nparams {
			continue
		}
		in.op = dCallInline
		n++
	}
	return n
}

// fuseTriple builds the superinstruction for a supported opcode triple. The
// record carries the first two components' operands; the third is read live
// from code[pc+2], whose slot always keeps the original decoded form.
func fuseTriple(a, b, c isa.Inst) (dinst, bool) {
	switch {
	case a.Op == isa.OpConst && b.Op == isa.OpAdd && c.Op == isa.OpLoad:
		return dinst{op: dConstAddLoad, a: a.A, imm: a.Imm,
			a2: b.A, b2: b.B, c2: b.C, addr: a.Addr}, true
	case a.Op == isa.OpLoad && isCmpOp(b.Op) && (c.Op == isa.OpBz || c.Op == isa.OpBnz):
		return dinst{op: dLoadCmpBr, a: a.A, b: a.B, imm: a.Imm, size: a.Size,
			ck: cmpKindOf(b.Op), a2: b.A, b2: b.B, c2: b.C, addr: a.Addr}, true
	case a.Op == isa.OpAddImm && b.Op == isa.OpLoad && c.Op == isa.OpAdd:
		return dinst{op: dAddiLoadAdd, a: a.A, b: a.B, imm: a.Imm,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	}
	return dinst{}, false
}

// isFused reports whether the decoded opcode is a superinstruction.
func (op dop) isFused() bool { return op >= dConstAdd && op < dopCount }

// isTriple reports whether the decoded opcode fuses three components.
func (op dop) isTriple() bool { return op >= dConstAddLoad && op < dopCount }
