// Per-function predecoder: lowers isa.Inst once into a dense, decoded form
// the threaded dispatch loop (dispatch.go) executes directly. Decoding
// happens exactly once per program — the result is cached on the
// *isa.Program itself, so fan-out trials over internal/pool and repeated
// halod training runs share one decode.
//
// The decoded stream is also where superinstruction fusion happens: the
// SEQUITUR machinery from internal/sequitur runs over each function's
// static opcode stream, and adjacent pairs the grammar proves repeated (hot
// digrams) are fused into single decoded records when the pair has a
// specialised handler. A fused record executes both component semantics —
// same register writes, same events, same step accounting — so the observed
// event stream stays bit-identical to the unfused interpreter's; see
// dispatch.go for the mid-pair step-budget contract.
package vm

import (
	"halo/internal/isa"
	"halo/internal/obs"
	"halo/internal/sequitur"
)

// dop is a decoded opcode: the isa opcodes plus the fused
// superinstructions, indexing the threaded dispatcher's handler table.
type dop uint8

// Decoded opcodes. The base ops mirror isa's; the tail entries are the
// fused superinstructions.
const (
	dIllegal dop = iota // undefined isa opcode; traps when reached
	dNop
	dConst
	dMov
	dAdd
	dSub
	dMul
	dDiv
	dMod
	dAnd
	dOr
	dXor
	dShl
	dShr
	dAddImm
	dEq
	dNe
	dLt
	dLe
	dJmp
	dBz
	dBnz
	dCall    // direct internal call; fn holds the callee index
	dCallExt // external call, pre-classified; fn holds the isa.Extern
	dCallInd
	dRet
	dLoad
	dStore
	dGroupSet
	dGroupClr
	dHalt

	// Superinstructions: one decoded record executing two retired
	// instructions. The second component's original decoded form stays at
	// pc+1 (branch targets may enter there, and the step budget can expire
	// mid-pair).
	dConstAdd   // const a, imm ; add a2, b2, c2
	dCmpBr      // cmp[ck>>1] a, b, c ; bz/bnz[ck&1] a2 -> imm2
	dAddImmLoad // addi a, b, imm ; load(size2) a2, [b2 + imm2]
	dLoadAdd    // load(size) a, [b + imm] ; add a2, b2, c2
	dConstStore // const a, imm ; store(size2) [b2 + imm2], a2
	dLoadStore  // load(size) a, [b + imm] ; store(size2) [b2 + imm2], a2

	dopCount
)

// dinst is one decoded instruction: operands pulled out of the packed
// isa.Inst encoding into directly indexable fields, call targets and
// externs pre-classified, plus the second component's operands for fused
// records. 40 bytes, accessed by pointer in the dispatch loop (the seed
// interpreter copied the 32-byte isa.Inst per step).
type dinst struct {
	op         dop
	size       uint8 // load/store access width
	a, b, c, d uint8
	a2, b2, c2 uint8 // fused second-component registers
	ck         uint8 // dCmpBr: compare kind<<1 | bnz bit
	size2      uint8 // fused second-component access width
	imm        int64
	imm2       int64    // fused second-component immediate / branch target
	fn         int32    // dCall callee index; dCallExt extern id
	addr       isa.Addr // call-site address (EvCall, alloc sites)
}

// dCmpBr compare kinds (ck >> 1).
const (
	ckEq = iota
	ckNe
	ckLt
	ckLe
)

// dfunc is one function's decoded body plus the frame geometry the call
// path needs, kept dense beside the code for locality.
type dfunc struct {
	code    []dinst
	nregs   int
	nparams int
	fused   int // fused pairs in this function
}

// Decoded is a program lowered for the threaded dispatcher. Instances are
// immutable after construction and shared freely between VMs.
type Decoded struct {
	funcs []dfunc
	fused int // fused pairs program-wide
	insts int // decoded slots program-wide
}

// FusedSites reports how many instruction pairs were fused program-wide.
func (d *Decoded) FusedSites() int { return d.fused }

// Insts reports the total decoded instruction count.
func (d *Decoded) Insts() int { return d.insts }

// fuseMinCount is the hot-digram threshold: a static opcode pair must recur
// at least this often (SEQUITUR rule weight) before its occurrences fuse.
const fuseMinCount = 2

// Predecode returns the program's decoded form, lowering it on first use
// and caching the result on the program. Safe for concurrent use: racing
// decoders produce identical values and the last atomic store wins.
// Callers that fan a program out over a worker pool (internal/measure)
// pre-warm the cache once to avoid redundant racing decodes.
func Predecode(p *isa.Program) *Decoded {
	if c := p.DecodeCache(); c != nil {
		if d, ok := c.(*Decoded); ok {
			if obs.Enabled() {
				mPredecodeHits.Inc()
			}
			return d
		}
	}
	if obs.Enabled() {
		mPredecodeMisses.Inc()
	}
	d := decodeProgram(p)
	p.SetDecodeCache(d)
	return d
}

// opMap lowers defined isa opcodes to their decoded counterparts.
var opMap = [...]dop{
	isa.OpNop: dNop, isa.OpConst: dConst, isa.OpMov: dMov,
	isa.OpAdd: dAdd, isa.OpSub: dSub, isa.OpMul: dMul, isa.OpDiv: dDiv,
	isa.OpMod: dMod, isa.OpAnd: dAnd, isa.OpOr: dOr, isa.OpXor: dXor,
	isa.OpShl: dShl, isa.OpShr: dShr, isa.OpAddImm: dAddImm,
	isa.OpEq: dEq, isa.OpNe: dNe, isa.OpLt: dLt, isa.OpLe: dLe,
	isa.OpJmp: dJmp, isa.OpBz: dBz, isa.OpBnz: dBnz,
	isa.OpCall: dCall, isa.OpCallInd: dCallInd, isa.OpRet: dRet,
	isa.OpLoad: dLoad, isa.OpStore: dStore,
	isa.OpGroupSet: dGroupSet, isa.OpGroupClr: dGroupClr,
	isa.OpHalt: dHalt,
}

// decodeInst lowers one instruction (no fusion yet).
func decodeInst(in isa.Inst) dinst {
	d := dinst{
		size: in.Size, a: in.A, b: in.B, c: in.C, d: in.D,
		imm: in.Imm, addr: in.Addr,
	}
	if !in.Op.Valid() {
		// Preserve the reference interpreter's lazy trap: the illegal
		// opcode only faults if execution reaches it.
		d.op = dIllegal
		d.imm = int64(in.Op)
		return d
	}
	d.op = opMap[in.Op]
	if in.Op == isa.OpCall {
		if in.Fn.IsExtern() {
			d.op = dCallExt
			d.fn = int32(in.Fn.ExternOf())
		} else {
			d.fn = int32(in.Fn)
		}
	}
	return d
}

// decodeProgram lowers every function, then fuses hot digrams. Fully
// deterministic: the same program always decodes to the same Decoded.
func decodeProgram(p *isa.Program) *Decoded {
	d := &Decoded{funcs: make([]dfunc, len(p.Funcs))}
	counter := sequitur.NewDigramCounter()
	stream := make([]int64, 0, 256)
	for fi, f := range p.Funcs {
		code := make([]dinst, len(f.Code))
		stream = stream[:0]
		for pc, in := range f.Code {
			code[pc] = decodeInst(in)
			stream = append(stream, int64(in.Op))
		}
		// One grammar per function: digrams never straddle functions.
		counter.Observe(stream)
		d.funcs[fi] = dfunc{code: code, nregs: f.NRegs, nparams: f.NParams}
		d.insts += len(code)
	}
	hot := make(map[[2]int64]bool)
	for _, dg := range counter.Hot(fuseMinCount) {
		hot[[2]int64{dg.A, dg.B}] = true
	}
	for fi, f := range p.Funcs {
		n := fuseFunc(d.funcs[fi].code, f.Code, hot)
		d.funcs[fi].fused = n
		d.fused += n
	}
	return d
}

// fuseFunc rewrites fusable hot pairs in place. A pair (i, i+1) fuses only
// when no branch targets i+1 — entering mid-pair must still execute just
// the second component, which keeps its original decoded form at i+1.
// Greedy left to right, pairs never overlap.
func fuseFunc(code []dinst, src []isa.Inst, hot map[[2]int64]bool) int {
	if len(src) < 2 {
		return 0
	}
	target := make([]bool, len(src))
	for _, in := range src {
		if in.IsBranch() {
			if t := int(in.Imm); t >= 0 && t < len(src) {
				target[t] = true
			}
		}
	}
	fused := 0
	for i := 0; i+1 < len(src); i++ {
		if target[i+1] {
			continue
		}
		if !hot[[2]int64{int64(src[i].Op), int64(src[i+1].Op)}] {
			continue
		}
		if f, ok := fusePair(src[i], src[i+1]); ok {
			code[i] = f
			fused++
			i++ // the pair is consumed; slot i+1 keeps its original form
		}
	}
	return fused
}

// isCmpOp reports whether the opcode is a fusable comparison.
func isCmpOp(op isa.Opcode) bool {
	return op == isa.OpEq || op == isa.OpNe || op == isa.OpLt || op == isa.OpLe
}

func cmpKindOf(op isa.Opcode) uint8 {
	switch op {
	case isa.OpEq:
		return ckEq
	case isa.OpNe:
		return ckNe
	case isa.OpLt:
		return ckLt
	default:
		return ckLe
	}
}

// fusePair builds the superinstruction for a supported opcode pair. The
// fused record carries both components' operands verbatim; the handler
// executes them strictly in order, so operand aliasing between the halves
// (e.g. addi writing the load's base register) needs no special casing.
func fusePair(a, b isa.Inst) (dinst, bool) {
	switch {
	case a.Op == isa.OpConst && b.Op == isa.OpAdd:
		return dinst{op: dConstAdd, a: a.A, imm: a.Imm,
			a2: b.A, b2: b.B, c2: b.C, addr: a.Addr}, true
	case isCmpOp(a.Op) && (b.Op == isa.OpBz || b.Op == isa.OpBnz):
		ck := cmpKindOf(a.Op) << 1
		if b.Op == isa.OpBnz {
			ck |= 1
		}
		return dinst{op: dCmpBr, a: a.A, b: a.B, c: a.C, ck: ck,
			a2: b.A, imm2: b.Imm, addr: a.Addr}, true
	case a.Op == isa.OpAddImm && b.Op == isa.OpLoad:
		return dinst{op: dAddImmLoad, a: a.A, b: a.B, imm: a.Imm,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	case a.Op == isa.OpLoad && b.Op == isa.OpAdd:
		return dinst{op: dLoadAdd, a: a.A, b: a.B, imm: a.Imm, size: a.Size,
			a2: b.A, b2: b.B, c2: b.C, addr: a.Addr}, true
	case a.Op == isa.OpConst && b.Op == isa.OpStore:
		return dinst{op: dConstStore, a: a.A, imm: a.Imm,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	case a.Op == isa.OpLoad && b.Op == isa.OpStore:
		return dinst{op: dLoadStore, a: a.A, b: a.B, imm: a.Imm, size: a.Size,
			a2: b.A, b2: b.B, imm2: b.Imm, size2: b.Size, addr: a.Addr}, true
	}
	return dinst{}, false
}

// isFused reports whether the decoded opcode is a superinstruction.
func (op dop) isFused() bool { return op >= dConstAdd && op < dopCount }
