package vm

import (
	"testing"

	"halo/internal/isa"
	"halo/internal/prog"
)

// goldenDisasmProgram deterministically triggers one of each rendering
// shape: a fused triple, a fused pair, and an inlined lib call.
func goldenDisasmProgram() *isa.Program {
	b := prog.NewBuilder("golden")

	inc := b.LibFunc("inc", 1) // inline-eligible leaf
	r := inc.Reg()
	inc.AddImm(r, inc.Param(0), 1)
	inc.Ret(r)

	f := b.Func("main", 0)
	sz := f.ConstReg(64)
	buf := f.Malloc(sz)
	x := f.Reg()
	y := f.Reg()
	// addi+load+add three times: the trigram is hot, every site fuses.
	for i := 0; i < 3; i++ {
		f.AddImm(x, buf, int64(8*i))
		f.Load(y, buf, int64(8*i), 8)
		f.Add(x, x, y)
	}
	// const+store twice: a hot pair.
	v := f.Reg()
	f.Const(v, 7)
	f.Store(buf, 0, v, 8)
	f.Const(v, 9)
	f.Store(buf, 8, v, 8)
	f.Mov(x, f.Call("inc", x))
	f.Ret(x)
	return b.MustBuild()
}

const goldenDisasm = `; program "golden"  entry=main  globals=0  fused=2/20  triples=3  inlined=1

func inc(1) [lib] [inline]  ; #0, 2 regs, 0 fused, 0 triples, 0 inlined
     0: addi r1, r0, 1
     1: ret r1

func main(0)  ; #1, 6 regs, 2 fused, 3 triples, 1 inlined
     0: const r0, 64
     1: call r1, malloc(r0:1)
     2: fuse[addi.load.add] {addi r2, r1, 0 ; load8 r3, [r1+0] ; add r2, r2, r3}
     5: fuse[addi.load.add] {addi r2, r1, 8 ; load8 r3, [r1+8] ; add r2, r2, r3}
     8: fuse[addi.load.add] {addi r2, r1, 16 ; load8 r3, [r1+16] ; add r2, r2, r3}
    11: fuse[const.store] {const r4, 7 ; store8 [r1+0], r4}
    13: fuse[const.store] {const r4, 9 ; store8 [r1+8], r4}
    15: call r5, inc(r2:1)  ; inlined -> inc
    16: mov r2, r5
    17: ret r2
`

func TestDisasmFusedGolden(t *testing.T) {
	got := DisasmFused(goldenDisasmProgram())
	if got != goldenDisasm {
		t.Errorf("disasm diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, goldenDisasm)
	}
	// The program must keep exercising all three rendering shapes, or the
	// golden is vacuous.
	dp := Predecode(goldenDisasmProgram())
	if dp.FusedSites() == 0 || dp.TripleSites() == 0 || dp.InlinedSites() == 0 {
		t.Fatalf("golden program lost a shape: pairs=%d triples=%d inlined=%d",
			dp.FusedSites(), dp.TripleSites(), dp.InlinedSites())
	}
}
