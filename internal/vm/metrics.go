package vm

import "halo/internal/obs"

// Event-engine metrics, recorded once per batch flush (never per event) so
// the interpreter's hot loop stays untouched. Registered in the process
// Default registry; halod renders them under GET /metrics.
var (
	mRuns = obs.Default.Counter("halo_vm_runs_total",
		"VM executions started (training runs, measurement trials, replays)")
	mEvents = obs.Default.Counter("halo_vm_events_total",
		"events delivered to sinks by the batched event engine")
	mBatches = obs.Default.Counter("halo_vm_batches_total",
		"event batches flushed to sinks")
	mBatchFill = obs.Default.Gauge("halo_vm_batch_fill_pct",
		"ring-buffer occupancy of the most recently flushed batch (percent of capacity)")
	mFusedInsts = obs.Default.Counter("halo_vm_fused_insts_total",
		"superinstruction pairs fully retired by the threaded dispatcher (recorded once per run)")
	mPredecodeHits = obs.Default.Counter("halo_vm_predecode_cache_hits_total",
		"Predecode calls served from the per-program decode cache")
	mPredecodeMisses = obs.Default.Counter("halo_vm_predecode_cache_misses_total",
		"Predecode calls that lowered a program from scratch")
	mTLBHits = obs.Default.Counter("halo_vm_tlb_hits_total",
		"software-TLB hits in the threaded dispatcher (recorded once per run)")
	mTLBMisses = obs.Default.Counter("halo_vm_tlb_misses_total",
		"software-TLB misses in the threaded dispatcher (recorded once per run)")
	mInlinedCalls = obs.Default.Counter("halo_vm_inlined_calls_total",
		"lib calls executed through a predecode-inlined body (recorded once per run)")
)
