// Threaded dispatch: the predecoded execution core. A handler table
// indexed by decoded opcode replaces the reference interpreter's giant
// switch (vm.go), in the style of classic func-table ISA simulators — with
// the hottest paths kept inline in the loop itself: loads and stores (the
// event-emit fast path), constants, adds, branches, calls/returns, and all
// fused superinstructions. Everything else costs one indirect call through
// the table.
//
// Hot state lives in locals for the whole run — pc, step/load/store
// counters, the register window — and is written back to the VM and frame
// only at call boundaries and exits, so the per-instruction loop touches no
// VM fields except the event buffer.
//
// Step-budget contract for fused records: the loop head charges the first
// component's step, the handler charges the second's. If the budget expires
// between the halves the handler stops after the first component and
// resumes at pc+1 — which holds the second component's original decoded
// form — so the run traps with ErrMaxSteps at exactly the instruction
// boundary the reference interpreter would, with the identical partial
// event stream.
package vm

import (
	"encoding/binary"
	"errors"

	"halo/internal/isa"
	"halo/internal/mem"
)

// dhandler executes one table-dispatched instruction and returns the next
// pc. Errors are sentinel trap causes; the loop wraps them with frame
// context.
type dhandler func(v *VM, in *dinst, regs []int64, pc int) (int, error)

// Sentinel trap causes for table handlers, formatted exactly like the
// reference interpreter's messages.
var (
	errDivZero = errors.New("division by zero")
	errModZero = errors.New("mod by zero")
)

// dtab is the handler table. Slots the loop handles inline are backed by
// hIllegal for safety; they are never reached through the table.
var dtab = [dopCount]dhandler{}

func init() {
	for i := range dtab {
		dtab[i] = hIllegal
	}
	dtab[dNop] = hNop
	dtab[dMov] = hMov
	dtab[dSub] = hSub
	dtab[dMul] = hMul
	dtab[dDiv] = hDiv
	dtab[dMod] = hMod
	dtab[dAnd] = hAnd
	dtab[dOr] = hOr
	dtab[dXor] = hXor
	dtab[dShl] = hShl
	dtab[dShr] = hShr
	dtab[dEq] = hEq
	dtab[dNe] = hNe
	dtab[dLt] = hLt
	dtab[dLe] = hLe
	dtab[dGroupSet] = hGroupSet
	dtab[dGroupClr] = hGroupClr
}

func hIllegal(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	return 0, &illegalOp{op: isa.Opcode(in.imm)}
}

// illegalOp formats the reference interpreter's illegal-opcode trap cause.
type illegalOp struct{ op isa.Opcode }

func (e *illegalOp) Error() string { return "illegal opcode " + e.op.String() }

func hNop(v *VM, in *dinst, regs []int64, pc int) (int, error) { return pc + 1, nil }
func hMov(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b]
	return pc + 1, nil
}
func hSub(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] - regs[in.c]
	return pc + 1, nil
}
func hMul(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] * regs[in.c]
	return pc + 1, nil
}
func hDiv(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	if regs[in.c] == 0 {
		return 0, errDivZero
	}
	regs[in.a] = regs[in.b] / regs[in.c]
	return pc + 1, nil
}
func hMod(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	if regs[in.c] == 0 {
		return 0, errModZero
	}
	regs[in.a] = regs[in.b] % regs[in.c]
	return pc + 1, nil
}
func hAnd(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] & regs[in.c]
	return pc + 1, nil
}
func hOr(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] | regs[in.c]
	return pc + 1, nil
}
func hXor(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] ^ regs[in.c]
	return pc + 1, nil
}
func hShl(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] << (uint64(regs[in.c]) & 63)
	return pc + 1, nil
}
func hShr(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = int64(uint64(regs[in.b]) >> (uint64(regs[in.c]) & 63))
	return pc + 1, nil
}
func hEq(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] == regs[in.c])
	return pc + 1, nil
}
func hNe(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] != regs[in.c])
	return pc + 1, nil
}
func hLt(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] < regs[in.c])
	return pc + 1, nil
}
func hLe(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] <= regs[in.c])
	return pc + 1, nil
}
func hGroupSet(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	v.group.Set(int(in.imm))
	return pc + 1, nil
}
func hGroupClr(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	v.group.Clear(int(in.imm))
	return pc + 1, nil
}

const pageMask = mem.PageSize - 1

// loadFast reads size bytes at addr through the dispatcher's one-entry
// software TLB, turning the per-byte page-map lookups of Memory.Read into
// a single in-page little-endian load on the (overwhelmingly common) hit
// path. Page-straddling and non-power-of-two accesses fall back to the
// reference path, which keeps the byte semantics identical.
func (v *VM) loadFast(addr uint64, size uint8) uint64 {
	off := addr & pageMask
	if off+uint64(size) > mem.PageSize {
		return v.mem.Read(addr, size)
	}
	if id := (addr >> mem.PageShift) + 1; id != v.tlbID {
		v.tlbPage = v.mem.PageFor(addr, false)
		v.tlbID = id
	}
	p := v.tlbPage
	if p == nil {
		return 0 // untouched page: reads as zeros
	}
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(p[off:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off:]))
	case 1:
		return uint64(p[off])
	default:
		return v.mem.Read(addr, size)
	}
}

// storeFast is the store-side TLB path; see loadFast. Stores materialise
// the page, exactly as Memory.Write does.
func (v *VM) storeFast(addr uint64, size uint8, val uint64) {
	off := addr & pageMask
	if off+uint64(size) > mem.PageSize {
		v.mem.Write(addr, size, val)
		return
	}
	if id := (addr >> mem.PageShift) + 1; id != v.tlbID || v.tlbPage == nil {
		v.tlbPage = v.mem.PageFor(addr, true)
		v.tlbID = id
	}
	p := v.tlbPage
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(p[off:], val)
	case 4:
		binary.LittleEndian.PutUint32(p[off:], uint32(val))
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(val))
	case 1:
		p[off] = byte(val)
	default:
		v.mem.Write(addr, size, val)
	}
}

// runThreaded executes the decoded program. Entry frame and registers have
// been set up by Run.
func (v *VM) runThreaded(dp *Decoded) (res int64, err error) {
	limit := v.cfg.MaxSteps
	sinkOn := v.sink != nil
	steps, loads, stores := v.steps, v.loads, v.stores
	fused := v.fused
	// Counter writeback on every exit path; break inner only re-enters the
	// outer loop, which never reads them.
	sync := func() { v.steps, v.loads, v.stores, v.fused = steps, loads, stores, fused }

	for {
		if len(v.frames) == 0 {
			sync()
			return 0, errors.New("vm: frame stack underflow")
		}
		f := &v.frames[len(v.frames)-1]
		fc := &dp.funcs[f.fn]
		code := fc.code
		regs := v.regs[f.base : f.base+fc.nregs]
		pc := f.pc

	inner:
		for {
			if pc >= len(code) {
				f.pc = pc
				sync()
				return 0, v.trap(*f, "fell off function end")
			}
			if steps >= limit {
				f.pc = pc
				sync()
				return 0, ErrMaxSteps
			}
			in := &code[pc]
			steps++
			switch in.op {
			case dConst:
				regs[in.a] = in.imm
				pc++
			case dAdd:
				regs[in.a] = regs[in.b] + regs[in.c]
				pc++
			case dAddImm:
				regs[in.a] = regs[in.b] + in.imm
				pc++
			case dLoad:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					// Inlined emit: the hottest observation site.
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				pc++
			case dStore:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				stores++
				v.storeFast(addr, in.size, uint64(regs[in.a]))
				pc++
			case dJmp:
				pc = int(in.imm)
			case dBz:
				if regs[in.a] == 0 {
					pc = int(in.imm)
				} else {
					pc++
				}
			case dBnz:
				if regs[in.a] != 0 {
					pc = int(in.imm)
				} else {
					pc++
				}

			// ---- superinstructions ----
			case dConstAdd:
				regs[in.a] = in.imm
				if steps >= limit {
					pc++ // budget expired mid-pair; resume at the second component
					continue
				}
				steps++
				fused++
				regs[in.a2] = regs[in.b2] + regs[in.c2]
				pc += 2
			case dCmpBr:
				x, y := regs[in.b], regs[in.c]
				var r int64
				switch in.ck >> 1 {
				case ckEq:
					r = b2i(x == y)
				case ckNe:
					r = b2i(x != y)
				case ckLt:
					r = b2i(x < y)
				default:
					r = b2i(x <= y)
				}
				regs[in.a] = r
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				cond := regs[in.a2]
				take := cond != 0
				if in.ck&1 == 0 { // bz
					take = cond == 0
				}
				if take {
					pc = int(in.imm2)
				} else {
					pc += 2
				}
			case dAddImmLoad:
				regs[in.a] = regs[in.b] + in.imm
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr := uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a2] = int64(v.loadFast(addr, in.size2))
				pc += 2
			case dConstStore:
				regs[in.a] = in.imm
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr := uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				stores++
				v.storeFast(addr, in.size2, uint64(regs[in.a2]))
				pc += 2
			case dLoadStore:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr = uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				stores++
				v.storeFast(addr, in.size2, uint64(regs[in.a2]))
				pc += 2
			case dLoadAdd:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				regs[in.a2] = regs[in.b2] + regs[in.c2]
				pc += 2

			// ---- control transfers ----
			case dRet:
				val := regs[in.a]
				if f.entry {
					sync()
					return val, nil
				}
				if sinkOn {
					v.emit(Event{Kind: EvReturn, Fn: int32(f.fn)})
				}
				dst, ret, base := f.dst, f.ret, f.base
				v.frames = v.frames[:len(v.frames)-1]
				v.regs = v.regs[:base]
				pf := &v.frames[len(v.frames)-1]
				v.regs[pf.base+int(dst)] = val
				pf.pc = ret
				break inner
			case dCall, dCallInd:
				var target int32
				if in.op == dCall {
					target = in.fn
				} else {
					t := regs[in.d]
					if t < 0 || t >= int64(len(v.prog.Funcs)) {
						f.pc = pc
						sync()
						return 0, v.trap(*f, "indirect call to bad function index %d", t)
					}
					target = int32(t)
				}
				if len(v.frames) >= v.cfg.MaxDepth {
					f.pc = pc
					sync()
					return 0, v.trap(*f, "call stack overflow (%d frames)", len(v.frames))
				}
				callee := &dp.funcs[target]
				if int(in.c) != callee.nparams {
					f.pc = pc
					sync()
					return 0, v.trap(*f, "call to %s with %d args, want %d",
						v.prog.Funcs[target].Name, in.c, callee.nparams)
				}
				newBase := len(v.regs)
				v.regs = append(v.regs, make([]int64, callee.nregs)...)
				for i := 0; i < int(in.c); i++ {
					v.regs[newBase+i] = regs[int(in.b)+i]
				}
				v.frames = append(v.frames, frame{
					fn:   int(target),
					base: newBase,
					dst:  in.a,
					ret:  pc + 1,
					site: in.addr,
				})
				if sinkOn {
					v.emit(Event{Kind: EvCall, Site: in.addr, Fn: target})
				}
				break inner
			case dCallExt:
				f.pc = pc
				sync()
				res, err := v.callExtern(f, in.addr, in.b, in.c, regs, isa.Extern(in.fn))
				// The extern may have unmapped, purged or recreated pages.
				v.tlbID, v.tlbPage = 0, nil
				if err != nil {
					return 0, err
				}
				if v.halted {
					return res, nil
				}
				regs[in.a] = res
				pc++
			case dHalt:
				sync()
				return 0, nil
			default:
				npc, herr := dtab[in.op](v, in, regs, pc)
				if herr != nil {
					f.pc = pc
					sync()
					return 0, v.trap(*f, "%s", herr)
				}
				pc = npc
			}
		}
	}
}
