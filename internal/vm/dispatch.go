// Threaded dispatch: the predecoded execution core. A handler table
// indexed by decoded opcode replaces the reference interpreter's giant
// switch (vm.go), in the style of classic func-table ISA simulators — with
// the hottest paths kept inline in the loop itself: loads and stores (the
// event-emit fast path), constants, adds, branches, calls/returns, and all
// fused superinstructions. Everything else costs one indirect call through
// the table.
//
// Hot state lives in locals for the whole run — pc, step/load/store
// counters, the register window — and is written back to the VM and frame
// only at call boundaries and exits, so the per-instruction loop touches no
// VM fields except the event buffer.
//
// Step-budget contract for fused records: the loop head charges the first
// component's step, the handler charges the second's. If the budget expires
// between the halves the handler stops after the first component and
// resumes at pc+1 — which holds the second component's original decoded
// form — so the run traps with ErrMaxSteps at exactly the instruction
// boundary the reference interpreter would, with the identical partial
// event stream.
package vm

import (
	"encoding/binary"
	"errors"

	"halo/internal/isa"
	"halo/internal/mem"
)

// dhandler executes one table-dispatched instruction and returns the next
// pc. Errors are sentinel trap causes; the loop wraps them with frame
// context.
type dhandler func(v *VM, in *dinst, regs []int64, pc int) (int, error)

// Sentinel trap causes for table handlers, formatted exactly like the
// reference interpreter's messages.
var (
	errDivZero = errors.New("division by zero")
	errModZero = errors.New("mod by zero")
)

// dtab is the handler table. Slots the loop handles inline are backed by
// hIllegal for safety; they are never reached through the table.
var dtab = [dopCount]dhandler{}

func init() {
	for i := range dtab {
		dtab[i] = hIllegal
	}
	dtab[dNop] = hNop
	dtab[dMov] = hMov
	dtab[dSub] = hSub
	dtab[dMul] = hMul
	dtab[dDiv] = hDiv
	dtab[dMod] = hMod
	dtab[dAnd] = hAnd
	dtab[dOr] = hOr
	dtab[dXor] = hXor
	dtab[dShl] = hShl
	dtab[dShr] = hShr
	dtab[dEq] = hEq
	dtab[dNe] = hNe
	dtab[dLt] = hLt
	dtab[dLe] = hLe
	dtab[dGroupSet] = hGroupSet
	dtab[dGroupClr] = hGroupClr
}

func hIllegal(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	return 0, &illegalOp{op: isa.Opcode(in.imm)}
}

// illegalOp formats the reference interpreter's illegal-opcode trap cause.
type illegalOp struct{ op isa.Opcode }

func (e *illegalOp) Error() string { return "illegal opcode " + e.op.String() }

func hNop(v *VM, in *dinst, regs []int64, pc int) (int, error) { return pc + 1, nil }
func hMov(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b]
	return pc + 1, nil
}
func hSub(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] - regs[in.c]
	return pc + 1, nil
}
func hMul(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] * regs[in.c]
	return pc + 1, nil
}
func hDiv(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	if regs[in.c] == 0 {
		return 0, errDivZero
	}
	regs[in.a] = regs[in.b] / regs[in.c]
	return pc + 1, nil
}
func hMod(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	if regs[in.c] == 0 {
		return 0, errModZero
	}
	regs[in.a] = regs[in.b] % regs[in.c]
	return pc + 1, nil
}
func hAnd(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] & regs[in.c]
	return pc + 1, nil
}
func hOr(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] | regs[in.c]
	return pc + 1, nil
}
func hXor(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] ^ regs[in.c]
	return pc + 1, nil
}
func hShl(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = regs[in.b] << (uint64(regs[in.c]) & 63)
	return pc + 1, nil
}
func hShr(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = int64(uint64(regs[in.b]) >> (uint64(regs[in.c]) & 63))
	return pc + 1, nil
}
func hEq(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] == regs[in.c])
	return pc + 1, nil
}
func hNe(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] != regs[in.c])
	return pc + 1, nil
}
func hLt(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] < regs[in.c])
	return pc + 1, nil
}
func hLe(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	regs[in.a] = b2i(regs[in.b] <= regs[in.c])
	return pc + 1, nil
}
func hGroupSet(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	v.group.Set(int(in.imm))
	return pc + 1, nil
}
func hGroupClr(v *VM, in *dinst, regs []int64, pc int) (int, error) {
	v.group.Clear(int(in.imm))
	return pc + 1, nil
}

const pageMask = mem.PageSize - 1

// Direct-mapped software TLB geometry: 1<<tlbBits entries indexed by the
// low page-number bits. 16 entries covers the working sets of the
// pointer-chasing workloads (omnetpp's event lists walk several pages per
// loop iteration, which thrashed the previous one-entry cache); the sweep
// in EXPERIMENTS.md pins the choice.
const (
	tlbBits = 4
	tlbSize = 1 << tlbBits
)

// tlbEntry caches one resolved page. tag is the page number + 1 (0 =
// empty). Entries are only ever installed for materialised pages, so
// page is non-nil whenever tag != 0 — a tag match grants both read and
// write without a nil re-check on the store path. Reads of untouched
// pages return zeros without installing anything; the first store to such
// a page misses, materialises it via PageFor(create), and installs it.
type tlbEntry struct {
	tag  uint64 // page number + 1 (0 = empty)
	gen  uint64 // flush generation the entry was installed in
	page *[mem.PageSize]byte
}

// tlbFlush invalidates the MRU filter and every direct-mapped entry.
// Called at run start and after every extern, since allocators can unmap,
// purge or recreate pages. Externs are frequent (every malloc/free), so
// the array is invalidated in O(1) by bumping the generation stamp instead
// of zeroing it; entries from older generations simply fail the gen check
// in tlbFill.
func (v *VM) tlbFlush() {
	v.tlbID, v.tlbPage = 0, nil
	v.tlbGen++
}

// tlbFill is the shared fill path behind the MRU filter: it consults the
// direct-mapped array and, on a true miss, resolves the page through
// Memory.PageFor. A nil return means a load touched a page that was never
// written (reads as zeros; nothing is installed, preserving the non-nil
// invariant). write fills always materialise and never return nil. On
// success both the array entry and the MRU filter point at the page.
//
//halo:hot
func (v *VM) tlbFill(addr, pn1 uint64, write bool) *[mem.PageSize]byte {
	e := &v.tlb[(pn1-1)&(tlbSize-1)]
	if e.tag != pn1 || e.gen != v.tlbGen {
		v.tlbMiss++
		p := v.mem.PageFor(addr, write)
		if p == nil {
			return nil
		}
		e.tag, e.gen, e.page = pn1, v.tlbGen, p
	}
	v.tlbID, v.tlbPage = pn1, e.page
	return e.page
}

// loadFast reads size bytes at addr through the dispatcher's direct-mapped
// software TLB, turning the per-byte page-map lookups of Memory.Read into
// a single in-page little-endian load on the (overwhelmingly common) hit
// path. Page-straddling accesses fall back to the reference byte path,
// which keeps the semantics identical.
//
//halo:hot
func (v *VM) loadFast(addr uint64, size uint8) uint64 {
	off := addr & pageMask
	if off+uint64(size) > mem.PageSize {
		v.tlbBypass++
		return v.mem.Read(addr, size)
	}
	pn1 := (addr >> mem.PageShift) + 1
	p := v.tlbPage
	if pn1 != v.tlbID {
		if p = v.tlbFill(addr, pn1, false); p == nil {
			return 0 // untouched page reads as zeros; never cached
		}
	}
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(p[off:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off:]))
	case 1:
		return uint64(p[off])
	default:
		return v.mem.Read(addr, size) // unreachable for validated programs
	}
}

// storeFast is the store-side TLB path; see loadFast. Store misses
// materialise the page, exactly as Memory.Write does; store hits write
// straight through the entry — the non-nil invariant makes the old
// per-store nil re-check unnecessary.
//
//halo:hot
func (v *VM) storeFast(addr uint64, size uint8, val uint64) {
	off := addr & pageMask
	if off+uint64(size) > mem.PageSize {
		v.tlbBypass++
		v.mem.Write(addr, size, val)
		return
	}
	pn1 := (addr >> mem.PageShift) + 1
	p := v.tlbPage
	if pn1 != v.tlbID {
		p = v.tlbFill(addr, pn1, true) // write fills always materialise
	}
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(p[off:], val)
	case 4:
		binary.LittleEndian.PutUint32(p[off:], uint32(val))
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(val))
	case 1:
		p[off] = byte(val)
	default:
		v.mem.Write(addr, size, val) // unreachable for validated programs
	}
}

// errFrameUnderflow is preallocated so the dispatch loop's exit check
// stays allocation-free.
var errFrameUnderflow = errors.New("vm: frame stack underflow")

// runThreaded executes the decoded program. Entry frame and registers have
// been set up by Run.
//
//halo:hot
func (v *VM) runThreaded(dp *Decoded) (res int64, err error) {
	limit := v.cfg.MaxSteps
	sinkOn := v.sink != nil
	steps, loads, stores := v.steps, v.loads, v.stores
	fused := v.fused
	// Counter writeback on every exit path; break inner only re-enters the
	// outer loop, which never reads them.
	sync := func() { //halo:hotalloc-ok non-escaping closure, called only below; it never leaves the stack
		v.steps, v.loads, v.stores = steps, loads, stores
		v.fused = fused
	}

	for {
		if len(v.frames) == 0 {
			sync()
			return 0, errFrameUnderflow
		}
		f := &v.frames[len(v.frames)-1]
		fc := &dp.funcs[f.fn]
		code := fc.code
		regs := v.regs[f.base : f.base+fc.nregs]
		pc := f.pc

	inner:
		for {
			if pc >= len(code) {
				f.pc = pc
				sync()
				return 0, v.trap(*f, "fell off function end")
			}
			if steps >= limit {
				f.pc = pc
				sync()
				return 0, ErrMaxSteps
			}
			in := &code[pc]
			steps++
			switch in.op {
			case dConst:
				regs[in.a] = in.imm
				pc++
			case dAdd:
				regs[in.a] = regs[in.b] + regs[in.c]
				pc++
			case dAddImm:
				regs[in.a] = regs[in.b] + in.imm
				pc++
			case dLoad:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					// Inlined emit: the hottest observation site.
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				pc++
			case dStore:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				stores++
				v.storeFast(addr, in.size, uint64(regs[in.a]))
				pc++
			case dJmp:
				pc = int(in.imm)
			case dBz:
				if regs[in.a] == 0 {
					pc = int(in.imm)
				} else {
					pc++
				}
			case dBnz:
				if regs[in.a] != 0 {
					pc = int(in.imm)
				} else {
					pc++
				}

			// ---- superinstructions ----
			case dConstAdd:
				regs[in.a] = in.imm
				if steps >= limit {
					pc++ // budget expired mid-pair; resume at the second component
					continue
				}
				steps++
				fused++
				regs[in.a2] = regs[in.b2] + regs[in.c2]
				pc += 2
			case dCmpBr:
				x, y := regs[in.b], regs[in.c]
				var r int64
				switch in.ck >> 1 {
				case ckEq:
					r = b2i(x == y)
				case ckNe:
					r = b2i(x != y)
				case ckLt:
					r = b2i(x < y)
				default:
					r = b2i(x <= y)
				}
				regs[in.a] = r
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				cond := regs[in.a2]
				take := cond != 0
				if in.ck&1 == 0 { // bz
					take = cond == 0
				}
				if take {
					pc = int(in.imm2)
				} else {
					pc += 2
				}
			case dAddImmLoad:
				regs[in.a] = regs[in.b] + in.imm
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr := uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a2] = int64(v.loadFast(addr, in.size2))
				pc += 2
			case dConstStore:
				regs[in.a] = in.imm
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr := uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				stores++
				v.storeFast(addr, in.size2, uint64(regs[in.a2]))
				pc += 2
			case dLoadStore:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr = uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2, Write: true})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				stores++
				v.storeFast(addr, in.size2, uint64(regs[in.a2]))
				pc += 2
			case dLoadAdd:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				regs[in.a2] = regs[in.b2] + regs[in.c2]
				pc += 2

			// ---- triple superinstructions ----
			// Same budget contract as the pairs, applied twice: on expiry
			// execution resumes at the next unexecuted component's pc, which
			// holds that component's original decoded form. The third
			// component is read live from code[pc+2] (its slot is never
			// consumed by another fusion).
			case dConstAddLoad:
				regs[in.a] = in.imm
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				regs[in.a2] = regs[in.b2] + regs[in.c2]
				if steps >= limit {
					pc += 2
					continue
				}
				steps++
				fused++
				in3 := &code[pc+2]
				addr := uint64(regs[in3.b] + in3.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in3.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in3.a] = int64(v.loadFast(addr, in3.size))
				pc += 3
			case dLoadCmpBr:
				addr := uint64(regs[in.b] + in.imm)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a] = int64(v.loadFast(addr, in.size))
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				x, y := regs[in.b2], regs[in.c2]
				var r int64
				switch in.ck {
				case ckEq:
					r = b2i(x == y)
				case ckNe:
					r = b2i(x != y)
				case ckLt:
					r = b2i(x < y)
				default:
					r = b2i(x <= y)
				}
				regs[in.a2] = r
				if steps >= limit {
					pc += 2
					continue
				}
				steps++
				fused++
				in3 := &code[pc+2]
				cond := regs[in3.a]
				take := cond != 0
				if in3.op == dBz {
					take = cond == 0
				}
				if take {
					pc = int(in3.imm)
				} else {
					pc += 3
				}
			case dAddiLoadAdd:
				regs[in.a] = regs[in.b] + in.imm
				if steps >= limit {
					pc++
					continue
				}
				steps++
				fused++
				addr := uint64(regs[in.b2] + in.imm2)
				if sinkOn {
					v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: in.size2})
					if len(v.events) == cap(v.events) {
						v.flushEvents()
					}
				}
				loads++
				regs[in.a2] = int64(v.loadFast(addr, in.size2))
				if steps >= limit {
					pc += 2
					continue
				}
				steps++
				fused++
				in3 := &code[pc+2]
				regs[in3.a] = regs[in3.b] + regs[in3.c]
				pc += 3

			// ---- control transfers ----
			case dRet:
				val := regs[in.a]
				if f.entry {
					sync()
					return val, nil
				}
				if sinkOn {
					v.emit(Event{Kind: EvReturn, Fn: int32(f.fn)})
				}
				dst, ret, base := f.dst, f.ret, f.base
				v.frames = v.frames[:len(v.frames)-1]
				v.regs = v.regs[:base]
				pf := &v.frames[len(v.frames)-1]
				v.regs[pf.base+int(dst)] = val
				pf.pc = ret
				break inner
			case dCall, dCallInd:
				var target int32
				if in.op == dCall {
					target = in.fn
				} else {
					t := regs[in.d]
					if t < 0 || t >= int64(len(v.prog.Funcs)) {
						f.pc = pc
						sync()
						return 0, v.trap(*f, "indirect call to bad function index %d", t) //halo:hotalloc-ok cold trap exit: execution ends here
					}
					target = int32(t)
				}
				if len(v.frames) >= v.cfg.MaxDepth {
					f.pc = pc
					sync()
					return 0, v.trap(*f, "call stack overflow (%d frames)", len(v.frames)) //halo:hotalloc-ok cold trap exit: execution ends here
				}
				callee := &dp.funcs[target]
				if int(in.c) != callee.nparams {
					f.pc = pc
					sync()
					return 0, v.trap(*f, "call to %s with %d args, want %d",
						v.prog.Funcs[target].Name, in.c, callee.nparams) //halo:hotalloc-ok cold trap exit: execution ends here
				}
				newBase := len(v.regs)
				v.regs = append(v.regs, make([]int64, callee.nregs)...) //halo:hotalloc-ok append(s, make(...)...) extends in place; the compiler elides the temporary
				for i := 0; i < int(in.c); i++ {
					v.regs[newBase+i] = regs[int(in.b)+i]
				}
				v.frames = append(v.frames, frame{
					fn:   int(target),
					base: newBase,
					dst:  in.a,
					ret:  pc + 1,
					site: in.addr,
				})
				if sinkOn {
					v.emit(Event{Kind: EvCall, Site: in.addr, Fn: target})
				}
				break inner
			case dCallInline:
				// A lib call whose callee body was inlined at predecode. The
				// case mirrors dCallExt's shape — sync, one outlined call,
				// counter reload — so the replay machinery (including the
				// oracle's frame-depth trap) stays entirely off the hot
				// loop's code path.
				f.pc = pc
				sync()
				if err := v.replayInline(in, dp, regs); err != nil {
					return 0, err
				}
				steps, loads, stores = v.steps, v.loads, v.stores
				pc++
			case dCallExt:
				f.pc = pc
				sync()
				res, err := v.callExtern(f, in.addr, in.b, in.c, regs, isa.Extern(in.fn))
				// The extern may have unmapped, purged or recreated pages.
				v.tlbFlush()
				if err != nil {
					return 0, err
				}
				if v.halted {
					return res, nil
				}
				regs[in.a] = res
				pc++
			case dHalt:
				sync()
				return 0, nil
			default:
				npc, herr := dtab[in.op](v, in, regs, pc)
				if herr != nil {
					f.pc = pc
					sync()
					return 0, v.trap(*f, "%s", herr)
				}
				pc = npc
			}
		}
	}
}

// replayInline retires a predecode-inlined lib call: it executes the
// snapshot body against a zeroed scratch window, charging the exact steps,
// loads, stores and events the oracle's frame push/pop would, without
// growing v.frames or v.regs. The caller syncs the hot-loop counters into
// the VM before the call and reloads them after; every state transition
// here goes through v directly. Returns ErrMaxSteps when the budget
// expired mid-body and the oracle's depth trap when the frame stack is
// full. Kept out of runThreaded so the rare inline path does not bloat the
// hot loop's code footprint.
func (v *VM) replayInline(in *dinst, dp *Decoded, regs []int64) error {
	if len(v.frames) >= v.cfg.MaxDepth {
		return v.trap(v.frames[len(v.frames)-1], "call stack overflow (%d frames)", len(v.frames))
	}
	v.inlined++
	limit := v.cfg.MaxSteps
	sinkOn := v.sink != nil
	steps, loads, stores := v.steps, v.loads, v.stores
	defer func() { v.steps, v.loads, v.stores = steps, loads, stores }()
	body := dp.inlineBodies[in.fn]
	// Scratch register window for the inlined callee, zeroed below to match
	// the oracle's fresh frame; lives on this cold frame so runThreaded's
	// hot frame stays small.
	var inlineRegs [isa.MaxRegs]int64
	scratch := inlineRegs[:dp.funcs[in.fn].nregs]
	for i := 0; i < int(in.c); i++ {
		scratch[i] = regs[int(in.b)+i]
	}
	if sinkOn {
		v.emit(Event{Kind: EvCall, Site: in.addr, Fn: in.fn})
	}
	for bi := 0; bi < len(body); bi++ {
		if steps >= limit {
			return ErrMaxSteps
		}
		bin := &body[bi]
		steps++
		switch bin.op {
		case dConst:
			scratch[bin.a] = bin.imm
		case dMov:
			scratch[bin.a] = scratch[bin.b]
		case dAdd:
			scratch[bin.a] = scratch[bin.b] + scratch[bin.c]
		case dSub:
			scratch[bin.a] = scratch[bin.b] - scratch[bin.c]
		case dMul:
			scratch[bin.a] = scratch[bin.b] * scratch[bin.c]
		case dAnd:
			scratch[bin.a] = scratch[bin.b] & scratch[bin.c]
		case dOr:
			scratch[bin.a] = scratch[bin.b] | scratch[bin.c]
		case dXor:
			scratch[bin.a] = scratch[bin.b] ^ scratch[bin.c]
		case dShl:
			scratch[bin.a] = scratch[bin.b] << (uint64(scratch[bin.c]) & 63)
		case dShr:
			scratch[bin.a] = int64(uint64(scratch[bin.b]) >> (uint64(scratch[bin.c]) & 63))
		case dAddImm:
			scratch[bin.a] = scratch[bin.b] + bin.imm
		case dEq:
			scratch[bin.a] = b2i(scratch[bin.b] == scratch[bin.c])
		case dNe:
			scratch[bin.a] = b2i(scratch[bin.b] != scratch[bin.c])
		case dLt:
			scratch[bin.a] = b2i(scratch[bin.b] < scratch[bin.c])
		case dLe:
			scratch[bin.a] = b2i(scratch[bin.b] <= scratch[bin.c])
		case dLoad:
			addr := uint64(scratch[bin.b] + bin.imm)
			if sinkOn {
				v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: bin.size})
				if len(v.events) == cap(v.events) {
					v.flushEvents()
				}
			}
			loads++
			scratch[bin.a] = int64(v.loadFast(addr, bin.size))
		case dStore:
			addr := uint64(scratch[bin.b] + bin.imm)
			if sinkOn {
				v.events = append(v.events, Event{Kind: EvAccess, Addr: addr, Size: bin.size, Write: true})
				if len(v.events) == cap(v.events) {
					v.flushEvents()
				}
			}
			stores++
			v.storeFast(addr, bin.size, uint64(scratch[bin.a]))
		case dGroupSet:
			v.group.Set(int(bin.imm))
		case dGroupClr:
			v.group.Clear(int(bin.imm))
		case dRet:
			if sinkOn {
				v.emit(Event{Kind: EvReturn, Fn: in.fn})
			}
			regs[in.a] = scratch[bin.a]
		default: // dNop; anything else is excluded by inlineBody
		}
	}
	return nil
}
