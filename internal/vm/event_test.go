package vm

import (
	"reflect"
	"testing"

	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/prog"
)

// recordSink captures the raw event stream plus flush boundaries.
type recordSink struct {
	events  []Event
	batches []int
}

func (r *recordSink) ConsumeEvents(batch []Event) {
	r.events = append(r.events, batch...)
	r.batches = append(r.batches, len(batch))
}

// buildEventProgram makes a program with calls, accesses and allocations.
func buildEventProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := prog.NewBuilder("events")
	touch := b.Func("touch", 1)
	v := touch.ConstReg(5)
	touch.StoreWord(touch.Param(0), 0, v)
	r := touch.Reg()
	touch.LoadWord(r, touch.Param(0), 0)
	touch.Ret(r)

	f := b.Func("main", 0)
	size := f.ConstReg(32)
	p := f.Malloc(size)
	f.LoopN(10, func(prog.Reg) { f.Call("touch", p) })
	f.Free(p)
	f.RetConst(0)
	pr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func streamAt(t *testing.T, p *isa.Program, batchSize int) *recordSink {
	t.Helper()
	sink := &recordSink{}
	m := mem.NewMemory()
	if _, err := New(p, m, newBump(m), sink, Config{BatchSize: batchSize}).Run(); err != nil {
		t.Fatal(err)
	}
	return sink
}

// TestEventStreamBatchInvariance is the engine-level determinism contract:
// the concatenated stream is identical at every batch size, including
// per-event delivery (BatchSize 1).
func TestEventStreamBatchInvariance(t *testing.T) {
	p := buildEventProgram(t)
	want := streamAt(t, p, 1)
	if len(want.events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, size := range []int{2, 3, DefaultBatchSize} {
		got := streamAt(t, p, size)
		if !reflect.DeepEqual(got.events, want.events) {
			t.Fatalf("batch=%d: stream differs (%d vs %d events)", size, len(got.events), len(want.events))
		}
	}
}

// TestEventStreamFlushBounds checks that every delivered batch respects
// the configured capacity and that nothing is lost at the tail.
func TestEventStreamFlushBounds(t *testing.T) {
	p := buildEventProgram(t)
	sink := streamAt(t, p, 4)
	for i, n := range sink.batches {
		if n == 0 || n > 4 {
			t.Fatalf("batch %d has %d events, want 1..4", i, n)
		}
	}
	total := 0
	for _, n := range sink.batches {
		total += n
	}
	if total != len(sink.events) {
		t.Fatalf("batches sum to %d, stream has %d", total, len(sink.events))
	}
}

// TestEventStreamFlushedOnTrap ensures a trapping run still delivers every
// event emitted before the trap.
func TestEventStreamFlushedOnTrap(t *testing.T) {
	b := prog.NewBuilder("trap")
	f := b.Func("main", 0)
	size := f.ConstReg(8)
	p := f.Malloc(size)
	v := f.ConstReg(1)
	f.StoreWord(p, 0, v)
	z := f.ConstReg(0)
	r := f.Reg()
	f.Div(r, v, z) // traps
	f.Ret(r)
	pr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordSink{}
	m := mem.NewMemory()
	if _, err := New(pr, m, newBump(m), sink, Config{BatchSize: DefaultBatchSize}).Run(); err == nil {
		t.Fatal("no trap")
	}
	var allocs, stores int
	for _, ev := range sink.events {
		switch ev.Kind {
		case EvAlloc:
			allocs++
		case EvAccess:
			if ev.Write {
				stores++
			}
		}
	}
	if allocs != 1 || stores != 1 {
		t.Fatalf("pre-trap events not flushed: %d allocs, %d stores (stream %d)", allocs, stores, len(sink.events))
	}
}

// TestReplayMatchesDirectStream runs the same program once with a direct
// sink and once with the Replay shim over per-event hooks, asserting the
// shim reconstructs exactly the Hooks-era call sequence.
func TestReplayMatchesDirectStream(t *testing.T) {
	p := buildEventProgram(t)
	direct := streamAt(t, p, 3)

	var replayed []Event
	h := &recordHooks{
		onAccess: func(addr uint64, size uint8, write bool) {
			replayed = append(replayed, Event{Kind: EvAccess, Addr: addr, Size: size, Write: write})
		},
		onCall: func(site isa.Addr, callee int, fn *isa.Func) {
			replayed = append(replayed, Event{Kind: EvCall, Site: site, Fn: int32(callee)})
		},
		onRet: func(callee int, fn *isa.Func) {
			replayed = append(replayed, Event{Kind: EvReturn, Fn: int32(callee)})
		},
		onAlloc: func(ev AllocEvent) {
			replayed = append(replayed, Event{Kind: EvAlloc, AKind: ev.Kind, Addr: ev.Ptr, Old: ev.Old, Bytes: ev.Size, Site: ev.Site})
		},
	}
	m := mem.NewMemory()
	if _, err := New(p, m, newBump(m), NewReplay(p, h), Config{BatchSize: 5}).Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, direct.events) {
		t.Fatalf("replayed stream differs (%d vs %d events)", len(replayed), len(direct.events))
	}
}

// TestCombineSinks checks nil dropping and single-sink unwrapping.
func TestCombineSinks(t *testing.T) {
	if CombineSinks(nil, nil) != nil {
		t.Fatal("all-nil combine should be nil")
	}
	a := &recordSink{}
	if got := CombineSinks(nil, a); got != EventSink(a) {
		t.Fatalf("single sink not unwrapped: %T", got)
	}
	b := &recordSink{}
	multi := CombineSinks(a, b)
	multi.ConsumeEvents([]Event{{Kind: EvAccess, Addr: 1}})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("fan-out missed a sink: %d/%d", len(a.events), len(b.events))
	}
}

// TestCombineHooks checks the compatibility-shim combiner fast paths.
func TestCombineHooks(t *testing.T) {
	if CombineHooks(nil, nil) != nil {
		t.Fatal("all-nil combine should be nil")
	}
	n := 0
	h := &recordHooks{onAccess: func(uint64, uint8, bool) { n++ }}
	got := CombineHooks(nil, h)
	if got != Hooks(h) {
		t.Fatalf("single hook not unwrapped: %T", got)
	}
	both := CombineHooks(h, h)
	both.OnAccess(1, 8, false)
	if n != 2 {
		t.Fatalf("fan-out called %d times, want 2", n)
	}
	// The MultiHooks single-element fast path must still dispatch.
	one := MultiHooks{h}
	one.OnAccess(1, 8, false)
	one.OnAlloc(AllocEvent{})
	one.OnCall(0, 0, nil)
	one.OnReturn(0, nil)
	if n != 3 {
		t.Fatalf("single-element MultiHooks dispatched %d accesses, want 3", n)
	}
}

// TestNilSinkRunsBare ensures observation stays fully disabled with a nil
// sink (no buffer allocated, no flush attempted).
func TestNilSinkRunsBare(t *testing.T) {
	p := buildEventProgram(t)
	m := mem.NewMemory()
	v := New(p, m, newBump(m), nil, Config{})
	if v.events != nil {
		t.Fatal("event buffer allocated without a sink")
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
}
