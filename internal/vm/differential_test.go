package vm

import (
	"math/rand"
	"testing"

	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/prog"
)

// The differential harness: random well-defined programs run through the
// reference switch interpreter and the predecoded threaded dispatcher,
// which must agree on everything observable — result, error, retired-step
// and load/store counts, and the complete event stream — at any batch size
// and at any step budget (including budgets that expire between the two
// halves of a fused superinstruction).

// captureSink accumulates the complete event stream across flushes.
type captureSink struct{ events []Event }

func (c *captureSink) ConsumeEvents(batch []Event) {
	c.events = append(c.events, batch...)
}

const fuzzBufSize = 256

// genOps emits n random operations into f. The generated code is always
// well-defined: divisors are non-zero, memory accesses stay inside the
// buf/big scratch buffers, loops are bounded. Fusable idioms — the six
// pairs (const+add, cmp+branch, addi+load, load+add, const+store,
// load+store) and the three triples (const+add+load, load+cmp+branch,
// addi+load+add) — are emitted deliberately and repeatedly so
// superinstruction fusion triggers, and big spans tlbSize+ pages so
// direct-mapped TLB slot collisions (two pages, same index) occur.
func genOps(rng *rand.Rand, f *prog.FuncBuilder, temps []prog.Reg, buf, big prog.Reg, callees []string, n int) {
	rr := func() prog.Reg { return temps[rng.Intn(len(temps))] }
	off := func(size int64) int64 { return rng.Int63n(fuzzBufSize - size + 1) }
	nz := f.ConstReg(int64(rng.Intn(7)) + 1) // safe divisor
	for i := 0; i < n; i++ {
		switch rng.Intn(20) {
		case 0:
			f.Const(rr(), rng.Int63n(1<<20)-1<<19)
		case 1:
			f.Add(rr(), rr(), rr())
		case 2:
			f.Sub(rr(), rr(), rr())
		case 3:
			f.Mul(rr(), rr(), rr())
		case 4:
			if rng.Intn(2) == 0 {
				f.Div(rr(), rr(), nz)
			} else {
				f.Mod(rr(), rr(), nz)
			}
		case 5:
			f.AddImm(rr(), rr(), rng.Int63n(64)-32)
		case 6:
			sz := uint8(1 << rng.Intn(4))
			f.Load(rr(), buf, off(int64(sz)), sz)
		case 7:
			sz := uint8(1 << rng.Intn(4))
			f.Store(buf, off(int64(sz)), rr(), sz)
		case 8: // const+add, the canonical fused pair
			f.Const(rr(), rng.Int63n(100))
			f.Add(rr(), rr(), rr())
		case 9: // cmp+branch over a skipped op
			c := rr()
			switch rng.Intn(4) {
			case 0:
				f.Eq(c, rr(), rr())
			case 1:
				f.Ne(c, rr(), rr())
			case 2:
				f.Lt(c, rr(), rr())
			default:
				f.Le(c, rr(), rr())
			}
			skip := f.NewLabel()
			if rng.Intn(2) == 0 {
				f.Bz(c, skip)
			} else {
				f.Bnz(c, skip)
			}
			f.AddImm(rr(), rr(), 1)
			f.Bind(skip)
		case 10: // addi+load
			d := rr()
			f.AddImm(d, rr(), rng.Int63n(16))
			f.Load(rr(), buf, off(8), 8)
		case 11: // load+add
			f.Load(rr(), buf, off(8), 8)
			f.Add(rr(), rr(), rr())
		case 12: // const+store
			v := rr()
			f.Const(v, rng.Int63n(1<<16))
			f.Store(buf, off(8), v, 8)
		case 13: // load+store
			v := rr()
			f.Load(v, buf, off(4), 4)
			f.Store(buf, off(4), v, 4)
		case 14:
			if len(callees) > 0 {
				f.Mov(rr(), f.Call(callees[rng.Intn(len(callees))], rr(), rr()))
			} else {
				f.Xor(rr(), rr(), rr())
			}
		case 15: // const+add+load, the canonical fused triple
			f.Const(rr(), rng.Int63n(64))
			f.Add(rr(), rr(), rr())
			f.Load(rr(), buf, off(8), 8)
		case 16: // load+cmp+branch triple over a skipped op
			v := rr()
			f.Load(v, buf, off(8), 8)
			c := rr()
			switch rng.Intn(4) {
			case 0:
				f.Eq(c, v, rr())
			case 1:
				f.Ne(c, v, rr())
			case 2:
				f.Lt(c, v, rr())
			default:
				f.Le(c, v, rr())
			}
			skip := f.NewLabel()
			if rng.Intn(2) == 0 {
				f.Bz(c, skip)
			} else {
				f.Bnz(c, skip)
			}
			f.AddImm(rr(), rr(), 1)
			f.Bind(skip)
		case 17: // addi+load+add triple
			f.AddImm(rr(), rr(), rng.Int63n(16))
			f.Load(rr(), buf, off(8), 8)
			f.Add(rr(), rr(), rr())
		case 18: // TLB slot collision: two pages, same direct-mapped index
			const stride = tlbSize * mem.PageSize
			v := rr()
			f.Store(big, 0, v, 8)
			f.Store(big, stride, v, 8)
			f.Load(rr(), big, 0, 8)
			f.Load(rr(), big, stride, 8)
		default:
			f.Mov(rr(), f.RandConst(1000))
		}
	}
}

// fuzzBigSize spans the whole direct-mapped TLB plus one slack page, so
// stride-tlbSize*PageSize accesses collide in one slot.
const fuzzBigSize = (tlbSize+1)*mem.PageSize + 64

// genProgram builds a deterministic random program: two straight-line
// helpers, two lib leaf functions (one inline-eligible, one deliberately
// not — it divides, a trapping op the inliner must reject), and a main
// that mixes direct computation, loops, calls and memory traffic over a
// small scratch buffer plus a TLB-spanning big buffer.
func genProgram(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder("fuzz")

	{ // inline-eligible: lib, straight-line, tiny, no trapping ops
		h := b.LibFunc("leaf_inl", 2)
		r := h.Reg()
		h.Add(r, h.Param(0), h.Param(1))
		h.AddImm(r, r, rng.Int63n(16))
		h.Ret(r)
	}
	{ // not eligible: contains div (would trap with the callee's frame)
		h := b.LibFunc("leaf_div", 2)
		r := h.Reg()
		three := h.ConstReg(3)
		h.Div(r, h.Param(0), three)
		h.Add(r, r, h.Param(1))
		h.Ret(r)
	}

	for _, name := range []string{"h1", "h2"} {
		h := b.Func(name, 2)
		sz := h.ConstReg(fuzzBufSize)
		buf := h.Malloc(sz)
		bsz := h.ConstReg(fuzzBigSize)
		big := h.Malloc(bsz)
		temps := []prog.Reg{h.Param(0), h.Param(1)}
		for i := 0; i < 3; i++ {
			temps = append(temps, h.ConstReg(rng.Int63n(50)))
		}
		genOps(rng, h, temps, buf, big, []string{"leaf_inl", "leaf_div"}, 6+rng.Intn(10))
		h.Free(big)
		h.Free(buf)
		h.Ret(temps[rng.Intn(len(temps))])
	}

	f := b.Func("main", 0)
	sz := f.ConstReg(fuzzBufSize)
	buf := f.Malloc(sz)
	bsz := f.ConstReg(fuzzBigSize)
	big := f.Malloc(bsz)
	temps := make([]prog.Reg, 0, 6)
	for i := 0; i < 6; i++ {
		temps = append(temps, f.ConstReg(rng.Int63n(100)))
	}
	callees := []string{"h1", "h2", "leaf_inl", "leaf_div"}
	genOps(rng, f, temps, buf, big, callees, 8+rng.Intn(12))
	for l := 0; l < 2+rng.Intn(2); l++ {
		f.LoopN(2+rng.Int63n(4), func(prog.Reg) {
			genOps(rng, f, temps, buf, big, callees, 4+rng.Intn(8))
		})
	}
	f.Free(big)
	f.Free(buf)
	acc := f.Reg()
	f.Const(acc, 0)
	for _, r := range temps {
		f.Add(acc, acc, r)
	}
	f.Ret(acc)
	return b.MustBuild()
}

// runOutcome is everything observable about one execution.
type runOutcome struct {
	res    int64
	err    string
	steps  uint64
	loads  uint64
	stores uint64
	events []Event
}

func runEngine(p *isa.Program, mode DispatchMode, batch int, maxSteps uint64) runOutcome {
	m := mem.NewMemory()
	sink := &captureSink{}
	v := New(p, m, newBump(m), sink, Config{
		Seed: 99, Dispatch: mode, BatchSize: batch, MaxSteps: maxSteps,
	})
	res, err := v.Run()
	out := runOutcome{res: res, steps: v.Steps(), loads: v.Loads(), stores: v.Stores(), events: sink.events}
	if err != nil {
		out.err = err.Error()
	}
	return out
}

func diffOutcomes(t *testing.T, label string, ref, got runOutcome) {
	t.Helper()
	if got.res != ref.res || got.err != ref.err {
		t.Errorf("%s: result %d err %q, want %d %q", label, got.res, got.err, ref.res, ref.err)
	}
	if got.steps != ref.steps || got.loads != ref.loads || got.stores != ref.stores {
		t.Errorf("%s: steps/loads/stores %d/%d/%d, want %d/%d/%d",
			label, got.steps, got.loads, got.stores, ref.steps, ref.loads, ref.stores)
	}
	if len(got.events) != len(ref.events) {
		t.Errorf("%s: %d events, want %d", label, len(got.events), len(ref.events))
		return
	}
	for i := range got.events {
		if got.events[i] != ref.events[i] {
			t.Errorf("%s: event %d = %+v, want %+v", label, i, got.events[i], ref.events[i])
			return
		}
	}
}

// diffProgram checks both engines agree on a program at several batch
// sizes and step budgets (exercising mid-pair budget expiry).
func diffProgram(t *testing.T, p *isa.Program, seed int64) {
	t.Helper()
	ref := runEngine(p, DispatchSwitch, 1, 0)
	budgets := []uint64{0} // 0 = default (run to completion)
	if ref.steps > 4 {
		budgets = append(budgets, ref.steps-1, ref.steps/2, ref.steps/3+1, 7)
	}
	for _, ms := range budgets {
		r := ref
		if ms != 0 {
			r = runEngine(p, DispatchSwitch, 1, ms)
		}
		for _, batch := range []int{1, 64, 4096} {
			got := runEngine(p, DispatchThreaded, batch, ms)
			diffOutcomes(t, prettyLabel(seed, ms, batch), r, got)
		}
	}
}

func prettyLabel(seed int64, maxSteps uint64, batch int) string {
	return "seed=" + itoa(seed) + " maxSteps=" + itoa(int64(maxSteps)) + " batch=" + itoa(int64(batch))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestDispatchDifferential(t *testing.T) {
	pairs, triples, inlined := 0, 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		p := genProgram(seed)
		dp := Predecode(p)
		pairs += dp.FusedSites()
		triples += dp.TripleSites()
		inlined += dp.InlinedSites()
		diffProgram(t, p, seed)
	}
	// The property is vacuous for any optimisation the corpus never
	// triggers.
	if pairs == 0 {
		t.Fatal("no fused pairs across the differential corpus")
	}
	if triples == 0 {
		t.Fatal("no fused triples across the differential corpus")
	}
	if inlined == 0 {
		t.Fatal("no inlined call sites across the differential corpus")
	}
}

// FuzzDispatchDifferential drives the same comparison from the fuzzer:
// any seed must produce identical observable behaviour on both engines.
// The seed corpus is chosen so the generated programs hit triple-fusable
// sequences, inlinable leaf calls and TLB index-collision address
// patterns (genOps cases 15-18) as well as the original pair idioms.
func FuzzDispatchDifferential(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 12345, 31, 77, 4242, 98765} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffProgram(t, genProgram(seed), seed)
	})
}
