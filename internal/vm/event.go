// Batched event-stream engine. The VM appends one compact, fixed-size
// Event record per observable action (access, call, return, memory
// management) to a ring buffer and hands full batches to a single
// EventSink, replacing the per-event virtual call of the Hooks interface
// with one dynamic dispatch per batch. Consumers that care about
// throughput (the profiler, the cache hierarchy) implement EventSink
// directly; exotic per-event observers keep working through the Replay
// compatibility shim.
//
// Determinism contract: the event sequence a sink observes is exactly the
// execution order of the program, independent of the batch size. Batching
// changes only how many records arrive per ConsumeEvents call, never their
// order or content, so any deterministic consumer produces bit-identical
// results under any BatchSize (and under the Replay shim).
package vm

import (
	"halo/internal/isa"
	"halo/internal/obs"
)

// EventKind discriminates event records.
type EventKind uint8

// Event kinds, in the order the seed engine's Hooks methods were declared.
const (
	// EvAccess is a program load or store.
	EvAccess EventKind = iota
	// EvCall marks control transferring into an internal function.
	EvCall
	// EvReturn marks an internal function returning to its caller.
	EvReturn
	// EvAlloc is an intercepted memory-management call.
	EvAlloc
)

// Event is one fixed-size record of the execution event stream. Field use
// by kind:
//
//	EvAccess: Addr, Size, Write
//	EvCall:   Site (call instruction), Fn (callee index)
//	EvReturn: Fn (returning function index)
//	EvAlloc:  AKind, Addr (resulting pointer), Old (prior pointer for
//	          realloc/free), Bytes (requested size), Site (call site)
type Event struct {
	Kind  EventKind
	AKind AllocKind
	Size  uint8
	Write bool
	Fn    int32
	Site  isa.Addr
	Addr  uint64
	Old   uint64
	Bytes uint64
}

// Alloc converts an EvAlloc record back to the Hooks-era event struct.
func (e *Event) Alloc() AllocEvent {
	return AllocEvent{Kind: e.AKind, Ptr: e.Addr, Old: e.Old, Size: e.Bytes, Site: e.Site}
}

// EventSink consumes batches of events. The batch slice is owned by the VM
// and reused after the call returns; sinks must not retain it. Batches are
// delivered in execution order and are never empty.
type EventSink interface {
	ConsumeEvents(batch []Event)
}

// DefaultBatchSize is the event-buffer capacity when Config.BatchSize is
// zero. Large enough to amortise the dispatch, small enough to stay
// cache-resident (4096 records × 40 B = 160 KiB).
const DefaultBatchSize = 4096

// emit appends one event, flushing when the buffer fills. Callers have
// already checked v.sink != nil.
func (v *VM) emit(ev Event) {
	v.events = append(v.events, ev)
	if len(v.events) == cap(v.events) {
		v.flushEvents()
	}
}

// flushEvents delivers any buffered events to the sink. The VM flushes when
// the buffer fills and once when Run finishes (on success, trap, or budget
// exhaustion), so sinks always observe the complete stream. Engine metrics
// are sampled here, per batch, so the per-event paths stay untouched.
func (v *VM) flushEvents() {
	if v.sink == nil || len(v.events) == 0 {
		return
	}
	if obs.Enabled() {
		mEvents.Add(uint64(len(v.events)))
		mBatches.Inc()
		mBatchFill.Set(int64(len(v.events) * 100 / cap(v.events)))
	}
	v.sink.ConsumeEvents(v.events)
	v.events = v.events[:0]
}

// Replay adapts a per-event Hooks observer to the batched engine: it
// implements EventSink by replaying each record as the corresponding
// Hooks call. Prog resolves function indices back to *isa.Func for
// OnCall/OnReturn.
type Replay struct {
	Prog  *isa.Program
	Hooks Hooks
}

// NewReplay wraps a Hooks observer for use as a VM sink. A nil hook
// returns a nil sink (observation disabled).
func NewReplay(p *isa.Program, h Hooks) EventSink {
	if h == nil {
		return nil
	}
	return Replay{Prog: p, Hooks: h}
}

// ConsumeEvents implements EventSink.
func (r Replay) ConsumeEvents(batch []Event) {
	for i := range batch {
		ev := &batch[i]
		switch ev.Kind {
		case EvAccess:
			r.Hooks.OnAccess(ev.Addr, ev.Size, ev.Write)
		case EvCall:
			r.Hooks.OnCall(ev.Site, int(ev.Fn), r.Prog.Funcs[ev.Fn])
		case EvReturn:
			r.Hooks.OnReturn(int(ev.Fn), r.Prog.Funcs[ev.Fn])
		case EvAlloc:
			r.Hooks.OnAlloc(ev.Alloc())
		}
	}
}

// MultiSink fans batches out to several sinks in order.
type MultiSink []EventSink

// ConsumeEvents implements EventSink.
func (m MultiSink) ConsumeEvents(batch []Event) {
	if len(m) == 1 {
		m[0].ConsumeEvents(batch)
		return
	}
	for _, s := range m {
		s.ConsumeEvents(batch)
	}
}

// CombineSinks merges sinks, dropping nils and unwrapping the
// single-element case so one observer costs one dispatch per batch.
func CombineSinks(sinks ...EventSink) EventSink {
	out := make(MultiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
