// Package obs is the observability substrate shared by halod, the
// pipeline and the VM event engine: allocation-free counters, gauges and
// fixed-bucket histograms collected in a Registry that renders Prometheus
// text exposition, plus per-job stage spans (span.go) and build
// information (buildinfo.go).
//
// The design follows the repository's dense-structures discipline: every
// metric is registered once, up front, into a Registry (registration may
// allocate); the record path — Counter.Add, Gauge.Set, Histogram.Observe —
// touches only preallocated atomics and never allocates, locks or loops
// unboundedly. Hot loops (the VM interpreter, the profiler's per-event
// switch) are never instrumented per event; producers record once per
// batch, so the cost is a handful of atomic adds per ~4096 events.
//
// Two registries matter in practice: the package Default registry carries
// process-wide substrate metrics (VM event engine, worker pool, profiler
// ingest), and internal/service builds a per-server registry for the
// daemon's request, cache, job and store metrics. halod's GET /metrics
// renders both.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families in the exposition output.
type Kind uint8

// Metric kinds, named after their Prometheus TYPE strings.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair attached to a series at registration.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// renderLabels builds the canonical `a="b",c="d"` form, sorted by label
// name so series identity does not depend on argument order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	return b.String()
}

// series is one registered time series (or histogram, which expands to
// several series at render time).
type series struct {
	name   string
	labels string // canonical rendered label set, "" for none
	help   string
	kind   Kind
	read   func() float64 // counter and gauge value
	hist   *Histogram     // histogram state (kind == KindHistogram)
}

func (s *series) id() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry holds registered metrics and renders them. Registration is
// expected at construction time (it takes a lock and allocates); the
// returned metric handles are what the hot paths touch.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byID   map[string]*series
	help   map[string]string // family name -> first registered help string
	kind   map[string]Kind   // family name -> kind (must agree across series)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID: make(map[string]*series),
		help: make(map[string]string),
		kind: make(map[string]Kind),
	}
}

// Default is the process-wide registry substrate packages (vm, pool,
// profile) register into. Services render it alongside their own.
var Default = NewRegistry()

// enabled gates batch-grained recording by substrate producers (the VM
// event engine, the profiler). It exists so the overhead benchmark can
// compare instrumented and bare runs of the same binary; production code
// leaves it on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether substrate producers should record. Checked once
// per batch, never per event.
func Enabled() bool { return enabled.Load() }

// SetEnabled toggles substrate recording (see Enabled).
func SetEnabled(v bool) { enabled.Store(v) }

func (r *Registry) register(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := s.id()
	if _, dup := r.byID[id]; dup {
		panic(fmt.Sprintf("obs: duplicate series %s", id)) //halo:errfmt-ok duplicate registration at construction time is a programming error
	}
	if k, ok := r.kind[s.name]; ok && k != s.kind {
		panic(fmt.Sprintf("obs: family %s registered as both %s and %s", s.name, k, s.kind)) //halo:errfmt-ok kind clash at construction time is a programming error
	}
	if _, ok := r.help[s.name]; !ok {
		r.help[s.name] = s.help
		r.kind[s.name] = s.kind
	}
	r.byID[id] = s
	r.series = append(r.series, s)
}

// Counter registers and returns a monotonic counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: KindCounter, read: func() float64 { return float64(c.Value()) }})
	return c
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: KindGauge, read: g.Value})
	return g
}

// GaugeFunc registers a gauge whose value is sampled from fn at render
// time. fn must be safe to call from any goroutine and must not call back
// into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: KindGauge, read: fn})
}

// Histogram registers and returns a fixed-bucket histogram. bounds are the
// inclusive upper bucket bounds, ascending; nil selects DefLatencyBounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := newHistogram(bounds)
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: KindHistogram, hist: h})
	return h
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP/TYPE header
// per family, series sorted by label set within it.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	byFamily := make(map[string][]*series, len(r.help))
	for _, s := range r.series {
		byFamily[s.name] = append(byFamily[s.name], s)
	}
	names := make([]string, 0, len(byFamily))
	for name := range byFamily {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		family := byFamily[name]
		sort.Slice(family, func(i, j int) bool { return family[i].labels < family[j].labels })
		if help := r.help[name]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, r.kind[name])
		for _, s := range family {
			if s.kind == KindHistogram {
				s.hist.write(w, s.name, s.labels)
				continue
			}
			if s.labels == "" {
				fmt.Fprintf(w, "%s %v\n", s.name, s.read())
			} else {
				fmt.Fprintf(w, "%s{%s} %v\n", s.name, s.labels, s.read())
			}
		}
	}
}

// Snapshot returns every series' current value keyed by `name` or
// `name{labels}`. Histograms contribute their _count and _sum series. The
// map is freshly built; callers own it. This is the JSON-friendly view
// /v1/stats, expvar and halobench -json consume.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	ss := append([]*series(nil), r.series...)
	r.mu.Unlock()
	out := make(map[string]float64, len(ss))
	for _, s := range ss {
		if s.kind == KindHistogram {
			count, sum := s.hist.CountSum()
			suffix := ""
			if s.labels != "" {
				suffix = "{" + s.labels + "}"
			}
			out[s.name+"_count"+suffix] = float64(count)
			out[s.name+"_sum"+suffix] = sum
			continue
		}
		out[s.id()] = s.read()
	}
	return out
}
