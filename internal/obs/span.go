package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed pipeline stage inside a Trace. Offsets are relative to
// the trace's start, so a span list is self-contained and serialisable.
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Trace collects the stage spans of one job: each pipeline phase (profile
// ingest, grouping, selector identification, rewrite, the HDS grammar and
// set-packing stages) records when it ran and for how long. A nil *Trace
// is valid everywhere and records nothing, so pipeline code traces
// unconditionally and callers opt in by supplying a trace.
//
// Stages run sequentially within a job, but the mutex makes concurrent
// recording (e.g. ProfileN's fan-out) safe; span order is start order.
type Trace struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace; its clock starts now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now(), spans: make([]Span, 0, 16)}
}

var nopEnd = func() {}

// Span opens a named stage and returns the function that closes it:
//
//	defer tr.Span("group")()
//
// Safe on a nil trace (returns a shared no-op).
func (t *Trace) Span(name string) func() {
	if t == nil {
		return nopEnd
	}
	start := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{
			Name:    name,
			StartNs: start.Sub(t.t0).Nanoseconds(),
			DurNs:   end.Sub(start).Nanoseconds(),
		})
		t.mu.Unlock()
	}
}

// Spans returns the recorded spans in start order. The slice is a copy.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Span(nil), t.spans...)
	return out
}

// RenderSpans formats a span list as an aligned text block — the stage
// section appended to job reports. Returns "" for an empty list.
func RenderSpans(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("stage timings:\n")
	var total int64
	for _, s := range spans {
		total += s.DurNs
	}
	for _, s := range spans {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.DurNs) / float64(total)
		}
		fmt.Fprintf(&b, "  %-16s %12.3fms  %5.1f%%  (start +%.3fms)\n",
			s.Name, float64(s.DurNs)/1e6, pct, float64(s.StartNs)/1e6)
	}
	fmt.Fprintf(&b, "  %-16s %12.3fms\n", "total", float64(total)/1e6)
	return b.String()
}
