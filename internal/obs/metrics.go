package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterShards stripes hot counters across cache lines so concurrent
// workers (halod's job pool, the measurement harness) do not serialise on
// one contended line. 8 shards × 64 B = 512 B per counter.
const counterShards = 8

// shard picks a stripe for the calling goroutine. Goroutine stacks live in
// distinct allocations, so the address of a stack variable is a cheap,
// stable-per-goroutine discriminator — the same trick striped-counter
// libraries use. Correctness never depends on the distribution; a bad hash
// only costs contention.
func shard() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (counterShards - 1))
}

type padded struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonic, sharded, allocation-free counter. The zero value
// is usable, but counters should be obtained from a Registry so they
// render.
type Counter struct {
	v [counterShards]padded
}

// Inc adds one.
func (c *Counter) Inc() { c.v[shard()].n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v[shard()].n.Add(n) }

// Value sums the shards. The sum is not a consistent snapshot under
// concurrent writers, but is always a value the counter passed through.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.v {
		sum += c.v[i].n.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value (int64 semantics, rendered as a
// float). The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge as a float64.
func (g *Gauge) Value() float64 { return float64(g.v.Load()) }

// DefLatencyBounds are the default histogram bucket upper bounds, in
// seconds: 10 µs to 10 s, a 2.5×/4× ladder wide enough to hold both
// halod's ~100 µs cache-hit path and multi-second pipeline runs.
var DefLatencyBounds = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: lock-free, allocation-free
// observation into preallocated atomic bucket counts. Bounds are upper
// bucket limits; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds)) //halo:errfmt-ok invalid bucket layout at construction time is a programming error
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. The bucket scan is a bounded linear pass over
// ~20 floats — branch-predictable and allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// CountSum returns the observation count and value sum.
func (h *Histogram) CountSum() (uint64, float64) {
	return h.count.Load(), math.Float64frombits(h.sum.Load())
}

// write renders the histogram's cumulative buckets, sum and count in
// Prometheus exposition form.
func (h *Histogram) write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	count, sum := h.CountSum()
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %v\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %v\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, count)
	}
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
