package obs

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo is the build identity stamped into logs, `halo version` and
// halod's /healthz body, read once from the binary's embedded module info.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"build_time,omitempty"`
	Modified  bool   `json:"dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the process's build information. Fields missing from the
// embedded info (e.g. VCS data in a plain `go test` build) are empty.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Module: "halo", Version: "(devel)"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Path != "" {
			buildInfo.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		buildInfo.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders a one-line identity: "halo (devel) go1.24.0 [abc1234]".
func (b BuildInfo) String() string {
	s := fmt.Sprintf("%s %s %s", b.Module, b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if b.Modified {
			rev += "+dirty"
		}
		s += " [" + rev + "]"
	}
	return s
}
