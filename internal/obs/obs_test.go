package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "a gauge")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %v, want 40", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	count, sum := h.CountSum()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if math.Abs(sum-5.551) > 1e-9 {
		t.Fatalf("sum = %v, want 5.551", sum)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := newHistogram([]float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	count, sum := h.CountSum()
	if count != 8000 || math.Abs(sum-4000) > 1e-6 {
		t.Fatalf("count=%d sum=%v, want 8000 / 4000", count, sum)
	}
}

func TestRegistryExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", L("route", "/a"), L("class", "2xx"))
	c.Add(3)
	r.Counter("reqs_total", "requests", L("route", "/b"), L("class", "2xx")).Inc()
	r.GaugeFunc("queue_depth", "depth", func() float64 { return 7 })
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	// Labels sort by name; families carry one HELP/TYPE header each.
	for _, want := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\n",
		`reqs_total{class="2xx",route="/a"} 3`,
		`reqs_total{class="2xx",route="/b"} 1`,
		"# TYPE queue_depth gauge\nqueue_depth 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE reqs_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "x")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(5)
	h := r.Histogram("d_seconds", "d", []float64{1})
	h.Observe(0.25)
	snap := r.Snapshot()
	if snap["a_total"] != 5 {
		t.Errorf("snapshot a_total = %v", snap["a_total"])
	}
	if snap["d_seconds_count"] != 1 || snap["d_seconds_sum"] != 0.25 {
		t.Errorf("snapshot histogram = %v / %v", snap["d_seconds_count"], snap["d_seconds_sum"])
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	end := tr.Span("profile")
	time.Sleep(2 * time.Millisecond)
	end()
	tr.Span("group")()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "profile" || spans[1].Name != "group" {
		t.Fatalf("span order wrong: %+v", spans)
	}
	if spans[0].DurNs < int64(time.Millisecond) {
		t.Errorf("profile span too short: %d ns", spans[0].DurNs)
	}
	if spans[1].StartNs < spans[0].StartNs {
		t.Errorf("spans out of start order: %+v", spans)
	}
	if got := RenderSpans(spans); !strings.Contains(got, "profile") || !strings.Contains(got, "total") {
		t.Errorf("RenderSpans output incomplete:\n%s", got)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Span("anything")() // must not panic
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Module == "" || b.Version == "" {
		t.Fatalf("empty build info: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, b.Module) {
		t.Errorf("String() = %q missing module", s)
	}
}

// BenchmarkCounterParallel pins the record-path cost and proves it does
// not allocate.
func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter did not move")
	}
}

// BenchmarkHistogramObserve pins the Observe cost (bounded bucket scan +
// three atomics) and proves it does not allocate.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-4)
	}
}

func TestExpositionParseableFloats(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(9)
	h := r.Histogram("h_seconds", "h", nil)
	h.Observe(0.02)
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var val float64
		if n, err := fmt.Sscanf(strings.ReplaceAll(line, "} ", "} "), "%s %g", &name, &val); n != 2 || err != nil {
			t.Errorf("unparseable exposition line %q: %v", line, err)
		}
	}
}
