package service

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrapeMetrics fetches /metrics and parses the Prometheus text exposition
// strictly: HELP/TYPE headers are unique per family and precede that
// family's samples, and every sample line is `name{labels} value` with a
// parseable float value. It returns the samples keyed exactly as rendered.
func scrapeMetrics(t *testing.T, c *testClient) map[string]float64 {
	t.Helper()
	resp, err := http.Get(c.url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content-type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)

	samples := make(map[string]float64)
	typed := make(map[string]string) // family -> TYPE
	helped := make(map[string]bool)  // family -> HELP seen
	for ln, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			fam, _, _ := strings.Cut(rest, " ")
			if helped[fam] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, fam)
			}
			helped[fam] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam, kind, _ := strings.Cut(rest, " ")
			if _, dup := typed[fam]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, fam)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: bad TYPE %q for %s", ln+1, kind, fam)
			}
			typed[fam] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unexpected comment %q", ln+1, line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Errorf("line %d: value %q does not parse: %v", ln+1, val, err)
		}
		name, _, _ := strings.Cut(key, "{")
		fam := name
		if typed[fam] == "" {
			// Histogram samples carry a suffix on the family name.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suf); ok && typed[base] == "histogram" {
					fam = base
					break
				}
			}
		}
		if typed[fam] == "" {
			t.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		if _, dup := samples[key]; dup {
			t.Errorf("line %d: duplicate series %s", ln+1, key)
		}
		f, _ := strconv.ParseFloat(val, 64)
		samples[key] = f
	}
	return samples
}

// TestMetricsExposition runs one real optimize job through the server and
// checks the /metrics exposition: valid format (scrapeMetrics), wide
// coverage across the service, cache, pool and VM layers, and internally
// consistent histograms.
func TestMetricsExposition(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	progID, _ := c.uploadProgram("art")
	// No profiles named: the server trains in-process, so the VM, pool and
	// profiler substrate metrics in the Default registry all move.
	c.optimizeWait(OptimizeRequest{Program: progID, Config: OptimizeConfig{ProfileSeed: 3}})

	m := scrapeMetrics(t, c)

	if len(m) < 20 {
		t.Errorf("exposition has %d series, want >= 20", len(m))
	}
	for _, fam := range []string{
		// service layer
		`halo_http_requests_total{route="POST /v1/optimize"}`,
		`halo_http_responses_total{class="2xx",route="POST /v1/optimize"}`,
		`halo_http_request_seconds_count{route="POST /v1/optimize"}`,
		`halo_jobs_queued_total`,
		`halo_jobs_done_total`,
		`halo_jobs_failed_total`,
		`halo_jobs_running`,
		`halo_queue_depth`,
		`halo_workers`,
		// cache + store layer
		`halo_cache_hits_total`,
		`halo_cache_misses_total`,
		`halo_jobs_coalesced_total`,
		`halo_store_programs`,
		`halo_store_program_bytes`,
		`halo_store_artifacts`,
		// per-stage pipeline timings
		`halo_job_stage_seconds_count{stage="profile"}`,
		`halo_job_stage_seconds_count{stage="group"}`,
		`halo_job_stage_seconds_count{stage="rewrite"}`,
		// substrate (Default registry): VM event engine, pool, profiler
		`halo_vm_runs_total`,
		`halo_vm_events_total`,
		`halo_vm_batches_total`,
		`halo_pool_maps_total`,
		`halo_profile_events_total`,
	} {
		if _, ok := m[fam]; !ok {
			t.Errorf("exposition is missing %s", fam)
		}
	}

	if m[`halo_jobs_done_total`] < 1 {
		t.Errorf("halo_jobs_done_total = %v, want >= 1", m[`halo_jobs_done_total`])
	}
	if m[`halo_store_programs`] != 1 {
		t.Errorf("halo_store_programs = %v, want 1", m[`halo_store_programs`])
	}
	if m[`halo_vm_events_total`] <= 0 || m[`halo_profile_events_total`] <= 0 {
		t.Errorf("substrate counters did not move: vm=%v profile=%v",
			m[`halo_vm_events_total`], m[`halo_profile_events_total`])
	}
	if m[`halo_job_stage_seconds_count{stage="profile"}`] < 1 {
		t.Error("stage histogram recorded no profile stage")
	}

	// Histogram self-consistency: the +Inf bucket is cumulative, so it must
	// equal the series count.
	inf := m[`halo_http_request_seconds_bucket{route="POST /v1/optimize",le="+Inf"}`]
	count := m[`halo_http_request_seconds_count{route="POST /v1/optimize"}`]
	if inf != count || count < 1 {
		t.Errorf("histogram +Inf bucket %v != count %v", inf, count)
	}
}

// TestErrorPathsCounted drives the API's 4xx paths — malformed JSON,
// unknown IDs, oversized uploads — and asserts each returned its 4xx (never
// a 5xx or a panic) and incremented its route's error counter, verified by
// scraping /metrics.
func TestErrorPathsCounted(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxUploadBytes: 1024})

	if code, body := c.post("/v1/optimize", []byte("{not json"), nil); code != http.StatusBadRequest {
		t.Errorf("malformed optimize JSON: %d %s, want 400", code, body)
	}
	if code, _ := c.postJSON("/v1/optimize", OptimizeRequest{Program: "missing"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown program: %d, want 404", code)
	}
	if code, _ := c.get("/v1/programs/"+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Errorf("unknown program fetch: %d, want 404", code)
	}
	if code, _ := c.get("/v1/profiles/"+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Errorf("unknown profile fetch: %d, want 404", code)
	}
	if code, _ := c.get("/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code, _ := c.post("/v1/programs", make([]byte, 4096), nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: %d, want 413", code)
	}

	m := scrapeMetrics(t, c)
	for key, want := range map[string]float64{
		`halo_http_responses_total{class="4xx",route="POST /v1/optimize"}`:     2,
		`halo_http_responses_total{class="4xx",route="GET /v1/programs/{id}"}`: 1,
		`halo_http_responses_total{class="4xx",route="GET /v1/profiles/{id}"}`: 1,
		`halo_http_responses_total{class="4xx",route="GET /v1/jobs/{id}"}`:     1,
		`halo_http_responses_total{class="4xx",route="POST /v1/programs"}`:     1,
	} {
		if m[key] != want {
			t.Errorf("%s = %v, want %v", key, m[key], want)
		}
	}
	for key, v := range m {
		if strings.Contains(key, `class="5xx"`) && v != 0 {
			t.Errorf("server emitted 5xx responses: %s = %v", key, v)
		}
	}
}

// TestHealthzBuildInfo checks /healthz reports liveness plus the build.
func TestHealthzBuildInfo(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	var body struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if code, _ := c.get("/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if body.Status != "ok" {
		t.Errorf("healthz status = %q", body.Status)
	}
	if body.Go == "" || body.Version == "" {
		t.Errorf("healthz build info incomplete: %+v", body)
	}
}

// TestStatsMatchesMetrics pins the /v1/stats JSON view to the registry: the
// two endpoints must report the same counters.
func TestStatsMatchesMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	progID, _ := c.uploadProgram("art")
	req := OptimizeRequest{Program: progID, Config: OptimizeConfig{ProfileSeed: 5}}
	c.optimizeWait(req)
	c.optimizeWait(req) // cache hit

	var stats Stats
	if code, _ := c.get("/v1/stats", &stats); code != http.StatusOK {
		t.Fatal("stats fetch failed")
	}
	m := scrapeMetrics(t, c)
	for key, got := range map[string]uint64{
		"halo_jobs_queued_total":  stats.JobsQueued,
		"halo_jobs_done_total":    stats.JobsDone,
		"halo_jobs_failed_total":  stats.JobsFailed,
		"halo_cache_hits_total":   stats.CacheHits,
		"halo_cache_misses_total": stats.CacheMisses,
	} {
		if float64(got) != m[key] {
			t.Errorf("stats %s = %d, /metrics says %v", key, got, m[key])
		}
	}
	if stats.CacheHits < 1 || stats.JobsDone != 1 {
		t.Errorf("unexpected stats: %+v", stats)
	}
}
