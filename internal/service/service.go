// Package service is the optimization daemon behind cmd/halod: an HTTP/JSON
// server that turns the in-process pipeline into the paper's deployment
// story — a fleet of machines profiles its workloads, ships the profiles to
// a central optimizer, and fetches optimized artifacts back (the same shape
// BOLT-style post-link optimization takes in data centers).
//
// The server stores programs (internal/isa images) and profiles
// (internal/profstore images) content-addressed by SHA-256. Optimize
// requests become jobs executed by a bounded worker pool; completed
// artifacts — the group report, the rewritten binary, the allocator policy
// — land in a content-addressed cache keyed by (program hash, profile
// hashes, config), so a repeated request is a cache hit and an identical
// request in flight is coalesced onto the running job.
//
// Endpoints:
//
//	POST   /v1/programs          upload a program image        -> {id, ...}
//	GET    /v1/programs          list programs
//	GET    /v1/programs/{id}     download a program image
//	POST   /v1/profiles          upload a profile image        -> {id, ...}
//	GET    /v1/profiles          list profiles
//	GET    /v1/profiles/{id}     download a profile image
//	POST   /v1/profiles/merge    merge stored profiles         -> {id, ...}
//	POST   /v1/optimize          submit an optimize job        -> {job, ...}
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status; ?wait=1 blocks until settled
//	GET    /v1/jobs/{id}/report  group report (text)
//	GET    /v1/jobs/{id}/binary  rewritten program image
//	GET    /v1/jobs/{id}/policy  allocator policy (JSON)
//	GET    /v1/stats             counters
//	GET    /metrics              Prometheus text exposition
//	DELETE /v1/cache             drop cached artifacts
//	GET    /healthz              liveness + build info
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"halo/internal/isa"
	"halo/internal/obs"
	"halo/internal/pool"
	"halo/internal/profile"
	"halo/internal/profstore"
)

// Config parameterises the server.
type Config struct {
	// Workers is the optimization worker-pool size. Default 4.
	Workers int
	// QueueDepth bounds pending jobs; submissions beyond it are rejected
	// with 503. Default 256.
	QueueDepth int
	// MaxUploadBytes bounds program/profile uploads. Default 64 MiB.
	MaxUploadBytes int64
	// JobHistory bounds the retained job records: once exceeded, the
	// oldest settled jobs are evicted (their cached artifacts survive).
	// Default 4096.
	JobHistory int
	// TrainingWorkers bounds the per-job worker pool that runs a request's
	// concurrent training runs (OptimizeConfig.TrainingRuns) and the
	// job's layout-synthesis fan-out (core.Config.SynthesisWorkers). 0
	// sizes the pool so Workers jobs training at once stay at roughly one
	// runner per CPU (GOMAXPROCS / Workers, at least 1) — the two pool
	// levels multiply, so a per-CPU default here would oversubscribe the
	// machine by a factor of Workers.
	TrainingWorkers int
	// Logger receives structured access-log and job-lifecycle events. Nil
	// discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 4096
	}
	if c.TrainingWorkers <= 0 {
		c.TrainingWorkers = pool.DefaultWorkers() / c.Workers
		if c.TrainingWorkers < 1 {
			c.TrainingWorkers = 1
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Stats are the server's monotonic counters, read from the metrics
// registry — /v1/stats is a JSON view over the same series /metrics
// exposes, so the two can never disagree.
type Stats struct {
	Programs    int    `json:"programs"`
	Profiles    int    `json:"profiles"`
	JobsQueued  uint64 `json:"jobs_queued"`
	JobsDone    uint64 `json:"jobs_done"`
	JobsFailed  uint64 `json:"jobs_failed"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	Artifacts   int    `json:"artifacts"`
	Workers     int    `json:"workers"`
}

type programEntry struct {
	ID    string
	Image []byte
	Prog  *isa.Program
}

type profileEntry struct {
	ID       string
	Blob     []byte
	ProgName string
	Contexts int
	Accesses uint64
}

// Server implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux
	log *slog.Logger

	mu        sync.Mutex
	programs  map[string]*programEntry
	profiles  map[string]*profileEntry
	jobs      map[string]*Job
	jobOrder  []string
	artifacts map[string]*Artifact
	inflight  map[string]*Job // cache key -> running/queued job
	nextJob   int
	closed    bool

	queue chan *Job
	wg    sync.WaitGroup

	// Metrics (internal/obs): pre-registered at New, recorded lock-free.
	reg       *obs.Registry
	routes    map[string]*routeMetrics
	stageHist map[string]*obs.Histogram
	nextReq   atomic.Uint64

	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
	mCoalesced   *obs.Counter
	mJobsQueued  *obs.Counter
	mJobsDone    *obs.Counter
	mJobsFailed  *obs.Counter
	gJobsRunning *obs.Gauge
}

// New starts a server and its worker pool. Callers must Close it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		programs:  make(map[string]*programEntry),
		profiles:  make(map[string]*profileEntry),
		jobs:      make(map[string]*Job),
		artifacts: make(map[string]*Artifact),
		inflight:  make(map[string]*Job),
		queue:     make(chan *Job, cfg.QueueDepth),
	}
	mux := http.NewServeMux()
	var patterns []string
	handle := func(pattern string, h http.HandlerFunc) {
		patterns = append(patterns, pattern)
		mux.HandleFunc(pattern, h)
	}
	handle("POST /v1/programs", s.handleProgramUpload)
	handle("GET /v1/programs", s.handleProgramList)
	handle("GET /v1/programs/{id}", s.handleProgramGet)
	handle("POST /v1/profiles", s.handleProfileUpload)
	handle("GET /v1/profiles", s.handleProfileList)
	handle("GET /v1/profiles/{id}", s.handleProfileGet)
	handle("POST /v1/profiles/merge", s.handleProfileMerge)
	handle("POST /v1/optimize", s.handleOptimize)
	handle("GET /v1/jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("GET /v1/jobs/{id}/report", s.handleJobReport)
	handle("GET /v1/jobs/{id}/binary", s.handleJobBinary)
	handle("GET /v1/jobs/{id}/policy", s.handleJobPolicy)
	handle("GET /v1/stats", s.handleStats)
	handle("GET /metrics", s.handleMetrics)
	handle("DELETE /v1/cache", s.handleCacheFlush)
	handle("GET /healthz", s.handleHealthz)
	s.mux = mux
	s.initMetrics(patterns)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// handleHealthz reports liveness plus the build the daemon is running.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	b := obs.Build()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"version":  b.Version,
		"go":       b.GoVersion,
		"revision": b.Revision,
	})
}

// Close stops accepting jobs and waits for the worker pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Server) statsLocked() Stats {
	return Stats{
		Programs:    len(s.programs),
		Profiles:    len(s.profiles),
		JobsQueued:  s.mJobsQueued.Value(),
		JobsDone:    s.mJobsDone.Value(),
		JobsFailed:  s.mJobsFailed.Value(),
		CacheHits:   s.mCacheHits.Value(),
		CacheMisses: s.mCacheMisses.Value(),
		Coalesced:   s.mCoalesced.Value(),
		Artifacts:   len(s.artifacts),
		Workers:     s.cfg.Workers,
	}
}

// FlushCache drops every cached artifact (not the jobs that produced them).
func (s *Server) FlushCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.artifacts = make(map[string]*Artifact)
}

// hashID content-addresses a blob.
func hashID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// --- blob uploads and downloads ----------------------------------------

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxUploadBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	if int64(len(data)) > s.cfg.MaxUploadBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
		return nil, false
	}
	return data, true
}

func (s *Server) handleProgramUpload(w http.ResponseWriter, r *http.Request) {
	img, ok := s.readBody(w, r)
	if !ok {
		return
	}
	prog, err := isa.Decode(img)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid program image: %v", err)
		return
	}
	id := hashID(img)
	s.mu.Lock()
	if _, dup := s.programs[id]; !dup {
		s.programs[id] = &programEntry{ID: id, Image: img, Prog: prog}
	}
	s.mu.Unlock()
	st := prog.Stat()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":    id,
		"name":  prog.Name,
		"bytes": len(img),
		"funcs": st.Funcs,
		"insts": st.Insts,
	})
}

func (s *Server) handleProgramList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.programs))
	for _, e := range sortedValues(s.programs, func(e *programEntry) string { return e.ID }) {
		out = append(out, map[string]any{"id": e.ID, "name": e.Prog.Name, "bytes": len(e.Image)})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProgramGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	e := s.programs[r.PathValue("id")]
	s.mu.Unlock()
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown program %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(e.Image)
}

func (s *Server) handleProfileUpload(w http.ResponseWriter, r *http.Request) {
	blob, ok := s.readBody(w, r)
	if !ok {
		return
	}
	prof, err := profstore.Decode(blob)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid profile image: %v", err)
		return
	}
	writeProfileEntry(w, s.storeProfile(blob, prof))
}

// storeProfile stores an already-validated profile blob, deduplicating by
// hash; prof is the blob's decoded form, consulted only for metadata.
func (s *Server) storeProfile(blob []byte, prof *profile.Profile) *profileEntry {
	id := hashID(blob)
	entry := &profileEntry{
		ID:       id,
		Blob:     blob,
		ProgName: prof.ProgName,
		Contexts: len(prof.Contexts),
		Accesses: prof.TotalAccesses,
	}
	s.mu.Lock()
	if prev, dup := s.profiles[id]; dup {
		entry = prev
	} else {
		s.profiles[id] = entry
	}
	s.mu.Unlock()
	return entry
}

func writeProfileEntry(w http.ResponseWriter, e *profileEntry) {
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       e.ID,
		"prog":     e.ProgName,
		"bytes":    len(e.Blob),
		"contexts": e.Contexts,
		"accesses": e.Accesses,
	})
}

func (s *Server) handleProfileList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.profiles))
	for _, e := range sortedValues(s.profiles, func(e *profileEntry) string { return e.ID }) {
		out = append(out, map[string]any{"id": e.ID, "prog": e.ProgName, "bytes": len(e.Blob)})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	e := s.profiles[r.PathValue("id")]
	s.mu.Unlock()
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown profile %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(e.Blob)
}

func (s *Server) handleProfileMerge(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Profiles []string `json:"profiles"`
		Coverage float64  `json:"coverage"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad merge request: %v", err)
		return
	}
	if len(req.Profiles) == 0 {
		httpError(w, http.StatusBadRequest, "merge request names no profiles")
		return
	}
	if req.Coverage == 0 {
		req.Coverage = profstore.DefaultCoverage
	}
	blobs := make([][]byte, 0, len(req.Profiles))
	s.mu.Lock()
	for _, id := range req.Profiles {
		e := s.profiles[id]
		if e == nil {
			s.mu.Unlock()
			httpError(w, http.StatusNotFound, "unknown profile %q", id)
			return
		}
		blobs = append(blobs, e.Blob)
	}
	s.mu.Unlock()
	blob, merged, err := mergeBlobs(req.Coverage, blobs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "merge: %v", err)
		return
	}
	writeProfileEntry(w, s.storeProfile(blob, merged))
}

// mergeBlobs decodes fresh copies of the given profile images and merges
// them into a new image, returned alongside its decoded form. Unlike the
// optimize path, a single input is still merged, which canonicalises its
// context numbering.
func mergeBlobs(coverage float64, blobs [][]byte) ([]byte, *profile.Profile, error) {
	profs, err := decodeProfiles(blobs)
	if err != nil {
		return nil, nil, err
	}
	merged, err := profstore.MergeWithCoverage(coverage, profs...)
	if err != nil {
		return nil, nil, err
	}
	img, err := profstore.Encode(merged)
	if err != nil {
		return nil, nil, err
	}
	return img, merged, nil
}

// --- helpers ------------------------------------------------------------

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// sortedValues returns map values ordered by a key function.
func sortedValues[M ~map[string]V, V any](m M, key func(V) string) []V {
	out := make([]V, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}
