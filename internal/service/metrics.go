package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"halo/internal/obs"
)

// reqIDKey keys the per-request ID the middleware assigns in the request
// context. The ID follows the request into any job it creates, so one job's
// lifecycle can be traced from access log to completion log.
type reqIDKey struct{}

// ReqID returns the request ID the server middleware assigned, or "".
func ReqID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// routeMetrics is the pre-registered series set for one mux route. Every
// route registers at New(), so the record path touches only atomics — never
// the registry lock and never an allocation.
type routeMetrics struct {
	requests *obs.Counter
	class2xx *obs.Counter
	class4xx *obs.Counter
	class5xx *obs.Counter
	latency  *obs.Histogram
}

// jobStages are the pipeline phases whose per-job durations feed the
// halo_job_stage_seconds histograms. Registered up front: lazy registration
// from runJob would order registry.mu after s.mu, deadlocking against the
// store gauges (which read under s.mu while the registry renders).
var jobStages = [...]string{"profile", "group", "identify", "rewrite", "lower"}

// initMetrics builds the server's registry: one series set per route plus an
// "other" catch-all, the cache/job counters, the store gauges, and the
// per-stage latency histograms. Must run before the worker pool starts.
func (s *Server) initMetrics(patterns []string) {
	s.reg = obs.NewRegistry()
	s.routes = make(map[string]*routeMetrics, len(patterns)+1)
	for _, p := range append(patterns, "other") {
		route := obs.L("route", p)
		s.routes[p] = &routeMetrics{
			requests: s.reg.Counter("halo_http_requests_total",
				"HTTP requests dispatched, by mux route", route),
			class2xx: s.reg.Counter("halo_http_responses_total",
				"HTTP responses, by route and status class", route, obs.L("class", "2xx")),
			class4xx: s.reg.Counter("halo_http_responses_total",
				"HTTP responses, by route and status class", route, obs.L("class", "4xx")),
			class5xx: s.reg.Counter("halo_http_responses_total",
				"HTTP responses, by route and status class", route, obs.L("class", "5xx")),
			latency: s.reg.Histogram("halo_http_request_seconds",
				"HTTP request latency by route", obs.DefLatencyBounds, route),
		}
	}

	s.mCacheHits = s.reg.Counter("halo_cache_hits_total",
		"optimize requests served from the artifact cache")
	s.mCacheMisses = s.reg.Counter("halo_cache_misses_total",
		"optimize requests that queued a new job")
	s.mCoalesced = s.reg.Counter("halo_jobs_coalesced_total",
		"optimize requests coalesced onto an identical in-flight job")
	s.mJobsQueued = s.reg.Counter("halo_jobs_queued_total",
		"jobs accepted onto the worker queue")
	s.mJobsDone = s.reg.Counter("halo_jobs_done_total",
		"jobs that completed and published an artifact")
	s.mJobsFailed = s.reg.Counter("halo_jobs_failed_total",
		"jobs whose pipeline returned an error")
	s.gJobsRunning = s.reg.Gauge("halo_jobs_running",
		"jobs currently executing on the worker pool")

	s.reg.GaugeFunc("halo_queue_depth",
		"jobs waiting in the worker queue", func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("halo_workers",
		"optimize worker-pool size", func() float64 { return float64(s.cfg.Workers) })

	// Store gauges read under s.mu at scrape time; the lock order is always
	// registry.mu -> s.mu, and nothing registers while holding s.mu.
	s.reg.GaugeFunc("halo_store_programs",
		"program images stored", s.lockedGauge(func() float64 { return float64(len(s.programs)) }))
	s.reg.GaugeFunc("halo_store_profiles",
		"profile images stored", s.lockedGauge(func() float64 { return float64(len(s.profiles)) }))
	s.reg.GaugeFunc("halo_store_artifacts",
		"cached optimization artifacts", s.lockedGauge(func() float64 { return float64(len(s.artifacts)) }))
	s.reg.GaugeFunc("halo_store_program_bytes",
		"bytes of stored program images", s.lockedGauge(func() float64 {
			var n int
			for _, e := range s.programs {
				n += len(e.Image)
			}
			return float64(n)
		}))
	s.reg.GaugeFunc("halo_store_profile_bytes",
		"bytes of stored profile images", s.lockedGauge(func() float64 {
			var n int
			for _, e := range s.profiles {
				n += len(e.Blob)
			}
			return float64(n)
		}))
	s.reg.GaugeFunc("halo_store_artifact_bytes",
		"bytes of cached artifacts (binary, policy, report)", s.lockedGauge(func() float64 {
			var n int
			for _, a := range s.artifacts {
				n += len(a.Binary) + len(a.Policy) + len(a.Report)
			}
			return float64(n)
		}))

	s.stageHist = make(map[string]*obs.Histogram, len(jobStages))
	for _, stage := range jobStages {
		s.stageHist[stage] = s.reg.Histogram("halo_job_stage_seconds",
			"per-job pipeline stage duration", obs.DefLatencyBounds, obs.L("stage", stage))
	}
}

// lockedGauge wraps a read that must hold the server lock.
func (s *Server) lockedGauge(read func() float64) func() float64 {
	return func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return read()
	}
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP dispatches to the API through the metrics and logging
// middleware: it assigns the request ID, dispatches, and records the route's
// series off the pattern the mux matched (set on the request during
// dispatch), so instrumentation never re-parses paths.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := fmt.Sprintf("r-%06d", s.nextReq.Add(1))
	r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	route := r.Pattern
	rm := s.routes[route]
	if rm == nil {
		route = "other"
		rm = s.routes[route]
	}
	if obs.Enabled() {
		rm.requests.Inc()
		switch {
		case status >= 500:
			rm.class5xx.Inc()
		case status >= 400:
			rm.class4xx.Inc()
		default:
			rm.class2xx.Inc()
		}
		rm.latency.ObserveSince(start)
	}
	s.log.Info("http",
		"req", id, "method", r.Method, "path", r.URL.Path,
		"route", route, "status", status,
		"dur_ms", float64(time.Since(start).Microseconds())/1e3)
}

// handleMetrics serves the Prometheus text exposition: the server's own
// registry followed by the process-wide default registry (VM, pool and
// profiler substrate metrics). Family names never overlap, so concatenation
// is a valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	obs.Default.WritePrometheus(w)
}
