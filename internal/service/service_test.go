package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"halo/internal/core"
	"halo/internal/isa"
	"halo/internal/profstore"
	"halo/internal/workloads"
)

// testClient wraps the raw HTTP interactions the e2e tests repeat.
type testClient struct {
	t   *testing.T
	url string
}

func newTestServer(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &testClient{t: t, url: ts.URL}
}

func (c *testClient) post(path string, body []byte, out any) (int, string) {
	c.t.Helper()
	resp, err := http.Post(c.url+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("POST %s: bad JSON %q: %v", path, data, err)
		}
	}
	return resp.StatusCode, string(data)
}

func (c *testClient) postJSON(path string, req any, out any) (int, string) {
	c.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	return c.post(path, body, out)
}

func (c *testClient) get(path string, out any) (int, []byte) {
	c.t.Helper()
	resp, err := http.Get(c.url + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("GET %s: bad JSON %q: %v", path, data, err)
		}
	}
	return resp.StatusCode, data
}

// uploadProgram builds a workload at test scale and uploads its image.
func (c *testClient) uploadProgram(name string) (string, *isa.Program) {
	c.t.Helper()
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	img, err := p.Encode()
	if err != nil {
		c.t.Fatal(err)
	}
	var resp struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	if code, body := c.post("/v1/programs", img, &resp); code != http.StatusOK {
		c.t.Fatalf("program upload: %d %s", code, body)
	}
	if resp.Name != name {
		c.t.Fatalf("uploaded program name = %q, want %q", resp.Name, name)
	}
	return resp.ID, p
}

// uploadProfile profiles the program in-process at the given seed (as a
// training machine would) and uploads the encoded profile.
func (c *testClient) uploadProfile(p *isa.Program, seed uint64) string {
	c.t.Helper()
	prof, err := core.Profile(p, core.Config{ProfileSeed: seed})
	if err != nil {
		c.t.Fatal(err)
	}
	blob, err := profstore.Encode(prof)
	if err != nil {
		c.t.Fatal(err)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if code, body := c.post("/v1/profiles", blob, &resp); code != http.StatusOK {
		c.t.Fatalf("profile upload: %d %s", code, body)
	}
	return resp.ID
}

// optimizeWait submits an optimize request and waits for the job to settle.
func (c *testClient) optimizeWait(req OptimizeRequest) JobStatus {
	c.t.Helper()
	var st JobStatus
	code, body := c.postJSON("/v1/optimize", req, &st)
	if code != http.StatusOK && code != http.StatusAccepted {
		c.t.Fatalf("optimize: %d %s", code, body)
	}
	if code, _ := c.get("/v1/jobs/"+st.ID+"?wait=1", &st); code != http.StatusOK {
		c.t.Fatalf("job wait: %d", code)
	}
	if st.State != "done" {
		c.t.Fatalf("job %s state = %s (%s)", st.ID, st.State, st.Error)
	}
	return st
}

// TestServiceEndToEnd is the tentpole's acceptance flow: profile two
// workloads at two seeds each (client side, as a training fleet would),
// upload everything, merge per workload on the server, optimize through
// the running server, and verify the served artifacts against the local
// OptimizeFromProfile path.
func TestServiceEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4})

	for _, name := range []string{"art", "povray"} {
		t.Run(name, func(t *testing.T) {
			progID, prog := c.uploadProgram(name)
			profA := c.uploadProfile(prog, 3)
			profB := c.uploadProfile(prog, 5)

			// Server-side merge of the two training runs.
			var merged struct {
				ID   string `json:"id"`
				Prog string `json:"prog"`
			}
			code, body := c.postJSON("/v1/profiles/merge",
				map[string]any{"profiles": []string{profA, profB}}, &merged)
			if code != http.StatusOK {
				t.Fatalf("merge: %d %s", code, body)
			}
			if merged.Prog != name {
				t.Fatalf("merged profile program = %q, want %q", merged.Prog, name)
			}

			// Optimize with the merged profile through the server.
			st := c.optimizeWait(OptimizeRequest{Program: progID, Profiles: []string{merged.ID}})
			if st.Result == nil || st.Result.Groups == 0 || st.Result.Selectors == 0 {
				t.Fatalf("served result has no policy: %+v", st.Result)
			}

			// The served artifacts must decode and match the local
			// OptimizeFromProfile run over the same merged profile. The
			// served report carries an appended stage-timings section the
			// local GroupReport does not.
			_, servedReport := c.get("/v1/jobs/"+st.ID+"/report", nil)
			report, _, hasStages := bytes.Cut(servedReport, []byte("\nstage timings:\n"))
			if !hasStages {
				t.Error("served report has no stage timings section")
			}
			_, binary := c.get("/v1/jobs/"+st.ID+"/binary", nil)
			var pol PolicyDoc
			if code, _ := c.get("/v1/jobs/"+st.ID+"/policy", &pol); code != http.StatusOK {
				t.Fatalf("policy fetch: %d", code)
			}
			rewritten, err := isa.Decode(binary)
			if err != nil {
				t.Fatalf("served binary does not decode: %v", err)
			}
			if rewritten.Name != name {
				t.Fatalf("served binary is %q, want %q", rewritten.Name, name)
			}

			profLocalA, err := core.Profile(prog, core.Config{ProfileSeed: 3})
			if err != nil {
				t.Fatal(err)
			}
			profLocalB, err := core.Profile(prog, core.Config{ProfileSeed: 5})
			if err != nil {
				t.Fatal(err)
			}
			mergedLocal, err := profstore.Merge(profLocalA, profLocalB)
			if err != nil {
				t.Fatal(err)
			}
			optLocal, err := core.OptimizeFromProfile(prog, mergedLocal, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := string(report), optLocal.GroupReport(); got != want {
				t.Errorf("served report differs from local pipeline:\n--- served\n%s\n--- local\n%s", got, want)
			}
			if st.Result.Groups != len(optLocal.Groups) {
				t.Errorf("served %d groups, local %d", st.Result.Groups, len(optLocal.Groups))
			}
			if pol.NumBits != optLocal.Rewrite.NumBits || len(pol.Selectors) != len(optLocal.BitSelectors) {
				t.Errorf("served policy (%d bits, %d selectors) differs from local (%d, %d)",
					pol.NumBits, len(pol.Selectors), optLocal.Rewrite.NumBits, len(optLocal.BitSelectors))
			}

			// A repeated identical request is served from the artifact
			// cache, deterministically.
			st2 := c.optimizeWait(OptimizeRequest{Program: progID, Profiles: []string{merged.ID}})
			if !st2.Cached {
				t.Fatalf("repeated request was not a cache hit: %+v", st2)
			}
			if st2.Key != st.Key {
				t.Fatalf("repeated request keyed differently: %s vs %s", st2.Key, st.Key)
			}
			_, report2 := c.get("/v1/jobs/"+st2.ID+"/report", nil)
			if !bytes.Equal(servedReport, report2) {
				t.Fatal("cached artifact differs from original")
			}
		})
	}

	var stats Stats
	if code, _ := c.get("/v1/stats", &stats); code != http.StatusOK {
		t.Fatal("stats fetch failed")
	}
	if stats.CacheHits < 2 {
		t.Errorf("cache hits = %d, want >= 2", stats.CacheHits)
	}
	if stats.JobsFailed != 0 {
		t.Errorf("jobs failed = %d", stats.JobsFailed)
	}
}

// TestServiceConcurrentOptimize drives 16 concurrent optimize requests (8+
// distinct cache keys per program) through a pool of 8 workers.
func TestServiceConcurrentOptimize(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 8})

	type target struct {
		progID string
		seed   uint64
	}
	var targets []target
	for _, name := range []string{"art", "povray"} {
		progID, _ := c.uploadProgram(name)
		for seed := uint64(1); seed <= 8; seed++ {
			targets = append(targets, target{progID, seed})
		}
	}
	if len(targets) < 16 {
		t.Fatalf("only %d targets", len(targets))
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(targets))
	for _, tgt := range targets {
		wg.Add(1)
		go func(tgt target) {
			defer wg.Done()
			// No profiles named: the server runs the training workload
			// itself, so every request is real pipeline work.
			var st JobStatus
			code, body := c.postJSON("/v1/optimize", OptimizeRequest{
				Program: tgt.progID,
				Config:  OptimizeConfig{ProfileSeed: tgt.seed},
			}, &st)
			if code != http.StatusOK && code != http.StatusAccepted {
				errs <- fmt.Errorf("optimize: %d %s", code, body)
				return
			}
			if code, _ := c.get("/v1/jobs/"+st.ID+"?wait=1", &st); code != http.StatusOK {
				errs <- fmt.Errorf("job wait: %d", code)
				return
			}
			if st.State != "done" {
				errs <- fmt.Errorf("job %s: %s (%s)", st.ID, st.State, st.Error)
				return
			}
			if st.Result == nil || st.Result.Groups == 0 {
				errs <- fmt.Errorf("job %s: empty result", st.ID)
			}
		}(tgt)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := s.Stats()
	if stats.JobsDone < uint64(len(targets)) {
		t.Errorf("jobs done = %d, want >= %d", stats.JobsDone, len(targets))
	}
	if stats.JobsFailed != 0 {
		t.Errorf("jobs failed = %d", stats.JobsFailed)
	}
}

// TestServiceCoalescing checks that identical requests either coalesce onto
// one in-flight job or hit the cache — the pipeline runs at most once.
func TestServiceCoalescing(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	progID, _ := c.uploadProgram("art")

	req := OptimizeRequest{Program: progID, Config: OptimizeConfig{ProfileSeed: 42}}
	const n = 6
	var wg sync.WaitGroup
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys[i] = c.optimizeWait(req).Key
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("request %d keyed %s, want %s", i, keys[i], keys[0])
		}
	}
	stats := s.Stats()
	if stats.JobsDone != 1 {
		t.Errorf("pipeline ran %d times for %d identical requests, want 1", stats.JobsDone, n)
	}
	if stats.CacheHits+stats.Coalesced != n-1 {
		t.Errorf("hits+coalesced = %d+%d, want %d", stats.CacheHits, stats.Coalesced, n-1)
	}
}

// TestServiceValidation covers the API's error paths.
func TestServiceValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	artID, artProg := c.uploadProgram("art")
	povID, povProg := c.uploadProgram("povray")
	artProf := c.uploadProfile(artProg, 3)
	povProf := c.uploadProfile(povProg, 3)

	if code, _ := c.post("/v1/programs", []byte("not a program"), nil); code != http.StatusBadRequest {
		t.Errorf("garbage program upload: %d, want 400", code)
	}
	if code, _ := c.post("/v1/profiles", []byte("not a profile"), nil); code != http.StatusBadRequest {
		t.Errorf("garbage profile upload: %d, want 400", code)
	}
	if code, _ := c.postJSON("/v1/optimize", OptimizeRequest{Program: "missing"}, nil); code != http.StatusNotFound {
		t.Errorf("optimize of unknown program: %d, want 404", code)
	}
	if code, _ := c.postJSON("/v1/optimize",
		OptimizeRequest{Program: artID, Profiles: []string{"missing"}}, nil); code != http.StatusNotFound {
		t.Errorf("optimize with unknown profile: %d, want 404", code)
	}
	if code, body := c.postJSON("/v1/optimize",
		OptimizeRequest{Program: artID, Profiles: []string{povProf}}, nil); code != http.StatusBadRequest {
		t.Errorf("cross-program optimize: %d %s, want 400", code, body)
	}
	if code, body := c.postJSON("/v1/profiles/merge",
		map[string]any{"profiles": []string{artProf, povProf}}, nil); code != http.StatusBadRequest {
		t.Errorf("cross-program merge: %d %s, want 400", code, body)
	}
	if code, _ := c.get("/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	for _, bad := range []OptimizeConfig{{Coverage: -1}, {Coverage: 2}, {MaxGroups: -3}} {
		if code, body := c.postJSON("/v1/optimize",
			OptimizeRequest{Program: artID, Profiles: []string{artProf}, Config: bad}, nil); code != http.StatusBadRequest {
			t.Errorf("bad config %+v: %d %s, want 400", bad, code, body)
		}
	}
	if code, _ := c.get("/v1/programs/"+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Errorf("unknown program fetch: %d, want 404", code)
	}
	if code, _ := c.get("/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
	_ = povID
}

// TestSingleProfileCoverageApplies guards the single-profile optimize
// path: the request's coverage must re-filter the uploaded profile's
// graph, not silently keep the uploader's filtering.
func TestSingleProfileCoverageApplies(t *testing.T) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	prof, err := core.Profile(p, core.Config{ProfileSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := profstore.Encode(prof)
	if err != nil {
		t.Fatal(err)
	}
	def, err := decodeAndMerge(OptimizeConfig{}, [][]byte{blob})
	if err != nil {
		t.Fatal(err)
	}
	if def.Graph.NumNodes() != prof.Graph.NumNodes() {
		t.Fatalf("default coverage changed the graph: %d vs %d nodes",
			def.Graph.NumNodes(), prof.Graph.NumNodes())
	}
	full, err := decodeAndMerge(OptimizeConfig{Coverage: 1.0}, [][]byte{blob})
	if err != nil {
		t.Fatal(err)
	}
	if full.Graph.NumNodes() <= def.Graph.NumNodes() {
		t.Fatalf("coverage 1.0 kept %d nodes, default kept %d; expected more",
			full.Graph.NumNodes(), def.Graph.NumNodes())
	}
}

// TestJobHistoryBounded checks settled jobs are evicted past the limit.
func TestJobHistoryBounded(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, JobHistory: 4})
	progID, prog := c.uploadProgram("art")
	profID := c.uploadProfile(prog, 3)
	req := OptimizeRequest{Program: progID, Profiles: []string{profID}}

	c.optimizeWait(req) // real run
	for i := 0; i < 10; i++ {
		c.optimizeWait(req) // cache hits, each still a job record
	}
	s.mu.Lock()
	jobs, order := len(s.jobs), len(s.jobOrder)
	s.mu.Unlock()
	if jobs > 4 || order > 4 {
		t.Fatalf("job history not bounded: %d jobs, %d order entries", jobs, order)
	}
	// The artifact cache must survive eviction.
	if got := c.optimizeWait(req); !got.Cached {
		t.Fatal("artifact lost with job eviction")
	}
}

// TestServiceCacheFlush checks DELETE /v1/cache forces recomputation.
func TestServiceCacheFlush(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	progID, prog := c.uploadProgram("art")
	profID := c.uploadProfile(prog, 3)
	req := OptimizeRequest{Program: progID, Profiles: []string{profID}}

	first := c.optimizeWait(req)
	if first.Cached {
		t.Fatal("first request cannot be a cache hit")
	}
	if got := c.optimizeWait(req); !got.Cached {
		t.Fatal("second request should hit the cache")
	}
	httpReq, _ := http.NewRequest(http.MethodDelete, c.url+"/v1/cache", nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	third := c.optimizeWait(req)
	if third.Cached {
		t.Fatal("post-flush request should recompute")
	}
	if s.Stats().JobsDone != 2 {
		t.Errorf("jobs done = %d, want 2", s.Stats().JobsDone)
	}
}

// TestServiceTrainingRuns exercises the server-side concurrent training
// path: a request asking for several training runs must produce the same
// artifact at any training-pool width, must match the equivalent
// client-side profile-then-merge request, and must key the cache
// separately from a single-run request.
func TestServiceTrainingRuns(t *testing.T) {
	artifactsAt := func(trainWorkers int) (single, multi []byte) {
		t.Helper()
		_, c := newTestServer(t, Config{Workers: 2, TrainingWorkers: trainWorkers})
		progID, _ := c.uploadProgram("art")

		one := c.optimizeWait(OptimizeRequest{
			Program: progID,
			Config:  OptimizeConfig{ProfileSeed: 3},
		})
		many := c.optimizeWait(OptimizeRequest{
			Program: progID,
			Config:  OptimizeConfig{ProfileSeed: 3, TrainingRuns: 3},
		})
		if one.Key == many.Key {
			t.Fatal("training_runs must participate in the cache key")
		}
		if many.Cached {
			t.Fatal("multi-run request cannot hit the single-run cache entry")
		}
		_, singleBin := c.get("/v1/jobs/"+one.ID+"/binary", nil)
		_, multiBin := c.get("/v1/jobs/"+many.ID+"/binary", nil)
		return singleBin, multiBin
	}

	serialSingle, serialMulti := artifactsAt(1)
	parallelSingle, parallelMulti := artifactsAt(8)
	if !bytes.Equal(serialSingle, parallelSingle) {
		t.Fatal("single-run artifact depends on training workers")
	}
	if !bytes.Equal(serialMulti, parallelMulti) {
		t.Fatal("multi-run artifact depends on training workers")
	}
	if len(serialMulti) == 0 {
		t.Fatal("multi-run artifact is empty")
	}

	// The server's multi-run artifact must equal the client-side path:
	// profile each seed locally, upload, and optimize from the profiles.
	_, c := newTestServer(t, Config{Workers: 2})
	progID, p := c.uploadProgram("art")
	var profIDs []string
	for seed := uint64(3); seed <= 5; seed++ {
		profIDs = append(profIDs, c.uploadProfile(p, seed))
	}
	st := c.optimizeWait(OptimizeRequest{Program: progID, Profiles: profIDs})
	_, clientBin := c.get("/v1/jobs/"+st.ID+"/binary", nil)
	if !bytes.Equal(clientBin, serialMulti) {
		t.Fatalf("server-side training (%d bytes) differs from client-side merge (%d bytes)",
			len(serialMulti), len(clientBin))
	}

	// Cache-key normalization: training_runs is ignored when profiles are
	// named, and 1 is the single-run path — equivalent requests must share
	// one artifact instead of spuriously missing the cache.
	withRuns := c.optimizeWait(OptimizeRequest{
		Program: progID, Profiles: profIDs,
		Config: OptimizeConfig{TrainingRuns: 3},
	})
	if withRuns.Key != st.Key || !withRuns.Cached {
		t.Fatalf("profiles+training_runs missed the cache: key %s vs %s, cached %v",
			withRuns.Key, st.Key, withRuns.Cached)
	}
	zero := c.optimizeWait(OptimizeRequest{Program: progID, Config: OptimizeConfig{ProfileSeed: 3}})
	one := c.optimizeWait(OptimizeRequest{
		Program: progID,
		Config:  OptimizeConfig{ProfileSeed: 3, TrainingRuns: 1},
	})
	if one.Key != zero.Key || !one.Cached {
		t.Fatalf("training_runs 1 vs 0 missed the cache: key %s vs %s, cached %v",
			one.Key, zero.Key, one.Cached)
	}
}
