package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"halo/internal/core"
	"halo/internal/obs"
	"halo/internal/policy"
	"halo/internal/profile"
	"halo/internal/profstore"
)

// OptimizeConfig is the request-level pipeline configuration. Zero values
// take the paper's defaults throughout (internal/core). All fields
// participate in the artifact-cache key, so two requests hit the same
// cache entry exactly when their configurations are identical.
type OptimizeConfig struct {
	// ProfileSeed drives the training run when the server profiles the
	// program itself (no profiles named in the request).
	ProfileSeed uint64 `json:"profile_seed"`
	// TrainingRuns is the number of independent server-side training runs
	// (seeds ProfileSeed, +1, …) profiled concurrently on the server's
	// training pool and merged before grouping. 0 or 1 means a single run.
	// Ignored when the request names uploaded profiles.
	TrainingRuns     int     `json:"training_runs"`
	AffinityDistance uint64  `json:"affinity_distance"`
	MaxObjectSize    uint64  `json:"max_object_size"`
	Coverage         float64 `json:"coverage"`
	MinWeight        uint64  `json:"min_weight"`
	MaxGroupMembers  int     `json:"max_group_members"`
	MergeTol         float64 `json:"merge_tol"`
	GroupThreshold   float64 `json:"group_threshold"`
	MaxGroups        int     `json:"max_groups"`
}

// validate rejects values the pipeline cannot take. Zero means "use the
// default" throughout and is always valid.
func (c OptimizeConfig) validate() error {
	if c.Coverage < 0 || c.Coverage > 1 {
		return fmt.Errorf("coverage %v out of [0,1]", c.Coverage)
	}
	if c.GroupThreshold < 0 || c.MergeTol < 0 {
		return fmt.Errorf("negative group_threshold or merge_tol")
	}
	if c.MaxGroupMembers < 0 || c.MaxGroups < 0 {
		return fmt.Errorf("negative max_group_members or max_groups")
	}
	if c.TrainingRuns < 0 || c.TrainingRuns > maxTrainingRuns {
		return fmt.Errorf("training_runs %d out of [0,%d]", c.TrainingRuns, maxTrainingRuns)
	}
	return nil
}

// maxTrainingRuns bounds server-side training fan-out per job, so one
// request cannot monopolise the daemon.
const maxTrainingRuns = 64

func (c OptimizeConfig) coreConfig() core.Config {
	var cfg core.Config
	cfg.ProfileSeed = c.ProfileSeed
	cfg.Profile.AffinityDistance = c.AffinityDistance
	cfg.Profile.MaxObjectSize = c.MaxObjectSize
	cfg.Profile.Coverage = c.Coverage
	cfg.Group.MinWeight = c.MinWeight
	cfg.Group.MaxGroupMembers = c.MaxGroupMembers
	cfg.Group.MergeTol = c.MergeTol
	cfg.Group.GroupThreshold = c.GroupThreshold
	cfg.Group.MaxGroups = c.MaxGroups
	return cfg
}

// OptimizeRequest is the POST /v1/optimize body. Profiles are optional:
// none makes the server run the training workload itself; several are
// merged (deterministically) before grouping.
type OptimizeRequest struct {
	Program  string         `json:"program"`
	Profiles []string       `json:"profiles,omitempty"`
	Config   OptimizeConfig `json:"config"`
}

// cacheKey content-addresses a request: program hash, sorted profile
// hashes, and the full configuration.
func (r OptimizeRequest) cacheKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "program=%s\n", r.Program)
	profs := append([]string(nil), r.Profiles...)
	// Merging is order-independent, so the key must be too.
	sort.Strings(profs)
	for _, p := range profs {
		fmt.Fprintf(h, "profile=%s\n", p)
	}
	cfg := r.Config
	// TrainingRuns is ignored when the request names profiles, and 1 takes
	// the same single-run path as 0; normalize so equivalent requests
	// share one artifact instead of spuriously missing the cache.
	if len(r.Profiles) > 0 || cfg.TrainingRuns == 1 {
		cfg.TrainingRuns = 0
	}
	img, _ := json.Marshal(cfg) // fixed field order, no omitempty
	h.Write(img)
	return hex.EncodeToString(h.Sum(nil))
}

// Artifact is a completed optimization, cached content-addressed.
type Artifact struct {
	Key       string
	Program   string   // program hash
	Profiles  []string // profile hashes (empty: server-side training run)
	Groups    int
	Selectors int
	NumBits   int
	Inserted  int
	Dropped   int
	Report    string
	Binary    []byte // rewritten program image
	Policy    []byte // PolicyDoc JSON
	Elapsed   time.Duration
	Stages    []obs.Span // per-stage pipeline timings
}

// PolicyDoc is the allocator policy document served for finished jobs —
// the same document `halo opt` writes and `halo run -alloc halo -policy`
// consumes (internal/policy), so artifacts fetched from the daemon feed
// straight into the CLI.
type PolicyDoc = policy.Doc

// PolicySel is one lowered selector.
type PolicySel = policy.Sel

// Job tracks one optimize request through the worker pool.
type Job struct {
	ID        string
	ReqID     string // request ID of the submitting HTTP request
	Key       string
	State     string // "queued", "running", "done", "failed"
	Cached    bool
	Coalesced bool
	Err       string
	Created   time.Time

	req  OptimizeRequest
	done chan struct{} // closed when the job settles
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID        string         `json:"id"`
	State     string         `json:"state"`
	Key       string         `json:"key"`
	Cached    bool           `json:"cached"`
	Coalesced bool           `json:"coalesced,omitempty"`
	Error     string         `json:"error,omitempty"`
	Result    *ResultSummary `json:"result,omitempty"`
}

// ResultSummary carries the artifact's headline numbers; the heavyweight
// artifacts hang off the /v1/jobs/{id}/... endpoints.
type ResultSummary struct {
	Groups      int        `json:"groups"`
	Selectors   int        `json:"selectors"`
	NumBits     int        `json:"num_bits"`
	Inserted    int        `json:"inserted"`
	Dropped     int        `json:"dropped_conjs"`
	BinaryBytes int        `json:"binary_bytes"`
	ElapsedSec  float64    `json:"elapsed_sec"`
	Stages      []obs.Span `json:"stages,omitempty"`
}

// handleOptimize validates a request, consults the artifact cache and the
// in-flight table, and otherwise queues a job on the worker pool.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad optimize request: %v", err)
		return
	}
	if err := req.Config.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad optimize config: %v", err)
		return
	}
	s.mu.Lock()
	prog := s.programs[req.Program]
	if prog == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown program %q", req.Program)
		return
	}
	for _, id := range req.Profiles {
		pe := s.profiles[id]
		if pe == nil {
			s.mu.Unlock()
			httpError(w, http.StatusNotFound, "unknown profile %q", id)
			return
		}
		if pe.ProgName != prog.Prog.Name {
			s.mu.Unlock()
			httpError(w, http.StatusBadRequest, "profile %s is for program %q, not %q",
				id, pe.ProgName, prog.Prog.Name)
			return
		}
	}
	key := req.cacheKey()

	// Cache hit: settle the job immediately.
	if _, ok := s.artifacts[key]; ok {
		job := s.newJobLocked(req, key)
		job.ReqID = ReqID(r.Context())
		job.State = "done"
		job.Cached = true
		close(job.done)
		s.mCacheHits.Inc()
		status := s.jobStatusLocked(job)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, status)
		return
	}
	// Identical request already in flight: coalesce onto it.
	if running := s.inflight[key]; running != nil {
		s.mCoalesced.Inc()
		status := s.jobStatusLocked(running)
		status.Coalesced = true
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, status)
		return
	}
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	job := s.newJobLocked(req, key)
	job.ReqID = ReqID(r.Context())
	select {
	case s.queue <- job:
	default:
		delete(s.jobs, job.ID)
		s.jobOrder = s.jobOrder[:len(s.jobOrder)-1]
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.QueueDepth)
		return
	}
	s.inflight[key] = job
	s.mCacheMisses.Inc()
	s.mJobsQueued.Inc()
	status := s.jobStatusLocked(job)
	s.mu.Unlock()
	s.log.Info("job queued",
		"job", job.ID, "req", job.ReqID, "program", req.Program, "profiles", len(req.Profiles))
	writeJSON(w, http.StatusAccepted, status)
}

func (s *Server) newJobLocked(req OptimizeRequest, key string) *Job {
	s.nextJob++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextJob),
		Key:     key,
		State:   "queued",
		Created: time.Now(),
		req:     req,
		done:    make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	// Bound the retained history: evict the oldest settled jobs, skipping
	// (never evicting) queued/running ones. Cached artifacts are keyed
	// separately and survive eviction.
	if excess := len(s.jobOrder) - s.cfg.JobHistory; excess > 0 {
		kept := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			j := s.jobs[id]
			if excess > 0 && (j.State == "done" || j.State == "failed") {
				delete(s.jobs, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		s.jobOrder = kept
	}
	return job
}

func (s *Server) jobStatusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:        job.ID,
		State:     job.State,
		Key:       job.Key,
		Cached:    job.Cached,
		Coalesced: job.Coalesced,
		Error:     job.Err,
	}
	if job.State == "done" {
		if a := s.artifacts[job.Key]; a != nil {
			st.Result = &ResultSummary{
				Groups:      a.Groups,
				Selectors:   a.Selectors,
				NumBits:     a.NumBits,
				Inserted:    a.Inserted,
				Dropped:     a.Dropped,
				BinaryBytes: len(a.Binary),
				ElapsedSec:  a.Elapsed.Seconds(),
				Stages:      a.Stages,
			}
		}
	}
	return st
}

// worker drains the job queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes the pipeline for one job and publishes its artifact.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	job.State = "running"
	prog := s.programs[job.req.Program]
	blobs := make([][]byte, 0, len(job.req.Profiles))
	for _, id := range job.req.Profiles {
		if pe := s.profiles[id]; pe != nil {
			blobs = append(blobs, pe.Blob)
		}
	}
	s.mu.Unlock()

	s.gJobsRunning.Add(1)
	s.log.Info("job start", "job", job.ID, "req", job.ReqID, "program", job.req.Program)
	start := time.Now()
	artifact, err := buildArtifact(prog, job.req, blobs, s.cfg.TrainingWorkers)
	elapsed := time.Since(start)
	s.gJobsRunning.Add(-1)
	if err == nil && obs.Enabled() {
		for _, sp := range artifact.Stages {
			if h := s.stageHist[sp.Name]; h != nil {
				h.Observe(float64(sp.DurNs) / 1e9)
			}
		}
	}

	s.mu.Lock()
	delete(s.inflight, job.Key)
	if err != nil {
		job.State = "failed"
		job.Err = err.Error()
		s.mJobsFailed.Inc()
	} else {
		artifact.Key = job.Key
		artifact.Elapsed = elapsed
		s.artifacts[job.Key] = artifact
		job.State = "done"
		s.mJobsDone.Inc()
	}
	close(job.done)
	s.mu.Unlock()

	if err != nil {
		s.log.Warn("job failed",
			"job", job.ID, "req", job.ReqID, "err", err, "dur_ms", elapsed.Milliseconds())
	} else {
		s.log.Info("job done",
			"job", job.ID, "req", job.ReqID, "groups", artifact.Groups,
			"selectors", artifact.Selectors, "dur_ms", elapsed.Milliseconds())
	}
}

// buildArtifact runs the pipeline: decode (or record) a profile, merge if
// several, group, identify, rewrite, and package the artifacts. It runs
// outside the server lock; everything it reads is immutable (program
// entries, profile blobs) and everything it mutates is freshly decoded.
func buildArtifact(prog *programEntry, req OptimizeRequest, blobs [][]byte, trainWorkers int) (*Artifact, error) {
	if prog == nil {
		return nil, fmt.Errorf("program disappeared")
	}
	cfg := req.Config.coreConfig()
	// Synthesis fan-out shares the per-job bound the training pool uses,
	// so Workers jobs synthesising at once stay at roughly one runner per
	// CPU. Output is worker-count-invariant; only wall-clock changes.
	cfg.SynthesisWorkers = trainWorkers
	// Every job is traced; the spans land in the artifact (and from there
	// in job status, the report, and the stage histograms).
	tr := obs.NewTrace()
	cfg.Trace = tr

	var opt *core.Optimized
	var err error
	if len(blobs) == 0 {
		// No profiles: the server runs the training workload itself —
		// several seeds concurrently on the shared pool when the request
		// asks for more than one, merged deterministically before grouping.
		if runs := req.Config.TrainingRuns; runs > 1 {
			prof, err := core.ProfileN(prog.Prog, cfg, runs, trainWorkers)
			if err != nil {
				return nil, fmt.Errorf("training runs: %w", err)
			}
			opt, err = core.OptimizeFromProfile(prog.Prog, prof, cfg)
			if err != nil {
				return nil, fmt.Errorf("optimize: %w", err)
			}
		} else if opt, err = core.Optimize(prog.Prog, cfg); err != nil {
			return nil, fmt.Errorf("optimize: %w", err)
		}
	} else {
		// Decode fresh copies: the pipeline mutates context group
		// assignments, so cached blobs must never share decoded state.
		// Decoding and merging stands in for the training run, so it takes
		// the "profile" slot in the stage trace.
		endProfile := tr.Span("profile")
		prof, err := decodeAndMerge(req.Config, blobs)
		endProfile()
		if err != nil {
			return nil, err
		}
		prof.Prog = prog.Prog
		opt, err = core.OptimizeFromProfile(prog.Prog, prof, cfg)
		if err != nil {
			return nil, fmt.Errorf("optimize: %w", err)
		}
	}

	binary, err := opt.Rewrite.Prog.Encode()
	if err != nil {
		return nil, fmt.Errorf("encoding rewritten binary: %w", err)
	}
	pol := PolicyDoc{
		Program: prog.Prog.Name,
		NumBits: opt.Rewrite.NumBits,
		Sites:   map[string]int{},
	}
	for site, bit := range opt.Rewrite.SiteBits {
		pol.Sites[site.String()] = bit
	}
	for _, sel := range opt.BitSelectors {
		pol.Selectors = append(pol.Selectors, PolicySel{Group: sel.Group, Conj: sel.Conj})
	}
	polJSON, err := json.MarshalIndent(pol, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("encoding policy: %w", err)
	}
	return &Artifact{
		Program:   req.Program,
		Profiles:  append([]string(nil), req.Profiles...),
		Groups:    len(opt.Groups),
		Selectors: len(opt.BitSelectors),
		NumBits:   opt.Rewrite.NumBits,
		Inserted:  opt.Rewrite.Inserted,
		Dropped:   opt.DroppedConjs,
		Report:    opt.GroupReport(),
		Binary:    binary,
		Policy:    polJSON,
		Stages:    tr.Spans(),
	}, nil
}

func decodeAndMerge(cfg OptimizeConfig, blobs [][]byte) (*profile.Profile, error) {
	profs, err := decodeProfiles(blobs)
	if err != nil {
		return nil, err
	}
	if len(profs) == 1 {
		// Nothing to merge, but the request's coverage must still apply:
		// the uploaded image carries the uploader's filtered graph.
		p := profs[0]
		if cfg.Coverage != 0 {
			p.Graph = p.RawGraph.Filter(cfg.Coverage)
		}
		return p, nil
	}
	coverage := cfg.Coverage
	if coverage == 0 {
		coverage = profstore.DefaultCoverage
	}
	merged, err := profstore.MergeWithCoverage(coverage, profs...)
	if err != nil {
		return nil, fmt.Errorf("merging profiles: %w", err)
	}
	return merged, nil
}

// decodeProfiles decodes fresh profile copies from stored blobs.
func decodeProfiles(blobs [][]byte) ([]*profile.Profile, error) {
	profs := make([]*profile.Profile, 0, len(blobs))
	for _, blob := range blobs {
		p, err := profstore.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("decoding profile: %w", err)
		}
		profs = append(profs, p)
	}
	return profs, nil
}

// --- job endpoints ------------------------------------------------------

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	job := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if job == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return job
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		out = append(out, s.jobStatusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	if wait := r.URL.Query().Get("wait"); wait != "" && wait != "0" && wait != "false" {
		select {
		case <-job.done:
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away")
			return
		case <-time.After(5 * time.Minute):
			httpError(w, http.StatusGatewayTimeout, "job still running")
			return
		}
	}
	s.mu.Lock()
	status := s.jobStatusLocked(job)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// jobArtifact resolves a settled job's artifact, reporting the right HTTP
// error for unsettled or failed jobs.
func (s *Server) jobArtifact(w http.ResponseWriter, r *http.Request) *Artifact {
	job := s.lookupJob(w, r)
	if job == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch job.State {
	case "failed":
		httpError(w, http.StatusConflict, "job failed: %s", job.Err)
		return nil
	case "done":
		if a := s.artifacts[job.Key]; a != nil {
			return a
		}
		httpError(w, http.StatusGone, "artifact evicted; resubmit the request")
		return nil
	default:
		httpError(w, http.StatusConflict, "job is %s; poll /v1/jobs/%s?wait=1", job.State, job.ID)
		return nil
	}
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	if a := s.jobArtifact(w, r); a != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(a.Report))
		if stages := obs.RenderSpans(a.Stages); stages != "" {
			w.Write([]byte("\n" + stages))
		}
	}
}

func (s *Server) handleJobBinary(w http.ResponseWriter, r *http.Request) {
	if a := s.jobArtifact(w, r); a != nil {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(a.Binary)
	}
}

func (s *Server) handleJobPolicy(w http.ResponseWriter, r *http.Request) {
	if a := s.jobArtifact(w, r); a != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(a.Policy)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.statsLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	s.FlushCache()
	writeJSON(w, http.StatusOK, map[string]string{"status": "cache flushed"})
}
