package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// analyzer models the FreeBench trace analyser: a parse phase reads a
// stream of instruction records — ALU, memory, and branch operations, each
// allocated from its own direct parse_* call site and appended to one
// global sequence — followed by repeated analysis passes. The dependence
// pass touches only ALU and memory records; the branch-prediction pass
// touches only branch records. Since the record kinds interleave in
// allocation order, each pass wastes most of every cache line under a
// size-segregated allocator; grouping {ALU, memory} apart from {branch}
// packs what each pass actually reads.
func init() {
	register(Workload{
		Name: "analyzer",
		Description: "FreeBench analyzer: interleaved ALU/mem/branch " +
			"records, kind-filtered analysis passes",
		Build:     buildAnalyzer,
		TestScale: 2600,
		RefScale:  15000,
	})
}

// Layouts (all record kinds share next@0 and kind@8).
//
//	alu (40B):    0 next, 8 kind=1, 16 dst, 24 src, 32 latency
//	mem (56B):    0 next, 8 kind=2, 16 addr, 24 width, 32 latency
//	branch (32B): 0 next, 8 kind=3, 16 taken
const (
	anNext = 0
	anKind = 8
	anF1   = 16
	anF2   = 24
	anF3   = 32

	anGlobSeq = 0
)

func buildAnalyzer(scale int) *isa.Program {
	b := prog.NewBuilder("analyzer")
	b.Globals(1)

	mk := func(name string, size, kind int64) {
		f := b.Func(name, 0)
		sz := f.ConstReg(size)
		p := f.Malloc(sz)
		k := f.ConstReg(kind)
		f.StoreWord(p, anKind, k)
		v := f.RandConst(256)
		f.StoreWord(p, anF1, v)
		if size > anF2 {
			w := f.RandConst(64)
			f.StoreWord(p, anF2, w)
		}
		if size > anF3 {
			zero := f.ConstReg(0)
			f.StoreWord(p, anF3, zero)
		}
		f.Ret(p)
	}
	mk("parse_alu", 40, 1)
	mk("parse_mem", 56, 2)
	mk("parse_branch", 32, 3)

	// parse: append scale records; roughly 40% ALU, 30% mem, 30% branch,
	// interleaved as they appear in the input trace.
	parse := b.Func("parse", 1)
	{
		f := parse
		n := f.Param(0)
		f.Loop(n, func(prog.Reg) {
			r := f.RandConst(10)
			four := f.ConstReg(4)
			seven := f.ConstReg(7)
			isAlu := f.Reg()
			f.Lt(isAlu, r, four)
			isMem := f.Reg()
			f.Lt(isMem, r, seven)
			aluL := f.NewLabel()
			memL := f.NewLabel()
			wire := f.NewLabel()
			rec := f.Reg()
			f.Bnz(isAlu, aluL)
			f.Bnz(isMem, memL)
			p1 := f.Call("parse_branch")
			f.Mov(rec, p1)
			f.Jmp(wire)
			f.Bind(memL)
			p2 := f.Call("parse_mem")
			f.Mov(rec, p2)
			f.Jmp(wire)
			f.Bind(aluL)
			p3 := f.Call("parse_alu")
			f.Mov(rec, p3)
			f.Bind(wire)
			listPush(f, anGlobSeq, rec, anNext)
		})
		f.RetConst(0)
	}

	// pass_deps: walk the sequence; process ALU and memory records only.
	deps := b.Func("pass_deps", 0)
	{
		f := deps
		acc := f.ConstReg(0)
		three := f.ConstReg(3)
		listWalk(f, anGlobSeq, anNext, func(p prog.Reg) {
			k := readField(f, p, anKind)
			isBr := f.Reg()
			f.Eq(isBr, k, three)
			skip := f.NewLabel()
			f.Bnz(isBr, skip)
			v1 := readField(f, p, anF1)
			v2 := readField(f, p, anF2)
			f.Add(acc, acc, v1)
			f.Add(acc, acc, v2)
			touch(f, p, anF3)
			f.Bind(skip)
		})
		f.Ret(acc)
	}

	// pass_branch: walk the sequence; process branch records only.
	brp := b.Func("pass_branch", 0)
	{
		f := brp
		acc := f.ConstReg(0)
		three := f.ConstReg(3)
		listWalk(f, anGlobSeq, anNext, func(p prog.Reg) {
			k := readField(f, p, anKind)
			isBr := f.Reg()
			f.Eq(isBr, k, three)
			skip := f.NewLabel()
			f.Bz(isBr, skip)
			touch(f, p, anF1)
			f.Bind(skip)
		})
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		n := f.ConstReg(int64(scale))
		f.Call("parse", n)
		acc := f.ConstReg(0)
		f.LoopN(int64(14+scale/1000), func(prog.Reg) {
			r1 := f.Call("pass_deps")
			f.Add(acc, acc, r1)
			r2 := f.Call("pass_branch")
			f.Add(acc, acc, r2)
		})
		listFreeAll(f, anGlobSeq, anNext)
		f.Ret(acc)
	}

	return b.MustBuild()
}
