package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// leela models the Go engine whose defining trait for the paper is that it
// "allocates memory exclusively through C++'s new operator": operator new
// is a *library* function, so the immediate call site of malloc is the same
// single location inside libstdc++ for every allocation, defeating
// call-site-keyed identification outright. HALO's shadow stack skips the
// library frame and traces the call site back into the main binary, where
// expand_node / create_child / save_board are perfectly distinguishable.
//
// The workload runs UCT-style playouts: tree descent touches nodes and
// their child statistics blocks together (hot), board snapshots rarely
// (cold). Periodic subtree pruning frees most nodes, which is what leaves
// HALO's chunks nearly empty at peak (Table 1 reports 99.99% grouped-data
// fragmentation for leela).
func init() {
	register(Workload{
		Name: "leela",
		Description: "Go engine: every allocation through library operator " +
			"new; UCT tree playouts with periodic pruning",
		Build:     buildLeela,
		TestScale: 2200,
		RefScale:  13000,
	})
}

// Layouts.
//
//	node (48B):   0 firstChild, 8 nextSibling, 16 stats ptr, 24 visits,
//	              32 score, 40 board ptr (cold)
//	stats (32B):  0 wins, 8 visits, 16 prior
//	board (320B): 0.. snapshot words (cold)
const (
	leNodeChild  = 0
	leNodeSib    = 8
	leNodeStats  = 16
	leNodeVisits = 24
	leNodeScore  = 32
	leNodeBoard  = 40

	leStWins   = 0
	leStVisits = 8
	leStPrior  = 16

	leGlobRoot = 0
	leGlobSeed = 1
)

func buildLeela(scale int) *isa.Program {
	b := prog.NewBuilder("leela")
	b.Globals(2)

	// operator new lives in the C++ runtime library: its call to malloc
	// is the immediate call site of *every* allocation in this program.
	opNew := b.LibFunc("operator_new", 1)
	opNew.Ret(opNew.Malloc(opNew.Param(0)))

	// Main-binary allocation wrappers: the contexts HALO distinguishes.
	expand := b.Func("expand_node", 0)
	{
		f := expand
		sz := f.ConstReg(48)
		p := f.Call("operator_new", sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, leNodeChild, zero)
		f.StoreWord(p, leNodeSib, zero)
		f.StoreWord(p, leNodeVisits, zero)
		f.StoreWord(p, leNodeScore, zero)
		f.Ret(p)
	}
	mkStats := b.Func("create_child", 0)
	{
		f := mkStats
		sz := f.ConstReg(32)
		p := f.Call("operator_new", sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, leStWins, zero)
		f.StoreWord(p, leStVisits, zero)
		prior := f.RandConst(100)
		f.StoreWord(p, leStPrior, prior)
		f.Ret(p)
	}
	mkBoard := b.Func("save_board", 0)
	{
		f := mkBoard
		sz := f.ConstReg(320)
		p := f.Call("operator_new", sz)
		v := f.RandConst(361)
		f.StoreWord(p, 0, v)
		f.Ret(p)
	}

	// newNode: a tree node with its stats block and board snapshot.
	newNode := b.Func("new_node", 0)
	{
		f := newNode
		n := f.Call("expand_node")
		st := f.Call("create_child")
		bd := f.Call("save_board")
		f.StoreWord(n, leNodeStats, st)
		f.StoreWord(n, leNodeBoard, bd)
		f.Ret(n)
	}

	// grow(parent): add 1-3 children to a node.
	grow := b.Func("grow", 1)
	{
		f := grow
		parent := f.Param(0)
		n := f.RandConst(3)
		f.AddImm(n, n, 1)
		f.Loop(n, func(prog.Reg) {
			kid := f.Call("new_node")
			sib := readField(f, parent, leNodeChild)
			f.StoreWord(kid, leNodeSib, sib)
			f.StoreWord(parent, leNodeChild, kid)
		})
		f.RetConst(0)
	}

	// Per-playout scratch state, also through operator new (as leela's
	// std containers are) and freed at the end of the playout. Under
	// whole-heap pooling these transient blocks leave dead holes between
	// long-lived tree nodes; HALO's grouping leaves them out.
	mkScratch := b.Func("alloc_scratch", 0)
	{
		f := mkScratch
		sz := f.ConstReg(96)
		p := f.Call("operator_new", sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, 0, zero)
		f.Ret(p)
	}

	// playout: descend from the root picking children by UCT-ish score,
	// touching node + stats hot and boards rarely; expand the leaf.
	playout := b.Func("playout", 0)
	{
		f := playout
		scratch := f.Call("alloc_scratch")
		cur := f.Reg()
		f.LoadGlobal(cur, leGlobRoot)
		acc := f.ConstReg(0)
		steps := f.ConstReg(0)
		loop := f.NewLabel()
		leaf := f.NewLabel()
		f.Bind(loop)
		touch(f, cur, leNodeVisits)
		st := readField(f, cur, leNodeStats)
		touch(f, st, leStVisits)
		w := readField(f, st, leStWins)
		f.Add(acc, acc, w)
		// Rarely consult the board snapshot.
		rare := f.RandConst(32)
		skipBoard := f.NewLabel()
		f.Bnz(rare, skipBoard)
		bd := readField(f, cur, leNodeBoard)
		touch(f, bd, 0)
		f.Bind(skipBoard)
		// Select a child: walk the sibling list a random number of hops.
		kid := readField(f, cur, leNodeChild)
		f.Bz(kid, leaf)
		hops := f.RandConst(3)
		f.Loop(hops, func(prog.Reg) {
			sib := readField(f, kid, leNodeSib)
			stay := f.NewLabel()
			f.Bz(sib, stay)
			f.Mov(kid, sib)
			f.Bind(stay)
			// UCT score: a deliberately compute-heavy evaluation, as
			// leela is (the paper finds its cache gains do not turn
			// into speedup — it is compute bound).
			ks := readField(f, kid, leNodeStats)
			pv := readField(f, ks, leStPrior)
			kv := readField(f, ks, leStVisits)
			score := f.Reg()
			f.Mov(score, pv)
			one := f.ConstReg(1)
			f.Add(kv, kv, one)
			for i := 0; i < 12; i++ {
				f.Mul(score, score, pv)
				f.Div(score, score, kv)
				f.Add(score, score, pv)
			}
			f.Add(acc, acc, score)
		})
		f.Mov(cur, kid)
		f.AddImm(steps, steps, 1)
		twenty := f.ConstReg(20)
		deep := f.Reg()
		f.Lt(deep, steps, twenty)
		f.Bnz(deep, loop)
		f.Bind(leaf)
		// Expand the leaf on one playout in four; most playouts only
		// update statistics, so tree visits far outnumber allocations.
		ex := f.RandConst(4)
		noGrow := f.NewLabel()
		f.Bnz(ex, noGrow)
		f.Call("grow", cur)
		f.Bind(noGrow)
		touch(f, cur, leNodeScore)
		touch(f, scratch, 0)
		f.Free(scratch)
		f.Ret(acc)
	}

	// prune(node): recursively free a subtree (children of the node),
	// the move-commit tree reuse that frees most of the tree.
	prune := b.Func("prune", 1)
	{
		f := prune
		node := f.Param(0)
		kid := readField(f, node, leNodeChild)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(kid, done)
		next := readField(f, kid, leNodeSib)
		f.Call("prune", kid)
		st := readField(f, kid, leNodeStats)
		f.Free(st)
		bd := readField(f, kid, leNodeBoard)
		f.Free(bd)
		f.Free(kid)
		f.Mov(kid, next)
		f.Jmp(loop)
		f.Bind(done)
		zero := f.ConstReg(0)
		f.StoreWord(node, leNodeChild, zero)
		f.RetConst(0)
	}

	main := b.Func("main", 0)
	{
		f := main
		root := f.Call("new_node")
		f.StoreGlobal(leGlobRoot, root)
		f.Call("grow", root)
		acc := f.ConstReg(0)
		// Moves: each runs playouts then prunes the tree back.
		f.LoopN(int64(scale/500+1), func(prog.Reg) {
			f.LoopN(500, func(prog.Reg) {
				r := f.Call("playout")
				f.Add(acc, acc, r)
			})
			f.Call("prune", root)
			f.Call("grow", root)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
