package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// art models the SPEC CPU2000 neural-network recogniser, famous for
// allocating each neuron's fields as separate tiny heap blocks. Per neuron
// the init loop allocates six 16-byte field blocks from six distinct call
// sites — I, W, X (read every match iteration: hot) and T, B, S (touched
// only during rare normalisation: cold) — in an interleaved order, so the
// hot fields of one neuron are diluted by its cold fields on the heap.
// Grouping {I, W, X} packs each neuron's hot state into adjacent slots.
func init() {
	register(Workload{
		Name: "art",
		Description: "SPEC2000 art: six tiny field blocks per neuron, " +
			"three hot in the match loop, three cold",
		Build:     buildArt,
		TestScale: 520,
		RefScale:  3000,
	})
}

const (
	arFields   = 6
	arGlobTab  = 0 // neuron x field pointer table (large, untracked)
	arGlobN    = 1
	arFieldSz  = 16
	arHotCount = 3 // fields 0..2 are hot
)

var artFieldNames = [arFields]string{
	"alloc_f1_I", "alloc_f1_W", "alloc_f1_X",
	"alloc_f1_T", "alloc_f1_B", "alloc_f1_S",
}

func buildArt(scale int) *isa.Program {
	b := prog.NewBuilder("art")
	b.Globals(2)

	for i := 0; i < arFields; i++ {
		f := b.Func(artFieldNames[i], 0)
		sz := f.ConstReg(arFieldSz)
		p := f.Malloc(sz)
		v := f.RandConst(1000)
		f.StoreWord(p, 0, v)
		f.Ret(p)
	}

	// fieldSlot(neuron, field) -> address of the table slot.
	fs := b.Func("field_slot", 2)
	{
		f := fs
		neuron, field := f.Param(0), f.Param(1)
		tab := f.Reg()
		f.LoadGlobal(tab, arGlobTab)
		idx := f.Reg()
		nf := f.ConstReg(arFields)
		f.Mul(idx, neuron, nf)
		f.Add(idx, idx, field)
		eight := f.ConstReg(8)
		f.Mul(idx, idx, eight)
		addr := f.Reg()
		f.Add(addr, tab, idx)
		f.Ret(addr)
	}

	// match_pass: per neuron, read I and W, update X — the hot loop.
	mp := b.Func("match_pass", 0)
	{
		f := mp
		n := f.Reg()
		f.LoadGlobal(n, arGlobN)
		acc := f.ConstReg(0)
		f.Loop(n, func(i prog.Reg) {
			neuron := f.Reg()
			f.Sub(neuron, n, i)
			zero := f.ConstReg(0)
			one := f.ConstReg(1)
			two := f.ConstReg(2)
			sI := f.Call("field_slot", neuron, zero)
			pI := readField(f, sI, 0)
			vI := readField(f, pI, 0)
			sW := f.Call("field_slot", neuron, one)
			pW := readField(f, sW, 0)
			vW := readField(f, pW, 0)
			sX := f.Call("field_slot", neuron, two)
			pX := readField(f, sX, 0)
			x := f.Reg()
			f.Mul(x, vI, vW)
			f.StoreWord(pX, 0, x)
			f.Add(acc, acc, x)
		})
		f.Ret(acc)
	}

	// normalize: rare pass over the cold fields.
	np := b.Func("normalize", 0)
	{
		f := np
		n := f.Reg()
		f.LoadGlobal(n, arGlobN)
		acc := f.ConstReg(0)
		f.Loop(n, func(i prog.Reg) {
			neuron := f.Reg()
			f.Sub(neuron, n, i)
			for j := arHotCount; j < arFields; j++ {
				fj := f.ConstReg(int64(j))
				s := f.Call("field_slot", neuron, fj)
				p := readField(f, s, 0)
				touch(f, p, 0)
			}
		})
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		n := f.ConstReg(int64(scale))
		f.StoreGlobal(arGlobN, n)
		nf := f.ConstReg(arFields)
		eight := f.ConstReg(8)
		tabSz := f.Reg()
		f.Mul(tabSz, n, nf)
		f.Mul(tabSz, tabSz, eight)
		tab := f.Malloc(tabSz)
		f.StoreGlobal(arGlobTab, tab)
		// Init: per neuron, allocate all six fields interleaved.
		f.Loop(n, func(i prog.Reg) {
			neuron := f.Reg()
			f.Sub(neuron, n, i)
			for j := 0; j < arFields; j++ {
				p := f.Call(artFieldNames[j])
				fj := f.ConstReg(int64(j))
				s := f.Call("field_slot", neuron, fj)
				f.StoreWord(s, 0, p)
			}
		})
		// Match loop with rare normalisation.
		acc := f.ConstReg(0)
		step := f.Reg()
		f.Const(step, 0)
		f.LoopN(int64(20+scale/150), func(prog.Reg) {
			r := f.Call("match_pass")
			f.Add(acc, acc, r)
			f.AddImm(step, step, 1)
			seven := f.ConstReg(7)
			m := f.Reg()
			f.And(m, step, seven)
			skip := f.NewLabel()
			f.Bnz(m, skip)
			f.Call("normalize")
			f.Bind(skip)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
