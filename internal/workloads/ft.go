package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// ft models the Ptrdist minimum-spanning-tree program: a random graph of
// vertices and adjacency edge lists, plus a linked heap of per-vertex
// candidate records scanned for the minimum each round (improvements
// decrease keys in place, as the original's Fibonacci heap does). Vertices,
// edges and heap records come from three distinct direct call sites; edge
// lists are diluted at allocation time by cold per-edge geometry records
// sharing their size class. The hot relaxation loop walks edge lists and
// dereferences target vertices together, so grouping {vertex, edge, cand}
// away from the geometry records pays.
func init() {
	register(Workload{
		Name: "ft",
		Description: "Ptrdist ft: MST over adjacency lists with a " +
			"linked candidate heap",
		Build:     buildFT,
		TestScale: 420,
		RefScale:  1300,
	})
}

// Layouts.
//
//	vertex (56B): 0 edgeHead, 8 key, 16 chosen, 24 id
//	edge (32B):   0 next, 8 target, 16 weight
//	cand (40B):   0 next, 8 vertex, 16 key, 24 live
const (
	ftVtxEdges  = 0
	ftVtxKey    = 8
	ftVtxChosen = 16
	ftVtxID     = 24

	ftEdgeNext   = 0
	ftEdgeTarget = 8
	ftEdgeWeight = 16

	ftCandNext = 0
	ftCandVtx  = 8
	ftCandKey  = 16
	ftCandLive = 24

	ftVtxCand = 32 // vertex's candidate record, 0 until first insert

	ftGlobVtxTab = 0 // vertex pointer table (large, untracked)
	ftGlobN      = 1
	ftGlobHeap   = 2 // candidate list head
	ftGlobGeom   = 3 // cold geometry list head
)

func buildFT(scale int) *isa.Program {
	b := prog.NewBuilder("ft")
	b.Globals(4)

	mkVtx := b.Func("create_vertex", 0)
	{
		f := mkVtx
		sz := f.ConstReg(56)
		p := f.Malloc(sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, ftVtxEdges, zero)
		f.StoreWord(p, ftVtxChosen, zero)
		f.StoreWord(p, ftVtxCand, zero)
		big := f.ConstReg(1 << 30)
		f.StoreWord(p, ftVtxKey, big)
		f.Ret(p)
	}
	// Cold per-edge geometry: shares the edges' size class, touched only
	// by the final report.
	mkGeom := b.Func("create_geom", 0)
	{
		f := mkGeom
		sz := f.ConstReg(32)
		p := f.Malloc(sz)
		v := f.RandConst(512)
		f.StoreWord(p, 8, v)
		listPush(f, ftGlobGeom, p, 0)
		f.Ret(p)
	}
	mkEdge := b.Func("create_edge", 2) // (from, to)
	{
		f := mkEdge
		from, to := f.Param(0), f.Param(1)
		sz := f.ConstReg(32)
		e := f.Malloc(sz)
		f.StoreWord(e, ftEdgeTarget, to)
		w := f.RandConst(1000)
		f.AddImm(w, w, 1)
		f.StoreWord(e, ftEdgeWeight, w)
		head := readField(f, from, ftVtxEdges)
		f.StoreWord(e, ftEdgeNext, head)
		f.StoreWord(from, ftVtxEdges, e)
		f.RetConst(0)
	}
	// heap_insert(vertex, key): allocate the vertex's candidate record on
	// first insert; later calls decrease the key in place, as the
	// original's Fibonacci-heap decrease-key does.
	mkCand := b.Func("heap_insert", 2) // (vertex, key)
	{
		f := mkCand
		v, key := f.Param(0), f.Param(1)
		existing := readField(f, v, ftVtxCand)
		fresh := f.NewLabel()
		f.Bz(existing, fresh)
		one := f.ConstReg(1)
		f.StoreWord(existing, ftCandKey, key)
		f.StoreWord(existing, ftCandLive, one)
		f.RetConst(0)
		f.Bind(fresh)
		sz := f.ConstReg(40)
		c := f.Malloc(sz)
		f.StoreWord(c, ftCandVtx, v)
		f.StoreWord(c, ftCandKey, key)
		one2 := f.ConstReg(1)
		f.StoreWord(c, ftCandLive, one2)
		f.StoreWord(v, ftVtxCand, c)
		listPush(f, ftGlobHeap, c, ftCandNext)
		f.RetConst(0)
	}

	// vertexAt(i) -> pointer from the table.
	vat := b.Func("vertex_at", 1)
	{
		f := vat
		i := f.Param(0)
		tab := f.Reg()
		f.LoadGlobal(tab, ftGlobVtxTab)
		eight := f.ConstReg(8)
		off := f.Reg()
		f.Mul(off, i, eight)
		addr := f.Reg()
		f.Add(addr, tab, off)
		f.Ret(readField(f, addr, 0))
	}

	// extract_min: scan the candidate list for the live minimum and mark
	// it dead (the record stays, owned by its vertex, and may be revived
	// by a later decrease-key).
	em := b.Func("extract_min", 0)
	{
		f := em
		cur := f.Reg()
		f.LoadGlobal(cur, ftGlobHeap)
		best := f.ConstReg(0)
		bestKey := f.ConstReg(1 << 40)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(cur, done)
		live := readField(f, cur, ftCandLive)
		skip := f.NewLabel()
		f.Bz(live, skip)
		k := readField(f, cur, ftCandKey)
		lt := f.Reg()
		f.Lt(lt, k, bestKey)
		f.Bz(lt, skip)
		f.Mov(bestKey, k)
		f.Mov(best, cur)
		f.Bind(skip)
		f.LoadWord(cur, cur, ftCandNext)
		f.Jmp(loop)
		f.Bind(done)
		none := f.NewLabel()
		f.Bz(best, none)
		zero := f.ConstReg(0)
		f.StoreWord(best, ftCandLive, zero)
		f.Ret(readField(f, best, ftCandVtx))
		f.Bind(none)
		f.RetConst(0)
	}

	// relax(v): walk v's edges, improving target keys and inserting
	// fresh candidates — the hot edge+vertex co-traversal.
	relax := b.Func("relax", 1)
	{
		f := relax
		v := f.Param(0)
		acc := f.ConstReg(0)
		e := f.Reg()
		f.LoadWord(e, v, ftVtxEdges)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(e, done)
		t := readField(f, e, ftEdgeTarget)
		w := readField(f, e, ftEdgeWeight)
		tKey := readField(f, t, ftVtxKey)
		better := f.Reg()
		f.Lt(better, w, tKey)
		skip := f.NewLabel()
		f.Bz(better, skip)
		chosen := readField(f, t, ftVtxChosen)
		f.Bnz(chosen, skip)
		f.StoreWord(t, ftVtxKey, w)
		f.Call("heap_insert", t, w)
		f.Bind(skip)
		f.Add(acc, acc, w)
		f.LoadWord(e, e, ftEdgeNext)
		f.Jmp(loop)
		f.Bind(done)
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		n := f.ConstReg(int64(scale))
		f.StoreGlobal(ftGlobN, n)
		eight := f.ConstReg(8)
		tabSz := f.Reg()
		f.Mul(tabSz, n, eight)
		tab := f.Malloc(tabSz)
		f.StoreGlobal(ftGlobVtxTab, tab)
		// Vertices.
		f.Loop(n, func(i prog.Reg) {
			v := f.Call("create_vertex")
			idx := f.Reg()
			f.Sub(idx, n, i)
			f.StoreWord(v, ftVtxID, idx)
			off := f.Reg()
			f.Mul(off, idx, eight)
			slot := f.Reg()
			f.Add(slot, tab, off)
			f.StoreWord(slot, 0, v)
		})
		// Edges: 4 random out-edges per vertex.
		f.Loop(n, func(i prog.Reg) {
			idx := f.Reg()
			f.Sub(idx, n, i)
			from := f.Call("vertex_at", idx)
			f.LoopN(4, func(prog.Reg) {
				j := f.Rand(n)
				to := f.Call("vertex_at", j)
				f.Call("create_edge", from, to)
				f.Call("create_geom") // cold twin in the edges' class
			})
		})
		// Prim-ish: seed with vertex 0, then extract/relax rounds.
		zero := f.ConstReg(0)
		v0 := f.Call("vertex_at", zero)
		f.Call("heap_insert", v0, zero)
		acc := f.ConstReg(0)
		f.Loop(n, func(prog.Reg) {
			v := f.Call("extract_min")
			stop := f.NewLabel()
			f.Bz(v, stop)
			one := f.ConstReg(1)
			f.StoreWord(v, ftVtxChosen, one)
			r := f.Call("relax", v)
			f.Add(acc, acc, r)
			f.Bind(stop)
		})
		// Final report: the only reader of the cold geometry records.
		listWalk(f, ftGlobGeom, 0, func(p prog.Reg) {
			v := readField(f, p, 8)
			f.Add(acc, acc, v)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
