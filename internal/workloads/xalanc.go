package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// xalanc models the XSLT processor's defining trait for this paper:
// "significant indirection in its call chains, requiring the traversal of
// tens of stack frames to properly appreciate the context in which
// allocations have been made". Every DOM node — element, attribute, text —
// is allocated through the same three-deep helper chain
// (XalanAllocate -> MemMgrAllocate -> poolAllocate -> malloc), from a
// recursive-descent parser. Only the full (reduced) call stack
// distinguishes the node types; the immediate malloc call site is a single
// shared location, and even a 4-frame window sees only the helper chain.
//
// The transform phase walks elements and their attributes hot, text nodes
// cold. Per the artifact appendix, xalanc runs with no spare chunks and
// always-reused chunks.
func init() {
	register(Workload{
		Name: "xalanc",
		Description: "XSLT processor: DOM nodes allocated through a deep " +
			"shared helper chain from a recursive parser",
		Build:       buildXalanc,
		TestScale:   900,
		RefScale:    5200,
		NoSpare:     true,
		AlwaysReuse: true,
	})
}

// Layouts. Both node kinds keep their sibling pointer at offset 8 and a
// kind word at offset 16, so the walker advances and dispatches uniformly.
//
//	element (48B): 0 firstChild, 8 nextSibling, 16 kind=1, 24 tag,
//	               32 hits, 40 attrHead
//	attribute (32B): 0 next, 8 key, 16 value
//	text (32B): 0 len, 8 nextSibling, 16 kind=0 — shares the attributes'
//	            size class
//	namespace record (48B): 0 next, 8 uri — cold, shares the elements'
//	            size class, linked into a global list read only by the
//	            rare namespace-resolution pass
const (
	xaElChild = 0
	xaElSib   = 8
	xaElKind  = 16
	xaElTag   = 24
	xaElHits  = 32
	xaElAttr  = 40

	xaAtNext = 0
	xaAtKey  = 8
	xaAtVal  = 16

	xaTxLen = 0
	xaTxSib = 8

	xaGlobRoot  = 0
	xaGlobNodes = 1 // allocation budget left
	xaGlobNS    = 2 // namespace record list (cold)
)

func buildXalanc(scale int) *isa.Program {
	b := prog.NewBuilder("xalanc")
	b.Globals(3)

	// The shared allocator chain: three frames deep, used by every node
	// type. A call-site-keyed identifier sees only poolAllocate's call to
	// malloc.
	pool := b.Func("poolAllocate", 1)
	pool.Ret(pool.Malloc(pool.Param(0)))
	mgr := b.Func("MemMgrAllocate", 1)
	mgr.Ret(mgr.Call("poolAllocate", mgr.Param(0)))
	xa := b.Func("XalanAllocate", 1)
	xa.Ret(xa.Call("MemMgrAllocate", xa.Param(0)))

	// Node constructors, each through the full chain.
	newEl := b.Func("newElement", 0)
	{
		f := newEl
		sz := f.ConstReg(48)
		p := f.Call("XalanAllocate", sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, xaElChild, zero)
		f.StoreWord(p, xaElSib, zero)
		f.StoreWord(p, xaElAttr, zero)
		f.StoreWord(p, xaElHits, zero)
		tag := f.RandConst(32)
		f.StoreWord(p, xaElTag, tag)
		one := f.ConstReg(1)
		f.StoreWord(p, xaElKind, one)
		f.Ret(p)
	}
	newAt := b.Func("newAttribute", 0)
	{
		f := newAt
		sz := f.ConstReg(32)
		p := f.Call("XalanAllocate", sz)
		k := f.RandConst(16)
		f.StoreWord(p, xaAtKey, k)
		v := f.RandConst(1024)
		f.StoreWord(p, xaAtVal, v)
		f.Ret(p)
	}
	newTx := b.Func("newText", 0)
	{
		f := newTx
		sz := f.ConstReg(32)
		p := f.Call("XalanAllocate", sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, xaElKind, zero)
		f.StoreWord(p, xaTxSib, zero)
		ln := f.RandConst(120)
		f.StoreWord(p, xaTxLen, ln)
		f.Ret(p)
	}
	// Namespace records: cold per-element data in the elements' class,
	// collected on a global list.
	newNS := b.Func("newNamespace", 0)
	{
		f := newNS
		sz := f.ConstReg(48)
		p := f.Call("XalanAllocate", sz)
		v := f.RandConst(64)
		f.StoreWord(p, 8, v)
		listPush(f, xaGlobNS, p, 0)
		f.Ret(p)
	}

	// resolveNamespaces: the only reader of the cold namespace records.
	rns := b.Func("resolveNamespaces", 0)
	{
		f := rns
		acc := f.ConstReg(0)
		listWalk(f, xaGlobNS, 0, func(p prog.Reg) {
			v := readField(f, p, 8)
			f.Add(acc, acc, v)
		})
		f.Ret(acc)
	}

	// parseElement(depth): builds one element with attributes and child
	// elements/text, recursing — the deep, repetitive stacks the reduced
	// contexts canonicalise.
	pe := b.Func("parseElement", 1)
	{
		f := pe
		depth := f.Param(0)
		el := f.Call("newElement")

		// Stop if the node budget is exhausted.
		budget := f.Reg()
		f.LoadGlobal(budget, xaGlobNodes)
		zero := f.ConstReg(0)
		haveBudget := f.Reg()
		f.Lt(haveBudget, zero, budget)
		noKids := f.NewLabel()
		f.Bz(haveBudget, noKids)
		f.AddImm(budget, budget, -1)
		f.StoreGlobal(xaGlobNodes, budget)

		// Attributes: 1-3 per element, plus the element's cold namespace
		// record, allocated amid the hot nodes.
		nAttr := f.RandConst(3)
		f.AddImm(nAttr, nAttr, 1)
		f.Loop(nAttr, func(prog.Reg) {
			at := f.Call("newAttribute")
			head := readField(f, el, xaElAttr)
			f.StoreWord(at, xaAtNext, head)
			f.StoreWord(el, xaElAttr, at)
		})
		f.Call("newNamespace")

		// Children: recurse while depth remains.
		deep := f.Reg()
		f.Lt(deep, zero, depth)
		f.Bz(deep, noKids)
		nKids := f.RandConst(2)
		f.AddImm(nKids, nKids, 2) // 2-3 children
		f.Loop(nKids, func(prog.Reg) {
			d1 := f.Reg()
			f.AddImm(d1, depth, -1)
			isText := f.RandConst(3) // 1 in 3 children is text
			textL := f.NewLabel()
			wire := f.NewLabel()
			kid := f.Reg()
			f.Bz(isText, textL)
			c := f.Call("parseElement", d1)
			f.Mov(kid, c)
			f.Jmp(wire)
			f.Bind(textL)
			tx := f.Call("newText")
			f.Mov(kid, tx)
			f.Bind(wire)
			sib := readField(f, el, xaElChild)
			f.StoreWord(kid, xaElSib, sib)  // sibling slot is offset 8 for
			f.StoreWord(el, xaElChild, kid) // both node kinds by design
		})
		f.Bind(noKids)
		f.Ret(el)
	}

	// transform: recursive walk; elements and attributes are hot, text is
	// sampled rarely. Node kinds are distinguished by the kind word,
	// which only element constructors set.
	tr := b.Func("transform", 1)
	{
		f := tr
		node := f.Param(0)
		acc := f.ConstReg(0)
		cur := f.Reg()
		f.Mov(cur, node)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(cur, done)
		// Text nodes are cold: only one in eight transform visits reads
		// them; elements and attributes are always processed.
		kind := readField(f, cur, xaElKind)
		isEl := f.NewLabel()
		next := f.NewLabel()
		f.Bnz(kind, isEl)
		sample := f.RandConst(8)
		f.Bnz(sample, next)
		ln := readField(f, cur, xaTxLen)
		f.Add(acc, acc, ln)
		f.Jmp(next)
		f.Bind(isEl)
		touch(f, cur, xaElHits)
		tag := readField(f, cur, xaElTag)
		f.Add(acc, acc, tag)
		// Attributes.
		at := readField(f, cur, xaElAttr)
		aLoop := f.NewLabel()
		aDone := f.NewLabel()
		f.Bind(aLoop)
		f.Bz(at, aDone)
		v := readField(f, at, xaAtVal)
		f.Add(acc, acc, v)
		f.LoadWord(at, at, xaAtNext)
		f.Jmp(aLoop)
		f.Bind(aDone)
		// Children.
		kid := readField(f, cur, xaElChild)
		skipKid := f.NewLabel()
		f.Bz(kid, skipKid)
		r := f.Call("transform", kid)
		f.Add(acc, acc, r)
		f.Bind(skipKid)
		f.Bind(next)
		f.LoadWord(cur, cur, xaElSib)
		f.Jmp(loop)
		f.Bind(done)
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		budget := f.ConstReg(int64(scale))
		f.StoreGlobal(xaGlobNodes, budget)
		// The document is a root element with one parsed section per
		// input chunk, each a deep tree.
		root := f.Call("newElement")
		f.StoreGlobal(xaGlobRoot, root)
		f.LoopN(int64(scale/50+1), func(prog.Reg) {
			depth := f.ConstReg(8)
			sect := f.Call("parseElement", depth)
			sib := readField(f, root, xaElChild)
			f.StoreWord(sect, xaElSib, sib)
			f.StoreWord(root, xaElChild, sect)
		})
		acc := f.ConstReg(0)
		step := f.Reg()
		f.Const(step, 0)
		f.LoopN(int64(16+scale/300), func(prog.Reg) {
			r := f.Call("transform", root)
			f.Add(acc, acc, r)
			// Namespace resolution every eighth pass (cold data).
			f.AddImm(step, step, 1)
			seven := f.ConstReg(7)
			m := f.Reg()
			f.And(m, step, seven)
			skip := f.NewLabel()
			f.Bnz(m, skip)
			nr := f.Call("resolveNamespaces")
			f.Add(acc, acc, nr)
			f.Bind(skip)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
