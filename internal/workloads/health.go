package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// health models the Olden hospital simulation: a four-way tree of villages,
// each holding linked lists of patients. Patients and their list cells are
// allocated from distinct direct call sites but co-traversed on every
// simulation step; a size-segregated allocator puts the 24-byte cells and
// 48-byte patients in different size classes, scattering each list across
// two regions, while grouping the two contexts interleaves each cell with
// its patient. This is the paper's best case (~28% speedup under HALO,
// ~21% under hot data streams).
func init() {
	register(Workload{
		Name: "health",
		Description: "Olden health: village tree, patient/cell lists " +
			"co-traversed every step (paper's best case)",
		Build:     buildHealth,
		TestScale: 60,
		RefScale:  340,
	})
}

// Layouts.
//
//	village (96B): 0,8,16,24 children, 32 waiting head, 40 inside head,
//	               48 label, 56 ticks
//	patient (48B): 0 time, 8 hops, 16 id
//	cell (24B):    0 next, 8 patient
const (
	heVilChild0 = 0
	heVilWait   = 32
	heVilInside = 40
	heVilLabel  = 48
	heVilTicks  = 56

	hePatTime = 0
	hePatHops = 8
	hePatID   = 16

	heCellNext = 0
	heCellPat  = 8

	heGlobRoot = 0
	heGlobLogs = 1
)

func buildHealth(scale int) *isa.Program {
	b := prog.NewBuilder("health")
	b.Globals(2)

	// Distinct direct allocation sites.
	av := b.Func("alloc_village", 0)
	{
		sz := av.ConstReg(96)
		p := av.Malloc(sz)
		zero := av.ConstReg(0)
		for off := int64(0); off < 96; off += 8 {
			av.StoreWord(p, off, zero)
		}
		av.Ret(p)
	}
	ap := b.Func("alloc_patient", 0)
	{
		sz := ap.ConstReg(48)
		p := ap.Malloc(sz)
		zero := ap.ConstReg(0)
		ap.StoreWord(p, hePatTime, zero)
		ap.StoreWord(p, hePatHops, zero)
		id := ap.RandConst(1 << 20)
		ap.StoreWord(p, hePatID, id)
		ap.Ret(p)
	}
	ac := b.Func("alloc_cell", 0)
	{
		sz := ac.ConstReg(24)
		ac.Ret(ac.Malloc(sz))
	}
	// Treatment-log records: cold data sharing the patients' size class,
	// appended during processing and only read by end-of-run reporting.
	al := b.Func("alloc_logrec", 0)
	{
		sz := al.ConstReg(48)
		p := al.Malloc(sz)
		v := al.RandConst(100)
		al.StoreWord(p, 8, v)
		al.Ret(p)
	}

	// build_tree(depth): four-way village tree.
	bt := b.Func("build_tree", 1)
	{
		f := bt
		depth := f.Param(0)
		v := f.Call("alloc_village")
		lbl := f.RandConst(1 << 16)
		f.StoreWord(v, heVilLabel, lbl)
		leaf := f.NewLabel()
		// depth < 1 -> leaf
		cond := f.Reg()
		one := f.ConstReg(1)
		f.Lt(cond, depth, one)
		f.Bnz(cond, leaf)
		d1 := f.Reg()
		f.AddImm(d1, depth, -1)
		// One recursive call site, looping over the four child slots.
		f.LoopN(4, func(i prog.Reg) {
			c := f.Call("build_tree", d1)
			off := f.Reg()
			eight := f.ConstReg(8)
			f.Mul(off, i, eight)
			slot := f.Reg()
			f.Add(slot, v, off)
			f.StoreWord(slot, heVilChild0-8, c)
		})
		f.Bind(leaf)
		f.Ret(v)
	}

	// admit(village): a new patient joins the waiting list through a cell.
	admit := b.Func("admit", 1)
	{
		f := admit
		v := f.Param(0)
		pat := f.Call("alloc_patient")
		cell := f.Call("alloc_cell")
		f.StoreWord(cell, heCellPat, pat)
		head := readField(f, v, heVilWait)
		f.StoreWord(cell, heCellNext, head)
		f.StoreWord(v, heVilWait, cell)
		f.RetConst(0)
	}

	// step(village): process the waiting list — touch each cell and its
	// patient; every fourth patient is discharged (cell and patient
	// freed), the rest age in place. Then recurse into children, and
	// leaves admit new patients.
	step := b.Func("sim_step", 1)
	{
		f := step
		v := f.Param(0)
		touch(f, v, heVilTicks)
		acc := f.ConstReg(0)

		prev := f.ConstReg(0) // previous cell, 0 at head
		cur := f.Reg()
		f.LoadWord(cur, v, heVilWait)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(cur, done)
		next := readField(f, cur, heCellNext)
		pat := readField(f, cur, heCellPat)
		touch(f, pat, hePatTime)
		touch(f, pat, hePatHops)
		id := readField(f, pat, hePatID)
		f.Add(acc, acc, id)
		// One cold treatment-log record per fourth processed patient.
		logp := f.RandConst(4)
		noLog := f.NewLabel()
		f.Bnz(logp, noLog)
		lg := f.Call("alloc_logrec")
		listPush(f, heGlobLogs, lg, 0)
		f.Bind(noLog)
		discharge := f.RandConst(32)
		keep := f.NewLabel()
		f.Bnz(discharge, keep)
		// Unlink and free.
		atHead := f.NewLabel()
		relink := f.NewLabel()
		f.Bz(prev, atHead)
		f.StoreWord(prev, heCellNext, next)
		f.Jmp(relink)
		f.Bind(atHead)
		f.StoreWord(v, heVilWait, next)
		f.Bind(relink)
		f.Free(pat)
		f.Free(cur)
		f.Mov(cur, next)
		f.Jmp(loop)
		f.Bind(keep)
		f.Mov(prev, cur)
		f.Mov(cur, next)
		f.Jmp(loop)
		f.Bind(done)

		// Children: a single recursive call site, as in Olden health.
		hasKids := f.Reg()
		c0 := readField(f, v, heVilChild0)
		f.Mov(hasKids, c0)
		leafL := f.NewLabel()
		out := f.NewLabel()
		f.Bz(hasKids, leafL)
		f.LoopN(4, func(i prog.Reg) {
			off := f.Reg()
			eight := f.ConstReg(8)
			f.Mul(off, i, eight)
			slot := f.Reg()
			f.Add(slot, v, off)
			c := readField(f, slot, heVilChild0-8)
			r := f.Call("sim_step", c)
			f.Add(acc, acc, r)
		})
		f.Jmp(out)
		// Leaves admit new patients every step.
		f.Bind(leafL)
		f.Call("admit", v)
		f.Bind(out)
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		depth := f.ConstReg(3)
		root := f.Call("build_tree", depth)
		f.StoreGlobal(heGlobRoot, root)
		acc := f.ConstReg(0)
		f.LoopN(int64(scale), func(prog.Reg) {
			r := f.Call("sim_step", root)
			f.Add(acc, acc, r)
		})
		// End-of-run reporting: the only reader of the cold log records.
		listWalk(f, heGlobLogs, 0, func(p prog.Reg) {
			v := readField(f, p, 8)
			f.Add(acc, acc, v)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
