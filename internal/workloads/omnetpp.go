package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// omnetpp models a discrete-event network simulation: four module types
// exchange messages through a future-event-set (a binary heap over event
// records). Each module allocates messages and their payload buffers
// through two wrapper levels (module-specific create -> shared
// cMessage_new -> malloc), so call-site-keyed identification collapses
// every message allocation into one context while HALO's full-context
// chains separate them per module. Processing an event touches the message
// header and its payload together: grouping each module's message and
// payload contexts co-locates them.
//
// Per the artifact appendix, omnetpp runs HALO's allocator with 128 KiB
// chunks and no spare chunks, and chunks are always reused.
func init() {
	register(Workload{
		Name: "omnetpp",
		Description: "discrete event simulation: per-module messages/payloads " +
			"through wrappers, processed from a binary-heap FES",
		Build:       buildOmnetpp,
		TestScale:   1200,
		RefScale:    16000,
		ChunkSize:   128 << 10,
		NoSpare:     true,
		AlwaysReuse: true,
	})
}

// Layouts.
//
//	message (64B): 0 payload ptr, 8 module, 16 kind, 24 timestamp, 32 hops
//	payload (module-dependent size): 0 len, 8.. data words
//	event record in FES array (16B): 0 time, 8 message ptr
const (
	omMsgPayload = 0
	omMsgModule  = 8
	omMsgKind    = 16
	omMsgTime    = 24
	omMsgHops    = 32

	omPayLen  = 0
	omPayData = 8

	omGlobHeap = 0 // FES array base
	omGlobLen  = 1 // live events
	omGlobTime = 2 // virtual clock
	omGlobSubs = 3 // 4 subscriber-list heads (slots 3..6)

	omSubNext = 0
	omSubGate = 8
	omSubHits = 16
)

func buildOmnetpp(scale int) *isa.Program {
	b := prog.NewBuilder("omnetpp")
	b.Globals(7)

	// Shared low-level wrapper: cMessage_new(size) -> malloc.
	cm := b.Func("cMessage_new", 1)
	cm.Ret(cm.Malloc(cm.Param(0)))

	// Per-module subscriber records (hot: walked on every delivery) and
	// routing-config records (cold), both 48 bytes and both through the
	// shared wrapper: the size-segregated baseline interleaves them, and
	// call-site-keyed identification cannot tell them apart.
	mkSub := b.Func("register_subscriber", 1) // (module)
	{
		f := mkSub
		m := f.Param(0)
		sz := f.ConstReg(48)
		p := f.Call("cMessage_new", sz)
		g := f.RandConst(16)
		f.StoreWord(p, omSubGate, g)
		zero := f.ConstReg(0)
		f.StoreWord(p, omSubHits, zero)
		// Push onto the module's list (global slot omGlobSubs+m).
		eight := f.ConstReg(8)
		slot := f.Reg()
		f.Mul(slot, m, eight)
		base := f.ConstReg(int64(isa.GlobalAddr(omGlobSubs)))
		f.Add(slot, slot, base)
		head := readField(f, slot, 0)
		f.StoreWord(p, omSubNext, head)
		f.StoreWord(slot, 0, p)
		f.RetConst(0)
	}
	mkCfg := b.Func("load_route_config", 0)
	{
		f := mkCfg
		sz := f.ConstReg(48)
		p := f.Call("cMessage_new", sz)
		v := f.RandConst(256)
		f.StoreWord(p, 8, v)
		f.Ret(p)
	}

	// deliver(module): walk the module's subscriber list, the dominant
	// per-event work.
	deliver := b.Func("deliver", 1)
	{
		f := deliver
		m := f.Param(0)
		eight := f.ConstReg(8)
		slot := f.Reg()
		f.Mul(slot, m, eight)
		base := f.ConstReg(int64(isa.GlobalAddr(omGlobSubs)))
		f.Add(slot, slot, base)
		cur := readField(f, slot, 0)
		acc := f.ConstReg(0)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(cur, done)
		g := readField(f, cur, omSubGate)
		f.Add(acc, acc, g)
		touch(f, cur, omSubHits)
		f.LoadWord(cur, cur, omSubNext)
		f.Jmp(loop)
		f.Bind(done)
		f.Ret(acc)
	}

	// Module-specific creators: message + payload, both through the
	// shared wrapper. Payload sizes differ per module.
	paySizes := []int64{40, 72, 56, 96}
	for m := 0; m < 4; m++ {
		f := b.Func(modName(m), 0)
		msz := f.ConstReg(64)
		msg := f.Call("cMessage_new", msz)
		psz := f.ConstReg(paySizes[m])
		pay := f.Call("cMessage_new", psz)
		f.StoreWord(msg, omMsgPayload, pay)
		mod := f.ConstReg(int64(m))
		f.StoreWord(msg, omMsgModule, mod)
		kind := f.RandConst(8)
		f.StoreWord(msg, omMsgKind, kind)
		zero := f.ConstReg(0)
		f.StoreWord(msg, omMsgHops, zero)
		ln := f.ConstReg(paySizes[m]/8 - 1) // data words after the len field
		f.StoreWord(pay, omPayLen, ln)
		// Fill the payload, as a sender would.
		for w := int64(1); w < paySizes[m]/8; w++ {
			v := f.RandConst(256)
			f.StoreWord(pay, 8*w, v)
		}
		f.Ret(msg)
	}

	// fes_push(time, msg): binary-heap sift-up over the event array.
	push := b.Func("fes_push", 2)
	{
		f := push
		tm, msg := f.Param(0), f.Param(1)
		base := f.Reg()
		f.LoadGlobal(base, omGlobHeap)
		n := f.Reg()
		f.LoadGlobal(n, omGlobLen)
		// Back-pressure: drop events beyond the FES capacity (and free
		// the dropped message, as the simulator's limiter would).
		limit := f.ConstReg(2500)
		fits := f.Reg()
		f.Lt(fits, n, limit)
		ok := f.NewLabel()
		f.Bnz(fits, ok)
		pay := readField(f, msg, omMsgPayload)
		f.Free(pay)
		f.Free(msg)
		f.RetConst(0)
		f.Bind(ok)
		// slot address = base + 16*n
		idx := f.Reg()
		sixteen := f.ConstReg(16)
		f.Mul(idx, n, sixteen)
		slot := f.Reg()
		f.Add(slot, base, idx)
		f.StoreWord(slot, 0, tm)
		f.StoreWord(slot, 8, msg)
		np := f.Reg()
		f.AddImm(np, n, 1)
		f.StoreGlobal(omGlobLen, np)

		// Sift up.
		i := f.Reg()
		f.Mov(i, n)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		f.Bz(i, done)
		par := f.Reg()
		one := f.ConstReg(1)
		two := f.ConstReg(2)
		f.Sub(par, i, one)
		f.Div(par, par, two)
		iAddr := f.Reg()
		f.Mul(iAddr, i, sixteen)
		f.Add(iAddr, base, iAddr)
		pAddr := f.Reg()
		f.Mul(pAddr, par, sixteen)
		f.Add(pAddr, base, pAddr)
		it := readField(f, iAddr, 0)
		pt := readField(f, pAddr, 0)
		cmp := f.Reg()
		f.Lt(cmp, it, pt)
		f.Bz(cmp, done)
		// Swap records.
		im := readField(f, iAddr, 8)
		pm := readField(f, pAddr, 8)
		f.StoreWord(iAddr, 0, pt)
		f.StoreWord(iAddr, 8, pm)
		f.StoreWord(pAddr, 0, it)
		f.StoreWord(pAddr, 8, im)
		f.Mov(i, par)
		f.Jmp(loop)
		f.Bind(done)
		f.RetConst(0)
	}

	// fes_pop() -> message of the earliest event; advances the clock.
	pop := b.Func("fes_pop", 0)
	{
		f := pop
		base := f.Reg()
		f.LoadGlobal(base, omGlobHeap)
		n := f.Reg()
		f.LoadGlobal(n, omGlobLen)
		empty := f.NewLabel()
		f.Bz(n, empty)
		top := readField(f, base, 0)
		msg := readField(f, base, 8)
		f.StoreGlobal(omGlobTime, top)
		nm := f.Reg()
		f.AddImm(nm, n, -1)
		f.StoreGlobal(omGlobLen, nm)
		// Move last record to the root.
		sixteen := f.ConstReg(16)
		lAddr := f.Reg()
		f.Mul(lAddr, nm, sixteen)
		f.Add(lAddr, base, lAddr)
		lt := readField(f, lAddr, 0)
		lm := readField(f, lAddr, 8)
		f.StoreWord(base, 0, lt)
		f.StoreWord(base, 8, lm)

		// Sift down.
		i := f.ConstReg(0)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		l := f.Reg()
		two := f.ConstReg(2)
		one := f.ConstReg(1)
		f.Mul(l, i, two)
		f.Add(l, l, one)
		inRange := f.Reg()
		f.Lt(inRange, l, nm)
		f.Bz(inRange, done)
		// Pick the smaller child.
		r := f.Reg()
		f.Add(r, l, one)
		lAddr2 := f.Reg()
		f.Mul(lAddr2, l, sixteen)
		f.Add(lAddr2, base, lAddr2)
		cand := f.Reg()
		f.Mov(cand, l)
		candAddr := f.Reg()
		f.Mov(candAddr, lAddr2)
		hasR := f.Reg()
		f.Lt(hasR, r, nm)
		noR := f.NewLabel()
		f.Bz(hasR, noR)
		rAddr := f.Reg()
		f.Mul(rAddr, r, sixteen)
		f.Add(rAddr, base, rAddr)
		ltv := readField(f, lAddr2, 0)
		rtv := readField(f, rAddr, 0)
		rless := f.Reg()
		f.Lt(rless, rtv, ltv)
		f.Bz(rless, noR)
		f.Mov(cand, r)
		f.Mov(candAddr, rAddr)
		f.Bind(noR)
		iAddr := f.Reg()
		f.Mul(iAddr, i, sixteen)
		f.Add(iAddr, base, iAddr)
		it := readField(f, iAddr, 0)
		ct := readField(f, candAddr, 0)
		swap := f.Reg()
		f.Lt(swap, ct, it)
		f.Bz(swap, done)
		im := readField(f, iAddr, 8)
		cmv := readField(f, candAddr, 8)
		f.StoreWord(iAddr, 0, ct)
		f.StoreWord(iAddr, 8, cmv)
		f.StoreWord(candAddr, 0, it)
		f.StoreWord(candAddr, 8, im)
		f.Mov(i, cand)
		f.Jmp(loop)
		f.Bind(done)
		f.Ret(msg)
		f.Bind(empty)
		f.RetConst(0)
	}

	// schedule(module): create a module message and push it at a future
	// time.
	sched := b.Func("schedule", 1)
	{
		f := sched
		m := f.Param(0)
		msg := f.Reg()
		// Dispatch to the module creator.
		next := [4]*prog.Label{}
		end := f.NewLabel()
		for i := 0; i < 4; i++ {
			next[i] = f.NewLabel()
		}
		for i := 0; i < 4; i++ {
			f.Bind(next[i])
			if i < 3 {
				ci := f.ConstReg(int64(i))
				isI := f.Reg()
				f.Eq(isI, m, ci)
				f.Bz(isI, next[i+1])
			}
			r := f.Call(modName(i))
			f.Mov(msg, r)
			if i < 3 {
				f.Jmp(end)
			}
		}
		f.Bind(end)
		now := f.Reg()
		f.LoadGlobal(now, omGlobTime)
		delay := f.RandConst(12)
		f.AddImm(delay, delay, 4)
		tm := f.Reg()
		f.Add(tm, now, delay)
		f.AddImm(tm, tm, 1)
		f.StoreWord(msg, omMsgTime, tm)
		f.Call("fes_push", tm, msg)
		f.RetConst(0)
	}

	// handle(msg): touch the message and its payload, occasionally
	// forward (reschedule a new message), then free.
	handle := b.Func("handle", 1)
	{
		f := handle
		msg := f.Param(0)
		touch(f, msg, omMsgHops)
		kind := readField(f, msg, omMsgKind)
		mod := readField(f, msg, omMsgModule)
		pay := readField(f, msg, omMsgPayload)
		ln := readField(f, pay, omPayLen)
		// Walk the payload words.
		acc := f.Reg()
		f.Add(acc, kind, mod)
		off := f.ConstReg(omPayData)
		i := f.Reg()
		f.AddImm(i, ln, -1)
		loop := f.NewLabel()
		done := f.NewLabel()
		f.Bind(loop)
		cond := f.Reg()
		zero := f.ConstReg(0)
		f.Le(cond, i, zero)
		f.Bnz(cond, done)
		addr := f.Reg()
		eight := f.ConstReg(8)
		f.Mul(addr, i, eight)
		f.Add(addr, pay, addr)
		f.Add(addr, addr, off)
		v := readField(f, addr, 0)
		f.Add(acc, acc, v)
		f.AddImm(i, i, -1)
		f.Jmp(loop)
		f.Bind(done)
		// Deliver to the module's subscribers: the bulk of the work.
		dr := f.Call("deliver", mod)
		f.Add(acc, acc, dr)
		// Branching: slightly supercritical (E ≈ 1.125 children per
		// event), so the event population grows until the FES
		// back-pressure caps it — a busy network in steady state.
		fwd := f.RandConst(8)
		skip := f.NewLabel()
		double := f.NewLabel()
		f.Bz(fwd, skip) // 1/8: drop
		three := f.ConstReg(3)
		isTwo := f.Reg()
		f.Lt(isTwo, fwd, three) // 1,2 of 8: two children
		target := f.RandConst(4)
		f.Call("schedule", target)
		f.Bnz(isTwo, double)
		f.Jmp(skip)
		f.Bind(double)
		target2 := f.RandConst(4)
		f.Call("schedule", target2)
		f.Bind(skip)
		f.Free(pay)
		f.Free(msg)
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		// The FES array is a single large allocation (untracked: larger
		// than the maximum grouped size), as omnetpp's FES is.
		cap := f.ConstReg(32 * 4096)
		heap := f.Malloc(cap)
		f.StoreGlobal(omGlobHeap, heap)
		zero := f.ConstReg(0)
		f.StoreGlobal(omGlobLen, zero)
		f.StoreGlobal(omGlobTime, zero)
		// Module setup: subscribers interleaved with routing config.
		for m := 0; m < 4; m++ {
			mr := f.ConstReg(int64(m))
			f.LoopN(400, func(prog.Reg) {
				f.Call("register_subscriber", mr)
				f.Call("load_route_config")
			})
		}
		// Seed the simulation.
		f.LoopN(64, func(prog.Reg) {
			m := f.RandConst(4)
			f.Call("schedule", m)
		})
		// Event loop.
		acc := f.ConstReg(0)
		f.LoopN(int64(scale), func(prog.Reg) {
			msg := f.Call("fes_pop")
			reseed := f.NewLabel()
			stop := f.NewLabel()
			f.Bz(msg, reseed)
			r := f.Call("handle", msg)
			f.Add(acc, acc, r)
			f.Jmp(stop)
			// Keep the simulation alive if the FES drains.
			f.Bind(reseed)
			m := f.RandConst(4)
			f.Call("schedule", m)
			f.Bind(stop)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}

func modName(m int) string {
	return "module_create_" + string(rune('a'+m))
}
