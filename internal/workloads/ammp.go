package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// ammp models the SPEC CPU2000 molecular-dynamics code: a linked chain of
// atoms, each with a bond list connecting it to neighbours, plus cold
// per-atom velocity-history blocks allocated between atoms. Atoms, bonds
// and history blocks are all 40 bytes, so the size-segregated baseline
// interleaves hot atoms and cold history records in one size class,
// halving the useful density of every cache line the force loop touches.
// Grouping {atom, bond} away from the history records restores it.
func init() {
	register(Workload{
		Name: "ammp",
		Description: "SPEC2000 ammp: atom chain + bond lists force loop, " +
			"cold history blocks diluting the shared size class",
		Build:     buildAmmp,
		TestScale: 500,
		RefScale:  2800,
	})
}

// Layouts (all three types in the 48-byte size class).
//
//	atom (40B): 0 next, 8 x, 16 fx, 24 bondHead, 32 hist ptr
//	bond (40B): 0 next, 8 other atom, 16 k, 24 pad
//	hist (40B): 0 vx, 8 vy (cold)
const (
	amAtNext  = 0
	amAtX     = 8
	amAtFX    = 16
	amAtBonds = 24
	amAtHist  = 32

	amBdNext = 0
	amBdB    = 8
	amBdK    = 16

	amGlobAtoms = 0
	amGlobTab   = 1
)

func buildAmmp(scale int) *isa.Program {
	b := prog.NewBuilder("ammp")
	b.Globals(2)

	aa := b.Func("a_m_alloc_atom", 0)
	{
		f := aa
		sz := f.ConstReg(40)
		p := f.Malloc(sz)
		x := f.RandConst(4096)
		f.StoreWord(p, amAtX, x)
		zero := f.ConstReg(0)
		f.StoreWord(p, amAtFX, zero)
		f.StoreWord(p, amAtBonds, zero)
		f.Ret(p)
	}
	ab := b.Func("a_m_alloc_bond", 2) // (a, b)
	{
		f := ab
		pa, pb := f.Param(0), f.Param(1)
		sz := f.ConstReg(40)
		e := f.Malloc(sz)
		f.StoreWord(e, amBdB, pb)
		k := f.RandConst(100)
		f.AddImm(k, k, 1)
		f.StoreWord(e, amBdK, k)
		head := readField(f, pa, amAtBonds)
		f.StoreWord(e, amBdNext, head)
		f.StoreWord(pa, amAtBonds, e)
		f.RetConst(0)
	}
	ah := b.Func("a_m_alloc_hist", 0)
	{
		f := ah
		sz := f.ConstReg(40)
		p := f.Malloc(sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, 0, zero)
		f.StoreWord(p, 8, zero)
		f.Ret(p)
	}

	// force_pass: for each atom, accumulate bonded forces — the hot
	// atom+bond co-traversal.
	fp := b.Func("force_pass", 0)
	{
		f := fp
		acc := f.ConstReg(0)
		listWalk(f, amGlobAtoms, amAtNext, func(a prog.Reg) {
			ax := readField(f, a, amAtX)
			e := f.Reg()
			f.LoadWord(e, a, amAtBonds)
			loop := f.NewLabel()
			done := f.NewLabel()
			f.Bind(loop)
			f.Bz(e, done)
			k := readField(f, e, amBdK)
			other := readField(f, e, amBdB)
			ox := readField(f, other, amAtX)
			d := f.Reg()
			f.Sub(d, ax, ox)
			f.Mul(d, d, k)
			fx := readField(f, a, amAtFX)
			f.Add(fx, fx, d)
			f.StoreWord(a, amAtFX, fx)
			f.Add(acc, acc, d)
			f.LoadWord(e, e, amBdNext)
			f.Jmp(loop)
			f.Bind(done)
		})
		f.Ret(acc)
	}

	// integrate: rare pass updating positions and touching history.
	ig := b.Func("integrate", 0)
	{
		f := ig
		listWalk(f, amGlobAtoms, amAtNext, func(a prog.Reg) {
			fx := readField(f, a, amAtFX)
			x := readField(f, a, amAtX)
			f.Add(x, x, fx)
			f.StoreWord(a, amAtX, x)
			h := readField(f, a, amAtHist)
			touch(f, h, 0)
			touch(f, h, 8)
		})
		f.RetConst(0)
	}

	main := b.Func("main", 0)
	{
		f := main
		n := f.ConstReg(int64(scale))
		// Atom table for random bonding.
		eight := f.ConstReg(8)
		tabSz := f.Reg()
		f.Mul(tabSz, n, eight)
		tab := f.Malloc(tabSz)
		f.StoreGlobal(amGlobTab, tab)
		// Atoms with interleaved cold history blocks.
		f.Loop(n, func(i prog.Reg) {
			a := f.Call("a_m_alloc_atom")
			h := f.Call("a_m_alloc_hist")
			f.StoreWord(a, amAtHist, h)
			listPush(f, amGlobAtoms, a, amAtNext)
			idx := f.Reg()
			f.Sub(idx, n, i)
			off := f.Reg()
			f.Mul(off, idx, eight)
			slot := f.Reg()
			f.Add(slot, tab, off)
			f.StoreWord(slot, 0, a)
		})
		// Bonds: 3 per atom to random partners.
		f.Loop(n, func(i prog.Reg) {
			idx := f.Reg()
			f.Sub(idx, n, i)
			off := f.Reg()
			f.Mul(off, idx, eight)
			slot := f.Reg()
			f.Add(slot, tab, off)
			a := readField(f, slot, 0)
			f.LoopN(3, func(prog.Reg) {
				j := f.Rand(n)
				joff := f.Reg()
				f.Mul(joff, j, eight)
				jslot := f.Reg()
				f.Add(jslot, tab, joff)
				o := readField(f, jslot, 0)
				f.Call("a_m_alloc_bond", a, o)
			})
		})
		// MD loop: force passes with integration every 8th step.
		acc := f.ConstReg(0)
		steps := f.ConstReg(int64(10 + scale/100))
		i := f.Reg()
		f.Const(i, 0)
		f.Loop(steps, func(prog.Reg) {
			r := f.Call("force_pass")
			f.Add(acc, acc, r)
			f.AddImm(i, i, 1)
			seven := f.ConstReg(7)
			m := f.Reg()
			f.And(m, i, seven)
			skip := f.NewLabel()
			f.Bnz(m, skip)
			f.Call("integrate")
			f.Bind(skip)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
