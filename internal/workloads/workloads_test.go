package workloads

import (
	"testing"

	"halo/internal/alloc"
	"halo/internal/mem"
	"halo/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"health", "ft", "analyzer", "ammp", "art", "equake",
		"povray", "omnetpp", "xalanc", "leela", "roms",
		"adv-frag", "adv-adjacent", "adv-phase", "adv-regress"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d workloads, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Fatalf("order[%d] = %s, want %s", i, all[i].Name, name)
		}
		if adv := i >= 11; all[i].Adversarial != adv {
			t.Fatalf("%s: Adversarial = %v, want %v", name, all[i].Adversarial, adv)
		}
	}
	if _, ok := Get("nonexistent"); ok {
		t.Fatal("phantom workload")
	}
}

func TestArtifactFlags(t *testing.T) {
	// The artifact appendix's per-benchmark settings (§A.8).
	om := MustGet("omnetpp")
	if om.ChunkSize != 128<<10 || !om.NoSpare || !om.AlwaysReuse {
		t.Fatalf("omnetpp flags: %+v", om)
	}
	xa := MustGet("xalanc")
	if !xa.NoSpare || !xa.AlwaysReuse {
		t.Fatalf("xalanc flags: %+v", xa)
	}
	ro := MustGet("roms")
	if ro.MaxGroups != 4 {
		t.Fatalf("roms max groups = %d", ro.MaxGroups)
	}
}

// runOnce executes a workload build at the given scale.
func runOnce(t *testing.T, w Workload, scale int, seed uint64) (int64, uint64) {
	t.Helper()
	p := w.Build(scale)
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	m := mem.NewMemory()
	v := vm.New(p, m, alloc.NewSizeSeg(mem.NewOS(m)), nil, vm.Config{Seed: seed})
	res, err := v.Run()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res, v.Steps()
}

func TestAllWorkloadsRunAtTestScale(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, steps := runOnce(t, w, w.TestScale, 5)
			if steps < 10000 {
				t.Fatalf("suspiciously small run: %d steps", steps)
			}
		})
	}
}

func TestScaleInvariantCallSites(t *testing.T) {
	// Profile transfer requires test and ref builds to share call-site
	// addresses (§5.1 methodology).
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a := w.Build(w.TestScale).CallSites()
			b := w.Build(w.RefScale).CallSites()
			if len(a) != len(b) {
				t.Fatalf("call-site counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("site %d: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestWorkloadsDeterministicPerSeed(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			r1, s1 := runOnce(t, w, w.TestScale, 9)
			r2, s2 := runOnce(t, w, w.TestScale, 9)
			if r1 != r2 || s1 != s2 {
				t.Fatalf("nondeterministic: %d/%d vs %d/%d", r1, s1, r2, s2)
			}
		})
	}
}

func TestLeelaUsesLibraryAllocator(t *testing.T) {
	p := MustGet("leela").Build(100)
	idx := p.FuncByName("operator_new")
	if idx < 0 || !p.Funcs[idx].Lib {
		t.Fatal("leela's operator new must be a library function")
	}
}

func TestWorkloadAllocationProfiles(t *testing.T) {
	// Every workload must actually allocate enough small objects for the
	// optimisation to have something to work with.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(w.TestScale)
			m := mem.NewMemory()
			a := alloc.NewSizeSeg(mem.NewOS(m))
			v := vm.New(p, m, a, nil, vm.Config{Seed: 5})
			if _, err := v.Run(); err != nil {
				t.Fatal(err)
			}
			if a.Stats().Allocs < 100 {
				t.Fatalf("only %d allocations", a.Stats().Allocs)
			}
		})
	}
}
