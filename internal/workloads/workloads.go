// Package workloads provides the benchmark programs of the paper's
// evaluation (§5.1), rebuilt as mini-ISA programs whose allocation and
// access structure reproduces what the paper reports about each original:
//
//   - povray: heap data allocated through the pov_malloc wrapper; geometry
//     objects of different types interleaved at allocation, traversed by
//     type (the paper's §3 motivating example, with Copy_* contexts).
//   - omnetpp: discrete-event simulation; per-module messages and payloads
//     allocated through two levels of wrappers, processed from an event heap.
//   - xalanc: deep call-chain indirection — all DOM nodes allocated through
//     a shared three-helper allocator chain, distinguishable only by the
//     full stack ("requiring the traversal of tens of stack frames").
//   - leela: every allocation flows through C++ operator new, a library
//     function: the immediate malloc call site is useless for identification.
//   - roms: direct malloc calls of many uniform field tiles, accessed in
//     shifting sweeps; highly regular yet stream-count-explosive for the
//     hot-data-streams technique.
//   - health, ft, analyzer, ammp, art, equake: the six programs from prior
//     work with direct, distinct allocation sites (§5.1's "easy targets").
//
// Each workload builds at a test scale (profiled) and a ref scale
// (measured); both scales emit byte-identical code apart from immediate
// operands, so call-site addresses — and therefore profiles and selectors —
// carry over, exactly as profiles collected on SPEC test inputs apply to
// ref-input binaries.
package workloads

import (
	"fmt"
	"sort"

	"halo/internal/isa"
	"halo/internal/prog"
)

// Workload describes one benchmark.
type Workload struct {
	Name        string
	Description string
	// Build assembles the program at the given scale.
	Build func(scale int) *isa.Program
	// TestScale is profiled; RefScale is measured (§5.1).
	TestScale int
	RefScale  int

	// Allocator tuning from the artifact appendix (§A.8).
	ChunkSize   uint64 // 0 = default 1 MiB; omnetpp uses 128 KiB
	NoSpare     bool   // --max-spare-chunks 0 (omnetpp, xalanc)
	AlwaysReuse bool   // chunk-reuse limitation (omnetpp, xalanc)
	MaxGroups   int    // --max-groups (roms: 4); 0 = default

	// Adversarial marks workloads from the hostile-heap family
	// (internal/adversary): excluded from the paper-figure experiments,
	// evaluated by the adversarial suite.
	Adversarial bool
}

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns every workload in the paper's presentation order (the six
// prior-work programs, then the five CPU2017 programs).
func All() []Workload {
	order := []string{"health", "ft", "analyzer", "ammp", "art", "equake",
		"povray", "omnetpp", "xalanc", "leela", "roms"}
	out := make([]Workload, 0, len(registry))
	for _, name := range order {
		if w, ok := Get(name); ok {
			out = append(out, w)
		}
	}
	// Append any extras not in the canonical order.
	for _, w := range registry {
		found := false
		for _, name := range order {
			if w.Name == name {
				found = true
				break
			}
		}
		if !found {
			out = append(out, w)
		}
	}
	return out
}

// Get looks a workload up by name.
func Get(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names lists registered workloads alphabetically.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, w := range registry {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}

// MustGet is Get, panicking for unknown names (harness configuration
// errors are programming errors).
func MustGet(name string) Workload {
	w, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q", name)) //halo:errfmt-ok MustGet is the documented panicking variant for harness configuration
	}
	return w
}

// --- shared assembly idioms -------------------------------------------

// listPush links object p to the front of the intrusive list whose head
// lives in global slot g; the next pointer is stored at offset nextOff.
func listPush(f *prog.FuncBuilder, g int, p prog.Reg, nextOff int64) {
	head := f.Reg()
	f.LoadGlobal(head, g)
	f.StoreWord(p, nextOff, head)
	f.StoreGlobal(g, p)
}

// listWalk traverses the list headed at global g, invoking body with the
// current object pointer; nextOff locates the next pointer.
func listWalk(f *prog.FuncBuilder, g int, nextOff int64, body func(p prog.Reg)) {
	p := f.Reg()
	f.LoadGlobal(p, g)
	head := f.NewLabel()
	done := f.NewLabel()
	f.Bind(head)
	f.Bz(p, done)
	body(p)
	f.LoadWord(p, p, nextOff)
	f.Jmp(head)
	f.Bind(done)
}

// listFreeAll frees every element of the list headed at global g.
func listFreeAll(f *prog.FuncBuilder, g int, nextOff int64) {
	p := f.Reg()
	f.LoadGlobal(p, g)
	head := f.NewLabel()
	done := f.NewLabel()
	f.Bind(head)
	f.Bz(p, done)
	next := f.Reg()
	f.LoadWord(next, p, nextOff)
	f.Free(p)
	f.Mov(p, next)
	f.Jmp(head)
	f.Bind(done)
	zero := f.ConstReg(0)
	f.StoreGlobal(g, zero)
}

// touch performs a load-modify-store of the word at [p+off], a generic
// "use this field" idiom.
func touch(f *prog.FuncBuilder, p prog.Reg, off int64) {
	v := f.Reg()
	f.LoadWord(v, p, off)
	f.AddImm(v, v, 1)
	f.StoreWord(p, off, v)
}

// readField loads the word at [p+off] into a fresh register.
func readField(f *prog.FuncBuilder, p prog.Reg, off int64) prog.Reg {
	v := f.Reg()
	f.LoadWord(v, p, off)
	return v
}
