package workloads

import (
	"sync"

	"halo/internal/adversary"
	"halo/internal/isa"
)

// The adversarial workload family: sequences hostile to HALO's grouping,
// discovered (or constructed) by internal/adversary and compiled to the
// same Program interface as the SPEC-style benchmarks, so they flow through
// the full profile → synthesis → rewrite → measure pipeline. They are
// excluded from the paper-figure experiments (Adversarial flag) and
// evaluated by the dedicated adversarial suite instead.
//
// The searched entries run their search once, lazily, at first Build —
// each search is a pure function of its fixed seed, so every process
// discovers the identical sequence (the reproducibility tests in
// internal/adversary pin this).

var (
	advOnce sync.Once
	advSeqs map[string]adversary.Sequence
)

// advSequence returns the named canonical adversarial sequence.
func advSequence(name string) adversary.Sequence {
	advOnce.Do(func() {
		frag := adversary.FragForcer(adversary.FragForcerSeed).Best
		frag.Name = "adv-frag"
		adj := adversary.OverflowProbe(adversary.OverflowProbeSeed).Best
		adj.Name = "adv-adjacent"
		phase := adversary.PhaseShift(adversary.PhaseShiftSeed)
		phase.Name = "adv-phase"
		// adv-regress is the pipeline search's pinned winner, rebuilt from
		// its generation seed: running the search here would drag the whole
		// pipeline into this package (a test-time import cycle), and the
		// advpipe discovery test already proves the search finds this exact
		// sequence.
		regress := adversary.MissRegressorSequence()
		advSeqs = map[string]adversary.Sequence{
			frag.Name:    frag,
			adj.Name:     adj,
			phase.Name:   phase,
			regress.Name: regress,
		}
	})
	s, ok := advSeqs[name]
	if !ok {
		panic("workloads: unknown adversarial sequence " + name) //halo:errfmt-ok registration and lookup are both in this file; a miss is a programming error
	}
	return s
}

// AdvSequence exposes the canonical sequence behind an adversarial
// workload, for the experiments suite's corruption verdict (replaying the
// flattened stream under the shadow oracle) and for corpus generation.
func AdvSequence(name string) adversary.Sequence { return advSequence(name) }

func advBuild(name string) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		s := advSequence(name)
		return adversary.Compile(&s, scale)
	}
}

func init() {
	register(Workload{
		Name:        "adv-frag",
		Description: "searched fragmentation forcer: pins many mostly-empty group chunks resident",
		Build:       advBuild("adv-frag"),
		TestScale:   30,
		RefScale:    120,
		ChunkSize:   1 << 14,
		NoSpare:     true,
		Adversarial: true,
	})
	register(Workload{
		Name:        "adv-adjacent",
		Description: "searched overflow-adjacent probe: co-allocates distinct contexts exactly contiguous",
		Build:       advBuild("adv-adjacent"),
		TestScale:   60,
		RefScale:    240,
		Adversarial: true,
	})
	register(Workload{
		Name:        "adv-phase",
		Description: "phase-shifting server: hot contexts rotate mid-run, training diverges from measurement",
		Build:       advBuild("adv-phase"),
		TestScale:   30,
		RefScale:    120,
		Adversarial: true,
	})
	register(Workload{
		Name:        "adv-regress",
		Description: "pipeline-searched regression: grouping increases L1D misses over the baseline",
		Build:       advBuild("adv-regress"),
		TestScale:   30,
		RefScale:    120,
		Adversarial: true,
	})
}
