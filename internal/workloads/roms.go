package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// roms models the ocean-model benchmark's role in the evaluation: a
// highly regular Fortran program that "tends to call malloc directly", so
// call-site identification is easy — yet the hot-data-streams technique
// drowns: its object-granular streams scatter the program's few
// context-level regularities across an enormous number of hot data streams
// (">150,000" in the paper, against 31 affinity-graph nodes for HALO),
// while HALO's optimisation simply has no effect because the sweeps are
// streaming and placement-insensitive.
//
// The program allocates many uniform field tiles from a handful of direct
// call sites, then sweeps them field-by-field with a rotating tile order,
// so almost every sweep produces new object sequences for SEQUITUR.
// Per the artifact appendix, roms runs with --max-groups 4.
func init() {
	register(Workload{
		Name: "roms",
		Description: "ocean model: uniform field tiles allocated directly, " +
			"rotating streaming sweeps (stream-count explosion for HDS)",
		Build:     buildRoms,
		TestScale: 160,
		RefScale:  420,
		MaxGroups: 4,
	})
}

// Each field is an array of tile pointers; tiles are 512-byte blocks (64
// words). Field tile tables live in one large (untracked) pointer block.
const (
	roTileWords = 63 // payload words per tile; +1 header word = 512B tiles
	roFields    = 6
	roGlobTab   = 0 // base of the field x tile pointer table
	roGlobTiles = 1 // tiles per field
)

func buildRoms(scale int) *isa.Program {
	b := prog.NewBuilder("roms")
	b.Globals(2)

	// Direct allocation sites: one init function per pair of fields, each
	// with its own malloc call — the "easy target" structure.
	for i := 0; i < roFields/2; i++ {
		f := b.Func(romsInitName(i), 2) // (tableSlotBase, tiles)
		base, tiles := f.Param(0), f.Param(1)
		// Two fields per init function = two distinct call sites.
		for j := 0; j < 2; j++ {
			fieldOff := f.ConstReg(int64(j))
			f.Loop(tiles, func(k prog.Reg) {
				sz := f.ConstReg(8 * (roTileWords + 1))
				t := f.Malloc(sz) // distinct context per j by call site
				// slot = base + (fieldOff*tiles + (tiles-k)) * 8
				idx := f.Reg()
				f.Mul(idx, fieldOff, tiles)
				f.Add(idx, idx, tiles)
				f.Sub(idx, idx, k)
				eight := f.ConstReg(8)
				f.Mul(idx, idx, eight)
				slot := f.Reg()
				f.Add(slot, base, idx)
				f.StoreWord(slot, 0, t)
				// Initialise the whole tile, as the model's setup does.
				v := f.RandConst(1000)
				off := f.Reg()
				f.Const(off, 0)
				words := f.ConstReg(roTileWords)
				fill := f.NewLabel()
				fillDone := f.NewLabel()
				f.Bind(fill)
				f.Bz(words, fillDone)
				addr := f.Reg()
				f.Add(addr, t, off)
				f.StoreWord(addr, 0, v)
				f.AddImm(off, off, 8)
				f.AddImm(words, words, -1)
				f.Jmp(fill)
				f.Bind(fillDone)
			})
		}
		f.RetConst(0)
	}

	// sweep(field, phase): stream through the field's tiles in an order
	// rotated by phase, touching every word of each tile sequentially.
	sweep := b.Func("sweep", 2)
	{
		f := sweep
		field, phase := f.Param(0), f.Param(1)
		tab := f.Reg()
		f.LoadGlobal(tab, roGlobTab)
		tiles := f.Reg()
		f.LoadGlobal(tiles, roGlobTiles)
		acc := f.ConstReg(0)
		f.Loop(tiles, func(k prog.Reg) {
			// tile index = (tiles - k + phase) mod tiles; k descends from
			// tiles to 1, so this scans 0..tiles-1 rotated by phase.
			idx := f.Reg()
			f.Sub(idx, tiles, k)
			f.Add(idx, idx, phase)
			f.Mod(idx, idx, tiles)
			// slot = tab + (field*tiles + idx) * 8
			slot := f.Reg()
			f.Mul(slot, field, tiles)
			f.Add(slot, slot, idx)
			eight := f.ConstReg(8)
			f.Mul(slot, slot, eight)
			f.Add(slot, tab, slot)
			t := readField(f, slot, 0)
			// Stream the tile: sequential word loads.
			w := f.ConstReg(roTileWords)
			off := f.Reg()
			f.Const(off, 0)
			inner := f.NewLabel()
			innerDone := f.NewLabel()
			f.Bind(inner)
			f.Bz(w, innerDone)
			addr := f.Reg()
			f.Add(addr, t, off)
			v := readField(f, addr, 0)
			f.Add(acc, acc, v)
			f.AddImm(off, off, 8)
			f.AddImm(w, w, -1)
			f.Jmp(inner)
			f.Bind(innerDone)
		})
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		tiles := f.ConstReg(int64(scale))
		f.StoreGlobal(roGlobTiles, tiles)
		// Pointer table: fields x tiles words, one large allocation.
		tabSz := f.ConstReg(int64(8 * roFields * scale))
		tab := f.Malloc(tabSz)
		f.StoreGlobal(roGlobTab, tab)
		// Initialise fields pairwise.
		for i := 0; i < roFields/2; i++ {
			base := f.Reg()
			off := f.ConstReg(int64(8 * 2 * i * scale))
			f.Add(base, tab, off)
			f.Call(romsInitName(i), base, tiles)
		}
		// Timestep loop: sweep every field from a fresh random phase, so
		// nearly every sweep presents SEQUITUR with a new tile sequence.
		acc := f.ConstReg(0)
		f.LoopN(int64(10+scale/40), func(step prog.Reg) {
			for fi := 0; fi < roFields; fi++ {
				fr := f.ConstReg(int64(fi))
				phase := f.Rand(tiles)
				r := f.Call("sweep", fr, phase)
				f.Add(acc, acc, r)
			}
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}

func romsInitName(i int) string {
	return "init_fields_" + string(rune('u'+i))
}
