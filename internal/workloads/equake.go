package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// equake models the SPEC CPU2000 earthquake simulation's sparse
// matrix-vector kernel: the stiffness matrix is built from many small heap
// blocks — per-row metadata (cold after assembly), and per-nonzero column
// cells and coefficient blocks (both hot: every smvp iteration walks each
// row's cell list and reads the referenced coefficients). Cells and
// coefficients come from distinct call sites and interleave with row
// metadata at assembly time; grouping {cell, coef} recovers dense rows.
func init() {
	register(Workload{
		Name: "equake",
		Description: "SPEC2000 equake: sparse-matrix assembly and " +
			"repeated smvp over cell/coefficient lists",
		Build:     buildEquake,
		TestScale: 300,
		RefScale:  1700,
	})
}

// Layouts.
//
//	rowmeta (48B): 0 cellHead, 8 rowid, 16 nnz (cold after assembly)
//	cell (24B):    0 next, 8 col, 16 coef ptr
//	coef (72B):    0..16 the 3x3 block's hot diagonal words
const (
	eqRowCells = 0 // used during assembly only
	eqRowID    = 8
	eqRowNNZ   = 16
	eqRowNext  = 24 // metadata list linkage

	eqCellNext = 0
	eqCellCol  = 8
	eqCellCoef = 16

	eqGlobRows   = 0 // row cell-head table (large, untracked)
	eqGlobN      = 1
	eqGlobVec    = 2 // x vector (large, untracked)
	eqGlobMetas  = 3 // rowmeta list head (cold)
	eqGlobCoords = 4 // coordinate record list head (cold)
)

func buildEquake(scale int) *isa.Program {
	b := prog.NewBuilder("equake")
	b.Globals(5)

	mr := b.Func("alloc_rowmeta", 0)
	{
		f := mr
		sz := f.ConstReg(48)
		p := f.Malloc(sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, eqRowCells, zero)
		f.Ret(p)
	}
	mc := b.Func("alloc_cell", 0)
	{
		f := mc
		sz := f.ConstReg(24)
		p := f.Malloc(sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, eqCellNext, zero)
		f.Ret(p)
	}
	// Node-coordinate records: assembly-only data sharing the cells' size
	// class, allocated with every nonzero — the dilution smvp pays for
	// under size-segregated placement.
	mx := b.Func("alloc_coord", 0)
	{
		f := mx
		sz := f.ConstReg(24)
		p := f.Malloc(sz)
		v := f.RandConst(4096)
		f.StoreWord(p, 8, v)
		listPush(f, eqGlobCoords, p, 0)
		f.Ret(p)
	}
	mk := b.Func("alloc_coef", 0)
	{
		f := mk
		sz := f.ConstReg(72)
		p := f.Malloc(sz)
		v := f.RandConst(100)
		f.StoreWord(p, 0, v)
		f.StoreWord(p, 8, v)
		f.StoreWord(p, 16, v)
		f.Ret(p)
	}

	// assemble_row(rowid, n): build one row with 3-6 nonzeros. The row's
	// metadata joins a separate cold list; the cell head is returned for
	// the row table, which is what smvp traverses.
	ar := b.Func("assemble_row", 2)
	{
		f := ar
		rowid, n := f.Param(0), f.Param(1)
		meta := f.Call("alloc_rowmeta")
		f.StoreWord(meta, eqRowID, rowid)
		nnz := f.RandConst(4)
		f.AddImm(nnz, nnz, 3)
		f.StoreWord(meta, eqRowNNZ, nnz)
		listPush(f, eqGlobMetas, meta, eqRowNext)
		f.Loop(nnz, func(prog.Reg) {
			cell := f.Call("alloc_cell")
			coef := f.Call("alloc_coef")
			// Roughly every other nonzero also records node coordinates.
			cp := f.RandConst(2)
			noCoord := f.NewLabel()
			f.Bz(cp, noCoord)
			f.Call("alloc_coord")
			f.Bind(noCoord)
			col := f.Rand(n)
			f.StoreWord(cell, eqCellCol, col)
			f.StoreWord(cell, eqCellCoef, coef)
			head := readField(f, meta, eqRowCells)
			f.StoreWord(cell, eqCellNext, head)
			f.StoreWord(meta, eqRowCells, cell)
		})
		f.Ret(readField(f, meta, eqRowCells))
	}

	// checkpoint: the rare pass over row metadata and coordinates (cold).
	cp := b.Func("checkpoint", 0)
	{
		f := cp
		acc := f.ConstReg(0)
		listWalk(f, eqGlobMetas, eqRowNext, func(m prog.Reg) {
			nnz := readField(f, m, eqRowNNZ)
			f.Add(acc, acc, nnz)
		})
		listWalk(f, eqGlobCoords, 0, func(c prog.Reg) {
			v := readField(f, c, 8)
			f.Add(acc, acc, v)
		})
		f.Ret(acc)
	}

	// smvp: y[row] += sum over cells of coef * x[col].
	sm := b.Func("smvp", 0)
	{
		f := sm
		n := f.Reg()
		f.LoadGlobal(n, eqGlobN)
		rows := f.Reg()
		f.LoadGlobal(rows, eqGlobRows)
		vec := f.Reg()
		f.LoadGlobal(vec, eqGlobVec)
		eight := f.ConstReg(8)
		acc := f.ConstReg(0)
		f.Loop(n, func(i prog.Reg) {
			idx := f.Reg()
			f.Sub(idx, n, i)
			off := f.Reg()
			f.Mul(off, idx, eight)
			slot := f.Reg()
			f.Add(slot, rows, off)
			cell := readField(f, slot, 0)
			sum := f.ConstReg(0)
			loop := f.NewLabel()
			done := f.NewLabel()
			f.Bind(loop)
			f.Bz(cell, done)
			col := readField(f, cell, eqCellCol)
			coef := readField(f, cell, eqCellCoef)
			c0 := readField(f, coef, 0)
			c1 := readField(f, coef, 8)
			xoff := f.Reg()
			f.Mul(xoff, col, eight)
			xaddr := f.Reg()
			f.Add(xaddr, vec, xoff)
			x := readField(f, xaddr, 0)
			t := f.Reg()
			f.Mul(t, c0, x)
			f.Add(t, t, c1)
			// The 3x3 block multiply is compute-heavy.
			for i := 0; i < 6; i++ {
				f.Mul(t, t, c0)
				f.Add(t, t, c1)
			}
			f.Add(sum, sum, t)
			f.LoadWord(cell, cell, eqCellNext)
			f.Jmp(loop)
			f.Bind(done)
			f.Add(acc, acc, sum)
		})
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		n := f.ConstReg(int64(scale))
		f.StoreGlobal(eqGlobN, n)
		eight := f.ConstReg(8)
		tabSz := f.Reg()
		f.Mul(tabSz, n, eight)
		rows := f.Malloc(tabSz)
		f.StoreGlobal(eqGlobRows, rows)
		vec := f.Malloc(tabSz)
		f.StoreGlobal(eqGlobVec, vec)
		// Assembly.
		f.Loop(n, func(i prog.Reg) {
			idx := f.Reg()
			f.Sub(idx, n, i)
			head := f.Call("assemble_row", idx, n)
			off := f.Reg()
			f.Mul(off, idx, eight)
			slot := f.Reg()
			f.Add(slot, rows, off)
			f.StoreWord(slot, 0, head)
			// Seed x[idx].
			xslot := f.Reg()
			f.Add(xslot, vec, off)
			v := f.RandConst(64)
			f.StoreWord(xslot, 0, v)
		})
		// Iterated smvp with a rare metadata checkpoint.
		acc := f.ConstReg(0)
		step := f.Reg()
		f.Const(step, 0)
		f.LoopN(int64(24+scale/80), func(prog.Reg) {
			r := f.Call("smvp")
			f.Add(acc, acc, r)
			f.AddImm(step, step, 1)
			seven := f.ConstReg(7)
			m := f.Reg()
			f.And(m, step, seven)
			skip := f.NewLabel()
			f.Bnz(m, skip)
			c := f.Call("checkpoint")
			f.Add(acc, acc, c)
			f.Bind(skip)
		})
		f.Ret(acc)
	}

	return b.MustBuild()
}
