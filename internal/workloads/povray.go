package workloads

import (
	"halo/internal/isa"
	"halo/internal/prog"
)

// povray models the §3 motivating example in its original context: a
// parser allocates geometry objects (planes, CSG composites) and textures
// through the pov_malloc wrapper, interleaving them on the heap; Copy_Plane
// and Copy_CSG duplicate geometry through the same wrapper (the contexts
// Figure 9 groups); rendering then traverses only the geometry list,
// leaving textures cold. A size-segregated allocator scatters cold textures
// between hot geometry; HALO's grouping separates them. Because every
// allocation's immediate call site is inside pov_malloc, call-site-keyed
// identification (hot data streams) sees a single context and fails.
func init() {
	register(Workload{
		Name: "povray",
		Description: "ray tracer: geometry/texture allocation through the " +
			"pov_malloc wrapper, typed traversal (§3 motivating example)",
		Build:     buildPovray,
		TestScale: 700,
		RefScale:  4200,
	})
}

// Object layouts (byte offsets).
//
//	geometry (plane 56B, csg 72B): 0 sibling, 8 type, 16 bbox, 24 data,
//	                               32 texture ptr
//	texture (40B):                 0 next, 8 kind, 16 scale
const (
	povSibling = 0
	povType    = 8
	povBBox    = 16
	povData    = 24
	povTexPtr  = 32

	povTexNext = 0
	povTexKind = 8

	povGeomList = 0 // global slots
	povTexList  = 1
)

func buildPovray(scale int) *isa.Program {
	b := prog.NewBuilder("povray")
	b.Globals(2)

	// pov_malloc: the wrapper nearly all povray heap data flows through.
	pm := b.Func("pov_malloc", 1)
	pm.Ret(pm.Malloc(pm.Param(0)))

	// get_token: allocates a transient token buffer through the wrapper
	// and frees it immediately — parser churn that leaves dead holes in
	// any whole-heap pool formed around pov_malloc's single malloc site.
	gt := b.Func("get_token", 0)
	{
		f := gt
		sz := f.ConstReg(48)
		buf := f.Call("pov_malloc", sz)
		tok := f.RandConst(4)
		f.StoreWord(buf, 0, tok)
		v := readField(f, buf, 0)
		f.Free(buf)
		f.Ret(v)
	}

	// create_plane / create_csg / create_texture: the §3 create_* set.
	mkCreate := func(name string, size int64, typ int64) {
		f := b.Func(name, 0)
		sz := f.ConstReg(size)
		p := f.Call("pov_malloc", sz)
		tv := f.ConstReg(typ)
		f.StoreWord(p, povType, tv)
		f.StoreWord(p, povBBox, tv)
		zero := f.ConstReg(0)
		f.StoreWord(p, povData, zero)
		if size > povTexPtr {
			f.StoreWord(p, povTexPtr, zero)
		}
		f.Ret(p)
	}
	mkCreate("create_plane", 56, 1)
	mkCreate("create_csg", 72, 2)
	mkCreate("create_texture", 40, 3)

	// Copy_Plane / Copy_CSG duplicate existing geometry (Figure 9 shows
	// these grouped with the create contexts).
	mkCopy := func(name string, size int64) {
		f := b.Func(name, 1)
		src := f.Param(0)
		sz := f.ConstReg(size)
		p := f.Call("pov_malloc", sz)
		for _, off := range []int64{povType, povBBox, povData, povTexPtr} {
			v := readField(f, src, off)
			f.StoreWord(p, off, v)
		}
		f.Ret(p)
	}
	mkCopy("Copy_Plane", 56)
	mkCopy("Copy_CSG", 72)

	// parse: reads scale tokens; planes and CSGs join the geometry list,
	// textures go to their own list and are attached to the most recent
	// geometry object.
	parse := b.Func("parse", 1)
	{
		f := parse
		n := f.Param(0)
		f.Loop(n, func(i prog.Reg) {
			tok := f.Call("get_token") // 0,1: plane; 2: csg; 3: texture
			two := f.ConstReg(2)
			three := f.ConstReg(3)
			isTex := f.Reg()
			f.Eq(isTex, tok, three)
			isCSG := f.Reg()
			f.Eq(isCSG, tok, two)

			texL := f.NewLabel()
			csgL := f.NewLabel()
			doneL := f.NewLabel()
			f.Bnz(isTex, texL)
			f.Bnz(isCSG, csgL)

			// Plane.
			p1 := f.Call("create_plane")
			listPush(f, povGeomList, p1, povSibling)
			f.Jmp(doneL)

			// CSG: also duplicated half the time through Copy_CSG.
			f.Bind(csgL)
			p2 := f.Call("create_csg")
			listPush(f, povGeomList, p2, povSibling)
			dup := f.RandConst(2)
			skipDup := f.NewLabel()
			f.Bz(dup, skipDup)
			p3 := f.Call("Copy_CSG", p2)
			listPush(f, povGeomList, p3, povSibling)
			f.Bind(skipDup)
			f.Jmp(doneL)

			// Texture: linked to the texture list and to the newest
			// geometry object.
			f.Bind(texL)
			t := f.Call("create_texture")
			listPush(f, povTexList, t, povTexNext)
			geo := f.Reg()
			f.LoadGlobal(geo, povGeomList)
			attach := f.NewLabel()
			f.Bz(geo, attach)
			f.StoreWord(geo, povTexPtr, t)
			f.Bind(attach)

			f.Bind(doneL)
		})
		f.RetConst(0)
	}

	// render: hot traversal of the geometry list; texture objects are
	// touched only for one in eight geometry objects.
	render := b.Func("render", 1)
	{
		f := render
		iters := f.Param(0)
		acc := f.ConstReg(0)
		f.Loop(iters, func(prog.Reg) {
			listWalk(f, povGeomList, povSibling, func(p prog.Reg) {
				ty := readField(f, p, povType)
				bb := readField(f, p, povBBox)
				f.Add(acc, acc, ty)
				f.Add(acc, acc, bb)
				touch(f, p, povData)
				// Rarely consult the texture.
				rare := f.RandConst(8)
				skip := f.NewLabel()
				f.Bnz(rare, skip)
				tex := readField(f, p, povTexPtr)
				f.Bz(tex, skip)
				k := readField(f, tex, povTexKind)
				f.Add(acc, acc, k)
				f.Bind(skip)
			})
		})
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		n := f.ConstReg(int64(scale))
		f.Call("parse", n)
		iters := f.ConstReg(int64(28 + scale/200))
		r := f.Call("render", iters)
		listFreeAll(f, povGeomList, povSibling)
		listFreeAll(f, povTexList, povTexNext)
		f.Ret(r)
	}

	return b.MustBuild()
}
