package halloc_test

// The layout property test: for every grouped layout the allocator
// produces, no two live regions overlap, every grouped region stays inside
// its chunk's payload span, and forwarded pointers never alias a group
// chunk — table-driven across both fallback backends in internal/alloc,
// every replay configuration, and a spread of generated op streams. The
// shadow-heap oracle carries the invariants; this test drives enough
// distinct layouts through it to make "for every layout" credible.

import (
	"testing"

	"halo/internal/adversary"
)

func TestLayoutPropertiesAcrossBackends(t *testing.T) {
	backends := []struct {
		name        string
		boundaryTag bool
	}{
		{"sizeseg", false},
		{"boundarytag", true},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			for _, cfg := range adversary.ReplayConfigs() {
				cfg := cfg
				cfg.BoundaryTag = be.boundaryTag
				t.Run(cfg.Name, func(t *testing.T) {
					for seed := uint64(1); seed <= 8; seed++ {
						s := adversary.Generate("prop", seed, adversary.GenParams{
							Slots:       32,
							Sites:       10,
							Phases:      2,
							OpsPerPhase: 150,
							HotRefs:     6,
							ChurnRefs:   3,
							Loops:       3,
						})
						res, err := adversary.ReplayChecked(s.HeapOps(6), cfg)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						if res.Grouped == 0 || res.Forwarded == 0 {
							t.Fatalf("seed %d: degenerate split grouped=%d forwarded=%d — the property was not exercised",
								seed, res.Grouped, res.Forwarded)
						}
					}
				})
			}
		})
	}
}

// TestLayoutPropertiesOnDiscoveredAdversaries replays the canonical
// adversarial sequences — the ones shipped as workloads and checked into
// the fuzz corpus — under the oracle on both backends.
func TestLayoutPropertiesOnDiscoveredAdversaries(t *testing.T) {
	seqs := map[string]adversary.Sequence{
		"adv-frag":     adversary.FragForcer(adversary.FragForcerSeed).Best,
		"adv-adjacent": adversary.OverflowProbe(adversary.OverflowProbeSeed).Best,
		"adv-phase":    adversary.PhaseShift(adversary.PhaseShiftSeed),
		"adv-regress":  adversary.MissRegressorSequence(),
	}
	for name, s := range seqs {
		s := s
		t.Run(name, func(t *testing.T) {
			ops := s.HeapOps(8)
			for _, cfg := range adversary.ReplayConfigs() {
				for _, bt := range []bool{false, true} {
					cfg := cfg
					cfg.BoundaryTag = bt
					if _, err := adversary.ReplayChecked(ops, cfg); err != nil {
						t.Fatalf("config %s (boundary-tag %v): %v", cfg.Name, bt, err)
					}
				}
			}
		})
	}
}
