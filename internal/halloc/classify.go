package halloc

import (
	"halo/internal/bits"
	"halo/internal/isa"
)

// BitSelector is a selector lowered to group-state bit indices: a
// disjunction of conjunctions, where each conjunction lists the bits that
// must all be set for the allocation to belong to Group. The identification
// stage produces selectors over call sites; the pipeline lowers them to bit
// indices using the rewriter's site-to-bit assignment.
type BitSelector struct {
	Group int
	Conj  [][]int
}

// Matches evaluates the selector against the group state.
func (s BitSelector) Matches(state *bits.Vec) bool {
	for _, conj := range s.Conj {
		if state.TestAll(conj) {
			return true
		}
	}
	return false
}

// SelectorClassifier implements HALO's runtime identification: it checks
// the group-state vector against each selector in priority order (§4.4).
type SelectorClassifier struct {
	state     *bits.Vec
	selectors []BitSelector
	numGroups int
}

// NewSelectorClassifier builds the classifier. Selectors are evaluated in
// slice order; the identification stage emits them most-popular-first.
func NewSelectorClassifier(state *bits.Vec, selectors []BitSelector) *SelectorClassifier {
	max := 0
	for _, s := range selectors {
		if s.Group+1 > max {
			max = s.Group + 1
		}
	}
	return &SelectorClassifier{state: state, selectors: selectors, numGroups: max}
}

// Classify implements Classifier.
func (c *SelectorClassifier) Classify(size uint64, site isa.Addr) int {
	for _, s := range c.selectors {
		if s.Matches(c.state) {
			return s.Group
		}
	}
	return -1
}

// NumGroups implements Classifier.
func (c *SelectorClassifier) NumGroups() int { return c.numGroups }

// SiteClassifier implements the hot-data-streams runtime identification:
// group membership is keyed solely by the immediate call site of the
// allocation procedure, as in Chilimbi & Shaham's scheme (§5.1).
type SiteClassifier struct {
	groups    map[isa.Addr]int
	numGroups int
}

// NewSiteClassifier builds the classifier from a site-to-group table.
func NewSiteClassifier(groups map[isa.Addr]int) *SiteClassifier {
	max := 0
	for _, g := range groups {
		if g+1 > max {
			max = g + 1
		}
	}
	return &SiteClassifier{groups: groups, numGroups: max}
}

// Classify implements Classifier.
func (c *SiteClassifier) Classify(size uint64, site isa.Addr) int {
	if g, ok := c.groups[site]; ok {
		return g
	}
	return -1
}

// NumGroups implements Classifier.
func (c *SiteClassifier) NumGroups() int { return c.numGroups }

// RandomClassifier assigns every eligible allocation to one of Pools groups
// uniformly at random: the deliberately terrible policy of Figure 15, used
// to measure how sensitive each benchmark is to small-object placement.
type RandomClassifier struct {
	pools int
	rng   uint64
}

// NewRandomClassifier builds the classifier with the given pool count and
// seed (the paper uses four pools).
func NewRandomClassifier(pools int, seed uint64) *RandomClassifier {
	if pools <= 0 {
		pools = 4
	}
	if seed == 0 {
		seed = 1
	}
	return &RandomClassifier{pools: pools, rng: seed}
}

// Classify implements Classifier.
func (c *RandomClassifier) Classify(size uint64, site isa.Addr) int {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return int((x * 0x2545F4914F6CDD1D) % uint64(c.pools))
}

// NumGroups implements Classifier.
func (c *RandomClassifier) NumGroups() int { return c.pools }
