package halloc

import (
	"strings"
	"testing"

	"halo/internal/mem"
)

// TestHallocRegressions pins the three correctness fixes of the group
// allocator: calloc zeroing (including reused spare chunks), calloc
// overflow forwarding, oversized-request clamping, and double-free
// detection. Each case failed before its fix.
func TestHallocRegressions(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		wantPanic string // non-empty: the case must panic with this substring
		run       func(t *testing.T, a *GroupAlloc, osm *mem.OS)
	}{
		{
			name: "calloc_zeroes_fresh_chunk",
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				p := a.Calloc(2, 8) // 16 % 3 != 0: grouped
				if a.chunkOf(p) == nil {
					t.Fatal("calloc did not land in a group chunk")
				}
				if got := osm.Memory().ReadWord(p); got != 0 {
					t.Fatalf("calloc memory = %#x, want 0", got)
				}
			},
		},
		{
			name: "calloc_zeroes_reused_spare_chunk",
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				// Dirty a grouped chunk, empty it (the chunk parks on the
				// spare list with its pages intact), then calloc from the
				// same group: the reused region must not leak stale bytes.
				p := a.Malloc(16)
				if a.chunkOf(p) == nil {
					t.Fatal("expected grouped allocation")
				}
				osm.Memory().WriteWord(p, 0xDEADBEEF)
				osm.Memory().WriteWord(p+8, 0xFEEDFACE)
				a.Free(p)
				q := a.Calloc(2, 8)
				if a.chunkOf(q) == nil {
					t.Fatal("expected grouped calloc")
				}
				if q != p {
					t.Fatalf("spare chunk not reused: %#x != %#x", q, p)
				}
				if lo, hi := osm.Memory().ReadWord(q), osm.Memory().ReadWord(q+8); lo != 0 || hi != 0 {
					t.Fatalf("calloc leaked stale bytes: %#x %#x", lo, hi)
				}
			},
		},
		{
			name: "calloc_forwarded_zeroes",
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				p := a.Calloc(3, 11) // 33 % 3 == 0: classifier declines
				if a.chunkOf(p) != nil {
					t.Fatal("ungrouped calloc landed in a group chunk")
				}
				osm.Memory().WriteWord(p, 0xABCD)
				a.Free(p)
				q := a.Calloc(3, 11) // fallback recycles the same block
				if got := osm.Memory().ReadWord(q); got != 0 {
					t.Fatalf("forwarded calloc memory = %#x, want 0", got)
				}
			},
		},
		{
			name: "calloc_overflow_fails",
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				// n*size wraps to 16 bytes; the request must fail rather
				// than hand back a tiny region.
				if p := a.Calloc(1<<62+1, 16); p != 0 {
					t.Fatalf("overflowing calloc returned %#x, want 0", p)
				}
				if p := a.Calloc(^uint64(0), 2); p != 0 {
					t.Fatalf("overflowing calloc returned %#x, want 0", p)
				}
				// Benign zero-count calloc still succeeds as before.
				if a.Stats().Allocs != 0 {
					t.Fatalf("failed callocs recorded %d grouped allocs", a.Stats().Allocs)
				}
			},
		},
		{
			name: "oversized_request_forwards",
			cfg:  Config{ChunkSize: 4096, SlabSize: 64 << 10, MaxGroupedSize: 8192},
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				// MaxGroupedSize exceeds the chunk payload (the 128 KiB
				// omnetpp artifact shape, scaled down): a request larger
				// than ChunkSize-header must forward, not bump past the
				// chunk end into the neighbour.
				small := a.Malloc(1024) // fits: grouped
				if a.chunkOf(small) == nil {
					t.Fatal("small request not grouped")
				}
				big := a.Malloc(5000) // 5000+64 > 4096: must forward
				if a.chunkOf(big) != nil {
					t.Fatalf("oversized request served from a group chunk at %#x", big)
				}
				if got := a.SizeOf(big); got < 5000 {
					t.Fatalf("SizeOf(big) = %d", got)
				}
				// And a grouped neighbour allocated after stays intact.
				next := a.Malloc(1024)
				osm.Memory().WriteWord(next, 0x1234)
				if got := osm.Memory().ReadWord(next); got != 0x1234 {
					t.Fatalf("neighbouring chunk corrupted: %#x", got)
				}
			},
		},
		{
			name:      "double_free_of_live_chunk_pointer_panics",
			wantPanic: "double or invalid free",
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				p := a.Malloc(16)
				q := a.Malloc(16) // keeps the chunk live after p is freed
				_ = q
				a.Free(p)
				a.Free(p) // stats.LiveObjects would underflow silently
			},
		},
		{
			name:      "free_of_never_allocated_chunk_pointer_panics",
			wantPanic: "double or invalid free",
			run: func(t *testing.T, a *GroupAlloc, osm *mem.OS) {
				p := a.Malloc(16)
				a.Free(p + 8) // interior pointer: no sizes entry
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, osm := newTestAlloc(tc.cfg)
			defer func() {
				r := recover()
				switch {
				case tc.wantPanic == "" && r != nil:
					t.Fatalf("unexpected panic: %v", r)
				case tc.wantPanic != "" && r == nil:
					t.Fatalf("expected panic containing %q", tc.wantPanic)
				case tc.wantPanic != "":
					if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.wantPanic) {
						t.Fatalf("panic = %v, want substring %q", r, tc.wantPanic)
					}
				}
			}()
			tc.run(t, a, osm)
		})
	}
}

// TestCallocStatsMatchMalloc checks grouped callocs participate in the
// same accounting as mallocs (they reach groupMalloc).
func TestCallocStatsMatchMalloc(t *testing.T) {
	a, _ := newTestAlloc(Config{})
	p := a.Calloc(2, 8)
	if a.chunkOf(p) == nil {
		t.Fatal("grouped calloc expected")
	}
	if a.GroupedAllocs() != 1 || a.Stats().LiveObjects != 1 || a.Stats().LiveBytes != 16 {
		t.Fatalf("stats = %+v, grouped=%d", a.Stats(), a.GroupedAllocs())
	}
	a.Free(p)
	if a.Stats().LiveObjects != 0 || a.Stats().LiveBytes != 0 {
		t.Fatalf("stats after free = %+v", a.Stats())
	}
}
