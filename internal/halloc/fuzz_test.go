package halloc_test

// FuzzHalloc drives the group allocator with byte-decoded heap-op streams
// (the adversary's portable format: any input decodes to a valid stream)
// and validates every operation against the shadow-heap oracle, under each
// replay configuration and both fallback backends. A finding here is an
// allocator correctness bug: overlapping regions, a grouped region escaping
// its chunk, a forwarded region aliasing a chunk span, corrupted contents,
// a silently accepted invalid free, or a calloc overflow handed out.
//
// The seed corpus has two halves: the PR 4 regression shapes encoded
// inline below (double free, n*size overflow, oversize clamp), and the
// adversary-discovered sequences checked in under testdata/fuzz/FuzzHalloc
// (regenerate with `go test -run TestWriteFuzzCorpus -write-corpus`).

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"halo/internal/adversary"
)

// replayAll replays one input under every configuration; fatal on any
// oracle finding.
func replayAll(t *testing.T, data []byte) {
	t.Helper()
	ops := adversary.DecodeHeapOps(data)
	for _, cfg := range adversary.ReplayConfigs() {
		for _, bt := range []bool{false, true} {
			cfg := cfg
			cfg.BoundaryTag = bt
			if _, err := adversary.ReplayChecked(ops, cfg); err != nil {
				t.Fatalf("config %s (boundary-tag %v): %v", cfg.Name, bt, err)
			}
		}
	}
}

// pr4Streams encodes the PR 4 hardening regressions as op streams.
func pr4Streams() [][]byte {
	enc := adversary.EncodeHeapOps
	op := func(k adversary.HeapOpKind, slot uint8, site uint16, size, aux uint32) adversary.HeapOp {
		return adversary.HeapOp{Kind: k, Slot: slot, Site: site, Size: size, Aux: aux}
	}
	return [][]byte{
		// Double free: allocate grouped, free, then probe the stale pointer.
		enc([]adversary.HeapOp{
			op(adversary.HeapMalloc, 0, 1, 63, 0),
			op(adversary.HeapWrite, 0, 0, 0, 9),
			op(adversary.HeapFree, 0, 0, 0, 0),
			op(adversary.HeapBadFree, 0, 0, 0, 0),
			op(adversary.HeapMalloc, 1, 1, 63, 0),
			op(adversary.HeapBadFree, 1, 0, 1, 0),
		}),
		// Calloc n*size overflow (Aux%13 == 0 triggers the wrap probe) next
		// to ordinary calloc traffic.
		enc([]adversary.HeapOp{
			op(adversary.HeapCalloc, 0, 2, 100, 13),
			op(adversary.HeapCalloc, 1, 2, 100, 7),
			op(adversary.HeapRead, 1, 0, 0, 0),
			op(adversary.HeapCalloc, 2, 3, 4000, 26),
		}),
		// Oversize clamp: requests above the grouped limit and around the
		// chunk-capacity boundary, then churn that reuses the chunks.
		enc([]adversary.HeapOp{
			op(adversary.HeapMalloc, 0, 1, 4095, 0),
			op(adversary.HeapMalloc, 1, 1, 4096, 0),
			op(adversary.HeapMalloc, 2, 1, 8191, 0),
			op(adversary.HeapWrite, 2, 0, 8, 1),
			op(adversary.HeapFree, 1, 0, 0, 0),
			op(adversary.HeapMalloc, 3, 6, 4000, 0),
			op(adversary.HeapRealloc, 2, 6, 100, 0),
			op(adversary.HeapRead, 2, 0, 8, 0),
			op(adversary.HeapFree, 0, 0, 0, 0),
			op(adversary.HeapFree, 2, 0, 0, 0),
			op(adversary.HeapFree, 3, 0, 0, 0),
		}),
	}
}

// advStreams flattens the canonical adversarial sequences.
func advStreams() map[string][]byte {
	out := make(map[string][]byte)
	frag := adversary.FragForcer(adversary.FragForcerSeed).Best
	out["adv-frag"] = adversary.EncodeHeapOps(frag.HeapOps(4))
	adj := adversary.OverflowProbe(adversary.OverflowProbeSeed).Best
	out["adv-adjacent"] = adversary.EncodeHeapOps(adj.HeapOps(4))
	phase := adversary.PhaseShift(adversary.PhaseShiftSeed)
	out["adv-phase"] = adversary.EncodeHeapOps(phase.HeapOps(4))
	regress := adversary.MissRegressorSequence()
	out["adv-regress"] = adversary.EncodeHeapOps(regress.HeapOps(4))
	return out
}

func FuzzHalloc(f *testing.F) {
	for _, s := range pr4Streams() {
		f.Add(s)
	}
	// The committed adversary corpus also lives under testdata/fuzz and is
	// picked up automatically; adding the freshly derived streams too keeps
	// the fuzzer honest even if the checked-in files go stale.
	for _, s := range advStreams() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		replayAll(t, data)
	})
}

var writeCorpus = flag.Bool("write-corpus", false, "regenerate testdata/fuzz/FuzzHalloc from the adversary's sequences")

// TestWriteFuzzCorpus regenerates the checked-in adversary corpus when run
// with -write-corpus; otherwise it verifies the files exist and replay
// clean (the corpus-replay half of the CI fuzz job runs the whole corpus
// through `go test` seed-mode anyway; this gives the failure a name).
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzHalloc")
	if *writeCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range advStreams() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name, data := range advStreams() {
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("missing corpus seed %s (regenerate with -write-corpus): %v", name, err)
		}
		replayAll(t, data)
	}
}
