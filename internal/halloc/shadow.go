package halloc

import (
	"fmt"
	"sort"

	"halo/internal/mem"
)

// ShadowHeap is an independent heap oracle for fuzzing and adversarial
// stress: it tracks every live region's bounds and every byte the harness
// has written through it, using nothing from the allocator under test. The
// fuzz harness routes all allocations, frees and data accesses through the
// shadow, then asks it to verify that the allocator never handed out
// overlapping regions, never let a grouped region escape its chunk's span,
// never aliased a forwarded region with a group chunk, and never corrupted
// a byte the program wrote.
//
// The shadow deliberately duplicates state the allocator also keeps (sizes,
// liveness) — that redundancy is the point. All checks report errors rather
// than panicking: a failing check is a finding about the allocator, not a
// corruption trap inside it.
type ShadowHeap struct {
	m    *mem.Memory
	live map[uint64]*shadowObj
}

type shadowObj struct {
	size    uint64
	data    []byte // expected value of each written byte
	written []bool // which bytes the harness has written
}

// NewShadowHeap builds an oracle over the memory the allocator under test
// operates on.
func NewShadowHeap(m *mem.Memory) *ShadowHeap {
	return &ShadowHeap{m: m, live: make(map[uint64]*shadowObj)}
}

// LiveCount reports the number of live tracked regions.
func (s *ShadowHeap) LiveCount() int { return len(s.live) }

// Live returns the tracked live regions sorted by base address.
func (s *ShadowHeap) Live() []mem.Region {
	out := make([]mem.Region, 0, len(s.live))
	for base, o := range s.live {
		out = append(out, mem.Region{Base: base, Size: o.size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Contains reports whether ptr is the base of a live tracked region.
func (s *ShadowHeap) Contains(ptr uint64) bool {
	_, ok := s.live[ptr]
	return ok
}

// SizeOf reports the tracked size of a live region, 0 if not live.
func (s *ShadowHeap) SizeOf(ptr uint64) uint64 {
	if o, ok := s.live[ptr]; ok {
		return o.size
	}
	return 0
}

// OnAlloc records a fresh allocation. It fails if the new region overlaps
// any live region (the fundamental disjointness invariant) or, for zeroed
// allocations, if the region holds a nonzero byte.
func (s *ShadowHeap) OnAlloc(base, size uint64, zeroed bool) error {
	if base == 0 {
		return fmt.Errorf("shadow: allocator returned null for a %d-byte request", size)
	}
	if size == 0 {
		size = 1 // a zero-size allocation still owns a minimal region
	}
	for b, o := range s.live {
		if base < b+o.size && b < base+size {
			return fmt.Errorf("shadow: new region [%#x,%#x) overlaps live [%#x,%#x)",
				base, base+size, b, b+o.size)
		}
	}
	o := &shadowObj{size: size, data: make([]byte, size), written: make([]bool, size)}
	if zeroed {
		for i := uint64(0); i < size; i++ {
			if got := s.m.ByteAt(base + i); got != 0 {
				return fmt.Errorf("shadow: zeroed region [%#x,%#x) holds %#x at +%d",
					base, base+size, got, i)
			}
			o.written[i] = true // calloc's contract covers every byte
		}
	}
	s.live[base] = o
	return nil
}

// OnRealloc records a reallocation: the old region dies, the new one must
// be disjoint from every other live region, and the common prefix of the
// old contents must have moved intact.
func (s *ShadowHeap) OnRealloc(oldBase, newBase, newSize uint64) error {
	old, ok := s.live[oldBase]
	if !ok {
		return fmt.Errorf("shadow: realloc of untracked region %#x", oldBase)
	}
	delete(s.live, oldBase)
	if err := s.OnAlloc(newBase, newSize, false); err != nil {
		return err
	}
	o := s.live[newBase]
	n := old.size
	if newSize < n {
		n = newSize
	}
	for i := uint64(0); i < n; i++ {
		if !old.written[i] {
			continue
		}
		if got := s.m.ByteAt(newBase + i); got != old.data[i] {
			return fmt.Errorf("shadow: realloc %#x->%#x lost byte +%d: %#x, want %#x",
				oldBase, newBase, i, got, old.data[i])
		}
		o.data[i], o.written[i] = old.data[i], true
	}
	return nil
}

// OnFree records a free of a live region.
func (s *ShadowHeap) OnFree(base uint64) error {
	if _, ok := s.live[base]; !ok {
		return fmt.Errorf("shadow: free of untracked region %#x", base)
	}
	delete(s.live, base)
	return nil
}

// Write stores the low `size` bytes of v at base+off through the program
// memory and records the expected bytes. Writes must stay in bounds — the
// harness, not the oracle, enforces that op generation never overflows.
func (s *ShadowHeap) Write(base, off uint64, size uint8, v uint64) error {
	o, ok := s.live[base]
	if !ok {
		return fmt.Errorf("shadow: write through dead region %#x", base)
	}
	if off+uint64(size) > o.size {
		return fmt.Errorf("shadow: write [+%d,+%d) overflows %d-byte region %#x",
			off, off+uint64(size), o.size, base)
	}
	s.m.Write(base+off, size, v)
	for i := uint8(0); i < size; i++ {
		o.data[off+uint64(i)] = byte(v >> (8 * i))
		o.written[off+uint64(i)] = true
	}
	return nil
}

// Read loads the little-endian value at base+off from program memory and
// verifies every previously written byte against the shadow copy.
func (s *ShadowHeap) Read(base, off uint64, size uint8) (uint64, error) {
	o, ok := s.live[base]
	if !ok {
		return 0, fmt.Errorf("shadow: read through dead region %#x", base)
	}
	if off+uint64(size) > o.size {
		return 0, fmt.Errorf("shadow: read [+%d,+%d) overflows %d-byte region %#x",
			off, off+uint64(size), o.size, base)
	}
	v := s.m.Read(base+off, size)
	for i := uint8(0); i < size; i++ {
		at := off + uint64(i)
		if o.written[at] && s.m.ByteAt(base+at) != o.data[at] {
			return v, fmt.Errorf("shadow: region %#x corrupted at +%d: %#x, want %#x",
				base, at, s.m.ByteAt(base+at), o.data[at])
		}
	}
	return v, nil
}

// CheckContents verifies every written byte of every live region against
// program memory: the "hostile sequences never corrupt grouped chunks"
// assertion.
func (s *ShadowHeap) CheckContents() error {
	for _, r := range s.Live() {
		o := s.live[r.Base]
		for i := uint64(0); i < o.size; i++ {
			if !o.written[i] {
				continue
			}
			if got := s.m.ByteAt(r.Base + i); got != o.data[i] {
				return fmt.Errorf("shadow: region [%#x,%#x) corrupted at +%d: %#x, want %#x",
					r.Base, r.Base+o.size, i, got, o.data[i])
			}
		}
	}
	return nil
}

// CheckLayout verifies the structural invariants of the group allocator
// against the shadow's live set:
//
//   - no two live regions overlap (grouped or forwarded);
//   - every grouped region lies entirely inside one chunk's payload span,
//     never below the chunk header or past the chunk end;
//   - no forwarded region aliases any registered chunk's span.
func (s *ShadowHeap) CheckLayout(a *GroupAlloc) error {
	live := s.Live()
	for i := 1; i < len(live); i++ {
		p, q := live[i-1], live[i]
		if p.Base+p.Size > q.Base {
			return fmt.Errorf("shadow: live regions overlap: [%#x,%#x) and [%#x,%#x)",
				p.Base, p.End(), q.Base, q.End())
		}
	}
	chunks := a.ChunkInfos()
	cs := a.ChunkSize()
	chunkAt := func(addr uint64) (ChunkInfo, bool) {
		i := sort.Search(len(chunks), func(i int) bool { return chunks[i].Base > addr })
		if i == 0 {
			return ChunkInfo{}, false
		}
		c := chunks[i-1]
		if addr >= c.Base && addr < c.Base+cs {
			return c, true
		}
		return ChunkInfo{}, false
	}
	for _, r := range live {
		c, grouped := chunkAt(r.Base)
		if grouped != a.InChunk(r.Base) {
			return fmt.Errorf("shadow: chunk registry disagrees with span math for %#x", r.Base)
		}
		if grouped {
			if r.Base < c.Base+HeaderSize {
				return fmt.Errorf("shadow: grouped region %#x intrudes into chunk %#x's header",
					r.Base, c.Base)
			}
			if r.End() > c.Base+cs {
				return fmt.Errorf("shadow: grouped region [%#x,%#x) escapes chunk [%#x,%#x)",
					r.Base, r.End(), c.Base, c.Base+cs)
			}
			continue
		}
		// Forwarded region: it must not alias any chunk's span, or a
		// grouped bump allocation could later carve memory out of it.
		for _, c := range chunks {
			if r.Base < c.Base+cs && c.Base < r.End() {
				return fmt.Errorf("shadow: forwarded region [%#x,%#x) aliases chunk [%#x,%#x)",
					r.Base, r.End(), c.Base, c.Base+cs)
			}
		}
	}
	return nil
}
