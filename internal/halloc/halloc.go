// Package halloc implements the paper's specialised group allocator (§4.4):
// a runtime allocator that diverts allocations belonging to an affinity
// group into group-private, size-aligned chunks carved from large
// demand-paged slabs, bump-allocating regions with no per-object headers so
// that consecutive grouped allocations are contiguous. Everything else is
// forwarded to the default allocator, as the real HALO forwards through
// dlsym to the next allocator in the chain.
//
// Which group (if any) an allocation belongs to is decided by a Classifier.
// Three classifiers reproduce the paper's three measured policies:
//
//   - SelectorClassifier: HALO proper — evaluates the DNF selectors from
//     the identification stage against the group-state bit vector the
//     rewritten binary maintains (internal/identify, internal/rewrite).
//   - SiteClassifier: the Chilimbi & Shaham replication — keyed by the
//     immediate call site of the allocation (internal/hds).
//   - RandomClassifier: the Figure 15 control — small objects are assigned
//     uniformly at random to one of four pools.
package halloc

import (
	"fmt"

	"halo/internal/alloc"
	"halo/internal/isa"
	"halo/internal/mem"
)

// Classifier decides group membership for an allocation request.
type Classifier interface {
	// Classify returns the group index for an allocation of the given
	// size at the given immediate call site, or -1 for "ungrouped".
	Classify(size uint64, site isa.Addr) int
	// NumGroups reports how many groups exist.
	NumGroups() int
}

// Config parameterises the group allocator. Zero values take the paper's
// defaults.
type Config struct {
	// ChunkSize is the size of group chunks; chunks are aligned to their
	// size so region pointers locate their chunk with bitwise ops.
	// Default 1 MiB; the artifact runs omnetpp with 128 KiB.
	ChunkSize uint64
	// SlabSize is the size of the demand-paged slabs chunks are carved
	// from. Default 16 MiB.
	SlabSize uint64
	// MaxGroupedSize is the largest allocation eligible for grouping.
	// Default 4 KiB (the page size), per §5.1.
	MaxGroupedSize uint64
	// MaxSpareChunks bounds the empty chunks kept resident for reuse.
	// Default 1, "as early versions of jemalloc did"; the artifact runs
	// omnetpp and xalanc with 0.
	MaxSpareChunks int
	// AlwaysReuseChunks reproduces the omnetpp/xalanc limitation in which
	// "group chunks are always reused": empty chunks are never purged.
	AlwaysReuseChunks bool
	// NoSpare distinguishes an explicit MaxSpareChunks=0 from the unset
	// default.
	NoSpare bool
}

func (c Config) withDefaults() Config {
	if c.ChunkSize == 0 {
		c.ChunkSize = 1 << 20
	}
	if c.SlabSize == 0 {
		c.SlabSize = 16 << 20
	}
	if c.SlabSize < c.ChunkSize {
		c.SlabSize = c.ChunkSize
	}
	if c.MaxGroupedSize == 0 {
		c.MaxGroupedSize = mem.PageSize
	}
	if c.MaxSpareChunks == 0 && !c.NoSpare {
		c.MaxSpareChunks = 1
	}
	return c
}

// chunk is a group-private region of the heap. The paper stores a header
// at the chunk's base; we reserve the same bytes and keep the header's
// fields (live_regions, bump offset) in this registry entry, which is what
// the "trivially located ... by way of simple bitwise operations" lookup
// resolves to.
type chunk struct {
	base  uint64
	group int
	bump  uint64 // offset of the next free byte
	live  uint64 // live regions, the header's live_regions field
}

// chunkHeader is the space reserved at the base of each chunk for the
// paper's in-chunk header.
const chunkHeader = 64

// minAlign is the minimum alignment of grouped regions (§4.4, citing
// SuperMalloc).
const minAlign = 8

// GroupAlloc is the specialised allocator.
type GroupAlloc struct {
	os       *mem.OS
	fallback alloc.Allocator
	classify Classifier
	cfg      Config
	curSite  isa.Addr // immediate call site of the in-flight request

	chunks  map[uint64]*chunk // chunk base -> chunk, the chunk registry
	current map[int]*chunk    // group -> current chunk
	spare   []*chunk          // empty chunks kept for reuse
	purged  []*chunk          // empty chunks with pages released
	sizes   map[uint64]uint64 // grouped region -> requested size

	slab    mem.Region
	slabOff uint64

	stats      alloc.Stats // grouped-data statistics
	groupLive  uint64      // live grouped payload bytes
	groupRes   uint64      // resident grouped bytes (chunks holding pages)
	peakRes    uint64      // grouped resident at its peak
	liveAtPeak uint64      // grouped live bytes when peak was recorded

	// Diagnostics.
	grouped   uint64 // allocations served from groups
	forwarded uint64 // allocations forwarded to the fallback
}

// New builds a group allocator forwarding ungrouped requests to fallback.
func New(os *mem.OS, fallback alloc.Allocator, classify Classifier, cfg Config) *GroupAlloc {
	return &GroupAlloc{
		os:       os,
		fallback: fallback,
		classify: classify,
		cfg:      cfg.withDefaults(),
		chunks:   make(map[uint64]*chunk),
		current:  make(map[int]*chunk),
		sizes:    make(map[uint64]uint64),
	}
}

// Name implements alloc.Allocator.
func (a *GroupAlloc) Name() string { return "halo-group" }

// SetAllocSite announces the immediate call site of the next
// memory-management call. The VM calls it before each intercepted
// allocation, standing in for the allocator reading the return address off
// the stack.
func (a *GroupAlloc) SetAllocSite(site isa.Addr) { a.curSite = site }

// groupable reports whether a request may be served from a group chunk:
// within the configured grouped-size limit, and small enough to fit a
// chunk's payload area. The second clamp matters when ChunkSize is
// configured below MaxGroupedSize + header (the 128 KiB omnetpp artifact
// config): without it, groupMalloc would bump past the chunk end into the
// neighbouring chunk.
func (a *GroupAlloc) groupable(size uint64) bool {
	return size > 0 && size <= a.cfg.MaxGroupedSize && size+chunkHeader <= a.cfg.ChunkSize
}

// Malloc implements alloc.Allocator.
func (a *GroupAlloc) Malloc(size uint64) uint64 {
	// The allocator first compares the size against the maximum grouped
	// object size, then consults the selectors (§4.4).
	if a.groupable(size) {
		if g := a.classify.Classify(size, a.curSite); g >= 0 {
			return a.groupMalloc(g, size)
		}
	}
	a.forwarded++
	return a.fallback.Malloc(size)
}

func (a *GroupAlloc) groupMalloc(g int, size uint64) uint64 {
	c := a.current[g]
	if c == nil || !a.fits(c, size) {
		c = a.newChunk(g)
		a.current[g] = c
	}
	off := (c.bump + minAlign - 1) &^ uint64(minAlign-1)
	ptr := c.base + off
	c.bump = off + size
	c.live++
	a.sizes[ptr] = size
	a.grouped++
	a.groupLive += size
	a.stats.Allocs++
	a.stats.LiveObjects++
	a.stats.LiveBytes += size
	if a.stats.LiveBytes > a.stats.PeakLive {
		a.stats.PeakLive = a.stats.LiveBytes
	}
	a.recordPeak()
	return ptr
}

func (a *GroupAlloc) fits(c *chunk, size uint64) bool {
	off := (c.bump + minAlign - 1) &^ uint64(minAlign-1)
	return off+size <= a.cfg.ChunkSize
}

func (a *GroupAlloc) newChunk(g int) *chunk {
	// Reuse a spare chunk (pages intact), then a purged one, then carve
	// from the current slab.
	if n := len(a.spare); n > 0 {
		c := a.spare[n-1]
		a.spare = a.spare[:n-1]
		c.group, c.bump, c.live = g, chunkHeader, 0
		return c
	}
	if n := len(a.purged); n > 0 {
		c := a.purged[n-1]
		a.purged = a.purged[:n-1]
		c.group, c.bump, c.live = g, chunkHeader, 0
		a.groupRes += a.cfg.ChunkSize
		a.stats.Resident += a.cfg.ChunkSize
		a.recordPeak()
		return c
	}
	if a.slab.Size == 0 || a.slabOff+a.cfg.ChunkSize > a.slab.Size {
		// Memory is reserved from the OS in large, demand-paged slabs
		// to amortise mmap costs (§4.4). Aligning the slab to the chunk
		// size aligns every chunk carved from it.
		a.slab = a.os.Map(a.cfg.SlabSize, a.cfg.ChunkSize)
		a.slabOff = 0
	}
	c := &chunk{base: a.slab.Base + a.slabOff, group: g, bump: chunkHeader}
	a.slabOff += a.cfg.ChunkSize
	a.chunks[c.base] = c
	a.groupRes += a.cfg.ChunkSize
	a.stats.Resident += a.cfg.ChunkSize
	a.recordPeak()
	return c
}

// recordPeak samples fragmentation at the grouped-data memory high-water
// mark, the moment Table 1 reports.
func (a *GroupAlloc) recordPeak() {
	if a.groupRes >= a.peakRes {
		a.peakRes = a.groupRes
		a.liveAtPeak = a.groupLive
	}
}

// chunkOf locates the chunk owning ptr via the alignment trick: chunks are
// aligned to their size, so masking the low bits yields the header address.
func (a *GroupAlloc) chunkOf(ptr uint64) *chunk {
	return a.chunks[ptr&^(a.cfg.ChunkSize-1)]
}

// Free implements alloc.Allocator.
func (a *GroupAlloc) Free(ptr uint64) {
	if ptr == 0 {
		return
	}
	c := a.chunkOf(ptr)
	if c == nil {
		a.fallback.Free(ptr)
		return
	}
	size, ok := a.sizes[ptr]
	if !ok {
		// No size entry: the pointer was never handed out from this chunk,
		// or it was already freed. Accepting it would underflow the live
		// statistics and double-decrement the chunk's region count,
		// corrupting chunk reuse.
		panic(fmt.Sprintf("halloc: double or invalid free of %#x in chunk %#x", ptr, c.base))
	}
	delete(a.sizes, ptr)
	a.groupLive -= size
	a.stats.Frees++
	a.stats.LiveObjects--
	a.stats.LiveBytes -= size
	if c.live == 0 {
		panic(fmt.Sprintf("halloc: free of %#x in empty chunk %#x", ptr, c.base))
	}
	c.live--
	if c.live > 0 {
		return
	}
	// The chunk is empty and can be reused or freed (§4.4).
	if a.current[c.group] == c {
		delete(a.current, c.group)
	}
	switch {
	case a.cfg.AlwaysReuseChunks:
		a.spare = append(a.spare, c)
	case len(a.spare) < a.cfg.MaxSpareChunks:
		a.spare = append(a.spare, c)
	default:
		// Purge the chunk's dirty pages but keep the address range for
		// later reuse.
		a.os.Purge(c.base, a.cfg.ChunkSize)
		a.purged = append(a.purged, c)
		a.groupRes -= a.cfg.ChunkSize
		a.stats.Resident -= a.cfg.ChunkSize
	}
}

// SizeOf implements alloc.Allocator.
func (a *GroupAlloc) SizeOf(ptr uint64) uint64 {
	if c := a.chunkOf(ptr); c != nil {
		return a.sizes[ptr]
	}
	return a.fallback.SizeOf(ptr)
}

// Calloc implements alloc.Allocator. The region is zeroed on both paths:
// grouped regions may come from a reused spare chunk holding stale bytes,
// and forwarded requests go through the fallback's Calloc so its own
// zeroing contract applies (backed by an explicit Zero, as the simulated
// fallbacks leave zeroing to their caller). The VM also zeroes after any
// allocator's Calloc — that stays, because the baseline allocators do not
// zero; this allocator must regardless, for callers that use it directly.
// A product that overflows is forwarded as failure, matching calloc(3).
func (a *GroupAlloc) Calloc(n, size uint64) uint64 {
	total := n * size
	if n != 0 && total/n != size {
		return 0 // n*size wrapped; a tiny allocation here would be UB bait
	}
	if a.groupable(total) {
		if g := a.classify.Classify(total, a.curSite); g >= 0 {
			ptr := a.groupMalloc(g, total)
			a.os.Memory().Zero(ptr, total)
			return ptr
		}
	}
	a.forwarded++
	ptr := a.fallback.Calloc(n, size)
	if ptr != 0 {
		a.os.Memory().Zero(ptr, total)
	}
	return ptr
}

// Realloc implements alloc.Allocator.
func (a *GroupAlloc) Realloc(ptr, size uint64) uint64 {
	if ptr == 0 {
		return a.Malloc(size)
	}
	c := a.chunkOf(ptr)
	if c == nil {
		// Not group allocated; but the new allocation may well be.
		old := a.fallback.SizeOf(ptr)
		np := a.Malloc(size)
		if a.chunkOf(np) == nil {
			// Stayed in the fallback: let it handle the move.
			a.fallback.Free(np)
			return a.fallback.Realloc(ptr, size)
		}
		n := min(old, size)
		a.os.Memory().Copy(np, ptr, n)
		a.fallback.Free(ptr)
		return np
	}
	old := a.sizes[ptr]
	np := a.Malloc(size)
	a.os.Memory().Copy(np, ptr, min(old, size))
	a.Free(ptr)
	return np
}

// Stats implements alloc.Allocator, reporting grouped-data statistics.
// Combined program-wide statistics are the sum with the fallback's.
func (a *GroupAlloc) Stats() alloc.Stats { return a.stats }

// FragAtPeak reports the fragmentation of grouped data at peak grouped
// memory usage: the paper's Table 1 metric.
func (a *GroupAlloc) FragAtPeak() (pct float64, bytes uint64) {
	if a.peakRes == 0 {
		return 0, 0
	}
	if a.liveAtPeak >= a.peakRes {
		return 0, 0
	}
	b := a.peakRes - a.liveAtPeak
	return float64(b) / float64(a.peakRes) * 100, b
}

// GroupedAllocs and ForwardedAllocs report the request split.
func (a *GroupAlloc) GroupedAllocs() uint64 { return a.grouped }

// ForwardedAllocs reports requests passed to the fallback allocator.
func (a *GroupAlloc) ForwardedAllocs() uint64 { return a.forwarded }

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
