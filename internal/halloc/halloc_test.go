package halloc

import (
	"math/rand"
	"testing"

	"halo/internal/alloc"
	"halo/internal/isa"
	"halo/internal/mem"
)

// bucketClassifier groups allocations by size bucket, exercising multiple
// concurrent groups.
type bucketClassifier struct{ groups int }

func (b bucketClassifier) Classify(size uint64, site isa.Addr) int {
	if size%3 == 0 {
		return -1 // some requests stay ungrouped
	}
	return int(size) % b.groups
}
func (b bucketClassifier) NumGroups() int { return b.groups }

func newTestAlloc(cfg Config) (*GroupAlloc, *mem.OS) {
	osm := mem.NewOS(mem.NewMemory())
	fallback := alloc.NewSizeSeg(osm)
	return New(osm, fallback, bucketClassifier{groups: 5}, cfg), osm
}

// TestGroupAllocDisjointRegions drives a random malloc/free workload and
// checks the fundamental invariant: no two live regions overlap, ever.
func TestGroupAllocDisjointRegions(t *testing.T) {
	cfgs := []Config{
		{},
		{ChunkSize: 64 << 10, SlabSize: 256 << 10},
		{NoSpare: true},
		{AlwaysReuseChunks: true},
		{ChunkSize: 16 << 10, SlabSize: 64 << 10, NoSpare: true},
	}
	for ci, cfg := range cfgs {
		a, _ := newTestAlloc(cfg)
		rng := rand.New(rand.NewSource(int64(ci) + 1))
		type region struct{ base, size uint64 }
		live := make(map[uint64]region)
		var order []uint64

		checkDisjoint := func(base, size uint64) {
			for _, r := range live {
				if base < r.base+r.size && r.base < base+size {
					t.Fatalf("cfg %d: overlap: new [%#x,%#x) with live [%#x,%#x)",
						ci, base, base+size, r.base, r.base+r.size)
				}
			}
		}

		for i := 0; i < 30000; i++ {
			if len(order) > 0 && rng.Intn(100) < 45 {
				idx := rng.Intn(len(order))
				base := order[idx]
				order[idx] = order[len(order)-1]
				order = order[:len(order)-1]
				a.Free(base)
				delete(live, base)
				continue
			}
			size := uint64(rng.Intn(600) + 1)
			base := a.Malloc(size)
			if base == 0 {
				t.Fatalf("cfg %d: malloc(%d) returned 0", ci, size)
			}
			if base%8 != 0 {
				t.Fatalf("cfg %d: misaligned pointer %#x", ci, base)
			}
			checkDisjoint(base, size)
			live[base] = region{base, size}
			order = append(order, base)
		}
		// Drain and confirm the allocator's live accounting reaches zero.
		for _, base := range order {
			a.Free(base)
		}
		if got := a.Stats().LiveObjects; got != 0 {
			t.Fatalf("cfg %d: %d grouped objects leak in stats", ci, got)
		}
	}
}

// TestGroupAllocChunkReuse checks that an emptied chunk is recycled and
// that its recycled regions do not overlap fresh ones.
func TestGroupAllocChunkReuse(t *testing.T) {
	a, osm := newTestAlloc(Config{ChunkSize: 16 << 10, SlabSize: 32 << 10})
	var ptrs []uint64
	for i := 0; i < 100; i++ {
		ptrs = append(ptrs, a.Malloc(1024+uint64(i%2))) // groups 1 and 2... sizes 1024,1025
	}
	for _, p := range ptrs {
		a.Free(p)
	}
	before := osm.MappedBytes()
	var again []uint64
	for i := 0; i < 100; i++ {
		again = append(again, a.Malloc(1024+uint64(i%2)))
	}
	for i, p := range again {
		for j, q := range again {
			if i != j && p == q {
				t.Fatalf("duplicate pointer %#x returned", p)
			}
		}
	}
	after := osm.MappedBytes()
	if after > before+(64<<10) {
		t.Fatalf("chunk reuse ineffective: mapped grew %d -> %d", before, after)
	}
}

// TestGroupAllocForwarding checks ungrouped and oversized requests reach
// the fallback and can be freed through the group allocator.
func TestGroupAllocForwarding(t *testing.T) {
	a, _ := newTestAlloc(Config{})
	big := a.Malloc(64 << 10) // above MaxGroupedSize
	if a.chunkOf(big) != nil {
		t.Fatal("oversized allocation landed in a group chunk")
	}
	if a.SizeOf(big) != 64<<10 {
		t.Fatalf("SizeOf(big) = %d", a.SizeOf(big))
	}
	a.Free(big)

	ungrouped := a.Malloc(33) // size%3==0 -> classifier says no group
	if a.chunkOf(ungrouped) != nil {
		t.Fatal("ungrouped allocation landed in a group chunk")
	}
	a.Free(ungrouped)
	if a.ForwardedAllocs() != 2 {
		t.Fatalf("forwarded = %d, want 2", a.ForwardedAllocs())
	}
}

// TestGroupAllocRealloc checks data is preserved across group reallocs.
func TestGroupAllocRealloc(t *testing.T) {
	a, osm := newTestAlloc(Config{})
	m := osm.Memory()
	p := a.Malloc(16) // grouped (16%3 != 0, group 1)
	if a.chunkOf(p) == nil {
		t.Fatal("expected grouped allocation")
	}
	m.WriteWord(p, 0xDEAD)
	q := a.Realloc(p, 1000)
	if got := m.ReadWord(q); got != 0xDEAD {
		t.Fatalf("realloc lost data: %#x", got)
	}
	// Ungrouped -> possibly grouped realloc.
	u := a.Malloc(33)
	m.WriteWord(u, 0xBEEF)
	v := a.Realloc(u, 40)
	if got := m.ReadWord(v); got != 0xBEEF {
		t.Fatalf("cross-allocator realloc lost data: %#x", got)
	}
}

// TestGroupAllocFragAtPeak builds the Table 1 scenario: fill chunks, free
// almost everything, verify high fragmentation is reported at peak.
func TestGroupAllocFragAtPeak(t *testing.T) {
	a, _ := newTestAlloc(Config{ChunkSize: 16 << 10, SlabSize: 64 << 10})
	var ptrs []uint64
	for i := 0; i < 64; i++ {
		ptrs = append(ptrs, a.Malloc(1024)) // group 1024%5=4
	}
	// Free all but one object per chunk: chunks stay resident.
	for i, p := range ptrs {
		if i%15 != 0 {
			a.Free(p)
		}
	}
	pct, bytes := a.FragAtPeak()
	if pct <= 0 || bytes == 0 {
		t.Fatalf("expected nonzero fragmentation at peak, got %.2f%% / %d bytes", pct, bytes)
	}
}
