package halloc

import (
	"sort"

	"halo/internal/mem"
)

// This file is the allocator's inspection surface: read-only views of the
// chunk registry and the live grouped regions. The shadow-heap oracle, the
// layout property tests and the adversarial search's fitness functions all
// consume it — none of them may depend on allocator internals, or a layout
// bug could hide inside the very bookkeeping that is being checked.

// HeaderSize is the space reserved at the base of every group chunk for the
// paper's in-chunk header. No grouped region ever starts below it.
const HeaderSize = chunkHeader

// ChunkInfo is a read-only snapshot of one registered group chunk.
type ChunkInfo struct {
	Base  uint64 // chunk base address (ChunkSize-aligned)
	Group int    // owning group at last use
	Bump  uint64 // offset of the next free byte
	Live  uint64 // live regions in the chunk
}

// ChunkSize reports the resolved chunk size (configuration defaults
// applied). Every chunk spans [Base, Base+ChunkSize()).
func (a *GroupAlloc) ChunkSize() uint64 { return a.cfg.ChunkSize }

// ChunkInfos snapshots every chunk the allocator has ever carved, sorted by
// base address. Spare and purged chunks stay registered, so the list only
// grows.
func (a *GroupAlloc) ChunkInfos() []ChunkInfo {
	out := make([]ChunkInfo, 0, len(a.chunks))
	for _, c := range a.chunks {
		out = append(out, ChunkInfo{Base: c.base, Group: c.group, Bump: c.bump, Live: c.live})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// InChunk reports whether ptr falls inside a registered group chunk — that
// is, whether a Free of ptr would be handled by the group allocator rather
// than forwarded.
func (a *GroupAlloc) InChunk(ptr uint64) bool { return a.chunkOf(ptr) != nil }

// LiveGrouped returns every live grouped region as [base, base+size)
// spans, sorted by base address.
func (a *GroupAlloc) LiveGrouped() []mem.Region {
	out := make([]mem.Region, 0, len(a.sizes))
	for base, size := range a.sizes {
		out = append(out, mem.Region{Base: base, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}
