package halloc

import (
	"strings"
	"testing"

	"halo/internal/alloc"
	"halo/internal/mem"
)

// The oracle is only trustworthy if it actually catches what it claims to
// catch; these tests corrupt state deliberately and assert detection.

func newShadowFixture(t *testing.T) (*GroupAlloc, *ShadowHeap, *mem.Memory) {
	t.Helper()
	m := mem.NewMemory()
	osm := mem.NewOS(m)
	a := New(osm, alloc.NewSizeSeg(osm), bucketClassifier{groups: 5},
		Config{ChunkSize: 1 << 14, SlabSize: 1 << 18})
	return a, NewShadowHeap(m), m
}

func mustAlloc(t *testing.T, a *GroupAlloc, s *ShadowHeap, size uint64) uint64 {
	t.Helper()
	p := a.Malloc(size)
	if err := s.OnAlloc(p, size, false); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShadowDetectsCorruptedByte(t *testing.T) {
	a, s, m := newShadowFixture(t)
	p := mustAlloc(t, a, s, 40)
	if err := s.Write(p, 8, 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckContents(); err != nil {
		t.Fatalf("clean heap flagged: %v", err)
	}
	// A stray write behind the oracle's back is exactly what a layout bug
	// (two regions sharing bytes) would look like.
	m.Write(p+9, 1, 0x41)
	if err := s.CheckContents(); err == nil {
		t.Fatal("corrupted byte not detected")
	}
	if _, err := s.Read(p, 8, 8); err == nil {
		t.Fatal("read did not notice the corrupted byte")
	}
}

func TestShadowDetectsOverlap(t *testing.T) {
	_, s, _ := newShadowFixture(t)
	if err := s.OnAlloc(0x1000, 64, false); err != nil {
		t.Fatal(err)
	}
	if err := s.OnAlloc(0x1020, 64, false); err == nil {
		t.Fatal("overlapping allocation not detected")
	}
	if err := s.OnAlloc(0x1040, 64, false); err != nil {
		t.Fatalf("disjoint allocation rejected: %v", err)
	}
}

func TestShadowDetectsUnzeroedCalloc(t *testing.T) {
	a, s, m := newShadowFixture(t)
	p := a.Malloc(32)
	m.Write(p+4, 1, 7)
	if err := s.OnAlloc(p, 32, true); err == nil {
		t.Fatal("dirty calloc region not detected")
	}
}

func TestShadowDetectsDoubleFreeAndDeadAccess(t *testing.T) {
	a, s, _ := newShadowFixture(t)
	p := mustAlloc(t, a, s, 24)
	if err := s.OnFree(p); err != nil {
		t.Fatal(err)
	}
	if err := s.OnFree(p); err == nil {
		t.Fatal("double free not detected")
	}
	if err := s.Write(p, 0, 8, 1); err == nil {
		t.Fatal("use after free (write) not detected")
	}
	if _, err := s.Read(p, 0, 8); err == nil {
		t.Fatal("use after free (read) not detected")
	}
}

func TestShadowDetectsOutOfBounds(t *testing.T) {
	a, s, _ := newShadowFixture(t)
	p := mustAlloc(t, a, s, 24)
	if err := s.Write(p, 24, 8, 1); err == nil {
		t.Fatal("out-of-bounds write not detected")
	}
	if err := s.Write(p, 16, 8, 1); err != nil {
		t.Fatalf("in-bounds write rejected: %v", err)
	}
}

func TestShadowReallocPreservesPrefix(t *testing.T) {
	a, s, _ := newShadowFixture(t)
	p := mustAlloc(t, a, s, 32)
	if err := s.Write(p, 0, 8, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	np := a.Realloc(p, 128)
	if err := s.OnRealloc(p, np, 128); err != nil {
		t.Fatalf("well-behaved realloc flagged: %v", err)
	}
	if v, err := s.Read(np, 0, 8); err != nil || v != 0x0102030405060708 {
		t.Fatalf("prefix lost: %#x, %v", v, err)
	}
}

func TestShadowReallocDetectsLostPrefix(t *testing.T) {
	a, s, m := newShadowFixture(t)
	p := mustAlloc(t, a, s, 32)
	if err := s.Write(p, 0, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	np := a.Realloc(p, 64)
	m.Write(np, 1, 0) // smash the first moved byte
	if err := s.OnRealloc(p, np, 64); err == nil {
		t.Fatal("lost realloc prefix not detected")
	}
}

func TestShadowCheckLayoutCleanAndViolated(t *testing.T) {
	a, s, _ := newShadowFixture(t)
	for i := 0; i < 40; i++ {
		mustAlloc(t, a, s, 64+uint64(i%5)*32)
	}
	if err := s.CheckLayout(a); err != nil {
		t.Fatalf("clean layout flagged: %v", err)
	}
	// A fabricated region intruding into a chunk header is a layout bug
	// the oracle must flag.
	ci := a.ChunkInfos()
	if len(ci) == 0 {
		t.Fatal("no chunks")
	}
	if err := s.OnAlloc(ci[0].Base+4, 8, false); err != nil {
		t.Fatal(err)
	}
	err := s.CheckLayout(a)
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("header intrusion not detected: %v", err)
	}
}

func TestShadowDetectsChunkSpanEscape(t *testing.T) {
	a, s, _ := newShadowFixture(t)
	mustAlloc(t, a, s, 64) // creates a chunk
	ci := a.ChunkInfos()
	// A grouped region straddling its chunk's end: the bug the groupable()
	// clamp exists to prevent.
	fake := ci[0].Base + a.ChunkSize() - 32
	if err := s.OnAlloc(fake, 64, false); err != nil {
		t.Fatal(err)
	}
	err := s.CheckLayout(a)
	if err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("chunk-span escape not detected: %v", err)
	}
}

func TestShadowDetectsForwardedAliasingChunk(t *testing.T) {
	a, s, _ := newShadowFixture(t)
	mustAlloc(t, a, s, 64) // creates a chunk
	ci := a.ChunkInfos()
	// A region starting outside every chunk (so it reads as forwarded) but
	// overlapping a chunk's span: grouped bump allocation could later carve
	// memory out of it.
	fake := ci[0].Base - 16
	if err := s.OnAlloc(fake, 64, false); err != nil {
		t.Fatal(err)
	}
	err := s.CheckLayout(a)
	if err == nil || !strings.Contains(err.Error(), "aliases") {
		t.Fatalf("forwarded/chunk aliasing not detected: %v", err)
	}
}
