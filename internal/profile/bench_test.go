package profile

import "testing"

// BenchmarkObjIndexFind measures the containment query on the access fast
// path: a mixed live set of small objects, queried at addresses spread
// across the occupied span. The index is rebuilt outside the timed region.
func BenchmarkObjIndexFind(b *testing.B) {
	const n = 1 << 14
	idx := newObjIndex()
	base := uint64(0x10_0000_0000)
	for i := 0; i < n; i++ {
		idx.insert(object{
			base:   base + uint64(i)*64,
			size:   48,
			serial: uint64(i + 1),
			ctx:    0,
		})
	}
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		// Alternate hits (inside an object) and misses (in the gaps).
		addr := base + uint64(i%n)*64 + uint64(i%61)
		if idx.find(addr) != nil {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("no lookups hit a live object")
	}
}

// BenchmarkObjIndexChurn measures insert/remove cycles, the allocation-path
// cost of the index under a steady-state malloc/free workload.
func BenchmarkObjIndexChurn(b *testing.B) {
	const live = 4096
	idx := newObjIndex()
	base := uint64(0x10_0000_0000)
	for i := 0; i < live; i++ {
		idx.insert(object{base: base + uint64(i)*64, size: 48, serial: uint64(i + 1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := uint64(i % live)
		idx.remove(base + slot*64)
		idx.insert(object{base: base + slot*64, size: 48, serial: uint64(live + i + 1)})
	}
}
