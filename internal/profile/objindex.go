package profile

import "halo/internal/affinity"

// object is a live heap object tracked at object-level granularity.
type object struct {
	base    uint64
	size    uint64
	serial  uint64       // allocation serial, the object's identity
	ctx     affinity.Ctx // reduced allocation context
	rawSite uint32       // immediate malloc call site (for the HDS trace)
}

// objIndex is a treap over live objects keyed by base address, supporting
// the containment query the access instrumentation needs: "which live
// object, if any, owns this address?". Objects never overlap, so the
// greatest base <= addr decides.
type objIndex struct {
	root *onode
	rng  uint64
	size int
}

type onode struct {
	obj         *object
	prio        uint64
	left, right *onode
}

func newObjIndex() *objIndex { return &objIndex{rng: 0x9E3779B97F4A7C15} }

func (t *objIndex) rand() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// insert adds an object. Inserting an object whose base is already present
// replaces the previous entry (a fresh allocation reusing an address).
func (t *objIndex) insert(o *object) {
	t.remove(o.base)
	t.root = t.insertNode(t.root, &onode{obj: o, prio: t.rand()})
	t.size++
}

func (t *objIndex) insertNode(n, ins *onode) *onode {
	if n == nil {
		return ins
	}
	if ins.prio > n.prio {
		l, r := t.split(n, ins.obj.base)
		ins.left, ins.right = l, r
		return ins
	}
	if ins.obj.base < n.obj.base {
		n.left = t.insertNode(n.left, ins)
	} else {
		n.right = t.insertNode(n.right, ins)
	}
	return n
}

// split partitions by base: left < key, right >= key.
func (t *objIndex) split(n *onode, key uint64) (l, r *onode) {
	if n == nil {
		return nil, nil
	}
	if n.obj.base < key {
		n.right, r = t.split(n.right, key)
		return n, r
	}
	l, n.left = t.split(n.left, key)
	return l, n
}

// remove deletes the object based exactly at addr, returning it if present.
func (t *objIndex) remove(addr uint64) *object {
	var removed *object
	t.root = t.removeNode(t.root, addr, &removed)
	if removed != nil {
		t.size--
	}
	return removed
}

func (t *objIndex) removeNode(n *onode, addr uint64, out **object) *onode {
	if n == nil {
		return nil
	}
	switch {
	case addr < n.obj.base:
		n.left = t.removeNode(n.left, addr, out)
	case addr > n.obj.base:
		n.right = t.removeNode(n.right, addr, out)
	default:
		*out = n.obj
		return t.merge(n.left, n.right)
	}
	return n
}

func (t *objIndex) merge(l, r *onode) *onode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = t.merge(l.right, r)
		return l
	default:
		r.left = t.merge(l, r.left)
		return r
	}
}

// find returns the live object containing addr, or nil.
func (t *objIndex) find(addr uint64) *object {
	n := t.root
	var best *object
	for n != nil {
		if n.obj.base <= addr {
			best = n.obj
			n = n.right
		} else {
			n = n.left
		}
	}
	if best != nil && addr < best.base+best.size {
		return best
	}
	return nil
}

// len reports the live object count.
func (t *objIndex) len() int { return t.size }
