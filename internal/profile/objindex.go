package profile

import "halo/internal/affinity"

// object is a live heap object tracked at object-level granularity.
type object struct {
	base    uint64
	size    uint64
	serial  uint64       // allocation serial, the object's identity
	ctx     affinity.Ctx // reduced allocation context
	rawSite uint32       // immediate malloc call site (for the HDS trace)
}

// objIndex answers the containment query the access instrumentation needs
// — "which live object, if any, owns this address?" — by shadowing the
// heap, the way Pin-style instrumentation tools shadow process memory:
// every 8-byte granule of address space maps to the slot of the live
// object covering it, so the access fast path is two array loads and a
// bounds check instead of a tree descent.
//
// Granule shadows live in lazily-allocated fixed-size chunks reached
// through a dense directory based at the lowest address ever seen, so
// memory tracks the span the allocator actually uses, not the 64-bit
// address space. Objects live in a slot slab recycled through a free
// list; steady-state insert/remove/find allocate nothing.
//
// The 8-byte granule matches the minimum spacing of the simulation's
// allocators (the smallest size class is 8 and runs are page-aligned), so
// in profiling runs each granule is covered by at most one live object.
// The structure stays correct for arbitrary geometries: granules shared
// by several objects are demoted to an overflow list keyed by granule.
type objIndex struct {
	objs []object // slot slab; slot i live iff objs[i].size != 0
	free []int32  // recycled slots
	size int      // live object count

	// Shadow directory: granule g lives at
	// chunks[g>>chunkShift - baseChunk][g&chunkMask].
	chunks    [][]int32
	baseChunk int
	overflow  map[uint64][]int32 // granule -> slots, when shared
}

const (
	granuleShift = 3  // 8-byte granules
	chunkShift   = 16 // granules per chunk: 64K -> 512 KiB of address space
	chunkMask    = 1<<chunkShift - 1

	slotEmpty    int32 = -1 // granule covers no live object
	slotOverflow int32 = -2 // granule shared; consult overflow
)

func newObjIndex() *objIndex { return &objIndex{} }

// chunkFor returns the shadow chunk containing granule g, materialising it
// (and extending the directory) when create is set.
func (t *objIndex) chunkFor(g uint64, create bool) []int32 {
	ci := int(g >> chunkShift)
	if len(t.chunks) == 0 {
		if !create {
			return nil
		}
		t.baseChunk = ci
		t.chunks = [][]int32{nil}
	}
	rel := ci - t.baseChunk
	if rel < 0 {
		if !create {
			return nil
		}
		grown := make([][]int32, len(t.chunks)-rel)
		copy(grown[-rel:], t.chunks)
		t.chunks = grown
		t.baseChunk = ci
		rel = 0
	}
	if rel >= len(t.chunks) {
		if !create {
			return nil
		}
		for rel >= len(t.chunks) {
			t.chunks = append(t.chunks, nil)
		}
	}
	c := t.chunks[rel]
	if c == nil && create {
		c = make([]int32, 1<<chunkShift)
		for i := range c {
			c[i] = slotEmpty
		}
		t.chunks[rel] = c
	}
	return c
}

// granules returns the granule span [lo, hi] covered by an object.
func granules(base, size uint64) (lo, hi uint64) {
	if size == 0 {
		size = 1
	}
	return base >> granuleShift, (base + size - 1) >> granuleShift
}

// insert adds an object. Inserting an object whose base is already present
// replaces the previous entry (a fresh allocation reusing an address).
//
//halo:hot
func (t *objIndex) insert(o object) {
	t.remove(o.base)
	var slot int32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.objs[slot] = o
	} else {
		slot = int32(len(t.objs))
		t.objs = append(t.objs, o)
	}
	lo, hi := granules(o.base, o.size)
	for g := lo; g <= hi; g++ {
		c := t.chunkFor(g, true)
		switch prev := c[g&chunkMask]; prev {
		case slotEmpty:
			c[g&chunkMask] = slot
		case slotOverflow:
			t.overflow[g] = append(t.overflow[g], slot) //halo:hotalloc-ok overflow list is a rare sub-granule collision path, amortised by the map entry
		default:
			// A neighbour already covers this granule (sub-granule
			// packing); demote the granule to the overflow list.
			if t.overflow == nil {
				t.overflow = make(map[uint64][]int32) //halo:hotalloc-ok one-time lazy init of the overflow table
			}
			t.overflow[g] = append(t.overflow[g], prev, slot) //halo:hotalloc-ok overflow list is a rare sub-granule collision path, amortised by the map entry
			c[g&chunkMask] = slotOverflow
		}
	}
	t.size++
}

// slotAt returns the slot of the live object based exactly at addr, or -1.
//
//halo:hot
func (t *objIndex) slotAt(addr uint64) int32 {
	c := t.chunkFor(addr>>granuleShift, false)
	if c == nil {
		return -1
	}
	switch s := c[(addr>>granuleShift)&chunkMask]; s {
	case slotEmpty:
		return -1
	case slotOverflow:
		for _, s := range t.overflow[addr>>granuleShift] {
			if t.objs[s].base == addr {
				return s
			}
		}
		return -1
	default:
		if t.objs[s].base == addr {
			return s
		}
		// The granule's owner starts earlier; an object based at addr
		// would have demoted the granule to overflow, so none exists.
		return -1
	}
}

// remove deletes the object based exactly at addr, returning it if present.
// The returned pointer aliases the slot slab and is only valid until the
// next insert.
//
//halo:hot
func (t *objIndex) remove(addr uint64) *object {
	slot := t.slotAt(addr)
	if slot < 0 {
		return nil
	}
	o := &t.objs[slot]
	lo, hi := granules(o.base, o.size)
	for g := lo; g <= hi; g++ {
		c := t.chunkFor(g, false)
		switch s := c[g&chunkMask]; s {
		case slot:
			c[g&chunkMask] = slotEmpty
		case slotOverflow:
			left := t.overflow[g][:0]
			for _, s := range t.overflow[g] {
				if s != slot {
					left = append(left, s) //halo:hotalloc-ok left reuses overflow[g]'s backing array and only ever shrinks it
				}
			}
			switch len(left) {
			case 1:
				c[g&chunkMask] = left[0]
				delete(t.overflow, g)
			case 0:
				c[g&chunkMask] = slotEmpty
				delete(t.overflow, g)
			default:
				t.overflow[g] = left
			}
		}
	}
	o.size = 0 // mark the slot dead; o.base etc. stay readable
	t.free = append(t.free, slot)
	t.size--
	return o
}

// find returns the live object containing addr, or nil. The returned
// pointer aliases the slot slab and is only valid until the next insert.
//
//halo:hot
func (t *objIndex) find(addr uint64) *object {
	g := addr >> granuleShift
	ci := int(g>>chunkShift) - t.baseChunk
	if ci < 0 || ci >= len(t.chunks) {
		return nil
	}
	c := t.chunks[ci]
	if c == nil {
		return nil
	}
	switch s := c[g&chunkMask]; s {
	case slotEmpty:
		return nil
	case slotOverflow:
		for _, s := range t.overflow[g] {
			o := &t.objs[s]
			if o.base <= addr && addr-o.base < o.size {
				return o
			}
		}
		return nil
	default:
		o := &t.objs[s]
		if o.base <= addr && addr-o.base < o.size {
			return o
		}
		return nil
	}
}

// len reports the live object count.
func (t *objIndex) len() int { return t.size }
