package profile

import (
	"encoding/binary"
	"fmt"
	"strings"

	"halo/internal/affinity"
	"halo/internal/isa"
)

// ChainEntry is one element of an allocation context: a function together
// with the (main-binary) call site it was invoked from. The final entry of
// every chain is the memory-management routine itself, with Fn = AllocFn.
type ChainEntry struct {
	Fn   int32    // function index; AllocFn for the allocation routine
	Site isa.Addr // call site, traced back into the main binary
}

// AllocFn is the pseudo-function index of the allocation routine at the
// end of every chain.
const AllocFn int32 = -1

// Context is a reduced allocation context: the canonical form of the call
// stack at an allocation, with only the most recent of any (function, call
// site) pair retained (§4.1).
type Context struct {
	ID     affinity.Ctx
	Chain  []ChainEntry
	Allocs uint64 // allocations made from this context

	// serials logs every allocation serial issued from this context, in
	// ascending order, for the co-allocatability constraint.
	serials []uint64

	// Group is assigned by the grouping stage; -1 when ungrouped.
	Group int
}

// Sites returns the distinct call sites in the chain, the candidate
// instrumentation points for selector construction.
func (c *Context) Sites() []isa.Addr {
	seen := make(map[isa.Addr]bool, len(c.Chain))
	var out []isa.Addr
	for _, e := range c.Chain {
		if e.Site != isa.NoAddr && !seen[e.Site] {
			seen[e.Site] = true
			out = append(out, e.Site)
		}
	}
	return out
}

// HasSite reports whether the chain passes through the call site.
func (c *Context) HasSite(site isa.Addr) bool {
	for _, e := range c.Chain {
		if e.Site == site {
			return true
		}
	}
	return false
}

// SitePos returns the position of the site in the chain (0 = stack bottom,
// the paper's tie-break preference), or -1.
func (c *Context) SitePos(site isa.Addr) int {
	for i, e := range c.Chain {
		if e.Site == site {
			return i
		}
	}
	return -1
}

// AllocatedBetween reports whether this context allocated strictly between
// serials lo and hi. It runs once per candidate pair in the affinity
// queue's traversal, so the binary search is hand-rolled: sort.Search's
// closure indirection costs more than the search itself at this call rate.
func (c *Context) AllocatedBetween(lo, hi uint64) bool {
	s := c.serials
	i, j := 0, len(s)
	for i < j {
		h := int(uint(i+j) >> 1)
		if s[h] <= lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i < len(s) && s[i] < hi
}

// Describe renders the chain with function names for reports (Figure 9).
func (c *Context) Describe(p *isa.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ctx%d[", c.ID)
	for i, e := range c.Chain {
		if i > 0 {
			b.WriteString(" > ")
		}
		name := "alloc"
		if e.Fn >= 0 && int(e.Fn) < len(p.Funcs) {
			name = p.Funcs[e.Fn].Name
		}
		if e.Site != isa.NoAddr {
			fmt.Fprintf(&b, "%s@%s", name, p.SiteName(e.Site))
		} else {
			b.WriteString(name)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// reduceChain canonicalises a raw chain: only the most recent of any
// (function, call site) pair is retained, preserving the relative order of
// the retained occurrences. This avoids overfitting on recursion without
// imposing fixed size limits (§4.1).
func reduceChain(raw []ChainEntry) []ChainEntry {
	return reduceChainInto(make([]ChainEntry, 0, len(raw)), raw)
}

// reduceChainInto is reduceChain appending into caller-owned scratch, the
// allocation-free form the profiler uses on its hot allocation path.
// Chains are call stacks — short — so membership is a linear scan rather
// than a map built per call.
func reduceChainInto(out []ChainEntry, raw []ChainEntry) []ChainEntry {
	for i := len(raw) - 1; i >= 0; i-- {
		e := raw[i]
		dup := false
		for _, kept := range out {
			if kept == e {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	// Reverse into bottom-to-top order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// appendChainKey serialises a chain for interning into buf.
func appendChainKey(buf []byte, chain []ChainEntry) []byte {
	var tmp [8]byte
	for _, e := range chain {
		binary.LittleEndian.PutUint32(tmp[0:4], uint32(e.Fn))
		binary.LittleEndian.PutUint32(tmp[4:8], uint32(e.Site))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// chainKey serialises a chain for interning.
func chainKey(chain []ChainEntry) string {
	return string(appendChainKey(make([]byte, 0, len(chain)*8), chain))
}

// contextTable interns reduced chains.
type contextTable struct {
	byKey  map[string]affinity.Ctx
	list   []*Context
	keyBuf []byte // scratch; lets table hits skip the key allocation
}

func newContextTable() *contextTable {
	return &contextTable{byKey: make(map[string]affinity.Ctx)}
}

// intern returns the context for a reduced chain, creating it on first
// use. A chain already in the table allocates nothing: the key is built in
// the table's scratch buffer and the map lookup converts it without a
// copy.
func (t *contextTable) intern(chain []ChainEntry) *Context {
	t.keyBuf = appendChainKey(t.keyBuf[:0], chain)
	if id, ok := t.byKey[string(t.keyBuf)]; ok {
		return t.list[id]
	}
	id := affinity.Ctx(len(t.list))
	c := &Context{ID: id, Chain: append([]ChainEntry(nil), chain...), Group: -1}
	t.byKey[string(t.keyBuf)] = id
	t.list = append(t.list, c)
	return c
}
