// Package profile is the reproduction's replacement for the paper's
// Pin-based instrumentation tool (§4.1). Attached to the VM as execution
// hooks, it:
//
//   - intercepts the POSIX.1 memory-management calls and tracks live data
//     at object-level granularity;
//   - maintains a shadow stack that records a frame only for targets
//     statically linked into the main binary (or traceable externals like
//     malloc), with call sites traced back to their nearest main-binary
//     origin, and canonicalises recursive stacks into reduced form;
//   - feeds every heap access through the affinity queue to build the
//     pairwise affinity graph; and
//   - optionally records the object-level data reference trace consumed by
//     the hot-data-streams comparison technique (internal/hds).
//
// Like the paper's tool, it applies no sampling: accuracy is preferred over
// profiling speed, which is why profiling runs use the small test inputs.
package profile

import (
	"fmt"
	"sort"

	"halo/internal/affinity"
	"halo/internal/isa"
	"halo/internal/obs"
	"halo/internal/vm"
)

// Profiler ingest metrics, recorded once per batch (never per event) so
// the 15–21M events/sec consume path is untouched between flushes.
var (
	mIngestEvents = obs.Default.Counter("halo_profile_events_total",
		"VM events consumed by profiler sinks")
	mIngestBatches = obs.Default.Counter("halo_profile_batches_total",
		"event batches consumed by profiler sinks")
)

// Config parameterises profiling.
type Config struct {
	// AffinityDistance is A in bytes; default 128 (§5.1, Figure 12).
	AffinityDistance uint64
	// MaxObjectSize bounds tracked objects; larger allocations are not
	// candidates for grouping. Default 4096 (§5.1).
	MaxObjectSize uint64
	// Coverage is the node-filter fraction; default 0.90 (§4.1).
	Coverage float64
	// RecordTrace enables the data reference trace for hot-data-streams.
	RecordTrace bool
	// MaxTrace caps the recorded trace length (0 = 8M references).
	MaxTrace int
}

func (c Config) withDefaults() Config {
	if c.AffinityDistance == 0 {
		c.AffinityDistance = 128
	}
	if c.MaxObjectSize == 0 {
		c.MaxObjectSize = 4096
	}
	if c.Coverage == 0 {
		c.Coverage = 0.90
	}
	if c.MaxTrace == 0 {
		c.MaxTrace = 8 << 20
	}
	return c
}

// Ref is one element of the object-level data reference trace.
type Ref struct {
	Obj     uint64   // object identity (allocation serial)
	Site    isa.Addr // immediate call site of the object's allocation
	ObjSize uint32   // object size, for co-allocation benefit analysis
}

// Profile is the result of a profiling run.
type Profile struct {
	Prog     *isa.Program
	ProgName string          // survives serialisation, where Prog does not
	Graph    *affinity.Graph // filtered per Config.Coverage
	RawGraph *affinity.Graph // unfiltered
	Contexts []*Context      // indexed by affinity.Ctx
	Trace    []Ref           // empty unless Config.RecordTrace

	TotalAllocs   uint64
	TrackedAllocs uint64
	TotalAccesses uint64 // macro accesses to tracked objects
	PeakLive      int    // peak live tracked objects

	// Events counts VM event records the profiler consumed; with the
	// run's wall-clock it yields profiling throughput (events/sec). It is
	// diagnostic only and is not serialised by profstore.
	Events uint64
}

// Context returns the context record for an id.
func (p *Profile) Context(id affinity.Ctx) *Context { return p.Contexts[id] }

// Profiler implements vm.EventSink: it drains the VM's batched event
// stream, paying one dynamic dispatch per batch and direct calls within.
// Per-event work is allocation-free in steady state: the shadow stack, the
// chain scratch buffers, the object index, the affinity queue and the
// graph all reuse their backing arrays.
type Profiler struct {
	prog *isa.Program
	cfg  Config

	// native mirrors the true call stack: one frame per internal call.
	native []nframe

	// chainBuf and redBuf are scratch space for currentContext, reused
	// across allocations so building a reduced chain allocates only when
	// the chain is new to the intern table.
	chainBuf []ChainEntry
	redBuf   []ChainEntry

	contexts *contextTable
	objects  *objIndex
	queue    *affinity.Queue
	graph    *affinity.Graph

	// serialCtx records the context of every allocation serial (index 0
	// unused): the global allocation log the co-allocatability check
	// scans when the serial range is short.
	serialCtx []affinity.Ctx

	serial   uint64
	events   uint64
	trace    []Ref
	traceLen int

	totalAllocs   uint64
	trackedAllocs uint64
	peakLive      int
}

type nframe struct {
	site isa.Addr // call site that created this frame
	fn   int32    // callee function index
	lib  bool     // callee is library code
}

// New builds a profiler for the program.
func New(p *isa.Program, cfg Config) *Profiler {
	cfg = cfg.withDefaults()
	pr := &Profiler{
		prog:      p,
		cfg:       cfg,
		contexts:  newContextTable(),
		objects:   newObjIndex(),
		graph:     affinity.NewGraph(),
		serialCtx: make([]affinity.Ctx, 1, 1024),
	}
	pr.queue = affinity.NewQueue(cfg.AffinityDistance, pr.graph, pr)
	return pr
}

// coallocScanWindow is the serial-range length up to which the
// co-allocatability check scans the global allocation log directly; wider
// ranges binary-search the context's own serial log instead. Both answer
// the same membership question, so the cutover is invisible.
const coallocScanWindow = 64

// AllocatedBetween implements affinity.Interference. Queue traversals ask
// it about chronologically close pairs most of the time, so short ranges
// scan the dense serial-to-context log; wide ranges fall back to binary
// search over the per-context allocation log.
func (p *Profiler) AllocatedBetween(c affinity.Ctx, lo, hi uint64) bool {
	if hi-lo <= coallocScanWindow {
		for s := lo + 1; s < hi; s++ {
			if p.serialCtx[s] == c {
				return true
			}
		}
		return false
	}
	return p.contexts.list[c].AllocatedBetween(lo, hi)
}

// ConsumeEvents implements vm.EventSink. Batch order is execution order,
// so the shadow stack, the object index and the affinity queue observe the
// exact sequence the per-event engine produced.
//
//halo:hot
func (p *Profiler) ConsumeEvents(batch []vm.Event) {
	if obs.Enabled() {
		mIngestEvents.Add(uint64(len(batch)))
		mIngestBatches.Inc()
	}
	p.events += uint64(len(batch))
	for i := range batch {
		ev := &batch[i]
		switch ev.Kind {
		case vm.EvAccess:
			p.access(ev.Addr, ev.Size)
		case vm.EvCall:
			p.call(ev.Site, ev.Fn)
		case vm.EvReturn:
			p.ret()
		case vm.EvAlloc:
			p.alloc(ev.Alloc())
		}
	}
}

// call pushes a shadow-stack frame for an internal call.
//
//halo:hot
func (p *Profiler) call(site isa.Addr, callee int32) {
	p.native = append(p.native, nframe{site: site, fn: callee, lib: p.prog.Funcs[callee].Lib})
}

// ret pops the shadow stack on an internal return.
//
//halo:hot
func (p *Profiler) ret() {
	if n := len(p.native); n > 0 {
		p.native = p.native[:n-1]
	}
}

// siteInMain reports whether a call site lies in main-binary code.
func (p *Profiler) siteInMain(site isa.Addr) bool {
	f := p.prog.FuncOf(site)
	return f != nil && !f.Lib
}

// currentContext builds the reduced allocation context for an allocation
// whose immediate (possibly library-resident) call site is rawSite. The
// raw and reduced chains are assembled in scratch buffers owned by the
// profiler, so a context already in the intern table costs no allocation.
func (p *Profiler) currentContext(rawSite isa.Addr) *Context {
	chain := p.chainBuf[:0]
	lastMain := isa.NoAddr
	for _, f := range p.native {
		if p.siteInMain(f.site) {
			lastMain = f.site
		}
		if !f.lib {
			// The shadow stack records frames only for targets inside
			// the main binary; the recorded call site is the nearest
			// main-binary origin.
			chain = append(chain, ChainEntry{Fn: f.fn, Site: lastMain})
		}
	}
	alloSite := rawSite
	if !p.siteInMain(rawSite) {
		alloSite = lastMain
	}
	chain = append(chain, ChainEntry{Fn: AllocFn, Site: alloSite})
	p.chainBuf = chain
	p.redBuf = reduceChainInto(p.redBuf[:0], chain)
	return p.contexts.intern(p.redBuf)
}

// alloc tracks one intercepted memory-management call.
//
//halo:hot
func (p *Profiler) alloc(ev vm.AllocEvent) {
	switch ev.Kind {
	case vm.KindFree:
		p.objects.remove(ev.Old)
		return
	case vm.KindRealloc:
		p.objects.remove(ev.Old)
	}
	p.totalAllocs++
	if ev.Ptr == 0 {
		return
	}
	ctx := p.currentContext(ev.Site)
	p.serial++
	ctx.Allocs++
	ctx.serials = append(ctx.serials, p.serial)
	p.serialCtx = append(p.serialCtx, ctx.ID)
	if ev.Size > p.cfg.MaxObjectSize {
		return // not a grouping candidate; leave untracked
	}
	p.trackedAllocs++
	size := ev.Size
	if size == 0 {
		size = 1
	}
	p.objects.insert(object{
		base:    ev.Ptr,
		size:    size,
		serial:  p.serial,
		ctx:     ctx.ID,
		rawSite: uint32(ev.Site),
	})
	if p.objects.len() > p.peakLive {
		p.peakLive = p.objects.len()
	}
}

// access feeds one load or store through the affinity queue and, when
// tracing is enabled, the hot-data-streams trace recorder.
//
//halo:hot
func (p *Profiler) access(addr uint64, size uint8) {
	o := p.objects.find(addr)
	if o == nil {
		return
	}
	p.queue.Push(affinity.Access{
		Obj:    o.serial,
		Ctx:    o.ctx,
		Size:   uint32(size),
		Serial: o.serial,
	})
	if p.cfg.RecordTrace && len(p.trace) < p.cfg.MaxTrace {
		// The reference trace is macro-deduplicated the same way the
		// affinity queue is: consecutive references to one object are a
		// single trace element.
		if n := len(p.trace); n == 0 || p.trace[n-1].Obj != o.serial {
			p.trace = append(p.trace, Ref{Obj: o.serial, Site: isa.Addr(o.rawSite), ObjSize: uint32(o.size)})
		}
	}
}

// Finish produces the profile. The affinity graph is filtered to the
// configured coverage (§4.1's 90% rule).
func (p *Profiler) Finish() *Profile {
	return &Profile{
		Prog:          p.prog,
		ProgName:      p.prog.Name,
		Graph:         p.graph.Filter(p.cfg.Coverage),
		RawGraph:      p.graph,
		Contexts:      p.contexts.list,
		Trace:         p.trace,
		TotalAllocs:   p.totalAllocs,
		TrackedAllocs: p.trackedAllocs,
		TotalAccesses: p.graph.TotalAccesses(),
		PeakLive:      p.peakLive,
		Events:        p.events,
	}
}

// DescribeTop renders the heaviest contexts, a debugging aid mirroring the
// paper's Figure 9 node listing.
func (p *Profile) DescribeTop(n int) string {
	nodes := p.Graph.Nodes()
	type na struct {
		c affinity.Ctx
		a uint64
	}
	list := make([]na, 0, len(nodes))
	for _, c := range nodes {
		list = append(list, na{c, p.Graph.Accesses(c)})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].a != list[j].a {
			return list[i].a > list[j].a
		}
		return list[i].c < list[j].c
	})
	if n > len(list) {
		n = len(list)
	}
	out := ""
	for _, e := range list[:n] {
		out += fmt.Sprintf("%8d  %s\n", e.a, p.Contexts[e.c].Describe(p.Prog))
	}
	return out
}
