package profile

import (
	"testing"
	"testing/quick"

	"halo/internal/affinity"
	"halo/internal/alloc"
	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/prog"
	"halo/internal/vm"
)

// runProfiled executes a builder-defined program under the profiler.
func runProfiled(t *testing.T, cfg Config, build func(b *prog.Builder)) *Profile {
	t.Helper()
	b := prog.NewBuilder("t")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := New(p, cfg)
	m := mem.NewMemory()
	v := vm.New(p, m, alloc.NewSizeSeg(mem.NewOS(m)), pr, vm.Config{Seed: 3})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	return pr.Finish()
}

// chainNames renders a context chain as function names for assertions.
func chainNames(p *Profile, c *Context) []string {
	var out []string
	for _, e := range c.Chain {
		if e.Fn == AllocFn {
			out = append(out, "alloc")
		} else {
			out = append(out, p.Prog.Funcs[e.Fn].Name)
		}
	}
	return out
}

func TestContextsDistinguishCallers(t *testing.T) {
	prof := runProfiled(t, Config{}, func(b *prog.Builder) {
		mk := b.Func("mk", 0)
		sz := mk.ConstReg(16)
		mk.Ret(mk.Malloc(sz))
		f := b.Func("siteA", 0)
		f.Ret(f.Call("mk"))
		g := b.Func("siteB", 0)
		g.Ret(g.Call("mk"))
		m := b.Func("main", 0)
		pa := m.Call("siteA")
		pb := m.Call("siteB")
		va := m.Reg()
		m.LoadWord(va, pa, 0)
		vb := m.Reg()
		m.LoadWord(vb, pb, 0)
		m.RetConst(0)
	})
	// Two distinct allocation contexts: via siteA and via siteB.
	if len(prof.Contexts) != 2 {
		t.Fatalf("contexts = %d, want 2", len(prof.Contexts))
	}
}

func TestLibraryFramesSkipped(t *testing.T) {
	prof := runProfiled(t, Config{}, func(b *prog.Builder) {
		opn := b.LibFunc("operator_new", 1)
		opn.Ret(opn.Malloc(opn.Param(0)))
		mk := b.Func("make_node", 0)
		sz := mk.ConstReg(16)
		mk.Ret(mk.Call("operator_new", sz))
		m := b.Func("main", 0)
		p := m.Call("make_node")
		v := m.Reg()
		m.LoadWord(v, p, 0)
		m.RetConst(0)
	})
	if len(prof.Contexts) != 1 {
		t.Fatalf("contexts = %d, want 1", len(prof.Contexts))
	}
	names := chainNames(prof, prof.Contexts[0])
	for _, n := range names {
		if n == "operator_new" {
			t.Fatalf("library frame in chain: %v", names)
		}
	}
	// The alloc entry's site must be traced back into main-binary code.
	last := prof.Contexts[0].Chain[len(prof.Contexts[0].Chain)-1]
	if last.Fn != AllocFn {
		t.Fatalf("chain does not end at the allocator: %v", names)
	}
	f := prof.Prog.FuncOf(last.Site)
	if f == nil || f.Lib {
		t.Fatalf("alloc site not traced to the main binary: %v", last.Site)
	}
}

func TestRecursionReduced(t *testing.T) {
	prof := runProfiled(t, Config{}, func(b *prog.Builder) {
		rec := b.Func("rec", 1)
		d := rec.Param(0)
		leaf := rec.NewLabel()
		one := rec.ConstReg(1)
		c := rec.Reg()
		rec.Lt(c, d, one)
		rec.Bnz(c, leaf)
		d1 := rec.Reg()
		rec.AddImm(d1, d, -1)
		rec.Call("rec", d1)
		rec.Bind(leaf)
		sz := rec.ConstReg(16)
		p := rec.Malloc(sz)
		v := rec.Reg()
		rec.LoadWord(v, p, 0)
		rec.RetConst(0)

		m := b.Func("main", 0)
		// One call site, varying depth: recursion depth must not mint new
		// contexts beyond the reduced forms.
		m.LoopN(9, func(i prog.Reg) {
			m.Call("rec", i)
		})
		m.RetConst(0)
	})
	// Any recursion depth >= 2 canonicalises to the same reduced chain;
	// depth 1 differs (no repeated (rec, self-site) pair). So exactly 2
	// contexts, not one per depth.
	if len(prof.Contexts) != 2 {
		for _, c := range prof.Contexts {
			t.Logf("ctx: %v", chainNames(prof, c))
		}
		t.Fatalf("contexts = %d, want 2 (reduced recursion)", len(prof.Contexts))
	}
}

func TestObjectTrackingAndAffinity(t *testing.T) {
	prof := runProfiled(t, Config{}, func(b *prog.Builder) {
		mkA := b.Func("mkA", 0)
		szA := mkA.ConstReg(16)
		mkA.Ret(mkA.Malloc(szA))
		mkB := b.Func("mkB", 0)
		szB := mkB.ConstReg(16)
		mkB.Ret(mkB.Malloc(szB))
		m := b.Func("main", 0)
		a := m.Call("mkA")
		bb := m.Call("mkB")
		// Alternate accesses: strong affinity between the contexts.
		m.LoopN(50, func(prog.Reg) {
			va := m.Reg()
			m.LoadWord(va, a, 0)
			vb := m.Reg()
			m.LoadWord(vb, bb, 0)
		})
		m.RetConst(0)
	})
	if prof.TrackedAllocs != 2 {
		t.Fatalf("tracked = %d", prof.TrackedAllocs)
	}
	g := prof.Graph
	var ctxA, ctxB affinity.Ctx = -1, -1
	for _, c := range prof.Contexts {
		names := chainNames(prof, c)
		if names[0] == "mkA" {
			ctxA = c.ID
		}
		if names[0] == "mkB" {
			ctxB = c.ID
		}
	}
	if g.Weight(ctxA, ctxB) == 0 {
		t.Fatal("no affinity recorded between alternating contexts")
	}
}

func TestFreedObjectsUntracked(t *testing.T) {
	prof := runProfiled(t, Config{}, func(b *prog.Builder) {
		m := b.Func("main", 0)
		sz := m.ConstReg(32)
		p := m.Malloc(sz)
		v := m.Reg()
		m.LoadWord(v, p, 0)
		m.Free(p)
		// Dangling access: must not be attributed to the freed object.
		m.LoadWord(v, p, 0)
		m.RetConst(0)
	})
	if prof.TotalAccesses != 1 {
		t.Fatalf("accesses = %d, want 1 (freed object untracked)", prof.TotalAccesses)
	}
}

func TestLargeObjectsNotTracked(t *testing.T) {
	prof := runProfiled(t, Config{MaxObjectSize: 64}, func(b *prog.Builder) {
		m := b.Func("main", 0)
		szBig := m.ConstReg(128)
		big := m.Malloc(szBig)
		v := m.Reg()
		m.LoadWord(v, big, 0)
		szOk := m.ConstReg(64)
		ok := m.Malloc(szOk)
		m.LoadWord(v, ok, 0)
		m.RetConst(0)
	})
	if prof.TrackedAllocs != 1 {
		t.Fatalf("tracked = %d, want 1", prof.TrackedAllocs)
	}
	if prof.TotalAllocs != 2 {
		t.Fatalf("total = %d, want 2", prof.TotalAllocs)
	}
}

func TestTraceRecordsMacroAccesses(t *testing.T) {
	prof := runProfiled(t, Config{RecordTrace: true}, func(b *prog.Builder) {
		m := b.Func("main", 0)
		sz := m.ConstReg(16)
		a := m.Malloc(sz)
		sz2 := m.ConstReg(16)
		bb := m.Malloc(sz2)
		v := m.Reg()
		m.LoadWord(v, a, 0)
		m.LoadWord(v, a, 8) // same object: same macro access
		m.LoadWord(v, bb, 0)
		m.LoadWord(v, a, 0)
		m.RetConst(0)
	})
	if len(prof.Trace) != 3 {
		t.Fatalf("trace = %d refs, want 3 (a, b, a)", len(prof.Trace))
	}
	if prof.Trace[0].Obj == prof.Trace[1].Obj {
		t.Fatal("distinct objects share identity")
	}
	if prof.Trace[0].Obj != prof.Trace[2].Obj {
		t.Fatal("revisited object changed identity")
	}
}

func TestReduceChainProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		chain := make([]ChainEntry, len(raw))
		for i, v := range raw {
			chain[i] = ChainEntry{Fn: int32(v % 7), Site: isa.Addr(v % 13)}
		}
		red := reduceChain(chain)
		// No duplicate pairs.
		seen := map[ChainEntry]bool{}
		for _, e := range red {
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		// Every input pair present.
		for _, e := range chain {
			if !seen[e] {
				return false
			}
		}
		// Idempotent.
		again := reduceChain(red)
		if len(again) != len(red) {
			return false
		}
		for i := range red {
			if red[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestObjIndexProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		idx := newObjIndex()
		live := map[uint64]uint64{} // base -> serial
		for i, op := range ops {
			base := uint64(op%512)*16 + 16
			if _, ok := live[base]; ok && op%3 == 0 {
				idx.remove(base)
				delete(live, base)
				continue
			}
			idx.insert(object{base: base, size: 16, serial: uint64(i)})
			live[base] = uint64(i)
		}
		if idx.len() != len(live) {
			return false
		}
		for base, serial := range live {
			if got := idx.find(base + 7); got == nil || got.serial != serial {
				return false
			}
		}
		// Gap addresses miss.
		return idx.find(5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestObjIndexSubGranulePacking pins the overflow path: objects packed
// tighter than the 8-byte shadow granule (impossible under the built-in
// allocators, but the index must stay exact for any geometry).
func TestObjIndexSubGranulePacking(t *testing.T) {
	idx := newObjIndex()
	// Three 2-byte objects inside one granule, plus one straddling the
	// granule boundary.
	for i := 0; i < 3; i++ {
		idx.insert(object{base: 64 + uint64(i)*2, size: 2, serial: uint64(i + 1)})
	}
	idx.insert(object{base: 70, size: 4, serial: 5}) // spans granules 8 and 9
	for i := 0; i < 3; i++ {
		base := 64 + uint64(i)*2
		for off := uint64(0); off < 2; off++ {
			got := idx.find(base + off)
			if got == nil || got.serial != uint64(i+1) {
				t.Fatalf("find(%d) = %v, want serial %d", base+off, got, i+1)
			}
		}
	}
	if got := idx.find(72); got == nil || got.serial != 5 {
		t.Fatalf("straddling object not found at 72: %v", got)
	}
	if idx.len() != 4 {
		t.Fatalf("len = %d, want 4", idx.len())
	}
	// Remove the middle object; its neighbours must survive intact.
	if o := idx.remove(66); o == nil || o.serial != 2 {
		t.Fatalf("remove(66) = %v, want serial 2", o)
	}
	if got := idx.find(66); got != nil {
		t.Fatalf("removed object still found: %v", got)
	}
	if got := idx.find(65); got == nil || got.serial != 1 {
		t.Fatalf("neighbour lost after overflow removal: %v", got)
	}
	if got := idx.find(71); got == nil || got.serial != 5 {
		t.Fatalf("straddler lost after overflow removal: %v", got)
	}
}

func TestAllocatedBetween(t *testing.T) {
	c := &Context{serials: []uint64{5, 10, 20}}
	cases := []struct {
		lo, hi uint64
		want   bool
	}{
		{1, 4, false},
		{1, 6, true},
		{5, 10, false}, // exclusive bounds
		{9, 21, true},
		{20, 30, false},
		{4, 6, true},
	}
	for _, tc := range cases {
		if got := c.AllocatedBetween(tc.lo, tc.hi); got != tc.want {
			t.Errorf("AllocatedBetween(%d,%d) = %v", tc.lo, tc.hi, got)
		}
	}
}
