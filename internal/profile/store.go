package profile

// This file is the persistence surface of the package: the accessors and
// the standalone interning table that internal/profstore builds its
// serialisation format and profile merging on. Nothing here is used by a
// live profiling run.

// ChainKey canonically serialises a reduced chain. Two chains are the same
// allocation context if and only if their keys are equal, which is how
// contexts from independent profiling runs are matched during merging.
func ChainKey(chain []ChainEntry) string { return chainKey(chain) }

// Serials returns the context's allocation-serial log in ascending order.
func (c *Context) Serials() []uint64 { return c.serials }

// RestoreSerials replaces the serial log; decoders use it to rebuild a
// context exactly as the profiler recorded it.
func (c *Context) RestoreSerials(s []uint64) { c.serials = s }

// ContextSet interns reduced chains outside a live profiling run. Interning
// order assigns IDs, so callers that need deterministic IDs (profile
// merging) must intern in a canonical order.
type ContextSet struct {
	table *contextTable
}

// NewContextSet returns an empty interning table.
func NewContextSet() *ContextSet {
	return &ContextSet{table: newContextTable()}
}

// Intern returns the context for a reduced chain, creating it with the next
// free ID on first use.
func (s *ContextSet) Intern(chain []ChainEntry) *Context {
	return s.table.intern(chain)
}

// Lookup returns the interned context for a chain, or nil.
func (s *ContextSet) Lookup(chain []ChainEntry) *Context {
	if id, ok := s.table.byKey[ChainKey(chain)]; ok {
		return s.table.list[id]
	}
	return nil
}

// List returns the interned contexts indexed by their affinity.Ctx IDs.
func (s *ContextSet) List() []*Context { return s.table.list }

// Len reports the number of interned contexts.
func (s *ContextSet) Len() int { return len(s.table.list) }
