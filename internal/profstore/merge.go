package profstore

import (
	"fmt"
	"sort"

	"halo/internal/affinity"
	"halo/internal/profile"
)

// DefaultCoverage is the paper's node-filter fraction (§4.1), applied to
// the merged raw graph when no explicit coverage is given.
const DefaultCoverage = 0.90

// Merge combines profiles from independent training runs of one program
// into a single profile, filtering the merged graph at the paper's default
// 90% coverage. See MergeWithCoverage for the semantics.
func Merge(profs ...*profile.Profile) (*profile.Profile, error) {
	return MergeWithCoverage(DefaultCoverage, profs...)
}

// MergeWithCoverage combines profiles of one program (matched by ProgName)
// by identifying allocation contexts across runs through their reduced
// chains, summing node access counts and edge weights, and re-filtering the
// merged raw graph at the given coverage. The result is deterministic and
// independent of argument order: context IDs are assigned in canonical
// (chain-key) order, and all combination is additive.
//
// Two per-run artefacts do not survive merging, by design: allocation
// serial logs (serial spaces of distinct runs are incomparable; serials
// only feed the co-allocatability check during live profiling) and data
// reference traces (the hot-data-streams analysis is defined over a single
// run's reference order). Merged profiles drive grouping, identification
// and rewriting — the OptimizeFromProfile path.
func MergeWithCoverage(coverage float64, profs ...*profile.Profile) (*profile.Profile, error) {
	if len(profs) == 0 {
		return nil, fmt.Errorf("profstore: merge: no profiles")
	}
	if coverage <= 0 || coverage > 1 {
		return nil, fmt.Errorf("profstore: merge: coverage %v out of (0,1]", coverage)
	}
	name := progName(profs[0])
	for _, p := range profs {
		if p == nil {
			return nil, fmt.Errorf("profstore: merge: nil profile")
		}
		if p.RawGraph == nil {
			return nil, fmt.Errorf("profstore: merge: profile for %q has no raw graph", progName(p))
		}
		if n := progName(p); n != name {
			return nil, fmt.Errorf("profstore: merge: program mismatch: %q vs %q", name, n)
		}
	}

	// Canonical context numbering: every distinct chain across all inputs,
	// interned in ascending chain-key order.
	chains := make(map[string][]profile.ChainEntry)
	for _, p := range profs {
		for _, c := range p.Contexts {
			chains[profile.ChainKey(c.Chain)] = c.Chain
		}
	}
	keys := make([]string, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	set := profile.NewContextSet()
	for _, k := range keys {
		set.Intern(chains[k])
	}

	// Fold every input into the canonical numbering.
	raw := affinity.NewGraph()
	out := &profile.Profile{ProgName: name, Contexts: set.List()}
	for _, p := range profs {
		remap := make([]affinity.Ctx, len(p.Contexts))
		for i, c := range p.Contexts {
			merged := set.Lookup(c.Chain)
			merged.Allocs += c.Allocs
			remap[i] = merged.ID
		}
		raw.Merge(p.RawGraph, func(c affinity.Ctx) affinity.Ctx { return remap[c] })
		out.TotalAllocs += p.TotalAllocs
		out.TrackedAllocs += p.TrackedAllocs
		if p.PeakLive > out.PeakLive {
			out.PeakLive = p.PeakLive
		}
		if out.Prog == nil {
			out.Prog = p.Prog
		}
	}
	out.RawGraph = raw
	out.Graph = raw.Filter(coverage)
	out.TotalAccesses = raw.TotalAccesses()
	return out, nil
}

func progName(p *profile.Profile) string {
	if p == nil {
		return ""
	}
	if p.ProgName != "" {
		return p.ProgName
	}
	if p.Prog != nil {
		return p.Prog.Name
	}
	return ""
}
