// Pipeline-facing profstore tests. These live in the external test
// package because internal/core imports profstore (for ProfileN's merge),
// so the in-package tests cannot import core without a cycle.
package profstore_test

import (
	"bytes"
	"testing"

	"halo/internal/core"
	"halo/internal/profile"
	"halo/internal/profstore"
	"halo/internal/workloads"
)

func pipelineProfile(t testing.TB, name string, seed uint64) *profile.Profile {
	t.Helper()
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	prof, err := core.Profile(p, core.Config{ProfileSeed: seed})
	if err != nil {
		t.Fatalf("profiling %s: %v", name, err)
	}
	return prof
}

// TestMergedProfileOptimizes drives a merged multi-seed profile through the
// standard OptimizeFromProfile path and checks the result is deterministic.
func TestMergedProfileOptimizes(t *testing.T) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	a := pipelineProfile(t, "art", 3)
	b := pipelineProfile(t, "art", 5)

	var reports []string
	for i := 0; i < 2; i++ {
		m, err := profstore.Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.OptimizeFromProfile(p, m, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(opt.Groups) == 0 || len(opt.BitSelectors) == 0 {
			t.Fatalf("merged profile produced no policy: %d groups, %d selectors",
				len(opt.Groups), len(opt.BitSelectors))
		}
		reports = append(reports, opt.GroupReport())
	}
	if reports[0] != reports[1] {
		t.Fatalf("merged optimization not deterministic:\n%s\nvs\n%s", reports[0], reports[1])
	}
}

// TestProfileNWorkerInvariance checks the concurrent multi-seed training
// path end to end: ProfileN must produce byte-identical profile images at
// any worker-pool width, and must match the hand-rolled serial
// profile-then-merge equivalent.
func TestProfileNWorkerInvariance(t *testing.T) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	cfg := core.Config{ProfileSeed: 3}

	manual, err := profstore.Merge(
		pipelineProfile(t, "art", 3),
		pipelineProfile(t, "art", 4),
		pipelineProfile(t, "art", 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	wantImg, err := profstore.Encode(manual)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		prof, err := core.ProfileN(p, cfg, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		img, err := profstore.Encode(prof)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(img, wantImg) {
			t.Fatalf("workers=%d: ProfileN image differs from serial merge (%d vs %d bytes)",
				workers, len(img), len(wantImg))
		}
	}
}
