// Package profstore persists profiles. It defines the versioned binary
// format that training runs ship their results in (the reproduction's
// analogue of perf.data / BOLT's fdata files) and the deterministic merge
// that combines profiles from independent runs — different seeds, different
// scales, different machines — into one profile for grouping.
//
// The format is deliberately byte-deterministic: encoding the same profile
// always yields the same image, and merging the same set of profiles yields
// the same image regardless of argument order. That property is what lets
// the optimization service (internal/service) content-address profiles and
// reuse cached artifacts across identical requests.
package profstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"halo/internal/affinity"
	"halo/internal/isa"
	"halo/internal/profile"
)

// Image format. A profile is serialised as:
//
//	magic    "HPRO"
//	version  uvarint (currently 1)
//	name     string (uvarint length + bytes): program name
//	stats    uvarint TotalAllocs, TrackedAllocs, PeakLive
//	contexts uvarint count, then per context:
//	           uvarint chain length; per entry varint Fn, uvarint Site
//	           uvarint Allocs
//	           uvarint serial count; serials delta-encoded (first value
//	           absolute, then successive differences)
//	graph    the coverage-filtered affinity graph (see below)
//	rawgraph the unfiltered affinity graph
//	trace    uvarint count; per ref uvarint Obj, uvarint Site, uvarint Size
//	crc      4-byte little-endian IEEE CRC-32 of every preceding byte
//
// and each graph as:
//
//	total    uvarint (observed macro accesses, including filtered ones)
//	nodes    uvarint count; (uvarint ctx, uvarint accesses) ascending by ctx
//	edges    uvarint count; (uvarint u, uvarint v, uvarint weight) sorted
const (
	magic   = "HPRO"
	version = 1
)

// Plausibility caps mirroring internal/isa's decoder. Beyond these static
// caps, every decoded count is also bounded by the bytes actually present
// in the image (reader.canHold), so a tiny forged image cannot demand a
// huge allocation even with a valid checksum.
const (
	maxContexts = 1 << 22
	maxChainLen = 1 << 16
	maxSerials  = 1 << 28
	maxNodes    = 1 << 22
	maxEdges    = 1 << 26
	maxTraceLen = 1 << 28
)

// Encode serialises a profile to its binary image. The profile's program is
// recorded by name only; Decode returns a profile with Prog == nil, which
// callers re-attach via the program image they stored alongside.
func Encode(p *profile.Profile) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("profstore: encode: nil profile")
	}
	if p.Graph == nil || p.RawGraph == nil {
		return nil, fmt.Errorf("profstore: encode: profile has no affinity graphs")
	}
	name := p.ProgName
	if name == "" && p.Prog != nil {
		name = p.Prog.Name
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeUvarint(&buf, version)
	writeString(&buf, name)
	writeUvarint(&buf, p.TotalAllocs)
	writeUvarint(&buf, p.TrackedAllocs)
	writeUvarint(&buf, uint64(p.PeakLive))
	writeUvarint(&buf, uint64(len(p.Contexts)))
	for _, c := range p.Contexts {
		writeUvarint(&buf, uint64(len(c.Chain)))
		for _, e := range c.Chain {
			writeVarint(&buf, int64(e.Fn))
			writeUvarint(&buf, uint64(e.Site))
		}
		writeUvarint(&buf, c.Allocs)
		serials := c.Serials()
		writeUvarint(&buf, uint64(len(serials)))
		var prev uint64
		for _, s := range serials {
			writeUvarint(&buf, s-prev)
			prev = s
		}
	}
	encodeGraph(&buf, p.Graph)
	encodeGraph(&buf, p.RawGraph)
	writeUvarint(&buf, uint64(len(p.Trace)))
	for _, r := range p.Trace {
		writeUvarint(&buf, r.Obj)
		writeUvarint(&buf, uint64(r.Site))
		writeUvarint(&buf, uint64(r.ObjSize))
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes(), nil
}

// Decode parses a profile image, verifying its checksum and structure. The
// returned profile has Prog == nil and ProgName set; attach the program
// before using APIs that render code locations (DescribeTop, GroupReport).
func Decode(image []byte) (*profile.Profile, error) {
	if len(image) < len(magic)+4 {
		return nil, fmt.Errorf("profstore: image too short (%d bytes)", len(image))
	}
	body, tail := image[:len(image)-4], image[len(image)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("profstore: checksum mismatch (image corrupt)")
	}
	r := &reader{buf: body}
	if string(r.bytes(4)) != magic {
		return nil, fmt.Errorf("profstore: bad magic")
	}
	if v := r.uvarint(); v != version {
		return nil, fmt.Errorf("profstore: unsupported version %d", v)
	}
	p := &profile.Profile{}
	p.ProgName = r.string()
	p.TotalAllocs = r.uvarint()
	p.TrackedAllocs = r.uvarint()
	p.PeakLive = int(r.uvarint())
	nc := r.uvarint()
	if nc > maxContexts || !r.canHold(nc, 3) {
		return nil, fmt.Errorf("profstore: implausible context count %d", nc)
	}
	set := profile.NewContextSet()
	for i := uint64(0); i < nc; i++ {
		clen := r.uvarint()
		if clen > maxChainLen || !r.canHold(clen, 2) {
			return nil, fmt.Errorf("profstore: implausible chain length %d", clen)
		}
		chain := make([]profile.ChainEntry, clen)
		for j := range chain {
			chain[j] = profile.ChainEntry{
				Fn:   int32(r.varint()),
				Site: isa.Addr(r.uvarint()),
			}
		}
		c := set.Intern(chain)
		if int(c.ID) != int(i) {
			return nil, fmt.Errorf("profstore: duplicate context chain at index %d", i)
		}
		c.Allocs = r.uvarint()
		ns := r.uvarint()
		if ns > maxSerials || !r.canHold(ns, 1) {
			return nil, fmt.Errorf("profstore: implausible serial count %d", ns)
		}
		if ns > 0 {
			serials := make([]uint64, ns)
			var prev uint64
			for j := range serials {
				prev += r.uvarint()
				serials[j] = prev
			}
			c.RestoreSerials(serials)
		}
	}
	p.Contexts = set.List()
	var err error
	if p.Graph, err = decodeGraph(r, nc); err != nil {
		return nil, err
	}
	if p.RawGraph, err = decodeGraph(r, nc); err != nil {
		return nil, err
	}
	nt := r.uvarint()
	if nt > maxTraceLen || !r.canHold(nt, 3) {
		return nil, fmt.Errorf("profstore: implausible trace length %d", nt)
	}
	if nt > 0 {
		p.Trace = make([]profile.Ref, nt)
		for i := range p.Trace {
			p.Trace[i] = profile.Ref{
				Obj:     r.uvarint(),
				Site:    isa.Addr(r.uvarint()),
				ObjSize: uint32(r.uvarint()),
			}
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("profstore: truncated image: %w", r.err)
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("profstore: %d trailing bytes", len(body)-r.pos)
	}
	p.TotalAccesses = p.RawGraph.TotalAccesses()
	return p, nil
}

// Save encodes a profile to a file.
func Save(path string, p *profile.Profile) error {
	img, err := Encode(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, img, 0o644)
}

// Load reads and decodes a profile file.
func Load(path string) (*profile.Profile, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(img)
}

func encodeGraph(buf *bytes.Buffer, g *affinity.Graph) {
	writeUvarint(buf, g.TotalAccesses())
	nodes := g.Nodes()
	writeUvarint(buf, uint64(len(nodes)))
	for _, c := range nodes {
		writeUvarint(buf, uint64(c))
		writeUvarint(buf, g.Accesses(c))
	}
	edges := g.Edges()
	writeUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		writeUvarint(buf, uint64(e.U))
		writeUvarint(buf, uint64(e.V))
		writeUvarint(buf, g.Weight(e.U, e.V))
	}
}

func decodeGraph(r *reader, ncontexts uint64) (*affinity.Graph, error) {
	g := affinity.NewGraph()
	total := r.uvarint()
	nn := r.uvarint()
	if nn > maxNodes || !r.canHold(nn, 2) {
		return nil, fmt.Errorf("profstore: implausible graph node count %d", nn)
	}
	for i := uint64(0); i < nn; i++ {
		c := r.uvarint()
		if c >= ncontexts {
			return nil, fmt.Errorf("profstore: graph node ctx%d out of range (%d contexts)", c, ncontexts)
		}
		g.SetNodeAccesses(affinity.Ctx(c), r.uvarint())
	}
	ne := r.uvarint()
	if ne > maxEdges || !r.canHold(ne, 3) {
		return nil, fmt.Errorf("profstore: implausible graph edge count %d", ne)
	}
	for i := uint64(0); i < ne; i++ {
		u, v := r.uvarint(), r.uvarint()
		if u >= ncontexts || v >= ncontexts {
			return nil, fmt.Errorf("profstore: graph edge (%d,%d) out of range (%d contexts)", u, v, ncontexts)
		}
		g.AddEdge(affinity.Ctx(u), affinity.Ctx(v), r.uvarint())
	}
	g.SetTotalAccesses(total)
	if r.err != nil {
		return nil, fmt.Errorf("profstore: truncated image: %w", r.err)
	}
	return g, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

type reader struct {
	buf []byte
	pos int
	err error
}

// canHold reports whether the unread input could possibly contain n
// elements of at least minBytes encoded bytes each — the guard that keeps
// forged counts from forcing allocations larger than the image itself.
func (r *reader) canHold(n uint64, minBytes int) bool {
	return n <= uint64(len(r.buf)-r.pos)/uint64(minBytes)
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return make([]byte, n)
	}
	if r.pos+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return make([]byte, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.buf)-r.pos) {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(r.bytes(int(n)))
}
