package profstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"halo/internal/alloc"
	"halo/internal/mem"
	"halo/internal/profile"
	"halo/internal/vm"
	"halo/internal/workloads"
)

// profileWorkload profiles a workload at test scale with the given seed.
// It drives the profiler directly (core imports this package, so the
// pipeline facade is off limits here); the equivalent core.Profile path is
// exercised by profstore_pipeline_test.go in the external test package.
func profileWorkload(t testing.TB, name string, seed uint64, trace bool) *profile.Profile {
	t.Helper()
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	pr := profile.New(p, profile.Config{RecordTrace: trace})
	memory := mem.NewMemory()
	v := vm.New(p, memory, alloc.NewSizeSeg(mem.NewOS(memory)), pr, vm.Config{Seed: seed})
	if _, err := v.Run(); err != nil {
		t.Fatalf("profiling %s: %v", name, err)
	}
	return pr.Finish()
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		workload string
		trace    bool
	}{
		{"povray", false},
		{"art", true},
	} {
		t.Run(tc.workload, func(t *testing.T) {
			prof := profileWorkload(t, tc.workload, 7, tc.trace)
			img, err := Encode(prof)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(img)
			if err != nil {
				t.Fatal(err)
			}

			if got.ProgName != prof.ProgName {
				t.Errorf("ProgName = %q, want %q", got.ProgName, prof.ProgName)
			}
			if got.Prog != nil {
				t.Errorf("decoded profile should not carry a program")
			}
			if got.TotalAllocs != prof.TotalAllocs || got.TrackedAllocs != prof.TrackedAllocs ||
				got.TotalAccesses != prof.TotalAccesses || got.PeakLive != prof.PeakLive {
				t.Errorf("stats mismatch: got %d/%d/%d/%d want %d/%d/%d/%d",
					got.TotalAllocs, got.TrackedAllocs, got.TotalAccesses, got.PeakLive,
					prof.TotalAllocs, prof.TrackedAllocs, prof.TotalAccesses, prof.PeakLive)
			}

			if len(got.Contexts) != len(prof.Contexts) {
				t.Fatalf("%d contexts, want %d", len(got.Contexts), len(prof.Contexts))
			}
			for i, want := range prof.Contexts {
				c := got.Contexts[i]
				if c.ID != want.ID || c.Allocs != want.Allocs || !reflect.DeepEqual(c.Chain, want.Chain) {
					t.Fatalf("context %d differs: %+v vs %+v", i, c, want)
				}
				if !reflect.DeepEqual(c.Serials(), want.Serials()) {
					t.Fatalf("context %d serials differ (%d vs %d entries)",
						i, len(c.Serials()), len(want.Serials()))
				}
			}

			checkGraphsEqual(t, "filtered", prof, got, true)
			checkGraphsEqual(t, "raw", prof, got, false)

			if !reflect.DeepEqual(got.Trace, prof.Trace) &&
				!(len(got.Trace) == 0 && len(prof.Trace) == 0) {
				t.Errorf("trace differs: %d vs %d refs", len(got.Trace), len(prof.Trace))
			}

			// The strongest round-trip property: re-encoding the decoded
			// profile reproduces the image byte for byte.
			img2, err := Encode(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(img, img2) {
				t.Errorf("re-encoded image differs (%d vs %d bytes)", len(img), len(img2))
			}
		})
	}
}

func checkGraphsEqual(t *testing.T, label string, want, got *profile.Profile, filtered bool) {
	t.Helper()
	wg, gg := want.RawGraph, got.RawGraph
	if filtered {
		wg, gg = want.Graph, got.Graph
	}
	if wg.TotalAccesses() != gg.TotalAccesses() {
		t.Errorf("%s graph total = %d, want %d", label, gg.TotalAccesses(), wg.TotalAccesses())
	}
	wantNodes, gotNodes := wg.Nodes(), gg.Nodes()
	if !reflect.DeepEqual(wantNodes, gotNodes) {
		t.Fatalf("%s graph nodes differ: %v vs %v", label, gotNodes, wantNodes)
	}
	for _, c := range wantNodes {
		if wg.Accesses(c) != gg.Accesses(c) {
			t.Errorf("%s graph accesses(ctx%d) = %d, want %d", label, c, gg.Accesses(c), wg.Accesses(c))
		}
	}
	if !reflect.DeepEqual(wg.EdgeWeights(), gg.EdgeWeights()) {
		t.Fatalf("%s graph edge weights differ", label)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	prof := profileWorkload(t, "art", 7, true)
	a, err := Encode(prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(prof)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one profile differ")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	prof := profileWorkload(t, "povray", 7, false)
	img, err := Encode(prof)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bitflips", func(t *testing.T) {
		// The CRC catches any single-byte corruption; sample positions
		// across the image, including the trailing checksum itself.
		stride := len(img)/257 + 1
		for pos := 0; pos < len(img); pos += stride {
			bad := append([]byte(nil), img...)
			bad[pos] ^= 0x41
			if _, err := Decode(bad); err == nil {
				t.Fatalf("corruption at byte %d/%d not detected", pos, len(img))
			}
		}
		for pos := len(img) - 4; pos < len(img); pos++ {
			bad := append([]byte(nil), img...)
			bad[pos] ^= 0x41
			if _, err := Decode(bad); err == nil {
				t.Fatalf("checksum corruption at byte %d not detected", pos)
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		stride := len(img)/257 + 1
		for n := 0; n < len(img); n += stride {
			if _, err := Decode(img[:n]); err == nil {
				t.Fatalf("truncation to %d/%d bytes not detected", n, len(img))
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), img...), 0, 1, 2)); err == nil {
			t.Fatal("trailing bytes not detected")
		}
	})

	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); err == nil {
			t.Fatal("empty image not detected")
		}
	})
}

// TestDecodeForgedCounts crafts tiny images with valid checksums that
// claim enormous element counts; Decode must reject them from the count
// alone instead of allocating.
func TestDecodeForgedCounts(t *testing.T) {
	forge := func(build func(buf *bytes.Buffer)) []byte {
		var buf bytes.Buffer
		buf.WriteString(magic)
		writeUvarint(&buf, version)
		writeString(&buf, "forged")
		writeUvarint(&buf, 0) // TotalAllocs
		writeUvarint(&buf, 0) // TrackedAllocs
		writeUvarint(&buf, 0) // PeakLive
		build(&buf)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
		buf.Write(crc[:])
		return buf.Bytes()
	}
	emptyGraph := func(buf *bytes.Buffer) {
		writeUvarint(buf, 0) // total
		writeUvarint(buf, 0) // nodes
		writeUvarint(buf, 0) // edges
	}
	for name, img := range map[string][]byte{
		"contexts": forge(func(buf *bytes.Buffer) {
			writeUvarint(buf, maxContexts) // claims 4M contexts in ~30 bytes
		}),
		"serials": forge(func(buf *bytes.Buffer) {
			writeUvarint(buf, 1) // one context
			writeUvarint(buf, 0) // empty chain
			writeUvarint(buf, 0) // allocs
			writeUvarint(buf, maxSerials)
		}),
		"trace": forge(func(buf *bytes.Buffer) {
			writeUvarint(buf, 0) // contexts
			emptyGraph(buf)
			emptyGraph(buf)
			writeUvarint(buf, maxTraceLen)
		}),
		"graph-nodes": forge(func(buf *bytes.Buffer) {
			writeUvarint(buf, 0) // contexts
			writeUvarint(buf, 0) // graph total
			writeUvarint(buf, maxNodes)
		}),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(img); err == nil {
				t.Fatalf("forged %s count accepted", name)
			}
		})
	}
}

func TestMergeDeterministic(t *testing.T) {
	a := profileWorkload(t, "art", 3, false)
	b := profileWorkload(t, "art", 5, false)
	c := profileWorkload(t, "art", 11, false)

	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	imgAB, err := Encode(ab)
	if err != nil {
		t.Fatal(err)
	}
	imgBA, err := Encode(ba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imgAB, imgBA) {
		t.Fatal("merge(A,B) and merge(B,A) encode differently")
	}

	abc, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	cba, err := Merge(c, b, a)
	if err != nil {
		t.Fatal(err)
	}
	imgABC, err := Encode(abc)
	if err != nil {
		t.Fatal(err)
	}
	imgCBA, err := Encode(cba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imgABC, imgCBA) {
		t.Fatal("three-way merges in different orders encode differently")
	}
}

func TestMergeSums(t *testing.T) {
	a := profileWorkload(t, "art", 3, false)
	b := profileWorkload(t, "art", 5, false)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalAllocs != a.TotalAllocs+b.TotalAllocs {
		t.Errorf("TotalAllocs = %d, want %d", m.TotalAllocs, a.TotalAllocs+b.TotalAllocs)
	}
	if m.TrackedAllocs != a.TrackedAllocs+b.TrackedAllocs {
		t.Errorf("TrackedAllocs = %d, want %d", m.TrackedAllocs, a.TrackedAllocs+b.TrackedAllocs)
	}
	if got, want := m.RawGraph.TotalAccesses(), a.RawGraph.TotalAccesses()+b.RawGraph.TotalAccesses(); got != want {
		t.Errorf("merged raw accesses = %d, want %d", got, want)
	}
	// Per-context allocation counts add across runs, matched by chain.
	set := profile.NewContextSet()
	for _, c := range m.Contexts {
		set.Intern(c.Chain)
	}
	var checked int
	for _, c := range a.Contexts {
		mc := set.Lookup(c.Chain)
		if mc == nil {
			t.Fatalf("merged profile lost context %v", c.Chain)
		}
		want := c.Allocs
		for _, bc := range b.Contexts {
			if profile.ChainKey(bc.Chain) == profile.ChainKey(c.Chain) {
				want += bc.Allocs
			}
		}
		if m.Contexts[mc.ID].Allocs != want {
			t.Fatalf("context %v allocs = %d, want %d", c.Chain, m.Contexts[mc.ID].Allocs, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no contexts checked")
	}
	// Serial logs and traces deliberately do not survive merging.
	for _, c := range m.Contexts {
		if len(c.Serials()) != 0 {
			t.Fatal("merged context carries serials")
		}
	}
	if len(m.Trace) != 0 {
		t.Fatal("merged profile carries a trace")
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge did not fail")
	}
	a := profileWorkload(t, "art", 3, false)
	p := profileWorkload(t, "povray", 3, false)
	if _, err := Merge(a, p); err == nil {
		t.Fatal("cross-program merge did not fail")
	}
	if _, err := Merge(a, nil); err == nil {
		t.Fatal("nil profile merge did not fail")
	}
	if _, err := MergeWithCoverage(0, a); err == nil {
		t.Fatal("zero coverage did not fail")
	}
}
