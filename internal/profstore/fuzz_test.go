package profstore

import (
	"bytes"
	"testing"

	"halo/internal/affinity"
	"halo/internal/isa"
	"halo/internal/profile"
)

// fuzzSeedProfiles builds a spread of small valid profiles covering the
// format's features: empty, multi-context with serial logs, graphs with
// loop edges, and a recorded reference trace.
func fuzzSeedProfiles(tb testing.TB) []*profile.Profile {
	tb.Helper()
	mk := func(build func(set *profile.ContextSet, p *profile.Profile)) *profile.Profile {
		p := &profile.Profile{ProgName: "fuzz"}
		set := profile.NewContextSet()
		build(set, p)
		p.Contexts = set.List()
		if p.Graph == nil {
			p.Graph = affinity.NewGraph()
		}
		if p.RawGraph == nil {
			p.RawGraph = affinity.NewGraph()
		}
		p.TotalAccesses = p.RawGraph.TotalAccesses()
		return p
	}

	empty := mk(func(set *profile.ContextSet, p *profile.Profile) {})

	rich := mk(func(set *profile.ContextSet, p *profile.Profile) {
		a := set.Intern([]profile.ChainEntry{
			{Fn: 0, Site: 4}, {Fn: profile.AllocFn, Site: 12},
		})
		a.Allocs = 3
		a.RestoreSerials([]uint64{1, 4, 9})
		b := set.Intern([]profile.ChainEntry{
			{Fn: 1, Site: 20}, {Fn: profile.AllocFn, Site: 28},
		})
		b.Allocs = 2
		b.RestoreSerials([]uint64{2, 7})

		raw := affinity.NewGraph()
		raw.AddAccesses(a.ID, 90)
		raw.AddAccesses(b.ID, 10)
		raw.AddEdge(a.ID, b.ID, 5)
		raw.AddEdge(a.ID, a.ID, 2) // loop edge
		p.RawGraph = raw
		p.Graph = raw.Filter(0.9)
		p.TotalAllocs = 5
		p.TrackedAllocs = 5
		p.PeakLive = 2
		p.Trace = []profile.Ref{
			{Obj: 1, Site: isa.Addr(12), ObjSize: 16},
			{Obj: 2, Site: isa.Addr(28), ObjSize: 32},
			{Obj: 1, Site: isa.Addr(12), ObjSize: 16},
		}
	})

	merged, err := Merge(rich, rich)
	if err != nil {
		tb.Fatalf("building merged seed: %v", err)
	}
	return []*profile.Profile{empty, rich, merged}
}

// FuzzDecode throws arbitrary bytes at the profile-image decoder. Decode
// must never panic or over-allocate (the plausibility caps), and any image
// it accepts must re-encode canonically: Encode(Decode(img)) is a fixed
// point of another decode/encode round.
func FuzzDecode(f *testing.F) {
	for _, p := range fuzzSeedProfiles(f) {
		img, err := Encode(p)
		if err != nil {
			f.Fatalf("encoding seed profile: %v", err)
		}
		f.Add(img)
		// Truncated and bit-flipped variants seed the corpus with
		// near-valid images so the mutator starts at the caps.
		f.Add(img[:len(img)/2])
		flipped := bytes.Clone(img)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected: that is a fine outcome for arbitrary bytes
		}
		enc, err := Encode(p)
		if err != nil {
			t.Fatalf("decoded profile failed to re-encode: %v", err)
		}
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded image failed to decode: %v", err)
		}
		enc2, err := Encode(p2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not canonical: images differ (%d vs %d bytes)", len(enc), len(enc2))
		}
	})
}
