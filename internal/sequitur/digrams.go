package sequitur

import "sort"

// This file applies the grammar to *static instruction streams*. The VM's
// predecoder (internal/vm) feeds each function's opcode sequence through
// the same machinery that compresses data reference traces; rules surface
// exactly the digrams that repeat, and RuleFreq weights them by how often
// their enclosing rule recurs. The hot digrams gate superinstruction
// fusion: only opcode pairs that the grammar proves repeated are worth a
// fused handler.

// Digram is one adjacent symbol pair with its occurrence weight.
type Digram struct {
	A, B int64
	// Count is a lower bound on the pair's occurrences in the input: the
	// sum of enclosing-rule frequencies over every place the pair appears
	// adjacently inside a rule body. SEQUITUR's digram-uniqueness invariant
	// guarantees every repeated pair is captured by some rule, so any pair
	// occurring >= 2 times reports Count >= 2.
	Count int
}

// DigramCounter accumulates hot-digram counts across several inputs (the
// predecoder runs one grammar per function so pairs never straddle a
// function boundary, then merges the counts program-wide).
type DigramCounter struct {
	counts map[[2]int64]int
}

// NewDigramCounter returns an empty accumulator.
func NewDigramCounter() *DigramCounter {
	return &DigramCounter{counts: make(map[[2]int64]int)}
}

// Observe builds the grammar over one input sequence and folds its digram
// weights into the accumulator. Values must be non-negative (the grammar's
// terminal space).
func (c *DigramCounter) Observe(seq []int64) {
	if len(seq) < 2 {
		return
	}
	g := NewGrammar()
	for _, v := range seq {
		g.Append(v)
	}
	freq := RuleFreq(g)
	for num := range g.rules {
		if !g.rules[num].live {
			continue
		}
		f := freq[num]
		if f == 0 {
			continue
		}
		// Walk the rule body; every adjacent terminal-terminal pair inside
		// a rule occurring f times occurs (at least) f times in the input.
		prev := int64(-1)
		hasPrev := false
		for s := g.firstOf(int32(num)); !g.syms[s].guard; s = g.syms[s].next {
			v := g.syms[s].value
			if v < 0 { // nonterminal: breaks terminal adjacency at this level
				hasPrev = false
				continue
			}
			if hasPrev {
				c.counts[[2]int64{prev, v}] += f
			}
			prev, hasPrev = v, true
		}
	}
}

// Hot returns the accumulated digrams with Count >= min, hottest first
// (ties broken by pair value for determinism).
func (c *DigramCounter) Hot(min int) []Digram {
	out := make([]Digram, 0, len(c.counts))
	for k, n := range c.counts {
		if n >= min {
			out = append(out, Digram{A: k[0], B: k[1], Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// HotDigrams is the single-input convenience: grammar over seq, digrams
// with Count >= min, hottest first.
func HotDigrams(seq []int64, min int) []Digram {
	c := NewDigramCounter()
	c.Observe(seq)
	return c.Hot(min)
}

// Trigram is one adjacent symbol triple with its occurrence weight.
type Trigram struct {
	A, B, C int64
	// Count is the triple's exact occurrence count in the input (capped
	// inputs aside): every occurrence is attributed to the deepest grammar
	// rule whose body-level expansion spans it across a symbol boundary,
	// weighted by that rule's frequency. Rules of terminal length >= 3 are
	// exactly what surface here — SEQUITUR's grammar proves the repeats.
	Count int
}

// TriCounter accumulates hot-trigram counts across several inputs, the
// length-3 extension of DigramCounter: the VM's predecoder feeds it each
// function's static opcode stream and fuses the triples it proves hot.
type TriCounter struct {
	counts map[[3]int64]int
}

// NewTriCounter returns an empty accumulator.
func NewTriCounter() *TriCounter {
	return &TriCounter{counts: make(map[[3]int64]int)}
}

// triExpandCap bounds memoised rule expansions; opcode streams are function
// bodies (< 2^16 instructions), so the cap is never hit in practice.
const triExpandCap = 1 << 16

// Observe builds the grammar over one input sequence and folds its trigram
// weights into the accumulator.
//
// Counting rule: for each live rule with frequency f, the rule body is
// expanded one level (nonterminals replaced by their full terminal
// expansions) and every window of three terminals that is NOT fully inside
// a single nonterminal's expansion counts f. Windows fully inside a
// nonterminal are counted when that rule is processed with its own
// frequency, so each input occurrence is attributed exactly once and the
// totals equal a naive sliding-window count over the input.
func (c *TriCounter) Observe(seq []int64) {
	if len(seq) < 3 {
		return
	}
	g := NewGrammar()
	for _, v := range seq {
		g.Append(v)
	}
	freq := RuleFreq(g)
	// Memoised full terminal expansions, indexed by rule number.
	expansions := make([][]int64, g.NumAssigned())
	expand := func(num int32) []int64 {
		if e := expansions[num]; e != nil {
			return e
		}
		e := ExpandRule(g, int(num), triExpandCap)
		if e == nil {
			e = ExpandRulePrefix(g, int(num), triExpandCap)
		}
		expansions[num] = e
		return e
	}
	// Scratch: the body-level expansion and, per position, the body symbol
	// ordinal it came from (to detect windows inside one nonterminal).
	var flat []int64
	var owner []int32
	for num := range g.rules {
		if !g.rules[num].live {
			continue
		}
		f := freq[num]
		if f == 0 {
			continue
		}
		flat, owner = flat[:0], owner[:0]
		sym := int32(0)
		for s := g.firstOf(int32(num)); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 {
				for _, t := range expand(ruleOf(v)) {
					flat = append(flat, t)
					owner = append(owner, sym)
				}
			} else {
				flat = append(flat, v)
				owner = append(owner, sym)
			}
			sym++
		}
		for i := 0; i+2 < len(flat); i++ {
			// A window with all three positions from one body symbol can only
			// come from a nonterminal's expansion (terminals contribute one
			// position each); that is the referenced rule's interior and is
			// counted under the rule itself.
			if owner[i] == owner[i+2] {
				continue
			}
			c.counts[[3]int64{flat[i], flat[i+1], flat[i+2]}] += f
		}
	}
}

// Hot returns the accumulated trigrams with Count >= min, hottest first
// (ties broken by triple value for determinism).
func (c *TriCounter) Hot(min int) []Trigram {
	out := make([]Trigram, 0, len(c.counts))
	for k, n := range c.counts {
		if n >= min {
			out = append(out, Trigram{A: k[0], B: k[1], C: k[2], Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].C < out[j].C
	})
	return out
}

// HotTrigrams is the single-input convenience: grammar over seq, trigrams
// with Count >= min, hottest first.
func HotTrigrams(seq []int64, min int) []Trigram {
	c := NewTriCounter()
	c.Observe(seq)
	return c.Hot(min)
}
