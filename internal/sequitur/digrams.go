package sequitur

import "sort"

// This file applies the grammar to *static instruction streams*. The VM's
// predecoder (internal/vm) feeds each function's opcode sequence through
// the same machinery that compresses data reference traces; rules surface
// exactly the digrams that repeat, and RuleFreq weights them by how often
// their enclosing rule recurs. The hot digrams gate superinstruction
// fusion: only opcode pairs that the grammar proves repeated are worth a
// fused handler.

// Digram is one adjacent symbol pair with its occurrence weight.
type Digram struct {
	A, B int64
	// Count is a lower bound on the pair's occurrences in the input: the
	// sum of enclosing-rule frequencies over every place the pair appears
	// adjacently inside a rule body. SEQUITUR's digram-uniqueness invariant
	// guarantees every repeated pair is captured by some rule, so any pair
	// occurring >= 2 times reports Count >= 2.
	Count int
}

// DigramCounter accumulates hot-digram counts across several inputs (the
// predecoder runs one grammar per function so pairs never straddle a
// function boundary, then merges the counts program-wide).
type DigramCounter struct {
	counts map[[2]int64]int
}

// NewDigramCounter returns an empty accumulator.
func NewDigramCounter() *DigramCounter {
	return &DigramCounter{counts: make(map[[2]int64]int)}
}

// Observe builds the grammar over one input sequence and folds its digram
// weights into the accumulator. Values must be non-negative (the grammar's
// terminal space).
func (c *DigramCounter) Observe(seq []int64) {
	if len(seq) < 2 {
		return
	}
	g := NewGrammar()
	for _, v := range seq {
		g.Append(v)
	}
	freq := RuleFreq(g)
	for num := range g.rules {
		if !g.rules[num].live {
			continue
		}
		f := freq[num]
		if f == 0 {
			continue
		}
		// Walk the rule body; every adjacent terminal-terminal pair inside
		// a rule occurring f times occurs (at least) f times in the input.
		prev := int64(-1)
		hasPrev := false
		for s := g.firstOf(int32(num)); !g.syms[s].guard; s = g.syms[s].next {
			v := g.syms[s].value
			if v < 0 { // nonterminal: breaks terminal adjacency at this level
				hasPrev = false
				continue
			}
			if hasPrev {
				c.counts[[2]int64{prev, v}] += f
			}
			prev, hasPrev = v, true
		}
	}
}

// Hot returns the accumulated digrams with Count >= min, hottest first
// (ties broken by pair value for determinism).
func (c *DigramCounter) Hot(min int) []Digram {
	out := make([]Digram, 0, len(c.counts))
	for k, n := range c.counts {
		if n >= min {
			out = append(out, Digram{A: k[0], B: k[1], Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// HotDigrams is the single-input convenience: grammar over seq, digrams
// with Count >= min, hottest first.
func HotDigrams(seq []int64, min int) []Digram {
	c := NewDigramCounter()
	c.Observe(seq)
	return c.Hot(min)
}
