// Package sequitur implements SEQUITUR (Nevill-Manning & Witten, 1997):
// linear-time, incremental inference of a context-free grammar whose
// language is exactly the input string. It is a leaf package shared by two
// very different consumers: internal/hds compresses object-level data
// reference traces with it to extract hot data streams (the paper's
// PLDI '06 comparison technique), and internal/vm runs it over static
// instruction streams at predecode time to find the hot opcode digrams
// worth fusing into superinstructions.
package sequitur

// This file implements the grammar: linear
// time, incremental inference of a context-free grammar whose language is
// exactly the input string, maintaining the digram-uniqueness and
// rule-utility invariants.
//
// The grammar is laid out for the trace-compression fast path. Symbols live
// in one dense slab addressed by int32 index (with a free list threaded
// through retired nodes), rules in a slice indexed by rule number (numbers
// are assigned densely and deleted numbers never reused), and the digram
// index is a flat open-addressing hash table from symbol-key pairs to slab
// indices. Nothing in the structure holds a Go pointer, so a terminal
// append performs no map operations, no allocation in the steady state, and
// generates no GC write-barrier or scan work.

// symNil and symTomb are digram-table slot sentinels; slab index 0 is
// reserved so 0 can mean "empty".
const (
	symNil  int32 = 0
	symTomb int32 = -1
)

// symbol is a node in a rule body's doubly linked list, addressed by its
// slab index. A symbol is a terminal (value >= 0), a nonterminal reference
// (value < 0, encoding rule -value-1), or a rule's guard sentinel (guard
// true, value encoding the owning rule the same way).
type symbol struct {
	next, prev int32
	value      int64 // the digram key: terminal value, or -ruleNumber-1
	guard      bool
}

// ruleData is a grammar production's slab-side state.
type ruleData struct {
	guard int32 // slab index of the guard sentinel
	count int32 // references from other rules
	live  bool
}

// Grammar is a SEQUITUR grammar under construction.
type Grammar struct {
	syms    []symbol
	free    int32 // free-list head (threaded through next), symNil when empty
	rules   []ruleData
	nlive   int
	length  int // terminals consumed
	digrams digramTable
}

// Rule is a handle on a grammar production.
type Rule struct {
	g      *Grammar
	Number int // stable id; 0 is the start rule
}

// NewGrammar returns an empty grammar.
func NewGrammar() *Grammar {
	g := &Grammar{syms: make([]symbol, 1, 1024), free: symNil}
	g.newRule()
	return g
}

// ntKey encodes a rule number as a digram key (negated, offset, so the
// terminal and nonterminal spaces cannot collide).
func ntKey(rule int32) int64 { return -int64(rule) - 1 }

// ruleOf inverts ntKey.
func ruleOf(key int64) int32 { return int32(-key - 1) }

// newSymbol hands out a slab node with the given key.
//
//halo:hot
func (g *Grammar) newSymbol(value int64, guard bool) int32 {
	i := g.free
	if i != symNil {
		g.free = g.syms[i].next
	} else {
		g.syms = append(g.syms, symbol{})
		i = int32(len(g.syms) - 1)
	}
	g.syms[i] = symbol{value: value, guard: guard}
	return i
}

// freeSymbol recycles a node the algorithm has permanently unlinked.
//
//halo:hot
func (g *Grammar) freeSymbol(i int32) {
	g.syms[i].next = g.free
	g.syms[i].prev = symNil
	g.free = i
}

func (g *Grammar) newRule() int32 {
	num := int32(len(g.rules))
	guard := g.newSymbol(ntKey(num), true)
	g.syms[guard].next, g.syms[guard].prev = guard, guard
	g.rules = append(g.rules, ruleData{guard: guard, live: true})
	g.nlive++
	return num
}

// deleteRule removes a rule inlined by the utility invariant. Its number is
// retired, never reused.
func (g *Grammar) deleteRule(num int32) {
	g.freeSymbol(g.rules[num].guard)
	g.rules[num].live = false
	g.nlive--
}

func (g *Grammar) firstOf(num int32) int32 { return g.syms[g.rules[num].guard].next }
func (g *Grammar) lastOf(num int32) int32  { return g.syms[g.rules[num].guard].prev }

func (g *Grammar) isNT(i int32) bool { return g.syms[i].value < 0 && !g.syms[i].guard }

// join links left and right, clearing any digram that started at left.
func (g *Grammar) join(left, right int32) {
	if g.syms[left].next != symNil {
		g.deleteDigram(left)
	}
	g.syms[left].next = right
	g.syms[right].prev = left
}

// insertAfter inserts y after s.
//
//halo:hot
func (g *Grammar) insertAfter(s, y int32) {
	g.join(y, g.syms[s].next)
	g.join(s, y)
}

// deleteDigram removes the digram table entry starting at s, if it is the
// registered occurrence.
func (g *Grammar) deleteDigram(s int32) {
	n := g.syms[s].next
	if g.syms[s].guard || n == symNil || g.syms[n].guard {
		return
	}
	g.digrams.deleteIf(g.syms[s].value, g.syms[n].value, s)
}

// unlink removes s from its list, updating digrams and rule usage.
func (g *Grammar) unlink(s int32) {
	g.join(g.syms[s].prev, g.syms[s].next)
	if !g.syms[s].guard {
		g.deleteDigram(s)
		if g.isNT(s) {
			g.rules[ruleOf(g.syms[s].value)].count--
		}
	}
}

// check enforces digram uniqueness for the digram starting at s. Returns
// true if a substitution happened.
//
//halo:hot
func (g *Grammar) check(s int32) bool {
	n := g.syms[s].next
	if g.syms[s].guard || g.syms[n].guard {
		return false
	}
	found, existed := g.digrams.getOrInsert(g.syms[s].value, g.syms[n].value, s)
	if !existed {
		return false
	}
	if g.syms[found].next != s {
		g.match(s, found)
	}
	return true
}

// match resolves a repeated digram: reuse the rule if the other occurrence
// is a complete rule body, otherwise create a new rule for the digram.
func (g *Grammar) match(s, found int32) {
	var r int32
	fPrev, fNextNext := g.syms[found].prev, g.syms[g.syms[found].next].next
	if g.syms[fPrev].guard && g.syms[fNextNext].guard {
		r = ruleOf(g.syms[fPrev].value)
		g.substitute(s, r)
	} else {
		r = g.newRule()
		g.insertAfter(g.lastOf(r), g.copySymbol(s))
		g.insertAfter(g.lastOf(r), g.copySymbol(g.syms[s].next))
		f := g.firstOf(r)
		g.digrams.put(g.syms[f].value, g.syms[g.syms[f].next].value, f)
		g.substitute(found, r)
		g.substitute(s, r)
	}
	// Rule utility: a rule referenced once is inlined at its last use.
	if f := g.firstOf(r); g.isNT(f) && g.rules[ruleOf(g.syms[f].value)].count == 1 {
		g.expand(f)
	}
}

// copySymbol clones a symbol's value into a fresh node.
func (g *Grammar) copySymbol(s int32) int32 {
	v := g.syms[s].value
	if v < 0 {
		g.rules[ruleOf(v)].count++
	}
	return g.newSymbol(v, false)
}

// substitute replaces s and its successor with a reference to rule r.
func (g *Grammar) substitute(s, r int32) {
	q := g.syms[s].prev
	dead := g.syms[s].next
	g.unlink(dead)
	g.unlink(s)
	g.freeSymbol(dead)
	g.freeSymbol(s)
	g.rules[r].count++
	g.insertAfter(q, g.newSymbol(ntKey(r), false))
	if !g.check(q) {
		g.check(g.syms[q].next)
	}
}

// expand inlines the rule of a once-referenced nonterminal occurrence.
func (g *Grammar) expand(s int32) {
	left, right := g.syms[s].prev, g.syms[s].next
	num := ruleOf(g.syms[s].value)
	f, l := g.firstOf(num), g.lastOf(num)
	g.deleteDigram(s)
	g.deleteRule(num)
	g.join(left, f)
	g.join(l, right)
	if !g.syms[l].guard && !g.syms[right].guard {
		g.digrams.put(g.syms[l].value, g.syms[g.syms[l].next].value, l)
	}
	g.freeSymbol(s)
}

// Append feeds the next terminal of the input sequence.
//
//halo:hot
func (g *Grammar) Append(value int64) {
	if value < 0 {
		panic("sequitur: terminals must be non-negative") //halo:errfmt-ok negative terminals violate the documented Append contract
	}
	g.length++
	t := g.newSymbol(value, false)
	g.insertAfter(g.lastOf(0), t)
	if p := g.syms[g.lastOf(0)].prev; !g.syms[p].guard {
		g.check(p)
	}
}

// Length reports the number of terminals consumed.
func (g *Grammar) Length() int { return g.length }

// NumRules reports the live rule count (including the start rule).
func (g *Grammar) NumRules() int { return g.nlive }

// NumAssigned reports how many rule numbers have ever been handed out;
// slices indexed by rule number size themselves with it (deleted numbers
// are never reused).
func (g *Grammar) NumAssigned() int { return len(g.rules) }

// Live reports whether the rule number is still a live production.
func (g *Grammar) Live(num int) bool { return num < len(g.rules) && g.rules[num].live }

// RuleOf decodes a nonterminal reference as it appears in a rule body
// (a negative value) back to its rule number.
func RuleOf(ref int64) int { return int(-ref - 1) }

// Body returns a rule's symbol sequence: terminal values (>= 0) and rule
// references encoded as -Number-1.
func (r *Rule) Body() []int64 {
	g := r.g
	var out []int64
	for s := g.firstOf(int32(r.Number)); !g.syms[s].guard; s = g.syms[s].next {
		out = append(out, g.syms[s].value)
	}
	return out
}

// Rules returns the live rules in ascending rule-number order; the first is
// always the start rule (number 0).
func (g *Grammar) Rules() []*Rule {
	out := make([]*Rule, 0, g.nlive)
	for num := range g.rules {
		if g.rules[num].live {
			out = append(out, &Rule{g: g, Number: num})
		}
	}
	return out
}

// Start returns the start rule.
func (g *Grammar) Start() *Rule { return &Rule{g: g, Number: 0} }

// Expand reconstructs the full input sequence (for validation).
func (g *Grammar) Expand() []int64 {
	var out []int64
	var walk func(num int32)
	walk = func(num int32) {
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 {
				walk(ruleOf(v))
			} else {
				out = append(out, v)
			}
		}
	}
	walk(0)
	return out
}

// digramTable is a flat open-addressing hash table from digrams (the pair
// of adjacent symbol keys) to the slab index of their registered
// occurrence. Linear probing with tombstone deletion; growth rehashes the
// tombstones away. The table holds no Go pointers.
type digramTable struct {
	k0, k1 []int64
	occ    []int32 // symNil = empty, symTomb = deleted
	n      int     // live entries
	used   int     // live + tombstones (probe-chain occupancy)
}

const digramTableMinCap = 64

// digramMix finalises the digram into a table hash (Murmur3 finaliser over
// the combined halves).
func digramMix(a, b int64) uint64 {
	k := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// findSlot probes for (a, b). On a key hit it returns the entry's slot and
// true; otherwise it returns the insertion slot — the first tombstone on
// the probe chain if one was passed, else the terminating empty slot — and
// false. Callers must have ensured spare capacity first.
func (t *digramTable) findSlot(a, b int64) (int, bool) {
	mask := uint64(len(t.occ) - 1)
	i := digramMix(a, b) & mask
	slot := -1
	for t.occ[i] != symNil {
		if t.occ[i] == symTomb {
			if slot < 0 {
				slot = int(i)
			}
		} else if t.k0[i] == a && t.k1[i] == b {
			return int(i), true
		}
		i = (i + 1) & mask
	}
	if slot < 0 {
		slot = int(i)
	}
	return slot, false
}

// insertAt fills an insertion slot returned by findSlot.
func (t *digramTable) insertAt(i int, a, b int64, s int32) {
	if t.occ[i] == symNil {
		t.used++ // a tombstone reuse keeps the probe-chain occupancy
	}
	t.k0[i], t.k1[i], t.occ[i] = a, b, s
	t.n++
}

// getOrInsert returns the registered occurrence of (a, b), or registers s
// and reports that no occurrence existed.
func (t *digramTable) getOrInsert(a, b int64, s int32) (int32, bool) {
	if t.used*4 >= len(t.occ)*3 {
		t.grow()
	}
	i, hit := t.findSlot(a, b)
	if hit {
		return t.occ[i], true
	}
	t.insertAt(i, a, b, s)
	return symNil, false
}

// put registers s as the occurrence of (a, b), replacing any existing one.
func (t *digramTable) put(a, b int64, s int32) {
	if t.used*4 >= len(t.occ)*3 {
		t.grow()
	}
	i, hit := t.findSlot(a, b)
	if hit {
		t.occ[i] = s
		return
	}
	t.insertAt(i, a, b, s)
}

// deleteIf removes the entry for (a, b) when s is the registered occurrence.
func (t *digramTable) deleteIf(a, b int64, s int32) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.occ) - 1)
	i := digramMix(a, b) & mask
	for t.occ[i] != symNil {
		if t.occ[i] != symTomb && t.k0[i] == a && t.k1[i] == b {
			if t.occ[i] == s {
				t.occ[i] = symTomb
				t.n--
			}
			return
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table (or compacts it in place when tombstones dominate)
// and rehashes every live entry.
func (t *digramTable) grow() {
	newCap := len(t.occ) * 2
	// If the table is mostly tombstones, rehashing at the same capacity
	// restores the load factor without doubling memory.
	if t.n*2 < len(t.occ) && newCap > digramTableMinCap {
		newCap = len(t.occ)
	}
	if newCap < digramTableMinCap {
		newCap = digramTableMinCap
	}
	k0 := make([]int64, newCap)
	k1 := make([]int64, newCap)
	occ := make([]int32, newCap)
	mask := uint64(newCap - 1)
	for i, s := range t.occ {
		if s == symNil || s == symTomb {
			continue
		}
		j := digramMix(t.k0[i], t.k1[i]) & mask
		for occ[j] != symNil {
			j = (j + 1) & mask
		}
		k0[j], k1[j], occ[j] = t.k0[i], t.k1[i], s
	}
	t.k0, t.k1, t.occ = k0, k1, occ
	t.used = t.n
}
