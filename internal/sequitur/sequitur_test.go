package sequitur

import (
	"testing"
	"testing/quick"
)

func buildGrammar(seq []int64) *Grammar {
	g := NewGrammar()
	for _, v := range seq {
		g.Append(v)
	}
	return g
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequiturExpandReproducesInput(t *testing.T) {
	cases := [][]int64{
		{},
		{1},
		{1, 2},
		{1, 1, 1, 1},
		{1, 2, 1, 2},
		{1, 2, 1, 2, 1, 2},
		{1, 2, 3, 1, 2, 3, 1, 2, 3},
		{1, 2, 1, 2, 3, 1, 2, 1, 2, 3},  // nested rules
		{5, 5, 5, 5, 5, 5, 5, 5},        // runs
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, // no repetition
		{1, 2, 2, 1, 2, 2, 3, 1, 2, 2, 1, 2, 2, 3}, // deep nesting
	}
	for _, seq := range cases {
		g := buildGrammar(seq)
		if got := g.Expand(); !eq(got, seq) {
			t.Errorf("expand(%v) = %v", seq, got)
		}
		if g.Length() != len(seq) {
			t.Errorf("length = %d, want %d", g.Length(), len(seq))
		}
	}
}

func TestSequiturCompresses(t *testing.T) {
	// abcabcabcabc: the grammar must introduce rules, making the start
	// rule shorter than the input.
	var seq []int64
	for i := 0; i < 16; i++ {
		seq = append(seq, 1, 2, 3)
	}
	g := buildGrammar(seq)
	if got := g.Expand(); !eq(got, seq) {
		t.Fatalf("expand mismatch")
	}
	if body := g.Start().Body(); len(body) >= len(seq)/2 {
		t.Fatalf("no compression: start rule has %d symbols for %d input", len(body), len(seq))
	}
	if g.NumRules() < 2 {
		t.Fatalf("no rules formed")
	}
}

func TestSequiturDigramUniqueness(t *testing.T) {
	// After construction, no digram may appear twice across rule bodies
	// (the core SEQUITUR invariant).
	seqs := [][]int64{
		{1, 2, 1, 2, 3, 1, 2, 1, 2, 3},
		{1, 1, 2, 2, 1, 1, 2, 2},
		{4, 4, 4, 4, 4, 4, 4},
	}
	for _, seq := range seqs {
		g := buildGrammar(seq)
		seen := make(map[[2]int64]int)
		for _, r := range g.Rules() {
			body := r.Body()
			for i := 0; i+1 < len(body); i++ {
				seen[[2]int64{body[i], body[i+1]}]++
			}
		}
		for d, n := range seen {
			if n > 1 {
				// Overlapping digrams of a run (e.g. "aaa") are the one
				// legal exception in SEQUITUR implementations.
				if d[0] == d[1] {
					continue
				}
				t.Errorf("seq %v: digram %v appears %d times", seq, d, n)
			}
		}
	}
}

func TestSequiturRuleUtility(t *testing.T) {
	// Every non-start rule must be referenced at least twice.
	seq := []int64{1, 2, 1, 2, 3, 1, 2, 1, 2, 3, 4, 1, 2}
	g := buildGrammar(seq)
	refs := make(map[int]int)
	for _, r := range g.Rules() {
		for _, v := range r.Body() {
			if v < 0 {
				refs[int(-v-1)]++
			}
		}
	}
	for _, r := range g.Rules() {
		if r.Number == 0 {
			continue
		}
		if refs[r.Number] < 2 {
			t.Errorf("rule %d referenced %d times", r.Number, refs[r.Number])
		}
	}
}

func TestSequiturRandomisedRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v % 5) // small alphabet maximises rule churn
		}
		g := buildGrammar(seq)
		return eq(g.Expand(), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleFreqAndLens(t *testing.T) {
	// 1 2 1 2 1 2 1 2 -> rule r=[1 2] occurring 4 times.
	seq := []int64{1, 2, 1, 2, 1, 2, 1, 2}
	g := buildGrammar(seq)
	freq := RuleFreq(g)
	lens := RuleLens(g)
	// Find a rule with expansion [1 2] and check freq*len sums to the
	// whole trace.
	total := 0
	for _, r := range g.Rules() {
		if r.Number == 0 {
			continue
		}
		total += freq[r.Number] * lens[r.Number]
	}
	// All terminals are covered by rules in this fully regular input.
	if total < len(seq) {
		t.Fatalf("rules cover %d of %d terminals", total, len(seq))
	}
	if freq[0] != 1 {
		t.Fatalf("start rule freq = %d", freq[0])
	}
}

// naiveTrigrams slides a window of three over the input — the ground truth
// the grammar-driven attribution must reproduce.
func naiveTrigrams(seq []int64) map[[3]int64]int {
	out := make(map[[3]int64]int)
	for i := 0; i+2 < len(seq); i++ {
		out[[3]int64{seq[i], seq[i+1], seq[i+2]}]++
	}
	return out
}

func TestTriCounterMatchesNaiveWindow(t *testing.T) {
	cases := [][]int64{
		{1, 2, 3},
		{1, 2, 3, 1, 2, 3, 1, 2, 3},
		{1, 2, 1, 2, 3, 1, 2, 1, 2, 3},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{1, 2, 2, 1, 2, 2, 3, 1, 2, 2, 1, 2, 2, 3},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	for _, seq := range cases {
		c := NewTriCounter()
		c.Observe(seq)
		want := naiveTrigrams(seq)
		got := make(map[[3]int64]int)
		for _, tg := range c.Hot(1) {
			got[[3]int64{tg.A, tg.B, tg.C}] = tg.Count
		}
		if len(got) != len(want) {
			t.Errorf("seq %v: %d trigrams, want %d", seq, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("seq %v: trigram %v count %d, want %d", seq, k, got[k], n)
			}
		}
	}
}

func TestTriCounterRandomisedExact(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v % 4) // small alphabet maximises rule nesting
		}
		c := NewTriCounter()
		c.Observe(seq)
		want := naiveTrigrams(seq)
		got := make(map[[3]int64]int)
		for _, tg := range c.Hot(1) {
			got[[3]int64{tg.A, tg.B, tg.C}] = tg.Count
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTriCounterAccumulatesAndSorts(t *testing.T) {
	c := NewTriCounter()
	c.Observe([]int64{1, 2, 3, 1, 2, 3, 1, 2, 3})
	c.Observe([]int64{7, 8, 9, 7, 8, 9})
	hot := c.Hot(2)
	if len(hot) == 0 {
		t.Fatal("no hot trigrams")
	}
	if hot[0].A != 1 || hot[0].B != 2 || hot[0].C != 3 || hot[0].Count != 3 {
		t.Fatalf("hottest = %+v, want {1 2 3 3}", hot[0])
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Count > hot[i-1].Count {
			t.Fatalf("unsorted: %+v after %+v", hot[i], hot[i-1])
		}
	}
	// Triples seen only once stay below min=2.
	for _, tg := range hot {
		if tg.Count < 2 {
			t.Fatalf("cold trigram surfaced: %+v", tg)
		}
	}
}

func BenchmarkSequitur(b *testing.B) {
	var seq []int64
	for i := 0; i < 10000; i++ {
		seq = append(seq, int64(i%17), int64(i%5), int64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildGrammar(seq)
	}
}
