package sequitur

import (
	"testing"
	"testing/quick"
)

func buildGrammar(seq []int64) *Grammar {
	g := NewGrammar()
	for _, v := range seq {
		g.Append(v)
	}
	return g
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequiturExpandReproducesInput(t *testing.T) {
	cases := [][]int64{
		{},
		{1},
		{1, 2},
		{1, 1, 1, 1},
		{1, 2, 1, 2},
		{1, 2, 1, 2, 1, 2},
		{1, 2, 3, 1, 2, 3, 1, 2, 3},
		{1, 2, 1, 2, 3, 1, 2, 1, 2, 3},  // nested rules
		{5, 5, 5, 5, 5, 5, 5, 5},        // runs
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, // no repetition
		{1, 2, 2, 1, 2, 2, 3, 1, 2, 2, 1, 2, 2, 3}, // deep nesting
	}
	for _, seq := range cases {
		g := buildGrammar(seq)
		if got := g.Expand(); !eq(got, seq) {
			t.Errorf("expand(%v) = %v", seq, got)
		}
		if g.Length() != len(seq) {
			t.Errorf("length = %d, want %d", g.Length(), len(seq))
		}
	}
}

func TestSequiturCompresses(t *testing.T) {
	// abcabcabcabc: the grammar must introduce rules, making the start
	// rule shorter than the input.
	var seq []int64
	for i := 0; i < 16; i++ {
		seq = append(seq, 1, 2, 3)
	}
	g := buildGrammar(seq)
	if got := g.Expand(); !eq(got, seq) {
		t.Fatalf("expand mismatch")
	}
	if body := g.Start().Body(); len(body) >= len(seq)/2 {
		t.Fatalf("no compression: start rule has %d symbols for %d input", len(body), len(seq))
	}
	if g.NumRules() < 2 {
		t.Fatalf("no rules formed")
	}
}

func TestSequiturDigramUniqueness(t *testing.T) {
	// After construction, no digram may appear twice across rule bodies
	// (the core SEQUITUR invariant).
	seqs := [][]int64{
		{1, 2, 1, 2, 3, 1, 2, 1, 2, 3},
		{1, 1, 2, 2, 1, 1, 2, 2},
		{4, 4, 4, 4, 4, 4, 4},
	}
	for _, seq := range seqs {
		g := buildGrammar(seq)
		seen := make(map[[2]int64]int)
		for _, r := range g.Rules() {
			body := r.Body()
			for i := 0; i+1 < len(body); i++ {
				seen[[2]int64{body[i], body[i+1]}]++
			}
		}
		for d, n := range seen {
			if n > 1 {
				// Overlapping digrams of a run (e.g. "aaa") are the one
				// legal exception in SEQUITUR implementations.
				if d[0] == d[1] {
					continue
				}
				t.Errorf("seq %v: digram %v appears %d times", seq, d, n)
			}
		}
	}
}

func TestSequiturRuleUtility(t *testing.T) {
	// Every non-start rule must be referenced at least twice.
	seq := []int64{1, 2, 1, 2, 3, 1, 2, 1, 2, 3, 4, 1, 2}
	g := buildGrammar(seq)
	refs := make(map[int]int)
	for _, r := range g.Rules() {
		for _, v := range r.Body() {
			if v < 0 {
				refs[int(-v-1)]++
			}
		}
	}
	for _, r := range g.Rules() {
		if r.Number == 0 {
			continue
		}
		if refs[r.Number] < 2 {
			t.Errorf("rule %d referenced %d times", r.Number, refs[r.Number])
		}
	}
}

func TestSequiturRandomisedRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v % 5) // small alphabet maximises rule churn
		}
		g := buildGrammar(seq)
		return eq(g.Expand(), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleFreqAndLens(t *testing.T) {
	// 1 2 1 2 1 2 1 2 -> rule r=[1 2] occurring 4 times.
	seq := []int64{1, 2, 1, 2, 1, 2, 1, 2}
	g := buildGrammar(seq)
	freq := RuleFreq(g)
	lens := RuleLens(g)
	// Find a rule with expansion [1 2] and check freq*len sums to the
	// whole trace.
	total := 0
	for _, r := range g.Rules() {
		if r.Number == 0 {
			continue
		}
		total += freq[r.Number] * lens[r.Number]
	}
	// All terminals are covered by rules in this fully regular input.
	if total < len(seq) {
		t.Fatalf("rules cover %d of %d terminals", total, len(seq))
	}
	if freq[0] != 1 {
		t.Fatalf("start rule freq = %d", freq[0])
	}
}

func BenchmarkSequitur(b *testing.B) {
	var seq []int64
	for i := 0; i < 10000; i++ {
		seq = append(seq, int64(i%17), int64(i%5), int64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildGrammar(seq)
	}
}
