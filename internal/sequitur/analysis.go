package sequitur

// Whole-grammar analyses shared by the consumers: rule occurrence
// frequencies and expansion lengths (internal/hds stream extraction and
// internal/vm digram heat both weight rules by how often they recur), and
// capped rule expansion (stream materialisation).

// RuleFreq computes how many times each rule's expansion occurs in the full
// input: the start rule occurs once, and every reference inside a rule
// occurring f times contributes f to the referenced rule. Rule numbers are
// assigned densely (deleted numbers are simply never revisited), so the
// counts live in slices indexed by rule number rather than maps.
func RuleFreq(g *Grammar) []int {
	// Topological order: parents before children.
	order := make([]int32, 0, g.NumRules())
	state := make([]uint8, g.NumAssigned()) // 0 unvisited, 1 visiting, 2 done
	var dfs func(num int32)
	dfs = func(num int32) {
		state[num] = 1
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 && state[ruleOf(v)] == 0 {
				dfs(ruleOf(v))
			}
		}
		state[num] = 2
		order = append(order, num) // post-order: children first
	}
	dfs(0)
	freq := make([]int, g.NumAssigned())
	freq[0] = 1
	// Walk parents before children: reverse post-order.
	for i := len(order) - 1; i >= 0; i-- {
		num := order[i]
		f := freq[num]
		if f == 0 {
			continue
		}
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 {
				freq[ruleOf(v)] += f
			}
		}
	}
	return freq
}

// RuleLens computes each rule's terminal expansion length, indexed by rule
// number (-1 marks numbers of deleted rules, never queried).
func RuleLens(g *Grammar) []int {
	lens := make([]int, g.NumAssigned())
	for i := range lens {
		lens[i] = -1
	}
	var calc func(num int32) int
	calc = func(num int32) int {
		if l := lens[num]; l >= 0 {
			return l
		}
		lens[num] = 0 // cycle guard; grammars are acyclic
		total := 0
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if v := g.syms[s].value; v < 0 {
				total += calc(ruleOf(v))
			} else {
				total++
			}
		}
		lens[num] = total
		return total
	}
	for num := range g.rules {
		if g.rules[num].live {
			calc(int32(num))
		}
	}
	return lens
}

// ExpandRulePrefix materialises the first max terminals of a rule.
func ExpandRulePrefix(g *Grammar, num int, max int) []int64 {
	out := make([]int64, 0, max)
	var walk func(num int32) bool
	walk = func(num int32) bool {
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			if len(out) >= max {
				return false
			}
			if v := g.syms[s].value; v < 0 {
				if !walk(ruleOf(v)) {
					return false
				}
			} else {
				out = append(out, v)
			}
		}
		return true
	}
	walk(int32(num))
	return out
}

// ExpandRule materialises a rule's terminal expansion up to max terminals,
// returning nil if it would exceed the cap.
func ExpandRule(g *Grammar, num int, max int) []int64 {
	out := make([]int64, 0, max)
	var walk func(num int32) bool
	walk = func(num int32) bool {
		for s := g.firstOf(num); !g.syms[s].guard; s = g.syms[s].next {
			v := g.syms[s].value
			if v < 0 {
				if !walk(ruleOf(v)) {
					return false
				}
				continue
			}
			if len(out) >= max {
				return false
			}
			out = append(out, v)
		}
		return true
	}
	if !walk(int32(num)) {
		return nil
	}
	return out
}
