package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary image format. A program is serialised as:
//
//	magic   "HBIN"
//	version uvarint
//	name    string (uvarint length + bytes)
//	entry   uvarint
//	globals uvarint
//	nsynth  uvarint (next synthetic address)
//	nfuncs  uvarint
//	funcs   ...
//
// and each function as:
//
//	name    string
//	flags   uvarint (bit 0: Lib)
//	nparams uvarint
//	nregs   uvarint
//	ninsts  uvarint
//	insts   op, a, b, c, d, size bytes; fn varint; imm varint; addr uvarint
//
// The format exists so the post-link story is genuine: the rewriter and the
// halo CLI exchange program *images*, not in-memory structures, just as
// BOLT consumes and emits ELF files.

const (
	magic   = "HBIN"
	version = 1
)

// Encode serialises the program to its binary image. The program must
// validate; Encode refuses to emit a malformed binary.
func (p *Program) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: encode: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeUvarint(&buf, version)
	writeString(&buf, p.Name)
	writeUvarint(&buf, uint64(p.Entry))
	writeUvarint(&buf, uint64(p.Globals))
	writeUvarint(&buf, uint64(p.nextSynth))
	writeUvarint(&buf, uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		writeString(&buf, f.Name)
		var flags uint64
		if f.Lib {
			flags |= 1
		}
		writeUvarint(&buf, flags)
		writeUvarint(&buf, uint64(f.NParams))
		writeUvarint(&buf, uint64(f.NRegs))
		writeUvarint(&buf, uint64(len(f.Code)))
		for _, in := range f.Code {
			buf.Write([]byte{byte(in.Op), in.A, in.B, in.C, in.D, in.Size})
			writeVarint(&buf, int64(in.Fn))
			writeVarint(&buf, in.Imm)
			writeUvarint(&buf, uint64(in.Addr))
		}
	}
	return buf.Bytes(), nil
}

// Decode parses a binary image produced by Encode and validates it.
func Decode(image []byte) (*Program, error) {
	r := &reader{buf: image}
	if string(r.bytes(4)) != magic {
		return nil, fmt.Errorf("isa: bad magic")
	}
	if v := r.uvarint(); v != version {
		return nil, fmt.Errorf("isa: unsupported version %d", v)
	}
	p := &Program{}
	p.Name = r.string()
	p.Entry = int(r.uvarint())
	p.Globals = int(r.uvarint())
	p.nextSynth = Addr(r.uvarint())
	nf := r.uvarint()
	if nf > 1<<20 {
		return nil, fmt.Errorf("isa: implausible function count %d", nf)
	}
	p.Funcs = make([]*Func, 0, nf)
	for i := uint64(0); i < nf; i++ {
		f := &Func{}
		f.Name = r.string()
		flags := r.uvarint()
		f.Lib = flags&1 != 0
		f.NParams = int(r.uvarint())
		f.NRegs = int(r.uvarint())
		ni := r.uvarint()
		if ni > 1<<24 {
			return nil, fmt.Errorf("isa: implausible instruction count %d", ni)
		}
		f.Code = make([]Inst, ni)
		for j := range f.Code {
			raw := r.bytes(6)
			if r.err != nil {
				return nil, fmt.Errorf("isa: truncated image: %w", r.err)
			}
			f.Code[j] = Inst{
				Op: Opcode(raw[0]), A: raw[1], B: raw[2], C: raw[3], D: raw[4], Size: raw[5],
				Fn:   FnRef(r.varint()),
				Imm:  r.varint(),
				Addr: Addr(r.uvarint()),
			}
		}
		p.Funcs = append(p.Funcs, f)
	}
	if r.err != nil {
		return nil, fmt.Errorf("isa: truncated image: %w", r.err)
	}
	if r.pos != len(image) {
		return nil, fmt.Errorf("isa: %d trailing bytes", len(image)-r.pos)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: decode: %w", err)
	}
	return p, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return make([]byte, n)
	}
	if r.pos+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return make([]byte, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if n > uint64(len(r.buf)-r.pos) {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(r.bytes(int(n)))
}
