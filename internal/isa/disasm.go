package isa

import (
	"fmt"
	"strings"
)

// Disasm renders the program as readable assembly, one function per block.
// It is the debugging companion to the binary encoder and is used by the
// halo CLI's `disasm` subcommand to inspect rewritten binaries.
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %q  entry=%s  globals=%d\n", p.Name, p.Funcs[p.Entry].Name, p.Globals)
	for fi, f := range p.Funcs {
		lib := ""
		if f.Lib {
			lib = " [lib]"
		}
		fmt.Fprintf(&b, "\nfunc %s(%d)%s  ; #%d, %d regs\n", f.Name, f.NParams, lib, fi, f.NRegs)
		for pc, in := range f.Code {
			fmt.Fprintf(&b, "  %4d: %s\n", pc, p.DisasmInst(in))
		}
	}
	return b.String()
}

// DisasmInst renders one instruction. Exported so internal/vm can reuse it
// to render the component instructions of predecoded/fused streams
// (`halo disasm -fused`).
func (p *Program) DisasmInst(in Inst) string {
	mark := ""
	if in.Addr == NoAddr {
		mark = " ; <synth>"
	}
	switch in.Op {
	case OpNop:
		return "nop" + mark
	case OpConst:
		return fmt.Sprintf("const r%d, %d%s", in.A, in.Imm, mark)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d%s", in.A, in.B, mark)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpNe, OpLt, OpLe:
		return fmt.Sprintf("%s r%d, r%d, r%d%s", in.Op, in.A, in.B, in.C, mark)
	case OpAddImm:
		return fmt.Sprintf("addi r%d, r%d, %d%s", in.A, in.B, in.Imm, mark)
	case OpJmp:
		return fmt.Sprintf("jmp %d%s", in.Imm, mark)
	case OpBz:
		return fmt.Sprintf("bz r%d, %d%s", in.A, in.Imm, mark)
	case OpBnz:
		return fmt.Sprintf("bnz r%d, %d%s", in.A, in.Imm, mark)
	case OpCall:
		target := ""
		if in.Fn.IsExtern() {
			target = in.Fn.ExternOf().String()
		} else if int(in.Fn) < len(p.Funcs) {
			target = p.Funcs[in.Fn].Name
		} else {
			target = fmt.Sprintf("fn#%d", in.Fn)
		}
		return fmt.Sprintf("call r%d, %s(r%d:%d)%s", in.A, target, in.B, in.C, mark)
	case OpCallInd:
		return fmt.Sprintf("icall r%d, [r%d](r%d:%d)%s", in.A, in.D, in.B, in.C, mark)
	case OpRet:
		return fmt.Sprintf("ret r%d%s", in.A, mark)
	case OpLoad:
		return fmt.Sprintf("load%d r%d, [r%d%+d]%s", in.Size, in.A, in.B, in.Imm, mark)
	case OpStore:
		return fmt.Sprintf("store%d [r%d%+d], r%d%s", in.Size, in.B, in.Imm, in.A, mark)
	case OpGroupSet:
		return fmt.Sprintf("gset %d%s", in.Imm, mark)
	case OpGroupClr:
		return fmt.Sprintf("gclr %d%s", in.Imm, mark)
	case OpHalt:
		return "halt" + mark
	}
	return fmt.Sprintf("%s ???%s", in.Op, mark)
}
