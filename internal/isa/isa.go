// Package isa defines the miniature instruction set, program representation,
// and binary encoding used as the "target binary" substrate of the HALO
// reproduction.
//
// The paper operates on linked x86-64 ELF executables: it profiles them
// under Pin, identifies allocation contexts by call-site *addresses*, and
// rewrites the binary with BOLT. To reproduce those code paths in Go we
// define a small register machine whose programs
//
//   - contain real call sites with stable addresses (assigned at link time),
//   - distinguish main-binary functions from library functions (the paper's
//     shadow stack only records frames in the main executable),
//   - reach the memory-management routines through external symbols, the
//     analogue of PLT calls to POSIX.1 malloc/free/calloc/realloc,
//   - perform byte-addressed loads and stores of 1/2/4/8 bytes, the events
//     the affinity queue observes, and
//   - can be encoded to and decoded from a flat binary image, which is what
//     the post-link rewriter (internal/rewrite) patches.
//
// Programs are authored through the builder in internal/prog and executed by
// internal/vm.
package isa

import (
	"fmt"
	"sync/atomic"
)

// Word is the machine's native integer: 64-bit signed.
type Word = int64

// Opcode enumerates the machine's instructions.
type Opcode uint8

// The instruction set. Register operands are named A, B, C, D below.
const (
	OpNop Opcode = iota

	// Data movement.
	OpConst // r[A] = Imm
	OpMov   // r[A] = r[B]

	// Integer arithmetic and logic. r[A] = r[B] op r[C].
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; divide by zero traps
	OpMod // signed; mod by zero traps
	OpAnd
	OpOr
	OpXor
	OpShl    // shift count taken mod 64
	OpShr    // logical shift right
	OpAddImm // r[A] = r[B] + Imm

	// Comparisons produce 0 or 1. r[A] = r[B] cmp r[C].
	OpEq
	OpNe
	OpLt // signed
	OpLe // signed

	// Control flow. Targets are instruction indices within the function.
	OpJmp // pc = Imm
	OpBz  // if r[A] == 0: pc = Imm
	OpBnz // if r[A] != 0: pc = Imm

	// Calls. Direct calls name a function index or an external symbol in
	// Fn; indirect calls read a function index from r[D]. Arguments are
	// r[B] .. r[B+C-1], copied to the callee's r0..r(C-1). The result is
	// written to r[A].
	OpCall
	OpCallInd
	OpRet // return r[A]

	// Memory. Address is r[B] + Imm; Size is 1, 2, 4 or 8 bytes.
	OpLoad  // r[A] = zero-extended load
	OpStore // store low Size bytes of r[A]

	// Group-state instrumentation, inserted by the post-link rewriter
	// (never authored directly). They set and clear bit Imm of the shared
	// group-state vector read by the specialised allocator.
	OpGroupSet
	OpGroupClr

	OpHalt // stop the machine

	opCount // sentinel
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddImm: "addi",
	OpEq:     "eq", OpNe: "ne", OpLt: "lt", OpLe: "le",
	OpJmp: "jmp", OpBz: "bz", OpBnz: "bnz",
	OpCall: "call", OpCallInd: "icall", OpRet: "ret",
	OpLoad: "load", OpStore: "store",
	OpGroupSet: "gset", OpGroupClr: "gclr",
	OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Opcode) Valid() bool { return o < opCount }

// Extern identifies an external symbol: the runtime routines reachable from
// programs, the analogue of PLT entries in a linked ELF binary.
type Extern int32

// The external symbol table. Malloc..Free are the POSIX.1 memory-management
// routines the paper's instrumentation tool intercepts.
const (
	ExtMalloc  Extern = iota // malloc(size) -> ptr
	ExtCalloc                // calloc(n, size) -> zeroed ptr
	ExtRealloc               // realloc(ptr, size) -> ptr
	ExtFree                  // free(ptr) -> 0
	ExtRand                  // rand(n) -> uniform [0, n); rand(0) -> raw 64-bit
	ExtPrint                 // print(x) -> x (debug sink)
	ExtExit                  // exit(code): halts the machine
	externCount
)

var externNames = [...]string{
	ExtMalloc: "malloc", ExtCalloc: "calloc", ExtRealloc: "realloc",
	ExtFree: "free", ExtRand: "rand", ExtPrint: "print", ExtExit: "exit",
}

// String returns the symbol name.
func (e Extern) String() string {
	if e >= 0 && int(e) < len(externNames) {
		return externNames[e]
	}
	return fmt.Sprintf("extern(%d)", int32(e))
}

// Valid reports whether the extern is defined.
func (e Extern) Valid() bool { return e >= 0 && e < externCount }

// FnRef encodes a direct-call target: values >= 0 are indices into
// Program.Funcs; values < 0 are externals, decoded with ExternOf.
type FnRef int32

// ExternRef returns the FnRef naming an external symbol.
func ExternRef(e Extern) FnRef { return FnRef(-int32(e) - 1) }

// IsExtern reports whether the reference names an external symbol.
func (f FnRef) IsExtern() bool { return f < 0 }

// ExternOf decodes an external reference.
func (f FnRef) ExternOf() Extern { return Extern(-int32(f) - 1) }

// Addr is a code address: the stable identity of an instruction, and in
// particular of a call site. Addresses are assigned when a program is
// linked (Program.Link). The rewriter preserves the addresses of original
// instructions when it inserts new ones, exactly as BOLT tracks original
// offsets, so profile data keyed by Addr stays valid across rewriting.
type Addr uint32

// NoAddr marks an instruction that has not been linked (or was synthesised
// by the rewriter, which allocates fresh addresses above any original one).
const NoAddr Addr = 0

// addrFuncShift positions the function index in the high bits of an Addr.
const addrFuncShift = 16

// MakeAddr builds the linked address of instruction pc in function fn.
// Instruction index 0 maps to offset 1 so that NoAddr never collides with a
// real address.
func MakeAddr(fn, pc int) Addr { return Addr(fn)<<addrFuncShift | Addr(pc+1) }

// FuncIndex extracts the function index from a linked address.
func (a Addr) FuncIndex() int { return int(a >> addrFuncShift) }

// PC extracts the original instruction index from a linked address.
func (a Addr) PC() int { return int(a&(1<<addrFuncShift-1)) - 1 }

// String formats an address as fn:pc.
func (a Addr) String() string {
	if a == NoAddr {
		return "<noaddr>"
	}
	return fmt.Sprintf("%d:%d", a.FuncIndex(), a.PC())
}

// Inst is a single machine instruction.
type Inst struct {
	Op   Opcode
	A    uint8 // destination / condition / value register
	B    uint8 // source register / base register / argument base
	C    uint8 // source register / argument count
	D    uint8 // indirect-call target register
	Size uint8 // access size for OpLoad/OpStore: 1, 2, 4 or 8
	Fn   FnRef // direct-call target
	Imm  int64 // immediate / branch target / memory offset / group bit
	Addr Addr  // linked address (stable across rewriting)
}

// IsCall reports whether the instruction transfers control to a function.
func (in Inst) IsCall() bool { return in.Op == OpCall || in.Op == OpCallInd }

// IsBranch reports whether Imm holds an intra-function instruction index.
func (in Inst) IsBranch() bool { return in.Op == OpJmp || in.Op == OpBz || in.Op == OpBnz }

// Func is a single function ("symbol") in the program.
type Func struct {
	Name    string
	Lib     bool // part of a "shared library", not the main binary (§4.1)
	NParams int  // number of parameters, received in r0..r(NParams-1)
	NRegs   int  // register-frame size; NParams <= NRegs <= MaxRegs
	Code    []Inst
}

// MaxRegs bounds a function's register frame.
const MaxRegs = 256

// Program is a complete linked executable.
type Program struct {
	Name    string
	Funcs   []*Func
	Entry   int // index of the entry function (must not be Lib)
	Globals int // number of 8-byte global word slots

	// nextSynth is the next synthetic address to hand out; maintained by
	// Link and used by the rewriter for inserted instructions.
	nextSynth Addr

	// decodeCache holds the VM's predecoded form of this program (an
	// opaque value owned by internal/vm), so fan-out trials over a shared
	// program pay one decode. Clone deliberately does not carry it over:
	// the rewriter patches clones in place before execution.
	decodeCache atomic.Value
}

// DecodeCache returns the cached predecoded form stored by SetDecodeCache,
// or nil. The value's type is owned by internal/vm; the program only
// provides per-instance storage with the right lifetime (the cache dies
// with the program, never outlives a rewrite).
func (p *Program) DecodeCache() any { return p.decodeCache.Load() }

// SetDecodeCache stores the predecoded form. Concurrent stores of the
// deterministic decode are benign: last writer wins and all values are
// identical.
func (p *Program) SetDecodeCache(d any) { p.decodeCache.Store(d) }

// GlobalsBase is the address of the global segment: global slot i lives at
// GlobalsBase + 8*i. It sits far below the heap (mem.HeapBase).
const GlobalsBase = 0x20_0000

// GlobalAddr returns the address of global word slot i.
func GlobalAddr(i int) uint64 { return GlobalsBase + 8*uint64(i) }

// Link assigns a stable address to every instruction. It must be called
// once after construction and before profiling, rewriting or execution.
func (p *Program) Link() {
	var max Addr
	for fi, f := range p.Funcs {
		for pc := range f.Code {
			a := MakeAddr(fi, pc)
			f.Code[pc].Addr = a
			if a > max {
				max = a
			}
		}
	}
	p.nextSynth = max + 1
}

// NextSyntheticAddr hands out a fresh address for an instruction inserted
// by the rewriter. Addresses never collide with linked ones.
func (p *Program) NextSyntheticAddr() Addr {
	if p.nextSynth == 0 {
		p.Link()
	}
	a := p.nextSynth
	p.nextSynth++
	return a
}

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FuncOf resolves the function containing a linked address, or nil for
// synthetic/unlinked addresses.
func (p *Program) FuncOf(a Addr) *Func {
	fi := a.FuncIndex()
	if a == NoAddr || fi >= len(p.Funcs) {
		return nil
	}
	return p.Funcs[fi]
}

// SiteName renders a call-site address using function names, for reports
// like the paper's Figure 9 group listings.
func (p *Program) SiteName(a Addr) string {
	f := p.FuncOf(a)
	if f == nil {
		return a.String()
	}
	return fmt.Sprintf("%s+%d", f.Name, a.PC())
}

// Clone returns a deep copy of the program. The rewriter clones before
// patching so the original binary is preserved, as a post-link tool must.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:      p.Name,
		Entry:     p.Entry,
		Globals:   p.Globals,
		Funcs:     make([]*Func, len(p.Funcs)),
		nextSynth: p.nextSynth,
	}
	for i, f := range p.Funcs {
		g := *f
		g.Code = append([]Inst(nil), f.Code...)
		q.Funcs[i] = &g
	}
	return q
}

// Validate checks structural well-formedness: register indices within the
// frame, branch targets in range, call targets resolvable, legal access
// sizes, and a non-library entry function. The VM assumes a validated
// program; the encoder refuses to emit an invalid one.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("isa: program %q has no functions", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("isa: entry index %d out of range", p.Entry)
	}
	if p.Funcs[p.Entry].Lib {
		return fmt.Errorf("isa: entry function %q is a library function", p.Funcs[p.Entry].Name)
	}
	if p.Globals < 0 {
		return fmt.Errorf("isa: negative global count")
	}
	for fi, f := range p.Funcs {
		if err := p.validateFunc(fi, f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateFunc(fi int, f *Func) error {
	fail := func(pc int, format string, args ...any) error {
		return fmt.Errorf("isa: %s[%d] @%d: %s", f.Name, fi, pc, fmt.Sprintf(format, args...))
	}
	if f.NRegs < f.NParams || f.NRegs > MaxRegs || f.NParams < 0 {
		return fmt.Errorf("isa: %s: bad frame: %d params, %d regs", f.Name, f.NParams, f.NRegs)
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("isa: %s: empty body", f.Name)
	}
	if len(f.Code) >= 1<<addrFuncShift-1 {
		return fmt.Errorf("isa: %s: too many instructions (%d)", f.Name, len(f.Code))
	}
	checkReg := func(pc int, r uint8, what string) error {
		if int(r) >= f.NRegs {
			return fail(pc, "%s register r%d out of frame (%d regs)", what, r, f.NRegs)
		}
		return nil
	}
	for pc, in := range f.Code {
		if !in.Op.Valid() {
			return fail(pc, "invalid opcode %d", uint8(in.Op))
		}
		switch in.Op {
		case OpNop, OpHalt, OpGroupSet, OpGroupClr:
			// No register operands.
		case OpConst:
			if err := checkReg(pc, in.A, "dst"); err != nil {
				return err
			}
		case OpMov:
			if err := checkReg(pc, in.A, "dst"); err != nil {
				return err
			}
			if err := checkReg(pc, in.B, "src"); err != nil {
				return err
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpNe, OpLt, OpLe:
			for _, r := range [...]struct {
				r uint8
				n string
			}{{in.A, "dst"}, {in.B, "lhs"}, {in.C, "rhs"}} {
				if err := checkReg(pc, r.r, r.n); err != nil {
					return err
				}
			}
		case OpAddImm:
			if err := checkReg(pc, in.A, "dst"); err != nil {
				return err
			}
			if err := checkReg(pc, in.B, "src"); err != nil {
				return err
			}
		case OpJmp, OpBz, OpBnz:
			if in.Op != OpJmp {
				if err := checkReg(pc, in.A, "cond"); err != nil {
					return err
				}
			}
			if in.Imm < 0 || in.Imm >= int64(len(f.Code)) {
				return fail(pc, "branch target %d out of range", in.Imm)
			}
		case OpCall, OpCallInd:
			if err := checkReg(pc, in.A, "dst"); err != nil {
				return err
			}
			if in.C > 0 {
				if err := checkReg(pc, in.B, "arg base"); err != nil {
					return err
				}
				if int(in.B)+int(in.C) > f.NRegs {
					return fail(pc, "argument window r%d..r%d out of frame", in.B, int(in.B)+int(in.C)-1)
				}
			}
			if in.Op == OpCall {
				if in.Fn.IsExtern() {
					if !in.Fn.ExternOf().Valid() {
						return fail(pc, "unknown external %d", int32(in.Fn))
					}
				} else if int(in.Fn) >= len(p.Funcs) {
					return fail(pc, "call target %d out of range", in.Fn)
				} else if callee := p.Funcs[in.Fn]; int(in.C) != callee.NParams {
					return fail(pc, "call to %s with %d args, want %d", callee.Name, in.C, callee.NParams)
				}
			} else {
				if err := checkReg(pc, in.D, "target"); err != nil {
					return err
				}
			}
		case OpRet:
			if err := checkReg(pc, in.A, "value"); err != nil {
				return err
			}
		case OpLoad, OpStore:
			if err := checkReg(pc, in.A, "value"); err != nil {
				return err
			}
			if err := checkReg(pc, in.B, "base"); err != nil {
				return err
			}
			switch in.Size {
			case 1, 2, 4, 8:
			default:
				return fail(pc, "access size %d", in.Size)
			}
		}
	}
	return nil
}

// CallSites returns the addresses of every direct and indirect call
// instruction in the main binary (library functions are excluded: the
// paper's identification step only instruments the main executable).
func (p *Program) CallSites() []Addr {
	var sites []Addr
	for _, f := range p.Funcs {
		if f.Lib {
			continue
		}
		for _, in := range f.Code {
			if in.IsCall() {
				sites = append(sites, in.Addr)
			}
		}
	}
	return sites
}

// Stats summarises a program for reports.
type Stats struct {
	Funcs     int
	LibFuncs  int
	Insts     int
	CallSites int
}

// Stat computes program statistics.
func (p *Program) Stat() Stats {
	var s Stats
	s.Funcs = len(p.Funcs)
	for _, f := range p.Funcs {
		if f.Lib {
			s.LibFuncs++
		}
		s.Insts += len(f.Code)
		for _, in := range f.Code {
			if in.IsCall() {
				s.CallSites++
			}
		}
	}
	return s
}
