package isa

import (
	"testing"
	"testing/quick"
)

// buildValid returns a small valid two-function program.
func buildValid() *Program {
	callee := &Func{
		Name:    "callee",
		NParams: 1,
		NRegs:   2,
		Code: []Inst{
			{Op: OpAddImm, A: 1, B: 0, Imm: 1},
			{Op: OpRet, A: 1},
		},
	}
	main := &Func{
		Name:  "main",
		NRegs: 4,
		Code: []Inst{
			{Op: OpConst, A: 0, Imm: 41},
			{Op: OpCall, A: 1, B: 0, C: 1, Fn: 1},
			{Op: OpRet, A: 1},
		},
	}
	p := &Program{Name: "t", Funcs: []*Func{main, callee}, Entry: 0}
	p.Link()
	return p
}

func TestValidateAccepts(t *testing.T) {
	if err := buildValid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"bad entry", func(p *Program) { p.Entry = 9 }},
		{"lib entry", func(p *Program) { p.Funcs[0].Lib = true }},
		{"reg out of frame", func(p *Program) { p.Funcs[0].Code[0].A = 200 }},
		{"branch out of range", func(p *Program) {
			p.Funcs[0].Code[0] = Inst{Op: OpJmp, Imm: 99}
		}},
		{"call target out of range", func(p *Program) { p.Funcs[0].Code[1].Fn = 7 }},
		{"arity mismatch", func(p *Program) { p.Funcs[0].Code[1].C = 0 }},
		{"bad extern", func(p *Program) { p.Funcs[0].Code[1].Fn = -100 }},
		{"bad access size", func(p *Program) {
			p.Funcs[0].Code[0] = Inst{Op: OpLoad, A: 0, B: 0, Size: 3}
		}},
		{"arg window overflow", func(p *Program) {
			p.Funcs[0].Code[1].B = 3
			p.Funcs[0].Code[1].C = 2
		}},
		{"negative globals", func(p *Program) { p.Globals = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildValid()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("validate accepted %s", tc.name)
			}
		})
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(fn uint16, pc uint16) bool {
		if pc == 65535 {
			pc = 0
		}
		a := MakeAddr(int(fn), int(pc))
		return a.FuncIndex() == int(fn) && a.PC() == int(pc) && a != NoAddr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAssignsUniqueAddrs(t *testing.T) {
	p := buildValid()
	seen := make(map[Addr]bool)
	for _, f := range p.Funcs {
		for _, in := range f.Code {
			if in.Addr == NoAddr {
				t.Fatalf("unlinked instruction")
			}
			if seen[in.Addr] {
				t.Fatalf("duplicate address %s", in.Addr)
			}
			seen[in.Addr] = true
		}
	}
	// Synthetic addresses never collide with linked ones.
	s1, s2 := p.NextSyntheticAddr(), p.NextSyntheticAddr()
	if seen[s1] || seen[s2] || s1 == s2 {
		t.Fatalf("synthetic addresses collide: %s %s", s1, s2)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := buildValid()
	p.Globals = 3
	img, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || q.Globals != p.Globals {
		t.Fatalf("header mismatch: %+v", q)
	}
	if len(q.Funcs) != len(p.Funcs) {
		t.Fatalf("func count %d != %d", len(q.Funcs), len(p.Funcs))
	}
	for i, f := range p.Funcs {
		g := q.Funcs[i]
		if g.Name != f.Name || g.Lib != f.Lib || g.NParams != f.NParams || g.NRegs != f.NRegs {
			t.Fatalf("func %d header mismatch", i)
		}
		if len(g.Code) != len(f.Code) {
			t.Fatalf("func %d code length mismatch", i)
		}
		for j := range f.Code {
			if f.Code[j] != g.Code[j] {
				t.Fatalf("func %d inst %d: %+v != %+v", i, j, f.Code[j], g.Code[j])
			}
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	p := buildValid()
	img, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(img[:len(img)-2]); err == nil {
		t.Fatal("decoded truncated image")
	}
	if _, err := Decode(append([]byte("XXXX"), img[4:]...)); err == nil {
		t.Fatal("decoded bad magic")
	}
	if _, err := Decode(append(append([]byte(nil), img...), 0)); err == nil {
		t.Fatal("decoded trailing bytes")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	p := buildValid()
	p.Entry = 5
	if _, err := p.Encode(); err == nil {
		t.Fatal("encoded invalid program")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildValid()
	q := p.Clone()
	q.Funcs[0].Code[0].Imm = 999
	if p.Funcs[0].Code[0].Imm == 999 {
		t.Fatal("clone shares code")
	}
}

func TestCallSites(t *testing.T) {
	p := buildValid()
	sites := p.CallSites()
	if len(sites) != 1 {
		t.Fatalf("call sites = %v", sites)
	}
	if sites[0] != p.Funcs[0].Code[1].Addr {
		t.Fatalf("wrong site %s", sites[0])
	}
	// Library call sites are excluded.
	p.Funcs[0].Lib = true
	p.Funcs[1].Lib = false
	if got := p.CallSites(); len(got) != 0 {
		t.Fatalf("lib call sites leaked: %v", got)
	}
}

func TestExternRefRoundTrip(t *testing.T) {
	for e := Extern(0); e.Valid(); e++ {
		r := ExternRef(e)
		if !r.IsExtern() || r.ExternOf() != e {
			t.Fatalf("extern %v round trip failed", e)
		}
	}
}

func TestDisasmMentionsAll(t *testing.T) {
	p := buildValid()
	d := p.Disasm()
	for _, want := range []string{"main", "callee", "call", "ret", "const"} {
		if !contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestStat(t *testing.T) {
	p := buildValid()
	s := p.Stat()
	if s.Funcs != 2 || s.Insts != 5 || s.CallSites != 1 || s.LibFuncs != 0 {
		t.Fatalf("stats %+v", s)
	}
}
