// Package pool is the bounded worker pool shared by the measurement
// harness (internal/measure), the experiment engine (internal/experiments)
// and the optimization service (internal/service). It exists to make
// fan-out deterministic by construction: work items are identified by
// index, results land in caller-provided slots indexed the same way, and
// every aggregate is computed from those slots in index order after the
// pool drains. Worker count therefore changes wall-clock time only — never
// results, and never which error is reported.
package pool

import (
	"runtime"
	"sync"

	"halo/internal/obs"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool metrics, recorded per Map call and per worker lifetime — never per
// task — in the process Default registry.
var (
	mMaps = obs.Default.Counter("halo_pool_maps_total",
		"pool.Map fan-outs executed (serial fast path included)")
	mTasks = obs.Default.Counter("halo_pool_tasks_total",
		"work items dispatched through pool.Map")
	mBusy = obs.Default.Gauge("halo_pool_workers_busy",
		"worker goroutines currently running pool.Map work")
)

// Map runs fn(0) … fn(n-1) on at most workers goroutines and returns the
// lowest-index error (nil if every call succeeded). Every index runs
// regardless of other indices failing, which is what makes the returned
// error — like the results the calls write — independent of scheduling.
// workers <= 0 selects DefaultWorkers; a single worker degenerates to an
// in-place serial loop.
func Map(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if obs.Enabled() {
		mMaps.Inc()
		mTasks.Add(uint64(n))
	}
	if workers == 1 {
		// Serial fast path. Still runs every index so error selection
		// matches the parallel path exactly.
		mBusy.Add(1)
		defer mBusy.Add(-1)
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			mBusy.Add(1)
			defer mBusy.Add(-1)
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
