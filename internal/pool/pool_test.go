package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 33
		var ran [33]int32
		if err := Map(n, workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Map(10, workers, func(i int) error {
			if i == 7 || i == 3 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 3" {
			t.Fatalf("workers=%d: err = %v, want fail 3", workers, err)
		}
	}
}

func TestMapResultsIndependentOfWorkers(t *testing.T) {
	run := func(workers int) []int {
		out := make([]int, 50)
		if err := Map(len(out), workers, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 8, 50} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
