// Package policy defines the allocator-policy JSON document exchanged by
// the pipeline's frontends: `halo opt` writes it, `halo run -alloc halo`
// consumes it, and the halod daemon serves it for finished optimize jobs.
// It lives in a leaf package so the CLI and the service share one
// definition without depending on each other.
package policy

// Doc is the policy document.
type Doc struct {
	Program   string         `json:"program"`
	NumBits   int            `json:"num_bits"`
	Selectors []Sel          `json:"selectors"`
	Halloc    Halloc         `json:"halloc"`
	Sites     map[string]int `json:"sites"` // site string -> bit
}

// Sel is one lowered selector.
type Sel struct {
	Group int     `json:"group"`
	Conj  [][]int `json:"conj"`
}

// Halloc carries group-allocator tuning. The daemon leaves it zero
// (requests do not expose allocator tuning); `halo opt` fills it from its
// flags.
type Halloc struct {
	ChunkSize   uint64 `json:"chunk_size,omitempty"`
	NoSpare     bool   `json:"no_spare,omitempty"`
	AlwaysReuse bool   `json:"always_reuse,omitempty"`
}
