package measure

import (
	"math"
	"testing"

	"halo/internal/cache"
	"halo/internal/workloads"
)

func TestQuartiles(t *testing.T) {
	q := QuartilesOf([]float64{1, 2, 3, 4, 5})
	if q.Median != 3 || q.P25 != 2 || q.P75 != 4 {
		t.Fatalf("quartiles = %+v", q)
	}
	q = QuartilesOf([]float64{10})
	if q.Median != 10 || q.P25 != 10 || q.P75 != 10 {
		t.Fatalf("singleton quartiles = %+v", q)
	}
	if q := QuartilesOf(nil); q.Median != 0 {
		t.Fatalf("empty quartiles = %+v", q)
	}
	// Unsorted input.
	q = QuartilesOf([]float64{5, 1, 3, 2, 4})
	if q.Median != 3 {
		t.Fatalf("unsorted median = %v", q.Median)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if p := Percentile(s, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(s, 25); p != 2.5 {
		t.Fatalf("p25 = %v", p)
	}
	if p := Percentile(s, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(s, 0); p != 0 {
		t.Fatalf("p0 = %v", p)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 80); got != 20 {
		t.Fatalf("improvement = %v", got)
	}
	if got := Improvement(100, 120); got != -20 {
		t.Fatalf("degradation = %v", got)
	}
	if got := Improvement(0, 50); got != 0 {
		t.Fatalf("zero baseline = %v", got)
	}
}

func TestRunPoliciesAgree(t *testing.T) {
	// Every policy must run the program to the same result (uninitialised
	// reads would break this).
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	var want int64
	for i, pol := range []Policy{
		{Kind: Jemalloc},
		{Kind: Ptmalloc},
		{Kind: RandomPools, Pools: 4},
	} {
		r, err := Run(p, pol, 77, machine)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = r.Result
		} else if r.Result != want {
			t.Fatalf("policy %v result %d != %d", pol.Kind, r.Result, want)
		}
		if r.Steps == 0 || r.Cache.L1D.Accesses == 0 || r.Seconds <= 0 {
			t.Fatalf("degenerate metrics: %+v", r)
		}
	}
}

func TestRunSeedVariation(t *testing.T) {
	w := workloads.MustGet("analyzer")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	r1, err := Run(p, Policy{Kind: Jemalloc}, 1, machine)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, Policy{Kind: Jemalloc}, 1, machine)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("same seed not deterministic")
	}
	r3, err := Run(p, Policy{Kind: Jemalloc}, 2, machine)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles == r3.Cycles {
		t.Fatal("different seeds produced identical runs (no input variation)")
	}
}

func TestMeasureTrials(t *testing.T) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	s, err := MeasureTrials(p, Policy{Kind: Jemalloc}, 3, 100, cache.XeonW2195())
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 3 {
		t.Fatalf("trials = %d", s.Trials)
	}
	if s.Seconds.P25 > s.Seconds.Median || s.Seconds.Median > s.Seconds.P75 {
		t.Fatalf("quartiles disordered: %+v", s.Seconds)
	}
	if math.IsNaN(s.Seconds.Median) || s.Seconds.Median <= 0 {
		t.Fatalf("median = %v", s.Seconds.Median)
	}
	// The representative run must carry consistent metrics.
	if s.Median.Steps == 0 {
		t.Fatal("median run empty")
	}
}

func TestHALOPolicyRequiresBinary(t *testing.T) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	if _, err := Run(p, Policy{Kind: HALO}, 1, cache.XeonW2195()); err == nil {
		t.Fatal("HALO policy without rewritten binary accepted")
	}
}

func TestPolicyKindString(t *testing.T) {
	for _, k := range []PolicyKind{Jemalloc, Ptmalloc, HALO, HDS, RandomPools} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
