package measure

import "sort"

// Quartiles holds the median and interquartile bounds of a sample, the
// paper's reporting format ("medians of the 10 recorded trials, with error
// bars calculated using the 25th and 75th percentiles").
type Quartiles struct {
	Median float64
	P25    float64
	P75    float64
}

// QuartilesOf computes quartiles with linear interpolation.
func QuartilesOf(xs []float64) Quartiles {
	if len(xs) == 0 {
		return Quartiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Quartiles{
		Median: Percentile(s, 50),
		P25:    Percentile(s, 25),
		P75:    Percentile(s, 75),
	}
}

// Percentile returns the p-th percentile (0..100) of sorted data, using
// linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Improvement reports the relative reduction of measured versus baseline:
// positive when measured is smaller (faster / fewer misses), as the
// paper's speedup and miss-reduction percentages are oriented.
func Improvement(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - measured) / baseline * 100
}
