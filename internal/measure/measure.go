// Package measure runs programs under the evaluation's allocator policies
// and collects the metrics the paper reports: L1 data-cache misses, a
// cycle-model execution time, allocator statistics and fragmentation. It
// follows §5.1's methodology: several trials per configuration, the first
// discarded, medians reported with 25th/75th percentile error bars.
//
// Hardware noise does not exist in a simulator, so trials vary the
// workload's RNG seed instead (input variation), which is what makes the
// quartile spread meaningful here. Trials are seed-independent of each
// other, so the harness runs them on a bounded worker pool; summaries are
// assembled from results in trial order and are therefore identical at
// any worker count.
package measure

import (
	"fmt"

	"halo/internal/alloc"
	"halo/internal/bits"
	"halo/internal/cache"
	"halo/internal/halloc"
	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/pool"
	"halo/internal/vm"
)

// PolicyKind selects the allocator configuration under test.
type PolicyKind int

// The measured configurations of §5.
const (
	// Jemalloc is the baseline: the unmodified binary under the
	// size-segregated allocator.
	Jemalloc PolicyKind = iota
	// Ptmalloc runs the unmodified binary under the boundary-tag
	// allocator (the §5.1 jemalloc-vs-ptmalloc2 baseline experiment).
	Ptmalloc
	// HALO runs the rewritten binary with the selector-classified group
	// allocator over the jemalloc-like fallback.
	HALO
	// HDS runs the unmodified binary with the group allocator classified
	// by immediate call site (the Chilimbi & Shaham replication).
	HDS
	// RandomPools runs the unmodified binary with the group allocator
	// assigning small objects to random pools (Figure 15).
	RandomPools
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case Jemalloc:
		return "jemalloc"
	case Ptmalloc:
		return "ptmalloc"
	case HALO:
		return "halo"
	case HDS:
		return "hds"
	case RandomPools:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(k))
}

// Policy is a fully specified allocator configuration.
type Policy struct {
	Kind PolicyKind

	// HALO policy inputs.
	Rewritten *isa.Program         // instrumented binary
	Selectors []halloc.BitSelector // lowered selectors
	NumBits   int                  // group-state width

	// HDS policy input.
	SiteGroups map[isa.Addr]int

	// RandomPools input.
	Pools int

	// Group-allocator tuning (HALO, HDS, RandomPools).
	Halloc halloc.Config
}

// RunResult is the outcome of a single run.
type RunResult struct {
	Result int64
	Steps  uint64
	Loads  uint64
	Stores uint64

	Cache   cache.Stats
	Cycles  uint64
	Seconds float64

	Alloc alloc.Stats // default/fallback allocator statistics

	// Group-allocator statistics (zero for baseline policies).
	GroupStats     alloc.Stats
	GroupedAllocs  uint64
	ForwardedAlloc uint64
	FragPct        float64
	FragBytes      uint64
}

// Run executes the program once under the policy with the given seed.
func Run(p *isa.Program, policy Policy, seed uint64, machine cache.Config) (RunResult, error) {
	memory := mem.NewMemory()
	osm := mem.NewOS(memory)
	fallback := alloc.NewSizeSeg(osm)

	var allocator vm.Allocator
	var galloc *halloc.GroupAlloc
	var state *bits.Vec
	var defStats func() alloc.Stats = fallback.Stats

	switch policy.Kind {
	case Jemalloc:
		allocator = fallback
	case Ptmalloc:
		bt := alloc.NewBoundaryTag(osm)
		allocator = bt
		defStats = bt.Stats
	case HALO:
		if policy.Rewritten == nil {
			return RunResult{}, fmt.Errorf("measure: HALO policy without rewritten binary")
		}
		n := policy.NumBits
		if n == 0 {
			n = vm.DefaultGroupBits
		}
		state = bits.New(n)
		cls := halloc.NewSelectorClassifier(state, policy.Selectors)
		galloc = halloc.New(osm, fallback, cls, policy.Halloc)
		allocator = galloc
	case HDS:
		cls := halloc.NewSiteClassifier(policy.SiteGroups)
		galloc = halloc.New(osm, fallback, cls, policy.Halloc)
		allocator = galloc
	case RandomPools:
		pools := policy.Pools
		if pools == 0 {
			pools = 4
		}
		cls := halloc.NewRandomClassifier(pools, seed|1)
		galloc = halloc.New(osm, fallback, cls, policy.Halloc)
		allocator = galloc
	default:
		return RunResult{}, fmt.Errorf("measure: unknown policy %v", policy.Kind)
	}

	prog := p
	if policy.Kind == HALO {
		prog = policy.Rewritten
	}

	// The hierarchy consumes the VM's event stream batch-at-a-time.
	hier := cache.New(machine)
	v := vm.New(prog, memory, allocator, hier, vm.Config{
		Seed:       seed,
		GroupState: state,
	})
	res, err := v.Run()
	if err != nil {
		return RunResult{}, fmt.Errorf("measure: %s under %s: %w", prog.Name, policy.Kind, err)
	}

	out := RunResult{
		Result:  res,
		Steps:   v.Steps(),
		Loads:   v.Loads(),
		Stores:  v.Stores(),
		Cache:   hier.Stats(),
		Cycles:  hier.Cycles(v.Steps()),
		Seconds: hier.Seconds(v.Steps()),
		Alloc:   defStats(),
	}
	if galloc != nil {
		out.GroupStats = galloc.Stats()
		out.GroupedAllocs = galloc.GroupedAllocs()
		out.ForwardedAlloc = galloc.ForwardedAllocs()
		out.FragPct, out.FragBytes = galloc.FragAtPeak()
	}
	return out, nil
}

// TotalLiveObjects reports objects still live at program exit across the
// fallback and group allocators — one half of the "final heap contents"
// the adversarial differential tests compare across policies.
func (r RunResult) TotalLiveObjects() uint64 {
	return r.Alloc.LiveObjects + r.GroupStats.LiveObjects
}

// TotalLiveBytes reports payload bytes still live at program exit across
// the fallback and group allocators.
func (r RunResult) TotalLiveBytes() uint64 {
	return r.Alloc.LiveBytes + r.GroupStats.LiveBytes
}

// Summary aggregates trials per §5.1: medians with 25th/75th percentiles.
type Summary struct {
	Trials  int
	Median  RunResult
	Seconds Quartiles
	L1DMiss Quartiles
	Cycles  Quartiles
}

// MeasureTrials runs trials+1 executions (discarding the first, per the
// paper's steady-state warm-up) with seeds baseSeed, baseSeed+1, ... and
// summarises them, using one worker per CPU. Each trial builds its own
// memory, allocator, VM and cache hierarchy, so trials are independent;
// results are gathered by trial index, making the summary bit-identical
// at any worker count.
func MeasureTrials(p *isa.Program, policy Policy, trials int, baseSeed uint64, machine cache.Config) (Summary, error) {
	return MeasureTrialsParallel(p, policy, trials, baseSeed, machine, 0)
}

// MeasureTrialsParallel is MeasureTrials with an explicit worker-pool
// width (<= 0 selects one worker per CPU, 1 forces serial execution).
func MeasureTrialsParallel(p *isa.Program, policy Policy, trials int, baseSeed uint64, machine cache.Config, workers int) (Summary, error) {
	if trials < 1 {
		trials = 1
	}
	// Pre-warm the decode cache before fanning out: every trial executes
	// the same program (the rewritten one for HALO), so one decode up front
	// keeps the workers from racing on redundant lowering passes.
	vm.Predecode(p)
	if policy.Kind == HALO && policy.Rewritten != nil {
		vm.Predecode(policy.Rewritten)
	}
	all := make([]RunResult, trials+1)
	err := pool.Map(trials+1, workers, func(t int) error {
		r, err := Run(p, policy, baseSeed+uint64(t), machine)
		if err != nil {
			return err
		}
		all[t] = r
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	results := all[1:] // discard the warm-up trial
	var secs, misses, cycles []float64
	for _, r := range results {
		secs = append(secs, r.Seconds)
		misses = append(misses, float64(r.Cache.L1D.Misses))
		cycles = append(cycles, float64(r.Cycles))
	}
	s := Summary{
		Trials:  trials,
		Seconds: QuartilesOf(secs),
		L1DMiss: QuartilesOf(misses),
		Cycles:  QuartilesOf(cycles),
	}
	// The representative run: the one whose cycle count is the median.
	bestIdx, bestDist := 0, -1.0
	for i, r := range results {
		d := float64(r.Cycles) - s.Cycles.Median
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestDist, bestIdx = d, i
		}
	}
	s.Median = results[bestIdx]
	return s, nil
}
