// Package mem provides the simulated 64-bit address space used by every
// other component of the HALO reproduction: a sparse, page-granular byte
// store (Memory) and an mmap-like address-space manager (OS).
//
// The package stands in for the operating system's virtual-memory facilities
// in the paper's runtime: allocators reserve demand-paged regions from OS,
// and the virtual machine performs its loads and stores against Memory.
// Pages materialise lazily on first touch, so reserving a multi-gigabyte
// slab costs nothing until it is written — mirroring mmap with overcommit,
// which the paper's artifact relies on ("running programs must be able to
// map at least 16GiB of virtual memory").
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the size of a simulated OS page in bytes. It matches the
// 4 KiB pages of the x86-64 systems evaluated in the paper, and doubles as
// HALO's default maximum grouped-object size.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Memory is a sparse byte-addressable store. The zero value is ready to use.
// Reads of untouched memory return zero bytes, like freshly mapped pages.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// touched counts pages that have been materialised by a write. It is
	// the simulation's notion of "resident" memory.
	touched uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	id := addr >> PageShift
	p := m.pages[id]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[id] = p
		m.touched++
	}
	return p
}

// PageFor exposes the backing page containing addr, materialising it when
// create is set. Execution engines cache the returned pointer as a
// software TLB to skip the per-access map lookup; any operation that can
// unmap or recreate pages (Release, and anything reachable from allocator
// externs) obliges cached pointers to be dropped.
func (m *Memory) PageFor(addr uint64, create bool) *[PageSize]byte {
	return m.page(addr, create)
}

// ByteAt returns the byte stored at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(PageSize-1)] = b
}

// Read returns the little-endian unsigned integer of the given size
// (1, 2, 4 or 8 bytes) stored at addr. Accesses may straddle pages.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low `size` bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size uint8, v uint64) {
	for i := uint8(0); i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadWord and WriteWord access the VM's native 8-byte word size.

// ReadWord returns the 8-byte word at addr.
func (m *Memory) ReadWord(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteWord stores the 8-byte word v at addr.
func (m *Memory) WriteWord(addr uint64, v uint64) { m.Write(addr, 8, v) }

// Zero clears n bytes starting at addr. Untouched pages stay untouched.
func (m *Memory) Zero(addr, n uint64) {
	for i := uint64(0); i < n; i++ {
		if p := m.page(addr+i, false); p != nil {
			p[(addr+i)&(PageSize-1)] = 0
		}
	}
}

// Copy copies n bytes from src to dst, handling overlap like memmove.
func (m *Memory) Copy(dst, src, n uint64) {
	if dst == src || n == 0 {
		return
	}
	if dst < src {
		for i := uint64(0); i < n; i++ {
			m.SetByte(dst+i, m.ByteAt(src+i))
		}
		return
	}
	for i := n; i > 0; i-- {
		m.SetByte(dst+i-1, m.ByteAt(src+i-1))
	}
}

// TouchedPages reports how many distinct pages have been materialised.
func (m *Memory) TouchedPages() uint64 { return m.touched }

// TouchedBytes reports the resident footprint in bytes.
func (m *Memory) TouchedBytes() uint64 { return m.touched * PageSize }

// Release discards the pages fully covered by [addr, addr+n), modelling
// madvise(MADV_DONTNEED)/munmap page purging. Partially covered pages are
// left intact. It reports the number of pages released.
func (m *Memory) Release(addr, n uint64) uint64 {
	if m.pages == nil || n == 0 {
		return 0
	}
	first := (addr + PageSize - 1) >> PageShift // first fully covered page
	last := (addr + n) >> PageShift             // one past last fully covered
	var released uint64
	for id := first; id < last; id++ {
		if _, ok := m.pages[id]; ok {
			delete(m.pages, id)
			m.touched--
			released++
		}
	}
	return released
}

// Region describes a reserved span of address space.
type Region struct {
	Base uint64
	Size uint64
}

// End returns one past the last address of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// OS hands out address-space regions, mimicking mmap. Regions are carved
// from a monotonically increasing cursor, optionally with alignment, and can
// be unmapped (returned regions are tracked so Owner lookups work).
//
// The base of the managed arena is deliberately placed high (0x10_0000_0000)
// so that heap addresses are visibly distinct from code addresses and the
// global segment in traces and disassembly.
type OS struct {
	mem     *Memory
	cursor  uint64
	regions []Region // sorted by Base, live mappings only
	mapped  uint64   // total currently mapped bytes
	maxMap  uint64   // high-water mark of mapped bytes
}

// HeapBase is the first address handed out by OS mappings.
const HeapBase = 0x10_0000_0000

// NewOS returns an address-space manager backed by mem.
func NewOS(mem *Memory) *OS {
	return &OS{mem: mem, cursor: HeapBase}
}

// Memory returns the backing store shared with the VM.
func (o *OS) Memory() *Memory { return o.mem }

// Map reserves size bytes aligned to align (0 or 1 for no alignment;
// otherwise a power of two) and returns the region. The memory is
// demand-paged: nothing is materialised until written.
func (o *OS) Map(size, align uint64) Region {
	if size == 0 {
		size = PageSize
	}
	// Round the size up to whole pages, as mmap does.
	size = (size + PageSize - 1) &^ uint64(PageSize-1)
	base := o.cursor
	if align > 1 {
		base = (base + align - 1) &^ (align - 1)
	}
	o.cursor = base + size
	r := Region{Base: base, Size: size}
	o.insert(r)
	o.mapped += size
	if o.mapped > o.maxMap {
		o.maxMap = o.mapped
	}
	return r
}

func (o *OS) insert(r Region) {
	i := sort.Search(len(o.regions), func(i int) bool { return o.regions[i].Base >= r.Base })
	o.regions = append(o.regions, Region{})
	copy(o.regions[i+1:], o.regions[i:])
	o.regions[i] = r
}

// Unmap releases a region previously returned by Map. The backing pages are
// discarded. Unmapping a region that is not live is an error: the simulation
// treats it as a bug in an allocator.
func (o *OS) Unmap(r Region) error {
	i := sort.Search(len(o.regions), func(i int) bool { return o.regions[i].Base >= r.Base })
	if i >= len(o.regions) || o.regions[i] != r {
		return fmt.Errorf("mem: unmap of non-mapped region [%#x, %#x)", r.Base, r.End())
	}
	o.regions = append(o.regions[:i], o.regions[i+1:]...)
	o.mapped -= r.Size
	o.mem.Release(r.Base, r.Size)
	return nil
}

// Purge releases the resident pages of [addr, addr+n) without unmapping the
// range, modelling dirty-page purging (madvise). Returns pages released.
func (o *OS) Purge(addr, n uint64) uint64 { return o.mem.Release(addr, n) }

// Owner returns the live region containing addr, if any.
func (o *OS) Owner(addr uint64) (Region, bool) {
	i := sort.Search(len(o.regions), func(i int) bool { return o.regions[i].Base > addr })
	if i == 0 {
		return Region{}, false
	}
	r := o.regions[i-1]
	if r.Contains(addr) {
		return r, true
	}
	return Region{}, false
}

// MappedBytes reports the total currently mapped address space.
func (o *OS) MappedBytes() uint64 { return o.mapped }

// PeakMappedBytes reports the mapping high-water mark.
func (o *OS) PeakMappedBytes() uint64 { return o.maxMap }

// LiveRegions returns the number of live mappings.
func (o *OS) LiveRegions() int { return len(o.regions) }
