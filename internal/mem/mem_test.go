package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroValueReads(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0x1234, 8); got != 0 {
		t.Fatalf("untouched read = %#x, want 0", got)
	}
	var zero Memory
	if got := zero.ByteAt(42); got != 0 {
		t.Fatalf("zero-value read = %d, want 0", got)
	}
	zero.SetByte(42, 7)
	if got := zero.ByteAt(42); got != 7 {
		t.Fatalf("zero-value write/read = %d, want 7", got)
	}
}

func TestMemoryReadWriteSizes(t *testing.T) {
	m := NewMemory()
	for _, size := range []uint8{1, 2, 4, 8} {
		addr := uint64(0x1000) + uint64(size)*32
		v := uint64(0x1122334455667788)
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		if got := m.Read(addr, size); got != want {
			t.Errorf("size %d: read = %#x, want %#x", size, got, want)
		}
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Write(0x2000, 4, 0x0A0B0C0D)
	bytes := []byte{0x0D, 0x0C, 0x0B, 0x0A}
	for i, want := range bytes {
		if got := m.ByteAt(0x2000 + uint64(i)); got != want {
			t.Errorf("byte %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestMemoryStraddlesPages(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3)
	m.Write(addr, 8, 0xDEADBEEFCAFEF00D)
	if got := m.Read(addr, 8); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("straddling read = %#x", got)
	}
	if m.TouchedPages() != 2 {
		t.Fatalf("touched pages = %d, want 2", m.TouchedPages())
	}
}

func TestMemoryCopyOverlap(t *testing.T) {
	m := NewMemory()
	for i := uint64(0); i < 16; i++ {
		m.SetByte(0x100+i, byte(i))
	}
	// Forward overlap (dst > src).
	m.Copy(0x104, 0x100, 12)
	for i := uint64(0); i < 12; i++ {
		if got := m.ByteAt(0x104 + i); got != byte(i) {
			t.Fatalf("forward overlap byte %d = %d, want %d", i, got, i)
		}
	}
	// Backward overlap (dst < src).
	for i := uint64(0); i < 16; i++ {
		m.SetByte(0x200+i, byte(i))
	}
	m.Copy(0x1FC, 0x200, 12)
	for i := uint64(0); i < 12; i++ {
		if got := m.ByteAt(0x1FC + i); got != byte(i) {
			t.Fatalf("backward overlap byte %d = %d, want %d", i, got, i)
		}
	}
}

func TestMemoryRelease(t *testing.T) {
	m := NewMemory()
	m.SetByte(0*PageSize+5, 1)
	m.SetByte(1*PageSize+5, 2)
	m.SetByte(2*PageSize+5, 3)
	if m.TouchedPages() != 3 {
		t.Fatalf("touched = %d, want 3", m.TouchedPages())
	}
	// Release covering pages 1 only (page 0 and 2 partially covered).
	released := m.Release(5, 2*PageSize)
	if released != 1 {
		t.Fatalf("released = %d, want 1", released)
	}
	if got := m.ByteAt(1*PageSize + 5); got != 0 {
		t.Fatalf("released page read = %d, want 0", got)
	}
	if got := m.ByteAt(0*PageSize + 5); got != 1 {
		t.Fatalf("partial page was released")
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, sz uint8) bool {
		size := uint8(1) << (sz % 4) // 1,2,4,8
		addr %= 1 << 40
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOSMapAlignment(t *testing.T) {
	o := NewOS(NewMemory())
	r := o.Map(1<<20, 1<<20)
	if r.Base%(1<<20) != 0 {
		t.Fatalf("base %#x not 1MiB aligned", r.Base)
	}
	if r.Size != 1<<20 {
		t.Fatalf("size = %#x, want 1MiB", r.Size)
	}
	r2 := o.Map(100, 0)
	if r2.Size != PageSize {
		t.Fatalf("size rounded to %#x, want page", r2.Size)
	}
	if r2.Base < r.End() {
		t.Fatalf("regions overlap: %#x < %#x", r2.Base, r.End())
	}
}

func TestOSOwnerLookup(t *testing.T) {
	o := NewOS(NewMemory())
	a := o.Map(PageSize, 0)
	b := o.Map(4*PageSize, 0)
	if got, ok := o.Owner(a.Base); !ok || got != a {
		t.Fatalf("Owner(a.Base) = %+v, %v", got, ok)
	}
	if got, ok := o.Owner(b.Base + b.Size - 1); !ok || got != b {
		t.Fatalf("Owner(end of b) = %+v, %v", got, ok)
	}
	if _, ok := o.Owner(b.End()); ok {
		t.Fatalf("Owner past end should miss")
	}
	if _, ok := o.Owner(HeapBase - 1); ok {
		t.Fatalf("Owner below heap should miss")
	}
}

func TestOSUnmap(t *testing.T) {
	o := NewOS(NewMemory())
	a := o.Map(2*PageSize, 0)
	o.Memory().SetByte(a.Base, 9)
	if err := o.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Owner(a.Base); ok {
		t.Fatalf("unmapped region still owned")
	}
	if got := o.Memory().ByteAt(a.Base); got != 0 {
		t.Fatalf("unmapped page retained data: %d", got)
	}
	if err := o.Unmap(a); err == nil {
		t.Fatalf("double unmap should error")
	}
}

func TestOSMappedAccounting(t *testing.T) {
	o := NewOS(NewMemory())
	a := o.Map(4*PageSize, 0)
	b := o.Map(2*PageSize, 0)
	if o.MappedBytes() != 6*PageSize {
		t.Fatalf("mapped = %d", o.MappedBytes())
	}
	if err := o.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if o.MappedBytes() != 2*PageSize {
		t.Fatalf("mapped after unmap = %d", o.MappedBytes())
	}
	if o.PeakMappedBytes() != 6*PageSize {
		t.Fatalf("peak = %d", o.PeakMappedBytes())
	}
	_ = b
}

func TestOSRegionsDisjointProperty(t *testing.T) {
	o := NewOS(NewMemory())
	f := func(sizes []uint16, aligns []uint8) bool {
		var regions []Region
		for i, s := range sizes {
			var align uint64
			if i < len(aligns) {
				align = uint64(1) << (aligns[i] % 22)
			}
			regions = append(regions, o.Map(uint64(s), align))
		}
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				if a.Base < b.End() && b.Base < a.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
