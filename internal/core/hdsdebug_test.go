package core

import (
	"testing"

	"halo/internal/workloads"
)

func TestGroupReport(t *testing.T) {
	for _, name := range []string{"leela", "omnetpp"} {
		w := workloads.MustGet(name)
		p := w.Build(w.TestScale)
		cfg := Config{}
		opt, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", opt.GroupReport())
	}
}

func TestHDSSetFormation(t *testing.T) {
	for _, name := range []string{"analyzer", "health", "leela", "povray"} {
		w := workloads.MustGet(name)
		p := w.Build(w.TestScale)
		cfg := Config{}
		cfg.Profile.RecordTrace = true
		prof, err := Profile(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := AnalyzeHDS(prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: trace=%d rules=%d candidates=%d hot=%d sets=%d",
			name, res.TraceLen, res.Rules, res.Candidates, res.Streams, len(res.Sets))
		for i, s := range res.Sets {
			if i >= 5 {
				break
			}
			t.Logf("  set %d: benefit %.1f, %d streams, %d sites", i, s.Benefit, s.Streams, len(s.Sites))
		}
	}
}
