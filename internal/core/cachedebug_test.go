package core

import (
	"testing"

	"halo/internal/cache"
	"halo/internal/halloc"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/rewrite"
	"halo/internal/workloads"
)

func rewriteRef(ref *isa.Program, opt *Optimized) (measure.Policy, error) {
	rw, err := rewrite.Instrument(ref, opt.Selectors.Sites)
	if err != nil {
		return measure.Policy{}, err
	}
	var sels []halloc.BitSelector
	for _, s := range opt.Selectors.Selectors {
		lowered, _ := rewrite.LowerSelectors(s.Conj, rw.SiteBits)
		if len(lowered) > 0 {
			sels = append(sels, halloc.BitSelector{Group: s.Group, Conj: lowered})
		}
	}
	return measure.Policy{Kind: measure.HALO, Rewritten: rw.Prog, Selectors: sels, NumBits: rw.NumBits}, nil
}

// TestCacheBreakdown prints the full hierarchy counters per policy for the
// workloads whose shapes are under tuning.
func TestCacheBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("ref-scale diagnostic")
	}
	machine := cache.XeonW2195()
	for _, name := range []string{"leela", "omnetpp"} {
		w := workloads.MustGet(name)
		p := w.Build(w.RefScale)
		test := w.Build(w.TestScale)
		cfg := Config{}
		cfg.Profile.RecordTrace = true
		opt, err := Optimize(test, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := AnalyzeHDS(opt.Profile, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild HALO policy on ref binary.
		pols := map[string]measure.Policy{
			"jemalloc": {Kind: measure.Jemalloc},
		}
		// Lower selectors for ref binary via experiments' path: do it
		// manually with the same sites.
		if rw, err := rewriteRef(p, opt); err == nil {
			pols["halo"] = rw
		} else {
			t.Fatal(err)
		}
		pols["hds"] = measure.Policy{Kind: measure.HDS, SiteGroups: hr.SiteGroups}
		for _, label := range []string{"jemalloc", "halo", "hds"} {
			r, err := measure.Run(p, pols[label], 1001, machine)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s/%-8s steps=%-9d cycles=%-10d L1D=%d/%d L2=%d L3=%d TLB=%d mem=%d res=%dKB grpRes=%dKB grouped=%d",
				name, label, r.Steps, r.Cycles,
				r.Cache.L1D.Misses, r.Cache.L1D.Accesses,
				r.Cache.L2.Misses, r.Cache.L3.Misses, r.Cache.TLB.Misses, r.Cache.Mem,
				r.Alloc.Resident/1024, r.GroupStats.Resident/1024, r.GroupedAllocs)
		}
	}
}
