package core

import (
	"testing"

	"halo/internal/cache"
	"halo/internal/measure"
	"halo/internal/workloads"
)

// TestPipelineSmoke runs the full pipeline on every workload at test
// scale: profile, group, identify, rewrite, then execute baseline and
// HALO configurations and check they terminate with identical program
// results (the optimisation must not change program semantics).
func TestPipelineSmoke(t *testing.T) {
	machine := cache.XeonW2195()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(w.TestScale)
			cfg := Config{}
			cfg.Profile.RecordTrace = true
			opt, err := Optimize(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d contexts, %d graph nodes, %d groups, %d sites, %d selectors",
				w.Name, len(opt.Profile.Contexts), opt.Profile.Graph.NumNodes(),
				len(opt.Groups), len(opt.Selectors.Sites), len(opt.BitSelectors))

			base, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 99, machine)
			if err != nil {
				t.Fatal(err)
			}
			// A program whose result depends on the allocator reads
			// uninitialised or freed memory: a workload bug.
			pt, err := measure.Run(p, measure.Policy{Kind: measure.Ptmalloc}, 99, machine)
			if err != nil {
				t.Fatal(err)
			}
			if pt.Result != base.Result {
				t.Fatalf("allocator-dependent result: jemalloc %d, ptmalloc %d", base.Result, pt.Result)
			}
			rnd, err := measure.Run(p, measure.Policy{Kind: measure.RandomPools}, 99, machine)
			if err != nil {
				t.Fatal(err)
			}
			if rnd.Result != base.Result {
				t.Fatalf("allocator-dependent result: jemalloc %d, random pools %d", base.Result, rnd.Result)
			}
			halo, err := measure.Run(p, measure.Policy{
				Kind:      measure.HALO,
				Rewritten: opt.Rewrite.Prog,
				Selectors: opt.BitSelectors,
				NumBits:   opt.Rewrite.NumBits,
			}, 99, machine)
			if err != nil {
				t.Fatal(err)
			}
			if base.Result != halo.Result {
				t.Fatalf("optimisation changed program result: %d != %d", base.Result, halo.Result)
			}
			t.Logf("%s: baseline L1D miss %d (%.2f%%), HALO %d (%.2f%%); grouped %d / forwarded %d; steps %d",
				w.Name, base.Cache.L1D.Misses, base.Cache.L1D.MissRate()*100,
				halo.Cache.L1D.Misses, halo.Cache.L1D.MissRate()*100,
				halo.GroupedAllocs, halo.ForwardedAlloc, base.Steps)
		})
	}
}
