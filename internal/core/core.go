// Package core wires the HALO pipeline of Figure 4 end to end: profiling
// (under the default allocator, on the training input), affinity-graph
// grouping, selector identification, post-link rewriting, and the lowering
// of selectors onto the rewritten binary's group-state bits. It also runs
// the hot-data-streams comparison pipeline over the same profile.
//
// The root package halo re-exports this as the library's public API.
package core

import (
	"fmt"

	"halo/internal/affinity"
	"halo/internal/alloc"
	"halo/internal/group"
	"halo/internal/halloc"
	"halo/internal/hds"
	"halo/internal/identify"
	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/obs"
	"halo/internal/pool"
	"halo/internal/profile"
	"halo/internal/profstore"
	"halo/internal/rewrite"
	"halo/internal/vm"
)

// Config parameterises the pipeline. Zero values take the paper's
// settings throughout.
type Config struct {
	Profile profile.Config
	Group   group.Params
	HDS     hds.Config

	// ProfileSeed drives the training run (the "test workload").
	ProfileSeed uint64
	// ProfileMaxSteps bounds the training run.
	ProfileMaxSteps uint64
	// ProfileBatchSize overrides the VM's event-batch size for the
	// training run (0 = vm.DefaultBatchSize). Profiles are bit-identical
	// at any setting; the knob exists for determinism tests and tuning.
	ProfileBatchSize int

	// SynthesisWorkers bounds the worker pool the layout-synthesis stages
	// (grouping, selector identification, co-allocation set construction)
	// fan out over. 0 selects one worker per CPU, 1 forces serial
	// execution. Synthesis output is bit-identical at any setting.
	SynthesisWorkers int

	// Trace, when non-nil, receives one span per pipeline stage (profile,
	// group, identify, rewrite, lower, hds/*). Timing only — it never
	// affects results. A nil trace records nothing at zero cost.
	Trace *obs.Trace
}

// Optimized carries every artefact of the HALO pipeline for one binary.
type Optimized struct {
	Input     *isa.Program
	Profile   *profile.Profile
	Groups    []group.Group
	Selectors *identify.Result
	Rewrite   *rewrite.Result

	// BitSelectors are the selectors lowered onto group-state bits, ready
	// for the runtime allocator.
	BitSelectors []halloc.BitSelector
	// DroppedConjs counts conjunctions that could not be lowered.
	DroppedConjs int
}

// Profile runs the program on the training input under the default
// allocator with the Pin-replacement instrumentation attached.
func Profile(p *isa.Program, cfg Config) (*profile.Profile, error) {
	defer cfg.Trace.Span("profile")()
	prof := profile.New(p, cfg.Profile)
	memory := mem.NewMemory()
	osm := mem.NewOS(memory)
	seed := cfg.ProfileSeed
	if seed == 0 {
		seed = 7
	}
	v := vm.New(p, memory, alloc.NewSizeSeg(osm), prof, vm.Config{
		Seed:      seed,
		MaxSteps:  cfg.ProfileMaxSteps,
		BatchSize: cfg.ProfileBatchSize,
	})
	if _, err := v.Run(); err != nil {
		return nil, fmt.Errorf("core: profiling run: %w", err)
	}
	return prof.Finish(), nil
}

// ProfileN runs `runs` independent training runs — seeds cfg.ProfileSeed,
// +1, +2, … — on a bounded worker pool (workers <= 0 selects one per CPU)
// and merges their profiles deterministically. Because the VM's event
// engine is reentrant (every run owns its memory, allocator and profiler)
// and profstore's merge is order-independent, the result is bit-identical
// at any worker count. runs <= 1 degenerates to a single Profile call.
func ProfileN(p *isa.Program, cfg Config, runs, workers int) (*profile.Profile, error) {
	if runs <= 1 {
		return Profile(p, cfg)
	}
	// One span covers the whole fan-out and merge; the concurrent inner
	// runs are untraced so the span list stays one-entry-per-stage.
	defer cfg.Trace.Span("profile")()
	baseSeed := cfg.ProfileSeed
	if baseSeed == 0 {
		baseSeed = 7
	}
	profs := make([]*profile.Profile, runs)
	err := pool.Map(runs, workers, func(i int) error {
		c := cfg
		c.Trace = nil
		c.ProfileSeed = baseSeed + uint64(i)
		pr, err := Profile(p, c)
		if err != nil {
			return err
		}
		profs[i] = pr
		return nil
	})
	if err != nil {
		return nil, err
	}
	coverage := cfg.Profile.Coverage
	if coverage == 0 {
		coverage = profstore.DefaultCoverage
	}
	merged, err := profstore.MergeWithCoverage(coverage, profs...)
	if err != nil {
		return nil, fmt.Errorf("core: merging training profiles: %w", err)
	}
	merged.Prog = p
	return merged, nil
}

// Optimize runs the full HALO pipeline on a binary, profiling it with the
// training seed and producing the rewritten binary plus runtime policy.
func Optimize(p *isa.Program, cfg Config) (*Optimized, error) {
	prof, err := Profile(p, cfg)
	if err != nil {
		return nil, err
	}
	return OptimizeFromProfile(p, prof, cfg)
}

// OptimizeFromProfile runs grouping, identification and rewriting over an
// existing profile (so one profiling run can feed several configurations).
func OptimizeFromProfile(p *isa.Program, prof *profile.Profile, cfg Config) (*Optimized, error) {
	gp := cfg.Group
	if gp.Workers == 0 {
		gp.Workers = cfg.SynthesisWorkers
	}
	endGroup := cfg.Trace.Span("group")
	groups := group.Form(prof.Graph, gp)

	// Record group membership on the contexts for identification.
	for _, c := range prof.Contexts {
		c.Group = -1
	}
	for _, g := range groups {
		for _, m := range g.Members {
			prof.Contexts[m].Group = g.ID
		}
	}
	endGroup()

	endIdentify := cfg.Trace.Span("identify")
	sel := identify.BuildParallel(groups, prof.Contexts, cfg.SynthesisWorkers)
	endIdentify()

	endRewrite := cfg.Trace.Span("rewrite")
	rw, err := rewrite.Instrument(p, sel.Sites)
	endRewrite()
	if err != nil {
		return nil, fmt.Errorf("core: rewriting: %w", err)
	}

	opt := &Optimized{
		Input:     p,
		Profile:   prof,
		Groups:    groups,
		Selectors: sel,
		Rewrite:   rw,
	}
	endLower := cfg.Trace.Span("lower")
	for _, s := range sel.Selectors {
		lowered, dropped := rewrite.LowerSelectors(s.Conj, rw.SiteBits)
		opt.DroppedConjs += dropped
		if len(lowered) > 0 {
			opt.BitSelectors = append(opt.BitSelectors, halloc.BitSelector{
				Group: s.Group,
				Conj:  lowered,
			})
		}
	}
	endLower()
	return opt, nil
}

// AnalyzeHDS runs the hot-data-streams comparison pipeline over a profile
// recorded with tracing enabled.
func AnalyzeHDS(prof *profile.Profile, cfg Config) (*hds.Result, error) {
	if len(prof.Trace) == 0 {
		return nil, fmt.Errorf("core: profile has no reference trace; enable Profile.RecordTrace")
	}
	hc := cfg.HDS
	if hc.Workers == 0 {
		hc.Workers = cfg.SynthesisWorkers
	}
	if hc.Trace == nil {
		hc.Trace = cfg.Trace
	}
	return hds.Analyze(prof, hc), nil
}

// GroupReport renders the formed groups with context chains, reproducing
// the content of the paper's Figure 9 for any workload.
func (o *Optimized) GroupReport() string {
	out := fmt.Sprintf("%s: %d contexts, %d graph nodes (filtered), %d groups\n",
		o.Input.Name, len(o.Profile.Contexts), o.Profile.Graph.NumNodes(), len(o.Groups))
	for _, g := range o.Groups {
		out += fmt.Sprintf("  group %d (weight %d, accesses %d):\n", g.ID, g.Weight, g.Accesses)
		for _, m := range g.Members {
			out += fmt.Sprintf("    %s\n", o.Profile.Contexts[m].Describe(o.Input))
		}
	}
	ungrouped := 0
	for _, c := range o.Profile.Contexts {
		if c.Group < 0 && o.Profile.Graph.Accesses(affinity.Ctx(c.ID)) > 0 {
			ungrouped++
		}
	}
	out += fmt.Sprintf("  (%d hot contexts ungrouped)\n", ungrouped)
	return out
}
