package core

import (
	"testing"

	"halo/internal/cache"
	"halo/internal/measure"
	"halo/internal/workloads"
)

// TestPolicyLayersPreserveSemantics checks each layer of the HALO policy
// in isolation: the rewritten binary alone, the group allocator with inert
// selectors, and the full combination must all compute the baseline result.
func TestPolicyLayersPreserveSemantics(t *testing.T) {
	machine := cache.XeonW2195()
	for _, name := range []string{"omnetpp", "leela"} {
		w := workloads.MustGet(name)
		p := w.Build(w.TestScale)
		cfg := Config{}
		opt, err := Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 99, machine)
		if err != nil {
			t.Fatal(err)
		}
		// Rewritten binary, plain jemalloc (no selectors -> everything
		// forwarded... but use Jemalloc kind on the rewritten binary).
		rw, err := measure.Run(opt.Rewrite.Prog, measure.Policy{Kind: measure.Jemalloc}, 99, machine)
		if err != nil {
			t.Fatal(err)
		}
		if rw.Result != base.Result {
			t.Fatalf("%s: rewriting changed result: %d != %d", name, rw.Result, base.Result)
		}
		// Original binary under HALO policy with selectors that can never
		// match any bits (group state never set on the original binary).
		halo0, err := measure.Run(p, measure.Policy{
			Kind:      measure.HALO,
			Rewritten: p,
			Selectors: opt.BitSelectors,
			NumBits:   opt.Rewrite.NumBits,
		}, 99, machine)
		if err != nil {
			t.Fatal(err)
		}
		if halo0.Result != base.Result {
			t.Fatalf("%s: inert halloc changed result: %d != %d", name, halo0.Result, base.Result)
		}
		// Full HALO.
		halo, err := measure.Run(p, measure.Policy{
			Kind:      measure.HALO,
			Rewritten: opt.Rewrite.Prog,
			Selectors: opt.BitSelectors,
			NumBits:   opt.Rewrite.NumBits,
		}, 99, machine)
		if err != nil {
			t.Fatalf("%s: full halo errored: %v", name, err)
		}
		if halo.Result != base.Result {
			t.Fatalf("%s: full halo changed result: %d != %d", name, halo.Result, base.Result)
		}
	}
}
