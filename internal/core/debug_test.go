package core

import (
	"testing"

	"halo/internal/alloc"
	"halo/internal/bits"
	"halo/internal/halloc"
	"halo/internal/isa"
	"halo/internal/mem"
	"halo/internal/vm"
	"halo/internal/workloads"
)

// liveChecker verifies at the VM hook level that allocations never overlap
// and frees name live regions.
type liveChecker struct {
	vm.NopHooks
	t    *testing.T
	live map[uint64]uint64 // base -> size
	n    int
}

func (c *liveChecker) OnAlloc(ev vm.AllocEvent) {
	c.n++
	switch ev.Kind {
	case vm.KindFree:
		if ev.Old == 0 {
			return
		}
		if _, ok := c.live[ev.Old]; !ok {
			c.t.Fatalf("event %d: free of unknown %#x", c.n, ev.Old)
		}
		delete(c.live, ev.Old)
		return
	case vm.KindRealloc:
		delete(c.live, ev.Old)
	}
	if ev.Ptr == 0 {
		return
	}
	size := ev.Size
	if size == 0 {
		size = 1
	}
	for b, s := range c.live {
		if ev.Ptr < b+s && b < ev.Ptr+size {
			c.t.Fatalf("event %d: overlap new [%#x,%#x) (site %s) with live [%#x,%#x)",
				c.n, ev.Ptr, ev.Ptr+size, ev.Site, b, b+s)
		}
	}
	c.live[ev.Ptr] = size
}

func TestHALORunLiveInvariants(t *testing.T) {
	for _, name := range []string{"omnetpp", "leela"} {
		w := workloads.MustGet(name)
		p := w.Build(w.TestScale)
		opt, err := Optimize(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		memory := mem.NewMemory()
		osm := mem.NewOS(memory)
		fallback := alloc.NewSizeSeg(osm)
		state := bits.New(opt.Rewrite.NumBits + 1)
		cls := halloc.NewSelectorClassifier(state, opt.BitSelectors)
		ga := halloc.New(osm, fallback, cls, halloc.Config{})
		checker := &liveChecker{t: t, live: map[uint64]uint64{}}
		// The checker is a per-event observer, attached via the Replay shim.
		v := vm.New(opt.Rewrite.Prog, memory, ga, vm.NewReplay(opt.Rewrite.Prog, checker),
			vm.Config{Seed: 99, GroupState: state})
		if _, err := v.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: %d alloc events, %d live at exit", name, checker.n, len(checker.live))
		_ = isa.NoAddr
	}
}
