package adversary

import "fmt"

// The search: Heelan-style pseudo-random search over candidate sequences.
// Rather than mutating op lists (where most mutations produce invalid
// programs), the search samples the space of generation seeds: every
// candidate is Generate(deriveSeed(seed, i), params), valid by
// construction, and the whole search is a pure function of its seed — the
// reproducibility the acceptance tests pin.

// SearchConfig parameterises a search run.
type SearchConfig struct {
	// Seed drives candidate derivation; the same seed, params and budget
	// always select the same winner.
	Seed uint64
	// Candidates is the search budget: how many candidates to score.
	Candidates int
	// Params shapes every candidate.
	Params GenParams
	// NamePrefix names candidates ("<prefix>-<candidate seed>").
	NamePrefix string
	// MinFitness, when non-zero, lets the search stop at the first
	// candidate scoring at least this much — a found-it threshold for
	// expensive fitness functions.
	MinFitness float64
}

// SearchResult reports a search's winner.
type SearchResult struct {
	Best      Sequence
	Fitness   float64
	Evaluated int
}

// Search scores up to cfg.Candidates generated sequences and returns the
// first maximum (strict improvement replaces the incumbent, so ties go to
// the earliest candidate — deterministic at any evaluation order, though
// evaluation here is serial by design).
func Search(cfg SearchConfig, fit Fitness) SearchResult {
	if cfg.Candidates <= 0 {
		cfg.Candidates = 32
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "adv"
	}
	var res SearchResult
	best := -1e18
	for i := 0; i < cfg.Candidates; i++ {
		seed := deriveSeed(cfg.Seed, i)
		s := Generate(fmt.Sprintf("%s-%016x", cfg.NamePrefix, seed), seed, cfg.Params)
		f := fit(&s)
		res.Evaluated++
		if f > best {
			best = f
			res.Best, res.Fitness = s, f
		}
		if cfg.MinFitness != 0 && best >= cfg.MinFitness {
			break
		}
	}
	return res
}
