// Package adversary generates allocation/free/write sequences hostile to
// HALO's grouping, in the spirit of Heelan et al.'s automatic heap-layout
// manipulation: a deterministic, seeded pseudo-random search over candidate
// workloads, scored by a fitness function over the heap layout (or the full
// profile→synthesis→rewrite→measure pipeline) that each candidate produces.
//
// A candidate is a Sequence: a phased program over a fixed set of object
// slots and allocation sites. Each phase replays a list of setup ops
// (alloc, free, write, read), then enters a steady-state loop touching a
// "hot" subset of the live slots and churning short-lived objects — the
// shape of a long-running server whose hot contexts can rotate between
// phases. Sequences are generated from a seed under validity invariants
// (never free a dead slot, never read an unwritten offset, never write out
// of bounds), so every candidate the search visits is a legal program.
//
// Discovered sequences flow out of the package in two forms: compiled to a
// first-class *isa.Program (Compile) that runs through the full pipeline
// like any SPEC-style workload, and flattened to a portable heap-op stream
// (HeapOps) that replays directly against the group allocator — the fuzz
// corpus format of internal/halloc's FuzzHalloc.
package adversary

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// OpKind is a setup-phase operation kind.
type OpKind uint8

// The setup-phase operations.
const (
	// OpAlloc allocates slot Slot from site Site (size = SiteSize[Site]).
	OpAlloc OpKind = iota
	// OpFree frees slot Slot.
	OpFree
	// OpWrite writes a deterministic word at [slot+Off].
	OpWrite
	// OpRead reads the word at [slot+Off] into the program checksum.
	OpRead
)

// Op is one setup operation.
type Op struct {
	Kind OpKind
	Slot int
	Site int   // OpAlloc only
	Off  int64 // OpWrite/OpRead only; 8-aligned, in bounds
}

// HotRef is one entry of a phase's steady-state access pattern. A zero
// Gate touches the slot every iteration; a positive Gate touches it only
// when the VM's seeded RNG draws 0 from [0,Gate) — the lever that makes
// training-run behaviour (profile seed) diverge from measurement-run
// behaviour (measure seeds), misleading the profile-driven grouping.
type HotRef struct {
	Slot int
	Gate int64
}

// ChurnRef allocates, touches and immediately frees one object from Site
// on every steady-state iteration: allocator churn that forces chunk reuse.
type ChurnRef struct {
	Site int
}

// Phase is one phase of a sequence: setup ops, then Loops×scale iterations
// of the steady-state loop over Hot and Churn.
type Phase struct {
	Ops   []Op
	Hot   []HotRef
	Churn []ChurnRef
	Loops int64 // steady-state iterations per unit of scale
}

// Sequence is one adversarial workload candidate.
type Sequence struct {
	Name  string
	Seed  uint64 // generation seed, for reproducing the candidate
	Slots int    // object slots (one pointer global each)
	Sites int    // distinct allocation sites (one wrapper function each)

	// SiteSize fixes the object size allocated at each site, as a real
	// allocation site allocates one type.
	SiteSize []int64

	Phases []Phase
}

// sizePalette is the pool of object sizes generation draws from. It spans
// the grouped range and crosses MaxGroupedSize (4 KiB) so some sites
// always forward to the fallback allocator.
var sizePalette = []int64{16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4160}

// rng is a splitmix64 generator: the package's only randomness source, so
// every sequence is a pure function of its seed.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pct(p int) bool { return r.intn(100) < p }

// deriveSeed mixes a base seed with an index, giving each search candidate
// an independent generation seed.
func deriveSeed(base uint64, i int) uint64 {
	r := rng{s: base ^ (uint64(i+1) * 0xA24BAED4963EE407)}
	return r.next()
}

// GenParams shapes random sequence generation.
type GenParams struct {
	Slots       int   // object slots (≤ 32; each costs a global)
	Sites       int   // allocation sites
	Phases      int   // phases
	OpsPerPhase int   // setup ops per phase
	HotRefs     int   // steady-state touches per iteration
	ChurnRefs   int   // short-lived allocations per iteration
	Loops       int64 // steady-state iterations per unit of scale
	Gates       bool  // allow RNG-gated hot refs
}

func (p GenParams) withDefaults() GenParams {
	if p.Slots == 0 {
		p.Slots = 24
	}
	if p.Sites == 0 {
		p.Sites = 8
	}
	if p.Phases == 0 {
		p.Phases = 1
	}
	if p.OpsPerPhase == 0 {
		p.OpsPerPhase = 120
	}
	if p.HotRefs == 0 {
		p.HotRefs = 10
	}
	if p.ChurnRefs == 0 {
		p.ChurnRefs = 2
	}
	if p.Loops == 0 {
		p.Loops = 6
	}
	return p
}

// slotState tracks generation-time validity: liveness, owning site, and
// which offsets hold defined data (the allocation wrapper defines offset 0
// at birth; writes define more).
type slotState struct {
	live    bool
	site    int
	written []int64
}

// Generate builds a random valid sequence from a seed. The same seed and
// params always produce the identical sequence.
func Generate(name string, seed uint64, p GenParams) Sequence {
	p = p.withDefaults()
	r := newRng(seed)
	s := Sequence{
		Name:     name,
		Seed:     seed,
		Slots:    p.Slots,
		Sites:    p.Sites,
		SiteSize: make([]int64, p.Sites),
	}
	for i := range s.SiteSize {
		s.SiteSize[i] = sizePalette[r.intn(len(sizePalette))]
	}
	slots := make([]slotState, p.Slots)

	liveSlots := func() []int {
		var out []int
		for i := range slots {
			if slots[i].live {
				out = append(out, i)
			}
		}
		return out
	}
	deadSlots := func() []int {
		var out []int
		for i := range slots {
			if !slots[i].live {
				out = append(out, i)
			}
		}
		return out
	}

	alloc := func(ops []Op, slot int) []Op {
		site := r.intn(p.Sites)
		slots[slot] = slotState{live: true, site: site, written: []int64{0}}
		return append(ops, Op{Kind: OpAlloc, Slot: slot, Site: site})
	}
	free := func(ops []Op, slot int) []Op {
		slots[slot] = slotState{}
		return append(ops, Op{Kind: OpFree, Slot: slot})
	}

	for pi := 0; pi < p.Phases; pi++ {
		var ph Phase
		for len(ph.Ops) < p.OpsPerPhase {
			live, dead := liveSlots(), deadSlots()
			switch k := r.intn(100); {
			case k < 38: // alloc
				if len(dead) == 0 {
					ph.Ops = free(ph.Ops, live[r.intn(len(live))])
					continue
				}
				ph.Ops = alloc(ph.Ops, dead[r.intn(len(dead))])
			case k < 58: // free
				if len(live) == 0 {
					ph.Ops = alloc(ph.Ops, dead[r.intn(len(dead))])
					continue
				}
				ph.Ops = free(ph.Ops, live[r.intn(len(live))])
			case k < 72: // write a fresh in-bounds offset
				if len(live) == 0 {
					ph.Ops = alloc(ph.Ops, dead[r.intn(len(dead))])
					continue
				}
				slot := live[r.intn(len(live))]
				size := s.SiteSize[slots[slot].site]
				words := size / 8
				if words == 0 {
					continue
				}
				off := 8 * int64(r.intn(int(words)))
				slots[slot].written = append(slots[slot].written, off)
				ph.Ops = append(ph.Ops, Op{Kind: OpWrite, Slot: slot, Off: off})
			case k < 85: // read one written offset
				if len(live) == 0 {
					ph.Ops = alloc(ph.Ops, dead[r.intn(len(dead))])
					continue
				}
				slot := live[r.intn(len(live))]
				w := slots[slot].written
				ph.Ops = append(ph.Ops, Op{Kind: OpRead, Slot: slot, Off: w[r.intn(len(w))]})
			default: // same-site read burst: the sweep access pattern that
				// favours size-class co-location over grouped interleaving
				if len(live) == 0 {
					ph.Ops = alloc(ph.Ops, dead[r.intn(len(dead))])
					continue
				}
				site := slots[live[r.intn(len(live))]].site
				for _, sl := range live {
					if slots[sl].site == site {
						ph.Ops = append(ph.Ops, Op{Kind: OpRead, Slot: sl, Off: 0})
					}
				}
			}
		}

		// Hot set: a subset of the slots live after this phase's setup.
		live := liveSlots()
		for len(live) < p.HotRefs {
			dead := deadSlots()
			if len(dead) == 0 {
				break
			}
			ph.Ops = alloc(ph.Ops, dead[r.intn(len(dead))])
			live = liveSlots()
		}
		perm := make([]int, len(live))
		copy(perm, live)
		for i := len(perm) - 1; i > 0; i-- {
			j := r.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		n := p.HotRefs
		if n > len(perm) {
			n = len(perm)
		}
		chosen := perm[:n]
		if r.pct(50) {
			// Cluster the hot pattern by site: each iteration sweeps one
			// site's objects back to back instead of interleaving sites.
			sortBySite(chosen, slots)
		}
		for _, sl := range chosen {
			gate := int64(0)
			if p.Gates && r.pct(30) {
				gate = int64(2 + r.intn(3))
			}
			ph.Hot = append(ph.Hot, HotRef{Slot: sl, Gate: gate})
		}
		for i := 0; i < p.ChurnRefs; i++ {
			ph.Churn = append(ph.Churn, ChurnRef{Site: r.intn(p.Sites)})
		}
		ph.Loops = p.Loops
		s.Phases = append(s.Phases, ph)
	}
	return s
}

// sortBySite stably sorts slot indices by their owning site (insertion
// sort: the lists are tiny and determinism matters more than speed).
func sortBySite(slots []int, st []slotState) {
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && st[slots[j-1]].site > st[slots[j]].site; j-- {
			slots[j-1], slots[j] = slots[j], slots[j-1]
		}
	}
}

// LiveAtEnd simulates the sequence's ops and returns the slots still live
// after the final phase, in slot order. The compiled program's epilogue
// sweeps exactly these.
func (s *Sequence) LiveAtEnd() []int {
	live := make([]bool, s.Slots)
	for _, ph := range s.Phases {
		for _, op := range ph.Ops {
			switch op.Kind {
			case OpAlloc:
				live[op.Slot] = true
			case OpFree:
				live[op.Slot] = false
			}
		}
	}
	var out []int
	for i, l := range live {
		if l {
			out = append(out, i)
		}
	}
	return out
}

// NumOps reports the total setup-op count across phases.
func (s *Sequence) NumOps() int {
	n := 0
	for _, ph := range s.Phases {
		n += len(ph.Ops)
	}
	return n
}

// Fingerprint is a canonical sha256 over everything that defines the
// sequence. Equal fingerprints mean byte-identical compiled programs; the
// search-determinism tests pin it.
func (s *Sequence) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wr := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(s.Name))
	wr(int64(s.Slots))
	wr(int64(s.Sites))
	for _, sz := range s.SiteSize {
		wr(sz)
	}
	for _, ph := range s.Phases {
		wr(int64(len(ph.Ops)))
		for _, op := range ph.Ops {
			wr(int64(op.Kind))
			wr(int64(op.Slot))
			wr(int64(op.Site))
			wr(op.Off)
		}
		for _, hr := range ph.Hot {
			wr(int64(hr.Slot))
			wr(hr.Gate)
		}
		for _, c := range ph.Churn {
			wr(int64(c.Site))
		}
		wr(ph.Loops)
	}
	return hex.EncodeToString(h.Sum(nil))
}
