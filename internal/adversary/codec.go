package adversary

import "encoding/binary"

// This file defines the portable heap-op stream: a fixed-width byte
// encoding of allocator-level operations. It is the lingua franca between
// the adversary and the halloc fuzzer — discovered sequences flatten to op
// streams checked in as fuzz corpus seeds, and the fuzzer's byte inputs
// decode to op streams replayed against the allocator under the shadow
// oracle. Any byte string decodes to a valid stream (decoding sanitises),
// so the fuzzer's mutations always exercise the allocator rather than the
// parser.

// HeapOpKind is an allocator-level operation kind.
type HeapOpKind uint8

// The heap-op stream operations.
const (
	// HeapMalloc allocates Slot: malloc(1 + Size%MaxFuzzSize) at site Site.
	// A live slot is freed first, so malloc never leaks a tracked region.
	HeapMalloc HeapOpKind = iota
	// HeapCalloc allocates Slot via calloc. When Aux%13 == 0 the replay
	// substitutes the n*size-overflow probe and asserts calloc fails.
	HeapCalloc
	// HeapRealloc grows or shrinks Slot to 1 + Size%MaxFuzzSize bytes
	// (plain malloc if the slot is dead).
	HeapRealloc
	// HeapFree frees Slot; a no-op if the slot is dead.
	HeapFree
	// HeapWrite stores a deterministic word inside Slot at a Size-derived
	// offset; a no-op if the slot is dead or smaller than a word.
	HeapWrite
	// HeapRead loads a word back and lets the oracle verify every byte the
	// stream previously wrote there.
	HeapRead
	// HeapBadFree frees a stale grouped pointer (freed earlier, not since
	// reissued) and asserts the allocator refuses it loudly — the "never
	// double-free silently" probe. A no-op until a stale pointer exists.
	HeapBadFree

	numHeapOpKinds
)

// HeapOp is one operation of the stream.
type HeapOp struct {
	Kind HeapOpKind
	Slot uint8  // object slot, modulo MaxFuzzSlots
	Site uint16 // allocation site identity, modulo MaxFuzzSites
	Size uint32 // size / offset selector, op-dependent
	Aux  uint32 // secondary selector (calloc n, write value salt)
}

const (
	// HeapOpBytes is the encoded width of one op.
	HeapOpBytes = 12
	// MaxFuzzSlots bounds the live-object working set of a stream.
	MaxFuzzSlots = 64
	// MaxFuzzSites bounds distinct allocation-site identities.
	MaxFuzzSites = 256
	// MaxFuzzSize bounds request sizes. It deliberately exceeds the
	// default MaxGroupedSize so streams exercise the forwarding path.
	MaxFuzzSize = 8192
	// MaxFuzzOps caps decoded stream length, bounding replay time however
	// long the fuzzer's input grows.
	MaxFuzzOps = 4096
)

// Encode appends the op's fixed-width encoding to dst.
func (op HeapOp) Encode(dst []byte) []byte {
	var b [HeapOpBytes]byte
	b[0] = byte(op.Kind)
	b[1] = op.Slot
	binary.LittleEndian.PutUint16(b[2:], op.Site)
	binary.LittleEndian.PutUint32(b[4:], op.Size)
	binary.LittleEndian.PutUint32(b[8:], op.Aux)
	return append(dst, b[:]...)
}

// EncodeHeapOps encodes a whole stream.
func EncodeHeapOps(ops []HeapOp) []byte {
	out := make([]byte, 0, len(ops)*HeapOpBytes)
	for _, op := range ops {
		out = op.Encode(out)
	}
	return out
}

// DecodeHeapOps decodes a byte string into a sanitised op stream: kinds,
// slots and sites are reduced modulo their domains, trailing partial ops
// are dropped, and the stream is truncated at MaxFuzzOps.
func DecodeHeapOps(data []byte) []HeapOp {
	n := len(data) / HeapOpBytes
	if n > MaxFuzzOps {
		n = MaxFuzzOps
	}
	ops := make([]HeapOp, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*HeapOpBytes:]
		ops = append(ops, HeapOp{
			Kind: HeapOpKind(b[0] % byte(numHeapOpKinds)),
			Slot: b[1] % MaxFuzzSlots,
			Site: binary.LittleEndian.Uint16(b[2:]) % MaxFuzzSites,
			Size: binary.LittleEndian.Uint32(b[4:]),
			Aux:  binary.LittleEndian.Uint32(b[8:]),
		})
	}
	return ops
}

// HeapOps flattens the sequence to a heap-op stream: setup ops in phase
// order, each phase's steady-state loop unrolled `unroll` times. Allocation
// wrappers in the compiled program stamp offset 0 at birth; the flattened
// stream mirrors that with an explicit write after every alloc, so later
// reads verify data integrity through the oracle.
func (s *Sequence) HeapOps(unroll int) []HeapOp {
	var ops []HeapOp
	salt := uint32(1)
	stamp := func(slot int) {
		ops = append(ops, HeapOp{Kind: HeapWrite, Slot: uint8(slot), Site: 0, Size: 0, Aux: salt})
		salt++
	}
	allocSlot := func(slot, site int) {
		ops = append(ops, HeapOp{
			Kind: HeapMalloc,
			Slot: uint8(slot),
			Site: uint16(site % MaxFuzzSites),
			Size: uint32(s.SiteSize[site]-1) % MaxFuzzSize,
		})
		stamp(slot)
	}
	churnSlot := s.Slots % MaxFuzzSlots // one spare slot beyond the sequence's own
	for _, ph := range s.Phases {
		for _, op := range ph.Ops {
			switch op.Kind {
			case OpAlloc:
				allocSlot(op.Slot, op.Site)
			case OpFree:
				ops = append(ops, HeapOp{Kind: HeapFree, Slot: uint8(op.Slot)})
			case OpWrite:
				ops = append(ops, HeapOp{Kind: HeapWrite, Slot: uint8(op.Slot), Size: uint32(op.Off), Aux: salt})
				salt++
			case OpRead:
				ops = append(ops, HeapOp{Kind: HeapRead, Slot: uint8(op.Slot), Size: uint32(op.Off)})
			}
		}
		for u := 0; u < unroll; u++ {
			for _, hr := range ph.Hot {
				// Gates are a training/measurement divergence lever for the
				// compiled program; the flattened stream takes every touch.
				ops = append(ops, HeapOp{Kind: HeapRead, Slot: uint8(hr.Slot), Size: 0})
			}
			for _, c := range ph.Churn {
				ops = append(ops, HeapOp{
					Kind: HeapMalloc,
					Slot: uint8(churnSlot),
					Site: uint16((c.Site + s.Sites) % MaxFuzzSites), // distinct from setup sites
					Size: uint32(s.SiteSize[c.Site]-1) % MaxFuzzSize,
				})
				stamp(churnSlot)
				ops = append(ops, HeapOp{Kind: HeapFree, Slot: uint8(churnSlot)})
			}
		}
	}
	return ops
}
