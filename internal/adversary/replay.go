package adversary

import (
	"fmt"

	"halo/internal/alloc"
	"halo/internal/halloc"
	"halo/internal/isa"
	"halo/internal/mem"
)

// This file replays heap-op streams directly against the group allocator —
// no VM, no cache model — in two modes. Replay is the fast path the
// search's layout-fitness functions score candidates with. ReplayChecked is
// the trust path: every operation is mirrored into the shadow-heap oracle,
// and the replay fails if the allocator ever hands out overlapping regions,
// lets a grouped region escape its chunk, aliases a forwarded region with a
// chunk span, corrupts written bytes, or accepts an invalid free silently.

// ReplayConfig is the allocator configuration a stream replays under.
type ReplayConfig struct {
	Name   string
	Halloc halloc.Config
	Groups int // distinct groups the site classifier spreads sites over
	// BoundaryTag forwards ungrouped requests to the boundary-tag fallback
	// (internal/alloc's ptmalloc stand-in) instead of the size-segregated
	// one, so layout invariants are checked over both backends.
	BoundaryTag bool
}

// ReplayConfigs returns the table of configurations the fuzzer and the
// property tests replay every stream under: the paper default, the small
// chunks that force frequent chunk turnover, the no-spare artifact setting,
// and the PR 4 oversize-clamp regression shape (MaxGroupedSize above what a
// chunk can hold).
func ReplayConfigs() []ReplayConfig {
	return []ReplayConfig{
		{Name: "default", Halloc: halloc.Config{}, Groups: 4},
		{Name: "small-chunks", Halloc: halloc.Config{ChunkSize: 1 << 14, SlabSize: 1 << 18}, Groups: 6},
		{Name: "no-spare", Halloc: halloc.Config{ChunkSize: 1 << 16, SlabSize: 1 << 20, NoSpare: true}, Groups: 3},
		{Name: "oversize-clamp", Halloc: halloc.Config{ChunkSize: 4096, SlabSize: 64 << 10, MaxGroupedSize: 8192}, Groups: 4},
		{Name: "always-reuse", Halloc: halloc.Config{ChunkSize: 1 << 14, SlabSize: 1 << 18, AlwaysReuseChunks: true}, Groups: 4},
	}
}

// ReplayResult summarises a replayed stream's effect on the allocator.
type ReplayResult struct {
	Allocs    uint64 // allocation requests issued
	Frees     uint64 // frees issued
	BadFrees  uint64 // invalid frees issued (checked mode only)
	Grouped   uint64 // requests served from group chunks
	Forwarded uint64 // requests forwarded to the fallback

	// FragAtPeakPct is the allocator's Table-1 metric for the stream.
	FragAtPeakPct float64
	// EndFragPct is end-state fragmentation: the share of live chunks'
	// capacity not holding live payload when the stream ends. The
	// fragmentation-forcer fitness maximises it.
	EndFragPct float64
	// LiveChunks and LiveBytes describe the end state.
	LiveChunks int
	LiveBytes  uint64
	// AdjacentPairs counts pairs of live grouped regions from different
	// sites that end the stream exactly contiguous — the overflow-adjacent
	// co-allocations a CAMP-style hardened allocator must worry about. The
	// adjacency fitness maximises it.
	AdjacentPairs int
}

// siteTable builds the site→group classifier table for a replay: sites
// spread round-robin over Groups groups, with every fifth site left
// ungrouped so streams always exercise the forwarding path too.
func siteTable(groups int) map[isa.Addr]int {
	t := make(map[isa.Addr]int, MaxFuzzSites)
	for s := 0; s < MaxFuzzSites; s++ {
		if s%5 == 4 {
			continue
		}
		t[isa.Addr(s)] = s % groups
	}
	return t
}

// replayer holds one replay's state.
type replayer struct {
	a      *halloc.GroupAlloc
	m      *mem.Memory
	shadow *halloc.ShadowHeap // nil in unchecked mode

	slots  [MaxFuzzSlots + 1]uint64 // slot -> live base (0 = dead)
	sizes  [MaxFuzzSlots + 1]uint64 // slot -> live size
	siteOf map[uint64]uint16        // live grouped base -> site
	stale  []uint64                 // grouped pointers freed and not reissued
	salt   uint64                   // deterministic write-value counter

	res ReplayResult
}

func newReplayer(cfg ReplayConfig, checked bool) *replayer {
	if cfg.Groups <= 0 {
		cfg.Groups = 4
	}
	m := mem.NewMemory()
	osm := mem.NewOS(m)
	var fallback alloc.Allocator = alloc.NewSizeSeg(osm)
	if cfg.BoundaryTag {
		fallback = alloc.NewBoundaryTag(osm)
	}
	r := &replayer{
		a:      halloc.New(osm, fallback, halloc.NewSiteClassifier(siteTable(cfg.Groups)), cfg.Halloc),
		m:      m,
		siteOf: make(map[uint64]uint16),
	}
	if checked {
		r.shadow = halloc.NewShadowHeap(m)
	}
	return r
}

// Replay runs the stream fast, without the oracle. Invalid-free probes are
// skipped (only the oracle can prove them safe to issue). It never fails:
// every decodable stream is a valid workload by construction.
func Replay(ops []HeapOp, cfg ReplayConfig) ReplayResult {
	r := newReplayer(cfg, false)
	for _, op := range ops {
		// The unchecked step only errors through the oracle, which is absent.
		_ = r.step(op)
	}
	return r.finish()
}

// ReplayChecked runs the stream with every operation mirrored into the
// shadow-heap oracle and the layout invariants re-checked periodically. Any
// error is an allocator correctness finding.
func ReplayChecked(ops []HeapOp, cfg ReplayConfig) (ReplayResult, error) {
	r := newReplayer(cfg, true)
	for i, op := range ops {
		if err := r.step(op); err != nil {
			return r.res, fmt.Errorf("op %d (%d): %w", i, op.Kind, err)
		}
		if i%64 == 63 {
			if err := r.shadow.CheckLayout(r.a); err != nil {
				return r.res, fmt.Errorf("op %d: %w", i, err)
			}
		}
	}
	if err := r.shadow.CheckLayout(r.a); err != nil {
		return r.res, err
	}
	if err := r.shadow.CheckContents(); err != nil {
		return r.res, err
	}
	return r.finish(), nil
}

func (r *replayer) alloc(op HeapOp, viaCalloc bool) error {
	slot := int(op.Slot)
	if r.slots[slot] != 0 {
		if err := r.free(slot); err != nil {
			return err
		}
	}
	size := 1 + uint64(op.Size)%MaxFuzzSize
	r.a.SetAllocSite(isa.Addr(op.Site))
	var ptr uint64
	if viaCalloc {
		if op.Aux%13 == 0 {
			// The n*size overflow probe: the product wraps, so a correct
			// calloc must fail rather than hand back a tiny region.
			n := ^uint64(0)/16 + 2
			if got := r.a.Calloc(n, 16); got != 0 {
				return fmt.Errorf("calloc(%d, 16) overflowed to %#x instead of failing", n, got)
			}
			return nil
		}
		elems := 1 + uint64(op.Aux)%4
		elem := (size + elems - 1) / elems
		size = elems * elem
		ptr = r.a.Calloc(elems, elem)
	} else {
		ptr = r.a.Malloc(size)
	}
	r.res.Allocs++
	grouped := r.a.InChunk(ptr)
	if grouped {
		r.res.Grouped++
		r.siteOf[ptr] = op.Site
	} else {
		r.res.Forwarded++
	}
	if r.shadow != nil {
		if err := r.shadow.OnAlloc(ptr, size, viaCalloc); err != nil {
			return err
		}
	}
	r.slots[slot], r.sizes[slot] = ptr, size
	r.dropStale(ptr)
	return nil
}

func (r *replayer) free(slot int) error {
	ptr := r.slots[slot]
	if ptr == 0 {
		return nil
	}
	if r.a.InChunk(ptr) {
		delete(r.siteOf, ptr)
		r.stale = append(r.stale, ptr)
		if len(r.stale) > MaxFuzzSlots {
			r.stale = r.stale[1:]
		}
	}
	r.a.Free(ptr)
	r.res.Frees++
	if r.shadow != nil {
		if err := r.shadow.OnFree(ptr); err != nil {
			return err
		}
	}
	r.slots[slot], r.sizes[slot] = 0, 0
	return nil
}

// dropStale forgets stale pointers the allocator has reissued: freeing one
// of those would be a valid (and corrupting) free, not an invalid one.
func (r *replayer) dropStale(reissued uint64) {
	out := r.stale[:0]
	for _, p := range r.stale {
		if p != reissued {
			out = append(out, p)
		}
	}
	r.stale = out
}

func (r *replayer) step(op HeapOp) error {
	slot := int(op.Slot)
	switch op.Kind {
	case HeapMalloc:
		return r.alloc(op, false)
	case HeapCalloc:
		return r.alloc(op, true)
	case HeapRealloc:
		ptr := r.slots[slot]
		if ptr == 0 {
			return r.alloc(op, false)
		}
		size := 1 + uint64(op.Size)%MaxFuzzSize
		if r.a.InChunk(ptr) {
			delete(r.siteOf, ptr)
		}
		r.a.SetAllocSite(isa.Addr(op.Site))
		np := r.a.Realloc(ptr, size)
		r.res.Allocs++
		if r.a.InChunk(np) {
			r.res.Grouped++
			r.siteOf[np] = op.Site
		} else {
			r.res.Forwarded++
		}
		if r.shadow != nil {
			if err := r.shadow.OnRealloc(ptr, np, size); err != nil {
				return err
			}
		}
		r.slots[slot], r.sizes[slot] = np, size
		r.dropStale(np)
		return nil
	case HeapFree:
		return r.free(slot)
	case HeapWrite:
		ptr, size := r.slots[slot], r.sizes[slot]
		if ptr == 0 || size < 8 {
			return nil
		}
		off := 8 * (uint64(op.Size) % (size / 8))
		if off+8 > size {
			off = 0
		}
		r.salt++
		v := r.salt<<32 | uint64(op.Aux)
		if r.shadow != nil {
			return r.shadow.Write(ptr, off, 8, v)
		}
		r.m.Write(ptr+off, 8, v)
		return nil
	case HeapRead:
		ptr, size := r.slots[slot], r.sizes[slot]
		if ptr == 0 || size < 8 {
			return nil
		}
		off := 8 * (uint64(op.Size) % (size / 8))
		if off+8 > size {
			off = 0
		}
		if r.shadow != nil {
			_, err := r.shadow.Read(ptr, off, 8)
			return err
		}
		r.m.Read(ptr+off, 8)
		return nil
	case HeapBadFree:
		if r.shadow == nil || len(r.stale) == 0 {
			return nil
		}
		p := r.stale[int(uint64(op.Size)%uint64(len(r.stale)))]
		if !r.a.InChunk(p) || r.shadow.Contains(p) {
			return nil
		}
		r.res.BadFrees++
		if !panicsOnFree(r.a, p) {
			return fmt.Errorf("invalid free of stale grouped pointer %#x was accepted silently", p)
		}
		return nil
	}
	return nil
}

// panicsOnFree issues a free expected to be invalid and reports whether the
// allocator trapped it. GroupAlloc's invalid-free panic fires before any
// bookkeeping mutation, so the replay can safely continue afterwards.
func panicsOnFree(a *halloc.GroupAlloc, ptr uint64) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	a.Free(ptr)
	return false
}

func (r *replayer) finish() ReplayResult {
	r.res.FragAtPeakPct, _ = r.a.FragAtPeak()
	live := r.a.LiveGrouped()
	for _, reg := range live {
		r.res.LiveBytes += reg.Size
	}
	for _, c := range r.a.ChunkInfos() {
		if c.Live > 0 {
			r.res.LiveChunks++
		}
	}
	if capacity := uint64(r.res.LiveChunks) * (r.a.ChunkSize() - halloc.HeaderSize); capacity > 0 {
		held := minU64(r.res.LiveBytes, capacity)
		r.res.EndFragPct = float64(capacity-held) / float64(capacity) * 100
	}
	for i := 1; i < len(live); i++ {
		p, q := live[i-1], live[i]
		if p.End() == q.Base && r.siteOf[p.Base] != r.siteOf[q.Base] {
			r.res.AdjacentPairs++
		}
	}
	return r.res
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
