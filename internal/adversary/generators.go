package adversary

import "halo/internal/halloc"

// The canonical adversaries: the three scenario families the evaluation
// ships as first-class workloads, each a deterministic function of a seed.
// FragForcer and OverflowProbe are search products (layout fitness over the
// replayed stream); PhaseShift is constructed directly — its hostility is
// structural (hot contexts rotate between phases, so whichever phase the
// profile observes misleads the other phases' steady states), not a layout
// accident a search has to stumble on. MissRegressor searches with the
// full-pipeline fitness and is the expensive one; workloads caches it.

// FragForcerSeed, OverflowProbeSeed, PhaseShiftSeed and MissRegressorSeed
// are the fixed seeds the shipped workloads and the reproducibility tests
// use. Changing one changes the corresponding workload's identity.
const (
	FragForcerSeed    = 0x48414c4f_0001
	OverflowProbeSeed = 0x48414c4f_0002
	PhaseShiftSeed    = 0x48414c4f_0003
	MissRegressorSeed = 0x48414c4f_0004
)

// fragSearchConfig is the replay environment the fragmentation search
// scores under: small chunks with no spare retention, so pinning chunks
// mostly-empty is both possible and visible.
func fragSearchConfig() ReplayConfig {
	return ReplayConfig{
		Name:   "frag-search",
		Halloc: halloc.Config{ChunkSize: 1 << 14, SlabSize: 1 << 18, NoSpare: true},
		Groups: 6,
	}
}

// FragForcer searches for a fragmentation forcer: a sequence whose live
// objects end up spread one-per-chunk across many groups, pinning resident
// chunks that are almost entirely dead space.
func FragForcer(seed uint64) SearchResult {
	return Search(SearchConfig{
		Seed:       seed,
		Candidates: 48,
		NamePrefix: "adv-frag",
		Params: GenParams{
			Slots:       24,
			Sites:       12,
			Phases:      2,
			OpsPerPhase: 140,
			HotRefs:     8,
			ChurnRefs:   2,
			Loops:       4,
		},
	}, FragFitness(fragSearchConfig()))
}

// OverflowProbe searches for an overflow-adjacent co-allocation probe: a
// sequence maximising live pairs from different allocation sites left
// exactly contiguous in a group chunk.
func OverflowProbe(seed uint64) SearchResult {
	return Search(SearchConfig{
		Seed:       seed,
		Candidates: 48,
		NamePrefix: "adv-adjacent",
		Params: GenParams{
			Slots:       28,
			Sites:       6,
			Phases:      1,
			OpsPerPhase: 160,
			HotRefs:     10,
			ChurnRefs:   1,
			Loops:       4,
		},
	}, AdjacencyFitness(ReplayConfig{Name: "adjacency", Groups: 2}))
}

// PhaseShift constructs the phase-shifting long-running workload: three
// phases over disjoint site pools; each phase frees most of the previous
// phase's objects and runs a steady-state loop over its own. Every hot
// touch is RNG-gated, so the hot set the training run observes is not the
// hot set any measurement run exercises.
func PhaseShift(seed uint64) Sequence {
	const (
		phases       = 3
		sitesPer     = 4
		slotsPer     = 8
		keepPerPhase = 2 // survivors each phase leaves in later phases' chunks
	)
	r := newRng(seed)
	s := Sequence{
		Name:  "adv-phase",
		Seed:  seed,
		Slots: phases * slotsPer,
		Sites: phases * sitesPer,
	}
	s.SiteSize = make([]int64, s.Sites)
	for i := range s.SiteSize {
		s.SiteSize[i] = sizePalette[r.intn(len(sizePalette))]
	}
	for p := 0; p < phases; p++ {
		var ph Phase
		// Free most of the previous phase's objects: the survivors keep
		// the old phase's chunks alive under the new phase's working set.
		if p > 0 {
			prev := (p - 1) * slotsPer
			for i := keepPerPhase; i < slotsPer; i++ {
				ph.Ops = append(ph.Ops, Op{Kind: OpFree, Slot: prev + i})
			}
		}
		// Allocate this phase's working set from this phase's sites.
		for i := 0; i < slotsPer; i++ {
			slot := p*slotsPer + i
			site := p*sitesPer + r.intn(sitesPer)
			ph.Ops = append(ph.Ops, Op{Kind: OpAlloc, Slot: slot, Site: site})
		}
		// This phase's hot set: its own slots, plus one straggler from the
		// previous phase, every touch gated.
		for i := 0; i < slotsPer; i++ {
			ph.Hot = append(ph.Hot, HotRef{Slot: p*slotsPer + i, Gate: int64(2 + r.intn(3))})
		}
		if p > 0 {
			ph.Hot = append(ph.Hot, HotRef{Slot: (p - 1) * slotsPer, Gate: 2})
		}
		ph.Churn = append(ph.Churn, ChurnRef{Site: p * sitesPer})
		ph.Loops = 8
		s.Phases = append(s.Phases, ph)
	}
	return s
}

// MissRegressorParams shapes the candidates of the pipeline-fitness search
// (advpipe.MissRegressor): gated hot refs on, so training and measurement
// runs genuinely diverge.
func MissRegressorParams() GenParams {
	return GenParams{
		Slots:       28,
		Sites:       10,
		Phases:      2,
		OpsPerPhase: 120,
		HotRefs:     12,
		ChurnRefs:   2,
		Loops:       10,
		Gates:       true,
	}
}

// MissRegressorScale is the scale pipeline-fitness candidates are
// evaluated at — small, because every candidate runs the whole pipeline.
const MissRegressorScale = 6

// MissRegressorPinnedSeed is the generation seed of the sequence
// advpipe.MissRegressor discovers for MissRegressorSeed: the winner of the
// fixed-seed search, on which HALO regresses L1D misses. The adv-regress
// workload rebuilds the sequence from this pin (keeping internal/workloads
// free of the pipeline packages), and advpipe's discovery test asserts the
// search still lands exactly here.
const MissRegressorPinnedSeed = 0xcf6bd3c8ac6bd81d

// MissRegressorSequence rebuilds the pinned regression sequence.
func MissRegressorSequence() Sequence {
	return Generate("adv-regress", MissRegressorPinnedSeed, MissRegressorParams())
}
