package adversary

// A Fitness scores a candidate sequence; the search maximises it. The
// layout fitnesses here replay the flattened heap-op stream directly
// against the group allocator — milliseconds per candidate. The
// full-pipeline fitness (profile → synthesis → rewrite → measure) lives in
// the advpipe subpackage, keeping this package importable by
// internal/workloads without a cycle through the pipeline stages.
type Fitness func(s *Sequence) float64

// fitnessUnroll is how many steady-state iterations layout fitnesses
// replay per phase: enough churn to turn chunks over, small enough to keep
// a search candidate under a millisecond.
const fitnessUnroll = 8

// FragFitness scores end-state fragmentation: the share of live chunks'
// capacity holding no live payload. Maximising it finds fragmentation
// forcers — sequences that pin many mostly-empty chunks resident.
func FragFitness(cfg ReplayConfig) Fitness {
	return func(s *Sequence) float64 {
		r := Replay(s.HeapOps(fitnessUnroll), cfg)
		if r.LiveChunks < 2 {
			return 0 // one chunk's slack is bump-allocator overhead, not fragmentation
		}
		return r.EndFragPct
	}
}

// AdjacencyFitness scores overflow-adjacent co-allocation: live grouped
// regions from different sites ending the stream exactly contiguous, so a
// small overflow of one object lands in another context's data. Maximising
// it finds the co-allocation probes a CAMP-style hardened allocator must
// survive.
func AdjacencyFitness(cfg ReplayConfig) Fitness {
	return func(s *Sequence) float64 {
		r := Replay(s.HeapOps(fitnessUnroll), cfg)
		return float64(r.AdjacentPairs)
	}
}
