package adversary

import (
	"testing"

	"halo/internal/alloc"
	"halo/internal/mem"
	"halo/internal/vm"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("x", 42, GenParams{})
	b := Generate("x", 42, GenParams{})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different sequences")
	}
	c := Generate("x", 43, GenParams{})
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestGeneratedSequencesAreValid checks the generator's validity
// invariants by construction-independent simulation: never free a dead
// slot, never read an unwritten offset, never write out of bounds, hot
// refs live through their phase.
func TestGeneratedSequencesAreValid(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		s := Generate("v", seed, GenParams{Gates: true})
		type slot struct {
			live    bool
			size    int64
			written map[int64]bool
		}
		slots := make([]slot, s.Slots)
		for pi, ph := range s.Phases {
			for oi, op := range ph.Ops {
				sl := &slots[op.Slot]
				switch op.Kind {
				case OpAlloc:
					if sl.live {
						t.Fatalf("seed %d phase %d op %d: alloc over live slot %d", seed, pi, oi, op.Slot)
					}
					*sl = slot{live: true, size: s.SiteSize[op.Site], written: map[int64]bool{0: true}}
				case OpFree:
					if !sl.live {
						t.Fatalf("seed %d phase %d op %d: free of dead slot %d", seed, pi, oi, op.Slot)
					}
					sl.live = false
				case OpWrite:
					if !sl.live {
						t.Fatalf("seed %d phase %d op %d: write to dead slot %d", seed, pi, oi, op.Slot)
					}
					if op.Off%8 != 0 || op.Off+8 > sl.size {
						t.Fatalf("seed %d phase %d op %d: write at %d outside %d-byte slot", seed, pi, oi, op.Off, sl.size)
					}
					sl.written[op.Off] = true
				case OpRead:
					if !sl.live {
						t.Fatalf("seed %d phase %d op %d: read of dead slot %d", seed, pi, oi, op.Slot)
					}
					if !sl.written[op.Off] {
						t.Fatalf("seed %d phase %d op %d: read of unwritten offset %d", seed, pi, oi, op.Off)
					}
				}
			}
			for _, hr := range ph.Hot {
				if !slots[hr.Slot].live {
					t.Fatalf("seed %d phase %d: hot ref to dead slot %d", seed, pi, hr.Slot)
				}
			}
			for _, c := range ph.Churn {
				if c.Site < 0 || c.Site >= s.Sites {
					t.Fatalf("seed %d phase %d: churn site %d out of range", seed, pi, c.Site)
				}
			}
		}
	}
}

func TestHeapOpCodecRoundTrip(t *testing.T) {
	s := Generate("rt", 7, GenParams{})
	ops := s.HeapOps(3)
	if len(ops) == 0 {
		t.Fatal("empty stream")
	}
	dec := DecodeHeapOps(EncodeHeapOps(ops))
	if len(dec) != len(ops) {
		t.Fatalf("round trip: %d ops, want %d", len(dec), len(ops))
	}
	for i := range ops {
		if dec[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, dec[i], ops[i])
		}
	}
}

func TestDecodeArbitraryBytes(t *testing.T) {
	// Any byte string decodes to a sanitised stream.
	data := make([]byte, 997)
	r := newRng(3)
	for i := range data {
		data[i] = byte(r.next())
	}
	for _, op := range DecodeHeapOps(data) {
		if op.Kind >= numHeapOpKinds || op.Slot >= MaxFuzzSlots || op.Site >= MaxFuzzSites {
			t.Fatalf("unsanitised op %+v", op)
		}
	}
}

// TestReplayCheckedCleanOnGenerated replays generated streams under every
// replay configuration with the shadow oracle attached: the allocator must
// survive all of them with zero corruption.
func TestReplayCheckedCleanOnGenerated(t *testing.T) {
	for _, cfg := range ReplayConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 10; seed++ {
				s := Generate("rc", seed, GenParams{})
				if _, err := ReplayChecked(s.HeapOps(4), cfg); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestFragForcerReproducible is an acceptance gate: the fixed-seed search
// discovers a fragmentation forcer, and the same seed finds the same
// sequence.
func TestFragForcerReproducible(t *testing.T) {
	a := FragForcer(FragForcerSeed)
	b := FragForcer(FragForcerSeed)
	if a.Best.Fingerprint() != b.Best.Fingerprint() || a.Fitness != b.Fitness {
		t.Fatal("fixed-seed search is not reproducible")
	}
	if a.Fitness < 80 {
		t.Fatalf("fragmentation forcer reaches only %.1f%% end fragmentation", a.Fitness)
	}
	r := Replay(a.Best.HeapOps(fitnessUnroll), fragSearchConfig())
	if r.LiveChunks < 4 {
		t.Fatalf("forcer pins only %d chunks", r.LiveChunks)
	}
}

func TestOverflowProbeReproducible(t *testing.T) {
	a := OverflowProbe(OverflowProbeSeed)
	b := OverflowProbe(OverflowProbeSeed)
	if a.Best.Fingerprint() != b.Best.Fingerprint() {
		t.Fatal("fixed-seed search is not reproducible")
	}
	if a.Fitness < 5 {
		t.Fatalf("probe ends with only %.0f cross-site adjacent pairs", a.Fitness)
	}
}

func TestPhaseShiftRotatesHotSites(t *testing.T) {
	s := PhaseShift(PhaseShiftSeed)
	if len(s.Phases) < 3 {
		t.Fatalf("phase-shift has %d phases", len(s.Phases))
	}
	// Each phase's dominant hot slots must belong to that phase's own
	// slot band: the hot working set genuinely rotates.
	for pi, ph := range s.Phases {
		own := 0
		for _, hr := range ph.Hot {
			if hr.Slot/8 == pi {
				own++
			}
			if hr.Gate == 0 {
				t.Fatalf("phase %d: ungated hot ref; divergence lever missing", pi)
			}
		}
		if own < 8 {
			t.Fatalf("phase %d: only %d hot refs in its own band", pi, own)
		}
	}
}

// runCompiled executes a compiled sequence on the plain VM.
func runCompiled(t *testing.T, s *Sequence, scale int, seed uint64) (int64, uint64) {
	t.Helper()
	p := Compile(s, scale)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	v := vm.New(p, m, alloc.NewSizeSeg(mem.NewOS(m)), nil, vm.Config{Seed: seed})
	res, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, v.Steps()
}

func TestCompileRunsAndScales(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := Generate("c", seed, GenParams{Gates: true})
		r1, steps1 := runCompiled(t, &s, 2, 11)
		r2, steps2 := runCompiled(t, &s, 2, 11)
		if r1 != r2 || steps1 != steps2 {
			t.Fatalf("seed %d: nondeterministic compiled run", seed)
		}
		_, steps4 := runCompiled(t, &s, 4, 11)
		if steps4 <= steps1 {
			t.Fatalf("seed %d: scale did not grow the run (%d vs %d steps)", seed, steps4, steps1)
		}
		a := Compile(&s, 2).CallSites()
		b := Compile(&s, 4).CallSites()
		if len(a) != len(b) {
			t.Fatalf("seed %d: call-site count changed with scale", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: call site %d moved with scale", seed, i)
			}
		}
	}
}
