package adversary

import (
	"fmt"

	"halo/internal/isa"
	"halo/internal/prog"
)

// Compile lowers a sequence to a first-class mini-ISA program with the same
// shape the SPEC-style workloads have: allocation wrapper functions (one
// per site, so profiling sees genuine contexts), phased setup, steady-state
// hot loops, and a final sweep over everything still live. The program's
// result is a checksum over values the sequence itself wrote, so it is
// identical under every allocator policy — layout may differ, semantics may
// not — which is what the differential tests assert.
//
// Scale multiplies only the steady-state loop trip counts, which are
// immediate operands: programs built at different scales are byte-identical
// apart from immediates, so call-site addresses (and therefore profiles and
// selectors) carry over between test and ref scale, as the pipeline
// requires of every workload.
func Compile(s *Sequence, scale int) *isa.Program {
	if scale < 1 {
		scale = 1
	}
	b := prog.NewBuilder(s.Name)
	// Global slots: one pointer per object slot.
	b.Globals(s.Slots)

	// One allocation wrapper per site: allocates the site's fixed size and
	// stamps a site-specific marker at offset 0, the word every read of a
	// freshly allocated object may rely on.
	for site := 0; site < s.Sites; site++ {
		f := b.Func(fmt.Sprintf("site_%d", site), 0)
		p := f.Malloc(f.ConstReg(s.SiteSize[site]))
		f.StoreWord(p, 0, f.ConstReg(siteMarker(site)))
		f.Ret(p)
	}

	// opChunk caps the ops emitted per function so register frames stay
	// well under isa.MaxRegs (each op costs a handful of registers).
	const opChunk = 16

	var writeCounter int64
	for pi, ph := range s.Phases {
		var chunkNames []string
		for ci := 0; ci*opChunk < len(ph.Ops); ci++ {
			name := fmt.Sprintf("p%d_ops%d", pi, ci)
			chunkNames = append(chunkNames, name)
			f := b.Func(name, 0)
			acc := f.ConstReg(0)
			lo, hi := ci*opChunk, (ci+1)*opChunk
			if hi > len(ph.Ops) {
				hi = len(ph.Ops)
			}
			for _, op := range ph.Ops[lo:hi] {
				switch op.Kind {
				case OpAlloc:
					p := f.Call(fmt.Sprintf("site_%d", op.Site))
					f.StoreGlobal(op.Slot, p)
				case OpFree:
					p := f.Reg()
					f.LoadGlobal(p, op.Slot)
					f.Free(p)
				case OpWrite:
					writeCounter++
					p := f.Reg()
					f.LoadGlobal(p, op.Slot)
					f.StoreWord(p, op.Off, f.ConstReg(writeCounter*2654435761+12345))
				case OpRead:
					p := f.Reg()
					f.LoadGlobal(p, op.Slot)
					v := f.Reg()
					f.LoadWord(v, p, op.Off)
					f.Add(acc, acc, v)
				}
			}
			f.Ret(acc)
		}

		// One churn wrapper per (phase, ref): a distinct allocation site
		// that allocates, touches and frees a short-lived object.
		for ri, c := range ph.Churn {
			f := b.Func(fmt.Sprintf("p%d_churn%d", pi, ri), 0)
			p := f.Malloc(f.ConstReg(s.SiteSize[c.Site]))
			f.StoreWord(p, 0, f.ConstReg(siteMarker(c.Site)+int64(pi)*31+int64(ri)))
			v := f.Reg()
			f.LoadWord(v, p, 0)
			f.Free(p)
			f.Ret(v)
		}

		// The phase driver: setup chunks, then the steady-state loop.
		f := b.Func(fmt.Sprintf("phase_%d", pi), 0)
		acc := f.ConstReg(0)
		for _, name := range chunkNames {
			r := f.Call(name)
			f.Add(acc, acc, r)
		}
		f.LoopN(ph.Loops*int64(scale), func(prog.Reg) {
			for _, hr := range ph.Hot {
				var skip *prog.Label
				if hr.Gate > 0 {
					// A gated touch: taken only when the run's RNG draws 0.
					// Training runs (profile seed) and measurement runs
					// (measure seeds) draw different streams, so the hot set
					// the profile observes is not the hot set measurement
					// exercises — the phase-shift divergence lever.
					skip = f.NewLabel()
					g := f.RandConst(hr.Gate)
					f.Bnz(g, skip)
				}
				p := f.Reg()
				f.LoadGlobal(p, hr.Slot)
				v := f.Reg()
				f.LoadWord(v, p, 0)
				f.Add(acc, acc, v)
				if skip != nil {
					f.Bind(skip)
				}
			}
			for ri := range ph.Churn {
				r := f.Call(fmt.Sprintf("p%d_churn%d", pi, ri))
				f.Add(acc, acc, r)
			}
		})
		f.Ret(acc)
	}

	// The epilogue sweeps every slot still live: read its marker into the
	// checksum, then free it.
	{
		f := b.Func("sweep", 0)
		acc := f.ConstReg(0)
		for _, slot := range s.LiveAtEnd() {
			p := f.Reg()
			f.LoadGlobal(p, slot)
			v := f.Reg()
			f.LoadWord(v, p, 0)
			f.Add(acc, acc, v)
			f.Free(p)
		}
		f.Ret(acc)
	}

	f := b.Func("main", 0)
	acc := f.ConstReg(0)
	for pi := range s.Phases {
		r := f.Call(fmt.Sprintf("phase_%d", pi))
		f.Add(acc, acc, r)
	}
	r := f.Call("sweep")
	f.Add(acc, acc, r)
	f.Ret(acc)
	return b.MustBuild()
}

// siteMarker is the word a site wrapper stamps at offset 0 of each object
// it allocates: a site-specific constant, so reads are deterministic under
// any allocator.
func siteMarker(site int) int64 { return int64(site)*1315423911 + 7 }
