package advpipe

import (
	"testing"

	"halo/internal/adversary"
)

// TestMissRegressorDiscovery is the acceptance gate for the pipeline
// search: with its fixed seed it must discover a sequence with negative
// miss reduction — HALO's grouping adding L1D misses over the jemalloc
// baseline — and land on the exact pinned winner the adv-regress workload
// rebuilds, reproducibly.
func TestMissRegressorDiscovery(t *testing.T) {
	r := MissRegressor(adversary.MissRegressorSeed)
	if r.Fitness <= 0 {
		t.Fatalf("search found no regression: best fitness %.3f", r.Fitness)
	}
	if r.Best.Seed != adversary.MissRegressorPinnedSeed {
		t.Fatalf("search winner seed %#x, want pinned %#x — if the search or generator changed, re-pin MissRegressorPinnedSeed",
			r.Best.Seed, uint64(adversary.MissRegressorPinnedSeed))
	}
	pinned := adversary.MissRegressorSequence()
	pinned.Name = r.Best.Name // the pin uses the workload name, the search its candidate name
	if r.Best.Fingerprint() != pinned.Fingerprint() {
		t.Fatal("pinned sequence does not rebuild the search winner")
	}
	// Same seed → same sequence.
	again := MissRegressor(adversary.MissRegressorSeed)
	if again.Best.Fingerprint() != r.Best.Fingerprint() || again.Fitness != r.Fitness {
		t.Fatal("fixed-seed search is not reproducible")
	}
}

// TestRegressionIsReal re-measures the pinned winner end to end and
// asserts the regression (negative miss reduction with real grouping)
// survives outside the search loop.
func TestRegressionIsReal(t *testing.T) {
	s := adversary.MissRegressorSequence()
	ev, err := EvalPipeline(&s, adversary.MissRegressorScale)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Grouped == 0 {
		t.Fatal("grouping never engaged")
	}
	if ev.MissReductionPct >= 0 {
		t.Fatalf("miss reduction %.2f%%, want negative", ev.MissReductionPct)
	}
}

// TestPhaseShiftDefeatsGrouping runs the constructed phase-shift scenario
// through the pipeline: rotating gated hot sets must leave HALO at or
// below the baseline on misses.
func TestPhaseShiftDefeatsGrouping(t *testing.T) {
	s := adversary.PhaseShift(adversary.PhaseShiftSeed)
	ev, err := EvalPipeline(&s, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MissReductionPct > 0 {
		t.Fatalf("phase shift still helped by grouping: %.2f%% miss reduction", ev.MissReductionPct)
	}
}
