// Package advpipe is the adversary's full-pipeline fitness: it scores a
// candidate sequence by compiling it, running the complete HALO pipeline
// (profile on the training seed → grouping → identification → rewrite) and
// measuring baseline vs HALO on a measurement seed. It lives apart from
// package adversary so that internal/workloads — which those pipeline
// stages' own tests import — can depend on the sequence model and compiler
// without a test-time import cycle through internal/core.
package advpipe

import (
	"fmt"

	"halo/internal/adversary"
	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/measure"
)

// Eval is the outcome of running one sequence through the full pipeline.
type Eval struct {
	// MissReductionPct is the L1D miss reduction of HALO over the jemalloc
	// baseline; negative means grouping added misses — the regression the
	// adversary hunts.
	MissReductionPct float64
	// SpeedupPct is the cycle-model improvement of HALO over the baseline.
	SpeedupPct float64
	// Grouped counts allocations the group allocator served.
	Grouped uint64
}

// EvalPipeline compiles the sequence at the given scale and runs it through
// the full pipeline once. Profiling uses the training seed (core's default
// 7); measurement uses seed 1000 like the golden harness, so RNG-gated
// sequences genuinely diverge between what the profile saw and what the
// measurement exercises.
func EvalPipeline(s *adversary.Sequence, scale int) (Eval, error) {
	p := adversary.Compile(s, scale)
	opt, err := core.Optimize(p, core.Config{SynthesisWorkers: 1})
	if err != nil {
		return Eval{}, fmt.Errorf("advpipe: pipeline on %s: %w", s.Name, err)
	}
	machine := cache.XeonW2195()
	pol := measure.Policy{
		Kind:      measure.HALO,
		Rewritten: opt.Rewrite.Prog,
		Selectors: opt.BitSelectors,
		NumBits:   opt.Rewrite.NumBits,
	}
	const measureSeed = 1000
	base, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, measureSeed, machine)
	if err != nil {
		return Eval{}, err
	}
	halo, err := measure.Run(p, pol, measureSeed, machine)
	if err != nil {
		return Eval{}, err
	}
	if base.Result != halo.Result {
		return Eval{}, fmt.Errorf("advpipe: %s: result diverged under HALO: %d vs %d",
			s.Name, base.Result, halo.Result)
	}
	return Eval{
		MissReductionPct: measure.Improvement(float64(base.Cache.L1D.Misses), float64(halo.Cache.L1D.Misses)),
		SpeedupPct:       measure.Improvement(base.Seconds, halo.Seconds),
		Grouped:          halo.GroupedAllocs,
	}, nil
}

// RegressionFitness scores how badly grouping hurts the sequence: the
// negated miss reduction, so a candidate HALO regresses scores positive.
// Candidates grouping barely touches score an epsilon below zero — a
// workload the optimiser ignores is not a defeat of the optimiser.
func RegressionFitness(scale int) adversary.Fitness {
	return func(s *adversary.Sequence) float64 {
		ev, err := EvalPipeline(s, scale)
		if err != nil {
			return -1e9
		}
		if ev.Grouped == 0 {
			return -1e6
		}
		return -ev.MissReductionPct
	}
}

// MissRegressor searches with the full-pipeline fitness for a sequence on
// which HALO's grouping increases L1D misses relative to the jemalloc
// baseline. The budget is small because each candidate costs a complete
// profile → synthesis → rewrite → measure round trip; the MinFitness
// threshold stops at the first genuine regression. The winner for
// adversary.MissRegressorSeed is pinned as adversary.MissRegressorPinnedSeed —
// the adv-regress workload rebuilds it from that pin, and the discovery
// test asserts the search still finds it.
func MissRegressor(seed uint64) adversary.SearchResult {
	return adversary.Search(adversary.SearchConfig{
		Seed:       seed,
		Candidates: 12,
		NamePrefix: "adv-regress",
		MinFitness: 0.5, // ≥0.5% more misses under HALO
		Params:     adversary.MissRegressorParams(),
	}, RegressionFitness(adversary.MissRegressorScale))
}
