// Benchmarks regenerating the paper's evaluation artefacts (one benchmark
// per table/figure, §5) plus microbenchmarks of the pipeline stages.
// Reported custom metrics carry the experiment's headline numbers:
// L1D_miss_reduction_% and speedup_% for the headline figures.
//
//	go test -bench=. -benchmem
package halo

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"halo/internal/alloc"
	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/halloc"
	"halo/internal/hds"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/mem"
	"halo/internal/obs"
	"halo/internal/profile"
	"halo/internal/profstore"
	"halo/internal/rewrite"
	"halo/internal/service"
	"halo/internal/vm"
	"halo/internal/workloads"
)

// pipelineFor prepares the measurement policies for one workload at test
// scale (benchmarks use test inputs to stay fast).
func pipelineFor(b *testing.B, name string) (*isa.Program, *core.Optimized, measure.Policy, measure.Policy) {
	b.Helper()
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	cfg := core.Config{}
	cfg.Profile.RecordTrace = true
	if w.MaxGroups > 0 {
		cfg.Group.MaxGroups = w.MaxGroups
		cfg.HDS.MaxGroups = w.MaxGroups
	}
	opt, err := core.Optimize(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hr, err := core.AnalyzeHDS(opt.Profile, cfg)
	if err != nil {
		b.Fatal(err)
	}
	hc := halloc.Config{ChunkSize: w.ChunkSize, NoSpare: w.NoSpare, AlwaysReuseChunks: w.AlwaysReuse}
	haloPol := measure.Policy{
		Kind:      measure.HALO,
		Rewritten: opt.Rewrite.Prog,
		Selectors: opt.BitSelectors,
		NumBits:   opt.Rewrite.NumBits,
		Halloc:    hc,
	}
	hdsPol := measure.Policy{Kind: measure.HDS, SiteGroups: hr.SiteGroups, Halloc: hc}
	return p, opt, haloPol, hdsPol
}

func reportImprovement(b *testing.B, base, opt measure.RunResult) {
	b.Helper()
	b.ReportMetric(measure.Improvement(float64(base.Cache.L1D.Misses), float64(opt.Cache.L1D.Misses)), "L1D_miss_reduction_%")
	b.ReportMetric(measure.Improvement(base.Seconds, opt.Seconds), "speedup_%")
}

// BenchmarkFig9PovrayGroups regenerates Figure 9: grouping the povray test
// workload. The measured work is the full pipeline (profile + group +
// identify + rewrite).
func BenchmarkFig9PovrayGroups(b *testing.B) {
	w := workloads.MustGet("povray")
	p := w.Build(w.TestScale)
	b.ResetTimer()
	var groups int
	for i := 0; i < b.N; i++ {
		opt, err := core.Optimize(p, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		groups = len(opt.Groups)
	}
	b.ReportMetric(float64(groups), "groups")
}

// BenchmarkFig12AffinitySweep regenerates one point of Figure 12: the
// omnetpp pipeline at the paper's chosen affinity distance (128 bytes).
func BenchmarkFig12AffinitySweep(b *testing.B) {
	w := workloads.MustGet("omnetpp")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	cfg := core.Config{}
	cfg.Profile.AffinityDistance = 128
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt, err := core.Optimize(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pol := measure.Policy{
			Kind: measure.HALO, Rewritten: opt.Rewrite.Prog,
			Selectors: opt.BitSelectors, NumBits: opt.Rewrite.NumBits,
		}
		if _, err := measure.Run(p, pol, 1001, machine); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig13 measures one workload's baseline-vs-HALO miss reduction (the
// Figure 13 quantity) as a benchmark.
func benchFig13(b *testing.B, name string) {
	p, _, haloPol, _ := pipelineFor(b, name)
	machine := cache.XeonW2195()
	b.ResetTimer()
	var base, hal measure.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		base, err = measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 1001, machine)
		if err != nil {
			b.Fatal(err)
		}
		hal, err = measure.Run(p, haloPol, 1001, machine)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportImprovement(b, base, hal)
}

// BenchmarkFig13MissReduction covers the Figure 13 measurement for a
// representative subset (one prior-work benchmark, one wrapper-heavy
// CPU2017 benchmark, one deep-indirection benchmark).
func BenchmarkFig13MissReduction(b *testing.B) {
	for _, name := range []string{"health", "povray", "xalanc"} {
		b.Run(name, func(b *testing.B) { benchFig13(b, name) })
	}
}

// BenchmarkFig14Speedup measures the Figure 14 quantity (cycle-model
// speedup) for the same subset, contrasting HALO with the HDS replication.
func BenchmarkFig14Speedup(b *testing.B) {
	for _, name := range []string{"health", "povray", "xalanc"} {
		b.Run(name, func(b *testing.B) {
			p, _, haloPol, hdsPol := pipelineFor(b, name)
			machine := cache.XeonW2195()
			b.ResetTimer()
			var base, hal, hd measure.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				if base, err = measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 1001, machine); err != nil {
					b.Fatal(err)
				}
				if hal, err = measure.Run(p, haloPol, 1001, machine); err != nil {
					b.Fatal(err)
				}
				if hd, err = measure.Run(p, hdsPol, 1001, machine); err != nil {
					b.Fatal(err)
				}
			}
			reportImprovement(b, base, hal)
			b.ReportMetric(measure.Improvement(base.Seconds, hd.Seconds), "hds_speedup_%")
		})
	}
}

// BenchmarkFig15RandomPools measures the Figure 15 control: the random
// 4-pool allocator's effect on a placement-sensitive benchmark.
func BenchmarkFig15RandomPools(b *testing.B) {
	w := workloads.MustGet("health")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	b.ResetTimer()
	var base, rnd measure.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		if base, err = measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 1001, machine); err != nil {
			b.Fatal(err)
		}
		if rnd, err = measure.Run(p, measure.Policy{Kind: measure.RandomPools, Pools: 4}, 1001, machine); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(measure.Improvement(base.Seconds, rnd.Seconds), "speedup_%")
}

// BenchmarkTable1Fragmentation measures the Table 1 quantity: grouped-data
// fragmentation at peak usage under HALO's allocator.
func BenchmarkTable1Fragmentation(b *testing.B) {
	for _, name := range []string{"health", "leela"} {
		b.Run(name, func(b *testing.B) {
			p, _, haloPol, _ := pipelineFor(b, name)
			machine := cache.XeonW2195()
			b.ResetTimer()
			var r measure.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				if r, err = measure.Run(p, haloPol, 1001, machine); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.FragPct, "frag_%")
			b.ReportMetric(float64(r.FragBytes), "frag_bytes")
		})
	}
}

// BenchmarkBaselineAllocators measures the §5.1 jemalloc-vs-ptmalloc
// comparison on one benchmark.
func BenchmarkBaselineAllocators(b *testing.B) {
	w := workloads.MustGet("analyzer")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	b.ResetTimer()
	var je, pt measure.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		if je, err = measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 1001, machine); err != nil {
			b.Fatal(err)
		}
		if pt, err = measure.Run(p, measure.Policy{Kind: measure.Ptmalloc}, 1001, machine); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(measure.Improvement(float64(pt.Cache.L1D.Misses), float64(je.Cache.L1D.Misses)), "L1D_miss_reduction_%")
}

// BenchmarkRomsStreamExplosion measures the §5.2 representation-size
// comparison: grammar/stream counts versus affinity-graph nodes on roms.
func BenchmarkRomsStreamExplosion(b *testing.B) {
	w := workloads.MustGet("roms")
	p := w.Build(w.TestScale)
	cfg := core.Config{}
	cfg.Profile.RecordTrace = true
	prof, err := core.Profile(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *hds.Result
	for i := 0; i < b.N; i++ {
		res = hds.Analyze(prof, hds.Config{})
	}
	b.ReportMetric(float64(res.Candidates), "candidate_streams")
	b.ReportMetric(float64(prof.Graph.NumNodes()), "graph_nodes")
}

// --- pipeline-stage microbenchmarks ------------------------------------

// BenchmarkProfiling measures the Pin-replacement's full-instrumentation
// profiling throughput (the paper reports up to 500x slowdowns for its
// tool; this quantifies ours).
func BenchmarkProfiling(b *testing.B) {
	w := workloads.MustGet("povray")
	p := w.Build(w.TestScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Profile(p, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// eventRecorder captures a profiling run's complete event stream so a
// benchmark can replay it into consumers without re-interpreting the
// program on every iteration.
type eventRecorder struct {
	events []vm.Event
}

func (r *eventRecorder) ConsumeEvents(batch []vm.Event) {
	r.events = append(r.events, batch...)
}

// recordEventStream executes a workload's test-scale build under the same
// allocator and seed core.Profile uses and returns the raw event stream.
func recordEventStream(b *testing.B, name string) (*isa.Program, []vm.Event) {
	b.Helper()
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	rec := &eventRecorder{}
	m := mem.NewMemory()
	v := vm.New(p, m, alloc.NewSizeSeg(mem.NewOS(m)), rec, vm.Config{Seed: 7})
	if _, err := v.Run(); err != nil {
		b.Fatal(err)
	}
	return p, rec.events
}

// BenchmarkProfileThroughput measures raw events/sec through the full
// profiler sink — shadow stack, object index, affinity queue and graph —
// with the interpreter taken out of the loop. This is the ceiling the
// profiling data plane puts on every training run and halod job. The
// instrumented/bare pair pins the observability overhead: metrics are
// recorded per ~4096-event batch, so the two sub-benchmarks must stay
// within noise of each other (EXPERIMENTS.md records the budget at 2%).
func BenchmarkProfileThroughput(b *testing.B) {
	run := func(b *testing.B, p *isa.Program, events []vm.Event) {
		for i := 0; i < b.N; i++ {
			pr := profile.New(p, profile.Config{})
			for off := 0; off < len(events); off += vm.DefaultBatchSize {
				end := off + vm.DefaultBatchSize
				if end > len(events) {
					end = len(events)
				}
				pr.ConsumeEvents(events[off:end])
			}
			pr.Finish()
		}
		b.StopTimer()
		perSec := float64(b.N) * float64(len(events)) / b.Elapsed().Seconds()
		b.ReportMetric(perSec, "events/sec")
		b.ReportMetric(float64(len(events)), "events/op")
	}
	for _, name := range []string{"povray", "omnetpp"} {
		b.Run(name, func(b *testing.B) {
			p, events := recordEventStream(b, name)
			b.Run("instrumented", func(b *testing.B) {
				obs.SetEnabled(true)
				b.ResetTimer()
				run(b, p, events)
			})
			b.Run("bare", func(b *testing.B) {
				obs.SetEnabled(false)
				defer obs.SetEnabled(true)
				b.ResetTimer()
				run(b, p, events)
			})
		})
	}
}

// BenchmarkSynthesis measures the layout-synthesis stage — grouping,
// selector identification, selector lowering and the hot-data-streams
// policy — over a prerecorded profile, with profiling taken out of the
// loop. This is the wall-clock a `halo opt -profile` / halod job pays on
// top of profile decoding, and the number the halobench -json "synthesis"
// section tracks per workload.
func BenchmarkSynthesis(b *testing.B) {
	for _, name := range []string{"povray", "omnetpp"} {
		b.Run(name, func(b *testing.B) {
			w := workloads.MustGet(name)
			p := w.Build(w.TestScale)
			cfg := core.Config{}
			cfg.Profile.RecordTrace = true
			if w.MaxGroups > 0 {
				cfg.Group.MaxGroups = w.MaxGroups
				cfg.HDS.MaxGroups = w.MaxGroups
			}
			prof, err := core.Profile(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var groups, selectors int
			for i := 0; i < b.N; i++ {
				opt, err := core.OptimizeFromProfile(p, prof, cfg)
				if err != nil {
					b.Fatal(err)
				}
				hr, err := core.AnalyzeHDS(prof, cfg)
				if err != nil {
					b.Fatal(err)
				}
				groups, selectors = len(opt.Groups), len(opt.Selectors.Selectors)
				_ = hr
			}
			b.ReportMetric(float64(groups), "groups")
			b.ReportMetric(float64(selectors), "selectors")
		})
	}
}

// BenchmarkMeasureTrials measures the parallel trial harness end to end:
// warm-up plus four measured trials of the baseline policy, fanned out
// over the worker pool (ns/op here is the number the halobench -json
// trajectory tracks per workload×technique).
func BenchmarkMeasureTrials(b *testing.B) {
	w := workloads.MustGet("povray")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.MeasureTrials(p, measure.Policy{Kind: measure.Jemalloc}, 4, 1000, machine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMInterpreter measures raw interpretation speed without an
// event sink attached.
func BenchmarkVMInterpreter(b *testing.B) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	machine := cache.XeonW2195()
	_ = machine
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 1, cache.XeonW2195())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(r.Steps))
	}
}

// BenchmarkRewriter measures the post-link pass over every call site of
// the largest workload binary.
func BenchmarkRewriter(b *testing.B) {
	w := workloads.MustGet("omnetpp")
	p := w.Build(w.TestScale)
	sites := p.CallSites()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.Instrument(p, sites); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileStore measures profile image round-trips and merging,
// the building blocks of the halod service path.
func BenchmarkProfileStore(b *testing.B) {
	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	profA, err := core.Profile(p, core.Config{ProfileSeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	profB, err := core.Profile(p, core.Config{ProfileSeed: 5})
	if err != nil {
		b.Fatal(err)
	}
	img, err := profstore.Encode(profA)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(img)))
		for i := 0; i < b.N; i++ {
			if _, err := profstore.Encode(profA); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(img)))
		for i := 0; i < b.N; i++ {
			if _, err := profstore.Decode(img); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := profstore.Merge(profA, profB); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceOptimize measures the halod request path end to end over
// HTTP: a cold optimize request (the full pipeline runs on a worker)
// versus a repeated identical request served from the content-addressed
// artifact cache. The gap is the service's scaling story: a fleet
// re-requesting a (program, profile, config) triple costs a map lookup,
// not a pipeline run.
func BenchmarkServiceOptimize(b *testing.B) {
	srv := service.New(service.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	w := workloads.MustGet("art")
	p := w.Build(w.TestScale)
	img, err := p.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var progResp struct {
		ID string `json:"id"`
	}
	benchPost(b, ts.URL+"/v1/programs", img, &progResp)
	prof, err := core.Profile(p, core.Config{ProfileSeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	blob, err := profstore.Encode(prof)
	if err != nil {
		b.Fatal(err)
	}
	var profResp struct {
		ID string `json:"id"`
	}
	benchPost(b, ts.URL+"/v1/profiles", blob, &profResp)

	withProfile, err := json.Marshal(service.OptimizeRequest{
		Program:  progResp.ID,
		Profiles: []string{profResp.ID},
	})
	if err != nil {
		b.Fatal(err)
	}
	// No profile named: the server runs the training workload itself.
	withTraining, err := json.Marshal(service.OptimizeRequest{Program: progResp.ID})
	if err != nil {
		b.Fatal(err)
	}
	optimizeOnce := func(b *testing.B, reqBody []byte) service.JobStatus {
		var st service.JobStatus
		benchPost(b, ts.URL+"/v1/optimize", reqBody, &st)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "?wait=1")
		if err != nil {
			b.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &st); err != nil {
			b.Fatal(err)
		}
		if st.State != "done" {
			b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
		return st
	}

	b.Run("cold_pipeline", func(b *testing.B) {
		// Full pipeline per request: profile on a worker, then group,
		// identify, rewrite.
		for i := 0; i < b.N; i++ {
			srv.FlushCache()
			if st := optimizeOnce(b, withTraining); st.Cached {
				b.Fatal("cold request hit the cache")
			}
		}
	})
	b.Run("cold_from_profile", func(b *testing.B) {
		// The uploaded profile replaces the training run; the request
		// still pays for grouping, identification and rewriting.
		for i := 0; i < b.N; i++ {
			srv.FlushCache()
			if st := optimizeOnce(b, withProfile); st.Cached {
				b.Fatal("cold request hit the cache")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		optimizeOnce(b, withProfile) // warm the artifact cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := optimizeOnce(b, withProfile); !st.Cached {
				b.Fatal("cached request missed")
			}
		}
	})
}

func benchPost(b *testing.B, url string, body []byte, out any) {
	b.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		b.Fatalf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecode measures binary image round-trips.
func BenchmarkEncodeDecode(b *testing.B) {
	w := workloads.MustGet("xalanc")
	p := w.Build(w.TestScale)
	img, err := p.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.Decode(img); err != nil {
			b.Fatal(err)
		}
	}
}
