// Package halo is a Go reproduction of "HALO: Post-Link Heap-Layout
// Optimisation" (Savage & Jones, CGO 2020): a post-link, profile-guided
// optimisation pipeline that groups related heap allocations and
// specialises memory-management routines to co-locate them, reducing cache
// misses.
//
// Because the paper's substrate (x86-64 binaries, Intel Pin, BOLT, perf,
// SPEC inputs) is not reachable from Go, the repository reimplements the
// entire stack over a simulated one: a miniature ISA and VM with encodable
// binaries (internal/isa, internal/vm), simulated general-purpose
// allocators (internal/alloc), a cache-hierarchy model of the paper's Xeon
// W-2195 (internal/cache), and behavioural models of the eleven evaluation
// benchmarks (internal/workloads). See DESIGN.md for the inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// This package is the public facade: it re-exports the pipeline
// (profiling, grouping, identification, rewriting) and the measurement
// harness. The typical flow mirrors the paper's Figure 4:
//
//	w, _ := workloads.Get("povray")            // or build your own program
//	prog := w.Build(w.TestScale)
//	opt, err := halo.Optimize(prog, halo.Config{})
//	// opt.Rewrite.Prog is the instrumented binary;
//	// opt.BitSelectors drive the specialised allocator.
//
// The cmd/halo CLI exposes the same stages over encoded binary files, and
// cmd/halobench regenerates every table and figure of the paper's
// evaluation.
package halo

import (
	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/hds"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/profile"
	"halo/internal/profstore"
)

// Config parameterises the pipeline; the zero value uses the paper's
// settings (affinity distance 128, 90% coverage, 5% merge tolerance, 4 KiB
// maximum grouped size).
type Config = core.Config

// Optimized carries every artefact of a pipeline run: the profile, the
// groups, the selectors, the rewritten binary and the lowered runtime
// policy.
type Optimized = core.Optimized

// Profile is the result of a profiling run: the affinity graph, the
// reduced allocation contexts, and (optionally) the data reference trace.
type Profile = profile.Profile

// Optimize runs the full pipeline of Figure 4 on a linked program:
// profile, group, identify, rewrite.
func Optimize(p *isa.Program, cfg Config) (*Optimized, error) {
	return core.Optimize(p, cfg)
}

// ProfileProgram runs only the profiling stage.
func ProfileProgram(p *isa.Program, cfg Config) (*Profile, error) {
	return core.Profile(p, cfg)
}

// ProfileProgramN runs `runs` independent training runs (seeds
// cfg.ProfileSeed, +1, …) concurrently on a bounded worker pool and merges
// their profiles deterministically. The result is identical at any worker
// count; workers <= 0 selects one worker per CPU.
func ProfileProgramN(p *isa.Program, cfg Config, runs, workers int) (*Profile, error) {
	return core.ProfileN(p, cfg, runs, workers)
}

// OptimizeFromProfile runs grouping, identification and rewriting over an
// existing profile.
func OptimizeFromProfile(p *isa.Program, prof *Profile, cfg Config) (*Optimized, error) {
	return core.OptimizeFromProfile(p, prof, cfg)
}

// AnalyzeHDS runs the hot-data-streams comparison technique (Chilimbi &
// Shaham) over a profile recorded with tracing enabled.
func AnalyzeHDS(prof *Profile, cfg Config) (*hds.Result, error) {
	return core.AnalyzeHDS(prof, cfg)
}

// Profile persistence and merging (internal/profstore re-exports). These
// are the building blocks of the service deployment: training runs save
// profiles, a central optimizer merges them and feeds the result to
// OptimizeFromProfile (or lets cmd/halod do all of it over HTTP).

// EncodeProfile serialises a profile to its versioned binary image.
func EncodeProfile(p *Profile) ([]byte, error) { return profstore.Encode(p) }

// DecodeProfile parses a profile image. The result carries the program's
// name but not the program itself; pair it with the matching binary before
// rendering reports.
func DecodeProfile(image []byte) (*Profile, error) { return profstore.Decode(image) }

// SaveProfile writes a profile image to a file.
func SaveProfile(path string, p *Profile) error { return profstore.Save(path, p) }

// LoadProfile reads a profile image from a file.
func LoadProfile(path string) (*Profile, error) { return profstore.Load(path) }

// MergeProfiles deterministically combines profiles of one program from
// independent training runs (different seeds or scales) into a single
// profile for OptimizeFromProfile. The merge is order-independent.
func MergeProfiles(profs ...*Profile) (*Profile, error) { return profstore.Merge(profs...) }

// Measurement re-exports.

// Policy selects an allocator configuration for measurement: the baseline
// allocators, HALO's specialised allocator, the hot-data-streams
// replication, or the random-pool control.
type Policy = measure.Policy

// RunResult is a single run's metrics: instruction counts, cache hierarchy
// statistics, the cycle model's time, and allocator statistics.
type RunResult = measure.RunResult

// Summary aggregates trials per the paper's methodology (§5.1): medians
// with 25th/75th percentiles.
type Summary = measure.Summary

// Run executes a program once under a policy on the given machine model.
func Run(p *isa.Program, pol Policy, seed uint64, machine cache.Config) (RunResult, error) {
	return measure.Run(p, pol, seed, machine)
}

// MeasureTrials runs several trials (discarding a warm-up) on a worker
// pool sized to the machine and summarises them. Trial results are
// gathered by index, so summaries are bit-identical at any pool width.
func MeasureTrials(p *isa.Program, pol Policy, trials int, baseSeed uint64, machine cache.Config) (Summary, error) {
	return measure.MeasureTrials(p, pol, trials, baseSeed, machine)
}

// MeasureTrialsParallel is MeasureTrials with an explicit worker count
// (<= 0 selects one worker per CPU, 1 forces serial execution).
func MeasureTrialsParallel(p *isa.Program, pol Policy, trials int, baseSeed uint64, machine cache.Config, workers int) (Summary, error) {
	return measure.MeasureTrialsParallel(p, pol, trials, baseSeed, machine, workers)
}

// XeonW2195 returns the evaluation machine's memory-hierarchy model.
func XeonW2195() cache.Config { return cache.XeonW2195() }
