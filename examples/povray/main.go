// The paper's §3 motivating example, built from scratch with the program
// builder: a parser allocates three object types (A, B, C); types A and B
// are linked into a list and traversed hot, C is left cold. Under a
// size-segregated allocator the C objects scatter between the A/B objects
// (Figure 3a); HALO's grouping reproduces the layout of Figure 3(b) and
// the example shows the resulting miss difference, plus why the wrapper
// function (pov_malloc) defeats call-site-keyed identification.
//
//	go run ./examples/povray
package main

import (
	"fmt"
	"log"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/halloc"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/prog"
)

// buildFigure2 assembles the paper's Figure 2 program. All three create_*
// procedures allocate through a shared wrapper, as povray's pov_malloc
// does, so the immediate call site of malloc is useless for telling the
// types apart.
func buildFigure2(tokens, passes int64) *isa.Program {
	b := prog.NewBuilder("figure2")
	b.Globals(1) // g0: list head

	pm := b.Func("pov_malloc", 1)
	pm.Ret(pm.Malloc(pm.Param(0)))

	mk := func(name string, size int64) {
		f := b.Func(name, 0)
		sz := f.ConstReg(size)
		p := f.Call("pov_malloc", sz)
		zero := f.ConstReg(0)
		f.StoreWord(p, 0, zero) // sibling
		f.StoreWord(p, 8, sz)   // payload
		f.Ret(p)
	}
	mk("create_a", 40)
	mk("create_b", 40)
	mk("create_c", 40)

	ds := b.Func("do_something", 1)
	{
		f := ds
		v := f.Reg()
		f.LoadWord(v, f.Param(0), 8)
		f.Ret(v)
	}

	main := b.Func("main", 0)
	{
		f := main
		// Allocate: one object per token, types interleaved at random.
		f.LoopN(tokens, func(prog.Reg) {
			tok := f.RandConst(3)
			isA := f.NewLabel()
			isB := f.NewLabel()
			done := f.NewLabel()
			two := f.ConstReg(2)
			one := f.ConstReg(1)
			cmpA := f.Reg()
			f.Lt(cmpA, tok, one)
			f.Bnz(cmpA, isA)
			cmpB := f.Reg()
			f.Lt(cmpB, tok, two)
			f.Bnz(cmpB, isB)
			// Type C: used once, never again.
			c := f.Call("create_c")
			f.Call("do_something", c)
			f.Jmp(done)
			f.Bind(isA)
			a := f.Call("create_a")
			pushList(f, a)
			f.Jmp(done)
			f.Bind(isB)
			bb := f.Call("create_b")
			pushList(f, bb)
			f.Bind(done)
		})
		// Access: traverse the A/B list repeatedly.
		acc := f.ConstReg(0)
		f.LoopN(passes, func(prog.Reg) {
			p := f.Reg()
			head := f.ConstReg(int64(isa.GlobalAddr(0)))
			f.LoadWord(p, head, 0)
			loop := f.NewLabel()
			out := f.NewLabel()
			f.Bind(loop)
			f.Bz(p, out)
			v := f.Reg()
			f.LoadWord(v, p, 8)
			f.Add(acc, acc, v)
			f.LoadWord(p, p, 0)
			f.Jmp(loop)
			f.Bind(out)
		})
		f.Ret(acc)
	}
	return b.MustBuild()
}

func pushList(f *prog.FuncBuilder, obj prog.Reg) {
	head := f.ConstReg(int64(isa.GlobalAddr(0)))
	old := f.Reg()
	f.LoadWord(old, head, 0)
	f.StoreWord(obj, 0, old)
	f.StoreWord(head, 0, obj)
}

func main() {
	p := buildFigure2(4000, 60)

	fmt.Println("== the paper's Figure 2 program ==")
	opt, err := core.Optimize(p, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt.GroupReport())
	fmt.Println("\nselectors (note: they distinguish create_a/create_b from create_c")
	fmt.Println("through the full chain, even though all three share pov_malloc):")
	for _, s := range opt.Selectors.Selectors {
		fmt.Printf("  %s\n", s)
	}

	machine := cache.XeonW2195()
	base, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 42, machine)
	if err != nil {
		log.Fatal(err)
	}
	var sels []halloc.BitSelector
	for _, s := range opt.BitSelectors {
		sels = append(sels, s)
	}
	hal, err := measure.Run(p, measure.Policy{
		Kind:      measure.HALO,
		Rewritten: opt.Rewrite.Prog,
		Selectors: sels,
		NumBits:   opt.Rewrite.NumBits,
	}, 42, machine)
	if err != nil {
		log.Fatal(err)
	}
	if base.Result != hal.Result {
		log.Fatalf("optimisation changed the program result: %d != %d", base.Result, hal.Result)
	}

	fmt.Printf("\nFigure 3(a) — size-segregated layout: %s\n", base.Cache)
	fmt.Printf("Figure 3(b) — grouped layout:         %s\n", hal.Cache)
	fmt.Printf("\nL1D miss reduction: %+.2f%%   speedup: %+.2f%%\n",
		measure.Improvement(float64(base.Cache.L1D.Misses), float64(hal.Cache.L1D.Misses)),
		measure.Improvement(base.Seconds, hal.Seconds))
}
