// HDS comparison: the §5.2 representation-size argument, live. For two
// workloads — povray (wrapper-heavy) and roms (regular, stream-explosive) —
// run both HALO's affinity-graph analysis and the hot-data-streams
// analysis over the same profile and contrast what each needs to describe
// the program and what policy each derives.
//
//	go run ./examples/hdscompare
package main

import (
	"fmt"
	"log"

	"halo/internal/core"
	"halo/internal/workloads"
)

func main() {
	for _, name := range []string{"povray", "roms"} {
		w, _ := workloads.Get(name)
		p := w.Build(w.TestScale)
		cfg := core.Config{}
		cfg.Profile.RecordTrace = true
		if w.MaxGroups > 0 {
			cfg.Group.MaxGroups = w.MaxGroups
			cfg.HDS.MaxGroups = w.MaxGroups
		}

		opt, err := core.Optimize(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		hr, err := core.AnalyzeHDS(opt.Profile, cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", name)
		fmt.Printf("HALO:  %d affinity-graph nodes -> %d groups, identified by %d call sites\n",
			opt.Profile.Graph.NumNodes(), len(opt.Groups), len(opt.Selectors.Sites))
		fmt.Printf("HDS:   %d grammar rules -> %d candidate streams -> %d hot streams -> %d co-allocation sets\n",
			hr.Rules, hr.Candidates, hr.Streams, len(hr.Sets))
		ratio := float64(hr.Streams) / float64(max(1, opt.Profile.Graph.NumNodes()))
		fmt.Printf("representation ratio (hot streams per graph node): %.0fx\n", ratio)
		fmt.Printf("runtime policy: HALO monitors %d sites with selectors; HDS keys %d sites directly\n\n",
			len(opt.Selectors.Sites), len(hr.SiteGroups))
	}
	fmt.Println("The paper reports 31 affinity nodes against >150,000 hot data")
	fmt.Println("streams for roms (§5.2); the ratio above reproduces that blow-up")
	fmt.Println("at this simulation's scale.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
