// Custom workload: author a brand-new program with the builder DSL and
// push it through the HALO pipeline — the workflow a user follows to test
// the optimiser on their own allocation patterns (§A.7, "different
// programs and parameters can be tested").
//
// The program is a tiny in-memory key-value store: a hash index whose
// buckets chain entry records; values live in separate blobs; an
// append-only write-ahead-log record is allocated per insert (cold).
// Lookups walk bucket chains and read values — entries and values are hot
// and co-accessed, WAL records are pure dilution.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/prog"
)

// Layouts:
//
//	entry (40B): 0 next, 8 key, 16 value ptr
//	value (56B): 0 len, 8.. bytes
//	wal (40B):   0 next, 8 seq — shares the entries' size class
const (
	nBuckets = 256
	gTable   = 0 // bucket array base
	gWAL     = 1 // WAL list head
)

func buildKVStore(inserts, lookups int64) *isa.Program {
	b := prog.NewBuilder("kvstore")
	b.Globals(2)

	me := b.Func("new_entry", 1) // (key)
	{
		f := me
		sz := f.ConstReg(40)
		p := f.Malloc(sz)
		f.StoreWord(p, 8, f.Param(0))
		f.Ret(p)
	}
	mv := b.Func("new_value", 0)
	{
		f := mv
		sz := f.ConstReg(56)
		p := f.Malloc(sz)
		v := f.RandConst(1 << 16)
		f.StoreWord(p, 0, v)
		f.Ret(p)
	}
	mw := b.Func("wal_append", 0)
	{
		f := mw
		sz := f.ConstReg(40)
		p := f.Malloc(sz)
		seq := f.RandConst(1 << 20)
		f.StoreWord(p, 8, seq)
		head := f.ConstReg(int64(isa.GlobalAddr(gWAL)))
		old := f.Reg()
		f.LoadWord(old, head, 0)
		f.StoreWord(p, 0, old)
		f.StoreWord(head, 0, p)
		f.RetConst(0)
	}

	// bucket(key) -> address of the bucket slot.
	bk := b.Func("bucket_slot", 1)
	{
		f := bk
		key := f.Param(0)
		mask := f.ConstReg(nBuckets - 1)
		h := f.Reg()
		f.And(h, key, mask)
		eight := f.ConstReg(8)
		f.Mul(h, h, eight)
		tab := f.Reg()
		base := f.ConstReg(int64(isa.GlobalAddr(gTable)))
		f.LoadWord(tab, base, 0)
		f.Add(h, tab, h)
		f.Ret(h)
	}

	ins := b.Func("insert", 1) // (key)
	{
		f := ins
		key := f.Param(0)
		e := f.Call("new_entry", key)
		v := f.Call("new_value")
		f.StoreWord(e, 16, v)
		f.Call("wal_append")
		slot := f.Call("bucket_slot", key)
		old := f.Reg()
		f.LoadWord(old, slot, 0)
		f.StoreWord(e, 0, old)
		f.StoreWord(slot, 0, e)
		f.RetConst(0)
	}

	lk := b.Func("lookup", 1) // (key)
	{
		f := lk
		key := f.Param(0)
		slot := f.Call("bucket_slot", key)
		e := f.Reg()
		f.LoadWord(e, slot, 0)
		acc := f.ConstReg(0)
		loop := f.NewLabel()
		out := f.NewLabel()
		hit := f.NewLabel()
		f.Bind(loop)
		f.Bz(e, out)
		k := f.Reg()
		f.LoadWord(k, e, 8)
		eq := f.Reg()
		f.Eq(eq, k, key)
		f.Bnz(eq, hit)
		f.LoadWord(e, e, 0)
		f.Jmp(loop)
		f.Bind(hit)
		vp := f.Reg()
		f.LoadWord(vp, e, 16)
		val := f.Reg()
		f.LoadWord(val, vp, 0)
		f.Add(acc, acc, val)
		f.Bind(out)
		f.Ret(acc)
	}

	main := b.Func("main", 0)
	{
		f := main
		sz := f.ConstReg(nBuckets * 8)
		tab := f.Malloc(sz)
		base := f.ConstReg(int64(isa.GlobalAddr(gTable)))
		f.StoreWord(base, 0, tab)
		f.LoopN(inserts, func(prog.Reg) {
			key := f.RandConst(1 << 14)
			f.Call("insert", key)
		})
		acc := f.ConstReg(0)
		f.LoopN(lookups, func(prog.Reg) {
			key := f.RandConst(1 << 14)
			r := f.Call("lookup", key)
			f.Add(acc, acc, r)
		})
		f.Ret(acc)
	}
	return b.MustBuild()
}

func main() {
	p := buildKVStore(4000, 60000)
	fmt.Println("== custom kv-store workload through the HALO pipeline ==")
	opt, err := core.Optimize(p, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt.GroupReport())

	machine := cache.XeonW2195()
	base, err := measure.Run(p, measure.Policy{Kind: measure.Jemalloc}, 9, machine)
	if err != nil {
		log.Fatal(err)
	}
	hal, err := measure.Run(p, measure.Policy{
		Kind:      measure.HALO,
		Rewritten: opt.Rewrite.Prog,
		Selectors: opt.BitSelectors,
		NumBits:   opt.Rewrite.NumBits,
	}, 9, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %s\n", base.Cache)
	fmt.Printf("HALO:     %s\n", hal.Cache)
	fmt.Printf("L1D miss reduction %+.2f%%, speedup %+.2f%%\n",
		measure.Improvement(float64(base.Cache.L1D.Misses), float64(hal.Cache.L1D.Misses)),
		measure.Improvement(base.Seconds, hal.Seconds))
}
