// Quickstart: run the complete HALO pipeline on one of the bundled
// benchmark programs and measure the effect.
//
// The flow is the paper's Figure 4: profile the binary on its training
// input, group its allocation contexts, build selectors, rewrite the
// binary, then run the rewritten binary with the specialised allocator and
// compare against the jemalloc-like baseline.
//
//	go run ./examples/quickstart [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/halloc"
	"halo/internal/measure"
	"halo/internal/rewrite"
	"halo/internal/workloads"
)

func main() {
	name := "povray"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workloads.Get(name)
	if !ok {
		log.Fatalf("unknown workload %q; available: %v", name, workloads.Names())
	}

	// 1. Build the target "binary" at training scale and run the HALO
	// pipeline: profiling, grouping, identification, rewriting.
	fmt.Printf("== %s: profiling test input (scale %d) ==\n", w.Name, w.TestScale)
	testProg := w.Build(w.TestScale)
	opt, err := core.Optimize(testProg, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt.GroupReport())
	fmt.Printf("instrumented %d call sites (%d instructions inserted)\n\n",
		opt.Rewrite.NumBits, opt.Rewrite.Inserted)

	// 2. Apply the profile to the larger reference input: rewrite the ref
	// binary at the same sites and lower the selectors.
	refProg := w.Build(w.RefScale)
	rw, err := rewrite.Instrument(refProg, opt.Selectors.Sites)
	if err != nil {
		log.Fatal(err)
	}
	var selectors []halloc.BitSelector
	for _, s := range opt.Selectors.Selectors {
		lowered, _ := rewrite.LowerSelectors(s.Conj, rw.SiteBits)
		if len(lowered) > 0 {
			selectors = append(selectors, halloc.BitSelector{Group: s.Group, Conj: lowered})
		}
	}

	// 3. Measure both configurations on the simulated Xeon W-2195.
	machine := cache.XeonW2195()
	base, err := measure.Run(refProg, measure.Policy{Kind: measure.Jemalloc}, 1001, machine)
	if err != nil {
		log.Fatal(err)
	}
	hal, err := measure.Run(refProg, measure.Policy{
		Kind:      measure.HALO,
		Rewritten: rw.Prog,
		Selectors: selectors,
		NumBits:   rw.NumBits,
		Halloc: halloc.Config{
			ChunkSize:         w.ChunkSize,
			NoSpare:           w.NoSpare,
			AlwaysReuseChunks: w.AlwaysReuse,
		},
	}, 1001, machine)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== ref input (scale %d) ==\n", w.RefScale)
	fmt.Printf("baseline (jemalloc-like): %s\n", base.Cache)
	fmt.Printf("HALO:                     %s\n", hal.Cache)
	fmt.Printf("grouped allocations: %d (forwarded %d)\n", hal.GroupedAllocs, hal.ForwardedAlloc)
	fmt.Printf("L1D miss reduction: %+.2f%%\n",
		measure.Improvement(float64(base.Cache.L1D.Misses), float64(hal.Cache.L1D.Misses)))
	fmt.Printf("speedup:            %+.2f%%  (%.4fs -> %.4fs simulated)\n",
		measure.Improvement(base.Seconds, hal.Seconds), base.Seconds, hal.Seconds)
}
