module halo

go 1.24
