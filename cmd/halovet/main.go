// halovet is the repo's custom static-analysis suite, run through the
// go vet driver:
//
//	go build -o halovet ./cmd/halovet
//	go vet -vettool=$PWD/halovet ./...
//
// It enforces four invariants the golden tests otherwise only catch
// after the fact: byte-determinism of the pipeline packages
// (determinism), allocation-free //halo:hot functions (hotalloc),
// obs.Enabled() gating of metric mutations on hot paths (obsgate), and
// %w error wrapping plus panic confinement (errfmt). See DESIGN.md
// "Static analysis".
package main

import "halo/internal/analysis"

func main() {
	analysis.Main(analysis.All...)
}
