// Command vmbench measures interpreter dispatch throughput: each golden
// workload's test-scale build is executed by both the reference switch
// interpreter and the predecoded threaded dispatcher, and the best-of-reps
// steps/sec and events/sec are reported. It backs the CI dispatch
// regression guard: with -baseline it compares the fresh numbers against a
// committed BENCH_vm.json and fails when any workload's threaded-engine
// events/sec drops by more than -tol percent.
//
// Usage:
//
//	vmbench [-reps N] [-workloads a,b] [-out BENCH_vm.json]
//	        [-baseline BENCH_vm.json] [-tol 20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"halo/internal/mem"
	"halo/internal/vm"
	"halo/internal/workloads"
)

// Result is one workload × engine throughput record. TLB and fusion
// figures are threaded-engine properties; they stay zero for the switch
// engine, which has neither a software TLB nor superinstructions.
type Result struct {
	Workload     string  `json:"workload"`
	Engine       string  `json:"engine"`
	Steps        uint64  `json:"steps"`
	Events       uint64  `json:"events"`
	Fused        uint64  `json:"fused"`
	Triples      uint64  `json:"triples"`       // fused-triple sites in the decoded program
	Inlined      uint64  `json:"inlined"`       // inlined calls retired during the run
	TLBHitRate   float64 `json:"tlb_hit_rate"`  // hits / (loads+stores)
	TLBMissRate  float64 `json:"tlb_miss_rate"` // misses / (loads+stores)
	NsPerRun     int64   `json:"ns_per_run"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Doc is the BENCH_vm.json document.
type Doc struct {
	Reps    int      `json:"reps"`
	Results []Result `json:"results"`
}

// countSink counts events without retaining them.
type countSink struct{ n uint64 }

func (s *countSink) ConsumeEvents(batch []vm.Event) { s.n += uint64(len(batch)) }

// bumpAlloc is the minimal allocator the benchmark runs under: dispatch
// throughput must not depend on allocator policy.
type bumpAlloc struct {
	next  uint64
	sizes map[uint64]uint64
	m     *mem.Memory
}

func newBump(m *mem.Memory) *bumpAlloc {
	return &bumpAlloc{next: mem.HeapBase, sizes: map[uint64]uint64{}, m: m}
}

func (b *bumpAlloc) Malloc(size uint64) uint64 {
	p := b.next
	b.next += (size + 15) &^ 15
	b.sizes[p] = size
	return p
}
func (b *bumpAlloc) Calloc(n, size uint64) uint64 { return b.Malloc(n * size) }
func (b *bumpAlloc) Realloc(p, size uint64) uint64 {
	np := b.Malloc(size)
	if old := b.sizes[p]; old > 0 {
		n := old
		if size < n {
			n = size
		}
		b.m.Copy(np, p, n)
	}
	return np
}
func (b *bumpAlloc) Free(p uint64) {}

// measure runs the workload once and reports retired steps, events and
// wall-clock.
func measure(name string, mode vm.DispatchMode) (Result, error) {
	w := workloads.MustGet(name)
	p := w.Build(w.TestScale)
	vm.Predecode(p) // decode outside the timed region, as real runs do
	m := mem.NewMemory()
	sink := &countSink{}
	v := vm.New(p, m, newBump(m), sink, vm.Config{Seed: 1000, Dispatch: mode})
	start := time.Now()
	if _, err := v.Run(); err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	ns := time.Since(start).Nanoseconds()
	sec := float64(ns) / 1e9
	engine := "threaded"
	if mode == vm.DispatchSwitch {
		engine = "switch"
	}
	res := Result{
		Workload:     name,
		Engine:       engine,
		Steps:        v.Steps(),
		Events:       sink.n,
		Fused:        v.Fused(),
		Inlined:      v.Inlined(),
		NsPerRun:     ns,
		StepsPerSec:  float64(v.Steps()) / sec,
		EventsPerSec: float64(sink.n) / sec,
	}
	if mode == vm.DispatchThreaded {
		res.Triples = uint64(vm.Predecode(p).TripleSites())
		if acc := v.Loads() + v.Stores(); acc > 0 {
			miss := v.TLBMisses()
			hits := acc - miss - v.TLBBypasses()
			res.TLBHitRate = float64(hits) / float64(acc)
			res.TLBMissRate = float64(miss) / float64(acc)
		}
	}
	return res, nil
}

func main() {
	var (
		reps     = flag.Int("reps", 5, "repetitions per configuration (best-of wins)")
		names    = flag.String("workloads", "povray,omnetpp", "comma-separated workloads")
		out      = flag.String("out", "", "write results as JSON to this file")
		baseline = flag.String("baseline", "", "compare against a committed BENCH_vm.json")
		tol      = flag.Float64("tol", 20, "max allowed threaded events/sec regression, percent")
	)
	flag.Parse()

	doc := Doc{Reps: *reps}
	for _, name := range strings.Split(*names, ",") {
		for _, mode := range []vm.DispatchMode{vm.DispatchSwitch, vm.DispatchThreaded} {
			var best Result
			for i := 0; i < *reps; i++ {
				r, err := measure(name, mode)
				if err != nil {
					fmt.Fprintf(os.Stderr, "vmbench: %v\n", err)
					os.Exit(1)
				}
				if r.EventsPerSec > best.EventsPerSec {
					best = r
				}
			}
			doc.Results = append(doc.Results, best)
			fmt.Printf("%-10s %-9s %12d steps  %9d fused  %5d triples  %8d inlined  tlb %5.1f%%  %8.2fms  %11.0f steps/s  %11.0f events/s\n",
				best.Workload, best.Engine, best.Steps, best.Fused, best.Triples, best.Inlined,
				best.TLBHitRate*100, float64(best.NsPerRun)/1e6, best.StepsPerSec, best.EventsPerSec)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vmbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *baseline != "" {
		if failed := checkBaseline(doc, *baseline, *tol); failed {
			os.Exit(1)
		}
	}
}

// checkBaseline compares threaded-engine events/sec and steps/sec against
// the committed baseline and reports whether any workload regressed beyond
// tol percent on either axis.
func checkBaseline(doc Doc, path string, tol float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmbench: baseline: %v\n", err)
		return true
	}
	var base Doc
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "vmbench: baseline: %v\n", err)
		return true
	}
	want := map[string]Result{}
	for _, r := range base.Results {
		if r.Engine == "threaded" {
			want[r.Workload] = r
		}
	}
	failed := false
	check := func(workload, metric string, baseline, got float64) {
		if baseline == 0 {
			return
		}
		drop := (baseline - got) / baseline * 100
		if drop > tol {
			fmt.Fprintf(os.Stderr, "vmbench: %s threaded %s regressed %.1f%% (%.0f -> %.0f, tol %.0f%%)\n",
				workload, metric, drop, baseline, got, tol)
			failed = true
		} else {
			fmt.Printf("%s: threaded %s within tolerance (%+.1f%% vs baseline)\n",
				workload, metric, -drop)
		}
	}
	for _, r := range doc.Results {
		if r.Engine != "threaded" {
			continue
		}
		b, ok := want[r.Workload]
		if !ok {
			continue
		}
		check(r.Workload, "events/s", b.EventsPerSec, r.EventsPerSec)
		check(r.Workload, "steps/s", b.StepsPerSec, r.StepsPerSec)
	}
	return failed
}
